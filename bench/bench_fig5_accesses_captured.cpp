/**
 * @file
 * Figure 5 — sieving effectiveness: accesses captured.
 *
 * For every allocation technique of the paper's evaluation, the
 * fraction of each day's accesses captured by the ensemble-level cache
 * (hits, normalized to that day's accesses) plus week aggregates and
 * the headline comparisons: SieveStore-D/C vs the best unsieved cache,
 * and both vs the per-day ideal.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Figure 5: accesses captured",
                "Fig. 5 + Section 5.1 headline comparisons", opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    struct Result
    {
        PolicyRun run;
        std::vector<core::DailyReport> daily;
        core::DailyReport totals;
    };
    std::vector<Result> results;
    int days = 0;
    for (const PolicyRun &run : figure5Roster()) {
        std::fprintf(stderr, "  running %s...\n", run.label.c_str());
        const auto app = runPolicy(run, opts, gen);
        results.push_back(Result{run, app->daily(), app->totals()});
        days = std::max(days, static_cast<int>(app->daily().size()));
    }

    std::vector<std::string> headers = {"Technique"};
    for (int d = 0; d < days; ++d)
        headers.push_back("day " + std::to_string(d + 1));
    headers.push_back("week");
    headers.push_back("reads/writes");
    stats::Table t(headers);
    for (const auto &res : results) {
        auto &row = t.row().cell(res.run.label);
        for (int d = 0; d < days; ++d) {
            const auto di = static_cast<size_t>(d);
            if (di < res.daily.size() && res.daily[di].accesses) {
                row.cellPercent(res.daily[di].hitRatio());
            } else {
                row.cell("-");
            }
        }
        row.cellPercent(res.totals.hitRatio());
        char buf[48];
        const double hit_denom = static_cast<double>(
            std::max<uint64_t>(1, res.totals.hits));
        std::snprintf(buf, sizeof(buf), "%.0f%%/%.0f%%",
                      100.0 * static_cast<double>(res.totals.read_hits) /
                          hit_denom,
                      100.0 *
                          static_cast<double>(res.totals.write_hits) /
                          hit_denom);
        row.cell(buf);
    }
    emit(t, opts);

    // Headline ratios. Days 2+ only: day 1 is the partial-day outlier
    // and SieveStore-D has nothing allocated yet (both as in the paper,
    // which excludes day 1 from SieveStore-D's average).
    auto hits_from_day2 = [&](const Result &r) {
        uint64_t hits = 0, accesses = 0;
        for (size_t d = 1; d < r.daily.size(); ++d) {
            hits += r.daily[d].hits;
            accesses += r.daily[d].accesses;
        }
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    };
    auto find = [&](const std::string &label) -> const Result & {
        for (const auto &r : results)
            if (r.run.label == label)
                return r;
        util::fatal("missing roster entry %s", label.c_str());
    };
    const double ideal = hits_from_day2(find("Ideal"));
    const double sieve_d = hits_from_day2(find("SieveStore-D"));
    const double sieve_c = hits_from_day2(find("SieveStore-C"));
    const double best_unsieved =
        std::max(std::max(hits_from_day2(find("AOD-16GB")),
                          hits_from_day2(find("WMNA-16GB"))),
                 std::max(hits_from_day2(find("AOD-32GB")),
                          hits_from_day2(find("WMNA-32GB"))));

    note("\nheadline comparisons (days 2-8):\n");
    note("  ideal capture:        %5.1f%%  [paper: ~35%% avg, "
                "14-53%% by day]\n",
                ideal * 100.0);
    note("  SieveStore-D vs ideal: %5.1f%% of ideal  [paper: "
                "within 14%% on average]\n",
                100.0 * sieve_d / ideal);
    note("  SieveStore-C vs ideal: %5.1f%% of ideal  [paper: "
                "within 4%%; exceeds it on 3 days]\n",
                100.0 * sieve_c / ideal);
    note("  SieveStore-D vs best unsieved: %+5.1f%%  [paper: "
                "+35%%]\n",
                100.0 * (sieve_d / best_unsieved - 1.0));
    note("  SieveStore-C vs best unsieved: %+5.1f%%  [paper: "
                "+50%%]\n",
                100.0 * (sieve_c / best_unsieved - 1.0));
    note("  (the sieved caches above use 16 GB against unsieved "
                "32 GB — 1/2 the capacity and, per Fig. 9, 1/7th the "
                "drives)\n");
    return 0;
}
