/**
 * @file
 * Microbenchmarks (google-benchmark) for the storage backends: batched
 * read/write submit cost through the AnalyticBackend (the model echo,
 * which bounds the staging overhead every simulation now pays) and the
 * FileBackend engines (synchronous and worker-pool), plus the
 * appliance-side staging path end to end.
 *
 * Emitted as BENCH_storage.json by CI's perf-smoke job and compared
 * with scripts/bench_compare.py --allow-missing-baseline.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <vector>

#include "ssd/ssd_model.hpp"
#include "storage/analytic_backend.hpp"
#include "storage/backend.hpp"
#include "storage/file_backend.hpp"
#include "trace/block.hpp"

using namespace sievestore;

namespace {

constexpr size_t kBatch = 256;
constexpr uint64_t kPages = 4096;

std::vector<storage::StorageOp>
makeOps(size_t n)
{
    std::vector<storage::StorageOp> ops(n);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t page = (i * 7919) % kPages;
        ops[i] = storage::StorageOp{
            static_cast<util::TimeUs>(i),
            trace::makeBlockId(1, page * trace::kBlocksPerPage)};
    }
    return ops;
}

void
runBatches(benchmark::State &state, storage::Backend &backend,
           bool writes)
{
    const std::vector<storage::StorageOp> ops = makeOps(kBatch);
    std::array<uint32_t, kBatch> lat{};
    for (auto _ : state) {
        if (writes)
            backend.writeBlocks(ops, lat);
        else
            backend.readBlocks(ops, lat);
        benchmark::DoNotOptimize(lat[0]);
    }
    backend.flush();
    backend.checkInvariants();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kBatch));
}

void
BM_AnalyticRead(benchmark::State &state)
{
    storage::AnalyticBackend backend{ssd::SsdModel::intelX25E()};
    runBatches(state, backend, false);
}
BENCHMARK(BM_AnalyticRead);

void
BM_AnalyticWrite(benchmark::State &state)
{
    storage::AnalyticBackend backend{ssd::SsdModel::intelX25E()};
    runBatches(state, backend, true);
}
BENCHMARK(BM_AnalyticWrite);

storage::FileBackendConfig
fileConfig(unsigned workers)
{
    storage::FileBackendConfig cfg;
    cfg.capacity_bytes = kPages * trace::kPageBytes;
    cfg.workers = workers;
    cfg.engine = storage::FileBackendConfig::Engine::Sync;
    return cfg;
}

void
BM_FileSyncRead(benchmark::State &state)
{
    storage::FileBackend backend(fileConfig(0));
    runBatches(state, backend, false);
}
BENCHMARK(BM_FileSyncRead);

void
BM_FileSyncWrite(benchmark::State &state)
{
    storage::FileBackend backend(fileConfig(0));
    runBatches(state, backend, true);
}
BENCHMARK(BM_FileSyncWrite);

void
BM_FilePoolRead(benchmark::State &state)
{
    storage::FileBackend backend(
        fileConfig(static_cast<unsigned>(state.range(0))));
    runBatches(state, backend, false);
}
BENCHMARK(BM_FilePoolRead)->Arg(2)->Arg(4);

void
BM_FilePoolWrite(benchmark::State &state)
{
    storage::FileBackend backend(
        fileConfig(static_cast<unsigned>(state.range(0))));
    runBatches(state, backend, true);
}
BENCHMARK(BM_FilePoolWrite)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
