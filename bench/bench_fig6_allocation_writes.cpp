/**
 * @file
 * Figure 6 — sieving effectiveness: allocation-writes.
 *
 * The number of allocation-writes (512-byte blocks written into the
 * cache on allocation) per day for each technique. Paper landmarks:
 * SieveStore-D/C sit more than two orders of magnitude below AOD and
 * WMNA; the random sieves help but remain ~8.5x worse than SieveStore.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Figure 6: allocation writes", "Fig. 6, Section 5.1",
                opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    struct Result
    {
        PolicyRun run;
        std::vector<core::DailyReport> daily;
        uint64_t week = 0;
    };
    std::vector<Result> results;
    int days = 0;
    for (const PolicyRun &run : figure5Roster()) {
        if (run.label == "Ideal")
            continue; // the oracle's installs are Fig. 7's ideal bar
        std::fprintf(stderr, "  running %s...\n", run.label.c_str());
        const auto app = runPolicy(run, opts, gen);
        Result res{run, app->daily(), 0};
        for (const auto &d : res.daily)
            res.week += d.totalAllocationBlocks();
        results.push_back(std::move(res));
        days = std::max(days, static_cast<int>(app->daily().size()));
    }

    std::vector<std::string> headers = {"Technique"};
    for (int d = 0; d < days; ++d)
        headers.push_back("day " + std::to_string(d + 1));
    headers.push_back("week");
    stats::Table t(headers);
    for (const auto &res : results) {
        auto &row = t.row().cell(res.run.label);
        for (int d = 0; d < days; ++d) {
            const auto di = static_cast<size_t>(d);
            const uint64_t v =
                di < res.daily.size()
                    ? res.daily[di].totalAllocationBlocks()
                    : 0;
            row.cell(v);
        }
        row.cell(res.week);
    }
    emit(t, opts);

    auto week = [&](const std::string &label) {
        for (const auto &r : results)
            if (r.run.label == label)
                return std::max<uint64_t>(1, r.week);
        return uint64_t(1);
    };
    const double sieve = 0.5 * (static_cast<double>(
                                    week("SieveStore-C")) +
                                static_cast<double>(
                                    week("SieveStore-D")));
    const double unsieved = static_cast<double>(
        std::min(week("AOD-32GB"), week("WMNA-32GB")));
    const double rand_avg = 0.5 * (static_cast<double>(
                                       week("RandSieve-C")) +
                                   static_cast<double>(
                                       week("RandSieve-BlkD")));
    note("\nweek ratios:\n");
    note("  best unsieved / SieveStore avg: %.0fx  [paper: more "
                "than two orders of magnitude]\n",
                unsieved / sieve);
    note("  random sieves / SieveStore avg: %.1fx  [paper: "
                "~8.5x]\n",
                rand_avg / sieve);
    note("  (log10 gap: %.1f decades)\n",
                std::log10(unsieved / sieve));
    return 0;
}
