/**
 * @file
 * Figure 8 — per-minute drive-IOPS occupancy.
 *
 * Compares WMNA's occupancy trajectory against SieveStore-D and
 * SieveStore-C across the 10,080 minutes of the week. The paper's
 * curves show WMNA peaking far above one drive (driven by
 * allocation-writes) while the SieveStore variants stay almost entirely
 * under occupancy 1. We print distribution summaries and an hour-level
 * peak profile; --csv additionally dumps the full per-minute series.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Figure 8: drive IOPS occupancy",
                "Fig. 8(a)/(b), Section 5.2", opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    const std::vector<PolicyRun> roster = {
        {"SieveStore-D", sim::PolicyKind::SieveStoreD, 16ULL << 30},
        {"SieveStore-C", sim::PolicyKind::SieveStoreC, 16ULL << 30},
        {"WMNA-32GB", sim::PolicyKind::WMNA, 32ULL << 30},
    };

    stats::Table t({"Technique", "mean", "p50", "p90", "p99", "p99.9",
                    "max", "minutes > 1 drive"});
    std::vector<std::pair<std::string, std::vector<double>>> series;
    for (const PolicyRun &run : roster) {
        std::fprintf(stderr, "  running %s...\n", run.label.c_str());
        const auto app = runPolicy(run, opts, gen);
        const auto *occ = app->occupancy();
        const auto occupancy = occ->occupancySeries();
        stats::EmpiricalDistribution dist;
        uint64_t above_one = 0;
        for (double o : occupancy) {
            dist.add(o);
            if (o > 1.0)
                ++above_one;
        }
        t.row()
            .cell(run.label)
            .cell(dist.mean(), 3)
            .cell(dist.percentile(0.50), 3)
            .cell(dist.percentile(0.90), 3)
            .cell(dist.percentile(0.99), 3)
            .cell(dist.percentile(0.999), 3)
            .cell(dist.max(), 3)
            .cell(above_one);
        series.emplace_back(run.label, occupancy);
    }
    emit(t, opts);

    // Hour-level peak profile: the shape of the paper's curves.
    note("\nper-hour peak occupancy (chronological; rows are "
                "12-hour stripes):\n");
    const size_t hours = 24 * 8;
    for (const auto &[label, occupancy] : series) {
        note("%s:\n", label.c_str());
        for (size_t h = 0; h < hours; ++h) {
            double peak = 0.0;
            for (size_t m = h * 60;
                 m < std::min((h + 1) * 60, occupancy.size()); ++m)
                peak = std::max(peak, occupancy[m]);
            if (h % 12 == 0)
                note("  h%03zu ", h);
            // One glyph per hour: '.' <0.25, '-' <0.5, '+' <1, digit =
            // ceil(occupancy) above 1.
            char glyph = '.';
            if (peak >= 1.0)
                glyph = static_cast<char>(
                    '0' + std::min(9.0, std::ceil(peak)));
            else if (peak >= 0.5)
                glyph = '+';
            else if (peak >= 0.25)
                glyph = '-';
            std::putchar(glyph);
            if (h % 12 == 11)
                std::putchar('\n');
        }
        std::putchar('\n');
    }
    note("[paper: WMNA's peaks (gray curve) manifest the cost of "
                "allocation-writes; SieveStore variants stay mostly "
                "under occupancy 1]\n");

    if (opts.csv) {
        note("\nminute,");
        for (const auto &[label, _] : series)
            note("%s,", label.c_str());
        note("\n");
        size_t minutes = 0;
        for (const auto &[_, s] : series)
            minutes = std::max(minutes, s.size());
        for (size_t m = 0; m < minutes; ++m) {
            note("%zu", m);
            for (const auto &[_, s] : series)
                note(",%.4f", m < s.size() ? s[m] : 0.0);
            note("\n");
        }
    }
    return 0;
}
