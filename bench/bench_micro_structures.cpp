/**
 * @file
 * Microbenchmarks (google-benchmark) for the data structures on the
 * appliance's critical path: IMCT/MCT updates, the two-tier sieve's
 * per-miss cost, block-cache operations, and workload generation.
 *
 * The paper's feasibility argument is that "request processing is
 * entirely in memory" and cheap; these benchmarks quantify it.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <span>
#include <vector>
#include <string>
#include <unistd.h>

#include "analysis/access_log.hpp"
#include "cache/block_cache.hpp"
#include "cache/ghost_cache.hpp"
#include "cache/replacement.hpp"
#include "core/appliance.hpp"
#include "core/imct.hpp"
#include "core/mct.hpp"
#include "core/sievestore_c.hpp"
#include "trace/synthetic.hpp"
#include "util/flat_index.hpp"
#include "util/random.hpp"

using namespace sievestore;

namespace {

void
BM_ImctRecordMiss(benchmark::State &state)
{
    core::Imct imct(static_cast<size_t>(state.range(0)),
                    core::WindowSpec::paperDefault());
    util::Rng rng(1);
    uint64_t t = 0;
    for (auto _ : state) {
        t += 1000;
        benchmark::DoNotOptimize(imct.recordMiss(rng.next(), t));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImctRecordMiss)->Arg(1 << 16)->Arg(1 << 22);

void
BM_MctAdmitRecordRemove(benchmark::State &state)
{
    core::Mct mct(core::WindowSpec::paperDefault());
    util::Rng rng(2);
    for (auto _ : state) {
        const trace::BlockId b = rng.nextBelow(1 << 20);
        if (!mct.contains(b))
            mct.admit(b, 0);
        if (mct.recordMiss(b, 0) >= 4)
            mct.remove(b);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MctAdmitRecordRemove);

void
BM_SieveStoreCOnMiss(benchmark::State &state)
{
    core::SieveStoreCConfig cfg;
    cfg.imct_slots = 1 << 20;
    core::SieveStoreCPolicy sieve(cfg);
    util::Rng rng(3);
    trace::BlockAccess a;
    a.op = trace::Op::Read;
    uint64_t t = 0;
    for (auto _ : state) {
        // Zipf-ish mix: a small hot set plus a cold tail.
        a.block = rng.nextBool(0.3) ? rng.nextBelow(1000)
                                    : rng.next();
        t += 500;
        a.time = t;
        benchmark::DoNotOptimize(sieve.onMiss(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SieveStoreCOnMiss);

/**
 * Both cache engines under one harness: engine 0 is the flat
 * block-index engine, engine 1 the node-based Reference* policies it
 * replaced. The flat-hot-path acceptance bar (resident-hit throughput
 * and per-resident-block bytes) reads straight off these counters.
 */
cache::BlockCache
makeEngineCache(uint64_t capacity, int64_t engine,
                cache::EvictionKind kind)
{
    if (engine == 0)
        return cache::BlockCache(capacity,
                                 cache::EvictionSpec{kind, 1});
    return cache::BlockCache(
        capacity, cache::makeReferencePolicy({kind, 1}, capacity));
}

void
setEngineLabel(benchmark::State &state, const cache::BlockCache &cache)
{
    state.SetLabel(std::string(state.range(0) == 0 ? "flat/"
                                                   : "reference/") +
                   cache.policyName());
    state.counters["bytes_per_block"] = benchmark::Counter(
        static_cast<double>(cache.memoryBytes()) /
        static_cast<double>(std::max<uint64_t>(1, cache.size())));
}

void
BM_BlockCacheAccessHit(benchmark::State &state)
{
    const auto kind = static_cast<cache::EvictionKind>(state.range(1));
    auto cache = makeEngineCache(1 << 16, state.range(0), kind);
    for (trace::BlockId b = 0; b < (1 << 16); ++b)
        cache.insert(b);
    util::Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.nextBelow(1 << 16)));
    state.SetItemsProcessed(state.iterations());
    setEngineLabel(state, cache);
}
BENCHMARK(BM_BlockCacheAccessHit)
    ->ArgNames({"engine", "kind"})
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4, 5, 6, 7}});

void
BM_BlockCacheInsertEvict(benchmark::State &state)
{
    const auto kind = static_cast<cache::EvictionKind>(state.range(1));
    auto cache = makeEngineCache(1 << 14, state.range(0), kind);
    util::Rng rng(5);
    trace::BlockId next = 0;
    for (auto _ : state) {
        if (!cache.access(next))
            cache.insert(next);
        ++next;
    }
    state.SetItemsProcessed(state.iterations());
    setEngineLabel(state, cache);
}
BENCHMARK(BM_BlockCacheInsertEvict)
    ->ArgNames({"engine", "kind"})
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4, 5, 6, 7}});

void
BM_BlockCacheMixedHotCold(benchmark::State &state)
{
    // The appliance's actual access mix: mostly hits in a hot set,
    // with a cold tail forcing insert+evict churn.
    const auto kind = static_cast<cache::EvictionKind>(state.range(1));
    auto cache = makeEngineCache(1 << 14, state.range(0), kind);
    util::Rng rng(6);
    for (auto _ : state) {
        const trace::BlockId b = rng.nextBool(0.9)
                                     ? rng.nextBelow(1 << 13)
                                     : rng.next();
        if (!cache.access(b))
            cache.insert(b);
    }
    state.SetItemsProcessed(state.iterations());
    setEngineLabel(state, cache);
}
BENCHMARK(BM_BlockCacheMixedHotCold)
    ->ArgNames({"engine", "kind"})
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4, 5, 6, 7}});

/**
 * The policy fabric's shared history substrate: contains + insert on
 * a ghost cache running at budget, where every new key evicts the
 * oldest. ARC's B1/B2 directory probes and the adaptive sieve's
 * shadow capture test are exactly this loop, so its cost bounds the
 * fabric's per-access history overhead. Probes mix tracked keys
 * (front-refresh path) with fresh ones (insert + evict-oldest path).
 */
void
BM_GhostCacheLookup(benchmark::State &state)
{
    const auto budget = static_cast<uint64_t>(state.range(0));
    cache::GhostCache ghost(budget);
    for (uint64_t b = 0; b < budget; ++b)
        ghost.insert(b);
    util::Rng rng(7);
    uint64_t tracked = 0;
    for (auto _ : state) {
        const trace::BlockId b = rng.nextBool(0.5)
                                     ? rng.nextBelow(budget)
                                     : rng.next();
        tracked += ghost.contains(b) ? 1u : 0u;
        ghost.insert(b);
    }
    benchmark::DoNotOptimize(tracked);
    state.SetItemsProcessed(state.iterations());
    state.counters["bytes_per_key"] = benchmark::Counter(
        static_cast<double>(ghost.memoryBytes()) /
        static_cast<double>(std::max<uint64_t>(1, ghost.size())));
}
BENCHMARK(BM_GhostCacheLookup)
    ->ArgName("budget")
    ->Arg(1 << 12)
    ->Arg(1 << 18);

void
BM_AccessLogAppendAndReduce(benchmark::State &state)
{
    // The SieveStore-D substrate: disk-backed <addr,1> logging with
    // periodic compaction, then the epoch-end threshold reduction.
    const auto dir = std::filesystem::temp_directory_path() /
                     ("ss_bench_log_" + std::to_string(::getpid()));
    analysis::AccessLogConfig cfg;
    cfg.partitions = 8;
    analysis::AccessLog log(dir.string(), cfg);
    util::Rng rng(9);
    int64_t logged = 0;
    for (auto _ : state) {
        for (int i = 0; i < 100000; ++i)
            log.log(rng.nextBool(0.3) ? rng.nextBelow(1000)
                                      : rng.next());
        benchmark::DoNotOptimize(log.reduce(10));
        log.beginEpoch();
        logged += 100000;
    }
    state.SetItemsProcessed(logged);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_AccessLogAppendAndReduce)->Unit(benchmark::kMillisecond);

void
BM_ZipfSample(benchmark::State &state)
{
    util::ZipfSampler zipf(1000000, 1.0);
    util::Rng rng(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_SyntheticDayGeneration(benchmark::State &state)
{
    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    trace::SyntheticConfig cfg;
    cfg.scale = 1.0 / 65536.0;
    auto gen = trace::SyntheticEnsembleGenerator::paper(ensemble, cfg);
    uint64_t requests = 0;
    for (auto _ : state) {
        const auto reqs = gen.generateDay(3);
        requests += reqs.size();
        benchmark::DoNotOptimize(reqs.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(requests));
}
BENCHMARK(BM_SyntheticDayGeneration);

/**
 * The batched FlatIndex lookup kernel against the scalar probe loop
 * it amortizes, at two table sizes: one that fits the cache hierarchy
 * and one that misses it. The kernel's win is hash-ahead plus
 * software prefetch hiding the home-slot miss latency, so the
 * out-of-cache table is where the gap shows; the in-cache table
 * bounds the kernel's bookkeeping overhead. The dispatch label
 * records whether the AVX2 dib scan was active.
 */
void
BM_FlatIndexFindBatch(benchmark::State &state)
{
    const bool batched = state.range(0) != 0;
    util::FlatIndex<uint64_t> idx;
    idx.reserve(static_cast<size_t>(state.range(1)));
    util::Rng rng(6);
    std::vector<uint64_t> present;
    while (idx.hasCapacityFor(1)) {
        const uint64_t key = rng.next();
        *idx.findOrInsert(key).first = key;
        present.push_back(key);
    }
    // Probe stream: uniformly random residents plus a 25% absent
    // tail, so both hit and chain-termination paths are measured.
    std::vector<uint64_t> probes(1 << 16);
    for (uint64_t &p : probes)
        p = rng.nextBool(0.25) ? rng.next()
                               : present[rng.nextBelow(present.size())];

    constexpr size_t kChunk = util::FlatIndex<uint64_t>::kBatchChunk;
    uint64_t *out[kChunk];
    uint64_t found = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < probes.size(); i += kChunk) {
            const size_t n = std::min(kChunk, probes.size() - i);
            if (batched) {
                found += idx.findBatch(
                    std::span<const uint64_t>(probes.data() + i, n),
                    std::span<uint64_t *>(out, n));
            } else {
                for (size_t j = 0; j < n; ++j)
                    found += idx.find(probes[i + j]) != nullptr;
            }
        }
    }
    benchmark::DoNotOptimize(found);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(probes.size()));
    state.SetLabel(std::string(batched ? "batched/" : "scalar/") +
                   (util::batchSimdEnabled() ? "avx2" : "no-simd"));
}
BENCHMARK(BM_FlatIndexFindBatch)
    ->ArgNames({"batched", "slots"})
    ->ArgsProduct({{0, 1}, {1 << 14, 1 << 22}});

/**
 * The appliance's batched entry point at varying batch sizes: how
 * much per-request overhead (virtual decode, day detection, guard
 * arming) the batch refactor amortizes. One calendar day of the
 * synthetic workload replays repeatedly through a flat SieveStore-C
 * appliance; batch=1 reproduces the per-request path.
 */
void
BM_ApplianceProcessBatch(benchmark::State &state)
{
    const size_t batch = static_cast<size_t>(state.range(0));
    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    trace::SyntheticConfig cfg;
    cfg.scale = 1.0 / 65536.0;
    auto gen = trace::SyntheticEnsembleGenerator::paper(ensemble, cfg);
    const auto reqs = gen.generateDay(3); // one day: no epoch churn

    core::ApplianceConfig ac;
    ac.cache_blocks = 1 << 14;
    ac.track_occupancy = false;
    ac.sieve.kind = core::SieveKind::SieveStoreC;
    ac.sieve.sieve_c.imct_slots = 1 << 16;
    core::Appliance app(ac);

    uint64_t requests = 0;
    for (auto _ : state) {
        size_t i = 0;
        while (i < reqs.size()) {
            const size_t n = std::min(batch, reqs.size() - i);
            app.processBatch(std::span<const trace::Request>(
                reqs.data() + i, n));
            i += n;
        }
        requests += reqs.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(requests));
}
BENCHMARK(BM_ApplianceProcessBatch)
    ->ArgName("batch")
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256);

} // namespace

BENCHMARK_MAIN();
