/**
 * @file
 * Shared infrastructure for the figure/table benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's artifacts on the
 * synthetic ensemble workload. Common concerns handled here: scale
 * selection (--scale-denominator N runs at 1/N of the paper's traffic;
 * cache capacities and SSD ratings are scaled identically so relative
 * results keep their shape), seeding, CSV output, and the standard
 * policy roster of Figure 5.
 */

#ifndef SIEVESTORE_BENCH_BENCH_COMMON_HPP
#define SIEVESTORE_BENCH_BENCH_COMMON_HPP

#include <memory>
#include <string>
#include <vector>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"

namespace sievestore {
namespace bench {

/** Command-line options shared by all benches. */
struct BenchOptions
{
    /** Trace volume = paper volume / inv_scale. */
    double inv_scale = 4096.0;
    /** Generator master seed. */
    uint64_t seed = 0x51e5e5704eULL;
    /** Emit CSV instead of aligned tables. */
    bool csv = false;
    /** Emit JSON instead of aligned tables (takes precedence over
     * csv; machine-readable output for the CI perf-smoke job). */
    bool json = false;
    /** Requests per replay batch (see sim/batch.hpp). A pure
     * performance knob: results are independent of it. */
    size_t batch = trace::kDefaultBatchRequests;
    /** Continuous-sieve kind substituted wherever a roster entry
     * selects SieveStore-C: `--sieve=adaptive` swaps in the online
     * adaptive sieve across every bench without editing rosters. */
    sim::PolicyKind sieve_kind = sim::PolicyKind::SieveStoreC;

    /** Parse --scale-denominator/--seed/--csv/--json/--batch/--sieve;
     * exits on --help. */
    static BenchOptions parse(int argc, char **argv);

    /** Synthetic generator configuration at this scale. */
    trace::SyntheticConfig traceConfig() const;

    /** Scaled SSD model (IOPS shrink with the trace). */
    ssd::SsdModel scaledSsd(uint64_t capacity_bytes) const;

    /** Scaled cache capacity in 512-byte blocks. */
    uint64_t scaledCacheBlocks(uint64_t full_bytes) const;

    /** IMCT sized for this scale (matches the paper's ~8 GB state). */
    size_t scaledImctSlots() const;
};

/** One evaluated configuration of Figure 5/6/7. */
struct PolicyRun
{
    std::string label;
    sim::PolicyKind kind;
    /** Full-scale cache bytes (16 or 32 GB in the paper). */
    uint64_t cache_bytes;
};

/** The Figure 5 roster: Ideal, sieves, random sieves, unsieved 16/32 GB. */
std::vector<PolicyRun> figure5Roster();

/**
 * Build the appliance for a roster entry and replay the whole trace
 * through it. Handles the Ideal profiling pass. The generator is reset
 * before and after.
 */
std::unique_ptr<core::Appliance>
runPolicy(const PolicyRun &run, const BenchOptions &opts,
          trace::SyntheticEnsembleGenerator &gen);

/** Print the standard bench banner (scale, seed, paper pointer).
 * Suppressed under --json so stdout stays parseable. */
void printBanner(const std::string &title, const std::string &paper_ref,
                 const BenchOptions &opts);

/** Emit a table to stdout in the format the options selected. */
void emit(const stats::Table &table, const BenchOptions &opts);

/**
 * printf-style human commentary around the tables (headline ratios,
 * paper cross-references, alternate renderings). Suppressed entirely
 * under --json so stdout carries nothing but the emitted tables: one
 * JSON array per table, a whitespace-separated stream when a bench
 * prints several.
 */
void note(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace bench
} // namespace sievestore

#endif // SIEVESTORE_BENCH_BENCH_COMMON_HPP
