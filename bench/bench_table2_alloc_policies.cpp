/**
 * @file
 * Table 2 — the impact of allocation policies under an oracle
 * replacement policy, plus a simulated cross-check.
 *
 * The analytical half reproduces the paper's arithmetic exactly (35 %
 * hit rate, 3:1 reads:writes). The simulated half replays the synthetic
 * week through real AOD/WMNA/SieveStore-C appliances and reports the
 * same columns as measured fractions, confirming the model's shape:
 * unsieved policies turn most accesses into SSD writes, sieving keeps
 * allocation-writes at epsilon.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/analytic.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Table 2: allocation-policy impact",
                "Table 2, Section 3.1", opts);

    note("analytical model (hit rate 35%%, 3:1 reads:writes, all "
                "entries %% of accesses):\n");
    stats::Table ta({"Allocation policy", "Hits", "Misses",
                     "Alloc-writes", "Read hits",
                     "Write hits + Alloc-writes", "SSD ops"});
    struct Row
    {
        const char *name;
        sim::Table2Policy policy;
    };
    for (const Row &r :
         {Row{"Allocate-on-demand (AOD)", sim::Table2Policy::AOD},
          Row{"Write-no-allocate (WMNA)", sim::Table2Policy::WMNA},
          Row{"Ideal-selective-allocate (ISA)",
              sim::Table2Policy::ISA}}) {
        const auto row = sim::table2Row(r.policy);
        ta.row()
            .cell(r.name)
            .cellPercent(row.hits, 2)
            .cellPercent(row.misses, 2)
            .cellPercent(row.alloc_writes, 2)
            .cellPercent(row.read_hits, 2)
            .cellPercent(row.write_ops, 2)
            .cellPercent(row.ssd_ops, 2);
    }
    emit(ta, opts);
    note("[paper row AOD: 35 | 65 | 65 | 26.25 | 73.75; WMNA: "
                "alloc 48.75, writes 57.5; ISA: eps, <9.75]\n\n");

    note("simulated cross-check on the synthetic week (measured "
                "fractions of all accesses):\n");
    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    stats::Table ts({"Policy (16GB cache)", "Hits", "Alloc-writes",
                     "Read hits", "Write hits + Alloc-writes"});
    for (const PolicyRun &run :
         {PolicyRun{"AOD", sim::PolicyKind::AOD, 16ULL << 30},
          PolicyRun{"WMNA", sim::PolicyKind::WMNA, 16ULL << 30},
          PolicyRun{"SieveStore-C (~ISA)", sim::PolicyKind::SieveStoreC,
                    16ULL << 30}}) {
        const auto app = runPolicy(run, opts, gen);
        const auto t = app->totals();
        const double n = static_cast<double>(t.accesses);
        ts.row()
            .cell(run.label)
            .cellPercent(t.hitRatio(), 2)
            .cellPercent(
                static_cast<double>(t.allocation_write_blocks) / n, 2)
            .cellPercent(static_cast<double>(t.read_hits) / n, 2)
            .cellPercent(
                static_cast<double>(t.write_hits +
                                    t.allocation_write_blocks) /
                    n,
                2);
    }
    emit(ts, opts);
    note("[shape check: AOD/WMNA turn the majority of accesses "
                "into slow SSD writes; the sieve's allocation-writes "
                "are epsilon]\n");
    return 0;
}
