/**
 * @file
 * Section 3.1's premise, simulated: replacement cannot substitute for
 * sieving.
 *
 * Table 2's thought experiment grants AOD and WMNA an *oracle
 * replacement policy* that keeps each day's top-1 % blocks resident,
 * and shows that even then the allocation-writes remain. This harness
 * runs that exact configuration live: the cache's replacement policy is
 * OracleRetainPolicy with each day's true top-1 % set installed ahead
 * of time (from a profiling pass), under AOD, WMNA, and — for contrast
 * — the same oracle protection with SieveStore-C allocation, plus plain
 * LRU rows. The conclusion the paper draws: the allocation policy, not
 * the replacement policy, is where the SSD-write problem lives.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "cache/replacement.hpp"
#include "core/rand_sieve.hpp"
#include "core/sievestore_c.hpp"
#include "core/unsieved.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;

namespace {

/** Build the continuous policy under test. */
std::unique_ptr<core::AllocationPolicy>
makePolicy(const std::string &name, const BenchOptions &opts)
{
    if (name == "AOD")
        return std::make_unique<core::AodPolicy>();
    if (name == "WMNA")
        return std::make_unique<core::WmnaPolicy>();
    core::SieveStoreCConfig cfg;
    cfg.imct_slots = opts.scaledImctSlots();
    return std::make_unique<core::SieveStoreCPolicy>(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Section 3.1: oracle replacement is not enough",
                "Table 2's premise, run live", opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    // Profiling pass: each day's top-1 % blocks.
    std::fprintf(stderr, "  profiling daily top-1%% sets...\n");
    const auto day_sets = sim::perDayTopBlocks(gen, 0.01);

    stats::Table t({"Allocation policy", "Replacement", "Hits",
                    "Alloc-writes", "SSD write blocks",
                    "writes/hit-blocks"});
    for (const char *policy_name : {"AOD", "WMNA", "SieveStore-C"}) {
        for (const bool oracle : {true, false}) {
            std::fprintf(stderr, "  running %s + %s...\n", policy_name,
                         oracle ? "oracle" : "LRU");
            core::ApplianceConfig ac;
            ac.cache_blocks = opts.scaledCacheBlocks(32ULL << 30);
            ac.ssd = opts.scaledSsd(32ULL << 30);
            ac.track_occupancy = false;
            cache::OracleRetainPolicy *retain = nullptr;
            if (oracle) {
                ac.replacement = [&retain]() {
                    auto p =
                        std::make_unique<cache::OracleRetainPolicy>();
                    retain = p.get();
                    return p;
                };
            }
            core::Appliance app(ac, makePolicy(policy_name, opts));

            // Drive day by day so the oracle's protected set tracks
            // the day being replayed.
            gen.reset();
            for (int d = 0; d < gen.days(); ++d) {
                const auto di = static_cast<size_t>(d);
                if (retain && di < day_sets.size())
                    retain->setProtected({day_sets[di].begin(),
                                          day_sets[di].end()});
                for (const auto &req : gen.generateDay(d))
                    app.processRequest(req);
                app.finishDay(d);
            }
            app.finishTrace();
            gen.reset();

            const auto totals = app.totals();
            const uint64_t ssd_writes =
                totals.write_hits + totals.allocation_write_blocks;
            t.row()
                .cell(policy_name)
                .cell(oracle ? "oracle (top-1% retained)" : "LRU")
                .cellPercent(totals.hitRatio())
                .cell(totals.allocation_write_blocks)
                .cell(ssd_writes)
                .cell(static_cast<double>(ssd_writes) /
                          static_cast<double>(
                              std::max<uint64_t>(1, totals.hits)),
                      2);
        }
    }
    emit(t, opts);
    note("\n[the paper's point: giving the unsieved policies a "
                "perfect replacement policy improves their hit ratio "
                "but cannot touch their allocation-writes — only "
                "selective *allocation* can; SieveStore-C needs no "
                "oracle to get both]\n");
    return 0;
}
