/**
 * @file
 * Figure 2 — popularity-skew characterization.
 *
 * (a) average access count per popularity bin (log-log in the paper):
 *     sampled at key percentile ranks per day;
 * (b) cumulative fraction of accesses vs percentile rank;
 * (c) the zoomed CDF over the top 5 % of blocks.
 *
 * Paper landmarks to compare against: the 0.01st-percentile bin
 * averages >1000 accesses/day, the bin at the 1st percentile <10 (max
 * 10, 11 on day 2), the knee of the CDF falls below 1 % of blocks, and
 * the top 1 % captures 14-53 % of accesses depending on the day.
 */

#include <cstdio>
#include <iostream>

#include "analysis/popularity.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;
using analysis::PopularityProfile;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Figure 2: popularity skew", "Fig. 2(a)-(c), Section 2",
                opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    // (a) per-bin average counts at landmark percentiles.
    const std::vector<double> ranks = {0.0001, 0.001, 0.01, 0.03,
                                       0.10,   0.25,  0.50, 1.0};
    stats::Table ta({"Day", "0.01%", "0.1%", "1%", "3%", "10%", "25%",
                     "50%", "100%"});
    // (b)+(c) cumulative shares.
    stats::Table tb({"Day", "top 0.1%", "top 1%", "top 3%", "top 5%",
                     "top 10%", "top 50%"});

    std::vector<PopularityProfile> profiles;
    for (int d = 0; d < gen.days(); ++d) {
        profiles.emplace_back(
            analysis::countBlockAccesses(gen.generateDay(d)));
    }

    for (int d = 0; d < gen.days(); ++d) {
        const auto &p = profiles[static_cast<size_t>(d)];
        if (p.uniqueBlocks() == 0)
            continue;
        auto &row = ta.row().cell("day " + std::to_string(d + 1));
        for (double r : ranks)
            row.cell(static_cast<double>(p.countAtPercentile(r)), 1);
        auto &row2 = tb.row().cell("day " + std::to_string(d + 1));
        for (double r : {0.001, 0.01, 0.03, 0.05, 0.10, 0.50})
            row2.cellPercent(p.topShare(r));
    }

    note("(a) access count of the block at each percentile "
                "rank:\n");
    emit(ta, opts);
    note("\n(b)/(c) cumulative share of accesses captured by the "
                "most popular blocks:\n");
    emit(tb, opts);

    // Landmark summary vs O1.
    note("\nO1 landmarks (paper expectation in brackets):\n");
    stats::Table tl({"Day", "top-0.01% bin avg [>1000]",
                     "count @1% [~10]", "<=10 acc [99%]",
                     "<=4 acc [97%]", "singletons [~50%]",
                     "top-1% share [14-53%]"});
    for (int d = 0; d < gen.days(); ++d) {
        const auto &p = profiles[static_cast<size_t>(d)];
        if (p.uniqueBlocks() == 0)
            continue;
        tl.row()
            .cell("day " + std::to_string(d + 1))
            .cell(p.binAverage(0), 0)
            .cell(p.countAtPercentile(0.01))
            .cellPercent(p.fractionWithCountAtMost(10))
            .cellPercent(p.fractionWithCountAtMost(4))
            .cellPercent(p.fractionWithCountAtMost(1))
            .cellPercent(p.topShare(0.01));
    }
    emit(tl, opts);

    // The 16-32 GB sizing argument.
    double max_top_gb = 0.0;
    for (const auto &p : profiles) {
        const double gb = 0.01 * static_cast<double>(p.uniqueBlocks()) *
                          512.0 * opts.inv_scale / 1e9;
        max_top_gb = std::max(max_top_gb, gb);
    }
    note("\nmax daily top-1%% footprint (scaled back): %.1f GB "
                "[paper: at most 11.9 GB — fits a 16-32 GB SSD with "
                "room to spare]\n",
                max_top_gb);
    return 0;
}
