/**
 * @file
 * Figure 7 — total SSD accesses, decomposed.
 *
 * Per day and technique: SSD operations at 512-byte granularity split
 * into read hits, write hits, and allocation-writes. Paper landmarks:
 * without sieving, allocation-writes dominate all SSD traffic (and SSD
 * writes are slow); for the SieveStore variants the allocation-write
 * component is a nearly-invisible sliver. Includes the Section 5.1
 * wearout analysis: SieveStore's total writes stay under the endurance
 * budget for a >10-year lifetime.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Figure 7: total SSD accesses",
                "Fig. 7 + the Section 5.1 wearout analysis", opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    const std::vector<PolicyRun> roster = {
        {"SieveStore-D", sim::PolicyKind::SieveStoreD, 16ULL << 30},
        {"SieveStore-C", sim::PolicyKind::SieveStoreC, 16ULL << 30},
        {"RandSieve-C", sim::PolicyKind::RandSieveC, 16ULL << 30},
        {"AOD-32GB", sim::PolicyKind::AOD, 32ULL << 30},
        {"WMNA-32GB", sim::PolicyKind::WMNA, 32ULL << 30},
    };

    stats::Table t({"Technique", "Day", "Read hits", "Write hits",
                    "Alloc-writes", "Total SSD ops", "Alloc share"});
    for (const PolicyRun &run : roster) {
        std::fprintf(stderr, "  running %s...\n", run.label.c_str());
        const auto app = runPolicy(run, opts, gen);
        for (size_t d = 0; d < app->daily().size(); ++d) {
            const auto &day = app->daily()[d];
            if (day.accesses == 0 && day.totalAllocationBlocks() == 0)
                continue;
            const uint64_t total = day.totalSsdBlockOps();
            t.row()
                .cell(run.label)
                .cell("day " + std::to_string(d + 1))
                .cell(day.read_hits)
                .cell(day.write_hits)
                .cell(day.totalAllocationBlocks())
                .cell(total)
                .cellPercent(total
                                 ? static_cast<double>(
                                       day.totalAllocationBlocks()) /
                                       static_cast<double>(total)
                                 : 0.0);
        }
        // Wearout: total SSD writes (write hits + allocation-writes).
        const auto totals = app->totals();
        const uint64_t write_blocks =
            totals.write_hits + totals.totalAllocationBlocks();
        const double write_blocks_full =
            static_cast<double>(write_blocks) * opts.inv_scale;
        const double years = ssd::enduranceYears(
            ssd::SsdModel::intelX25E(),
            static_cast<uint64_t>(write_blocks_full * 512.0), 7.0);
        note("%s: %.0fM 512B writes/day at full scale -> "
                    "endurance %.1f years%s\n",
                    run.label.c_str(), write_blocks_full / 7.0 / 1e6,
                    years,
                    run.label.rfind("SieveStore", 0) == 0
                        ? "  [paper: <500M/day -> >10 years]"
                        : "");
    }
    note("\n");
    emit(t, opts);
    note("\n[paper: without sieving, allocation-writes are the "
                "dominant fraction of all SSD accesses; for SieveStore "
                "they are a nearly-invisible sliver]\n");
    return 0;
}
