/**
 * @file
 * Figure 3 — popularity-skew variation (observation O2).
 *
 * (a) server-to-server: Prxy (extreme skew) vs Src1 (near-linear CDF);
 * (b) volume-to-volume: Web volume 0 vs volume 1;
 * (c) time: the web-staging server's skew on different days;
 * (d) per-server composition of the ensemble's top-1 % blocks per day.
 */

#include <cstdio>
#include <iostream>

#include "analysis/popularity.hpp"
#include "analysis/skew.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;
using analysis::BlockCounts;
using analysis::PopularityProfile;

namespace {

void
printCdfRow(stats::Table &t, const std::string &label,
            const PopularityProfile &p)
{
    auto &row = t.row().cell(label);
    for (double r : {0.01, 0.05, 0.10, 0.25, 0.50})
        row.cellPercent(p.topShare(r));
    row.cell(analysis::giniOfCounts(p), 3);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Figure 3: skew variation", "Fig. 3(a)-(d), Section 2",
                opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    const int day = 3;

    // (a) Prxy vs Src1.
    note("(a) server-to-server (day %d): cumulative access share "
                "captured by top-X%% of the server's blocks\n",
                day + 1);
    stats::Table ta({"Server", "top 1%", "top 5%", "top 10%", "top 25%",
                     "top 50%", "Gini"});
    for (const char *key : {"Prxy", "Src1"}) {
        const auto reqs = gen.generateServerDay(
            ensemble.serverByKey(key).id, day);
        printCdfRow(ta, key,
                    PopularityProfile(
                        analysis::countBlockAccesses(reqs)));
    }
    emit(ta, opts);
    note("[paper: Prxy — a small fraction of blocks accounts for "
                "nearly all accesses; Src1 — near-linear]\n\n");

    // (b) Web volume 0 vs volume 1.
    note("(b) volume-to-volume within Web (day %d):\n", day + 1);
    const auto &web = ensemble.serverByKey("Web");
    const auto web_reqs = gen.generateServerDay(web.id, day);
    BlockCounts v0, v1;
    for (const auto &r : web_reqs) {
        for (uint32_t i = 0; i < r.length_blocks; ++i) {
            if (r.volume == web.volume_ids[0])
                ++v0[r.blockAt(i)];
            else if (r.volume == web.volume_ids[1])
                ++v1[r.blockAt(i)];
        }
    }
    stats::Table tb({"Volume", "top 1%", "top 5%", "top 10%", "top 25%",
                     "top 50%", "Gini"});
    printCdfRow(tb, "Web vol-0", PopularityProfile(v0));
    printCdfRow(tb, "Web vol-1", PopularityProfile(v1));
    emit(tb, opts);
    note("[paper: volume-0 exhibits significantly more skew than "
                "volume-1]\n\n");

    // (c) Stg across days.
    note("(c) day-to-day for the web-staging server (Stg):\n");
    stats::Table tc({"Day", "top 1%", "top 5%", "top 10%", "top 25%",
                     "top 50%", "Gini"});
    const auto stg = ensemble.serverByKey("Stg").id;
    for (int d = 1; d < gen.days(); ++d) {
        const auto reqs = gen.generateServerDay(stg, d);
        printCdfRow(tc, "day " + std::to_string(d + 1),
                    PopularityProfile(
                        analysis::countBlockAccesses(reqs)));
    }
    emit(tc, opts);
    note("[paper: Stg day 5 exhibits significant skew, day 3 "
                "does not — skew varies in time]\n\n");

    // (d) composition of the ensemble top 1 % by server per day.
    note("(d) server composition of the ensemble's top-1%% "
                "blocks per day:\n");
    std::vector<std::string> headers = {"Server"};
    for (int d = 0; d < gen.days(); ++d)
        headers.push_back("day " + std::to_string(d + 1));
    stats::Table td(headers);
    std::vector<std::vector<double>> comps;
    for (int d = 0; d < gen.days(); ++d) {
        PopularityProfile p(
            analysis::countBlockAccesses(gen.generateDay(d)));
        comps.push_back(
            analysis::serverCompositionOfTop(p, ensemble, 0.01));
    }
    for (const auto &srv : ensemble.servers()) {
        auto &row = td.row().cell(srv.key);
        for (int d = 0; d < gen.days(); ++d)
            row.cellPercent(comps[static_cast<size_t>(d)][srv.id]);
    }
    emit(td, opts);
    note("[paper: the contribution of each server varies across "
                "days — no static partition can capture it]\n");
    return 0;
}
