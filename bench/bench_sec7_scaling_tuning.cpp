/**
 * @file
 * Section 7 — forward-looking issues: scaling and tuning.
 *
 * (1) Scaling: hash-partition the block space across N appliance nodes
 *     (each with 1/N of the capacity and its own SSD). Because every
 *     node sees a uniform slice of the ensemble's hot set, the captured
 *     fraction stays flat while per-node drive load divides — the
 *     scale-out that preserves the ensemble-sharing property, unlike a
 *     per-server split.
 * (2) Tuning: the self-tuning sieve holds allocation churn to a budget
 *     by adjusting t2 daily, removing the paper's hand-tuned threshold.
 * (3) End-to-end payoff: the HDD-vs-SSD service-time model translates
 *     captured accesses into the ensemble's mean-service-time speedup.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/auto_tune.hpp"
#include "sim/sharded.hpp"
#include "ssd/hdd_model.hpp"
#include "stats/table.hpp"
#include "util/check.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Section 7: scaling and tuning",
                "Section 7 (forward-looking directions, fleshed out)",
                opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    // (1) Scaling sweep, replayed serially and through the parallel
    // engine: capture must be identical (same deployment, same
    // trace), and the parallel column shows what the threading
    // substrate buys at each node count.
    note("(1) block-space sharding across appliance nodes "
                "(16 GB total, SieveStore-C):\n");
    stats::Table t1({"Nodes", "Captured", "Alloc-writes",
                     "Worst node drives @99.9%", "Load imbalance",
                     "Parallel speedup"});
    for (size_t shards : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
        sim::ShardedConfig cfg;
        cfg.shards = shards;
        cfg.policy.kind = sim::PolicyKind::SieveStoreC;
        cfg.policy.sieve_c.imct_slots =
            std::max<size_t>(1024, opts.scaledImctSlots() / shards);
        cfg.node.cache_blocks = std::max<uint64_t>(
            64, opts.scaledCacheBlocks(16ULL << 30) / shards);
        cfg.node.ssd = opts.scaledSsd((16ULL << 30) / shards);
        std::fprintf(stderr, "  running %zu nodes...\n", shards);
        gen.reset();
        auto start = std::chrono::steady_clock::now();
        const auto result = runSharded(gen, cfg);
        const std::chrono::duration<double> serial_s =
            std::chrono::steady_clock::now() - start;
        std::fprintf(stderr, "  running %zu nodes (parallel)...\n",
                     shards);
        gen.reset();
        start = std::chrono::steady_clock::now();
        const auto par = runShardedParallel(gen, cfg);
        const std::chrono::duration<double> parallel_s =
            std::chrono::steady_clock::now() - start;
        const auto totals = result.totals();
        SIEVE_CHECK(par.totals().hits == totals.hits &&
                        par.totals().accesses == totals.accesses,
                    "parallel replay diverged at %zu nodes", shards);
        t1.row()
            .cell(uint64_t(shards))
            .cellPercent(totals.hitRatio())
            .cell(totals.allocation_write_blocks)
            .cell(uint64_t(result.maxDrivesAtCoverage(0.999)))
            .cell(result.loadImbalance(), 2)
            .cell(serial_s.count() / parallel_s.count(), 2);
    }
    gen.reset();
    emit(t1, opts);
    note("[expected: flat capture — hash-partitioning the block "
                "space never strands capacity the way per-server "
                "partitioning (Section 5.3) does; the parallel replay "
                "(one worker per node) is bit-identical by "
                "construction and speeds up with shard count until "
                "cores or the reader saturate]\n\n");

    // (2) Self-tuning sieve under different churn budgets.
    note("(2) self-tuning sieve (t2 adjusted daily to a churn "
                "budget):\n");
    stats::Table t2({"Churn budget (x capacity/day)", "Captured",
                     "Alloc-writes", "Final t2", "t2 trajectory"});
    for (double budget : {0.02, 0.10, 0.50, 2.0}) {
        core::SieveStoreCConfig sieve;
        sieve.imct_slots = opts.scaledImctSlots();
        core::AutoTuneConfig tune;
        tune.churn_budget = budget;
        tune.cache_blocks = opts.scaledCacheBlocks(16ULL << 30);
        auto policy = std::make_unique<core::AutoTunedSievePolicy>(
            sieve, tune);
        const auto *policy_view = policy.get();

        core::ApplianceConfig ac;
        ac.cache_blocks = opts.scaledCacheBlocks(16ULL << 30);
        ac.ssd = opts.scaledSsd(16ULL << 30);
        core::Appliance app(ac, std::move(policy));
        gen.reset();
        sim::runTrace(gen, app);

        std::string trajectory = "9/4";
        for (uint32_t v : policy_view->t2History())
            trajectory += "," + std::to_string(v);
        const auto totals = app.totals();
        t2.row()
            .cell(budget, 2)
            .cellPercent(totals.hitRatio())
            .cell(totals.allocation_write_blocks)
            .cell(uint64_t(policy_view->currentT2()))
            .cell(trajectory);
    }
    gen.reset();
    emit(t2, opts);
    note("[tight budgets drive t2 up (less churn, slightly "
                "fewer hits); loose budgets relax toward the "
                "hit-maximizing threshold — no hand tuning needed]\n\n");

    // (2b) Online (t1, t2) adaptation: per-day shadow ghost
    // candidates score neighboring settings and the appliance
    // switches to the winner at day boundaries (the kind behind
    // --sieve=adaptive). The fixed rows replay the same trace at
    // pinned thresholds; the adaptive row starts from the
    // deliberately over-tight setting and must walk away from it,
    // so beating that fixed row is the bench's hard check.
    note("(2b) online adaptive sieve vs fixed (t1, t2) "
                "settings (16 GB):\n");
    stats::Table t2b({"Setting", "Captured", "Alloc-writes",
                      "Final (t1,t2)", "Switches"});
    const auto runSieve = [&](sim::PolicyKind kind, uint32_t start_t1,
                              uint32_t start_t2) {
        sim::PolicyConfig pc;
        pc.kind = kind;
        pc.sieve_c.imct_slots = opts.scaledImctSlots();
        pc.sieve_c.t1 = start_t1;
        pc.sieve_c.t2 = start_t2;
        pc.adaptive.imct_slots =
            std::max<size_t>(4096, opts.scaledImctSlots() / 8);
        core::ApplianceConfig ac;
        ac.cache_blocks = opts.scaledCacheBlocks(16ULL << 30);
        ac.ssd = opts.scaledSsd(16ULL << 30);
        gen.reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(gen, *app);
        return app;
    };
    struct FixedSetting
    {
        const char *label;
        uint32_t t1, t2;
    };
    uint64_t tight_fixed_hits = 0;
    for (const FixedSetting &f :
         {FixedSetting{"fixed (9,4), paper", 9, 4},
          FixedSetting{"fixed (16,8), over-tight", 16, 8}}) {
        const auto app = runSieve(sim::PolicyKind::SieveStoreC, f.t1,
                                  f.t2);
        const auto totals = app->totals();
        if (f.t1 == 16)
            tight_fixed_hits = totals.hits;
        t2b.row()
            .cell(f.label)
            .cellPercent(totals.hitRatio())
            .cell(totals.allocation_write_blocks)
            .cell("(" + std::to_string(f.t1) + "," +
                  std::to_string(f.t2) + ")")
            .cell(uint64_t(0));
    }
    {
        const auto app = runSieve(sim::PolicyKind::Adaptive, 16, 8);
        const auto totals = app->totals();
        // Final setting = the last day whose tuning columns were
        // filled (t1 >= 1 whenever the adaptive sieve reported).
        uint32_t final_t1 = 16, final_t2 = 8;
        for (auto it = app->daily().rbegin(); it != app->daily().rend();
             ++it) {
            if (it->tune_t1 != 0) {
                final_t1 = static_cast<uint32_t>(it->tune_t1);
                final_t2 = static_cast<uint32_t>(it->tune_t2);
                break;
            }
        }
        t2b.row()
            .cell("adaptive, from (16,8)")
            .cellPercent(totals.hitRatio())
            .cell(totals.allocation_write_blocks)
            .cell("(" + std::to_string(final_t1) + "," +
                  std::to_string(final_t2) + ")")
            .cell(totals.tune_switches);
        SIEVE_CHECK(totals.hits > tight_fixed_hits,
                    "adaptive sieve (%llu captured) failed to beat the "
                    "over-tight fixed setting (%llu captured)",
                    static_cast<unsigned long long>(totals.hits),
                    static_cast<unsigned long long>(tight_fixed_hits));
    }
    gen.reset();
    emit(t2b, opts);
    note("[started over-tight, the ghost-scored shadow candidates "
                "pull the thresholds loose within days: the adaptive "
                "row captures more than its own starting setting held "
                "fixed — the hand-tuned (t1, t2) knob is now a "
                "starting point, not a commitment]\n\n");

    // (3) End-to-end service-time payoff.
    note("(3) mean service-time speedup for the ensemble "
                "(15k-RPM spindles behind, X25-E in front):\n");
    stats::Table t3({"Configuration", "Captured",
                     "Mean service-time speedup"});
    for (const PolicyRun &run :
         {PolicyRun{"SieveStore-C 16GB", sim::PolicyKind::SieveStoreC,
                    16ULL << 30},
          PolicyRun{"WMNA 32GB", sim::PolicyKind::WMNA,
                    32ULL << 30}}) {
        const auto app = runPolicy(run, opts, gen);
        const double hit = app->totals().hitRatio();
        t3.row()
            .cell(run.label)
            .cellPercent(hit)
            .cell(ssd::serviceTimeSpeedup(
                      ssd::HddModel::enterprise15k(),
                      ssd::SsdModel::intelX25E(), hit),
                  2);
    }
    emit(t3, opts);
    note("[the captured fraction is served at SSD IOPS — two "
                "orders of magnitude above the spindles (Section "
                "5.2)]\n");
    return 0;
}
