/**
 * @file
 * Section 7 — forward-looking issues: scaling and tuning.
 *
 * (1) Scaling: hash-partition the block space across N appliance nodes
 *     (each with 1/N of the capacity and its own SSD). Because every
 *     node sees a uniform slice of the ensemble's hot set, the captured
 *     fraction stays flat while per-node drive load divides — the
 *     scale-out that preserves the ensemble-sharing property, unlike a
 *     per-server split.
 * (2) Tuning: the self-tuning sieve holds allocation churn to a budget
 *     by adjusting t2 daily, removing the paper's hand-tuned threshold.
 * (3) End-to-end payoff: the HDD-vs-SSD service-time model translates
 *     captured accesses into the ensemble's mean-service-time speedup.
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/auto_tune.hpp"
#include "sim/sharded.hpp"
#include "ssd/hdd_model.hpp"
#include "stats/table.hpp"
#include "util/check.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Section 7: scaling and tuning",
                "Section 7 (forward-looking directions, fleshed out)",
                opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    // (1) Scaling sweep, replayed serially and through the parallel
    // engine: capture must be identical (same deployment, same
    // trace), and the parallel column shows what the threading
    // substrate buys at each node count.
    note("(1) block-space sharding across appliance nodes "
                "(16 GB total, SieveStore-C):\n");
    stats::Table t1({"Nodes", "Captured", "Alloc-writes",
                     "Worst node drives @99.9%", "Load imbalance",
                     "Parallel speedup"});
    for (size_t shards : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
        sim::ShardedConfig cfg;
        cfg.shards = shards;
        cfg.policy.kind = sim::PolicyKind::SieveStoreC;
        cfg.policy.sieve_c.imct_slots =
            std::max<size_t>(1024, opts.scaledImctSlots() / shards);
        cfg.node.cache_blocks = std::max<uint64_t>(
            64, opts.scaledCacheBlocks(16ULL << 30) / shards);
        cfg.node.ssd = opts.scaledSsd((16ULL << 30) / shards);
        std::fprintf(stderr, "  running %zu nodes...\n", shards);
        gen.reset();
        auto start = std::chrono::steady_clock::now();
        const auto result = runSharded(gen, cfg);
        const std::chrono::duration<double> serial_s =
            std::chrono::steady_clock::now() - start;
        std::fprintf(stderr, "  running %zu nodes (parallel)...\n",
                     shards);
        gen.reset();
        start = std::chrono::steady_clock::now();
        const auto par = runShardedParallel(gen, cfg);
        const std::chrono::duration<double> parallel_s =
            std::chrono::steady_clock::now() - start;
        const auto totals = result.totals();
        SIEVE_CHECK(par.totals().hits == totals.hits &&
                        par.totals().accesses == totals.accesses,
                    "parallel replay diverged at %zu nodes", shards);
        t1.row()
            .cell(uint64_t(shards))
            .cellPercent(totals.hitRatio())
            .cell(totals.allocation_write_blocks)
            .cell(uint64_t(result.maxDrivesAtCoverage(0.999)))
            .cell(result.loadImbalance(), 2)
            .cell(serial_s.count() / parallel_s.count(), 2);
    }
    gen.reset();
    emit(t1, opts);
    note("[expected: flat capture — hash-partitioning the block "
                "space never strands capacity the way per-server "
                "partitioning (Section 5.3) does; the parallel replay "
                "(one worker per node) is bit-identical by "
                "construction and speeds up with shard count until "
                "cores or the reader saturate]\n\n");

    // (2) Self-tuning sieve under different churn budgets.
    note("(2) self-tuning sieve (t2 adjusted daily to a churn "
                "budget):\n");
    stats::Table t2({"Churn budget (x capacity/day)", "Captured",
                     "Alloc-writes", "Final t2", "t2 trajectory"});
    for (double budget : {0.02, 0.10, 0.50, 2.0}) {
        core::SieveStoreCConfig sieve;
        sieve.imct_slots = opts.scaledImctSlots();
        core::AutoTuneConfig tune;
        tune.churn_budget = budget;
        tune.cache_blocks = opts.scaledCacheBlocks(16ULL << 30);
        auto policy = std::make_unique<core::AutoTunedSievePolicy>(
            sieve, tune);
        const auto *policy_view = policy.get();

        core::ApplianceConfig ac;
        ac.cache_blocks = opts.scaledCacheBlocks(16ULL << 30);
        ac.ssd = opts.scaledSsd(16ULL << 30);
        core::Appliance app(ac, std::move(policy));
        gen.reset();
        sim::runTrace(gen, app);

        std::string trajectory = "9/4";
        for (uint32_t v : policy_view->t2History())
            trajectory += "," + std::to_string(v);
        const auto totals = app.totals();
        t2.row()
            .cell(budget, 2)
            .cellPercent(totals.hitRatio())
            .cell(totals.allocation_write_blocks)
            .cell(uint64_t(policy_view->currentT2()))
            .cell(trajectory);
    }
    gen.reset();
    emit(t2, opts);
    note("[tight budgets drive t2 up (less churn, slightly "
                "fewer hits); loose budgets relax toward the "
                "hit-maximizing threshold — no hand tuning needed]\n\n");

    // (3) End-to-end service-time payoff.
    note("(3) mean service-time speedup for the ensemble "
                "(15k-RPM spindles behind, X25-E in front):\n");
    stats::Table t3({"Configuration", "Captured",
                     "Mean service-time speedup"});
    for (const PolicyRun &run :
         {PolicyRun{"SieveStore-C 16GB", sim::PolicyKind::SieveStoreC,
                    16ULL << 30},
          PolicyRun{"WMNA 32GB", sim::PolicyKind::WMNA,
                    32ULL << 30}}) {
        const auto app = runPolicy(run, opts, gen);
        const double hit = app->totals().hitRatio();
        t3.row()
            .cell(run.label)
            .cellPercent(hit)
            .cell(ssd::serviceTimeSpeedup(
                      ssd::HddModel::enterprise15k(),
                      ssd::SsdModel::intelX25E(), hit),
                  2);
    }
    emit(t3, opts);
    note("[the captured fraction is served at SSD IOPS — two "
                "orders of magnitude above the spindles (Section "
                "5.2)]\n");
    return 0;
}
