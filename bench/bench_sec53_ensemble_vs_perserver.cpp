/**
 * @file
 * Section 5.3 — ensemble-level vs per-server caching (quadrants I/II vs
 * III/IV of Figure 1; the figures on the truncated pages 11-12 are
 * reconstructed from the section's prose).
 *
 * Two idealized per-server configurations are compared against the
 * shared ensemble cache:
 *   (1) iso-capacity "elastic SSD": each server's private cache sized
 *       to exactly hold the top 1 % of its own accessed blocks (the
 *       paper's conservative capacity-elasticity assumption), running
 *       the per-day ideal selection per server;
 *   (2) fixed per-server drives: the ensemble capacity split evenly,
 *       one private slice per server (capacity strands on servers with
 *       few hot blocks — observation O2's cost).
 * The ensemble-level cache captures more accesses at the same total
 * capacity, or the same accesses at lower capacity.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "sim/per_server.hpp"
#include "stats/table.hpp"
#include "util/string_util.hpp"

using namespace sievestore;
using namespace sievestore::bench;

namespace {

/** Per-server ideal: private appliances with oracle day selection. */
sim::PerServerResult
runPerServerIdeal(trace::SyntheticEnsembleGenerator &gen,
                  const std::vector<uint64_t> &capacities,
                  const BenchOptions &opts)
{
    // Build one ideal appliance per server by splitting the trace.
    const size_t n = capacities.size();
    sim::PerServerResult result;
    result.per_server.resize(n);
    for (size_t s = 0; s < n; ++s)
        result.total_capacity_blocks += capacities[s];

    for (size_t s = 0; s < n; ++s) {
        // Per-server trace view.
        std::vector<trace::Request> reqs;
        for (int d = 0; d < gen.days(); ++d)
            for (const auto &r :
                 gen.generateServerDay(static_cast<trace::ServerId>(s),
                                       d))
                reqs.push_back(r);
        trace::VectorTrace view(std::move(reqs));

        sim::PolicyConfig pc;
        pc.kind = sim::PolicyKind::Ideal;
        core::ApplianceConfig ac;
        ac.cache_blocks = std::max<uint64_t>(8, capacities[s]);
        ac.track_occupancy = false;
        auto app = sim::makeIdealAppliance(view, pc, ac);
        sim::runTrace(view, *app);
        result.per_server[s] = app->daily();
        if (app->daily().size() > result.combined.size())
            result.combined.resize(app->daily().size());
    }
    for (size_t s = 0; s < n; ++s)
        for (size_t d = 0; d < result.per_server[s].size(); ++d) {
            result.combined[d].accesses +=
                result.per_server[s][d].accesses;
            result.combined[d].hits += result.per_server[s][d].hits;
        }
    (void)opts;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Section 5.3: ensemble vs per-server caching",
                "Section 5.3 (figures reconstructed from prose)", opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    // (1) elastic iso-capacity per-server ideal.
    std::fprintf(stderr, "  profiling elastic capacities...\n");
    gen.reset();
    const auto elastic =
        sim::elasticTopPercentCapacities(gen, ensemble.serverCount());
    gen.reset();
    std::fprintf(stderr, "  running per-server ideal (elastic)...\n");
    const auto ps_ideal = runPerServerIdeal(gen, elastic, opts);

    // (2) fixed even split of the 16 GB ensemble capacity.
    const uint64_t total_blocks =
        opts.scaledCacheBlocks(16ULL << 30);
    std::vector<uint64_t> even(
        ensemble.serverCount(),
        std::max<uint64_t>(8, total_blocks / ensemble.serverCount()));
    sim::PerServerConfig psc;
    psc.capacities_blocks = even;
    psc.policy.kind = sim::PolicyKind::SieveStoreC;
    psc.policy.sieve_c.imct_slots =
        std::max<size_t>(1024, opts.scaledImctSlots() / 13);
    psc.base.track_occupancy = false;
    std::fprintf(stderr, "  running per-server SieveStore-C (even "
                         "split)...\n");
    gen.reset();
    const auto ps_even = runPerServer(gen, psc);
    gen.reset();

    // (3) one minimum-size (16 GB) SSD per server: SSDs are not
    // capacity-elastic in practice, so per-server deployment buys a
    // whole drive per server — 13x the capacity and cost.
    sim::PerServerConfig psd = psc;
    psd.capacities_blocks.assign(ensemble.serverCount(),
                                 opts.scaledCacheBlocks(16ULL << 30));
    std::fprintf(stderr, "  running per-server SieveStore-C (one 16GB "
                         "SSD each)...\n");
    gen.reset();
    const auto ps_drive = runPerServer(gen, psd);
    gen.reset();

    // Ensemble-level SieveStore-C and -D at 16 GB shared.
    std::fprintf(stderr, "  running ensemble SieveStore-C/-D...\n");
    const auto ens_c = runPolicy(
        {"SieveStore-C", sim::PolicyKind::SieveStoreC, 16ULL << 30},
        opts, gen);
    const auto ens_d = runPolicy(
        {"SieveStore-D", sim::PolicyKind::SieveStoreD, 16ULL << 30},
        opts, gen);

    auto hitsOf = [](const std::vector<core::DailyReport> &days) {
        return core::sumReports(days);
    };
    const auto t_ideal = hitsOf(ps_ideal.combined);
    const auto t_even = hitsOf(ps_even.combined);
    const auto t_drive = hitsOf(ps_drive.combined);
    const auto t_c = ens_c->totals();
    const auto t_d = ens_d->totals();

    stats::Table t({"Configuration", "Quadrant", "Capacity",
                    "Hits captured", "Hit ratio"});
    auto add = [&](const char *name, const char *quadrant,
                   uint64_t blocks, const core::DailyReport &rep) {
        t.row()
            .cell(name)
            .cell(quadrant)
            .cell(util::formatBytes(blocks * 512 *
                                    static_cast<uint64_t>(
                                        opts.inv_scale)))
            .cell(rep.hits)
            .cellPercent(rep.hitRatio());
    };
    add("Per-server ideal (elastic top-1% each)", "III/IV",
        ps_ideal.total_capacity_blocks, t_ideal);
    add("Per-server SieveStore-C (even 16GB split)", "III/IV",
        ps_even.total_capacity_blocks, t_even);
    add("Per-server SieveStore-C (one 16GB SSD each)", "III/IV",
        ps_drive.total_capacity_blocks, t_drive);
    add("Ensemble SieveStore-D (16GB shared)", "I",
        opts.scaledCacheBlocks(16ULL << 30), t_d);
    add("Ensemble SieveStore-C (16GB shared)", "I",
        opts.scaledCacheBlocks(16ULL << 30), t_c);
    emit(t, opts);

    note("\ncomparisons:\n");
    note("  ensemble-C / per-server-ideal hits: %.2fx at %.2fx "
                "the capacity\n",
                static_cast<double>(t_c.hits) /
                    static_cast<double>(
                        std::max<uint64_t>(1, t_ideal.hits)),
                static_cast<double>(
                    opts.scaledCacheBlocks(16ULL << 30)) /
                    static_cast<double>(std::max<uint64_t>(
                        1, ps_ideal.total_capacity_blocks)));
    note("  ensemble-C / per-server-even-split hits: %.2fx at "
                "equal capacity\n",
                static_cast<double>(t_c.hits) /
                    static_cast<double>(
                        std::max<uint64_t>(1, t_even.hits)));
    note("  one-SSD-per-server captures %.2fx the ensemble's "
                "hits at 13x the drives (iso-performance costs 13x)\n",
                static_cast<double>(t_drive.hits) /
                    static_cast<double>(
                        std::max<uint64_t>(1, t_c.hits)));
    note("[paper: ensemble-level caching captures more accesses "
                "at the same cost, and the same accesses at lower cost, "
                "than ideal per-server caching — the dynamic hot set "
                "(O2) cannot be statically partitioned]\n");
    return 0;
}
