#include "bench_common.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace sievestore {
namespace bench {

namespace {

/** Set by parse() so note() can silence commentary without every
 * call site threading the options through helper functions. */
bool g_suppress_notes = false;

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                util::fatal("%s requires a value", flag);
            return argv[++i];
        };
        if (arg == "--scale-denominator") {
            opts.inv_scale = std::atof(value("--scale-denominator"));
            if (opts.inv_scale < 1.0)
                util::fatal("--scale-denominator must be >= 1");
        } else if (arg == "--seed") {
            opts.seed = std::strtoull(value("--seed"), nullptr, 0);
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--batch") {
            opts.batch = std::strtoull(value("--batch"), nullptr, 0);
            if (opts.batch == 0)
                util::fatal("--batch must be >= 1");
        } else if (arg == "--sieve" ||
                   arg.rfind("--sieve=", 0) == 0) {
            const std::string name =
                arg == "--sieve" ? value("--sieve")
                                 : arg.substr(std::strlen("--sieve="));
            if (name == "sievestore-c")
                opts.sieve_kind = sim::PolicyKind::SieveStoreC;
            else if (name == "adaptive")
                opts.sieve_kind = sim::PolicyKind::Adaptive;
            else
                util::fatal("--sieve must be 'sievestore-c' or "
                            "'adaptive', got '%s'", name.c_str());
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --scale-denominator N  run at 1/N of the paper's "
                "traffic (default 4096)\n"
                "  --seed S               generator seed\n"
                "  --csv                  CSV output\n"
                "  --json                 JSON output (suppresses "
                "banners)\n"
                "  --batch N              requests per replay batch "
                "(default 64; results are batch-invariant)\n"
                "  --sieve NAME           continuous sieve run where "
                "rosters say SieveStore-C: 'sievestore-c' (default) "
                "or 'adaptive' (online (t1,t2) tuning)\n");
            std::exit(0);
        } else {
            util::fatal("unknown option '%s' (try --help)", arg.c_str());
        }
    }
    g_suppress_notes = opts.json;
    return opts;
}

void
note(const char *fmt, ...)
{
    if (g_suppress_notes)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
}

trace::SyntheticConfig
BenchOptions::traceConfig() const
{
    trace::SyntheticConfig cfg;
    cfg.scale = 1.0 / inv_scale;
    cfg.seed = seed;
    return cfg;
}

ssd::SsdModel
BenchOptions::scaledSsd(uint64_t capacity_bytes) const
{
    return ssd::SsdModel::intelX25E(capacity_bytes)
        .scaled(1.0 / inv_scale);
}

uint64_t
BenchOptions::scaledCacheBlocks(uint64_t full_bytes) const
{
    const auto blocks = static_cast<uint64_t>(
        static_cast<double>(full_bytes) / inv_scale /
        static_cast<double>(trace::kBlockBytes));
    return std::max<uint64_t>(64, blocks);
}

size_t
BenchOptions::scaledImctSlots() const
{
    // ~450M slots at full scale (order of the paper's 8 GB metastate
    // budget); clamped so tiny scales still have a meaningful table.
    const auto slots = static_cast<size_t>(4.5e8 / inv_scale);
    return std::max<size_t>(4096, slots);
}

std::vector<PolicyRun>
figure5Roster()
{
    using sim::PolicyKind;
    return {
        {"Ideal", PolicyKind::Ideal, 16ULL << 30},
        {"RandSieve-BlkD", PolicyKind::RandSieveBlkD, 16ULL << 30},
        {"SieveStore-D", PolicyKind::SieveStoreD, 16ULL << 30},
        {"SieveStore-C", PolicyKind::SieveStoreC, 16ULL << 30},
        {"RandSieve-C", PolicyKind::RandSieveC, 16ULL << 30},
        {"AOD-16GB", PolicyKind::AOD, 16ULL << 30},
        {"WMNA-16GB", PolicyKind::WMNA, 16ULL << 30},
        {"AOD-32GB", PolicyKind::AOD, 32ULL << 30},
        {"WMNA-32GB", PolicyKind::WMNA, 32ULL << 30},
    };
}

std::unique_ptr<core::Appliance>
runPolicy(const PolicyRun &run, const BenchOptions &opts,
          trace::SyntheticEnsembleGenerator &gen)
{
    sim::PolicyConfig pc;
    pc.kind = run.kind == sim::PolicyKind::SieveStoreC ? opts.sieve_kind
                                                       : run.kind;
    pc.sieve_c.imct_slots = opts.scaledImctSlots();
    // Shadow candidates track capture gradients, not the full block
    // population, so their IMCTs run an order smaller than production.
    pc.adaptive.imct_slots =
        std::max<size_t>(4096, opts.scaledImctSlots() / 8);

    core::ApplianceConfig ac;
    ac.cache_blocks = opts.scaledCacheBlocks(run.cache_bytes);
    ac.ssd = opts.scaledSsd(run.cache_bytes);

    std::unique_ptr<core::Appliance> app;
    if (run.kind == sim::PolicyKind::Ideal) {
        app = sim::makeIdealAppliance(gen, pc, ac);
    } else {
        gen.reset();
        app = sim::makeAppliance(pc, ac);
    }
    sim::DriverOptions dopts;
    dopts.batch = opts.batch;
    sim::runTrace(gen, *app, dopts);
    gen.reset();
    return app;
}

void
emit(const stats::Table &table, const BenchOptions &opts)
{
    if (opts.json)
        table.printJson(std::cout);
    else if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

void
printBanner(const std::string &title, const std::string &paper_ref,
            const BenchOptions &opts)
{
    if (opts.json)
        return;
    std::printf("== %s ==\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("workload:   synthetic 13-server ensemble at 1/%.0f of "
                "the paper's traffic (seed 0x%llx)\n\n",
                opts.inv_scale,
                static_cast<unsigned long long>(opts.seed));
}

} // namespace bench
} // namespace sievestore
