/**
 * @file
 * Table 1 — trace/ensemble summary.
 *
 * Prints the ensemble description (verbatim Table 1) and the per-day
 * shape of the generated workload next to the paper's reported ranges:
 * 335-1190 GB/day unique footprint (685 GB avg), 1.5-2.5 TB/day of
 * accesses, ~434 M requests over the week, ~3:1 reads:writes, ~6 % of
 * requests not 4 KB aligned. Volumes scale by 1/N at scale 1/N.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "stats/table.hpp"
#include "trace/trace_stats.hpp"
#include "util/string_util.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Table 1: trace summary", "Table 1 + Section 2 totals",
                opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    stats::Table t1({"Key", "Name", "Volumes", "Spindles", "Size (GB)"});
    for (const auto &srv : ensemble.servers()) {
        t1.row()
            .cell(srv.key)
            .cell(srv.name)
            .cell(uint64_t(srv.volumes))
            .cell(uint64_t(srv.spindles))
            .cell(uint64_t(srv.size_gb));
    }
    t1.row()
        .cell("Total")
        .cell("")
        .cell(ensemble.volumeCount())
        .cell(ensemble.totalSpindles())
        .cell(ensemble.totalSizeGb());
    emit(t1, opts);

    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());
    const trace::TraceStats stats = trace::summarizeTrace(gen);

    note("\nGenerated workload by calendar day (x%.0f to compare "
                "with the paper):\n",
                opts.inv_scale);
    stats::Table t2({"Day", "Requests", "Accesses (512B)", "GB accessed",
                     "Unique GB", "Read frac", "4KB-aligned"});
    for (size_t d = 0; d < stats.days.size(); ++d) {
        const auto &day = stats.days[d];
        if (day.requests == 0)
            continue;
        t2.row()
            .cell("day " + std::to_string(d + 1))
            .cell(day.requests)
            .cell(day.block_accesses)
            .cell(static_cast<double>(day.bytes) * opts.inv_scale / 1e9,
                  1)
            .cell(static_cast<double>(day.unique_blocks) * 512.0 *
                      opts.inv_scale / 1e9,
                  1)
            .cellPercent(day.readFraction())
            .cellPercent(static_cast<double>(day.aligned_requests) /
                         static_cast<double>(day.requests));
    }
    emit(t2, opts);

    note("\npaper: 685 GB/day average unique footprint "
                "(335-1190 GB), 1.5-2.5 TB/day accessed, ~434M requests "
                "per week, ~3:1 read:write, ~6%% unaligned\n");
    note("week totals (scaled back): %s requests, %.2f TB/day "
                "accessed avg, %.0f GB/day unique avg\n",
                util::formatCount(static_cast<uint64_t>(
                                      static_cast<double>(
                                          stats.total_requests) *
                                      opts.inv_scale))
                    .c_str(),
                static_cast<double>(stats.total_bytes) * opts.inv_scale /
                    7.0 / 1e12,
                stats.avgDailyUniqueBytes() * opts.inv_scale / 1e9);
    return 0;
}
