/**
 * @file
 * Figure 9 — drives needed vs coverage.
 *
 * The per-minute drives-needed series sorted ascending (the paper's
 * X-axis), summarized as the drive count at each coverage level. Paper
 * landmarks: SieveStore-D needs one drive always (its staggered batch
 * moves excluded); SieveStore-C needs one drive for >99.9 % of minutes
 * and two for the remaining handful (9 of 10,080); WMNA needs 7 drives
 * at 99.9 % coverage and still 4 at 90 % — the 1/7th-the-drives claim.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Figure 9: drives needed", "Fig. 9, Section 5.2", opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    const std::vector<PolicyRun> roster = {
        {"SieveStore-D", sim::PolicyKind::SieveStoreD, 16ULL << 30},
        {"SieveStore-C", sim::PolicyKind::SieveStoreC, 16ULL << 30},
        {"AOD-32GB", sim::PolicyKind::AOD, 32ULL << 30},
        {"WMNA-32GB", sim::PolicyKind::WMNA, 32ULL << 30},
    };

    stats::Table t({"Technique", "@90%", "@99%", "@99.9%", "@100%",
                    "minutes needing >1", "coverage w/ 1 drive"});
    uint32_t wmna_999 = 0, sieve_999 = 1;
    for (const PolicyRun &run : roster) {
        std::fprintf(stderr, "  running %s...\n", run.label.c_str());
        const auto app = runPolicy(run, opts, gen);
        const auto *occ = app->occupancy();
        uint64_t above = 0;
        for (uint32_t d : occ->drivesSeries())
            if (d > 1)
                ++above;
        const uint32_t d999 = occ->drivesForCoverage(0.999);
        t.row()
            .cell(run.label)
            .cell(uint64_t(occ->drivesForCoverage(0.90)))
            .cell(uint64_t(occ->drivesForCoverage(0.99)))
            .cell(uint64_t(d999))
            .cell(uint64_t(occ->maxDrives()))
            .cell(above)
            .cellPercent(occ->coverageWithDrives(1), 2);
        if (run.label == "WMNA-32GB")
            wmna_999 = d999;
        if (run.label == "SieveStore-C")
            sieve_999 = std::max<uint32_t>(1, d999);
    }
    emit(t, opts);

    note("\npaper landmarks: SieveStore-D 1 drive always (batch "
                "moves staggered into idle periods); SieveStore-C 1 "
                "drive for 99.9%% of minutes, 2 for the other 9 "
                "minutes; WMNA 7 drives @99.9%%, 4 @90%%\n");
    note("drive ratio at 99.9%% coverage (WMNA / SieveStore-C): "
                "%ux  [paper: 7x -> \"1/7th the number of SSD "
                "drives\"]\n",
                wmna_999 / sieve_999);
    return 0;
}
