/**
 * @file
 * Parallel replay throughput: the simulator as a measurement
 * instrument must replay traces faster than one core allows before
 * trace scale can grow (ROADMAP north star; cloud block-trace studies
 * replay orders of magnitude more requests than our scaled default).
 *
 * Replays the same materialized trace through serial runSharded and
 * parallel runShardedParallel at increasing shard counts, reporting
 * requests/second, speedup over serial, and scaling efficiency
 * (speedup / usable cores). The totals of every parallel run are
 * checked bit-identical to the serial run — throughput numbers from
 * a diverging driver would be meaningless.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "sim/sharded.hpp"
#include "stats/table.hpp"
#include "trace/trace_reader.hpp"
#include "util/check.hpp"

using namespace sievestore;
using namespace sievestore::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

sim::ShardedConfig
shardedConfig(const BenchOptions &opts, size_t shards)
{
    sim::ShardedConfig cfg;
    cfg.shards = shards;
    cfg.policy.kind = sim::PolicyKind::SieveStoreC;
    cfg.policy.sieve_c.imct_slots =
        std::max<size_t>(1024, opts.scaledImctSlots() / shards);
    cfg.node.cache_blocks = std::max<uint64_t>(
        64, opts.scaledCacheBlocks(16ULL << 30) / shards);
    cfg.node.track_occupancy = false;
    cfg.batch = opts.batch;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Parallel sharded replay throughput",
                "Section 7 scaling, driven in parallel",
                opts);

    // Materialize the trace once so every timed run measures replay,
    // not synthesis, and every run replays identical requests.
    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());
    std::fprintf(stderr, "  materializing trace...\n");
    trace::VectorTrace tracev(trace::drain(gen));
    const double requests = static_cast<double>(tracev.size());
    const unsigned cores = std::thread::hardware_concurrency();
    note("%.0f requests in memory; %u hardware threads\n\n",
                requests, cores);

    stats::Table t({"Shards", "Serial req/s", "Parallel req/s",
                    "Free-run req/s", "Speedup", "Efficiency",
                    "Cache meta B/blk", "Identical"});
    for (const size_t shards :
         {size_t(1), size_t(2), size_t(4), size_t(8)}) {
        const sim::ShardedConfig cfg = shardedConfig(opts, shards);
        std::fprintf(stderr, "  %zu shards: serial...\n", shards);

        tracev.reset();
        auto start = std::chrono::steady_clock::now();
        const auto serial = runSharded(tracev, cfg);
        const double serial_s = secondsSince(start);

        std::fprintf(stderr, "  %zu shards: parallel...\n", shards);
        tracev.reset();
        start = std::chrono::steady_clock::now();
        const auto parallel = runShardedParallel(tracev, cfg);
        const double parallel_s = secondsSince(start);

        sim::ShardedConfig free_cfg = cfg;
        free_cfg.parallel.deterministic = false;
        tracev.reset();
        start = std::chrono::steady_clock::now();
        const auto free_run = runShardedParallel(tracev, free_cfg);
        const double free_s = secondsSince(start);

        const auto st = serial.totals();
        const auto pt = parallel.totals();
        const auto ft = free_run.totals();
        const bool identical =
            st.accesses == pt.accesses && st.hits == pt.hits &&
            st.allocation_write_blocks ==
                pt.allocation_write_blocks &&
            st.batch_moved_blocks == pt.batch_moved_blocks &&
            st.ssd_alloc_ios == pt.ssd_alloc_ios &&
            pt.hits == ft.hits && pt.accesses == ft.accesses;
        SIEVE_CHECK(identical,
                    "parallel replay diverged from serial at %zu "
                    "shards",
                    shards);

        // Efficiency normalizes by the cores the run can actually
        // use: shard workers + the reader, capped by the hardware.
        const double speedup = serial_s / parallel_s;
        const double usable = static_cast<double>(
            std::min<size_t>(shards + 1, std::max(1u, cores)));
        // Per-resident-block cache metadata across all nodes: the
        // flat-index engine's memory story at replay scale.
        uint64_t cache_bytes = 0, resident = 0;
        for (const auto &node : parallel.nodes) {
            cache_bytes += node->blockCache().memoryBytes();
            resident += node->blockCache().size();
        }
        t.row()
            .cell(uint64_t(shards))
            .cell(requests / serial_s, 0)
            .cell(requests / parallel_s, 0)
            .cell(requests / free_s, 0)
            .cell(speedup, 2)
            .cellPercent(speedup / usable)
            .cell(static_cast<double>(cache_bytes) /
                      static_cast<double>(std::max<uint64_t>(1,
                                                             resident)),
                  1)
            .cell(identical ? "yes" : "NO");
    }
    emit(t, opts);
    note("[speedup at N shards is bounded by the slowest "
                "shard's share of the block-space and by reader "
                "throughput; on a >= 4-core host 4 shards should "
                "clear 2.5x serial]\n");

    // Batch-size sweep at a fixed shard count: how much of the
    // replay throughput comes from batching the decode, the per-shard
    // accumulation, and the SPSC hand-off. batch=1 reproduces the
    // per-request hand-off (one queue item per subrequest).
    const size_t sweep_shards = 4;
    note("\nbatch-size sweep at %zu shards (results are "
         "batch-invariant; only throughput moves):\n",
         sweep_shards);
    stats::Table sweep({"Batch", "Serial req/s", "Parallel req/s",
                        "Parallel vs batch=1", "Identical"});
    double parallel_b1 = 0.0;
    uint64_t golden_hits = 0, golden_accesses = 0;
    bool have_golden = false;
    for (const size_t batch :
         {size_t(1), size_t(8), size_t(64), size_t(256)}) {
        sim::ShardedConfig cfg = shardedConfig(opts, sweep_shards);
        cfg.batch = batch;
        std::fprintf(stderr, "  batch %zu: serial...\n", batch);

        tracev.reset();
        auto start = std::chrono::steady_clock::now();
        const auto serial = runSharded(tracev, cfg);
        const double serial_s = secondsSince(start);

        std::fprintf(stderr, "  batch %zu: parallel...\n", batch);
        tracev.reset();
        start = std::chrono::steady_clock::now();
        const auto parallel = runShardedParallel(tracev, cfg);
        const double parallel_s = secondsSince(start);

        const auto st = serial.totals();
        const auto pt = parallel.totals();
        if (!have_golden) {
            golden_hits = st.hits;
            golden_accesses = st.accesses;
            parallel_b1 = requests / parallel_s;
            have_golden = true;
        }
        const bool identical =
            st.accesses == pt.accesses && st.hits == pt.hits &&
            st.allocation_write_blocks ==
                pt.allocation_write_blocks &&
            st.ssd_alloc_ios == pt.ssd_alloc_ios &&
            st.hits == golden_hits && st.accesses == golden_accesses;
        SIEVE_CHECK(identical,
                    "batched replay diverged at batch %zu", batch);
        sweep.row()
            .cell(uint64_t(batch))
            .cell(requests / serial_s, 0)
            .cell(requests / parallel_s, 0)
            .cell((requests / parallel_s) / parallel_b1, 2)
            .cell(identical ? "yes" : "NO");
    }
    emit(sweep, opts);
    note("[one SPSC push per batch instead of per subrequest; the "
         "hand-off cap is %zu requests per queue item]\n",
         sim::kQueueBatchRequests);
    return 0;
}
