/**
 * @file
 * Section 3.1 — the case for sieving.
 *
 * Reproduces the thought experiment: on the stream a,a,b,b,a,a,c,c,...
 * Belady's algorithm extended with selective allocation maximizes hits
 * (50 %) yet allocates on every other access pair, while a fixed
 * allocation of `a` achieves nearly the same hits with exactly one
 * allocation-write. Also evaluates the compulsory-miss bound the paper
 * derives from Figure 2(a): with 50 % singleton blocks and 47 % of
 * blocks at <=4 accesses, at least ~61.75 % of blocks incur
 * allocation-writes under MIN, versus 1 % for ideal sieving.
 */

#include <cstdio>
#include <iostream>

#include "analysis/popularity.hpp"
#include "bench_common.hpp"
#include "cache/belady.hpp"
#include "stats/table.hpp"

using namespace sievestore;
using namespace sievestore::bench;
using cache::OfflineSimResult;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Section 3.1: the case for sieving",
                "Section 3.1 thought experiment + MIN bound", opts);

    // The paper's counterexample stream with a 1-entry cache.
    std::vector<trace::BlockId> stream;
    trace::BlockId fresh = 1;
    for (int i = 0; i < 2500; ++i) {
        stream.push_back(0);
        stream.push_back(0);
        stream.push_back(fresh);
        stream.push_back(fresh);
        ++fresh;
    }

    stats::Table t({"Policy (1-entry cache)", "Accesses", "Hit ratio",
                    "Alloc-writes", "Alloc-writes/access"});
    auto add = [&](const char *name, const OfflineSimResult &r) {
        t.row()
            .cell(name)
            .cell(r.accesses)
            .cellPercent(r.hitRatio(), 2)
            .cell(r.allocation_writes)
            .cellPercent(static_cast<double>(r.allocation_writes) /
                             static_cast<double>(r.accesses),
                         2);
    };
    add("Belady MIN (AOD)", cache::simulateBeladyMin(stream, 1));
    add("Belady + selective allocation",
        cache::simulateBeladySelective(stream, 1));
    add("Fixed allocation of 'a'",
        cache::simulateFixedSet(stream, {0}));
    emit(t, opts);
    note("[paper: selective Belady converges to a 50%% hit ratio "
                "with 50%% of accesses causing allocation-writes; the "
                "fixed allocation captures nearly the same hits with "
                "exactly 1]\n\n");

    // The compulsory-allocation bound on the real workload shape.
    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());
    const analysis::PopularityProfile profile(
        analysis::countBlockAccesses(gen.generateDay(3)));
    const double singletons = profile.fractionWithCountAtMost(1);
    const double le4 = profile.fractionWithCountAtMost(4);
    // Paper's bound: singletons miss once each; the <=4-access band
    // misses at least 1/4 of its accesses: >= 50% + 47%/4 = 61.75% of
    // blocks incur compulsory allocation-writes under MIN.
    const double bound = singletons + (le4 - singletons) / 4.0;
    note("compulsory-allocation bound on day 4 of the synthetic "
                "trace:\n");
    note("  singletons: %.1f%% of blocks; <=4 accesses: %.1f%%\n",
                singletons * 100.0, le4 * 100.0);
    note("  => MIN must allocation-write >= %.1f%% of accessed "
                "blocks [paper: 61.75%%]; ideal sieving allocates 1%%\n",
                bound * 100.0);
    return 0;
}
