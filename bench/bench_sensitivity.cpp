/**
 * @file
 * Section 5.1 sensitivity analysis + design-choice ablations.
 *
 * (1) SieveStore-D threshold sweep: the paper reports degradation only
 *     when the threshold drops below ~8 (inadequate sieving); the 8-20
 *     range is flat.
 * (2) SieveStore-C window-length sweep: lengths below 8 h degrade;
 *     longer windows are flat.
 * (3) Two-tier ablation: IMCT-only (aliasing admits low-reuse blocks:
 *     more allocation-writes) and MCT-only (exact but unbounded
 *     metastate) versus the two-tier sieve.
 * (4) Batch-move occupancy ablation: charging SieveStore-D's epoch
 *     moves to the drive instead of staggering them.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "stats/table.hpp"
#include "util/string_util.hpp"

using namespace sievestore;
using namespace sievestore::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    printBanner("Sensitivity + ablations",
                "Section 5.1 sensitivity; DESIGN.md ablations", opts);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        ensemble, opts.traceConfig());

    core::ApplianceConfig ac;
    ac.cache_blocks = opts.scaledCacheBlocks(16ULL << 30);
    ac.ssd = opts.scaledSsd(16ULL << 30);

    // (1) ADBA threshold sweep.
    note("(1) SieveStore-D access-count threshold sweep:\n");
    stats::Table t1({"threshold", "hit ratio", "batch-moved blocks"});
    for (const uint64_t threshold :
         {2ULL, 4ULL, 6ULL, 8ULL, 10ULL, 12ULL, 16ULL, 20ULL}) {
        sim::PolicyConfig pc;
        pc.kind = sim::PolicyKind::SieveStoreD;
        pc.adba_threshold = threshold;
        gen.reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(gen, *app);
        const auto t = app->totals();
        t1.row()
            .cell(threshold)
            .cellPercent(t.hitRatio())
            .cell(t.batch_moved_blocks);
    }
    emit(t1, opts);
    note("[paper: below ~8 the sieve is inadequate (pollution, "
                "extra moves); 8-20 is flat]\n\n");

    // (2) SieveStore-C window sweep.
    note("(2) SieveStore-C window-length sweep (k = 4):\n");
    stats::Table t2({"window (h)", "hit ratio", "alloc-write blocks",
                     "metastate"});
    for (const uint64_t hours : {2ULL, 4ULL, 8ULL, 16ULL, 24ULL}) {
        sim::PolicyConfig pc;
        pc.kind = sim::PolicyKind::SieveStoreC;
        pc.sieve_c.imct_slots = opts.scaledImctSlots();
        pc.sieve_c.window = core::WindowSpec::ofWindow(
            hours * util::kUsPerHour, 4);
        gen.reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(gen, *app);
        const auto t = app->totals();
        t2.row()
            .cell(hours)
            .cellPercent(t.hitRatio())
            .cell(t.allocation_write_blocks)
            .cell(util::formatBytes(app->metastateBytes()));
    }
    emit(t2, opts);
    note("[paper: lengths shorter than 8 h caused some "
                "degradation; otherwise insensitive]\n\n");

    // (3) Tier ablation.
    note("(3) two-tier sieve ablation:\n");
    stats::Table t3({"sieve", "hit ratio", "alloc-write blocks",
                     "MCT entries peak-ish", "metastate"});
    struct Variant
    {
        const char *name;
        bool imct_only, mct_only;
    };
    for (const Variant v : {Variant{"two-tier (IMCT+MCT)", false, false},
                            Variant{"IMCT-only (aliased)", true, false},
                            Variant{"MCT-only (unbounded)", false,
                                    true}}) {
        sim::PolicyConfig pc;
        pc.kind = sim::PolicyKind::SieveStoreC;
        pc.sieve_c.imct_slots = opts.scaledImctSlots();
        pc.sieve_c.imct_only = v.imct_only;
        pc.sieve_c.mct_only = v.mct_only;
        gen.reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(gen, *app);
        const auto t = app->totals();
        t3.row()
            .cell(v.name)
            .cellPercent(t.hitRatio())
            .cell(t.allocation_write_blocks)
            .cell("-")
            .cell(util::formatBytes(app->metastateBytes()));
    }
    emit(t3, opts);
    note("[expected: IMCT-only admits aliased low-reuse blocks "
                "(pollution + allocation-writes); MCT-only matches "
                "two-tier hits at a much larger exact-state cost]\n\n");

    // (4) Batch moves charged to occupancy.
    note("(4) SieveStore-D batch moves: staggered (paper) vs "
                "charged to the drive:\n");
    stats::Table t4({"batch handling", "max drives", "drives @99.9%"});
    for (bool charge : {false, true}) {
        sim::PolicyConfig pc;
        pc.kind = sim::PolicyKind::SieveStoreD;
        core::ApplianceConfig ac2 = ac;
        ac2.charge_batch_to_occupancy = charge;
        gen.reset();
        auto app = sim::makeAppliance(pc, ac2);
        sim::runTrace(gen, *app);
        const auto *occ = app->occupancy();
        t4.row()
            .cell(charge ? "charged (6h morning window)"
                         : "staggered into idle (paper)")
            .cell(uint64_t(occ->maxDrives()))
            .cell(uint64_t(occ->drivesForCoverage(0.999)));
    }
    emit(t4, opts);
    note("[paper: the moves are <=0.5%% of accesses and there is "
                "significant slack bandwidth, so staggering avoids any "
                "burst]\n");
    return 0;
}
