/**
 * @file
 * Trace inspector: summarize any trace file this library understands.
 *
 *   $ ./trace_stats week.sstr            # binary trace
 *   $ ./trace_stats --msr usr.csv ...    # one or more MSR CSVs
 *
 * Prints the per-day shape (requests, bytes, unique footprint, read
 * fraction) and the popularity-skew landmarks of Section 2, so a trace
 * can be sanity-checked before running experiments against it.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/popularity.hpp"
#include "stats/table.hpp"
#include "trace/binary_trace.hpp"
#include "trace/merge.hpp"
#include "trace/msr_csv.hpp"
#include "trace/trace_stats.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"
#include "util/string_util.hpp"

using namespace sievestore;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("usage: trace_stats FILE.sstr | --msr FILE.csv...\n");
        return 1;
    }

    std::unique_ptr<trace::TraceReader> reader;
    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    if (std::strcmp(argv[1], "--msr") == 0) {
        std::vector<std::unique_ptr<trace::TraceReader>> sources;
        for (int i = 2; i < argc; ++i)
            sources.push_back(std::make_unique<trace::MsrCsvReader>(
                argv[i], ensemble));
        if (sources.empty())
            util::fatal("--msr requires at least one CSV file");
        reader = std::make_unique<trace::MergedTrace>(
            std::move(sources));
    } else {
        reader = std::make_unique<trace::BinaryTraceReader>(argv[1]);
    }

    const trace::TraceStats stats = trace::summarizeTrace(*reader);
    std::printf("trace: %s requests, %s block accesses, %s "
                "transferred, %zu calendar days\n\n",
                util::formatCount(stats.total_requests).c_str(),
                util::formatCount(stats.total_block_accesses).c_str(),
                util::formatBytes(stats.total_bytes).c_str(),
                stats.days.size());

    stats::Table t({"Day", "Requests", "Accesses", "Transferred",
                    "Unique footprint", "Read frac", "Top-1% share",
                    "Count @1%", "Singletons"});
    reader->reset();
    analysis::BlockCounts counts;
    int current_day = -1;
    auto fold = [&]() {
        if (current_day < 0 || counts.empty())
            return;
        const auto &day = stats.days[static_cast<size_t>(current_day)];
        analysis::PopularityProfile profile(counts);
        t.row()
            .cell("day " + std::to_string(current_day + 1))
            .cell(day.requests)
            .cell(day.block_accesses)
            .cell(util::formatBytes(day.bytes))
            .cell(util::formatBytes(day.unique_blocks * 512))
            .cellPercent(day.readFraction())
            .cellPercent(profile.topShare(0.01))
            .cell(profile.countAtPercentile(0.01))
            .cellPercent(profile.fractionWithCountAtMost(1));
        counts.clear();
    };
    trace::Request r;
    while (reader->next(r)) {
        const int day = static_cast<int>(util::dayOf(r.time));
        if (day != current_day) {
            fold();
            current_day = day;
        }
        for (uint32_t i = 0; i < r.length_blocks; ++i)
            ++counts[r.blockAt(i)];
    }
    fold();
    t.print(std::cout);
    std::printf("\n(O1 landmarks: top-1%% share 14-53%%, count at the "
                "1%% rank ~10, ~50%% singletons)\n");
    return 0;
}
