/**
 * @file
 * Trace fabrication tool: materialize the synthetic ensemble workload
 * to a file, in either the compact binary format (fast replay) or the
 * MSR-Cambridge CSV format (one file per server, interoperable with
 * other trace tooling).
 *
 *   $ ./make_trace --out week.sstr [--scale-denominator N] [--seed S]
 *   $ ./make_trace --msr-dir traces/ [--scale-denominator N]
 *
 * A materialized trace replays byte-identically across machines, which
 * makes experiment results shareable without shipping gigabytes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "trace/binary_trace.hpp"
#include "trace/msr_csv.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

using namespace sievestore;
namespace fs = std::filesystem;

int
main(int argc, char **argv)
{
    std::string out_binary;
    std::string msr_dir;
    trace::SyntheticConfig cfg;
    cfg.scale = 1.0 / 8192.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                util::fatal("%s requires a value", flag);
            return argv[++i];
        };
        if (arg == "--out") {
            out_binary = value("--out");
        } else if (arg == "--msr-dir") {
            msr_dir = value("--msr-dir");
        } else if (arg == "--scale-denominator") {
            cfg.scale = 1.0 / std::atof(value("--scale-denominator"));
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(value("--seed"), nullptr, 0);
        } else {
            std::printf("usage: make_trace (--out FILE | --msr-dir DIR)"
                        " [--scale-denominator N] [--seed S]\n");
            return arg == "--help" || arg == "-h" ? 0 : 1;
        }
    }
    if (out_binary.empty() && msr_dir.empty())
        util::fatal("choose an output: --out FILE or --msr-dir DIR");

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    auto gen = trace::SyntheticEnsembleGenerator::paper(ensemble, cfg);

    uint64_t written = 0;
    if (!out_binary.empty()) {
        trace::BinaryTraceWriter writer(out_binary);
        trace::Request r;
        while (gen.next(r))
            writer.write(r);
        writer.close();
        written = writer.written();
        std::printf("wrote %s requests to %s (%s)\n",
                    util::formatCount(written).c_str(),
                    out_binary.c_str(),
                    util::formatBytes(fs::file_size(out_binary)).c_str());
        gen.reset();
    }
    if (!msr_dir.empty()) {
        fs::create_directories(msr_dir);
        const uint64_t origin =
            128166336000000000ULL -
            128166336000000000ULL % trace::kTicksPerDay;
        std::vector<std::unique_ptr<trace::MsrCsvWriter>> writers;
        for (const auto &srv : ensemble.servers())
            writers.push_back(std::make_unique<trace::MsrCsvWriter>(
                (fs::path(msr_dir) / (srv.key + ".csv")).string(),
                ensemble, origin));
        gen.reset();
        trace::Request r;
        written = 0;
        while (gen.next(r)) {
            writers[r.server]->write(r);
            ++written;
        }
        for (auto &w : writers)
            w->close();
        std::printf("wrote %s requests across %zu MSR-format CSVs in "
                    "%s\n",
                    util::formatCount(written).c_str(), writers.size(),
                    msr_dir.c_str());
        gen.reset();
    }

    // Summarize what was produced.
    const trace::TraceStats stats = trace::summarizeTrace(gen);
    std::printf("trace shape: %zu calendar days, %s block accesses, "
                "%s transferred\n",
                stats.days.size(),
                util::formatCount(stats.total_block_accesses).c_str(),
                util::formatBytes(stats.total_bytes).c_str());
    return 0;
}
