/**
 * @file
 * Real-trace path: replay MSR-Cambridge-format CSV traces.
 *
 * The paper's evaluation runs on the MSR Cambridge block traces, which
 * ship as one CSV per server. This example demonstrates that exact
 * path: it fabricates per-server sample CSVs (from the synthetic
 * generator, so the example is self-contained), then replays them the
 * way you would replay the real thing:
 *
 *   MsrCsvReader per file -> MergedTrace -> SieveStore appliance.
 *
 * With the real traces on disk, point `--dir` at them and every
 * experiment in this repository runs on them unmodified.
 *
 *   $ ./trace_replay [--dir /path/to/msr/csvs]
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/appliance.hpp"
#include "core/sievestore_c.hpp"
#include "sim/driver.hpp"
#include "trace/merge.hpp"
#include "trace/msr_csv.hpp"
#include "trace/synthetic.hpp"

using namespace sievestore;
namespace fs = std::filesystem;

namespace {

/** Fabricate one MSR-format CSV per server from the synthetic week. */
std::vector<fs::path>
fabricateSampleCsvs(const trace::EnsembleConfig &ensemble,
                    const fs::path &dir)
{
    fs::create_directories(dir);
    trace::SyntheticConfig workload;
    workload.scale = 1.0 / 32768.0; // small: this is a format demo
    auto gen =
        trace::SyntheticEnsembleGenerator::paper(ensemble, workload);

    // FILETIME origin: some calendar midnight.
    const uint64_t origin = 128166336000000000ULL -
                            128166336000000000ULL % trace::kTicksPerDay;
    std::vector<std::unique_ptr<trace::MsrCsvWriter>> writers;
    std::vector<fs::path> paths;
    for (const auto &srv : ensemble.servers()) {
        paths.push_back(dir / (srv.key + ".csv"));
        writers.push_back(std::make_unique<trace::MsrCsvWriter>(
            paths.back().string(), ensemble, origin));
    }
    trace::Request r;
    while (gen.next(r))
        writers[r.server]->write(r);
    for (auto &w : writers)
        w->close();
    return paths;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto ensemble = trace::EnsembleConfig::paperEnsemble();

    fs::path dir;
    bool fabricated = false;
    if (argc >= 3 && std::strcmp(argv[1], "--dir") == 0) {
        dir = argv[2];
    } else {
        dir = fs::temp_directory_path() / "sievestore-sample-msr";
        std::printf("no --dir given; fabricating sample MSR CSVs under "
                    "%s\n",
                    dir.c_str());
        fabricateSampleCsvs(ensemble, dir);
        fabricated = true;
    }

    // One reader per CSV, merged into a single time-ordered stream.
    std::vector<std::unique_ptr<trace::TraceReader>> readers;
    uint64_t files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".csv")
            continue;
        readers.push_back(std::make_unique<trace::MsrCsvReader>(
            entry.path().string(), ensemble));
        ++files;
    }
    if (readers.empty()) {
        std::fprintf(stderr, "no .csv files in %s\n", dir.c_str());
        return 1;
    }
    std::printf("replaying %llu trace files...\n",
                static_cast<unsigned long long>(files));
    trace::MergedTrace merged(std::move(readers));

    // A SieveStore-C appliance sized for the sample volume.
    core::ApplianceConfig config;
    config.cache_blocks = (16ULL << 30) / 32768 / trace::kBlockBytes;
    config.ssd = ssd::SsdModel::intelX25E().scaled(1.0 / 32768.0);
    core::SieveStoreCConfig sieve;
    sieve.imct_slots = 1 << 15;
    core::Appliance appliance(
        config, std::make_unique<core::SieveStoreCPolicy>(sieve));

    sim::runTrace(merged, appliance);

    const auto totals = appliance.totals();
    std::printf("\nreplayed %llu block accesses across %zu days\n",
                static_cast<unsigned long long>(totals.accesses),
                appliance.daily().size());
    std::printf("captured: %.1f%%; allocation-writes: %llu blocks\n",
                100.0 * totals.hitRatio(),
                static_cast<unsigned long long>(
                    totals.allocation_write_blocks));
    if (fabricated)
        std::printf("\n(point --dir at the real MSR Cambridge CSVs to "
                    "replay them instead)\n");
    return 0;
}
