/**
 * @file
 * Quickstart: the smallest end-to-end SieveStore run.
 *
 * Builds a scaled-down synthetic storage ensemble (the library's
 * stand-in for a week of block traces from 13 servers), puts a
 * SieveStore-C appliance in front of it, replays the week, and prints
 * what the cache captured and what sieving saved.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/appliance.hpp"
#include "core/sievestore_c.hpp"
#include "sim/driver.hpp"
#include "trace/synthetic.hpp"

using namespace sievestore;

int
main()
{
    // 1. Describe the storage ensemble. paperEnsemble() is the 13-server
    //    deployment of the paper's Table 1; addServer() builds your own.
    const trace::EnsembleConfig ensemble =
        trace::EnsembleConfig::paperEnsemble();

    // 2. A week of block traffic at 1/8192 of the paper's volume.
    //    Everything is deterministic given the seed.
    trace::SyntheticConfig workload;
    workload.scale = 1.0 / 8192.0;
    auto trace =
        trace::SyntheticEnsembleGenerator::paper(ensemble, workload);

    // 3. Configure the appliance: a 16 GB SSD cache (scaled with the
    //    workload) fronted by the two-tier continuous sieve with the
    //    paper's tuning (t1 = 9, t2 = 4, W = 8 h in 4 subwindows).
    core::ApplianceConfig config;
    config.cache_blocks =
        workload.scaledBytes(16ULL << 30) / trace::kBlockBytes;
    config.ssd =
        ssd::SsdModel::intelX25E(16ULL << 30).scaled(workload.scale);

    core::SieveStoreCConfig sieve; // paper defaults
    sieve.imct_slots = 1 << 17;    // scale the metastate with the trace
    core::Appliance appliance(
        config, std::make_unique<core::SieveStoreCPolicy>(sieve));

    // 4. Replay the trace. runTrace() feeds requests in time order and
    //    fires the calendar-day boundaries.
    sim::runTrace(trace, appliance);

    // 5. Read the results.
    const core::DailyReport totals = appliance.totals();
    std::printf("week of traffic:   %llu block accesses\n",
                static_cast<unsigned long long>(totals.accesses));
    std::printf("captured by cache: %.1f%% (%.0f%% reads / %.0f%% "
                "writes)\n",
                100.0 * totals.hitRatio(),
                100.0 * static_cast<double>(totals.read_hits) /
                    static_cast<double>(totals.hits),
                100.0 * static_cast<double>(totals.write_hits) /
                    static_cast<double>(totals.hits));
    std::printf("allocation-writes: %llu blocks (the sieve bypassed "
                "everything else)\n",
                static_cast<unsigned long long>(
                    totals.allocation_write_blocks));

    const auto *occupancy = appliance.occupancy();
    std::printf("drive occupancy:   one SSD covers %.2f%% of minutes "
                "(max %u drives)\n",
                100.0 * occupancy->coverageWithDrives(1),
                occupancy->maxDrives());
    std::printf("sieve metastate:   %.1f MiB\n",
                static_cast<double>(appliance.metastateBytes()) /
                    (1 << 20));
    return 0;
}
