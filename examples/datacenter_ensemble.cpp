/**
 * @file
 * Datacenter scenario: evaluate SieveStore as the caching appliance for
 * the paper's 13-server ensemble, against the unsieved alternative an
 * operator would otherwise deploy.
 *
 * Runs SieveStore-C, SieveStore-D, and WMNA over the synthetic week and
 * prints the day-by-day service report an operator would care about:
 * captured traffic, SSD writes, drive provisioning, and wearout.
 *
 * A final section scales the appliance out to a 4-node sharded
 * deployment and replays it through the parallel engine — one worker
 * thread per node — which is how larger-than-default scales stay
 * tractable.
 *
 *   $ ./datacenter_ensemble [scale-denominator] [threads]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/sharded.hpp"
#include "sim/storage_report.hpp"
#include "ssd/network.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"
#include "util/string_util.hpp"

using namespace sievestore;

int
main(int argc, char **argv)
{
    const double inv_scale = argc > 1 ? std::atof(argv[1]) : 8192.0;
    std::printf("SieveStore datacenter evaluation: 13 servers, one "
                "week, 1/%.0f of the paper's traffic\n\n",
                inv_scale);

    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    trace::SyntheticConfig workload;
    workload.scale = 1.0 / inv_scale;
    auto gen =
        trace::SyntheticEnsembleGenerator::paper(ensemble, workload);

    struct Candidate
    {
        const char *label;
        sim::PolicyKind kind;
    };
    const Candidate candidates[] = {
        {"SieveStore-C", sim::PolicyKind::SieveStoreC},
        {"SieveStore-D", sim::PolicyKind::SieveStoreD},
        {"WMNA (unsieved)", sim::PolicyKind::WMNA},
    };

    stats::Table t({"Appliance", "Captured", "SSD writes/day",
                    "Drives @99.9%", "1-drive coverage",
                    "SSD lifetime", "NIC peak (4x GbE)"});
    for (const Candidate &c : candidates) {
        sim::PolicyConfig pc;
        pc.kind = c.kind;
        pc.sieve_c.imct_slots = std::max<size_t>(
            4096, static_cast<size_t>(4.5e8 * workload.scale));
        core::ApplianceConfig ac;
        ac.cache_blocks =
            workload.scaledBytes(16ULL << 30) / trace::kBlockBytes;
        ac.ssd = ssd::SsdModel::intelX25E(16ULL << 30)
                     .scaled(workload.scale);

        gen.reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(gen, *app);

        const auto totals = app->totals();
        const auto cost = sim::summarizeCost(*app, 7.0);
        const double writes_day_full =
            static_cast<double>(totals.write_hits +
                                totals.totalAllocationBlocks()) *
            inv_scale * 512.0 / 7.0;
        char lifetime[32];
        std::snprintf(lifetime, sizeof(lifetime), "%.1f years",
                      cost.endurance_years);
        // Section 3.3's network concern, against measured traffic. The
        // NIC budget does not shrink with the workload scale, so scale
        // the utilization back up for an apples-to-apples check.
        const auto nic = ssd::checkNetworkFeasibility(
            *app->occupancy(), ssd::NetworkModel::fourGigabitLinks());
        t.row()
            .cell(c.label)
            .cellPercent(totals.hitRatio())
            .cell(util::formatBytes(
                static_cast<uint64_t>(writes_day_full)))
            .cell(uint64_t(cost.drives_999))
            .cellPercent(cost.coverage_one_drive, 2)
            .cell(lifetime)
            .cellPercent(nic.peak_utilization * inv_scale, 1);
    }
    t.print(std::cout);

    std::printf("\nDay-by-day capture with SieveStore-C:\n");
    {
        sim::PolicyConfig pc;
        pc.kind = sim::PolicyKind::SieveStoreC;
        pc.sieve_c.imct_slots = std::max<size_t>(
            4096, static_cast<size_t>(4.5e8 * workload.scale));
        core::ApplianceConfig ac;
        ac.cache_blocks =
            workload.scaledBytes(16ULL << 30) / trace::kBlockBytes;
        ac.ssd = ssd::SsdModel::intelX25E(16ULL << 30)
                     .scaled(workload.scale);
        gen.reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(gen, *app);

        stats::Table td({"Day", "Accesses", "Captured", "Alloc-writes",
                         "Dev I/Os", "Lat meas/pred",
                         "Sieve metastate"});
        for (size_t d = 0; d < app->daily().size(); ++d) {
            const auto &day = app->daily()[d];
            if (day.accesses == 0)
                continue;
            // Measured vs model-predicted device latency: under the
            // default AnalyticBackend the ratio is exactly 1.000 —
            // the observation channel echoing the model proves the
            // plumbing; a FileBackend run makes this column real.
            const auto lat = sim::storageLatencySummary(day, ac.ssd);
            td.row()
                .cell("day " + std::to_string(d + 1))
                .cell(day.accesses)
                .cellPercent(day.hitRatio())
                .cell(day.allocation_write_blocks)
                .cell(lat.measured_ios)
                .cell(sim::storageRatioCell(lat))
                .cell(util::formatBytes(app->metastateBytes()));
        }
        td.print(std::cout);
    }
    std::printf("\nThe sieve turns the SSD from a write-bound liability "
                "(unsieved caches spend most of their IOPS absorbing "
                "allocation-writes for blocks that are never reused) "
                "into a read-serving asset provisioned with a single "
                "drive.\n");

    // Scale-out: shard the block space across 4 appliance nodes and
    // replay them in parallel (Section 7 direction; ISSUE 2).
    const size_t threads =
        argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 4;
    std::printf("\nScale-out: 4 appliance nodes, parallel replay "
                "with %zu worker threads:\n",
                threads);
    {
        sim::ShardedConfig scfg;
        scfg.shards = 4;
        scfg.policy.kind = sim::PolicyKind::SieveStoreC;
        scfg.policy.sieve_c.imct_slots = std::max<size_t>(
            1024, static_cast<size_t>(4.5e8 * workload.scale) / 4);
        scfg.node.cache_blocks = std::max<uint64_t>(
            64,
            workload.scaledBytes(16ULL << 30) / trace::kBlockBytes / 4);
        scfg.node.ssd = ssd::SsdModel::intelX25E(4ULL << 30)
                            .scaled(workload.scale);
        scfg.parallel.threads = threads;

        gen.reset();
        const auto start = std::chrono::steady_clock::now();
        const auto sharded = sim::runShardedParallel(gen, scfg);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        stats::Table ts({"Node", "Accesses", "Captured",
                         "Alloc-writes", "Dev I/Os",
                         "Lat meas/pred"});
        for (size_t s = 0; s < sharded.nodes.size(); ++s) {
            const auto nt = sharded.nodes[s]->totals();
            const auto lat =
                sim::storageLatencySummary(nt, scfg.node.ssd);
            ts.row()
                .cell("node " + std::to_string(s))
                .cell(nt.accesses)
                .cellPercent(nt.hitRatio())
                .cell(nt.allocation_write_blocks)
                .cell(lat.measured_ios)
                .cell(sim::storageRatioCell(lat));
        }
        const auto st = sharded.totals();
        const auto slat = sim::storageLatencySummary(
            st, scfg.node.ssd);
        ts.row()
            .cell("total")
            .cell(st.accesses)
            .cellPercent(st.hitRatio())
            .cell(st.allocation_write_blocks)
            .cell(slat.measured_ios)
            .cell(sim::storageRatioCell(slat));
        ts.print(std::cout);
        std::printf("replayed in %.2f s (load imbalance %.2f); "
                    "per-node reports are bit-identical to a serial "
                    "replay of the same deployment\n",
                    elapsed.count(), sharded.loadImbalance());
    }
    return 0;
}
