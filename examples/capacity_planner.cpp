/**
 * @file
 * Capacity planner: how much SSD does an ensemble actually need?
 *
 * The paper's core economics argument is that a small, shared, sieved
 * cache hits the cost-performance sweet spot. This tool makes the
 * argument quantitative for a workload: it sweeps cache capacities and
 * sieve thresholds and prints captured traffic, required drive count,
 * and wearout at each point, so an operator can pick the knee.
 *
 *   $ ./capacity_planner [scale-denominator]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "stats/table.hpp"
#include "trace/synthetic.hpp"
#include "util/string_util.hpp"

using namespace sievestore;

int
main(int argc, char **argv)
{
    const double inv_scale = argc > 1 ? std::atof(argv[1]) : 8192.0;
    const auto ensemble = trace::EnsembleConfig::paperEnsemble();
    trace::SyntheticConfig workload;
    workload.scale = 1.0 / inv_scale;
    auto gen =
        trace::SyntheticEnsembleGenerator::paper(ensemble, workload);

    std::printf("SieveStore capacity planner (1/%.0f of the paper's "
                "traffic; capacities shown at full scale)\n\n",
                inv_scale);

    // Sweep 1: cache capacity with the paper's sieve tuning.
    std::printf("capacity sweep (SieveStore-C, t1=9/t2=4, W=8h):\n");
    stats::Table tc({"Cache size", "Captured", "Drives @99.9%",
                     "1-drive coverage", "SSD lifetime (years)"});
    for (const uint64_t gib : {2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 64ULL}) {
        sim::PolicyConfig pc;
        pc.kind = sim::PolicyKind::SieveStoreC;
        pc.sieve_c.imct_slots = std::max<size_t>(
            4096, static_cast<size_t>(4.5e8 * workload.scale));
        core::ApplianceConfig ac;
        ac.cache_blocks = std::max<uint64_t>(
            64,
            workload.scaledBytes(gib << 30) / trace::kBlockBytes);
        ac.ssd =
            ssd::SsdModel::intelX25E(gib << 30).scaled(workload.scale);
        gen.reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(gen, *app);
        const auto cost = sim::summarizeCost(*app, 7.0);
        tc.row()
            .cell(util::formatBytes(gib << 30))
            .cellPercent(app->totals().hitRatio())
            .cell(uint64_t(cost.drives_999))
            .cellPercent(cost.coverage_one_drive, 2)
            .cell(cost.endurance_years, 1);
    }
    tc.print(std::cout);
    std::printf("[the knee: the top-1%% hot set fits in 16 GB with room "
                "to spare (Section 2), so capacity beyond it buys "
                "little]\n\n");

    // Sweep 2: how selective should the sieve be?
    std::printf("selectivity sweep (16 GB cache, SieveStore-C MCT "
                "threshold t2):\n");
    stats::Table ts({"t2", "Captured", "Alloc-writes",
                     "Drives @99.9%"});
    for (const uint32_t t2 : {0U, 1U, 2U, 4U, 8U, 16U}) {
        sim::PolicyConfig pc;
        pc.kind = sim::PolicyKind::SieveStoreC;
        pc.sieve_c.t2 = t2;
        pc.sieve_c.imct_slots = std::max<size_t>(
            4096, static_cast<size_t>(4.5e8 * workload.scale));
        core::ApplianceConfig ac;
        ac.cache_blocks =
            workload.scaledBytes(16ULL << 30) / trace::kBlockBytes;
        ac.ssd = ssd::SsdModel::intelX25E(16ULL << 30)
                     .scaled(workload.scale);
        gen.reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(gen, *app);
        const auto totals = app->totals();
        const auto cost = sim::summarizeCost(*app, 7.0);
        ts.row()
            .cell(uint64_t(t2))
            .cellPercent(totals.hitRatio())
            .cell(totals.allocation_write_blocks)
            .cell(uint64_t(cost.drives_999));
    }
    ts.print(std::cout);
    std::printf("[looser sieving buys little capture but multiplies "
                "allocation-writes — the Section 5.1 sensitivity "
                "story]\n");
    return 0;
}
