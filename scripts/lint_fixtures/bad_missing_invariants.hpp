// Fixture: a class on the invariant audit list (Mct) that fails to
// declare checkInvariants().
// lint-expect: invariants

#ifndef SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_MISSING_INVARIANTS_HPP
#define SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_MISSING_INVARIANTS_HPP

#include <cstdint>

namespace fixture {

class Mct
{
  public:
    uint64_t count() const { return hits; }

  private:
    uint64_t hits = 0;
};

} // namespace fixture

#endif // SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_MISSING_INVARIANTS_HPP
