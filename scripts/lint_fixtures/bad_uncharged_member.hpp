// Fixture: a class whose memoryBytes() forgets one container member.
// The footprint it reports silently understates the real cost.
// lint-expect: mem-charge

#ifndef SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_UNCHARGED_MEMBER_HPP
#define SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_UNCHARGED_MEMBER_HPP

#include <cstdint>
#include <vector>

namespace fixture {

class LeakyFootprint
{
  public:
    uint64_t
    memoryBytes() const
    {
        return static_cast<uint64_t>(values.capacity()) *
               sizeof(uint64_t);
    }

  private:
    std::vector<uint64_t> values;
    std::vector<uint8_t> flags; // never charged above
};

} // namespace fixture

#endif // SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_UNCHARGED_MEMBER_HPP
