// Fixture: report rows emitted straight from an unordered_map walk —
// the row order changes across standard libraries and runs.
// lint-expect: unordered-report

#include <cstdint>
#include <iostream>
#include <unordered_map>

namespace fixture {

std::unordered_map<uint64_t, uint64_t> g_counts;

void
reportCounts()
{
    for (const auto &kv : g_counts)
        std::cout << kv.first << "," << kv.second << "\n";
}

uint64_t
sumCounts()
{
    // Aggregation is order-independent: must NOT be flagged.
    uint64_t total = 0;
    for (const auto &kv : g_counts)
        total += kv.second;
    return total;
}

} // namespace fixture
