// Fixture: raw __builtin_prefetch outside src/util/ must be flagged;
// hot paths go through util::prefetchRead (util/prefetch.hpp) so
// every software prefetch stays greppable and carries the agreed
// locality hint.

struct Row
{
    unsigned long key;
    unsigned long payload;
};

unsigned long
sumAhead(const Row *rows, unsigned long n)
{
    unsigned long total = 0;
    for (unsigned long i = 0; i < n; ++i) {
        if (i + 8 < n)
            __builtin_prefetch(rows + i + 8, 0, 3); // lint-expect: raw-prefetch
        total += rows[i].payload;
    }
    return total;
}
