/**
 * sieve-analyze fixture: a GUARDED_BY field read without holding the
 * named capability. recordLocked() is clean (scoped lock over the
 * mutex); peek() touches the field with no lock, no REQUIRES, and no
 * TS_ASSERT claimer in scope.
 */

#include <cstdint>

#include "util/thread_annotations.hpp"

struct Counters {
    sievestore::util::Mutex mu;
    uint64_t hits GUARDED_BY(mu) = 0;

    void
    recordLocked()
    {
        sievestore::util::MutexLock lock(mu);
        ++hits;
    }

    uint64_t
    peek() const
    {
        return hits; // analyze-expect: lock-discipline
    }
};
