/**
 * sieve-analyze fixture: a lambda body belongs to the enclosing
 * function's guard region — an allocating helper invoked from inside
 * the lambda is still a violation of the surrounding region.
 */

#include <cstdint>
#include <vector>

void consume(const uint64_t *value);

static uint64_t *
duplicate(uint64_t b)
{
    return new uint64_t(b); // analyze-expect: no-alloc
}

void
hotLoop(const std::vector<uint64_t> &blocks)
{
    SIEVE_ASSERT_NO_ALLOC;
    auto emit = [&](uint64_t b) { consume(duplicate(b)); };
    for (uint64_t b : blocks)
        emit(b);
}
