/**
 * sieve-analyze fixture: false-positive guard. Everything here is
 * legal inside a no-alloc region and must produce ZERO findings:
 *  - declarations with constructor arguments (`Span view(v)`) are
 *    not calls;
 *  - placement new constructs into caller-owned storage;
 *  - non-allocating members (back/pop_back) of an external receiver;
 *  - an allocating member (reserve) is fine OUTSIDE any region.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

struct Span {
    explicit Span(uint64_t v) : value(v) {}
    uint64_t
    get() const
    {
        return value;
    }
    uint64_t value;
};

struct Pool {
    std::vector<uint64_t> slots;

    void
    reserveUpfront(size_t n)
    {
        slots.reserve(n);
    }

    uint64_t
    take()
    {
        SIEVE_ASSERT_NO_ALLOC;
        const uint64_t v = slots.back();
        slots.pop_back();
        Span view(v);
        alignas(uint64_t) char buf[sizeof(uint64_t)];
        uint64_t *p = new (buf) uint64_t(view.get());
        return *p;
    }
};
