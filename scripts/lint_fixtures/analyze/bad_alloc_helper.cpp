/**
 * sieve-analyze fixture: an allocation reached INDIRECTLY through a
 * helper must be reported with the full call path — the guard region
 * itself contains no allocating token.
 */

#include <cstdint>
#include <vector>

struct Buffer {
    std::vector<uint64_t> items;

    void
    grow(uint64_t v)
    {
        items.push_back(v); // analyze-expect: no-alloc
    }

    void
    hot(uint64_t v)
    {
        SIEVE_ASSERT_NO_ALLOC;
        grow(v);
    }
};
