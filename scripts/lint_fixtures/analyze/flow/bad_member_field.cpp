/**
 * sieve-flow fixture: taint parked in an unannotated member field by
 * one method must be picked up by a later read in a DIFFERENT method
 * — the interprocedural store/load channel of the field-taint map.
 */

struct Gauge {
    /** Unannotated carrier: taint flows through it silently. */
    unsigned long last_ns = 0;

    /** Measured source (declaration only; registry-resolved). */
    SIEVE_TAINT_SOURCE unsigned long sample();

    /** Decision surface. */
    SIEVE_TAINT_SINK void decide(unsigned long v);

    void observe() { last_ns = sample(); }

    void
    act()
    {
        decide(last_ns); // analyze-expect: taint-flow
    }
};
