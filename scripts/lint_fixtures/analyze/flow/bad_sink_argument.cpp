/**
 * sieve-flow fixture: a built-in nondeterminism source (time) passed
 * through a forwarding helper's PARAMETER into a sink argument — the
 * param_sinks half of the function summary.
 */

struct Admitter {
    /** Decision surface. */
    SIEVE_TAINT_SINK void insert(long key);

    /** Unannotated forwarder: its summary records that param 0
     * reaches a sink, so tainted call sites are violations. */
    void route(long v) { insert(v); }

    void
    bad()
    {
        route(time(nullptr)); // analyze-expect: taint-flow
    }
};
