/**
 * sieve-flow fixture: a SIEVE_FLOW_SANITIZE boundary absorbs taint —
 * the sink call below it must NOT be reported (no analyze-expect
 * marker in this file), and the boundary must appear in --report.
 */

struct Telemetry {
    /** Measured source. */
    SIEVE_TAINT_SOURCE unsigned long read_ns();

    /** Report formatter: the result feeds a printout column only,
     * never a decision — the audited laundering point. */
    SIEVE_FLOW_SANITIZE unsigned long format(unsigned long v)
    {
        return v;
    }

    /** Decision surface. */
    SIEVE_TAINT_SINK void admit(unsigned long key);

    void
    ok()
    {
        unsigned long cooked = format(read_ns());
        admit(cooked); // clean: sanitized above, no finding
    }
};
