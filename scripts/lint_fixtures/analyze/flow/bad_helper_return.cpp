/**
 * sieve-flow fixture: measured data returned through an UNANNOTATED
 * helper must stay tainted — the violation is two calls away from
 * the source and must be reported with the full source -> helper ->
 * sink path.
 */

struct Probe {
    /** Pretend device read (the fixture's measured source). */
    SIEVE_TAINT_SOURCE unsigned long measure() { return 42; }

    /** Plain pass-through: no annotation, taint must survive it. */
    unsigned long helper() { return measure(); }

    /** Decision surface. */
    SIEVE_TAINT_SINK void admit(unsigned long key);

    void
    bad()
    {
        unsigned long k = helper();
        admit(k); // analyze-expect: taint-flow
    }
};
