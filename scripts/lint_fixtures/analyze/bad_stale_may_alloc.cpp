/**
 * sieve-analyze fixture: SIEVE_MAY_ALLOC on a function from which no
 * allocation is reachable is stale and must be reported — the
 * annotation is a reviewed exemption, and a stale one hides real
 * allocations added later. The second function allocates for real
 * and must stay clean.
 */

#include <cstdint>
#include <vector>

struct Pool {
    int count = 0;
    std::vector<int> items;

    // analyze-expect: stale-may-alloc
    SIEVE_MAY_ALLOC void
    reserveNothing()
    {
        count += 1;
    }

    /** Genuine allocator: the annotation is earned. */
    SIEVE_MAY_ALLOC void
    grow()
    {
        items.push_back(count);
    }
};
