/**
 * sieve-analyze fixture: a nondeterminism primitive reached through a
 * helper — the deterministic-replay ban is call-graph-aware, not just
 * a textual scan of the guarded region.
 */

#include <cstdlib>

void consumeDelay(int us);

static int
jitter()
{
    return rand(); // analyze-expect: determinism
}

void
replayStep()
{
    SIEVE_ASSERT_NO_ALLOC;
    consumeDelay(jitter());
}
