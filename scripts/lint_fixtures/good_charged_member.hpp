// Fixture: every container member is either charged by name in
// memoryBytes() or carries a charged() directive. Must lint clean.

#ifndef SIEVESTORE_SCRIPTS_LINT_FIXTURES_GOOD_CHARGED_MEMBER_HPP
#define SIEVESTORE_SCRIPTS_LINT_FIXTURES_GOOD_CHARGED_MEMBER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

class HonestFootprint
{
  public:
    uint64_t memoryBytes() const;

  private:
    std::vector<uint64_t> values;
    // sieve-lint: charged(shares the allocation charged via values)
    std::vector<uint8_t> flags;
};

// Out-of-line definition: the linter must find it in this file scan.
inline uint64_t
HonestFootprint::memoryBytes() const
{
    return static_cast<uint64_t>(values.capacity()) *
           sizeof(uint64_t);
}

struct NoFootprintApi
{
    // No memoryBytes() at all: members are out of the rule's scope.
    std::string label;
};

} // namespace fixture

#endif // SIEVESTORE_SCRIPTS_LINT_FIXTURES_GOOD_CHARGED_MEMBER_HPP
