// Fixture: a class that embeds a ghost directory but never charges
// it in its footprint audit. The policy fabric's metastate cost is
// silently understated — exactly what ghost-charge exists to catch.
// lint-expect: ghost-charge

#ifndef SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_GHOST_UNCHARGED_HPP
#define SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_GHOST_UNCHARGED_HPP

#include <cstdint>

#include "cache/ghost_cache.hpp"

namespace fixture {

class ShadowDirectory
{
  public:
    uint64_t
    memoryBytes() const
    {
        return sizeof(*this); // the ghost's arena is not in here
    }

  private:
    uint64_t epoch_hits = 0;
    cache::GhostCache ghost{1024}; // never charged above
};

} // namespace fixture

#endif // SIEVESTORE_SCRIPTS_LINT_FIXTURES_BAD_GHOST_UNCHARGED_HPP
