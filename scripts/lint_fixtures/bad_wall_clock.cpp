// Fixture: nondeterministic seeding and a wall-clock read; both
// break seeded replay. One line opts out via allow().
// lint-expect: wall-clock
// lint-expect: wall-clock

#include <chrono>
#include <cstdint>
#include <random>

namespace fixture {

uint64_t
entropySeed()
{
    std::random_device rd;
    return rd();
}

int64_t
wallNow()
{
    return std::chrono::steady_clock::now().time_since_epoch()
        .count();
}

int64_t
sanctionedWallNow()
{
    // sieve-lint: allow(wall-clock)
    return std::chrono::steady_clock::now().time_since_epoch()
        .count();
}

int64_t
sanctionedTrailingAllow()
{
    // The directive sits on the statement's LAST line, two lines
    // below the flagged token: the full statement span must honor it.
    return std::chrono::steady_clock::now()
        .time_since_epoch()
        .count(); // sieve-lint: allow(wall-clock)
}

} // namespace fixture
