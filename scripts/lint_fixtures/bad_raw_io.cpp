// Fixture: raw device I/O outside src/storage/ must be flagged; the
// storage layer is the one audited syscall surface, so device access
// goes through storage::Backend. The parenthesized declarations below
// are deliberate — (open)(...) is not a call site and must not fire.

extern "C" {
int (open)(const char *path, int flags, ...);
long (pread)(int fd, void *buf, unsigned long n, long off);
long (read)(int fd, void *buf, unsigned long n);
int (fsync)(int fd);
}

static char g_buf[4096];

long
loadHeader(const char *path)
{
    const int fd = open(path, 0); // lint-expect: raw-io
    if (fd < 0)
        return -1;
    return pread(fd, g_buf, sizeof(g_buf), 0); // lint-expect: raw-io
}

long
drainStream(int fd)
{
    // A unistd-style 3-argument read() is a syscall, not a method.
    return read(fd, g_buf, sizeof(g_buf)); // lint-expect: raw-io
}

int
persist(int fd)
{
    return fsync(fd); // lint-expect: raw-io
}
