// Fixture: batched hot-path entry points must arm an allocation
// guard over their body. processBatch() below forgets the guard and
// must be flagged; the guarded nextBatch() and the annotated
// line-parsing reader must not.
// lint-expect: batch-guard

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#define SIEVE_ASSERT_NO_ALLOC

struct Request
{
    unsigned long long time = 0;
};

class BadBatchedAppliance
{
  public:
    void
    processBatch(std::span<const Request> batch)
    {
        for (const Request &req : batch)
            processOne(req);
    }

  private:
    void processOne(const Request &req) { (void)req; }
};

class GoodBatchedReader
{
  public:
    size_t
    nextBatch(std::span<Request> out)
    {
        SIEVE_ASSERT_NO_ALLOC;
        size_t n = 0;
        while (n < out.size() && n < pending.size())
            out[n] = pending[n++];
        return n;
    }

    /** Parsing decoders allocate per line; exempted explicitly. */
    size_t
    nextBatch(std::span<Request> out, const std::string &line)
    {
        // Line parsing allocates. // sieve-lint: allow(batch-guard)
        (void)line;
        return out.empty() ? 0 : 1;
    }

    /** Declarations are out of scope for the rule. */
    size_t nextBatch(std::span<Request> out, int);

  private:
    std::vector<Request> pending;
};
