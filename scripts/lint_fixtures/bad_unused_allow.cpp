/**
 * sieve-lint fixture: a suppression directive that no longer covers
 * any finding is stale — it must be flagged so dead allows cannot
 * silently mask future regressions.
 */
// lint-expect: unused-allow

#include <cstdint>

namespace fixture {

int64_t
pureComputation(int64_t x)
{
    // sieve-lint: allow(wall-clock)
    return x * 2;
}

} // namespace fixture
