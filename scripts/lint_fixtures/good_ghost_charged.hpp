// Fixture: ghost state charged the two sanctioned ways — by name in
// the class's own footprint audit (the metastateBytes() policy
// convention counts), or via a charged() directive naming the outer
// audit that sums it. Must lint clean.

#ifndef SIEVESTORE_SCRIPTS_LINT_FIXTURES_GOOD_GHOST_CHARGED_HPP
#define SIEVESTORE_SCRIPTS_LINT_FIXTURES_GOOD_GHOST_CHARGED_HPP

#include <cstdint>

#include "cache/ghost_cache.hpp"
#include "util/count_min.hpp"

namespace fixture {

class AuditedDirectory
{
  public:
    uint64_t metastateBytes() const;

  private:
    cache::GhostCache ghost{1024};
    util::CountMinSketch sketch{1 << 12};
};

// Out-of-line audit: the linter must find it in this file scan.
inline uint64_t
AuditedDirectory::metastateBytes() const
{
    return ghost.memoryBytes() + sketch.memoryBytes();
}

struct ShadowSlot
{
    // No audit of its own: the embedding policy sums every slot.
    // sieve-lint: charged(summed by AuditedDirectory::metastateBytes)
    cache::GhostCache ghost{512};
};

} // namespace fixture

#endif // SIEVESTORE_SCRIPTS_LINT_FIXTURES_GOOD_GHOST_CHARGED_HPP
