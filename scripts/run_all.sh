#!/usr/bin/env bash
# One-shot reproduction: configure, build, test, and run every
# table/figure harness. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
#
# Usage: scripts/run_all.sh [--preset NAME] [scale-denominator]
#   --preset NAME: build with a CMakePresets.json preset (release,
#   asan-ubsan, tsan) instead of the default in-source configure;
#   binaries then live under build/NAME/.
#   scale-denominator: 1/N of the paper's traffic (default 4096;
#   1024 gets closer to full volume and takes ~4x longer).

set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=""
if [[ "${1:-}" == "--preset" ]]; then
    PRESET="${2:?--preset requires a name (release, asan-ubsan, tsan)}"
    shift 2
fi

SCALE="${1:-4096}"

if [[ -n "$PRESET" ]]; then
    BUILD_DIR="build/$PRESET"
    cmake --preset "$PRESET"
    cmake --build --preset "$PRESET"
    ctest --preset "$PRESET" 2>&1 | tee test_output.txt
else
    BUILD_DIR="build"
    cmake -B build -G Ninja
    cmake --build build
    ctest --test-dir build 2>&1 | tee test_output.txt
fi

: > bench_output.txt
for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "### $b" | tee -a bench_output.txt
    if [[ "$b" == *bench_micro_structures ]]; then
        "$b" 2>&1 | tee -a bench_output.txt
    else
        "$b" --scale-denominator "$SCALE" 2>&1 | tee -a bench_output.txt
    fi
    echo | tee -a bench_output.txt
done

echo "done: see test_output.txt and bench_output.txt"
