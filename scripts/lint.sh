#!/usr/bin/env bash
# Lint driver: clang-format (dry run), clang-tidy, and the repo's
# custom style checker.
#
# Usage: scripts/lint.sh [--strict]
#
# LLVM tools are optional locally: a missing clang-format/clang-tidy is
# reported and skipped so the script still gates what it can (the
# custom checker). CI installs the real tools, where nothing is
# skipped. --strict turns a missing tool into a failure.
set -u

cd "$(dirname "$0")/.."

STRICT=0
[[ "${1:-}" == "--strict" ]] && STRICT=1

FAILED=0
SKIPPED=0

find_tool() {
    # Prefer an unversioned binary, fall back to versioned ones.
    local base="$1" v
    if command -v "$base" > /dev/null 2>&1; then
        echo "$base"
        return 0
    fi
    for v in 19 18 17 16 15; do
        if command -v "$base-$v" > /dev/null 2>&1; then
            echo "$base-$v"
            return 0
        fi
    done
    return 1
}

step() {
    echo "== $1"
}

# ---- 1. clang-format --dry-run ------------------------------------
step "clang-format (dry run)"
if FMT=$(find_tool clang-format); then
    if ! git ls-files -- 'src/**.[ch]pp' 'bench/**.[ch]pp' \
            'examples/**.[ch]pp' 'tests/**.[ch]pp' |
            xargs "$FMT" --dry-run --Werror 2>&1 | tail -40; then
        :
    fi
    # xargs exit status is what matters; rerun capturing it cleanly.
    if git ls-files -- 'src/**.[ch]pp' 'bench/**.[ch]pp' \
            'examples/**.[ch]pp' 'tests/**.[ch]pp' |
            xargs "$FMT" --dry-run --Werror > /dev/null 2>&1; then
        echo "   OK"
    else
        echo "   clang-format found formatting diffs (run: git ls-files" \
             "'*.cpp' '*.hpp' | xargs $FMT -i)"
        FAILED=1
    fi
else
    echo "   SKIPPED: clang-format not installed"
    SKIPPED=1
fi

# ---- 2. clang-tidy ------------------------------------------------
step "clang-tidy"
if TIDY=$(find_tool clang-tidy); then
    # Needs a compile database; build one in a throwaway dir if absent.
    DB_DIR=""
    for d in build/tidy build; do
        [[ -f "$d/compile_commands.json" ]] && DB_DIR="$d" && break
    done
    if [[ -z "$DB_DIR" ]]; then
        echo "   configuring build/tidy for compile_commands.json..."
        cmake -B build/tidy -S . -DCMAKE_BUILD_TYPE=Release \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
        DB_DIR=build/tidy
    fi
    # Tidy all compiled trees: src/, bench/, tests/. Filter to files
    # the compile database actually knows — bench/ and tests/ targets
    # are skipped when Google Benchmark / GTest are not installed.
    TIDY_FILES=$(git ls-files -- 'src/**.cpp' 'bench/**.cpp' \
            'tests/**.cpp' | while read -r f; do
        grep -q "$PWD/$f\"" "$DB_DIR/compile_commands.json" && echo "$f"
    done)
    if [[ -z "$TIDY_FILES" ]]; then
        echo "   SKIPPED: compile database has no lintable files"
        SKIPPED=1
    elif echo "$TIDY_FILES" |
            xargs -P "$(nproc)" -n 4 "$TIDY" -p "$DB_DIR" --quiet; then
        echo "   OK ($(echo "$TIDY_FILES" | wc -l) files)"
    else
        FAILED=1
    fi
else
    echo "   SKIPPED: clang-tidy not installed"
    SKIPPED=1
fi

# ---- 3. custom style checker --------------------------------------
step "check_style.py"
if python3 scripts/check_style.py; then
    :
else
    FAILED=1
fi

# ---- 4. project invariant linter ----------------------------------
step "sieve_lint.py"
if python3 scripts/sieve_lint.py --self-test &&
        python3 scripts/sieve_lint.py; then
    :
else
    FAILED=1
fi

# ---- 5. static hot-path proofs ------------------------------------
step "sieve_analyze.py"
if python3 scripts/sieve_analyze.py --self-test &&
        python3 scripts/sieve_analyze.py; then
    :
else
    FAILED=1
fi

# ---- 6. sieve-flow taint proof ------------------------------------
# The observe-never-decide storage contract: measured/nondeterministic
# data must never reach a sieve/cache/eviction/model-report sink.
step "sieve_analyze.py --flow"
if python3 scripts/sieve_analyze.py --flow; then
    :
else
    FAILED=1
fi

# ---- summary ------------------------------------------------------
if [[ $FAILED -ne 0 ]]; then
    echo "lint: FAILED"
    exit 1
fi
if [[ $SKIPPED -ne 0 && $STRICT -ne 0 ]]; then
    echo "lint: FAILED (--strict and a tool was skipped)"
    exit 1
fi
if [[ $SKIPPED -ne 0 ]]; then
    echo "lint: OK (some tools skipped; CI runs them all)"
else
    echo "lint: OK"
fi
exit 0
