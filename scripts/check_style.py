#!/usr/bin/env python3
"""Repo-specific style checks that clang-tidy does not cover.

Run from anywhere; operates on the repository containing this script.

Checks:
  1. Header guards: every .hpp under src/, bench/, examples/ uses
     #ifndef SIEVESTORE_<PATH>_HPP / matching #define, and the final
     #endif carries a `// SIEVESTORE_<PATH>_HPP` comment.
  2. Include hygiene: project headers are included with quotes
     ("util/check.hpp"), system/library headers with angle brackets.
  3. Banned constructs: raw assert() is forbidden in src/, bench/,
     examples/ — use SIEVE_CHECK / SIEVE_DCHECK (util/check.hpp) so
     contracts stay on in Release and print formatted context.

Exit status: 0 if clean, 1 if any violation was found.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_DIRS = ("src", "bench", "examples")
TEST_DIRS = ("tests",)

# Project include roots: anything includable with quotes.
PROJECT_PREFIXES = None  # computed from src/ top-level dirs + bench/


def projectPrefixes():
    prefixes = set()
    src = os.path.join(REPO, "src")
    for name in os.listdir(src):
        if os.path.isdir(os.path.join(src, name)):
            prefixes.add(name)
    prefixes.add("bench_common.hpp")
    # Test-only header trees (tests/modelcheck/...) are included as
    # "modelcheck/sched.hpp" from test sources.
    tests = os.path.join(REPO, "tests")
    if os.path.isdir(tests):
        for name in os.listdir(tests):
            if os.path.isdir(os.path.join(tests, name)):
                prefixes.add(name)
    return prefixes


def expectedGuard(relpath):
    """src/core/imct.hpp -> SIEVESTORE_CORE_IMCT_HPP; bench and
    examples headers drop the top-level directory the same way src
    does (bench/bench_common.hpp -> SIEVESTORE_BENCH_BENCH_COMMON_HPP
    keeps it, matching the existing convention)."""
    parts = relpath.split(os.sep)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return ("SIEVESTORE_" + stem).upper()


def checkHeaderGuard(relpath, lines, errors):
    guard = expectedGuard(relpath)
    ifndef_re = re.compile(r"^#ifndef\s+(\S+)")
    define_re = re.compile(r"^#define\s+(\S+)\s*$")
    ifndef = None
    for i, line in enumerate(lines):
        m = ifndef_re.match(line)
        if m:
            ifndef = (i, m.group(1))
            break
    if ifndef is None:
        errors.append(f"{relpath}: missing #ifndef header guard")
        return
    if ifndef[1] != guard:
        errors.append(
            f"{relpath}:{ifndef[0] + 1}: header guard is "
            f"{ifndef[1]}, expected {guard}")
        return
    if ifndef[0] + 1 >= len(lines):
        errors.append(f"{relpath}: #ifndef not followed by #define")
        return
    m = define_re.match(lines[ifndef[0] + 1])
    if not m or m.group(1) != guard:
        errors.append(
            f"{relpath}:{ifndef[0] + 2}: #ifndef {guard} must be "
            f"immediately followed by #define {guard}")
    # Final non-blank line must be the commented #endif.
    last = None
    for i in range(len(lines) - 1, -1, -1):
        if lines[i].strip():
            last = i
            break
    want = f"#endif // {guard}"
    if last is None or lines[last].strip() != want:
        errors.append(
            f"{relpath}:{(last or 0) + 1}: file must end with "
            f"'{want}'")


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')


def checkIncludes(relpath, lines, prefixes, errors):
    for i, line in enumerate(lines):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        style, path = m.groups()
        top = path.split("/")[0]
        is_project = top in prefixes
        if is_project and style == "<":
            errors.append(
                f"{relpath}:{i + 1}: project header <{path}> must "
                f"use quotes")
        elif not is_project and style == '"':
            errors.append(
                f"{relpath}:{i + 1}: non-project header \"{path}\" "
                f"must use angle brackets")


ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")


def checkBanned(relpath, lines, errors):
    in_block_comment = False
    for i, line in enumerate(lines):
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        code = re.sub(r"/\*.*?\*/", "", code)
        start = code.find("/*")
        if start >= 0:
            code = code[:start]
            in_block_comment = True
        code = code.split("//")[0]
        if "#include" in code and "assert" in code:
            errors.append(
                f"{relpath}:{i + 1}: <cassert>/<assert.h> is banned; "
                f"use util/check.hpp")
            continue
        if ASSERT_RE.search(code):
            errors.append(
                f"{relpath}:{i + 1}: raw assert() is banned; use "
                f"SIEVE_CHECK or SIEVE_DCHECK (util/check.hpp)")


def collectFiles(dirs, exts):
    out = []
    for d in dirs:
        root = os.path.join(REPO, d)
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if os.path.splitext(name)[1] in exts:
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, REPO))
    return sorted(out)


def main():
    prefixes = projectPrefixes()
    errors = []
    # Test headers carry guards too (tests/modelcheck/sched.hpp ->
    # SIEVESTORE_TESTS_MODELCHECK_SCHED_HPP).
    headers = collectFiles(SOURCE_DIRS + TEST_DIRS, {".hpp"})
    sources = collectFiles(SOURCE_DIRS, {".hpp", ".cpp"})
    # Tests keep gtest idiom but still obey include hygiene + assert ban.
    test_sources = collectFiles(TEST_DIRS, {".hpp", ".cpp"})

    for rel in headers:
        lines = open(os.path.join(REPO, rel)).read().splitlines()
        checkHeaderGuard(rel, lines, errors)
    for rel in sources + test_sources:
        lines = open(os.path.join(REPO, rel)).read().splitlines()
        checkIncludes(rel, lines, prefixes, errors)
        checkBanned(rel, lines, errors)

    n_files = len(set(sources + test_sources))
    if errors:
        for e in errors:
            print(e)
        print(f"check_style: {len(errors)} violation(s) in "
              f"{n_files} files", file=sys.stderr)
        return 1
    print(f"check_style: OK ({n_files} files, "
          f"{len(headers)} header guards)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
