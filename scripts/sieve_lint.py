#!/usr/bin/env python3
"""sieve-lint: project-specific invariant linter for SieveStore.

The repo's cost-performance claims lean on conventions no general
linter knows about; this tool makes them machine-checked:

  mem-charge        A class that defines memoryBytes() must charge
                    every container member in its implementation (the
                    member's name must appear in the body), or carry a
                    `// sieve-lint: charged(<why>)` directive on the
                    member. Uncharged containers silently understate
                    the footprint numbers the paper tables report.
  ghost-charge      A class embedding ghost state (cache::GhostCache
                    or util::CountMinSketch) must charge it by name in
                    a footprint audit (memoryBytes() or the policy
                    convention's metastateBytes()) — even when the
                    class audits nothing else. Ghost directories are
                    whole data structures reserved to their budget at
                    construction; an unaudited one silently understates
                    the policy fabric's metastate cost, exactly the
                    number the paper's DRAM-budget argument leans on.
  invariants        Audit-listed classes (the ones the contract layer
                    depends on) must declare checkInvariants().
  unordered-report  Iterating a std::unordered_* container must not
                    feed report output: iteration order is
                    implementation-defined, so emitted rows would not
                    be reproducible. Sort first (see sortedByCount).
  wall-clock        No wall-clock reads or nondeterministic seeding
                    (system_clock, random_device, rand) outside
                    util/random: every experiment must replay from a
                    seed. steady_clock is allowed in bench/ and
                    examples/ where wall-time is the measurement.
  batch-guard       Batched hot-path entry points (processBatch,
                    nextBatch definitions under src/) must arm
                    SIEVE_ASSERT_NO_ALLOC (or the _WHEN form) over
                    their body — the batch refactor's whole point is
                    amortizing per-request costs, so an allocating
                    batch loop silently regresses the replay numbers.
                    Readers that legitimately allocate (line-parsing
                    decoders) annotate with
                    // sieve-lint: allow(batch-guard).
  raw-prefetch      __builtin_prefetch outside src/util/ is banned:
                    util::prefetchRead (util/prefetch.hpp) is the one
                    sanctioned prefetch site, so every software
                    prefetch stays greppable, carries the agreed
                    locality hint, and compiles away uniformly on
                    targets without the builtin.
  raw-io            Raw device I/O (open/creat/pread/pwrite/readv/
                    writev/fsync/io_uring_* calls, and unistd-style
                    3+-argument read()/write()) outside src/storage/
                    is banned: the storage layer is the one audited
                    syscall surface, so every device access flows
                    through storage::Backend where it is counted,
                    fault-injectable, and alignment-checked.

Suppressions:
  // sieve-lint: charged(<reason>)   on or above a member declaration
  // sieve-lint: allow(<rule>)       on any flagged line

Backends: the default 'text' backend has no dependencies and parses
C++ structurally (comment stripping + brace matching). The 'clang'
backend resolves members through libclang (python3-clang) for the
mem-charge rule; 'auto' tries clang and falls back to text. Rules
other than mem-charge are textual in every backend.

Exit status: 0 if clean, 1 if any finding (or a failed --self-test).
"""

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src", "bench", "examples", "tests")
FIXTURE_DIR = os.path.join("scripts", "lint_fixtures")

RULES = ("mem-charge", "ghost-charge", "invariants",
         "unordered-report", "wall-clock", "batch-guard",
         "raw-prefetch", "raw-io")

# Classes the runtime contract layer audits; each must expose a
# checkInvariants() hook (any signature).
AUDIT_CLASSES = (
    "AccessCounter",
    "Appliance",
    "BlockCache",
    "CountMinSketch",
    "FileBackend",
    "FlatIndex",
    "FlatSieve",
    "GhostCache",
    "Imct",
    "IndexList",
    "Mct",
    "ShardedResult",
    "SieveStoreCPolicy",
    "WindowedCounter",
)

CONTAINER_RE = re.compile(
    r"\b(?:std::(?:vector|list|deque|map|set|multimap|multiset|"
    r"unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset|string|basic_string)|FlatIndex|IndexList)\b")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")

CHARGED_RE = re.compile(r"//\s*sieve-lint:\s*charged\(")
ALLOW_RE = re.compile(r"//\s*sieve-lint:\s*allow\(([\w-]+)\)")
EXPECT_RE = re.compile(r"//\s*lint-expect:\s*([\w-]+)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|high_resolution_clock)"
    r"|std::random_device"
    r"|\bsrand\s*\("
    r"|\brand\s*\(\s*\)"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)")
STEADY_CLOCK_RE = re.compile(r"std::chrono::steady_clock")

OUTPUT_RE = re.compile(
    r"<<|\bprintf\s*\(|\bfprintf\s*\(|\bfputs\s*\(|\baddRow\b"
    r"|\bwriteCsv\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def writeSarif(out_path, tool_name, rules, findings):
    """Minimal SARIF 2.1.0 log (shared with sieve_analyze.py), the
    format github/codeql-action/upload-sarif ingests so findings
    annotate PRs inline. `findings` is (path, line, rule, message)
    tuples; paths are repo-relative and line numbers 1-based."""
    import json
    results = []
    for (path, line, rule, message) in findings:
        results.append({
            "ruleId": rule,
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": path.replace(os.sep, "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {"startLine": max(1, int(line))},
                },
            }],
        })
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri":
                        "https://github.com/sievestore/sievestore",
                    "rules": [{"id": r} for r in rules],
                },
            },
            "results": results,
        }],
    }
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(log, f, indent=2, sort_keys=True)
        f.write("\n")


class SourceFile:
    """One parsed C++ file: raw lines, directives, stripped text."""

    def __init__(self, relpath, text):
        self.relpath = relpath
        self.lines = text.splitlines()
        # line number (1-based) -> set of allowed rules / charged flag
        self.allow = {}
        self.used_allows = set()  # (directive line, rule) that fired
        self._line_offsets = None
        self.charged = set()
        self.expect = []
        for i, line in enumerate(self.lines, start=1):
            for m in ALLOW_RE.finditer(line):
                self.allow.setdefault(i, set()).add(m.group(1))
            if CHARGED_RE.search(line):
                self.charged.add(i)
            for m in EXPECT_RE.finditer(line):
                self.expect.append(m.group(1))
        self.text = stripCommentsAndStrings(text)

    def lineOf(self, offset):
        """1-based line number of a character offset in the text."""
        return self.text.count("\n", 0, offset) + 1

    def allowed(self, line, rule, last_line=None):
        """Directive anywhere on the flagged statement's span
        [line, last_line] or on the line above it. Matches are
        recorded so stale directives can be reported afterwards."""
        last = last_line if last_line is not None else line
        found = False
        for l in range(line - 1, last + 1):
            if rule in self.allow.get(l, set()):
                self.used_allows.add((l, rule))
                found = True
        return found

    def statementEnd(self, line):
        """1-based line of the `;` terminating the statement that
        starts on `line` (the same line when none follows)."""
        if self._line_offsets is None:
            offs = [0]
            for ln in self.text.splitlines(keepends=True):
                offs.append(offs[-1] + len(ln))
            self._line_offsets = offs
        idx = min(line - 1, len(self._line_offsets) - 1)
        semi = self.text.find(";", self._line_offsets[idx])
        return self.lineOf(semi) if semi != -1 else line

    def chargedNear(self, first_line, last_line):
        """charged() directive within the member's lines or above."""
        return any(line in self.charged
                   for line in range(first_line - 1, last_line + 1))


def stripCommentsAndStrings(text):
    """Blank out comments and literal contents, preserving newlines
    and string/char delimiters so offsets and brace structure hold."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        if mode is None:
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                mode = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # inside a string or char literal
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
                out.append(c)
            elif c == "\n":  # unterminated; bail to code mode
                mode = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def matchBrace(text, open_pos):
    """Offset just past the brace matching text[open_pos] == '{'."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?::[^{;]*)?\{")


class ClassInfo:
    def __init__(self, name, body_start, body_end):
        self.name = name
        self.body_start = body_start  # offset just past '{'
        self.body_end = body_end      # offset of matching '}'
        self.members = []             # (name, stmt_first, stmt_last)
        self.inline_memory_bytes = None
        self.declares_memory_bytes = False
        self.has_check_invariants = False


def topLevelStatements(text, start, end):
    """Yield (stmt_text, stmt_start, stmt_end) for depth-0 statements
    of a class body, skipping nested braces (methods, nested types).
    Brace-terminated constructs yield their pre-brace head once."""
    stmt_start = start
    depth = 0
    i = start
    while i < end:
        c = text[i]
        if c == "{":
            if depth == 0:
                yield (text[stmt_start:i], stmt_start, i)
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                stmt_start = i + 1
        elif c == ";" and depth == 0:
            yield (text[stmt_start:i], stmt_start, i)
            stmt_start = i + 1
        i += 1


MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:public|private|protected)\s*:|^\s*(?:using|typedef|"
    r"friend|template|static)\b")


def parseClasses(src):
    """All class/struct definitions in a SourceFile, with container
    members and memoryBytes/checkInvariants info."""
    classes = []
    for m in CLASS_HEAD_RE.finditer(src.text):
        open_pos = m.end() - 1
        body_end = matchBrace(src.text, open_pos) - 1
        info = ClassInfo(m.group(1), open_pos + 1, body_end)
        body = src.text[info.body_start:info.body_end]
        info.has_check_invariants = "checkInvariants" in body
        for stmt, s_start, s_end in topLevelStatements(
                src.text, info.body_start, info.body_end):
            if "memoryBytes" in stmt and "(" in stmt:
                info.declares_memory_bytes = True
                if s_end < len(src.text) and src.text[s_end] == "{":
                    close = matchBrace(src.text, s_end)
                    info.inline_memory_bytes = (
                        (info.inline_memory_bytes or "") +
                        src.text[s_end:close])
                continue
            if MEMBER_SKIP_RE.search(stmt):
                continue
            if "(" in stmt:
                continue
            # Type-test only the declarator, not the initializer
            # (uint32_t hand = IndexList::kNull is not a container).
            decl = re.sub(r"(=|\{).*$", "", stmt, flags=re.S)
            if not CONTAINER_RE.search(decl):
                continue
            names = re.findall(r"[A-Za-z_]\w*", decl)
            if not names:
                continue
            info.members.append((names[-1], src.lineOf(s_start),
                                 src.lineOf(s_end)))
        classes.append(info)
    return classes


OUT_OF_LINE_MB_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:<[^;{}]*>)?\s*::\s*memoryBytes\s*"
    r"\([^)]*\)\s*const\s*(?:override\s*)?\{")


def collectMemoryBytesBodies(sources):
    """class name -> concatenated memoryBytes() bodies (inline and
    out-of-line definitions across all scanned files)."""
    bodies = {}
    for src in sources:
        for m in OUT_OF_LINE_MB_RE.finditer(src.text):
            open_pos = m.end() - 1
            close = matchBrace(src.text, open_pos)
            body = src.text[open_pos:close]
            bodies[m.group(1)] = bodies.get(m.group(1), "") + body
    return bodies


def checkMemCharge(sources, findings, backend_note):
    all_classes = []
    for src in sources:
        for info in parseClasses(src):
            all_classes.append((src, info))
    out_of_line = collectMemoryBytesBodies(sources)
    for src, info in all_classes:
        if not info.members:
            continue
        body = info.inline_memory_bytes or ""
        if info.name in out_of_line:
            body += out_of_line[info.name]
        if not body:
            # No implementation found: either the class has no
            # memoryBytes at all (out of scope) or only a pure/
            # unimplemented declaration (nothing to audit yet).
            continue
        for name, first, last in info.members:
            if re.search(r"\b%s\b" % re.escape(name), body):
                continue
            if src.chargedNear(first, last):
                continue
            findings.append(Finding(
                src.relpath, first, "mem-charge",
                f"{info.name}::{name} is a container member but "
                f"{info.name}::memoryBytes() never charges it; add "
                f"it to the footprint or annotate with "
                f"// sieve-lint: charged(<why>){backend_note}"))


# Ghost-state types whose footprint must always be audited. Unlike
# the generic containers of mem-charge, embedding one of these is an
# unconditional obligation: the holding class must charge it even when
# it audits nothing else (or say why not via charged()).
GHOST_TYPE_RE = re.compile(
    r"\b(?:cache\s*::\s*)?GhostCache\b"
    r"|\b(?:util\s*::\s*)?CountMinSketch\b")

# Out-of-line footprint audits: memoryBytes() everywhere, plus the
# AllocationPolicy convention's metastateBytes() (the adaptive sieve
# charges its shadow ghosts there).
OUT_OF_LINE_AUDIT_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:<[^;{}]*>)?\s*::\s*"
    r"(?:memoryBytes|metastateBytes)\s*"
    r"\([^)]*\)\s*const\s*(?:override\s*)?\{")

AUDIT_METHOD_RE = re.compile(r"\b(?:memoryBytes|metastateBytes)\b")


def checkGhostCharge(sources, findings):
    """Every GhostCache/CountMinSketch member must appear by name in
    its class's memoryBytes()/metastateBytes() body (gathered inline
    and out-of-line across the scanned files), or carry a charged()
    directive naming the audit that sums it from outside."""
    audit_bodies = {}
    ghost_members = []  # (src, class, member, first_line, last_line)
    for src in sources:
        for m in CLASS_HEAD_RE.finditer(src.text):
            open_pos = m.end() - 1
            body_end = matchBrace(src.text, open_pos) - 1
            cls = m.group(1)
            for stmt, s_start, s_end in topLevelStatements(
                    src.text, open_pos + 1, body_end):
                if AUDIT_METHOD_RE.search(stmt) and "(" in stmt:
                    if s_end < len(src.text) and \
                            src.text[s_end] == "{":
                        close = matchBrace(src.text, s_end)
                        audit_bodies[cls] = (
                            audit_bodies.get(cls, "") +
                            src.text[s_end:close])
                    continue
                if MEMBER_SKIP_RE.search(stmt) or "(" in stmt:
                    continue
                decl = re.sub(r"(=|\{).*$", "", stmt, flags=re.S)
                if not GHOST_TYPE_RE.search(decl):
                    continue
                names = re.findall(r"[A-Za-z_]\w*", decl)
                if not names:
                    continue
                ghost_members.append((src, cls, names[-1],
                                      src.lineOf(s_start),
                                      src.lineOf(s_end)))
        for m in OUT_OF_LINE_AUDIT_RE.finditer(src.text):
            open_pos = m.end() - 1
            close = matchBrace(src.text, open_pos)
            audit_bodies[m.group(1)] = (
                audit_bodies.get(m.group(1), "") +
                src.text[open_pos:close])
    for src, cls, name, first, last in ghost_members:
        body = audit_bodies.get(cls)
        if body and re.search(r"\b%s\b" % re.escape(name), body):
            continue
        if src.chargedNear(first, last):
            continue
        if body:
            detail = (f"{cls}'s footprint audit never charges it by "
                      f"name")
        else:
            detail = (f"{cls} defines no memoryBytes()/"
                      f"metastateBytes() to charge it in")
        findings.append(Finding(
            src.relpath, first, "ghost-charge",
            f"{cls}::{name} embeds ghost/sketch state but {detail}; "
            f"add it to the footprint or annotate with "
            f"// sieve-lint: charged(<which audit sums it>)"))


def checkInvariantsRule(sources, findings, check_missing):
    found = {}
    for src in sources:
        for info in parseClasses(src):
            if info.name in AUDIT_CLASSES:
                line = src.lineOf(info.body_start)
                prev = found.get(info.name)
                ok = info.has_check_invariants
                if prev is None or (ok and not prev[2]):
                    found[info.name] = (src.relpath, line, ok)
    for name in AUDIT_CLASSES:
        if name not in found:
            if check_missing:
                findings.append(Finding(
                    "<audit-list>", 0, "invariants",
                    f"audit-listed class {name} not found in the "
                    f"tree; update AUDIT_CLASSES in sieve_lint.py"))
            continue
        relpath, line, ok = found[name]
        if not ok:
            findings.append(Finding(
                relpath, line, "invariants",
                f"{name} is on the invariant audit list but does "
                f"not declare checkInvariants()"))


def unorderedNames(src):
    """Identifiers declared (anywhere in the file) with an unordered
    container type, plus aliases of unordered types."""
    names = set()
    aliases = set()
    for m in re.finditer(
            r"\busing\s+([A-Za-z_]\w*)\s*=\s*[^;]*unordered_",
            src.text):
        aliases.add(m.group(1))
    decl_re = re.compile(
        r"\bunordered_(?:map|set|multimap|multiset)\s*<")
    for m in decl_re.finditer(src.text):
        # Find the matching '>' then the declared identifier.
        i = m.end() - 1
        depth = 0
        while i < len(src.text):
            if src.text[i] == "<":
                depth += 1
            elif src.text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = src.text[i + 1:i + 120]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={,)]", tail)
        if dm:
            names.add(dm.group(1))
    for alias in aliases:
        for m in re.finditer(
                r"\b%s\b\s*&?\s*([A-Za-z_]\w*)\s*[;={,)]"
                % re.escape(alias), src.text):
            names.add(m.group(1))
    return names


FOR_RANGE_RE = re.compile(r"\bfor\s*\(")


def checkUnorderedReport(src, findings):
    names = unorderedNames(src)
    if not names:
        return
    for m in FOR_RANGE_RE.finditer(src.text):
        # Find the range-for ':' and closing ')' of the head.
        i = m.end() - 1
        depth = 0
        colon = -1
        while i < len(src.text):
            c = src.text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == ":" and depth == 1 and \
                    src.text[i + 1:i + 2] != ":" and \
                    src.text[i - 1:i] != ":":
                colon = i
            i += 1
        if colon < 0 or i >= len(src.text):
            continue
        target = src.text[colon + 1:i].strip()
        ids = re.findall(r"[A-Za-z_]\w*", target)
        if not ids or ids[0] not in names:
            continue
        # Body: brace block or single statement after the head.
        j = i + 1
        while j < len(src.text) and src.text[j].isspace():
            j += 1
        if j < len(src.text) and src.text[j] == "{":
            body = src.text[j:matchBrace(src.text, j)]
        else:
            body = src.text[j:src.text.find(";", j) + 1]
        if not OUTPUT_RE.search(body):
            continue
        # gtest assertion streams are failure diagnostics, not
        # report rows; order-independent assertions are fine.
        if re.search(r"\b(?:EXPECT|ASSERT)_\w+\s*\(", body):
            continue
        line = src.lineOf(m.start())
        if src.allowed(line, "unordered-report",
                       src.lineOf(j + len(body))):
            continue
        findings.append(Finding(
            src.relpath, line, "unordered-report",
            f"iteration over std::unordered_* '{ids[0]}' feeds "
            f"report output; the row order is nondeterministic — "
            f"sort first (e.g. sortedByCount) or collect-then-sort"))


def checkWallClock(src, findings):
    top = src.relpath.split(os.sep)[0]
    in_bench = top in ("bench", "examples")
    if src.relpath.startswith(os.path.join("src", "util", "random")):
        return
    for i, line in enumerate(src.text.splitlines(), start=1):
        hit = WALL_CLOCK_RE.search(line)
        kind = None
        if hit:
            kind = hit.group(0)
        elif not in_bench and STEADY_CLOCK_RE.search(line):
            kind = "std::chrono::steady_clock"
        if kind is None:
            continue
        if src.allowed(i, "wall-clock", src.statementEnd(i)):
            continue
        findings.append(Finding(
            src.relpath, i, "wall-clock",
            f"{kind.strip()} breaks seeded reproducibility; use "
            f"util::Rng / util::TimeUs (steady_clock is allowed "
            f"only under bench/ and examples/)"))


RAW_PREFETCH_RE = re.compile(r"\b__builtin_prefetch\s*\(")


def checkRawPrefetch(src, findings):
    """Ban raw __builtin_prefetch outside src/util/: the sanctioned
    wrapper is util::prefetchRead (util/prefetch.hpp)."""
    if src.relpath.startswith(os.path.join("src", "util") + os.sep):
        return
    for i, line in enumerate(src.text.splitlines(), start=1):
        if not RAW_PREFETCH_RE.search(line):
            continue
        if src.allowed(i, "raw-prefetch", src.statementEnd(i)):
            continue
        findings.append(Finding(
            src.relpath, i, "raw-prefetch",
            "raw __builtin_prefetch outside src/util/; call "
            "util::prefetchRead (util/prefetch.hpp) so prefetch "
            "sites stay greppable and carry the agreed locality "
            "hint"))


# Names that are raw device I/O whenever they appear as a call (no
# common C++ method shares them). The lookbehind drops member calls
# (.open), qualified names (Foo::open, ->open) and longer identifiers.
RAW_IO_ALWAYS_RE = re.compile(
    r"(?<![\w.:>])"
    r"(?:open|openat|creat|pread|pwrite|pread64|pwrite64|preadv|"
    r"pwritev|readv|writev|fsync|fdatasync|io_uring_\w+)\s*\(")
# Explicitly global-qualified forms are raw I/O by construction.
RAW_IO_GLOBAL_RE = re.compile(
    r"(?<![\w>])::\s*(?:read|write|pread|pwrite)\s*\(")
# Bare read()/write() are common method names (TraceReader::write and
# friends); only the unistd-style 3+-argument calls are findings.
RAW_IO_RW_RE = re.compile(r"(?<![\w.:>])(?:read|write)\s*\(")


def checkRawIo(src, findings):
    """Quarantine raw device I/O in src/storage/: everywhere else the
    syscall surface is storage::Backend, where ops are counted,
    fault-injectable, and alignment-checked."""
    if src.relpath.startswith(os.path.join("src", "storage") + os.sep):
        return

    def flag(pos, name):
        line = src.lineOf(pos)
        if src.allowed(line, "raw-io", src.statementEnd(line)):
            return
        findings.append(Finding(
            src.relpath, line, "raw-io",
            f"raw I/O call {name}() outside src/storage/; device "
            f"access goes through storage::Backend so the one "
            f"syscall surface stays audited and fault-injectable"))

    for m in RAW_IO_ALWAYS_RE.finditer(src.text):
        flag(m.start(), m.group(0).split("(")[0].strip())
    for m in RAW_IO_GLOBAL_RE.finditer(src.text):
        flag(m.start(), m.group(0).split("(")[0].strip())
    for m in RAW_IO_RW_RE.finditer(src.text):
        open_paren = src.text.index("(", m.start())
        depth, commas, i = 0, 0, open_paren
        while i < len(src.text):
            c = src.text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == "," and depth == 1:
                commas += 1
            elif c == ";" and depth == 0:
                break
            i += 1
        if commas >= 2:
            flag(m.start(), m.group(0).split("(")[0].strip())


BATCH_ENTRY_RE = re.compile(
    r"\b(?:[A-Za-z_]\w*\s*::\s*)?(processBatch|nextBatch)\s*\(")


def checkBatchGuard(src, findings):
    top = src.relpath.split(os.sep)[0]
    if top not in ("src", "scripts"):
        return
    for m in BATCH_ENTRY_RE.finditer(src.text):
        # Closing paren of the parameter list.
        i = src.text.index("(", m.start())
        depth = 0
        while i < len(src.text):
            if src.text[i] == "(":
                depth += 1
            elif src.text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= len(src.text):
            continue
        # A definition continues with optional qualifiers then '{';
        # declarations (';') and calls are not in scope.
        tail = src.text[i + 1:i + 120]
        tm = re.match(
            r"\s*(?:const\s*)?(?:noexcept\s*)?(?:override\s*)?"
            r"(?:final\s*)?\{", tail)
        if not tm:
            continue
        open_pos = i + 1 + tm.end() - 1
        close = matchBrace(src.text, open_pos)
        if "SIEVE_ASSERT_NO_ALLOC" in src.text[open_pos:close]:
            continue
        line = src.lineOf(m.start())
        body_last = src.lineOf(close)
        if src.allowed(line, "batch-guard", body_last):
            continue
        findings.append(Finding(
            src.relpath, line, "batch-guard",
            f"batched hot-path entry point {m.group(1)}() does not "
            f"arm SIEVE_ASSERT_NO_ALLOC over its body; guard the "
            f"batch loop (the _WHEN form counts) or annotate with "
            f"// sieve-lint: allow(batch-guard)"))


def collectCppFiles(root, dirs):
    out = []
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if os.path.splitext(name)[1] in (".hpp", ".cpp"):
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, root))
    return sorted(out)


def loadSources(root, relpaths):
    sources = []
    for rel in relpaths:
        with open(os.path.join(root, rel),
                  encoding="utf-8", errors="replace") as f:
            sources.append(SourceFile(rel, f.read()))
    return sources


def tryClangMemCharge(root, sources, findings):
    """libclang-backed mem-charge: resolve fields and memoryBytes()
    definitions through the AST. Returns True when it ran."""
    try:
        import clang.cindex as ci
        index = ci.Index.create()
    except Exception:
        return False
    args = ["-x", "c++", "-std=c++17",
            "-I", os.path.join(root, "src"),
            "-I", os.path.join(root, "tests")]
    by_path = {os.path.join(root, s.relpath): s for s in sources}
    field_kinds = (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                   ci.CursorKind.CLASS_TEMPLATE)

    def classCursors(cursor, out):
        for child in cursor.get_children():
            if child.kind in field_kinds and child.is_definition():
                out.append(child)
            if child.kind in (ci.CursorKind.NAMESPACE,
                              *field_kinds):
                classCursors(child, out)

    mb_bodies = {}  # class usr -> token spellings of definitions
    class_fields = {}  # class usr -> (name, [(field, file, line)])
    for path, src in sorted(by_path.items()):
        if not path.endswith(".hpp") and not path.endswith(".cpp"):
            continue
        try:
            tu = index.parse(path, args=args)
        except Exception:
            return False
        classes = []
        classCursors(tu.cursor, classes)
        for cls in classes:
            usr = cls.get_usr()
            fields = class_fields.setdefault(
                usr, (cls.spelling, []))[1]
            for child in cls.get_children():
                if child.kind != ci.CursorKind.FIELD_DECL:
                    continue
                if not CONTAINER_RE.search(child.type.spelling):
                    continue
                loc = child.location
                if loc.file and os.path.abspath(
                        loc.file.name) == path:
                    fields.append((child.spelling, path, loc.line))

        def methodDefs(cursor):
            for child in cursor.get_children():
                if (child.kind == ci.CursorKind.CXX_METHOD and
                        child.spelling == "memoryBytes" and
                        child.is_definition()):
                    parent = child.semantic_parent
                    tokens = " ".join(
                        t.spelling for t in child.get_tokens())
                    usr2 = parent.get_usr()
                    mb_bodies[usr2] = \
                        mb_bodies.get(usr2, "") + " " + tokens
                if child.kind in (ci.CursorKind.NAMESPACE,
                                  *field_kinds):
                    methodDefs(child)

        methodDefs(tu.cursor)

    for usr, (cls_name, fields) in class_fields.items():
        body = mb_bodies.get(usr)
        if not body:
            continue
        seen = set()
        for field, path, line in fields:
            if (field, line) in seen:
                continue
            seen.add((field, line))
            if re.search(r"\b%s\b" % re.escape(field), body):
                continue
            src = by_path.get(path)
            if src and src.chargedNear(line, line):
                continue
            rel = os.path.relpath(path, root)
            findings.append(Finding(
                rel, line, "mem-charge",
                f"{cls_name}::{field} is a container member but "
                f"{cls_name}::memoryBytes() never charges it; add "
                f"it to the footprint or annotate with "
                f"// sieve-lint: charged(<why>) [clang]"))
    return True


def checkUnusedAllows(src, findings):
    """Flag `// sieve-lint: allow(rule)` directives no finding
    consumed. Runs after every other rule so used_allows is final."""
    for line in sorted(src.allow):
        for rule in sorted(src.allow[line]):
            if (line, rule) in src.used_allows:
                continue
            findings.append(Finding(
                src.relpath, line, "unused-allow",
                f"allow({rule}) suppresses nothing — remove the "
                f"stale directive"))


def runLint(root, relpaths, backend, check_missing):
    sources = loadSources(root, relpaths)
    findings = []
    used_clang = False
    if backend in ("clang", "auto"):
        used_clang = tryClangMemCharge(root, sources, findings)
        if not used_clang and backend == "clang":
            print("sieve-lint: clang backend unavailable "
                  "(python3-clang not importable)", file=sys.stderr)
            return None
    if not used_clang:
        checkMemCharge(sources, findings, "")
    checkGhostCharge(sources, findings)
    checkInvariantsRule(sources, findings, check_missing)
    for src in sources:
        checkUnorderedReport(src, findings)
        checkWallClock(src, findings)
        checkBatchGuard(src, findings)
        checkRawPrefetch(src, findings)
        checkRawIo(src, findings)
    # After every rule has run: a directive that suppressed nothing
    # is stale and must be removed, not left to mask future findings.
    for src in sources:
        checkUnusedAllows(src, findings)
    return findings


def selfTest(root, backend):
    fixtures = os.path.join(root, FIXTURE_DIR)
    # The analyze/ subtree holds sieve_analyze.py's fixtures; those
    # intentionally violate *that* tool's rules, not this one's.
    analyze_dir = os.path.join(FIXTURE_DIR, "analyze") + os.sep
    relpaths = [r for r in collectCppFiles(root, (FIXTURE_DIR,))
                if not r.startswith(analyze_dir)]
    if not relpaths:
        print(f"sieve-lint: no fixtures under {fixtures}",
              file=sys.stderr)
        return 1
    sources = loadSources(root, relpaths)
    expected = []
    for src in sources:
        for rule in src.expect:
            expected.append((src.relpath, rule))
    findings = runLint(root, relpaths, backend, check_missing=False)
    if findings is None:
        return 1
    got = [(f.path, f.rule) for f in findings]
    ok = sorted(expected) == sorted(got)
    if not ok:
        print("sieve-lint self-test FAILED", file=sys.stderr)
        print(f"  expected: {sorted(expected)}", file=sys.stderr)
        print(f"  got:      {sorted(got)}", file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"sieve-lint self-test OK ({len(relpaths)} fixtures, "
          f"{len(expected)} expected findings reproduced)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="SieveStore project-invariant linter")
    parser.add_argument("--root", default=REPO,
                        help="repository root (default: inferred)")
    parser.add_argument("--backend",
                        choices=("text", "clang", "auto"),
                        default="text",
                        help="mem-charge resolution backend")
    parser.add_argument("--sarif", default=None, metavar="OUT",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--self-test", action="store_true",
                        help="run against scripts/lint_fixtures/")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: whole tree)")
    opts = parser.parse_args()

    if opts.self_test:
        return selfTest(opts.root, opts.backend)

    if opts.paths:
        relpaths = [os.path.relpath(os.path.abspath(p), opts.root)
                    for p in opts.paths]
        check_missing = False
    else:
        relpaths = collectCppFiles(opts.root, SCAN_DIRS)
        check_missing = os.path.isdir(os.path.join(opts.root, "src"))

    findings = runLint(opts.root, relpaths, opts.backend,
                       check_missing)
    if findings is None:
        return 1
    if opts.sarif:
        writeSarif(opts.sarif, "sieve-lint", RULES,
                   [(f.path, f.line, f.rule, f.message)
                    for f in findings])
    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    if findings:
        print(f"sieve-lint: {len(findings)} finding(s) in "
              f"{len(relpaths)} files", file=sys.stderr)
        return 1
    print(f"sieve-lint: OK ({len(relpaths)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
