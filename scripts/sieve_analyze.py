#!/usr/bin/env python3
"""sieve-analyze: call-graph static analyzer for SieveStore hot paths.

sieve-lint (scripts/sieve_lint.py) checks conventions line by line;
this tool checks *reachability* claims that need a call graph. It
parses every C++ file under src/, extracts function definitions and
their call sites, and proves three project claims statically:

  no-alloc         Every function transitively reachable from a
                   no-alloc root is allocation-free. Roots are (a) the
                   dynamic extent of every armed SIEVE_ASSERT_NO_ALLOC
                   / _WHEN region (util/alloc_guard.hpp) — from the
                   guard statement to the end of its enclosing brace
                   scope — and (b) functions annotated SIEVE_NOALLOC
                   (util/check.hpp). Allocation is `new`, an allocating
                   libc/C++ primitive (malloc, make_unique, ...), or a
                   growing container method (push_back, resize, ...).
                   Traversal stops, and the stop is *reported*, at
                   functions annotated SIEVE_MAY_ALLOC and at functions
                   that construct util::AllocGuardDisarm — the runtime
                   guard is disarmed over their dynamic extent, so the
                   static claim delegates to the reviewed escape hatch.
  determinism      The same roots must not reach a nondeterminism
                   primitive (rand/srand, std::random_device, wall
                   clocks, time(NULL)). sieve-lint already bans these
                   per line across the whole tree; the graph version
                   closes the "hot region calls a helper whose ban was
                   suppressed" hole and attributes each hit to the
                   hot-path root that reaches it.
  lock-discipline  Members annotated GUARDED_BY(cap) (via
                   util/thread_annotations.hpp) may be touched only by
                   functions that hold `cap`: a REQUIRES(cap) on the
                   function, a scoped MutexLock over cap in the body, a
                   direct cap.lock(), or a call to a TS_ASSERT(cap)
                   role-assertion function. This re-checks, with no
                   toolchain dependency, the discipline Clang enforces
                   under -Wthread-safety (GCC compiles the annotations
                   to nothing, so GCC-only hosts would otherwise have
                   no checker at all).
  stale-may-alloc  Every SIEVE_MAY_ALLOC annotation must still be
                   load-bearing: some allocation (token, primitive, or
                   allocating local container) must be reachable from
                   the annotated function. A MAY_ALLOC under which no
                   allocation survives is a stale exemption that would
                   silently swallow future regressions — the analog of
                   sieve-lint's unused-allow rule for line
                   suppressions.
  taint-flow       (--flow) sieve-flow: a forward interprocedural
                   taint analysis proving the storage layer's
                   observe-never-decide contract. Sources are measured
                   / nondeterministic data: functions and fields
                   annotated SIEVE_TAINT_SOURCE (Backend::readBlocks /
                   writeBlocks latency out-params, Backend::stats()
                   counters and histograms, the storage_* columns of
                   DailyReport) plus built-in primitives (pread/pwrite
                   and io_uring_* returns, rand/random_device, wall
                   clocks, getenv). Sinks are the decision surfaces
                   annotated SIEVE_TAINT_SINK (FlatSieve admit paths,
                   BlockCache mutation arguments, ReplacementPolicy
                   residency events, the model-side fields of
                   DailyReport). Taint propagates through assignments,
                   call arguments/returns, and member fields, with
                   per-function summaries iterated to a fixpoint;
                   SIEVE_FLOW_SANITIZE (util/flow_annotations.hpp) is
                   the audited boundary that absorbs taint, mirroring
                   SIEVE_MAY_ALLOC. Every violation reports the full
                   source -> assignment -> sink path; every deliberate
                   measured->report flow (a tainted write INTO a
                   source-annotated field) is listed by --report. The
                   engine follows explicit data flow only — control
                   dependence (a branch on measured data steering
                   clean values) is out of scope and covered
                   dynamically by sim::runStorageDifferential; see
                   DESIGN.md section 14.

Backends: the default 'text' backend is dependency-free and parses C++
structurally (comment stripping + brace matching, shared with
sieve-lint). The 'clang' backend builds the same program model from
the libclang AST using compile_commands.json (pass --compile-db or let
it default to build/compile_commands.json); 'auto' tries clang and
falls back to text. Both backends feed one reachability engine, so
findings and report format are identical.

Token-backend soundness boundary (documented, deliberate):

  * Calls are resolved by name, narrowed where the tokens allow it:
    a bare call inside a class binds to that class's own method; a
    qualified call `Foo::bar(...)` binds to Foo; a member call
    `x.bar(...)` binds to the declared type of `x` (resolved through
    file-local `using` aliases) *plus every class derived from it*,
    so virtual dispatch stays conservative. When no binding is
    possible the call reaches every function of that name defined
    under src/ — an over-approximation that can only add findings,
    never hide a defined function. Names defined nowhere in the tree
    are looked up in the allocation/nondeterminism primitive tables;
    unknown names (std:: algorithms, accessors) are treated as clean
    and counted in the --report output, so the size of the trust
    base is visible.
  * Indirect calls through function pointers, std::function, and
    stored callables (e.g. RequestBatcher's flush_) are invisible; the
    lambda *bodies* are still scanned, because a lambda defined inside
    a scanned region is part of the region's text.

Suppressions and fixtures:
  // sieve-analyze: allow(<rule>)   on the flagged statement's span
  // analyze-expect: <rule>         fixture marker for --self-test

Exit status: 0 if every claim is proven, 1 on any finding (or a
failed --self-test).
"""

import argparse
import collections
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from sieve_lint import matchBrace, stripCommentsAndStrings  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src",)
FIXTURE_DIR = os.path.join("scripts", "lint_fixtures", "analyze")

RULES = ("no-alloc", "determinism", "lock-discipline",
         "stale-may-alloc", "taint-flow")

# Flow fixtures live in their own subdirectory: the standard rules
# skip them (their deliberately-leaky helpers are not no-alloc
# claims) and the flow pass runs on them alone.
FLOW_FIXTURE_SUBDIR = os.path.join(FIXTURE_DIR, "flow")

ALLOW_RE = re.compile(r"//\s*sieve-analyze:\s*allow\(([\w-]+)\)")
EXPECT_RE = re.compile(r"//\s*analyze-expect:\s*([\w-]+)")

# Identifiers that look like calls but are not.
KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "catch", "throw", "new",
    "delete", "static_assert", "defined", "assert", "case",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "int", "char", "bool", "float", "double", "void", "auto",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t",
    "int16_t", "int32_t", "int64_t", "size_t", "ssize_t", "ptrdiff_t",
    # Annotation macros (util/thread_annotations.hpp, util/check.hpp)
    # and contract macros expand to attributes or to checkFailed-only
    # paths; the checkFailed edge is added explicitly below.
    "REQUIRES", "ACQUIRE", "RELEASE", "TRY_ACQUIRE", "TS_ASSERT",
    "GUARDED_BY", "PT_GUARDED_BY", "CAPABILITY", "EXCLUDES",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER", "SIEVE_THREAD_ANNOTATION",
))

# Contract macros whose only call is the [[noreturn]] failure path;
# model them as an edge to checkFailed so the failure path's disarm
# boundary shows up in reports instead of being invisible.
CONTRACT_MACROS = frozenset((
    "SIEVE_CHECK", "SIEVE_DCHECK", "SIEVE_UNREACHABLE",
))

# Callees with no definition in the tree that are known to allocate.
# Container-growth method names double as primitives: when the name is
# *also* defined in the tree (e.g. FlatIndex::reserve) the tree
# definition wins and is traversed instead — its own SIEVE_MAY_ALLOC /
# disarm status then decides.
ALLOC_PRIMITIVES = frozenset((
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "to_string", "stoi", "stoul",
    "stoull", "getline",
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "insert", "insert_or_assign", "try_emplace",
    "resize", "reserve", "assign", "append", "substr",
    "shrink_to_fit", "rehash",
))

# Nondeterminism primitives for the determinism claim (call names).
NONDET_PRIMITIVES = frozenset((
    "rand", "srand", "rand_r", "drand48", "time", "gettimeofday",
    "clock_gettime",
))
# ... and token-level patterns (types, not calls).
NONDET_TOKEN_RE = re.compile(
    r"std\s*::\s*random_device"
    r"|std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|"
    r"high_resolution_clock)")

CALL_RE = re.compile(r"(?:\b|::\s*)([A-Za-z_]\w*)\s*\(")
# `new T(...)` allocates; `new (addr) T` (placement) does not, and the
# lookahead excludes it. `new (std::nothrow) T` is excluded with it —
# acceptable: nothrow-new is not used in this tree (grep-verified) and
# the runtime AllocGuard would still catch one.
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")
GUARD_RE = re.compile(r"\bSIEVE_ASSERT_NO_ALLOC(?:_WHEN)?\b")
DISARM_RE = re.compile(r"\bAllocGuardDisarm\b")
NOALLOC_ATTR = "SIEVE_NOALLOC"
MAYALLOC_ATTR = "SIEVE_MAY_ALLOC"

# ---- sieve-flow (taint) tables -------------------------------------

FLOW_RULE = "taint-flow"
FLOW_ATTR_RE = re.compile(
    r"\b(SIEVE_TAINT_SOURCE|SIEVE_TAINT_SINK|SIEVE_FLOW_SANITIZE)\b")
FLOW_ATTR_KIND = {
    "SIEVE_TAINT_SOURCE": "source",
    "SIEVE_TAINT_SINK": "sink",
    "SIEVE_FLOW_SANITIZE": "sanitize",
}
# libclang annotate-attribute spellings (util/flow_annotations.hpp).
FLOW_CLANG_ATTRS = {
    "sieve-taint-source": "source",
    "sieve-taint-sink": "sink",
    "sieve-flow-sanitize": "sanitize",
}

# Calls with no in-tree definition whose return value and writable
# arguments are measured/nondeterministic data. Raw I/O is banned
# outside src/storage/ by sieve-lint's raw-io rule, so these fire only
# where the measured data genuinely originates.
FLOW_SOURCE_CALLS = frozenset((
    "rand", "srand", "rand_r", "drand48", "random", "time",
    "gettimeofday", "clock_gettime", "getenv",
    "pread", "pwrite", "pread64", "pwrite64", "preadv", "pwritev",
))
FLOW_SOURCE_PREFIXES = ("io_uring_",)
# Token-level sources (type spellings, not calls).
FLOW_TOKEN_RE = re.compile(
    r"std\s*::\s*random_device"
    r"|std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|"
    r"high_resolution_clock)")

# Identifiers never treated as tainted out-params of a source call
# (namespaces, casts, the spelling of the annotation itself).
FLOW_OUTPARAM_SKIP = frozenset(("std", "chrono", "span", "array",
                                "size", "data", "begin", "end"))

# Taint provenance is capped: paths longer than this keep their head
# (the source) and tail (the sink approach) readable without
# ballooning messages.
FLOW_MAX_STEPS = 12

# Local-declaration prescan. processStatement registers statement
# declarations through findAssign, but names declared at paren depth
# (for/if/while init, range-for, catch clauses, lambda parameters)
# and array declarations without an initializer never reach it; an
# unregistered name would fall through to the member-field fallback
# and leak function-local taint into the global field map. The scan
# is the classic decl heuristic — TYPE [<...>] [&*] NAME followed by
# a declarator delimiter at a statement/paren boundary — so `a * b;`
# style expression ambiguity resolves the same way a human reader's
# first guess does.
FLOW_DECL_SCAN_RE = re.compile(
    r"(?:^|[;{}(,])\s*"
    r"(?:(?:const|constexpr|static|volatile|struct|class|enum|"
    r"unsigned|signed|long|short|alignas\s*\([^)]*\))\s+)*"
    r"([A-Za-z_][\w:]*)"
    r"(?:\s*<[^<>;()]*>)?"
    r"\s*[&*\s][&*\s]*"
    r"([A-Za-z_]\w*)"
    r"\s*(?:=(?!=)|\{|\[|;|,|\)|:(?!:))")
FLOW_BINDING_RE = re.compile(r"\bauto\s*&{0,2}\s*\[([^\]]*)\]")
FLOW_DECL_SKIP = frozenset((
    "return", "case", "new", "delete", "throw", "goto", "else",
    "using", "typedef", "namespace", "template", "typename",
    "operator", "sizeof", "if", "while", "for", "switch", "do",
    "break", "continue", "public", "private", "protected",
    "default", "co_return", "co_yield", "co_await"))

# Container locals whose declaration alone allocates; the stale
# SIEVE_MAY_ALLOC check treats them as allocation evidence even when
# no growth method is called.
ALLOC_DECL_RE = re.compile(
    r"\bstd\s*::\s*(?:vector|string|deque|list|map|set|"
    r"unordered_map|unordered_set|[oi]?stringstream|function)\b")

# The enforcement layer itself: defines the replacement allocation
# functions and the guard machinery. Out of scope for violations.
EXEMPT_FILES = frozenset((
    os.path.join("src", "util", "alloc_guard.hpp"),
    os.path.join("src", "util", "alloc_guard.cpp"),
))


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Function:
    """One function definition: spans are offsets into the stripped
    file text; `calls` are (name, offset) pairs."""

    def __init__(self, qual, relpath, line, head_start, body_start,
                 body_end):
        self.qual = qual              # display name, maybe Class::name
        self.name = qual.rsplit("::", 1)[-1]
        self.relpath = relpath
        self.line = line
        self.head_start = head_start  # offset where the decl begins
        self.body_start = body_start  # offset just past '{'
        self.body_end = body_end      # offset of matching '}'
        self.noalloc = False          # SIEVE_NOALLOC on the decl
        self.may_alloc = False        # SIEVE_MAY_ALLOC on the decl
        self.disarms = False          # body constructs AllocGuardDisarm
        self.line_based = False       # clang frontend: offsets = lines
        self.requires = ""            # raw REQUIRES(...) argument text
        self.asserts_caps = []        # TS_ASSERT(...) argument text
        self.calls = []               # (name, offset, kind, recv)
        self.regions = []             # (start, end, line) guard spans
        self.params = []              # parameter names (None if unnamed)
        self.taint_source = False     # SIEVE_TAINT_SOURCE on the decl
        self.taint_sink = False       # SIEVE_TAINT_SINK on the decl
        self.sanitize = False         # SIEVE_FLOW_SANITIZE on the decl

    def key(self):
        return (self.relpath, self.line, self.qual)


class SourceFile:
    """One parsed file: stripped text plus suppression/expect lines."""

    def __init__(self, relpath, text):
        self.relpath = relpath
        self.raw_lines = text.splitlines()
        self.allow = {}
        self.expect = []
        for i, line in enumerate(self.raw_lines, start=1):
            for m in ALLOW_RE.finditer(line):
                self.allow.setdefault(i, set()).add(m.group(1))
            for m in EXPECT_RE.finditer(line):
                self.expect.append(m.group(1))
        self.text = stripCommentsAndStrings(text)
        self.functions = []
        self.guarded_fields = []  # (class, field, cap, line)

    def lineOf(self, offset):
        return self.text.count("\n", 0, offset) + 1

    def allowed(self, line, rule):
        """Suppression on the line, the line above, or anywhere on the
        statement's span (the statement containing `line` extends to
        the previous/next ';' or brace in the raw text is approximated
        by a 3-line window — statement spans are handled by callers
        passing every line of the span)."""
        return (rule in self.allow.get(line, set()) or
                rule in self.allow.get(line - 1, set()))

    def allowedSpan(self, first_line, last_line, rule):
        return any(rule in self.allow.get(l, set())
                   for l in range(first_line - 1, last_line + 1))


class Program:
    """The IR both backends produce: functions indexed by simple name,
    plus class hierarchy and per-file guarded-field tables."""

    def __init__(self):
        self.sources = {}             # relpath -> SourceFile
        self.by_name = collections.defaultdict(list)
        self.functions = []
        self.bases = {}               # class -> set(direct bases)
        self.aliases = {}             # alias -> class name
        self.class_spans = collections.defaultdict(list)
        #                             # class -> [(relpath, start, end)]
        # sieve-flow annotation registries. Function entries also
        # cover bodiless declarations (pure-virtual Backend methods),
        # which parseFunctions never sees.
        self.flow_fns = {}            # (class|None, name) -> set(kind)
        self.flow_fns_by_name = collections.defaultdict(set)
        self.flow_decl_site = {}      # (class|None, name) -> (rel, ln)
        self.taint_fields = {}        # (class|None, field) ->
        #                             #   (kind, relpath, line)
        self.taint_fields_by_name = collections.defaultdict(list)

    def classClosure(self, cls):
        """`cls` plus every transitive base class."""
        out = []
        work = [cls]
        seen = set()
        while work:
            c = work.pop()
            if c is None or c in seen:
                continue
            seen.add(c)
            out.append(c)
            work.extend(self.bases.get(c, ()))
        return out

    def add(self, fn):
        self.functions.append(fn)
        self.by_name[fn.name].append(fn)

    def finalize(self):
        """Derived-class closure and per-class method tables."""
        self.class_methods = collections.defaultdict(set)
        for fn in self.functions:
            if "::" in fn.qual:
                cls, meth = fn.qual.rsplit("::", 1)
                self.class_methods[cls].add(meth)
        children = collections.defaultdict(set)
        for cls, bases in self.bases.items():
            for b in bases:
                children[b].add(cls)
        self.derived = {}
        for cls in set(children) | set(self.bases):
            out = set()
            work = [cls]
            while work:
                c = work.pop()
                for d in children.get(c, ()):
                    if d not in out:
                        out.add(d)
                        work.append(d)
            self.derived[cls] = out

    def resolveClass(self, name):
        name = name.rsplit("::", 1)[-1]
        name = self.aliases.get(name, name)
        name = name.rsplit("::", 1)[-1]
        if name in self.class_methods or name in self.bases or \
                name in self.derived:
            return name
        return None

    def methodsOf(self, cls, name):
        """Defs of `cls::name` plus overrides in derived classes."""
        out = []
        for c in [cls] + sorted(self.derived.get(cls, ())):
            if name in self.class_methods.get(c, ()):
                qual = f"{c}::{name}"
                out.extend(f for f in self.by_name.get(name, ())
                           if f.qual == qual)
        return out


# --------------------------------------------------------------------
# Token frontend
# --------------------------------------------------------------------

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:CAPABILITY\s*\([^)]*\)\s*|"
    r"SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(:[^{;]*)?\{")

BASE_NAME_RE = re.compile(
    r"(?:public|protected|private|virtual|\s|,)*"
    r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)")

ALIAS_RE = re.compile(
    r"\busing\s+([A-Za-z_]\w*)\s*=\s*"
    r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*[<;]")

FUNC_NAME_RE = re.compile(
    r"\b((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*\(")

GUARDED_FIELD_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s+GUARDED_BY\s*\(\s*([^)]*?)\s*\)")

REQUIRES_HEAD_RE = re.compile(r"\bREQUIRES\s*\(\s*([^)]*?)\s*\)")
TSASSERT_HEAD_RE = re.compile(r"\bTS_ASSERT\s*\(\s*([^)]*?)\s*\)")

# Tokens that may legally sit between a definition's ')' and its '{'.
TAIL_WORD_RE = re.compile(
    r"\s*(const|noexcept|override|final|mutable|volatile|&&|&|"
    r"->\s*[\w:<>,\s*&]+?)(?=\s|\{|$)")


def classSpans(text):
    """[(name, body_start, body_end, bases)] for every class/struct
    body, with direct base-class simple names."""
    spans = []
    for m in CLASS_HEAD_RE.finditer(text):
        open_pos = m.end() - 1
        end = matchBrace(text, open_pos) - 1
        bases = set()
        clause = m.group(2)
        if clause:
            for part in clause.lstrip(":").split(","):
                bm = BASE_NAME_RE.match(part.strip())
                if bm:
                    bases.add(
                        re.sub(r"\s", "",
                               bm.group(1)).rsplit("::", 1)[-1])
        spans.append((m.group(1), open_pos + 1, end, bases))
    return spans


def enclosingClass(spans, offset):
    best = None
    for name, start, end, _bases in spans:
        if start <= offset < end:
            if best is None or start > best[1]:
                best = (name, start, end)
    return best[0] if best else None


# Keywords that may legitimately precede a call expression; any other
# identifier directly before `name(` marks a variable declaration.
STMT_KEYWORDS = frozenset({
    "return", "co_return", "co_yield", "co_await", "throw", "new",
    "delete", "case", "goto", "else", "do", "not", "and", "or",
})


def callContext(text, name_start):
    """('bare'|'member'|'qualified', receiver-or-None) for the call
    whose callee name begins at name_start."""
    j = name_start - 1
    while j >= 0 and text[j].isspace():
        j -= 1
    if j >= 1 and text[j] == ":" and text[j - 1] == ":":
        k = j - 2
        while k >= 0 and text[k].isspace():
            k -= 1
        end = k + 1
        while k >= 0 and (text[k].isalnum() or text[k] == "_"):
            k -= 1
        recv = text[k + 1:end]
        return ("qualified", recv or None)
    via_arrow = j >= 1 and text[j] == ">" and text[j - 1] == "-"
    if not via_arrow and (text[j].isalnum() or text[j] in "_>"):
        # `Type name(args)` / `std::vector<int> v(n)`: a declaration
        # with constructor arguments, not a call — unless the
        # preceding token is a statement keyword (`return foo()`).
        k = j
        while k >= 0 and (text[k].isalnum() or text[k] == "_"):
            k -= 1
        prev_tok = text[k + 1:j + 1]
        if prev_tok not in STMT_KEYWORDS:
            return ("decl", None)
    if text[j] == "." or via_arrow:
        k = j - (2 if via_arrow else 1)
        while k >= 0 and text[k].isspace():
            k -= 1
        if k < 0 or not (text[k].isalnum() or text[k] == "_"):
            # Receiver is an expression (call result, index, cast):
            # untypable at token level, resolve by name.
            return ("member", None)
        end = k + 1
        while k >= 0 and (text[k].isalnum() or text[k] == "_"):
            k -= 1
        recv = text[k + 1:end]
        if recv and not recv[0].isdigit():
            return ("member", recv)
        return ("member", None)
    return ("bare", None)


def skipDefTail(text, pos):
    """From just past a parameter list's ')', skip qualifiers,
    annotation macros, trailing return types, and a constructor
    initializer list. Returns the offset of the body '{', or -1 if
    this is not a definition."""
    n = len(text)
    i = pos
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            return -1
        c = text[i]
        if c == "{":
            return i
        if c in ";,)=":
            return -1
        if c == ":":
            if text[i + 1:i + 2] == ":":  # stray qualified name
                return -1
            # Constructor initializer list: skip balanced (), {}
            # until the body '{' at depth 0.
            i += 1
            depth = 0
            while i < n:
                ch = text[i]
                if ch in "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                elif ch == "{":
                    if depth == 0:
                        return i
                    depth += 1
                elif ch == "}":
                    depth -= 1
                elif ch == ";":
                    if depth == 0:
                        return -1
                i += 1
            return -1
        m = re.match(r"[A-Za-z_]\w*", text[i:])
        if m:
            word = m.group(0)
            j = i + m.end()
            while j < n and text[j].isspace():
                j += 1
            if j < n and text[j] == "(" and word not in (
                    "const", "noexcept", "override", "final",
                    "mutable", "volatile"):
                # Annotation macro with arguments: REQUIRES(...),
                # TS_ASSERT(...), __attribute__((...)), noexcept(...)
                close = j
                depth = 0
                while close < n:
                    if text[close] == "(":
                        depth += 1
                    elif text[close] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    close += 1
                i = close + 1
                continue
            i += m.end()
            continue
        if c == "-" and text[i:i + 2] == "->":
            # Trailing return type: scan to '{' or ';' at depth 0.
            i += 2
            depth = 0
            while i < n:
                ch = text[i]
                if ch in "(<":
                    depth += 1
                elif ch in ")>":
                    depth -= 1
                elif ch == "{" and depth <= 0:
                    return i
                elif ch == ";" and depth <= 0:
                    return -1
                i += 1
            return -1
        return -1
    return -1


def matchParen(text, open_pos):
    """Offset of the ')' matching the '(' at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def splitTopLevel(s, angle=False):
    """Split on commas at bracket depth 0; `angle` also balances <>
    (useful for parameter lists, where angle brackets are types)."""
    parts = []
    depth = 0
    start = 0
    for i, ch in enumerate(s):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif angle and ch == "<":
            depth += 1
        elif angle and ch == ">" and s[i - 1:i] != "-":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(s[start:i])
            start = i + 1
    parts.append(s[start:])
    return parts


def removeBracketGroups(s):
    """Drop balanced [...] groups (array extents, subscripts)."""
    out = []
    depth = 0
    for ch in s:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def paramNames(params_text):
    """Best-effort parameter names from a definition's parameter
    list: last identifier of each comma-separated declarator (None
    for unnamed/`void`). Wrong-but-harmless for unnamed parameters,
    whose 'name' (the type) is never referenced in the body."""
    out = []
    stripped = params_text.strip()
    if not stripped or stripped == "void":
        return out
    for part in splitTopLevel(params_text, angle=True):
        part = removeBracketGroups(part.split("=", 1)[0])
        ids = re.findall(r"[A-Za-z_]\w*", part)
        ids = [i for i in ids if i not in ("const", "volatile",
                                           "struct", "class",
                                           "typename", "unsigned",
                                           "signed", "long", "short")]
        out.append(ids[-1] if ids else None)
    return out


def parseFunctions(src, spans):
    """Find function definitions in a stripped file. Control-flow
    keywords are filtered; the head span (for annotations) runs from
    the previous top-level terminator to the body brace."""
    text = src.text
    taken = []  # body spans already claimed, to skip nested re-finds
    for m in FUNC_NAME_RE.finditer(text):
        name = m.group(1)
        simple = re.sub(r"\s", "", name).rsplit("::", 1)[-1]
        if simple.lstrip("~") in KEYWORDS or simple in KEYWORDS:
            continue
        open_paren = m.end() - 1
        # Match the parameter list.
        depth = 0
        i = open_paren
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= len(text):
            continue
        body_open = skipDefTail(text, i + 1)
        if body_open < 0:
            continue
        body_end = matchBrace(text, body_open) - 1
        # Head: back to the nearest ; { or } before the name.
        head_start = max(text.rfind(";", 0, m.start()),
                         text.rfind("{", 0, m.start()),
                         text.rfind("}", 0, m.start())) + 1
        qual = re.sub(r"\s", "", name)
        if "::" not in qual:
            cls = enclosingClass(spans, m.start())
            if cls:
                qual = f"{cls}::{qual}"
        fn = Function(qual, src.relpath, src.lineOf(m.start()),
                      head_start, body_open + 1, body_end)
        head = text[head_start:body_open]
        fn.noalloc = NOALLOC_ATTR in head
        fn.may_alloc = MAYALLOC_ATTR in head
        fn.taint_source = "SIEVE_TAINT_SOURCE" in head
        fn.taint_sink = "SIEVE_TAINT_SINK" in head
        fn.sanitize = "SIEVE_FLOW_SANITIZE" in head
        fn.params = paramNames(text[open_paren + 1:i])
        rq = REQUIRES_HEAD_RE.search(head)
        if rq:
            fn.requires = re.sub(r"\s", "", rq.group(1))
        for ts in TSASSERT_HEAD_RE.finditer(head):
            fn.asserts_caps.append(re.sub(r"\s", "", ts.group(1)))
        taken.append((body_open + 1, body_end, fn))
        src.functions.append(fn)
    # Drop defs whose body lies inside another def's body *and* whose
    # head looks like a local construct — keep in-class methods (class
    # bodies are not function bodies). Nested function-like matches
    # inside bodies are usually lambdas assigned to named variables or
    # local structs; keeping them is harmless (they become extra
    # nodes), so no pruning is done.
    return


def scanBodies(src):
    """Populate calls/regions/disarm info for each function."""
    text = src.text
    for fn in src.functions:
        body = text[fn.body_start:fn.body_end]
        base = fn.body_start
        if DISARM_RE.search(body):
            fn.disarms = True
        for m in CALL_RE.finditer(body):
            name = m.group(1)
            if name in KEYWORDS:
                continue
            if name in CONTRACT_MACROS:
                fn.calls.append(("checkFailed", base + m.start(1),
                                 "bare", None))
                continue
            if name.isupper() and name.startswith("SIEVE_"):
                continue
            kind, recv = callContext(body, m.start(1))
            if kind == "decl":  # `Type name(args)` — not a call
                continue
            fn.calls.append((name, base + m.start(1), kind, recv))
        for m in GUARD_RE.finditer(body):
            # Region: guard statement to the end of its enclosing
            # brace scope within this body.
            pos = m.start()
            depth = 0
            end = len(body)
            for j in range(pos, len(body)):
                if body[j] == "{":
                    depth += 1
                elif body[j] == "}":
                    depth -= 1
                    if depth < 0:
                        end = j
                        break
            fn.regions.append((base + pos, base + end,
                               src.lineOf(base + pos)))


def parseGuardedFields(src, spans):
    for m in GUARDED_FIELD_RE.finditer(src.text):
        cls = enclosingClass(spans, m.start())
        cap = re.sub(r"\s", "", m.group(2))
        src.guarded_fields.append(
            (cls or "", m.group(1), cap, src.lineOf(m.start())))


def parseFlowAnnotations(src, spans, prog):
    """Register SIEVE_TAINT_SOURCE/SINK/SANITIZE sites. The macro's
    enclosing declaration is classified as a function when an
    identifier-followed-by-'(' appears before the statement ends
    (covers definitions AND bodiless virtual declarations), otherwise
    as a data member whose name is the declarator's last identifier."""
    text = src.text
    for m in FLOW_ATTR_RE.finditer(text):
        kind = FLOW_ATTR_KIND[m.group(1)]
        if src.relpath.endswith(
                os.path.join("util", "flow_annotations.hpp")):
            continue  # the macro definitions themselves
        stmt_start = max(text.rfind(";", 0, m.start()),
                         text.rfind("{", 0, m.start()),
                         text.rfind("}", 0, m.start())) + 1
        ends = [p for p in (text.find(";", m.end()),
                            text.find("{", m.end())) if p != -1]
        stmt_end = min(ends) if ends else len(text)
        cls = enclosingClass(spans, m.start())
        line = src.lineOf(m.start())
        fn_name = None
        for cm in CALL_RE.finditer(text, m.end(), stmt_end):
            cand = cm.group(1)
            if cand in KEYWORDS or cand in FLOW_ATTR_KIND:
                continue
            fn_name = cand
            break
        if fn_name is not None:
            prog.flow_fns.setdefault((cls, fn_name), set()).add(kind)
            prog.flow_fns_by_name[fn_name].add(kind)
            prog.flow_decl_site.setdefault((cls, fn_name),
                                           (src.relpath, line))
        else:
            decl = removeBracketGroups(
                text[stmt_start:stmt_end].split("=", 1)[0])
            ids = [i for i in re.findall(r"[A-Za-z_]\w*", decl)
                   if i not in FLOW_ATTR_KIND]
            if not ids or kind == "sanitize":
                continue  # sanitize is meaningful on functions only
            field = ids[-1]
            prog.taint_fields[(cls, field)] = (kind, src.relpath,
                                               line)
            prog.taint_fields_by_name[field].append((cls, kind))


def loadProgramText(root, relpaths):
    prog = Program()
    for rel in relpaths:
        with open(os.path.join(root, rel),
                  encoding="utf-8", errors="replace") as f:
            src = SourceFile(rel, f.read())
        spans = classSpans(src.text)
        parseFunctions(src, spans)
        scanBodies(src)
        parseGuardedFields(src, spans)
        parseFlowAnnotations(src, spans, prog)
        prog.sources[rel] = src
        for fn in src.functions:
            prog.add(fn)
        for (name, start, end, bases) in spans:
            prog.bases.setdefault(name, set()).update(bases)
            prog.class_spans[name].append((rel, start, end))
        for m in ALIAS_RE.finditer(src.text):
            target = re.sub(r"\s", "", m.group(2)).rsplit("::", 1)[-1]
            prog.aliases.setdefault(m.group(1), target)
    prog.finalize()
    return prog


# --------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------

def loadCompileDb(root, db_path):
    """[(abs source path, [args])] from compile_commands.json."""
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)
    out = []
    for e in entries:
        path = os.path.normpath(
            os.path.join(e.get("directory", root), e["file"]))
        args = e.get("arguments")
        if not args:
            args = e.get("command", "").split()
        # Drop the compiler, the input file, and -o/-c plumbing.
        cleaned = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", path, e["file"]):
                continue
            if a == "-o":
                skip = True
                continue
            cleaned.append(a)
        out.append((path, cleaned))
    return out


def loadProgramClang(root, relpaths, db_path):
    """Build the same Program from the libclang AST. Returns None when
    libclang or the compile db is unavailable (caller falls back)."""
    try:
        import clang.cindex as ci
        index = ci.Index.create()
    except Exception:
        return None
    try:
        units = loadCompileDb(root, db_path) if db_path else []
    except Exception:
        units = []
    if not units:
        units = [(os.path.join(root, rel),
                  ["-x", "c++", "-std=c++20",
                   "-I", os.path.join(root, "src")])
                 for rel in relpaths if rel.endswith(".cpp")]

    prog = Program()
    for rel in relpaths:
        with open(os.path.join(root, rel),
                  encoding="utf-8", errors="replace") as f:
            prog.sources[rel] = SourceFile(rel, f.read())

    seen = set()

    def relOf(cursor):
        loc = cursor.location
        if not loc.file:
            return None
        path = os.path.abspath(loc.file.name)
        if not path.startswith(root + os.sep):
            return None
        return os.path.relpath(path, root)

    fn_kinds = None

    def visit(cursor):
        for child in cursor.get_children():
            rel = relOf(child)
            if rel is None:
                continue
            if child.kind in fn_kinds and child.is_definition():
                recordFunction(child, rel)
            visit(child)

    def recordFunction(cursor, rel):
        import clang.cindex as ci
        key = (rel, cursor.location.line, cursor.spelling)
        if key in seen:
            return
        seen.add(key)
        parent = cursor.semantic_parent
        qual = cursor.spelling
        if parent is not None and parent.kind in (
                ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                ci.CursorKind.CLASS_TEMPLATE):
            qual = f"{parent.spelling}::{qual}"
        fn = Function(qual, rel, cursor.location.line, 0, 0, 1)
        fn.line_based = True
        for child in cursor.walk_preorder():
            k = child.kind
            if k == ci.CursorKind.ANNOTATE_ATTR:
                if child.spelling == "sieve-noalloc":
                    fn.noalloc = True
                elif child.spelling == "sieve-may-alloc":
                    fn.may_alloc = True
                elif FLOW_CLANG_ATTRS.get(child.spelling) == "source":
                    fn.taint_source = True
                elif FLOW_CLANG_ATTRS.get(child.spelling) == "sink":
                    fn.taint_sink = True
                elif FLOW_CLANG_ATTRS.get(child.spelling) == \
                        "sanitize":
                    fn.sanitize = True
            elif k == ci.CursorKind.CALL_EXPR:
                callee = child.referenced
                name = (callee.spelling if callee is not None
                        else child.spelling)
                if name:
                    fn.calls.append(
                        (name, child.location.line, "unknown",
                         None))
            elif k == ci.CursorKind.CXX_NEW_EXPR:
                fn.calls.append(("operator new",
                                 child.location.line, "unknown",
                                 None))
            elif k == ci.CursorKind.VAR_DECL:
                t = child.type.spelling
                if "AllocGuardDisarm" in t:
                    fn.disarms = True
                elif "AllocGuard" in t:
                    fn.regions.append(
                        (0, 1, child.location.line))
        prog.add(fn)

    try:
        import clang.cindex as ci
        fn_kinds = (ci.CursorKind.FUNCTION_DECL,
                    ci.CursorKind.CXX_METHOD,
                    ci.CursorKind.CONSTRUCTOR,
                    ci.CursorKind.DESTRUCTOR,
                    ci.CursorKind.FUNCTION_TEMPLATE)
        want = {os.path.join(root, rel) for rel in relpaths}
        for path, args in units:
            if path not in want:
                continue
            tu = index.parse(path, args=args)
            visit(tu.cursor)
    except Exception:
        return None
    if not prog.functions:
        return None
    # The clang frontend records line-level call info only; region
    # spans degrade to whole-function granularity, which is sound
    # (a superset of the armed extent).
    prog.finalize()
    return prog


# --------------------------------------------------------------------
# Reachability engine
# --------------------------------------------------------------------

class Root:
    def __init__(self, fn, label, start, end, line):
        self.fn = fn
        self.label = label
        self.start = start  # text span for region roots (token only)
        self.end = end
        self.line = line


def collectRoots(prog):
    roots = []
    for fn in prog.functions:
        for (start, end, line) in fn.regions:
            roots.append(Root(
                fn, f"{fn.qual} guard region ({fn.relpath}:{line})",
                start, end, line))
        if fn.noalloc:
            roots.append(Root(
                fn, f"{fn.qual} [SIEVE_NOALLOC] "
                    f"({fn.relpath}:{fn.line})",
                fn.body_start, fn.body_end, fn.line))
    return roots


def callsInSpan(fn, start, end):
    if fn.line_based:
        return list(fn.calls)
    return [c for c in fn.calls if start <= c[1] < end]


def scanSpanViolations(src, fn, start, end, rule):
    """Direct violations inside a text span of `fn`'s file: allocation
    tokens for no-alloc, nondeterminism tokens for determinism. The
    clang frontend reports these as calls instead, so line-based
    functions have nothing to scan here."""
    if fn.line_based:
        return []
    text = src.text[start:end]
    out = []
    if rule == "no-alloc":
        for m in NEW_RE.finditer(text):
            out.append((src.lineOf(start + m.start()),
                        "`new` expression"))
    else:
        for m in NONDET_TOKEN_RE.finditer(text):
            out.append((src.lineOf(start + m.start()),
                        m.group(0).replace(" ", "")))
    return out


_recv_type_cache = {}

# Sentinel: receiver declared with a type outside the scanned tree.
EXTERNAL_RECV = "!external"

# std templates whose operator-> forwards to the first template
# argument; a receiver of wrapper type dispatches into the pointee.
_FORWARDING_WRAPPERS = frozenset({
    "unique_ptr", "shared_ptr", "optional",
})

# Tokens the receiver-declaration regex can match that are never the
# type of a declaration (`return out;`, `auto it = ...`, `delete p;`).
_NOT_A_TYPE = frozenset({
    "return", "co_return", "co_yield", "co_await", "throw", "new",
    "delete", "case", "goto", "else", "do", "auto", "const",
    "constexpr", "static", "mutable", "inline", "typename", "using",
    "sizeof", "not", "and", "or", "if", "while", "for", "switch",
})


def receiverType(prog, fn, src, recv):
    """Declared class of `recv`, searched in the enclosing function
    first, then anywhere in the file, then — for out-of-line methods
    whose data members live in a header — in the defining class's
    body span and those of its base classes. Only names that resolve
    to a class defined in the scanned tree are accepted, so stray
    matches cannot misbind a call. A receiver whose declaration IS
    found but whose type is not a scanned class (std::ofstream,
    std::vector, ...) returns the sentinel EXTERNAL_RECV: its methods
    live outside the tree, so the call must not fan out by name —
    allocating std members are still caught textually as
    primitives."""
    key = (src.relpath, fn.key(), recv)
    if key in _recv_type_cache:
        return _recv_type_cache[key]
    # Declarator punctuation admits `*` and single `&` but not `&&`,
    # which is almost always logical-and between two expressions.
    pat = re.compile(
        r"\b((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*"
        r"(<[^;{}]*?>)?(?:\s|\*|&(?!&))+%s\b" % re.escape(recv))

    saw_external = False

    def searchSpan(text, a, b):
        nonlocal saw_external
        for m in pat.finditer(text, a, b):
            cand = re.sub(r"\s", "", m.group(1))
            if cand in _NOT_A_TYPE:
                continue
            cls = (prog.resolveClass(cand) or
                   prog.resolveClass(cand.rsplit("::", 1)[-1]))
            if cls:
                return cls
            # Pointer-like std wrappers forward `->` members to the
            # pointee: bind to the first template argument's class.
            if cand.rsplit("::", 1)[-1] in _FORWARDING_WRAPPERS \
                    and m.group(2):
                inner = m.group(2)[1:-1].split(",")[0]
                inner = re.sub(r"[\s*&]", "", inner)
                cls = (prog.resolveClass(inner) or
                       prog.resolveClass(inner.rsplit("::", 1)[-1]))
                if cls:
                    return cls
            # A plausible declaration with a type outside the tree:
            # remember it, but keep looking — a later span (e.g. the
            # member's declaration in the class body) may still bind
            # the receiver to a scanned class.
            saw_external = True
            return None
        return None

    result = (searchSpan(src.text, fn.head_start, fn.body_end) or
              searchSpan(src.text, 0, len(src.text)))
    if result is None and "::" in fn.qual:
        # Walk the owning class and its bases (inherited members).
        work = [fn.qual.rsplit("::", 1)[0]]
        visited = set()
        while work and result is None:
            cls = work.pop()
            if cls in visited:
                continue
            visited.add(cls)
            for (rel2, a, b) in prog.class_spans.get(cls, ()):
                other = prog.sources.get(rel2)
                if other is None:
                    continue
                result = searchSpan(other.text, a, b)
                if result:
                    break
            work.extend(prog.bases.get(cls, ()))
    if result is None and saw_external:
        result = EXTERNAL_RECV
    _recv_type_cache[key] = result
    return result


def resolveCall(prog, fn, src, name, kind, recv):
    """Definitions a call site may reach. Narrowing order: bare calls
    bind to the enclosing class, qualified calls to the named class,
    member calls to the receiver's declared class plus its derived
    classes (virtual dispatch). Anything unbindable falls back to
    every same-named definition."""
    if kind == "bare" and "::" in fn.qual:
        targets = prog.methodsOf(fn.qual.rsplit("::", 1)[0], name)
        if targets:
            return targets
    if kind == "qualified" and recv:
        cls = prog.resolveClass(recv)
        if cls:
            targets = prog.methodsOf(cls, name)
            if targets:
                return targets
    if kind == "member" and recv and src is not None:
        cls = receiverType(prog, fn, src, recv)
        if cls == EXTERNAL_RECV:
            return []
        if cls:
            targets = prog.methodsOf(cls, name)
            if targets:
                return targets
    return prog.by_name.get(name, [])


def primitiveFor(name, rule):
    if rule == "no-alloc":
        if name in ALLOC_PRIMITIVES or name == "operator new":
            return f"allocating primitive `{name}`"
    else:
        if name in NONDET_PRIMITIVES:
            return f"nondeterminism primitive `{name}`"
    return None


def checkReachability(prog, rule, findings, report):
    """BFS each root; a violation is a direct token in a reachable
    span or a call resolving only to a primitive of the rule."""
    roots = collectRoots(prog)
    reachable = set()
    boundaries = []
    unknown = collections.Counter()

    def visitSpan(src, fn, start, end, path, seen):
        # Direct tokens in this span.
        exempt = fn.relpath in EXEMPT_FILES
        for line, what in scanSpanViolations(src, fn, start, end,
                                             rule):
            if exempt or src.allowedSpan(line, line, rule):
                continue
            chain = " -> ".join(path)
            findings.append(Finding(
                fn.relpath, line, rule,
                f"{what} reachable from no-alloc root: {chain}"))
        # Calls in this span.
        for name, off, kind, recv in callsInSpan(fn, start, end):
            line = off if fn.line_based else src.lineOf(off)
            targets = resolveCall(prog, fn, src, name, kind, recv)
            if targets:
                for callee in targets:
                    visitFunction(callee, path, seen)
                continue
            prim = primitiveFor(name, rule)
            if prim is not None and not exempt:
                if src.allowedSpan(line, line, rule):
                    continue
                chain = " -> ".join(path)
                findings.append(Finding(
                    fn.relpath, line, rule,
                    f"{prim} reachable from no-alloc root: "
                    f"{chain}"))
            elif prim is None:
                unknown[name] += 1

    def visitFunction(fn, path, seen):
        # `seen` is shared across the whole root traversal (each
        # function is expanded once per root), so shared subgraphs
        # cost linear work instead of one visit per path.
        if fn.key() in seen:
            return
        seen.add(fn.key())
        if rule == "no-alloc":
            if fn.may_alloc:
                boundaries.append(
                    (f"{fn.qual} ({fn.relpath}:{fn.line})",
                     "SIEVE_MAY_ALLOC",
                     " -> ".join(path + [fn.qual])))
                return
            if fn.disarms:
                boundaries.append(
                    (f"{fn.qual} ({fn.relpath}:{fn.line})",
                     "AllocGuardDisarm",
                     " -> ".join(path + [fn.qual])))
                return
        reachable.add(fn.key())
        src = prog.sources.get(fn.relpath)
        if src is None or fn.body_end <= fn.body_start:
            return
        path.append(fn.qual)
        visitSpan(src, fn, fn.body_start, fn.body_end, path, seen)
        path.pop()

    for root in roots:
        src = prog.sources.get(root.fn.relpath)
        if src is None:
            continue
        seen = {root.fn.key()}
        reachable.add(root.fn.key())
        if root.end > root.start:
            visitSpan(src, root.fn, root.start, root.end,
                      [root.label], seen)

    report[rule] = {
        "roots": [r.label for r in roots],
        "reachable": len(reachable),
        "boundaries": boundaries,
        "unknown": unknown,
    }


# --------------------------------------------------------------------
# Lock discipline
# --------------------------------------------------------------------

def lockClaimers(prog):
    """cap expression -> names of TS_ASSERT(cap) assertion functions
    plus built-in holders."""
    claimers = collections.defaultdict(set)
    for fn in prog.functions:
        for cap in fn.asserts_caps:
            claimers[cap].add(fn.name)
    return claimers


def checkLockDiscipline(prog, findings):
    claimers = lockClaimers(prog)
    for rel, src in prog.sources.items():
        if not src.guarded_fields:
            continue
        for fn in src.functions:
            body = src.text[fn.body_start:fn.body_end]
            head = src.text[fn.head_start:fn.body_start]
            for (cls, field, cap, decl_line) in src.guarded_fields:
                # Only methods of the owning class (or file-local free
                # functions when the class is anonymous) can touch a
                # private field; same-file scoping keeps this sound
                # enough for the token backend.
                if cls and not fn.qual.startswith(cls + "::"):
                    continue
                pat = re.compile(r"\b%s\b" % re.escape(field))
                hits = [m for m in pat.finditer(body)]
                if not hits:
                    continue
                if fn.requires and capMatches(fn.requires, cap):
                    continue
                if cap in fn.asserts_caps or any(
                        capMatches(a, cap) for a in fn.asserts_caps):
                    continue
                if holdsCapability(body, cap, claimers):
                    continue
                line = src.lineOf(fn.body_start + hits[0].start())
                if src.allowedSpan(line, line, "lock-discipline"):
                    continue
                findings.append(Finding(
                    rel, line, "lock-discipline",
                    f"{fn.qual} touches {cls or '<file>'}::{field} "
                    f"(GUARDED_BY({cap}), declared line {decl_line}) "
                    f"without holding `{cap}`: add REQUIRES({cap}), "
                    f"take a MutexLock over it, or call its "
                    f"TS_ASSERT claimer first"))


def capMatches(held, cap):
    """Loose capability-expression match: `mu` vs `mu`, tolerant of
    member sigils (this->mu, producer_role_)."""
    norm = lambda s: s.replace("this->", "").strip("&* ")
    return norm(held) == norm(cap)


def holdsCapability(body, cap, claimers):
    base = cap.replace("this->", "").strip("&* ")
    if re.search(r"\bMutexLock\s+\w+\s*\(\s*(?:this\s*->\s*)?%s\s*\)"
                 % re.escape(base), body):
        return True
    if re.search(r"\b%s\s*\.\s*lock\s*\(" % re.escape(base), body):
        return True
    for held_cap, names in claimers.items():
        if not capMatches(held_cap, cap):
            continue
        for name in names:
            if re.search(r"\b%s\s*\(" % re.escape(name), body):
                return True
    return False


# --------------------------------------------------------------------
# Stale SIEVE_MAY_ALLOC
# --------------------------------------------------------------------

def allocationReachable(prog, fn, seen):
    """True if an allocation token, allocating primitive, or
    allocating local-container declaration is reachable from `fn`
    (transitively, ignoring boundaries — any allocation anywhere
    below justifies the MAY_ALLOC)."""
    if fn.key() in seen:
        return False
    seen.add(fn.key())
    src = prog.sources.get(fn.relpath)
    if src is not None and not fn.line_based and \
            fn.body_end > fn.body_start:
        body = src.text[fn.body_start:fn.body_end]
        if NEW_RE.search(body) or ALLOC_DECL_RE.search(body):
            return True
    for (name, _off, kind, recv) in fn.calls:
        if name == "operator new" or name in ALLOC_PRIMITIVES:
            # Primitive names double as container methods; whether
            # resolved in-tree or not, the name itself is evidence
            # enough for "the annotation is not stale".
            return True
        targets = resolveCall(prog, fn, src, name, kind, recv)
        for t in targets:
            if allocationReachable(prog, t, seen):
                return True
    return False


def checkStaleMayAlloc(prog, findings):
    for fn in prog.functions:
        if not fn.may_alloc:
            continue
        if allocationReachable(prog, fn, set()):
            continue
        src = prog.sources.get(fn.relpath)
        if src is not None and src.allowedSpan(fn.line, fn.line,
                                               "stale-may-alloc"):
            continue
        findings.append(Finding(
            fn.relpath, fn.line, "stale-may-alloc",
            f"SIEVE_MAY_ALLOC on {fn.qual} is stale: no allocation "
            f"is reachable from it on any visible path — remove the "
            f"annotation so the no-alloc proof covers this function "
            f"again"))


# --------------------------------------------------------------------
# sieve-flow: interprocedural taint engine
# --------------------------------------------------------------------
#
# Forward dataflow over the token program. Facts are
#   ("C", origin, steps)  concrete taint born at `origin`
#   ("P", idx, steps)     data derived from parameter `idx`
# kept per local variable as {(kind, id): steps} dicts (first write
# wins, so provenance stays the shortest path seen). Per-function
# FlowSummaries (returns, param->return, param->sink, param->field)
# and a global member-field taint map are iterated to a fixpoint;
# every map only grows, so termination is structural.

CHAIN_RE = re.compile(
    r"[A-Za-z_]\w*(?:\s*(?:->|\.)\s*[A-Za-z_]\w*)*")


class FlowSummary:
    def __init__(self):
        self.ret = {}            # ("C", origin) -> steps
        self.ret_params = {}     # param idx -> steps
        self.param_sinks = {}    # param idx -> {sink label: steps}
        self.param_fields = {}   # param idx -> {(cls, field): steps}

    def shape(self):
        return (frozenset(self.ret),
                frozenset(self.ret_params),
                frozenset((i, lbl) for i, d in self.param_sinks.items()
                          for lbl in d),
                frozenset((i, k) for i, d in self.param_fields.items()
                          for k in d))


class FlowContext:
    def __init__(self, prog):
        self.prog = prog
        self.summaries = {}       # fn.key() -> FlowSummary
        self.field_taints = {}    # (cls|None, field) -> facts dict
        self.findings = []
        self.boundaries = set()   # sanitizer absorption records
        self.deliberate = set()   # tainted writes into source fields
        self.unknown = collections.Counter()
        self.source_labels = set()
        self.sink_labels = set()

    def fieldTaintShape(self):
        return frozenset((k, fk) for k, d in self.field_taints.items()
                         for fk in d)

    def shape(self):
        return (frozenset((k, s.shape())
                          for k, s in self.summaries.items()),
                self.fieldTaintShape())

    def beginIteration(self):
        self.findings = []
        self.boundaries = set()
        self.deliberate = set()
        self.unknown = collections.Counter()


def mergeFact(facts, kind, ident, steps):
    key = (kind, ident)
    if key not in facts:
        facts[key] = tuple(steps)[:FLOW_MAX_STEPS]


def enclosingClassOf(fn):
    return fn.qual.rsplit("::", 1)[0] if "::" in fn.qual else None


def iterStatements(body):
    start = 0
    for i, ch in enumerate(body):
        if ch in ";{}":
            if body[start:i].strip():
                yield start, body[start:i]
            start = i + 1
    if body[start:].strip():
        yield start, body[start:]


def splitTopLevelSpans(s):
    """[(start, end)] argument spans of a paren-free split on
    top-level commas."""
    spans = []
    depth = 0
    start = 0
    for i, ch in enumerate(s):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            spans.append((start, i))
            start = i + 1
    spans.append((start, len(s)))
    return spans


def findAssign(stmt):
    """(lhs_end, rhs_start) of the first top-level assignment, or
    None. Handles compound ops and skips comparisons."""
    if "operator" in stmt:
        return None
    depth = 0
    i = 0
    n = len(stmt)
    while i < n:
        ch = stmt[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "=" and depth == 0:
            if i + 1 < n and stmt[i + 1] == "=":
                i += 2
                continue
            prev = stmt[i - 1] if i else ""
            prev2 = stmt[i - 2] if i > 1 else ""
            if prev == "!":
                i += 1
                continue
            if prev in "<>":
                if prev2 == prev:  # <<= / >>=
                    return (i - 2, i + 1)
                i += 1
                continue
            if prev in "+-*/%&|^":
                return (i - 1, i + 1)
            return (i, i + 1)
        i += 1
    return None


def fieldInfo(prog, cls, field):
    """Annotation kind of Class::field searched through the base
    closure, with a unique-by-name fallback for receivers the token
    frontend cannot type. Returns (kind|None, owner, relpath, line)."""
    for c in (prog.classClosure(cls) if cls else []):
        entry = prog.taint_fields.get((c, field))
        if entry:
            return (entry[0], c, entry[1], entry[2])
    entry = prog.taint_fields.get((None, field))
    if entry:
        return (entry[0], None, entry[1], entry[2])
    if cls is None:
        by_name = prog.taint_fields_by_name.get(field, ())
        if len(by_name) == 1:
            owner = by_name[0][0]
            entry = prog.taint_fields[(owner, field)]
            return (entry[0], owner, entry[1], entry[2])
    return (None, None, None, None)


def fieldTaintFacts(ctx, cls, field):
    """Recorded taint of Class::field (base-closure plus by-name
    fallback for untypable receivers)."""
    out = {}
    keys = [(c, field) for c in
            (ctx.prog.classClosure(cls) if cls else [])]
    keys.append((None, field))
    if cls is None:
        owners = [k for k in ctx.field_taints
                  if k[1] == field and k[0] is not None]
        if len(owners) == 1:
            keys.append(owners[0])
    for k in keys:
        for fk, steps in ctx.field_taints.get(k, {}).items():
            mergeFact(out, fk[0], fk[1], steps)
    return out


def receiverClass(ctx, fn, src, base):
    """Class of `base` for field lookups; EXTERNAL_RECV maps to a
    distinct sentinel so std containers never hit name fallbacks."""
    if base == "this":
        return enclosingClassOf(fn)
    cls = receiverType(ctx.prog, fn, src, base)
    if cls == EXTERNAL_RECV:
        return EXTERNAL_RECV
    return cls


def inMasked(pos, masked):
    return any(a <= pos < b for a, b in masked)


def exprFacts(ctx, fn, src, stmt, lo, hi, stmt_abs, locals_,
              call_results, masked=()):
    """Taint facts of the expression in stmt[lo:hi]: built-in source
    tokens, tainted locals (a chain's base local taints the whole
    chain), annotated/tainted member fields, and the results of calls
    already evaluated for this statement. `masked` spans (the inside
    of sanitize calls) are invisible — their taint was absorbed."""
    facts = {}
    for m in FLOW_TOKEN_RE.finditer(stmt, lo, hi):
        if inMasked(m.start(), masked):
            continue
        line = src.lineOf(stmt_abs + m.start())
        origin = (f"wall-clock/entropy `"
                  f"{re.sub(chr(32), '', m.group(0))}` "
                  f"({fn.relpath}:{line})")
        mergeFact(facts, "C", origin, ())
    for pos, res in call_results.items():
        if lo <= pos < hi and not inMasked(pos, masked):
            for (k, i2), steps in res.items():
                mergeFact(facts, k, i2, steps)
    for m in CHAIN_RE.finditer(stmt, lo, hi):
        if inMasked(m.start(), masked):
            continue
        prev = stmt[m.start() - 1] if m.start() else ""
        if prev == "." or (prev == ">" and
                           stmt[m.start() - 2:m.start()] == "->"):
            continue  # mid-chain fragment of an earlier match
        after = m.end()
        while after < len(stmt) and stmt[after].isspace():
            after += 1
        parts = re.findall(r"[A-Za-z_]\w*", m.group(0))
        base = parts[0]
        if base in KEYWORDS or base in STMT_KEYWORDS or base == "std":
            continue
        if after < len(stmt) and stmt[after] == "(":
            continue  # a call; flowCalls evaluated it
        if base in locals_:
            for (k, i2), steps in locals_[base].items():
                mergeFact(facts, k, i2, steps)
        if len(parts) > 1:
            cls = receiverClass(ctx, fn, src, base)
            if cls != EXTERNAL_RECV:
                mergeFieldRead(ctx, facts, cls, parts[-1])
        elif base not in locals_:
            cls = enclosingClassOf(fn)
            mergeFieldRead(ctx, facts, cls, base)
    return facts


def mergeFieldRead(ctx, facts, cls, field):
    kind, owner, rel, line = fieldInfo(ctx.prog, cls, field)
    if kind == "source":
        disp = f"{owner}::{field}" if owner else field
        origin = (f"measured field `{disp}` [SIEVE_TAINT_SOURCE] "
                  f"({rel}:{line})")
        mergeFact(facts, "C", origin, ())
    for (k, i2), steps in fieldTaintFacts(ctx, cls, field).items():
        mergeFact(facts, k, i2, steps)


def flowFinding(ctx, fn, src, line, origin, steps, sink_label):
    if src.allowedSpan(line, line, FLOW_RULE):
        return
    chain = " -> ".join(list(steps) + [sink_label])
    ctx.findings.append(Finding(
        fn.relpath, line, FLOW_RULE,
        f"measured/nondeterministic data reaches a decision sink: "
        f"{origin} -> {chain}"))


def fieldWrite(ctx, fn, src, summary, line, cls, field, rhs_facts,
               snippet):
    """A tainted value assigned into Class::field: finding if the
    field is a sink, deliberate-flow record if it is a source (the
    lintable measured->report columns), otherwise a recorded member
    taint that future reads pick up."""
    kind, owner, drel, dline = fieldInfo(ctx.prog, cls, field)
    disp = f"{owner or cls or '?'}::{field}"
    step = f"{fn.relpath}:{line}: {snippet}"
    if kind == "sink":
        label = (f"model-side field `{disp}` [SIEVE_TAINT_SINK] "
                 f"(declared {drel}:{dline})")
        for (k, i2), steps in rhs_facts.items():
            if k == "C":
                flowFinding(ctx, fn, src, line, i2,
                            list(steps) + [step], label)
            else:
                summary.param_sinks.setdefault(i2, {}).setdefault(
                    label, tuple(steps) + (step,))
        return
    if kind == "source":
        for (k, i2), steps in rhs_facts.items():
            if k == "C":
                chain = " -> ".join(list(steps) + [step])
                ctx.deliberate.add(
                    f"{i2} -> {chain} -> measured column `{disp}`")
        return
    key = (owner or cls, field)
    dest = ctx.field_taints.setdefault(key, {})
    for (k, i2), steps in rhs_facts.items():
        if k == "C":
            mergeFact(dest, k, i2, tuple(steps) + (step,))
        else:
            summary.param_fields.setdefault(i2, {}).setdefault(
                key, tuple(steps) + (step,))
    if not dest:
        del ctx.field_taints[key]


def flowCallKinds(ctx, fn, src, name, kind, recv, targets):
    """Annotation kinds attached to a call: from resolved target
    definitions, from the declaration registry keyed by receiver /
    enclosing class (covers pure-virtual decls), with a bare-call
    name fallback."""
    kinds = set()
    for t in targets:
        if t.sanitize:
            kinds.add("sanitize")
        if t.taint_source:
            kinds.add("source")
        if t.taint_sink:
            kinds.add("sink")
    cls = None
    external = False
    if kind == "member" and recv:
        cls = receiverClass(ctx, fn, src, recv)
        external = cls == EXTERNAL_RECV
    elif kind == "qualified" and recv:
        cls = ctx.prog.resolveClass(recv)
    elif kind in ("bare", "member"):
        cls = enclosingClassOf(fn)
    if not external:
        probe = (ctx.prog.classClosure(cls) if cls and
                 cls != EXTERNAL_RECV else [])
        for c in probe + [None]:
            kinds |= ctx.prog.flow_fns.get((c, name), set())
        if not kinds and not targets and kind != "member":
            kinds |= ctx.prog.flow_fns_by_name.get(name, set())
        # Virtual dispatch: a target class's base may carry the
        # contract even when the receiver resolved to the derived.
        if not kinds:
            for t in targets:
                tcls = enclosingClassOf(t)
                for c in (ctx.prog.classClosure(tcls)
                          if tcls else []):
                    kinds |= ctx.prog.flow_fns.get((c, name), set())
    return kinds, cls


def builtinSource(name):
    return name in FLOW_SOURCE_CALLS or \
        any(name.startswith(p) for p in FLOW_SOURCE_PREFIXES)


def flowCalls(ctx, fn, src, stmt, stmt_abs, locals_, summary):
    """Evaluate every call in the statement innermost-first:
    sink-argument checks, source result/out-param tainting, sanitizer
    absorption, and summary application for in-tree callees. Returns
    ({callee-name offset: result facts}, sanitized spans) for
    expression evaluation."""
    call_results = {}
    masked = []
    matches = list(CALL_RE.finditer(stmt))
    for m in sorted(matches, key=lambda mm: -mm.start(1)):
        name = m.group(1)
        if name in KEYWORDS or name in CONTRACT_MACROS or \
                name in FLOW_ATTR_KIND or \
                (name.isupper() and name.startswith("SIEVE_")):
            continue
        kind, recv = callContext(stmt, m.start(1))
        if kind == "decl":
            continue
        open_p = m.end() - 1
        close = matchParen(stmt, open_p)
        if close < 0:
            close = len(stmt)
        arg_area = stmt[open_p + 1:close]
        arg_facts = []
        arg_texts = []
        if arg_area.strip():
            for (a, b) in splitTopLevelSpans(arg_area):
                lo = open_p + 1 + a
                hi = open_p + 1 + b
                arg_texts.append(stmt[lo:hi])
                arg_facts.append(exprFacts(
                    ctx, fn, src, stmt, lo, hi, stmt_abs, locals_,
                    call_results, masked))
        line = src.lineOf(stmt_abs + m.start(1))
        targets = resolveCall(ctx.prog, fn, src, name, kind, recv)
        kinds, rcls = flowCallKinds(ctx, fn, src, name, kind, recv,
                                    targets)
        result = {}
        if "sanitize" in kinds:
            disp = targets[0].qual if targets else \
                (f"{rcls}::{name}" if rcls and rcls != EXTERNAL_RECV
                 else name)
            for af in arg_facts:
                for (k, i2), steps in af.items():
                    if k == "C":
                        ctx.boundaries.add(
                            f"{disp} ({fn.relpath}:{line}) "
                            f"[SIEVE_FLOW_SANITIZE] absorbed: {i2}")
            # The absorbed span becomes invisible to every later
            # reader of this statement (outer calls, the assignment
            # RHS): the sanitizer's result is clean by definition.
            masked.append((m.start(1), close + 1))
        elif "source" in kinds or (not targets and
                                   builtinSource(name)):
            if "source" in kinds:
                disp = targets[0].qual if targets else \
                    (f"{rcls}::{name}" if rcls and
                     rcls != EXTERNAL_RECV else name)
                origin = (f"measured source `{disp}(...)` "
                          f"[SIEVE_TAINT_SOURCE] called at "
                          f"{fn.relpath}:{line}")
            else:
                origin = (f"primitive source `{name}(...)` "
                          f"({fn.relpath}:{line})")
            ctx.source_labels.add(origin.split(" called at")[0])
            mergeFact(result, "C", origin, ())
            # Writable arguments (latency out-param spans) become
            # tainted — known locals only. A member buffer filled by
            # a source must carry its own SIEVE_TAINT_SOURCE field
            # annotation (Appliance::stage_lat_ does): tainting every
            # argument identifier of the enclosing class would smear
            # const inputs and count members with measured taint.
            for at in arg_texts:
                for ident in re.findall(r"[A-Za-z_]\w*", at):
                    if ident in KEYWORDS or \
                            ident in FLOW_OUTPARAM_SKIP or \
                            ident in ctx.prog.class_spans or \
                            ident in ctx.prog.by_name:
                        continue
                    if ident in locals_:
                        mergeFact(locals_[ident], "C", origin, ())
        elif "sink" in kinds:
            disp = targets[0].qual if targets else \
                (f"{rcls}::{name}" if rcls and rcls != EXTERNAL_RECV
                 else name)
            label = f"sink `{disp}(...)` [SIEVE_TAINT_SINK]"
            ctx.sink_labels.add(label)
            for ai, af in enumerate(arg_facts):
                step = (f"{fn.relpath}:{line}: argument {ai + 1} of "
                        f"{disp}(...)")
                for (k, i2), steps in af.items():
                    if k == "C":
                        flowFinding(ctx, fn, src, line, i2,
                                    list(steps) + [step], label)
                    else:
                        summary.param_sinks.setdefault(
                            i2, {}).setdefault(
                                label, tuple(steps) + (step,))
        elif targets:
            for t in targets:
                ts = ctx.summaries.get(t.key())
                if ts is None:
                    continue
                call_step = f"{fn.relpath}:{line}: call to {t.qual}"
                for (_k, origin), steps in ts.ret.items():
                    mergeFact(result, "C", origin,
                              tuple(steps) + (call_step,))
                for idx, rsteps in ts.ret_params.items():
                    if idx < len(arg_facts):
                        for (k, i2), s in arg_facts[idx].items():
                            mergeFact(result, k, i2,
                                      tuple(s) + (call_step,) +
                                      tuple(rsteps))
                for idx, sinks in ts.param_sinks.items():
                    if idx >= len(arg_facts):
                        continue
                    for label, ssteps in sinks.items():
                        for (k, i2), s in arg_facts[idx].items():
                            full = tuple(s) + (call_step,) + \
                                tuple(ssteps)
                            if k == "C":
                                flowFinding(ctx, fn, src, line, i2,
                                            list(full), label)
                            else:
                                summary.param_sinks.setdefault(
                                    i2, {}).setdefault(label, full)
                for idx, fields in ts.param_fields.items():
                    if idx >= len(arg_facts):
                        continue
                    for fkey, fsteps in fields.items():
                        for (k, i2), s in arg_facts[idx].items():
                            full = tuple(s) + (call_step,) + \
                                tuple(fsteps)
                            if k == "C":
                                dest = ctx.field_taints.setdefault(
                                    fkey, {})
                                mergeFact(dest, "C", i2, full)
                            else:
                                summary.param_fields.setdefault(
                                    i2, {}).setdefault(fkey, full)
        else:
            ctx.unknown[name] += 1
        call_results[m.start(1)] = result
    return call_results, masked


def processStatement(ctx, fn, src, summary, stmt, stmt_abs, locals_):
    call_results, masked = flowCalls(ctx, fn, src, stmt, stmt_abs,
                                     locals_, summary)
    lstripped = stmt.lstrip()
    if lstripped.startswith("return"):
        facts = exprFacts(ctx, fn, src, stmt, 0, len(stmt), stmt_abs,
                          locals_, call_results, masked)
        for (k, i2), steps in facts.items():
            if k == "C":
                mergeFact(summary.ret, "C", i2, steps)
            elif i2 not in summary.ret_params:
                summary.ret_params[i2] = tuple(steps)
        return
    asn = findAssign(stmt)
    if asn is None:
        return
    lhs_end, rhs_start = asn
    rhs_facts = exprFacts(ctx, fn, src, stmt, rhs_start, len(stmt),
                          stmt_abs, locals_, call_results, masked)
    if not rhs_facts:
        return
    lhs_clean = removeBracketGroups(stmt[:lhs_end])
    lm = re.search(
        r"([A-Za-z_]\w*)((?:\s*(?:->|\.)\s*[A-Za-z_]\w*)*)\s*$",
        lhs_clean)
    if lm is None:
        return
    base = lm.group(1)
    fields = re.findall(r"[A-Za-z_]\w*", lm.group(2))
    line = src.lineOf(stmt_abs + lhs_end)
    snippet = re.sub(r"\s+", " ", stmt.strip())[:48]
    if fields:
        cls = receiverClass(ctx, fn, src, base)
        if cls == EXTERNAL_RECV:
            return
        fieldWrite(ctx, fn, src, summary, line, cls, fields[-1],
                   rhs_facts, snippet)
        return
    is_decl = len(re.findall(r"[A-Za-z_]\w*", lhs_clean)) > 1
    if base in locals_ or is_decl or "::" not in fn.qual:
        dest = locals_.setdefault(base, {})
        step = f"{fn.relpath}:{line}: {snippet}"
        for (k, i2), steps in rhs_facts.items():
            mergeFact(dest, k, i2, tuple(steps) + (step,))
    else:
        fieldWrite(ctx, fn, src, summary, line, enclosingClassOf(fn),
                   base, rhs_facts, snippet)


def analyzeFlowFunction(ctx, fn):
    if fn.line_based or fn.sanitize:
        return
    src = ctx.prog.sources.get(fn.relpath)
    if src is None or fn.body_end <= fn.body_start:
        return
    summary = ctx.summaries.setdefault(fn.key(), FlowSummary())
    locals_ = {}
    for idx, p in enumerate(fn.params):
        if p:
            locals_[p] = {("P", idx): ()}
    body = src.text[fn.body_start:fn.body_end]
    # Register paren-depth and initializer-less declarations up front
    # so loop variables, catch clauses, lambda params, and local
    # arrays resolve as (clean) locals rather than member fields.
    for dm in FLOW_DECL_SCAN_RE.finditer(body):
        if dm.group(1) in FLOW_DECL_SKIP or dm.group(1) in KEYWORDS:
            continue
        name = dm.group(2)
        if name not in FLOW_DECL_SKIP and name not in KEYWORDS:
            locals_.setdefault(name, {})
    for bm in FLOW_BINDING_RE.finditer(body):
        for name in re.findall(r"[A-Za-z_]\w*", bm.group(1)):
            locals_.setdefault(name, {})
    # Two sweeps per fixpoint round so loop-carried locals converge.
    for _sweep in range(2):
        for off, stmt in iterStatements(body):
            processStatement(ctx, fn, src, summary, stmt,
                             fn.body_start + off, locals_)


def checkTaintFlow(prog, findings, report):
    ctx = FlowContext(prog)
    for (cls, name), kinds in sorted(
            prog.flow_fns.items(),
            key=lambda kv: (str(kv[0][0]), kv[0][1])):
        disp = f"{cls}::{name}" if cls else name
        rel, line = prog.flow_decl_site.get((cls, name), ("?", 0))
        if "source" in kinds:
            ctx.source_labels.add(f"`{disp}` ({rel}:{line})")
        if "sink" in kinds:
            ctx.sink_labels.add(f"`{disp}` ({rel}:{line})")
    for (cls, field), (kind, rel, line) in prog.taint_fields.items():
        disp = f"{cls}::{field}" if cls else field
        if kind == "source":
            ctx.source_labels.add(f"field `{disp}` ({rel}:{line})")
        else:
            ctx.sink_labels.add(f"field `{disp}` ({rel}:{line})")
    iterations = 0
    prev = None
    for iterations in range(1, 21):
        ctx.beginIteration()
        for fn in prog.functions:
            analyzeFlowFunction(ctx, fn)
        shape = ctx.shape()
        if shape == prev:
            break
        prev = shape
    uniq = {}
    for f in ctx.findings:
        uniq.setdefault((f.path, f.line, f.rule), f)
    findings.extend(uniq.values())
    report[FLOW_RULE] = {
        "sources": sorted(ctx.source_labels),
        "sinks": sorted(ctx.sink_labels),
        "boundaries": sorted(ctx.boundaries),
        "deliberate": sorted(ctx.deliberate),
        "unknown": ctx.unknown,
        "iterations": iterations,
        "functions": sum(1 for fn in prog.functions
                         if not fn.line_based),
    }


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def collectCppFiles(root, dirs):
    out = []
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if os.path.splitext(name)[1] in (".hpp", ".cpp"):
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, root))
    return sorted(out)


def runAnalyze(root, relpaths, backend, db_path, report):
    prog = None
    used = "text"
    if backend in ("clang", "auto"):
        prog = loadProgramClang(root, relpaths, db_path)
        if prog is not None:
            used = "clang"
        elif backend == "clang":
            print("sieve-analyze: clang backend unavailable "
                  "(python3-clang not importable or parse failed)",
                  file=sys.stderr)
            return None, used
    if prog is None:
        prog = loadProgramText(root, relpaths)
    findings = []
    checkReachability(prog, "no-alloc", findings, report)
    checkReachability(prog, "determinism", findings, report)
    checkLockDiscipline(prog, findings)
    checkStaleMayAlloc(prog, findings)
    # Name-based resolution visits every same-named overload, so the
    # same defect can be reported once per path; dedupe on location.
    uniq = {}
    for f in findings:
        uniq.setdefault((f.path, f.line, f.rule), f)
    return list(uniq.values()), used


def runFlow(root, relpaths, backend, db_path, report):
    """sieve-flow driver. The dataflow engine needs statement-level
    text spans, so it always runs on the token program; the clang
    backend contributes AST-verified annotation facts (the annotate
    attributes libclang parses from util/flow_annotations.hpp),
    overlaid onto the token program by (file, qualified name). When
    --backend clang is forced and libclang is absent this hard-fails,
    matching runAnalyze."""
    prog = loadProgramText(root, relpaths)
    used = "text"
    if backend in ("clang", "auto"):
        cprog = loadProgramClang(root, relpaths, db_path)
        if cprog is not None:
            used = "clang"
            flagged = {}
            for fn in cprog.functions:
                if fn.taint_source or fn.taint_sink or fn.sanitize:
                    flagged[(fn.relpath, fn.qual)] = fn
            for fn in prog.functions:
                c = flagged.get((fn.relpath, fn.qual))
                if c is not None:
                    fn.taint_source |= c.taint_source
                    fn.taint_sink |= c.taint_sink
                    fn.sanitize |= c.sanitize
        elif backend == "clang":
            print("sieve-analyze: clang backend unavailable "
                  "(python3-clang not importable or parse failed)",
                  file=sys.stderr)
            return None, used
    findings = []
    checkTaintFlow(prog, findings, report)
    return findings, used


def printReport(report, used):
    print(f"sieve-analyze report (backend: {used})")
    for rule in ("no-alloc", "determinism"):
        info = report.get(rule)
        if not info:
            continue
        print(f"  [{rule}] {len(info['roots'])} roots, "
              f"{info['reachable']} reachable functions, "
              f"{len(info['boundaries'])} boundaries")
        for label in info["roots"]:
            print(f"    root: {label}")
        for (where, why, path) in info["boundaries"]:
            print(f"    boundary [{why}]: {path}")
        if info["unknown"]:
            top = info["unknown"].most_common(8)
            names = ", ".join(f"{n}({c})" for n, c in top)
            print(f"    unresolved (assumed clean): "
                  f"{sum(info['unknown'].values())} call sites "
                  f"across {len(info['unknown'])} names; top: "
                  f"{names}")
    info = report.get(FLOW_RULE)
    if info:
        print(f"  [{FLOW_RULE}] {len(info['sources'])} sources, "
              f"{len(info['sinks'])} sinks, "
              f"{info['functions']} functions, fixpoint in "
              f"{info['iterations']} iteration(s)")
        for label in info["sources"]:
            print(f"    source: {label}")
        for label in info["sinks"]:
            print(f"    sink: {label}")
        for b in info["boundaries"]:
            print(f"    boundary [SIEVE_FLOW_SANITIZE]: {b}")
        for d in info["deliberate"]:
            print(f"    deliberate measured->report flow: {d}")
        if info["unknown"]:
            top = info["unknown"].most_common(8)
            names = ", ".join(f"{n}({c})" for n, c in top)
            print(f"    unresolved (assumed clean): "
                  f"{sum(info['unknown'].values())} call sites "
                  f"across {len(info['unknown'])} names; top: "
                  f"{names}")


def selfTest(root, backend, db_path):
    """Fixture check for BOTH engines: the standard rules run on
    scripts/lint_fixtures/analyze/ (minus the flow/ subdirectory) and
    sieve-flow runs on analyze/flow/; every `// analyze-expect`
    marker must be reproduced exactly, nothing else."""
    relpaths = collectCppFiles(root, (FIXTURE_DIR,))
    if not relpaths:
        print(f"sieve-analyze: no fixtures under "
              f"{os.path.join(root, FIXTURE_DIR)}", file=sys.stderr)
        return 1
    flow_marker = os.sep + "flow" + os.sep
    std_rel = [r for r in relpaths if flow_marker not in r]
    flow_rel = [r for r in relpaths if flow_marker in r]
    report = {}
    findings, used = runAnalyze(root, std_rel, backend, db_path,
                                report)
    if findings is None:
        return 1
    if flow_rel:
        flow_findings, _fused = runFlow(root, flow_rel, backend,
                                        db_path, report)
        if flow_findings is None:
            return 1
        findings = findings + flow_findings
    expected = []
    for rel in relpaths:
        with open(os.path.join(root, rel),
                  encoding="utf-8", errors="replace") as f:
            for m in EXPECT_RE.finditer(f.read()):
                expected.append((rel, m.group(1)))
    got = [(f.path, f.rule) for f in findings]
    if sorted(expected) != sorted(got):
        print("sieve-analyze self-test FAILED", file=sys.stderr)
        print(f"  expected: {sorted(expected)}", file=sys.stderr)
        print(f"  got:      {sorted(got)}", file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    # Every reported path must actually name a call chain, not just a
    # location — the acceptance bar is "fails with a reported path".
    # lock-discipline and stale-may-alloc findings are single-site
    # facts with no chain to print.
    for f in findings:
        if "->" not in f.message and f.rule not in (
                "lock-discipline", "stale-may-alloc"):
            print("sieve-analyze self-test FAILED: finding without "
                  f"a call path: {f}", file=sys.stderr)
            return 1
    print(f"sieve-analyze self-test OK ({len(relpaths)} fixtures, "
          f"{len(expected)} expected findings reproduced, "
          f"backend: {used})")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="SieveStore call-graph hot-path analyzer")
    parser.add_argument("--root", default=REPO,
                        help="repository root (default: inferred)")
    parser.add_argument("--backend",
                        choices=("text", "clang", "auto"),
                        default="text",
                        help="program-model frontend")
    parser.add_argument("--compile-db", default=None,
                        help="compile_commands.json for the clang "
                             "backend (default: build/ if present)")
    parser.add_argument("--report", action="store_true",
                        help="print roots/boundaries/trust-base "
                             "summary")
    parser.add_argument("--flow", action="store_true",
                        help="run sieve-flow (the taint-flow rule) "
                             "instead of the reachability rules")
    parser.add_argument("--sarif", default=None, metavar="OUT",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--self-test", action="store_true",
                        help="run against scripts/lint_fixtures/"
                             "analyze/")
    parser.add_argument("paths", nargs="*",
                        help="files to analyze (default: src/)")
    opts = parser.parse_args()

    db_path = opts.compile_db
    if db_path is None:
        candidate = os.path.join(opts.root, "build",
                                 "compile_commands.json")
        if os.path.isfile(candidate):
            db_path = candidate

    if opts.self_test:
        return selfTest(opts.root, opts.backend, db_path)

    if opts.paths:
        relpaths = [os.path.relpath(os.path.abspath(p), opts.root)
                    for p in opts.paths]
    else:
        relpaths = collectCppFiles(opts.root, SCAN_DIRS)

    report = {}
    run = runFlow if opts.flow else runAnalyze
    findings, used = run(opts.root, relpaths, opts.backend,
                         db_path, report)
    if findings is None:
        return 1
    if opts.report:
        printReport(report, used)
    if opts.sarif:
        from sieve_lint import writeSarif
        writeSarif(opts.sarif,
                   "sieve-flow" if opts.flow else "sieve-analyze",
                   RULES,
                   [(f.path, f.line, f.rule, f.message)
                    for f in findings])
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f)
    what = "sieve-flow" if opts.flow else "sieve-analyze"
    if findings:
        print(f"{what}: {len(findings)} finding(s) in "
              f"{len(relpaths)} files", file=sys.stderr)
        return 1
    print(f"{what}: all claims proven "
          f"({len(relpaths)} files, backend: {used})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
