#!/usr/bin/env python3
"""sieve-analyze: call-graph static analyzer for SieveStore hot paths.

sieve-lint (scripts/sieve_lint.py) checks conventions line by line;
this tool checks *reachability* claims that need a call graph. It
parses every C++ file under src/, extracts function definitions and
their call sites, and proves three project claims statically:

  no-alloc         Every function transitively reachable from a
                   no-alloc root is allocation-free. Roots are (a) the
                   dynamic extent of every armed SIEVE_ASSERT_NO_ALLOC
                   / _WHEN region (util/alloc_guard.hpp) — from the
                   guard statement to the end of its enclosing brace
                   scope — and (b) functions annotated SIEVE_NOALLOC
                   (util/check.hpp). Allocation is `new`, an allocating
                   libc/C++ primitive (malloc, make_unique, ...), or a
                   growing container method (push_back, resize, ...).
                   Traversal stops, and the stop is *reported*, at
                   functions annotated SIEVE_MAY_ALLOC and at functions
                   that construct util::AllocGuardDisarm — the runtime
                   guard is disarmed over their dynamic extent, so the
                   static claim delegates to the reviewed escape hatch.
  determinism      The same roots must not reach a nondeterminism
                   primitive (rand/srand, std::random_device, wall
                   clocks, time(NULL)). sieve-lint already bans these
                   per line across the whole tree; the graph version
                   closes the "hot region calls a helper whose ban was
                   suppressed" hole and attributes each hit to the
                   hot-path root that reaches it.
  lock-discipline  Members annotated GUARDED_BY(cap) (via
                   util/thread_annotations.hpp) may be touched only by
                   functions that hold `cap`: a REQUIRES(cap) on the
                   function, a scoped MutexLock over cap in the body, a
                   direct cap.lock(), or a call to a TS_ASSERT(cap)
                   role-assertion function. This re-checks, with no
                   toolchain dependency, the discipline Clang enforces
                   under -Wthread-safety (GCC compiles the annotations
                   to nothing, so GCC-only hosts would otherwise have
                   no checker at all).

Backends: the default 'text' backend is dependency-free and parses C++
structurally (comment stripping + brace matching, shared with
sieve-lint). The 'clang' backend builds the same program model from
the libclang AST using compile_commands.json (pass --compile-db or let
it default to build/compile_commands.json); 'auto' tries clang and
falls back to text. Both backends feed one reachability engine, so
findings and report format are identical.

Token-backend soundness boundary (documented, deliberate):

  * Calls are resolved by name, narrowed where the tokens allow it:
    a bare call inside a class binds to that class's own method; a
    qualified call `Foo::bar(...)` binds to Foo; a member call
    `x.bar(...)` binds to the declared type of `x` (resolved through
    file-local `using` aliases) *plus every class derived from it*,
    so virtual dispatch stays conservative. When no binding is
    possible the call reaches every function of that name defined
    under src/ — an over-approximation that can only add findings,
    never hide a defined function. Names defined nowhere in the tree
    are looked up in the allocation/nondeterminism primitive tables;
    unknown names (std:: algorithms, accessors) are treated as clean
    and counted in the --report output, so the size of the trust
    base is visible.
  * Indirect calls through function pointers, std::function, and
    stored callables (e.g. RequestBatcher's flush_) are invisible; the
    lambda *bodies* are still scanned, because a lambda defined inside
    a scanned region is part of the region's text.

Suppressions and fixtures:
  // sieve-analyze: allow(<rule>)   on the flagged statement's span
  // analyze-expect: <rule>         fixture marker for --self-test

Exit status: 0 if every claim is proven, 1 on any finding (or a
failed --self-test).
"""

import argparse
import collections
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from sieve_lint import matchBrace, stripCommentsAndStrings  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCAN_DIRS = ("src",)
FIXTURE_DIR = os.path.join("scripts", "lint_fixtures", "analyze")

RULES = ("no-alloc", "determinism", "lock-discipline")

ALLOW_RE = re.compile(r"//\s*sieve-analyze:\s*allow\(([\w-]+)\)")
EXPECT_RE = re.compile(r"//\s*analyze-expect:\s*([\w-]+)")

# Identifiers that look like calls but are not.
KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "catch", "throw", "new",
    "delete", "static_assert", "defined", "assert", "case",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "int", "char", "bool", "float", "double", "void", "auto",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t",
    "int16_t", "int32_t", "int64_t", "size_t", "ssize_t", "ptrdiff_t",
    # Annotation macros (util/thread_annotations.hpp, util/check.hpp)
    # and contract macros expand to attributes or to checkFailed-only
    # paths; the checkFailed edge is added explicitly below.
    "REQUIRES", "ACQUIRE", "RELEASE", "TRY_ACQUIRE", "TS_ASSERT",
    "GUARDED_BY", "PT_GUARDED_BY", "CAPABILITY", "EXCLUDES",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER", "SIEVE_THREAD_ANNOTATION",
))

# Contract macros whose only call is the [[noreturn]] failure path;
# model them as an edge to checkFailed so the failure path's disarm
# boundary shows up in reports instead of being invisible.
CONTRACT_MACROS = frozenset((
    "SIEVE_CHECK", "SIEVE_DCHECK", "SIEVE_UNREACHABLE",
))

# Callees with no definition in the tree that are known to allocate.
# Container-growth method names double as primitives: when the name is
# *also* defined in the tree (e.g. FlatIndex::reserve) the tree
# definition wins and is traversed instead — its own SIEVE_MAY_ALLOC /
# disarm status then decides.
ALLOC_PRIMITIVES = frozenset((
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "to_string", "stoi", "stoul",
    "stoull", "getline",
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "insert", "insert_or_assign", "try_emplace",
    "resize", "reserve", "assign", "append", "substr",
    "shrink_to_fit", "rehash",
))

# Nondeterminism primitives for the determinism claim (call names).
NONDET_PRIMITIVES = frozenset((
    "rand", "srand", "rand_r", "drand48", "time", "gettimeofday",
    "clock_gettime",
))
# ... and token-level patterns (types, not calls).
NONDET_TOKEN_RE = re.compile(
    r"std\s*::\s*random_device"
    r"|std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|"
    r"high_resolution_clock)")

CALL_RE = re.compile(r"(?:\b|::\s*)([A-Za-z_]\w*)\s*\(")
# `new T(...)` allocates; `new (addr) T` (placement) does not, and the
# lookahead excludes it. `new (std::nothrow) T` is excluded with it —
# acceptable: nothrow-new is not used in this tree (grep-verified) and
# the runtime AllocGuard would still catch one.
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")
GUARD_RE = re.compile(r"\bSIEVE_ASSERT_NO_ALLOC(?:_WHEN)?\b")
DISARM_RE = re.compile(r"\bAllocGuardDisarm\b")
NOALLOC_ATTR = "SIEVE_NOALLOC"
MAYALLOC_ATTR = "SIEVE_MAY_ALLOC"

# The enforcement layer itself: defines the replacement allocation
# functions and the guard machinery. Out of scope for violations.
EXEMPT_FILES = frozenset((
    os.path.join("src", "util", "alloc_guard.hpp"),
    os.path.join("src", "util", "alloc_guard.cpp"),
))


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Function:
    """One function definition: spans are offsets into the stripped
    file text; `calls` are (name, offset) pairs."""

    def __init__(self, qual, relpath, line, head_start, body_start,
                 body_end):
        self.qual = qual              # display name, maybe Class::name
        self.name = qual.rsplit("::", 1)[-1]
        self.relpath = relpath
        self.line = line
        self.head_start = head_start  # offset where the decl begins
        self.body_start = body_start  # offset just past '{'
        self.body_end = body_end      # offset of matching '}'
        self.noalloc = False          # SIEVE_NOALLOC on the decl
        self.may_alloc = False        # SIEVE_MAY_ALLOC on the decl
        self.disarms = False          # body constructs AllocGuardDisarm
        self.line_based = False       # clang frontend: offsets = lines
        self.requires = ""            # raw REQUIRES(...) argument text
        self.asserts_caps = []        # TS_ASSERT(...) argument text
        self.calls = []               # (name, offset, kind, recv)
        self.regions = []             # (start, end, line) guard spans

    def key(self):
        return (self.relpath, self.line, self.qual)


class SourceFile:
    """One parsed file: stripped text plus suppression/expect lines."""

    def __init__(self, relpath, text):
        self.relpath = relpath
        self.raw_lines = text.splitlines()
        self.allow = {}
        self.expect = []
        for i, line in enumerate(self.raw_lines, start=1):
            for m in ALLOW_RE.finditer(line):
                self.allow.setdefault(i, set()).add(m.group(1))
            for m in EXPECT_RE.finditer(line):
                self.expect.append(m.group(1))
        self.text = stripCommentsAndStrings(text)
        self.functions = []
        self.guarded_fields = []  # (class, field, cap, line)

    def lineOf(self, offset):
        return self.text.count("\n", 0, offset) + 1

    def allowed(self, line, rule):
        """Suppression on the line, the line above, or anywhere on the
        statement's span (the statement containing `line` extends to
        the previous/next ';' or brace in the raw text is approximated
        by a 3-line window — statement spans are handled by callers
        passing every line of the span)."""
        return (rule in self.allow.get(line, set()) or
                rule in self.allow.get(line - 1, set()))

    def allowedSpan(self, first_line, last_line, rule):
        return any(rule in self.allow.get(l, set())
                   for l in range(first_line - 1, last_line + 1))


class Program:
    """The IR both backends produce: functions indexed by simple name,
    plus class hierarchy and per-file guarded-field tables."""

    def __init__(self):
        self.sources = {}             # relpath -> SourceFile
        self.by_name = collections.defaultdict(list)
        self.functions = []
        self.bases = {}               # class -> set(direct bases)
        self.aliases = {}             # alias -> class name
        self.class_spans = collections.defaultdict(list)
        #                             # class -> [(relpath, start, end)]

    def add(self, fn):
        self.functions.append(fn)
        self.by_name[fn.name].append(fn)

    def finalize(self):
        """Derived-class closure and per-class method tables."""
        self.class_methods = collections.defaultdict(set)
        for fn in self.functions:
            if "::" in fn.qual:
                cls, meth = fn.qual.rsplit("::", 1)
                self.class_methods[cls].add(meth)
        children = collections.defaultdict(set)
        for cls, bases in self.bases.items():
            for b in bases:
                children[b].add(cls)
        self.derived = {}
        for cls in set(children) | set(self.bases):
            out = set()
            work = [cls]
            while work:
                c = work.pop()
                for d in children.get(c, ()):
                    if d not in out:
                        out.add(d)
                        work.append(d)
            self.derived[cls] = out

    def resolveClass(self, name):
        name = name.rsplit("::", 1)[-1]
        name = self.aliases.get(name, name)
        name = name.rsplit("::", 1)[-1]
        if name in self.class_methods or name in self.bases or \
                name in self.derived:
            return name
        return None

    def methodsOf(self, cls, name):
        """Defs of `cls::name` plus overrides in derived classes."""
        out = []
        for c in [cls] + sorted(self.derived.get(cls, ())):
            if name in self.class_methods.get(c, ()):
                qual = f"{c}::{name}"
                out.extend(f for f in self.by_name.get(name, ())
                           if f.qual == qual)
        return out


# --------------------------------------------------------------------
# Token frontend
# --------------------------------------------------------------------

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:CAPABILITY\s*\([^)]*\)\s*|"
    r"SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(:[^{;]*)?\{")

BASE_NAME_RE = re.compile(
    r"(?:public|protected|private|virtual|\s|,)*"
    r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)")

ALIAS_RE = re.compile(
    r"\busing\s+([A-Za-z_]\w*)\s*=\s*"
    r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*[<;]")

FUNC_NAME_RE = re.compile(
    r"\b((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*\(")

GUARDED_FIELD_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s+GUARDED_BY\s*\(\s*([^)]*?)\s*\)")

REQUIRES_HEAD_RE = re.compile(r"\bREQUIRES\s*\(\s*([^)]*?)\s*\)")
TSASSERT_HEAD_RE = re.compile(r"\bTS_ASSERT\s*\(\s*([^)]*?)\s*\)")

# Tokens that may legally sit between a definition's ')' and its '{'.
TAIL_WORD_RE = re.compile(
    r"\s*(const|noexcept|override|final|mutable|volatile|&&|&|"
    r"->\s*[\w:<>,\s*&]+?)(?=\s|\{|$)")


def classSpans(text):
    """[(name, body_start, body_end, bases)] for every class/struct
    body, with direct base-class simple names."""
    spans = []
    for m in CLASS_HEAD_RE.finditer(text):
        open_pos = m.end() - 1
        end = matchBrace(text, open_pos) - 1
        bases = set()
        clause = m.group(2)
        if clause:
            for part in clause.lstrip(":").split(","):
                bm = BASE_NAME_RE.match(part.strip())
                if bm:
                    bases.add(
                        re.sub(r"\s", "",
                               bm.group(1)).rsplit("::", 1)[-1])
        spans.append((m.group(1), open_pos + 1, end, bases))
    return spans


def enclosingClass(spans, offset):
    best = None
    for name, start, end, _bases in spans:
        if start <= offset < end:
            if best is None or start > best[1]:
                best = (name, start, end)
    return best[0] if best else None


# Keywords that may legitimately precede a call expression; any other
# identifier directly before `name(` marks a variable declaration.
STMT_KEYWORDS = frozenset({
    "return", "co_return", "co_yield", "co_await", "throw", "new",
    "delete", "case", "goto", "else", "do", "not", "and", "or",
})


def callContext(text, name_start):
    """('bare'|'member'|'qualified', receiver-or-None) for the call
    whose callee name begins at name_start."""
    j = name_start - 1
    while j >= 0 and text[j].isspace():
        j -= 1
    if j >= 1 and text[j] == ":" and text[j - 1] == ":":
        k = j - 2
        while k >= 0 and text[k].isspace():
            k -= 1
        end = k + 1
        while k >= 0 and (text[k].isalnum() or text[k] == "_"):
            k -= 1
        recv = text[k + 1:end]
        return ("qualified", recv or None)
    via_arrow = j >= 1 and text[j] == ">" and text[j - 1] == "-"
    if not via_arrow and (text[j].isalnum() or text[j] in "_>"):
        # `Type name(args)` / `std::vector<int> v(n)`: a declaration
        # with constructor arguments, not a call — unless the
        # preceding token is a statement keyword (`return foo()`).
        k = j
        while k >= 0 and (text[k].isalnum() or text[k] == "_"):
            k -= 1
        prev_tok = text[k + 1:j + 1]
        if prev_tok not in STMT_KEYWORDS:
            return ("decl", None)
    if text[j] == "." or via_arrow:
        k = j - (2 if via_arrow else 1)
        while k >= 0 and text[k].isspace():
            k -= 1
        if k < 0 or not (text[k].isalnum() or text[k] == "_"):
            # Receiver is an expression (call result, index, cast):
            # untypable at token level, resolve by name.
            return ("member", None)
        end = k + 1
        while k >= 0 and (text[k].isalnum() or text[k] == "_"):
            k -= 1
        recv = text[k + 1:end]
        if recv and not recv[0].isdigit():
            return ("member", recv)
        return ("member", None)
    return ("bare", None)


def skipDefTail(text, pos):
    """From just past a parameter list's ')', skip qualifiers,
    annotation macros, trailing return types, and a constructor
    initializer list. Returns the offset of the body '{', or -1 if
    this is not a definition."""
    n = len(text)
    i = pos
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            return -1
        c = text[i]
        if c == "{":
            return i
        if c in ";,)=":
            return -1
        if c == ":":
            if text[i + 1:i + 2] == ":":  # stray qualified name
                return -1
            # Constructor initializer list: skip balanced (), {}
            # until the body '{' at depth 0.
            i += 1
            depth = 0
            while i < n:
                ch = text[i]
                if ch in "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                elif ch == "{":
                    if depth == 0:
                        return i
                    depth += 1
                elif ch == "}":
                    depth -= 1
                elif ch == ";":
                    if depth == 0:
                        return -1
                i += 1
            return -1
        m = re.match(r"[A-Za-z_]\w*", text[i:])
        if m:
            word = m.group(0)
            j = i + m.end()
            while j < n and text[j].isspace():
                j += 1
            if j < n and text[j] == "(" and word not in (
                    "const", "noexcept", "override", "final",
                    "mutable", "volatile"):
                # Annotation macro with arguments: REQUIRES(...),
                # TS_ASSERT(...), __attribute__((...)), noexcept(...)
                close = j
                depth = 0
                while close < n:
                    if text[close] == "(":
                        depth += 1
                    elif text[close] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    close += 1
                i = close + 1
                continue
            i += m.end()
            continue
        if c == "-" and text[i:i + 2] == "->":
            # Trailing return type: scan to '{' or ';' at depth 0.
            i += 2
            depth = 0
            while i < n:
                ch = text[i]
                if ch in "(<":
                    depth += 1
                elif ch in ")>":
                    depth -= 1
                elif ch == "{" and depth <= 0:
                    return i
                elif ch == ";" and depth <= 0:
                    return -1
                i += 1
            return -1
        return -1
    return -1


def parseFunctions(src, spans):
    """Find function definitions in a stripped file. Control-flow
    keywords are filtered; the head span (for annotations) runs from
    the previous top-level terminator to the body brace."""
    text = src.text
    taken = []  # body spans already claimed, to skip nested re-finds
    for m in FUNC_NAME_RE.finditer(text):
        name = m.group(1)
        simple = re.sub(r"\s", "", name).rsplit("::", 1)[-1]
        if simple.lstrip("~") in KEYWORDS or simple in KEYWORDS:
            continue
        open_paren = m.end() - 1
        # Match the parameter list.
        depth = 0
        i = open_paren
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= len(text):
            continue
        body_open = skipDefTail(text, i + 1)
        if body_open < 0:
            continue
        body_end = matchBrace(text, body_open) - 1
        # Head: back to the nearest ; { or } before the name.
        head_start = max(text.rfind(";", 0, m.start()),
                         text.rfind("{", 0, m.start()),
                         text.rfind("}", 0, m.start())) + 1
        qual = re.sub(r"\s", "", name)
        if "::" not in qual:
            cls = enclosingClass(spans, m.start())
            if cls:
                qual = f"{cls}::{qual}"
        fn = Function(qual, src.relpath, src.lineOf(m.start()),
                      head_start, body_open + 1, body_end)
        head = text[head_start:body_open]
        fn.noalloc = NOALLOC_ATTR in head
        fn.may_alloc = MAYALLOC_ATTR in head
        rq = REQUIRES_HEAD_RE.search(head)
        if rq:
            fn.requires = re.sub(r"\s", "", rq.group(1))
        for ts in TSASSERT_HEAD_RE.finditer(head):
            fn.asserts_caps.append(re.sub(r"\s", "", ts.group(1)))
        taken.append((body_open + 1, body_end, fn))
        src.functions.append(fn)
    # Drop defs whose body lies inside another def's body *and* whose
    # head looks like a local construct — keep in-class methods (class
    # bodies are not function bodies). Nested function-like matches
    # inside bodies are usually lambdas assigned to named variables or
    # local structs; keeping them is harmless (they become extra
    # nodes), so no pruning is done.
    return


def scanBodies(src):
    """Populate calls/regions/disarm info for each function."""
    text = src.text
    for fn in src.functions:
        body = text[fn.body_start:fn.body_end]
        base = fn.body_start
        if DISARM_RE.search(body):
            fn.disarms = True
        for m in CALL_RE.finditer(body):
            name = m.group(1)
            if name in KEYWORDS:
                continue
            if name in CONTRACT_MACROS:
                fn.calls.append(("checkFailed", base + m.start(1),
                                 "bare", None))
                continue
            if name.isupper() and name.startswith("SIEVE_"):
                continue
            kind, recv = callContext(body, m.start(1))
            if kind == "decl":  # `Type name(args)` — not a call
                continue
            fn.calls.append((name, base + m.start(1), kind, recv))
        for m in GUARD_RE.finditer(body):
            # Region: guard statement to the end of its enclosing
            # brace scope within this body.
            pos = m.start()
            depth = 0
            end = len(body)
            for j in range(pos, len(body)):
                if body[j] == "{":
                    depth += 1
                elif body[j] == "}":
                    depth -= 1
                    if depth < 0:
                        end = j
                        break
            fn.regions.append((base + pos, base + end,
                               src.lineOf(base + pos)))


def parseGuardedFields(src, spans):
    for m in GUARDED_FIELD_RE.finditer(src.text):
        cls = enclosingClass(spans, m.start())
        cap = re.sub(r"\s", "", m.group(2))
        src.guarded_fields.append(
            (cls or "", m.group(1), cap, src.lineOf(m.start())))


def loadProgramText(root, relpaths):
    prog = Program()
    for rel in relpaths:
        with open(os.path.join(root, rel),
                  encoding="utf-8", errors="replace") as f:
            src = SourceFile(rel, f.read())
        spans = classSpans(src.text)
        parseFunctions(src, spans)
        scanBodies(src)
        parseGuardedFields(src, spans)
        prog.sources[rel] = src
        for fn in src.functions:
            prog.add(fn)
        for (name, start, end, bases) in spans:
            prog.bases.setdefault(name, set()).update(bases)
            prog.class_spans[name].append((rel, start, end))
        for m in ALIAS_RE.finditer(src.text):
            target = re.sub(r"\s", "", m.group(2)).rsplit("::", 1)[-1]
            prog.aliases.setdefault(m.group(1), target)
    prog.finalize()
    return prog


# --------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------

def loadCompileDb(root, db_path):
    """[(abs source path, [args])] from compile_commands.json."""
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)
    out = []
    for e in entries:
        path = os.path.normpath(
            os.path.join(e.get("directory", root), e["file"]))
        args = e.get("arguments")
        if not args:
            args = e.get("command", "").split()
        # Drop the compiler, the input file, and -o/-c plumbing.
        cleaned = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", path, e["file"]):
                continue
            if a == "-o":
                skip = True
                continue
            cleaned.append(a)
        out.append((path, cleaned))
    return out


def loadProgramClang(root, relpaths, db_path):
    """Build the same Program from the libclang AST. Returns None when
    libclang or the compile db is unavailable (caller falls back)."""
    try:
        import clang.cindex as ci
        index = ci.Index.create()
    except Exception:
        return None
    try:
        units = loadCompileDb(root, db_path) if db_path else []
    except Exception:
        units = []
    if not units:
        units = [(os.path.join(root, rel),
                  ["-x", "c++", "-std=c++20",
                   "-I", os.path.join(root, "src")])
                 for rel in relpaths if rel.endswith(".cpp")]

    prog = Program()
    for rel in relpaths:
        with open(os.path.join(root, rel),
                  encoding="utf-8", errors="replace") as f:
            prog.sources[rel] = SourceFile(rel, f.read())

    seen = set()

    def relOf(cursor):
        loc = cursor.location
        if not loc.file:
            return None
        path = os.path.abspath(loc.file.name)
        if not path.startswith(root + os.sep):
            return None
        return os.path.relpath(path, root)

    fn_kinds = None

    def visit(cursor):
        for child in cursor.get_children():
            rel = relOf(child)
            if rel is None:
                continue
            if child.kind in fn_kinds and child.is_definition():
                recordFunction(child, rel)
            visit(child)

    def recordFunction(cursor, rel):
        import clang.cindex as ci
        key = (rel, cursor.location.line, cursor.spelling)
        if key in seen:
            return
        seen.add(key)
        parent = cursor.semantic_parent
        qual = cursor.spelling
        if parent is not None and parent.kind in (
                ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                ci.CursorKind.CLASS_TEMPLATE):
            qual = f"{parent.spelling}::{qual}"
        fn = Function(qual, rel, cursor.location.line, 0, 0, 1)
        fn.line_based = True
        for child in cursor.walk_preorder():
            k = child.kind
            if k == ci.CursorKind.ANNOTATE_ATTR:
                if child.spelling == "sieve-noalloc":
                    fn.noalloc = True
                elif child.spelling == "sieve-may-alloc":
                    fn.may_alloc = True
            elif k == ci.CursorKind.CALL_EXPR:
                callee = child.referenced
                name = (callee.spelling if callee is not None
                        else child.spelling)
                if name:
                    fn.calls.append(
                        (name, child.location.line, "unknown",
                         None))
            elif k == ci.CursorKind.CXX_NEW_EXPR:
                fn.calls.append(("operator new",
                                 child.location.line, "unknown",
                                 None))
            elif k == ci.CursorKind.VAR_DECL:
                t = child.type.spelling
                if "AllocGuardDisarm" in t:
                    fn.disarms = True
                elif "AllocGuard" in t:
                    fn.regions.append(
                        (0, 1, child.location.line))
        prog.add(fn)

    try:
        import clang.cindex as ci
        fn_kinds = (ci.CursorKind.FUNCTION_DECL,
                    ci.CursorKind.CXX_METHOD,
                    ci.CursorKind.CONSTRUCTOR,
                    ci.CursorKind.DESTRUCTOR,
                    ci.CursorKind.FUNCTION_TEMPLATE)
        want = {os.path.join(root, rel) for rel in relpaths}
        for path, args in units:
            if path not in want:
                continue
            tu = index.parse(path, args=args)
            visit(tu.cursor)
    except Exception:
        return None
    if not prog.functions:
        return None
    # The clang frontend records line-level call info only; region
    # spans degrade to whole-function granularity, which is sound
    # (a superset of the armed extent).
    prog.finalize()
    return prog


# --------------------------------------------------------------------
# Reachability engine
# --------------------------------------------------------------------

class Root:
    def __init__(self, fn, label, start, end, line):
        self.fn = fn
        self.label = label
        self.start = start  # text span for region roots (token only)
        self.end = end
        self.line = line


def collectRoots(prog):
    roots = []
    for fn in prog.functions:
        for (start, end, line) in fn.regions:
            roots.append(Root(
                fn, f"{fn.qual} guard region ({fn.relpath}:{line})",
                start, end, line))
        if fn.noalloc:
            roots.append(Root(
                fn, f"{fn.qual} [SIEVE_NOALLOC] "
                    f"({fn.relpath}:{fn.line})",
                fn.body_start, fn.body_end, fn.line))
    return roots


def callsInSpan(fn, start, end):
    if fn.line_based:
        return list(fn.calls)
    return [c for c in fn.calls if start <= c[1] < end]


def scanSpanViolations(src, fn, start, end, rule):
    """Direct violations inside a text span of `fn`'s file: allocation
    tokens for no-alloc, nondeterminism tokens for determinism. The
    clang frontend reports these as calls instead, so line-based
    functions have nothing to scan here."""
    if fn.line_based:
        return []
    text = src.text[start:end]
    out = []
    if rule == "no-alloc":
        for m in NEW_RE.finditer(text):
            out.append((src.lineOf(start + m.start()),
                        "`new` expression"))
    else:
        for m in NONDET_TOKEN_RE.finditer(text):
            out.append((src.lineOf(start + m.start()),
                        m.group(0).replace(" ", "")))
    return out


_recv_type_cache = {}

# Sentinel: receiver declared with a type outside the scanned tree.
EXTERNAL_RECV = "!external"

# std templates whose operator-> forwards to the first template
# argument; a receiver of wrapper type dispatches into the pointee.
_FORWARDING_WRAPPERS = frozenset({
    "unique_ptr", "shared_ptr", "optional",
})

# Tokens the receiver-declaration regex can match that are never the
# type of a declaration (`return out;`, `auto it = ...`, `delete p;`).
_NOT_A_TYPE = frozenset({
    "return", "co_return", "co_yield", "co_await", "throw", "new",
    "delete", "case", "goto", "else", "do", "auto", "const",
    "constexpr", "static", "mutable", "inline", "typename", "using",
    "sizeof", "not", "and", "or", "if", "while", "for", "switch",
})


def receiverType(prog, fn, src, recv):
    """Declared class of `recv`, searched in the enclosing function
    first, then anywhere in the file, then — for out-of-line methods
    whose data members live in a header — in the defining class's
    body span and those of its base classes. Only names that resolve
    to a class defined in the scanned tree are accepted, so stray
    matches cannot misbind a call. A receiver whose declaration IS
    found but whose type is not a scanned class (std::ofstream,
    std::vector, ...) returns the sentinel EXTERNAL_RECV: its methods
    live outside the tree, so the call must not fan out by name —
    allocating std members are still caught textually as
    primitives."""
    key = (src.relpath, fn.key(), recv)
    if key in _recv_type_cache:
        return _recv_type_cache[key]
    # Declarator punctuation admits `*` and single `&` but not `&&`,
    # which is almost always logical-and between two expressions.
    pat = re.compile(
        r"\b((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*"
        r"(<[^;{}]*?>)?(?:\s|\*|&(?!&))+%s\b" % re.escape(recv))

    saw_external = False

    def searchSpan(text, a, b):
        nonlocal saw_external
        for m in pat.finditer(text, a, b):
            cand = re.sub(r"\s", "", m.group(1))
            if cand in _NOT_A_TYPE:
                continue
            cls = (prog.resolveClass(cand) or
                   prog.resolveClass(cand.rsplit("::", 1)[-1]))
            if cls:
                return cls
            # Pointer-like std wrappers forward `->` members to the
            # pointee: bind to the first template argument's class.
            if cand.rsplit("::", 1)[-1] in _FORWARDING_WRAPPERS \
                    and m.group(2):
                inner = m.group(2)[1:-1].split(",")[0]
                inner = re.sub(r"[\s*&]", "", inner)
                cls = (prog.resolveClass(inner) or
                       prog.resolveClass(inner.rsplit("::", 1)[-1]))
                if cls:
                    return cls
            # A plausible declaration with a type outside the tree:
            # remember it, but keep looking — a later span (e.g. the
            # member's declaration in the class body) may still bind
            # the receiver to a scanned class.
            saw_external = True
            return None
        return None

    result = (searchSpan(src.text, fn.head_start, fn.body_end) or
              searchSpan(src.text, 0, len(src.text)))
    if result is None and "::" in fn.qual:
        # Walk the owning class and its bases (inherited members).
        work = [fn.qual.rsplit("::", 1)[0]]
        visited = set()
        while work and result is None:
            cls = work.pop()
            if cls in visited:
                continue
            visited.add(cls)
            for (rel2, a, b) in prog.class_spans.get(cls, ()):
                other = prog.sources.get(rel2)
                if other is None:
                    continue
                result = searchSpan(other.text, a, b)
                if result:
                    break
            work.extend(prog.bases.get(cls, ()))
    if result is None and saw_external:
        result = EXTERNAL_RECV
    _recv_type_cache[key] = result
    return result


def resolveCall(prog, fn, src, name, kind, recv):
    """Definitions a call site may reach. Narrowing order: bare calls
    bind to the enclosing class, qualified calls to the named class,
    member calls to the receiver's declared class plus its derived
    classes (virtual dispatch). Anything unbindable falls back to
    every same-named definition."""
    if kind == "bare" and "::" in fn.qual:
        targets = prog.methodsOf(fn.qual.rsplit("::", 1)[0], name)
        if targets:
            return targets
    if kind == "qualified" and recv:
        cls = prog.resolveClass(recv)
        if cls:
            targets = prog.methodsOf(cls, name)
            if targets:
                return targets
    if kind == "member" and recv and src is not None:
        cls = receiverType(prog, fn, src, recv)
        if cls == EXTERNAL_RECV:
            return []
        if cls:
            targets = prog.methodsOf(cls, name)
            if targets:
                return targets
    return prog.by_name.get(name, [])


def primitiveFor(name, rule):
    if rule == "no-alloc":
        if name in ALLOC_PRIMITIVES or name == "operator new":
            return f"allocating primitive `{name}`"
    else:
        if name in NONDET_PRIMITIVES:
            return f"nondeterminism primitive `{name}`"
    return None


def checkReachability(prog, rule, findings, report):
    """BFS each root; a violation is a direct token in a reachable
    span or a call resolving only to a primitive of the rule."""
    roots = collectRoots(prog)
    reachable = set()
    boundaries = []
    unknown = collections.Counter()

    def visitSpan(src, fn, start, end, path, seen):
        # Direct tokens in this span.
        exempt = fn.relpath in EXEMPT_FILES
        for line, what in scanSpanViolations(src, fn, start, end,
                                             rule):
            if exempt or src.allowedSpan(line, line, rule):
                continue
            chain = " -> ".join(path)
            findings.append(Finding(
                fn.relpath, line, rule,
                f"{what} reachable from no-alloc root: {chain}"))
        # Calls in this span.
        for name, off, kind, recv in callsInSpan(fn, start, end):
            line = off if fn.line_based else src.lineOf(off)
            targets = resolveCall(prog, fn, src, name, kind, recv)
            if targets:
                for callee in targets:
                    visitFunction(callee, path, seen)
                continue
            prim = primitiveFor(name, rule)
            if prim is not None and not exempt:
                if src.allowedSpan(line, line, rule):
                    continue
                chain = " -> ".join(path)
                findings.append(Finding(
                    fn.relpath, line, rule,
                    f"{prim} reachable from no-alloc root: "
                    f"{chain}"))
            elif prim is None:
                unknown[name] += 1

    def visitFunction(fn, path, seen):
        # `seen` is shared across the whole root traversal (each
        # function is expanded once per root), so shared subgraphs
        # cost linear work instead of one visit per path.
        if fn.key() in seen:
            return
        seen.add(fn.key())
        if rule == "no-alloc":
            if fn.may_alloc:
                boundaries.append(
                    (f"{fn.qual} ({fn.relpath}:{fn.line})",
                     "SIEVE_MAY_ALLOC",
                     " -> ".join(path + [fn.qual])))
                return
            if fn.disarms:
                boundaries.append(
                    (f"{fn.qual} ({fn.relpath}:{fn.line})",
                     "AllocGuardDisarm",
                     " -> ".join(path + [fn.qual])))
                return
        reachable.add(fn.key())
        src = prog.sources.get(fn.relpath)
        if src is None or fn.body_end <= fn.body_start:
            return
        path.append(fn.qual)
        visitSpan(src, fn, fn.body_start, fn.body_end, path, seen)
        path.pop()

    for root in roots:
        src = prog.sources.get(root.fn.relpath)
        if src is None:
            continue
        seen = {root.fn.key()}
        reachable.add(root.fn.key())
        if root.end > root.start:
            visitSpan(src, root.fn, root.start, root.end,
                      [root.label], seen)

    report[rule] = {
        "roots": [r.label for r in roots],
        "reachable": len(reachable),
        "boundaries": boundaries,
        "unknown": unknown,
    }


# --------------------------------------------------------------------
# Lock discipline
# --------------------------------------------------------------------

def lockClaimers(prog):
    """cap expression -> names of TS_ASSERT(cap) assertion functions
    plus built-in holders."""
    claimers = collections.defaultdict(set)
    for fn in prog.functions:
        for cap in fn.asserts_caps:
            claimers[cap].add(fn.name)
    return claimers


def checkLockDiscipline(prog, findings):
    claimers = lockClaimers(prog)
    for rel, src in prog.sources.items():
        if not src.guarded_fields:
            continue
        for fn in src.functions:
            body = src.text[fn.body_start:fn.body_end]
            head = src.text[fn.head_start:fn.body_start]
            for (cls, field, cap, decl_line) in src.guarded_fields:
                # Only methods of the owning class (or file-local free
                # functions when the class is anonymous) can touch a
                # private field; same-file scoping keeps this sound
                # enough for the token backend.
                if cls and not fn.qual.startswith(cls + "::"):
                    continue
                pat = re.compile(r"\b%s\b" % re.escape(field))
                hits = [m for m in pat.finditer(body)]
                if not hits:
                    continue
                if fn.requires and capMatches(fn.requires, cap):
                    continue
                if cap in fn.asserts_caps or any(
                        capMatches(a, cap) for a in fn.asserts_caps):
                    continue
                if holdsCapability(body, cap, claimers):
                    continue
                line = src.lineOf(fn.body_start + hits[0].start())
                if src.allowedSpan(line, line, "lock-discipline"):
                    continue
                findings.append(Finding(
                    rel, line, "lock-discipline",
                    f"{fn.qual} touches {cls or '<file>'}::{field} "
                    f"(GUARDED_BY({cap}), declared line {decl_line}) "
                    f"without holding `{cap}`: add REQUIRES({cap}), "
                    f"take a MutexLock over it, or call its "
                    f"TS_ASSERT claimer first"))


def capMatches(held, cap):
    """Loose capability-expression match: `mu` vs `mu`, tolerant of
    member sigils (this->mu, producer_role_)."""
    norm = lambda s: s.replace("this->", "").strip("&* ")
    return norm(held) == norm(cap)


def holdsCapability(body, cap, claimers):
    base = cap.replace("this->", "").strip("&* ")
    if re.search(r"\bMutexLock\s+\w+\s*\(\s*(?:this\s*->\s*)?%s\s*\)"
                 % re.escape(base), body):
        return True
    if re.search(r"\b%s\s*\.\s*lock\s*\(" % re.escape(base), body):
        return True
    for held_cap, names in claimers.items():
        if not capMatches(held_cap, cap):
            continue
        for name in names:
            if re.search(r"\b%s\s*\(" % re.escape(name), body):
                return True
    return False


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def collectCppFiles(root, dirs):
    out = []
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if os.path.splitext(name)[1] in (".hpp", ".cpp"):
                    full = os.path.join(dirpath, name)
                    out.append(os.path.relpath(full, root))
    return sorted(out)


def runAnalyze(root, relpaths, backend, db_path, report):
    prog = None
    used = "text"
    if backend in ("clang", "auto"):
        prog = loadProgramClang(root, relpaths, db_path)
        if prog is not None:
            used = "clang"
        elif backend == "clang":
            print("sieve-analyze: clang backend unavailable "
                  "(python3-clang not importable or parse failed)",
                  file=sys.stderr)
            return None, used
    if prog is None:
        prog = loadProgramText(root, relpaths)
    findings = []
    checkReachability(prog, "no-alloc", findings, report)
    checkReachability(prog, "determinism", findings, report)
    checkLockDiscipline(prog, findings)
    # Name-based resolution visits every same-named overload, so the
    # same defect can be reported once per path; dedupe on location.
    uniq = {}
    for f in findings:
        uniq.setdefault((f.path, f.line, f.rule), f)
    return list(uniq.values()), used


def printReport(report, used):
    print(f"sieve-analyze report (backend: {used})")
    for rule in ("no-alloc", "determinism"):
        info = report.get(rule)
        if not info:
            continue
        print(f"  [{rule}] {len(info['roots'])} roots, "
              f"{info['reachable']} reachable functions, "
              f"{len(info['boundaries'])} boundaries")
        for label in info["roots"]:
            print(f"    root: {label}")
        for (where, why, path) in info["boundaries"]:
            print(f"    boundary [{why}]: {path}")
        if info["unknown"]:
            top = info["unknown"].most_common(8)
            names = ", ".join(f"{n}({c})" for n, c in top)
            print(f"    unresolved (assumed clean): "
                  f"{sum(info['unknown'].values())} call sites "
                  f"across {len(info['unknown'])} names; top: "
                  f"{names}")


def selfTest(root, backend, db_path):
    relpaths = collectCppFiles(root, (FIXTURE_DIR,))
    if not relpaths:
        print(f"sieve-analyze: no fixtures under "
              f"{os.path.join(root, FIXTURE_DIR)}", file=sys.stderr)
        return 1
    report = {}
    findings, used = runAnalyze(root, relpaths, backend, db_path,
                                report)
    if findings is None:
        return 1
    expected = []
    for rel in relpaths:
        with open(os.path.join(root, rel),
                  encoding="utf-8", errors="replace") as f:
            for m in EXPECT_RE.finditer(f.read()):
                expected.append((rel, m.group(1)))
    got = [(f.path, f.rule) for f in findings]
    if sorted(expected) != sorted(got):
        print("sieve-analyze self-test FAILED", file=sys.stderr)
        print(f"  expected: {sorted(expected)}", file=sys.stderr)
        print(f"  got:      {sorted(got)}", file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    # Every reported path must actually name a call chain, not just a
    # location — the acceptance bar is "fails with a reported path".
    for f in findings:
        if "->" not in f.message and f.rule != "lock-discipline":
            print("sieve-analyze self-test FAILED: finding without "
                  f"a call path: {f}", file=sys.stderr)
            return 1
    print(f"sieve-analyze self-test OK ({len(relpaths)} fixtures, "
          f"{len(expected)} expected findings reproduced, "
          f"backend: {used})")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="SieveStore call-graph hot-path analyzer")
    parser.add_argument("--root", default=REPO,
                        help="repository root (default: inferred)")
    parser.add_argument("--backend",
                        choices=("text", "clang", "auto"),
                        default="text",
                        help="program-model frontend")
    parser.add_argument("--compile-db", default=None,
                        help="compile_commands.json for the clang "
                             "backend (default: build/ if present)")
    parser.add_argument("--report", action="store_true",
                        help="print roots/boundaries/trust-base "
                             "summary")
    parser.add_argument("--self-test", action="store_true",
                        help="run against scripts/lint_fixtures/"
                             "analyze/")
    parser.add_argument("paths", nargs="*",
                        help="files to analyze (default: src/)")
    opts = parser.parse_args()

    db_path = opts.compile_db
    if db_path is None:
        candidate = os.path.join(opts.root, "build",
                                 "compile_commands.json")
        if os.path.isfile(candidate):
            db_path = candidate

    if opts.self_test:
        return selfTest(opts.root, opts.backend, db_path)

    if opts.paths:
        relpaths = [os.path.relpath(os.path.abspath(p), opts.root)
                    for p in opts.paths]
    else:
        relpaths = collectCppFiles(opts.root, SCAN_DIRS)

    report = {}
    findings, used = runAnalyze(opts.root, relpaths, opts.backend,
                                db_path, report)
    if findings is None:
        return 1
    if opts.report:
        printReport(report, used)
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(f)
    if findings:
        print(f"sieve-analyze: {len(findings)} finding(s) in "
              f"{len(relpaths)} files", file=sys.stderr)
        return 1
    print(f"sieve-analyze: all claims proven "
          f"({len(relpaths)} files, backend: {used})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
