#!/usr/bin/env python3
"""Compare a fresh benchmark run against a checked-in baseline.

Two formats are understood, auto-detected from the file contents:

  gbench  Google Benchmark ``--benchmark_out_format=json`` output
          (``bench/baselines/BENCH_micro.json``). Entries are keyed
          by benchmark name; ``cpu_time`` is compared (less sensitive
          to host load than wall time).

  replay  ``bench_parallel_replay --json`` output
          (``bench/baselines/BENCH_batch.json``): one or more
          concatenated JSON arrays of row objects. Rows are keyed by
          their ``Shards``/``Batch`` column; every ``... req/s``
          column is compared, and the ``Identical`` column must stay
          ``yes`` — a determinism break is a hard failure regardless
          of tolerance.

A regression is a slowdown beyond ``--tolerance`` (default 0.50: CI
and developer machines are noisy — back-to-back idle runs of the
replay bench vary by up to ~35% on shared hosts — so the baselines
exist to catch step-change regressions, not single-digit drift).
Speedups never fail. Benchmarks present only in the fresh run are
warn-and-skip, never failures, and ``--allow-missing-baseline``
extends that to a baseline file that does not exist yet — both so a
new bench can land before its quiet-host baseline does. Exit status:
0 clean, 1 regression or determinism break, 2 usage/parse error.

Typical use:

  build/bench/bench_micro_structures --benchmark_filter=BlockCache \\
      --benchmark_out=fresh.json --benchmark_out_format=json
  scripts/bench_compare.py --baseline bench/baselines/BENCH_micro.json \\
      --fresh fresh.json

  build/bench/bench_parallel_replay --json --scale-denominator 65536 \\
      > fresh_batch.json
  scripts/bench_compare.py --baseline bench/baselines/BENCH_batch.json \\
      --fresh fresh_batch.json

Refreshing a baseline is deliberate: rerun on a quiet host and commit
the new file with a note on what changed. The committed replay
baseline is the per-row minimum of three back-to-back quiet-host
runs (a conservative floor, so honest fresh runs do not trip the
gate on host noise alone); regenerate it the same way.
"""

import argparse
import json
import re
import sys


def loadJsonStream(path):
    """Parse one or more concatenated JSON documents from a file."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    docs = []
    decoder = json.JSONDecoder()
    i, n = 0, len(text)
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            break
        doc, end = decoder.raw_decode(text, i)
        docs.append(doc)
        i = end
    return docs


def detectFormat(docs):
    if len(docs) == 1 and isinstance(docs[0], dict) \
            and "benchmarks" in docs[0]:
        return "gbench"
    if all(isinstance(d, list) for d in docs):
        return "replay"
    return None


# --------------------------------------------------------------------
# gbench
# --------------------------------------------------------------------

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def gbenchEntries(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        scale = _TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        out[b["name"]] = float(b["cpu_time"]) * scale
    return out


def compareGbench(base_doc, fresh_doc, tolerance):
    base = gbenchEntries(base_doc)
    fresh = gbenchEntries(fresh_doc)
    failures = []
    for name in sorted(base):
        if name not in fresh:
            print(f"  MISSING {name} (in baseline, not in fresh run)")
            continue
        b, f = base[name], fresh[name]
        ratio = f / b if b > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + tolerance:
            flag = "  << REGRESSION"
            failures.append(name)
        print(f"  {name}: {b:.1f} -> {f:.1f} ns "
              f"({(ratio - 1.0) * 100.0:+.1f}%){flag}")
    for name in sorted(set(fresh) - set(base)):
        # Warn-and-skip, never fail: new benches land before their
        # quiet-host baseline does.
        print(f"  NEW {name} (no baseline entry; skipped)")
    return failures


# --------------------------------------------------------------------
# replay
# --------------------------------------------------------------------

_KEY_COLUMNS = ("Shards", "Batch")
_RATE_RE = re.compile(r"req/s$")


def replayRows(docs):
    """(table index, key column, key value) -> row dict."""
    rows = {}
    for t, doc in enumerate(docs):
        for row in doc:
            for key_col in _KEY_COLUMNS:
                if key_col in row:
                    rows[(t, key_col, row[key_col])] = row
                    break
    return rows


def compareReplay(base_docs, fresh_docs, tolerance):
    base = replayRows(base_docs)
    fresh = replayRows(fresh_docs)
    failures = []
    for key in sorted(set(fresh) - set(base), key=str):
        print(f"  NEW row {key[1]}={key[2]} "
              f"(no baseline entry; skipped)")
    for key in sorted(base, key=str):
        if key not in fresh:
            print(f"  MISSING row {key[1]}={key[2]}")
            continue
        brow, frow = base[key], fresh[key]
        label = f"{key[1]}={key[2]}"
        if frow.get("Identical", "yes") != "yes":
            print(f"  {label}: Identical={frow['Identical']} "
                  f"<< DETERMINISM BREAK")
            failures.append(f"{label} determinism")
        for col in brow:
            if not _RATE_RE.search(col) or col not in frow:
                continue
            b = float(str(brow[col]).replace(",", ""))
            f = float(str(frow[col]).replace(",", ""))
            if b <= 0:
                continue
            ratio = f / b
            flag = ""
            if ratio < 1.0 - tolerance:
                flag = "  << REGRESSION"
                failures.append(f"{label} {col}")
            print(f"  {label} {col}: {b:.0f} -> {f:.0f} "
                  f"({(ratio - 1.0) * 100.0:+.1f}%){flag}")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="diff a fresh benchmark run against a baseline")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="allowed fractional slowdown "
                             "(default 0.50)")
    parser.add_argument("--format", choices=("auto", "gbench",
                                             "replay"),
                        default="auto")
    parser.add_argument("--allow-missing-baseline",
                        action="store_true",
                        help="warn and exit 0 when the baseline file "
                             "does not exist yet (new benches land "
                             "before their quiet-host baseline does)")
    opts = parser.parse_args()

    try:
        base_docs = loadJsonStream(opts.baseline)
    except OSError as e:
        if opts.allow_missing_baseline:
            print(f"bench-compare: WARNING: baseline "
                  f"{opts.baseline} unreadable ({e}); skipping "
                  f"comparison — commit a quiet-host baseline to "
                  f"arm the gate")
            return 0
        print(f"bench-compare: {e}", file=sys.stderr)
        return 2
    except ValueError as e:
        print(f"bench-compare: {e}", file=sys.stderr)
        return 2

    try:
        fresh_docs = loadJsonStream(opts.fresh)
    except (OSError, ValueError) as e:
        print(f"bench-compare: {e}", file=sys.stderr)
        return 2

    fmt = opts.format
    if fmt == "auto":
        fmt = detectFormat(base_docs)
        if fmt is None or fmt != detectFormat(fresh_docs):
            print("bench-compare: cannot detect a common format; "
                  "pass --format", file=sys.stderr)
            return 2

    print(f"bench-compare: {opts.baseline} vs {opts.fresh} "
          f"[{fmt}, tolerance {opts.tolerance:.0%}]")
    if fmt == "gbench":
        failures = compareGbench(base_docs[0], fresh_docs[0],
                                 opts.tolerance)
    else:
        failures = compareReplay(base_docs, fresh_docs,
                                 opts.tolerance)
    if failures:
        print(f"bench-compare: FAILED ({len(failures)} regression(s))")
        return 1
    print("bench-compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
