/**
 * @file
 * Unit tests for per-minute drive-IOPS occupancy (Section 4, Figs. 8/9).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ssd/occupancy.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore::ssd;
using sievestore::util::FatalError;
using sievestore::util::kUsPerMinute;

TEST(Occupancy, ExactPaperArithmetic)
{
    // 35,000 reads in one minute occupy 1 drive-second per second of
    // read service... i.e. 35,000 * (1/35000) s = 1 s of 60 s.
    DriveOccupancyTracker t(SsdModel::intelX25E());
    t.recordReads(0, 35000);
    EXPECT_NEAR(t.occupancy(0), 1.0 / 60.0, 1e-12);
    // 3,300 writes likewise cost 1 drive-second.
    t.recordWrites(0, 3300);
    EXPECT_NEAR(t.occupancy(0), 2.0 / 60.0, 1e-12);
}

TEST(Occupancy, FullDriveMinute)
{
    // 60 s of service in one minute = occupancy exactly 1.
    DriveOccupancyTracker t(SsdModel::intelX25E());
    t.recordReads(0, 35000 * 60);
    EXPECT_NEAR(t.occupancy(0), 1.0, 1e-9);
}

TEST(Occupancy, WritesCostTenPointSixTimesReads)
{
    const SsdModel m = SsdModel::intelX25E();
    DriveOccupancyTracker tr(m), tw(m);
    tr.recordReads(0, 1000);
    tw.recordWrites(0, 1000);
    EXPECT_NEAR(tw.occupancy(0) / tr.occupancy(0), 35000.0 / 3300.0,
                1e-9);
}

TEST(Occupancy, MinuteBucketing)
{
    DriveOccupancyTracker t(SsdModel::intelX25E());
    t.recordReads(0, 10);
    t.recordReads(kUsPerMinute - 1, 10);
    t.recordReads(kUsPerMinute, 5);
    ASSERT_EQ(t.minutes().size(), 2u);
    EXPECT_EQ(t.minutes()[0].read_ios, 20u);
    EXPECT_EQ(t.minutes()[1].read_ios, 5u);
}

TEST(Occupancy, DrivesSeriesIsCeiling)
{
    DriveOccupancyTracker t(SsdModel::intelX25E());
    t.recordWrites(0, 3300 * 30);          // 30 s -> 0.5 drives -> 1
    t.recordWrites(kUsPerMinute, 3300 * 90); // 90 s -> 1.5 drives -> 2
    const auto drives = t.drivesSeries();
    ASSERT_EQ(drives.size(), 2u);
    EXPECT_EQ(drives[0], 1u);
    EXPECT_EQ(drives[1], 2u);
    EXPECT_EQ(t.maxDrives(), 2u);
}

TEST(Occupancy, CoverageQueries)
{
    DriveOccupancyTracker t(SsdModel::intelX25E());
    // 999 light minutes and one 2-drive spike.
    for (int m = 0; m < 999; ++m)
        t.recordReads(uint64_t(m) * kUsPerMinute, 100);
    t.recordWrites(999ULL * kUsPerMinute, 3300 * 90);
    EXPECT_EQ(t.drivesForCoverage(0.99), 1u);
    EXPECT_EQ(t.drivesForCoverage(1.0), 2u);
    EXPECT_NEAR(t.coverageWithDrives(1), 0.999, 1e-9);
    EXPECT_DOUBLE_EQ(t.coverageWithDrives(2), 1.0);
}

TEST(Occupancy, IdleMinutesCountTowardCoverage)
{
    DriveOccupancyTracker t(SsdModel::intelX25E());
    t.recordReads(0, 1);
    t.recordReads(9ULL * kUsPerMinute, 35000 * 120); // 2 drives
    // 9 of 10 minutes need <= 1 drive (8 idle + 1 light).
    EXPECT_NEAR(t.coverageWithDrives(1), 0.9, 1e-9);
}

TEST(Occupancy, EmptyTracker)
{
    DriveOccupancyTracker t(SsdModel::intelX25E());
    EXPECT_EQ(t.maxDrives(), 0u);
    EXPECT_EQ(t.drivesForCoverage(0.999), 0u);
    EXPECT_DOUBLE_EQ(t.coverageWithDrives(0), 1.0);
    EXPECT_DOUBLE_EQ(t.occupancy(42), 0.0);
}

TEST(Occupancy, TotalsAndBytesWritten)
{
    DriveOccupancyTracker t(SsdModel::intelX25E());
    t.recordReads(0, 7);
    t.recordWrites(0, 3);
    EXPECT_EQ(t.totalReadIos(), 7u);
    EXPECT_EQ(t.totalWriteIos(), 3u);
    EXPECT_EQ(t.bytesWritten(), 3u * 4096u);
}

TEST(Occupancy, RejectsBadCoverage)
{
    DriveOccupancyTracker t(SsdModel::intelX25E());
    EXPECT_THROW(t.drivesForCoverage(0.0), FatalError);
    EXPECT_THROW(t.drivesForCoverage(1.5), FatalError);
}

TEST(Endurance, PaperTenYearClaim)
{
    // Section 5.1: <= 500M 512-byte writes/day and 1 PB endurance give
    // > 10 years: 1e15 / (5e8 * 512 * 365) = 10.7 years.
    const SsdModel m = SsdModel::intelX25E();
    const uint64_t writes_per_day_bytes = 500000000ULL * 512ULL;
    const double years =
        enduranceYears(m, writes_per_day_bytes * 7, 7.0);
    EXPECT_NEAR(years, 10.7, 0.05);
    EXPECT_GT(years, 10.0);
}

TEST(Endurance, ZeroWritesIsInfinite)
{
    const SsdModel m = SsdModel::intelX25E();
    EXPECT_TRUE(std::isinf(enduranceYears(m, 0, 7.0)));
}

} // namespace
