/**
 * @file
 * Storage backend tests: the analytic echo, the O_DIRECT file store
 * (pool and synchronous engines), and the fault-injection decorator —
 * including the headline degradation property: with a faulty device
 * the appliance falls back to the no-cache path for the failed I/Os
 * (errors are counted, nothing crashes) while every model-side
 * decision stays bit-identical to a healthy run.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/appliance.hpp"
#include "core/unsieved.hpp"
#include "storage/analytic_backend.hpp"
#include "storage/backend.hpp"
#include "storage/fault_backend.hpp"
#include "storage/file_backend.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::storage;
using sievestore::trace::BlockId;
using sievestore::trace::makeBlockId;

std::vector<StorageOp>
makeAlignedOps(size_t n, uint64_t first_page = 0,
               util::TimeUs time = 1000)
{
    std::vector<StorageOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i)
        ops.push_back(StorageOp{
            time, makeBlockId(1, (first_page + i) *
                                     trace::kBlocksPerPage)});
    return ops;
}

// ------------------------------------------------------------------
// AnalyticBackend
// ------------------------------------------------------------------

TEST(AnalyticBackend, EchoesModelServiceTimes)
{
    const ssd::SsdModel ssd = ssd::SsdModel::intelX25E();
    AnalyticBackend backend(ssd);
    const auto ops = makeAlignedOps(8);
    uint32_t lat[8];

    backend.readBlocks(ops, lat);
    for (uint32_t l : lat)
        EXPECT_EQ(l, backend.readServiceNs());
    backend.writeBlocks(ops, lat);
    for (uint32_t l : lat)
        EXPECT_EQ(l, backend.writeServiceNs());

    // X25-E datasheet: 35000 read IOPS, 3300 write IOPS.
    EXPECT_EQ(backend.readServiceNs(),
              static_cast<uint32_t>(1e9 / 35000.0 + 0.5));
    EXPECT_EQ(backend.writeServiceNs(),
              static_cast<uint32_t>(1e9 / 3300.0 + 0.5));

    const BackendStats &st = backend.stats();
    EXPECT_EQ(st.read_ops, 8u);
    EXPECT_EQ(st.write_ops, 8u);
    EXPECT_EQ(st.read_errors, 0u);
    EXPECT_EQ(st.read_ns, 8u * backend.readServiceNs());
    EXPECT_EQ(st.write_ns, 8u * backend.writeServiceNs());
    backend.checkInvariants();
}

TEST(AnalyticBackend, LatencyHistogramMatchesOpCounts)
{
    AnalyticBackend backend(ssd::SsdModel::intelX25E());
    const auto ops = makeAlignedOps(33);
    std::vector<uint32_t> lat(ops.size());
    backend.readBlocks(ops, lat);
    backend.trimBlocks(ops);
    uint64_t in_hist = 0;
    for (uint64_t c : backend.stats().read_latency_log2)
        in_hist += c;
    EXPECT_EQ(in_hist, 33u);
    EXPECT_EQ(backend.stats().trim_ops, 33u);
    backend.checkInvariants();
}

// ------------------------------------------------------------------
// makeBackend factory
// ------------------------------------------------------------------

TEST(MakeBackend, KindSelection)
{
    const ssd::SsdModel ssd = ssd::SsdModel::intelX25E();
    BackendConfig config;

    config.kind = BackendKind::None;
    EXPECT_EQ(makeBackend(config, ssd, 1024), nullptr);

    config.kind = BackendKind::Analytic;
    auto analytic = makeBackend(config, ssd, 1024);
    ASSERT_NE(analytic, nullptr);
    EXPECT_STREQ(analytic->name(), "analytic");

    config.kind = BackendKind::File;
    config.file.workers = 0;
    auto file = makeBackend(config, ssd, 1024);
    ASSERT_NE(file, nullptr);
    EXPECT_STREQ(file->name(), "file");
    // capacity_bytes == 0 derives the store from the cache size:
    // 1024 blocks = 512 KB = 128 4 KB slots.
    EXPECT_EQ(static_cast<FileBackend &>(*file).slots(), 128u);
}

TEST(MakeBackend, FactoryOverridesKind)
{
    const ssd::SsdModel ssd = ssd::SsdModel::intelX25E();
    BackendConfig config;
    config.kind = BackendKind::None;
    config.factory = [&ssd]() {
        return std::make_unique<AnalyticBackend>(ssd);
    };
    auto backend = makeBackend(config, ssd, 1024);
    ASSERT_NE(backend, nullptr);
    EXPECT_STREQ(backend->name(), "analytic");
}

// ------------------------------------------------------------------
// FileBackend
// ------------------------------------------------------------------

void
exerciseFileBackend(unsigned workers)
{
    FileBackendConfig config;
    config.capacity_bytes = 64 * trace::kPageBytes;
    config.workers = workers;
    config.engine = FileBackendConfig::Engine::Sync;
    FileBackend backend(config);
    EXPECT_EQ(backend.slots(), 64u);
    EXPECT_FALSE(backend.stats().io_uring);

    const auto ops = makeAlignedOps(200);
    std::vector<uint32_t> lat(ops.size());

    backend.writeBlocks(ops, lat);
    for (uint32_t l : lat)
        EXPECT_NE(l, kFailedOp);
    backend.readBlocks(ops, lat);
    for (uint32_t l : lat)
        EXPECT_NE(l, kFailedOp);
    backend.flush();

    const BackendStats &st = backend.stats();
    EXPECT_EQ(st.read_ops, 200u);
    EXPECT_EQ(st.write_ops, 200u);
    EXPECT_EQ(st.read_errors, 0u);
    EXPECT_EQ(st.write_errors, 0u);
    EXPECT_GT(st.read_ns, 0u);
    EXPECT_GT(st.write_ns, 0u);
    backend.checkInvariants();
}

TEST(FileBackend, SynchronousFallbackEngine)
{
    // workers = 0: every op runs inline on the submitting thread —
    // the always-built path CI pins via SIEVE_STORAGE_ENGINE=sync.
    exerciseFileBackend(0);
}

TEST(FileBackend, WorkerPoolEngine)
{
    exerciseFileBackend(3);
}

TEST(FileBackend, CollidingSlotsStillServe)
{
    // More distinct pages than slots: direct-mapped collisions must
    // change bytes only, never success/failure of the op.
    FileBackendConfig config;
    config.capacity_bytes = 4 * trace::kPageBytes;
    config.workers = 0;
    config.engine = FileBackendConfig::Engine::Sync;
    FileBackend backend(config);
    const auto ops = makeAlignedOps(64);
    std::vector<uint32_t> lat(ops.size());
    backend.writeBlocks(ops, lat);
    backend.readBlocks(ops, lat);
    EXPECT_EQ(backend.stats().read_errors, 0u);
    EXPECT_EQ(backend.stats().write_errors, 0u);
    backend.checkInvariants();
}

// ------------------------------------------------------------------
// FaultInjectingBackend
// ------------------------------------------------------------------

std::unique_ptr<Backend>
analyticInner()
{
    return std::make_unique<AnalyticBackend>(
        ssd::SsdModel::intelX25E());
}

TEST(FaultBackend, ShortReadEveryN)
{
    FaultPlan plan;
    plan.read_short_every = 3; // ops 3, 6, 9, ... fail
    FaultInjectingBackend backend(analyticInner(), plan);
    const auto ops = makeAlignedOps(9);
    std::vector<uint32_t> lat(ops.size());
    backend.readBlocks(ops, lat);
    EXPECT_EQ(backend.stats().read_errors, 3u);
    EXPECT_EQ(backend.stats().read_ops, 6u);
    EXPECT_EQ(lat[2], kFailedOp);
    EXPECT_EQ(lat[5], kFailedOp);
    EXPECT_NE(lat[0], kFailedOp);
    EXPECT_EQ(backend.injected(), 3u);
    backend.checkInvariants();
}

TEST(FaultBackend, WriteEnospcEveryN)
{
    FaultPlan plan;
    plan.write_enospc_every = 2;
    FaultInjectingBackend backend(analyticInner(), plan);
    const auto ops = makeAlignedOps(10);
    std::vector<uint32_t> lat(ops.size());
    backend.writeBlocks(ops, lat);
    EXPECT_EQ(backend.stats().write_errors, 5u);
    EXPECT_EQ(backend.stats().write_ops, 5u);
    backend.checkInvariants();
}

TEST(FaultBackend, RejectsUnalignedOps)
{
    FaultInjectingBackend backend(analyticInner(), FaultPlan{});
    // One aligned op, one whose page id is mid-unit (an O_DIRECT
    // device would refuse it).
    const StorageOp ops[2] = {
        {1000, makeBlockId(1, 0)},
        {1000, makeBlockId(1, 3)},
    };
    uint32_t lat[2];
    backend.readBlocks(ops, lat);
    EXPECT_NE(lat[0], kFailedOp);
    EXPECT_EQ(lat[1], kFailedOp);
    EXPECT_EQ(backend.stats().read_errors, 1u);
    backend.checkInvariants();
}

TEST(FaultBackend, MidBatchDeviceDropout)
{
    FaultPlan plan;
    plan.fail_batch_from = 4; // device drops after the 4th op
    FaultInjectingBackend backend(analyticInner(), plan);
    const auto ops = makeAlignedOps(10);
    std::vector<uint32_t> lat(ops.size());
    backend.writeBlocks(ops, lat);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NE(lat[i], kFailedOp) << i;
    for (size_t i = 4; i < 10; ++i)
        EXPECT_EQ(lat[i], kFailedOp) << i;
    EXPECT_EQ(backend.stats().write_ops, 4u);
    EXPECT_EQ(backend.stats().write_errors, 6u);
    backend.checkInvariants();
}

TEST(FaultBackend, WrapsFileBackend)
{
    FaultPlan plan;
    plan.read_short_every = 5;
    auto inner = [] {
        FileBackendConfig config;
        config.capacity_bytes = 16 * trace::kPageBytes;
        config.workers = 0;
        config.engine = FileBackendConfig::Engine::Sync;
        return std::make_unique<FileBackend>(config);
    };
    FaultInjectingBackend backend(inner(), plan);
    const auto ops = makeAlignedOps(10);
    std::vector<uint32_t> lat(ops.size());
    backend.writeBlocks(ops, lat);
    backend.readBlocks(ops, lat);
    EXPECT_EQ(backend.stats().read_errors, 2u);
    EXPECT_EQ(backend.stats().read_ops, 8u);
    backend.checkInvariants();
}

// ------------------------------------------------------------------
// Appliance degradation under a faulty device
// ------------------------------------------------------------------

trace::Request
makeRequest(uint64_t time, uint64_t offset, uint32_t len, trace::Op op)
{
    trace::Request r;
    r.time = time;
    r.volume = 1;
    r.server = 0;
    r.op = op;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = 1000;
    return r;
}

void
replayWorkload(core::Appliance &app)
{
    // Allocate three pages, then re-read them (hits -> device reads)
    // and overwrite one (hits -> device writes).
    app.processRequest(makeRequest(1000, 0, 24, trace::Op::Read));
    app.processRequest(makeRequest(10000000, 0, 24, trace::Op::Read));
    app.processRequest(makeRequest(20000000, 0, 8, trace::Op::Write));
    app.processRequest(makeRequest(30000000, 0, 24, trace::Op::Read));
    app.finishTrace();
    app.checkInvariants();
}

core::ApplianceConfig
faultTestConfig()
{
    core::ApplianceConfig cfg;
    cfg.cache_blocks = 1024;
    cfg.track_occupancy = false;
    return cfg;
}

TEST(ApplianceDegradation, FaultyReadsFallThroughWithoutCrash)
{
    // Healthy reference run.
    core::ApplianceConfig clean_cfg = faultTestConfig();
    clean_cfg.backend.kind = BackendKind::Analytic;
    core::Appliance clean(clean_cfg,
                          std::make_unique<core::AodPolicy>());
    replayWorkload(clean);

    // Same workload with every 2nd read and every 3rd write failing.
    core::ApplianceConfig faulty_cfg = faultTestConfig();
    faulty_cfg.backend.factory = [] {
        FaultPlan plan;
        plan.read_short_every = 2;
        plan.write_enospc_every = 3;
        return std::make_unique<FaultInjectingBackend>(
            analyticInner(), plan);
    };
    core::Appliance faulty(faulty_cfg,
                           std::make_unique<core::AodPolicy>());
    replayWorkload(faulty);

    const core::DailyReport c = clean.totals();
    const core::DailyReport f = faulty.totals();

    // Device failures must not leak into any model-side decision:
    // the paper's accounting is bit-identical to the healthy run.
    EXPECT_EQ(f.accesses, c.accesses);
    EXPECT_EQ(f.hits, c.hits);
    EXPECT_EQ(f.read_hits, c.read_hits);
    EXPECT_EQ(f.write_hits, c.write_hits);
    EXPECT_EQ(f.allocation_write_blocks, c.allocation_write_blocks);
    EXPECT_EQ(f.ssd_read_ios, c.ssd_read_ios);
    EXPECT_EQ(f.ssd_write_ios, c.ssd_write_ios);
    EXPECT_EQ(f.ssd_alloc_ios, c.ssd_alloc_ios);

    // The failed I/Os degraded to the no-cache path: counted as
    // errors, with successes + errors covering every model charge.
    EXPECT_GT(f.storage_read_errors, 0u);
    EXPECT_GT(f.storage_write_errors, 0u);
    EXPECT_EQ(f.storage_read_ios + f.storage_read_errors,
              c.storage_read_ios + c.storage_read_errors);
    EXPECT_EQ(f.storage_write_ios + f.storage_write_errors,
              c.storage_write_ios + c.storage_write_errors);

    // The appliance only ever emits 4 KB-unit-aligned ops, so none
    // of the injected failures came from the alignment check.
    const auto *backend = dynamic_cast<const FaultInjectingBackend *>(
        faulty.storageBackend());
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->stats().read_errors +
                  backend->stats().write_errors,
              backend->injected());
}

TEST(ApplianceStorage, AnalyticCountsMatchModelCharges)
{
    core::ApplianceConfig cfg = faultTestConfig();
    cfg.backend.kind = BackendKind::Analytic;
    core::Appliance app(cfg, std::make_unique<core::AodPolicy>());
    replayWorkload(app);

    const core::DailyReport t = app.totals();
    EXPECT_GT(t.ssd_read_ios, 0u);
    EXPECT_EQ(t.storage_read_ios, t.ssd_read_ios);
    EXPECT_EQ(t.storage_write_ios, t.ssd_write_ios + t.ssd_alloc_ios);
    EXPECT_EQ(t.storage_read_errors, 0u);
    EXPECT_EQ(t.storage_write_errors, 0u);

    // Per-op latency is the model's service time, so the totals are
    // exact multiples.
    const auto *backend = dynamic_cast<const AnalyticBackend *>(
        app.storageBackend());
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(t.storage_read_ns,
              t.storage_read_ios * backend->readServiceNs());
    EXPECT_EQ(t.storage_write_ns,
              t.storage_write_ios * backend->writeServiceNs());
}

TEST(ApplianceStorage, NoneBackendSkipsEmission)
{
    core::ApplianceConfig cfg = faultTestConfig();
    cfg.backend.kind = BackendKind::None;
    core::Appliance app(cfg, std::make_unique<core::AodPolicy>());
    replayWorkload(app);
    EXPECT_EQ(app.storageBackend(), nullptr);
    const core::DailyReport t = app.totals();
    EXPECT_GT(t.ssd_read_ios, 0u);
    EXPECT_EQ(t.storage_read_ios, 0u);
    EXPECT_EQ(t.storage_write_ios, 0u);
}

TEST(ApplianceStorage, FileBackendKeepsModelFieldsIdentical)
{
    core::ApplianceConfig analytic_cfg = faultTestConfig();
    analytic_cfg.backend.kind = BackendKind::Analytic;
    core::Appliance a(analytic_cfg,
                      std::make_unique<core::AodPolicy>());
    replayWorkload(a);

    core::ApplianceConfig file_cfg = faultTestConfig();
    file_cfg.backend.kind = BackendKind::File;
    file_cfg.backend.file.workers = 0;
    file_cfg.backend.file.engine = FileBackendConfig::Engine::Sync;
    core::Appliance f(file_cfg, std::make_unique<core::AodPolicy>());
    replayWorkload(f);

    const core::DailyReport ta = a.totals();
    const core::DailyReport tf = f.totals();
    EXPECT_EQ(tf.hits, ta.hits);
    EXPECT_EQ(tf.ssd_read_ios, ta.ssd_read_ios);
    EXPECT_EQ(tf.ssd_write_ios, ta.ssd_write_ios);
    EXPECT_EQ(tf.ssd_alloc_ios, ta.ssd_alloc_ios);
    EXPECT_EQ(tf.storage_read_ios + tf.storage_read_errors,
              ta.storage_read_ios + ta.storage_read_errors);
    // Measured latencies differ from the model's — that divergence
    // is the feature, not a bug.
    EXPECT_GT(tf.storage_read_ns + tf.storage_write_ns, 0u);
}

} // namespace
