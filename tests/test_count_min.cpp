/**
 * @file
 * Count-min sketch tests: estimates never underestimate (before
 * aging), saturation and halving behave as documented, and the grid
 * footprint is fixed at construction — the properties the W-TinyLFU
 * admission filter leans on.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "util/count_min.hpp"
#include "util/random.hpp"

namespace {

using sievestore::util::CountMinSketch;
using sievestore::util::Rng;

TEST(CountMin, NeverUnderestimatesBeforeAging)
{
    CountMinSketch sketch(1024, 3);
    std::unordered_map<uint64_t, uint32_t> truth;
    Rng rng(11);
    // Stay below the age period so no halving obscures the bound.
    const uint64_t adds = sketch.agePeriod() / 2;
    for (uint64_t i = 0; i < adds; ++i) {
        const uint64_t key = rng.nextBelow(4096);
        sketch.add(key);
        ++truth[key];
    }
    for (const auto &[key, count] : truth) {
        const uint32_t capped =
            std::min<uint32_t>(count, CountMinSketch::kMaxCount);
        EXPECT_GE(sketch.estimate(key), capped) << "key " << key;
    }
    sketch.checkInvariants();
}

TEST(CountMin, SaturatesAtMaxCount)
{
    CountMinSketch sketch(64, 1);
    for (int i = 0; i < 100; ++i)
        sketch.add(7);
    EXPECT_EQ(sketch.estimate(7), CountMinSketch::kMaxCount);
    sketch.checkInvariants();
}

TEST(CountMin, HalvingAgesFrequencies)
{
    CountMinSketch sketch(64, 1);
    for (int i = 0; i < 8; ++i)
        sketch.add(7);
    const uint32_t before = sketch.estimate(7);
    sketch.halve();
    EXPECT_EQ(sketch.estimate(7), before / 2);
    sketch.halve();
    EXPECT_EQ(sketch.estimate(7), before / 4);
    sketch.checkInvariants();
}

TEST(CountMin, AutomaticAgingKeepsCountersBounded)
{
    CountMinSketch sketch(16, 2);
    Rng rng(3);
    // Far beyond several age periods: counters stay within
    // saturation and the aging countdown never goes overdue.
    for (uint64_t i = 0; i < sketch.agePeriod() * 5; ++i) {
        sketch.add(rng.nextBelow(8));
        if (i % 257 == 0)
            sketch.checkInvariants();
    }
    sketch.checkInvariants();
}

TEST(CountMin, ColdKeysEstimateNearZero)
{
    CountMinSketch sketch(4096, 9);
    for (int i = 0; i < 500; ++i)
        sketch.add(1);
    // A wide grid keeps collision inflation negligible for one hot
    // key; a never-added key must read (close to) zero.
    EXPECT_LE(sketch.estimate(999999), 1u);
}

TEST(CountMin, GeometryAndFootprintFixedAtConstruction)
{
    CountMinSketch sketch(1000, 0);
    EXPECT_EQ(sketch.width(), 1024u) << "next power of two above 1000";
    const uint64_t bytes = sketch.memoryBytes();
    EXPECT_EQ(bytes, sketch.width() * CountMinSketch::kDepth);
    for (uint64_t i = 0; i < 50000; ++i)
        sketch.add(i);
    EXPECT_EQ(sketch.memoryBytes(), bytes);

    CountMinSketch tiny(1, 0);
    EXPECT_EQ(tiny.width(), 16u) << "width floor";
}

TEST(CountMin, SeedsDecorrelateSketches)
{
    // Different seeds place the same key in different slots; equality
    // of all estimates across two seeds would mean the seed is dead.
    CountMinSketch a(64, 1);
    CountMinSketch b(64, 2);
    for (uint64_t k = 0; k < 32; ++k)
        a.add(k * 3);
    bool any_difference = false;
    for (uint64_t k = 0; k < 64; ++k)
        any_difference =
            any_difference || a.estimate(k) != b.estimate(k);
    EXPECT_TRUE(any_difference);
}

} // namespace
