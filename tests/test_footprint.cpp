/**
 * @file
 * Footprint regression tests: the memoryBytes() numbers the paper's
 * cost claims rest on, pinned against the util/footprint.hpp
 * convention so accounting drift is caught immediately.
 *
 * Section 3.3 sizes the two sieve tiers: the IMCT is a fixed array of
 * windowed counters (metastate bounded regardless of the block
 * population) and the MCT tracks only IMCT-qualified blocks. The
 * refactor moved the MCT and the block cache onto the flat index, so
 * these tests also pin the flat slot formula and the before/after
 * comparison against the node-based reference engine.
 */

#include <gtest/gtest.h>

#include "cache/block_cache.hpp"
#include "cache/replacement.hpp"
#include "core/imct.hpp"
#include "core/mct.hpp"
#include "core/windowed_counter.hpp"
#include "util/flat_index.hpp"
#include "util/footprint.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::core;
using namespace sievestore::cache;
using sievestore::trace::BlockId;

WindowSpec
paperWindow()
{
    // W = 8 h in k = 4 subwindows, the paper's tuned configuration.
    return WindowSpec::paperDefault();
}

TEST(Footprint, WindowedCounterIs24Bytes)
{
    // k = 8 max subwindows at uint16_t each plus the 8-byte cursor:
    // the per-entry unit every Section 3.3 size is a multiple of.
    EXPECT_EQ(sizeof(WindowedCounter), 24u);
}

TEST(Footprint, ImctIsSlotsTimesCounterSize)
{
    // The IMCT's whole point (Section 3.3): metastate is slots * entry
    // size, independent of how many blocks ever hash into it.
    const Imct imct(1 << 12, paperWindow());
    EXPECT_EQ(imct.memoryBytes(), (1u << 12) * sizeof(WindowedCounter));
    const Imct big(1 << 20, paperWindow());
    EXPECT_EQ(big.memoryBytes(), (1u << 20) * sizeof(WindowedCounter));
}

TEST(Footprint, MctIsAllocatedSlotsTimesSlotBytes)
{
    // Flat-table convention: allocated slots x (key + payload + 1
    // metadata byte). With a 24-byte WindowedCounter payload that is
    // 33 bytes per slot.
    Mct mct(paperWindow());
    EXPECT_EQ(mct.memoryBytes(), 0u) << "empty MCT allocates nothing";
    const util::TimeUs t = util::makeTime(0, 1);
    for (BlockId b = 0; b < 100; ++b)
        mct.admit(b, t);
    // 100 entries need 128 slots at the 7/8 load-factor bound.
    EXPECT_EQ(mct.memoryBytes(),
              util::flatIndexFootprintBytes(128, 8 + 24));
    EXPECT_EQ(mct.memoryBytes(), 128u * 33u);
}

TEST(Footprint, FlatIndexFormulaIsSlotsTimesSlotBytesPlusOne)
{
    EXPECT_EQ(util::flatIndexFootprintBytes(16, 16), 16u * 17u);
    EXPECT_EQ(util::flatIndexFootprintBytes(1 << 20, 32),
              (1ull << 20) * 33u);
    // The templated table agrees with the free function.
    util::FlatIndex<uint64_t> idx(1000);
    EXPECT_EQ(idx.memoryBytes(),
              util::flatIndexFootprintBytes(idx.slotCount(), 16));
}

TEST(Footprint, CacheMemoryCoversResidencyAndReplacementState)
{
    // The doc-drift fix: BlockCache::memoryBytes() must include the
    // replacement policy's bookkeeping in BOTH engines, so the two
    // are comparable. A custom-policy cache must therefore report
    // more than its residency index alone.
    BlockCache custom(256,
                      makeReferencePolicy({EvictionKind::Lru, 1}, 256));
    for (BlockId b = 0; b < 256; ++b)
        custom.insert(b);
    const uint64_t set_only = util::flatIndexFootprintBytes(
        512, sizeof(uint64_t) + 2 * sizeof(uint64_t));
    EXPECT_GT(custom.memoryBytes(), set_only)
        << "reference engine must add its policy's node containers";
}

TEST(Footprint, FlatEngineAtOrBelowReferencePerResidentBlock)
{
    // The acceptance bar: per-resident-block metadata of the flat
    // engine no higher than the node-based seed, for every kind, at
    // full occupancy.
    for (const EvictionKind kind :
         {EvictionKind::Lru, EvictionKind::Fifo, EvictionKind::Clock,
          EvictionKind::Lfu, EvictionKind::Random}) {
        const uint64_t capacity = 1 << 14;
        BlockCache flat(capacity, EvictionSpec{kind, 1});
        BlockCache reference(capacity,
                             makeReferencePolicy({kind, 1}, capacity));
        for (BlockId b = 0; b < capacity; ++b) {
            flat.insert(b);
            reference.insert(b);
        }
        const double flat_per_block =
            static_cast<double>(flat.memoryBytes()) /
            static_cast<double>(capacity);
        const double ref_per_block =
            static_cast<double>(reference.memoryBytes()) /
            static_cast<double>(capacity);
        EXPECT_LE(flat_per_block, ref_per_block)
            << evictionKindName(kind);
#ifndef SIEVE_REFERENCE_CACHE
        // And concretely: at most 2 slots per block (power-of-two
        // growth) x 25 bytes (8 key + 16 policy payload + 1 dib)
        // plus at most 2 x 16-byte order-arena nodes per block.
        EXPECT_LE(flat_per_block, 82.0) << evictionKindName(kind);
#endif
    }
}

} // namespace
