/**
 * @file
 * Unit and property tests for the flat open-addressing block index
 * and the index-linked list arena behind the flat cache engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/flat_index.hpp"
#include "util/random.hpp"

namespace {

using sievestore::util::FlatIndex;
using sievestore::util::IndexList;
using sievestore::util::Rng;

// ---- FlatIndex ----------------------------------------------------

TEST(FlatIndex, EmptyTableFindsNothing)
{
    FlatIndex<uint64_t> idx;
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.size(), 0u);
    EXPECT_EQ(idx.slotCount(), 0u);
    EXPECT_EQ(idx.find(42), nullptr);
    EXPECT_FALSE(idx.contains(42));
    EXPECT_FALSE(idx.erase(42));
    idx.checkInvariants();
}

TEST(FlatIndex, InsertFindErase)
{
    FlatIndex<uint64_t> idx;
    auto [p, inserted] = idx.findOrInsert(7);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*p, 0u); // value-initialized
    *p = 99;
    EXPECT_EQ(idx.size(), 1u);

    auto [q, again] = idx.findOrInsert(7);
    EXPECT_FALSE(again);
    EXPECT_EQ(*q, 99u);
    EXPECT_EQ(*idx.find(7), 99u);

    EXPECT_TRUE(idx.erase(7));
    EXPECT_FALSE(idx.contains(7));
    EXPECT_TRUE(idx.empty());
    idx.checkInvariants();
}

TEST(FlatIndex, ReserveAvoidsRehash)
{
    FlatIndex<uint32_t> idx;
    idx.reserve(1000);
    const size_t slots = idx.slotCount();
    EXPECT_GE(slots, 1024u);
    for (uint64_t k = 0; k < 1000; ++k)
        idx.findOrInsert(k);
    EXPECT_EQ(idx.slotCount(), slots) << "reserve(1000) must admit "
                                         "1000 entries without growth";
    EXPECT_LE(idx.loadFactor(), 7.0 / 8.0);
    idx.checkInvariants();
}

TEST(FlatIndex, GrowthPreservesEntries)
{
    FlatIndex<uint64_t> idx; // starts at the 16-slot minimum
    for (uint64_t k = 0; k < 5000; ++k)
        *idx.findOrInsert(k * 2654435761).first = k;
    EXPECT_EQ(idx.size(), 5000u);
    for (uint64_t k = 0; k < 5000; ++k) {
        const uint64_t *p = idx.find(k * 2654435761);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(*p, k);
    }
    idx.checkInvariants();
}

TEST(FlatIndex, ClearKeepsSlots)
{
    FlatIndex<uint8_t> idx(500);
    for (uint64_t k = 0; k < 500; ++k)
        idx.findOrInsert(k);
    const size_t slots = idx.slotCount();
    const uint64_t bytes = idx.memoryBytes();
    idx.clear();
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.slotCount(), slots);
    EXPECT_EQ(idx.memoryBytes(), bytes);
    EXPECT_FALSE(idx.contains(3));
    // The arena is immediately reusable.
    for (uint64_t k = 1000; k < 1500; ++k)
        idx.findOrInsert(k);
    EXPECT_EQ(idx.size(), 500u);
    idx.checkInvariants();
}

TEST(FlatIndex, EraseIfRemovesExactlyMatches)
{
    FlatIndex<uint64_t> idx;
    for (uint64_t k = 0; k < 1000; ++k)
        *idx.findOrInsert(k).first = k;
    const size_t removed =
        idx.eraseIf([](uint64_t key, const uint64_t &) {
            return key % 3 == 0;
        });
    EXPECT_EQ(removed, 334u); // 0, 3, ..., 999
    EXPECT_EQ(idx.size(), 666u);
    for (uint64_t k = 0; k < 1000; ++k)
        EXPECT_EQ(idx.contains(k), k % 3 != 0) << k;
    idx.checkInvariants();
}

TEST(FlatIndex, EraseWithSeesFinalPayload)
{
    FlatIndex<uint64_t> idx;
    *idx.findOrInsert(5).first = 123;
    uint64_t seen = 0;
    EXPECT_TRUE(idx.eraseWith(5, [&](const uint64_t &v) { seen = v; }));
    EXPECT_EQ(seen, 123u);
    EXPECT_FALSE(idx.eraseWith(5, [&](const uint64_t &) {
        ADD_FAILURE() << "callback on absent key";
    }));
}

TEST(FlatIndex, ForEachVisitsEveryEntryOnce)
{
    FlatIndex<uint64_t> idx;
    for (uint64_t k = 10; k < 60; ++k)
        *idx.findOrInsert(k).first = k + 1;
    std::vector<uint64_t> keys;
    idx.forEach([&](uint64_t key, uint64_t &payload) {
        EXPECT_EQ(payload, key + 1);
        keys.push_back(key);
    });
    std::sort(keys.begin(), keys.end());
    ASSERT_EQ(keys.size(), 50u);
    for (uint64_t k = 0; k < 50; ++k)
        EXPECT_EQ(keys[k], k + 10);
}

TEST(FlatIndex, FootprintMatchesConvention)
{
    FlatIndex<uint64_t> idx;
    EXPECT_EQ(idx.memoryBytes(), 0u);
    idx.findOrInsert(1);
    // 16 slots x (16-byte slot + 1 dib byte).
    EXPECT_EQ(idx.memoryBytes(),
              sievestore::util::flatIndexFootprintBytes(16, 16));
}

/**
 * Churn property test: the table must stay in lockstep with
 * std::unordered_map through a long random mix of inserts, erases,
 * lookups, and payload updates — the backward-shift deletion path is
 * the part most worth hammering.
 */
TEST(FlatIndex, ChurnMatchesUnorderedMap)
{
    FlatIndex<uint64_t> idx;
    std::unordered_map<uint64_t, uint64_t> ref;
    Rng rng(1234);
    for (int op = 0; op < 200000; ++op) {
        const uint64_t key = rng.nextBelow(512); // dense → collisions
        switch (rng.nextBelow(4)) {
          case 0: { // insert or touch
            auto [p, inserted] = idx.findOrInsert(key);
            auto [it, ref_inserted] = ref.try_emplace(key, 0);
            ASSERT_EQ(inserted, ref_inserted);
            *p += 1;
            it->second += 1;
            break;
          }
          case 1: // erase
            ASSERT_EQ(idx.erase(key), ref.erase(key) > 0);
            break;
          case 2: { // lookup
            const uint64_t *p = idx.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(p != nullptr, it != ref.end());
            if (p) {
                ASSERT_EQ(*p, it->second);
            }
            break;
          }
          default:
            ASSERT_EQ(idx.contains(key), ref.count(key) > 0);
        }
        ASSERT_EQ(idx.size(), ref.size());
    }
    idx.checkInvariants();
    // Full-content audit at the end.
    size_t visited = 0;
    idx.forEach([&](uint64_t key, uint64_t &payload) {
        auto it = ref.find(key);
        ASSERT_NE(it, ref.end());
        ASSERT_EQ(payload, it->second);
        ++visited;
    });
    EXPECT_EQ(visited, ref.size());
}

TEST(FlatIndex, EraseIfUnderChurnKeepsInvariants)
{
    FlatIndex<uint64_t> idx;
    std::unordered_map<uint64_t, uint64_t> ref;
    Rng rng(9);
    for (int round = 0; round < 30; ++round) {
        for (int i = 0; i < 2000; ++i) {
            const uint64_t key = rng.next();
            *idx.findOrInsert(key).first = key / 2;
            ref[key] = key / 2;
        }
        const uint64_t pivot = rng.next();
        const size_t removed = idx.eraseIf(
            [&](uint64_t key, const uint64_t &) { return key < pivot; });
        size_t ref_removed = 0;
        for (auto it = ref.begin(); it != ref.end();)
            if (it->first < pivot) {
                it = ref.erase(it);
                ++ref_removed;
            } else {
                ++it;
            }
        ASSERT_EQ(removed, ref_removed);
        ASSERT_EQ(idx.size(), ref.size());
        idx.checkInvariants();
    }
}

// ---- IndexList ----------------------------------------------------

/** Collect values front to back. */
std::vector<uint64_t>
toVector(const IndexList &list)
{
    std::vector<uint64_t> out;
    for (uint32_t n = list.head(); n != IndexList::kNull;
         n = list.next(n))
        out.push_back(list.value(n));
    return out;
}

TEST(IndexList, EmptyList)
{
    IndexList list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.head(), IndexList::kNull);
    EXPECT_EQ(list.tail(), IndexList::kNull);
    list.checkInvariants();
}

TEST(IndexList, PushFrontOrdersLikeAStack)
{
    IndexList list;
    list.pushFront(1);
    list.pushFront(2);
    list.pushFront(3);
    EXPECT_EQ(toVector(list), (std::vector<uint64_t>{3, 2, 1}));
    EXPECT_EQ(list.value(list.tail()), 1u);
    list.checkInvariants();
}

TEST(IndexList, InsertBeforeNullAppends)
{
    IndexList list;
    list.insertBefore(IndexList::kNull, 1);
    list.insertBefore(IndexList::kNull, 2);
    const uint32_t mid = list.insertBefore(list.tail(), 9);
    EXPECT_EQ(toVector(list), (std::vector<uint64_t>{1, 9, 2}));
    EXPECT_EQ(list.value(mid), 9u);
    list.checkInvariants();
}

TEST(IndexList, MoveToFrontPromotes)
{
    IndexList list;
    list.insertBefore(IndexList::kNull, 1);
    const uint32_t two = list.insertBefore(IndexList::kNull, 2);
    list.insertBefore(IndexList::kNull, 3);
    list.moveToFront(two);
    EXPECT_EQ(toVector(list), (std::vector<uint64_t>{2, 1, 3}));
    list.moveToFront(list.head()); // no-op on the head
    EXPECT_EQ(toVector(list), (std::vector<uint64_t>{2, 1, 3}));
    list.checkInvariants();
}

TEST(IndexList, EraseRecyclesNodes)
{
    IndexList list;
    const uint32_t a = list.pushFront(1);
    list.pushFront(2);
    list.erase(a);
    EXPECT_EQ(list.size(), 1u);
    list.checkInvariants();
    // The freed index is reused before the arena grows.
    const uint32_t b = list.pushFront(3);
    EXPECT_EQ(b, a);
    EXPECT_EQ(toVector(list), (std::vector<uint64_t>{3, 2}));
    list.checkInvariants();
}

TEST(IndexList, EraseHeadAndTail)
{
    IndexList list;
    const uint32_t a = list.insertBefore(IndexList::kNull, 1);
    list.insertBefore(IndexList::kNull, 2);
    const uint32_t c = list.insertBefore(IndexList::kNull, 3);
    list.erase(a);
    EXPECT_EQ(list.value(list.head()), 2u);
    list.erase(c);
    EXPECT_EQ(list.value(list.tail()), 2u);
    EXPECT_EQ(list.head(), list.tail());
    list.checkInvariants();
    list.erase(list.head());
    EXPECT_TRUE(list.empty());
    list.checkInvariants();
}

TEST(IndexList, ChurnMatchesStdList)
{
    // Random interleaving of append / promote / erase against the
    // obvious reference; order must match exactly after every step.
    IndexList list;
    std::vector<uint64_t> ref; // front = index 0
    std::vector<uint32_t> nodes;
    Rng rng(77);
    uint64_t next_value = 0;
    for (int op = 0; op < 20000; ++op) {
        const uint64_t choice = rng.nextBelow(3);
        if (choice == 0 || ref.empty()) {
            nodes.push_back(
                list.insertBefore(IndexList::kNull, next_value));
            ref.push_back(next_value);
            ++next_value;
        } else if (choice == 1) {
            const size_t i = rng.nextBelow(ref.size());
            list.moveToFront(nodes[i]);
            const uint64_t v = ref[i];
            const uint32_t n = nodes[i];
            ref.erase(ref.begin() + static_cast<ptrdiff_t>(i));
            nodes.erase(nodes.begin() + static_cast<ptrdiff_t>(i));
            ref.insert(ref.begin(), v);
            nodes.insert(nodes.begin(), n);
        } else {
            const size_t i = rng.nextBelow(ref.size());
            list.erase(nodes[i]);
            ref.erase(ref.begin() + static_cast<ptrdiff_t>(i));
            nodes.erase(nodes.begin() + static_cast<ptrdiff_t>(i));
        }
        ASSERT_EQ(list.size(), ref.size());
    }
    list.checkInvariants();
    EXPECT_EQ(toVector(list), ref);
}

TEST(IndexList, FootprintIsSixteenBytesPerArenaNode)
{
    IndexList list;
    EXPECT_EQ(list.memoryBytes(), 0u);
    list.reserve(4);
    for (int i = 0; i < 4; ++i)
        list.pushFront(static_cast<uint64_t>(i));
    EXPECT_EQ(list.memoryBytes(), 4u * 16u);
    // Erasing recycles: the arena (and footprint) does not shrink.
    list.erase(list.head());
    EXPECT_EQ(list.memoryBytes(), 4u * 16u);
}

} // namespace
