/**
 * @file
 * Tests for the Section 3.1 analysis: Belady MIN, Belady with selective
 * allocation, and the paper's counterexample showing selective Belady
 * maximizes hits but not allocation-writes.
 */

#include <gtest/gtest.h>

#include "cache/belady.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::cache;
using sievestore::trace::BlockId;
using sievestore::util::Rng;

/** The paper's stream: a,a,b,b,a,a,c,c,a,a,d,d,... */
std::vector<BlockId>
paperStream(size_t pairs)
{
    std::vector<BlockId> s;
    BlockId fresh = 1;
    for (size_t i = 0; i < pairs; ++i) {
        s.push_back(0); // 'a'
        s.push_back(0);
        s.push_back(fresh);
        s.push_back(fresh);
        ++fresh;
    }
    return s;
}

TEST(FutureIndex, NextUseQueries)
{
    const std::vector<BlockId> stream = {5, 7, 5, 9, 5};
    FutureIndex idx(stream);
    EXPECT_EQ(idx.nextUse(5, 0), 2u);
    EXPECT_EQ(idx.nextUse(5, 2), 4u);
    EXPECT_EQ(idx.nextUse(5, 4), FutureIndex::kNever);
    EXPECT_EQ(idx.nextUse(7, 1), FutureIndex::kNever);
    EXPECT_EQ(idx.nextUse(42, 0), FutureIndex::kNever);
    // Position "before the stream" sees the first use.
    EXPECT_EQ(idx.nextUse(9, 0), 3u);
}

TEST(Belady, PaperCounterexample)
{
    // With a 1-entry cache on a,a,b,b,a,a,c,c,...: Belady-selective
    // converges to a 50 % hit ratio while every miss allocates; pinning
    // 'a' captures nearly the same hits with exactly one allocation.
    const auto stream = paperStream(250); // 1000 accesses
    const auto selective = simulateBeladySelective(stream, 1);
    EXPECT_NEAR(selective.hitRatio(), 0.5, 0.01);
    // "Effectively, each miss causes an allocation": ~50 % of accesses.
    EXPECT_NEAR(static_cast<double>(selective.allocation_writes) /
                    static_cast<double>(selective.accesses),
                0.5, 0.01);

    const auto fixed = simulateFixedSet(stream, {0});
    EXPECT_NEAR(fixed.hitRatio(), 0.5, 0.01);
    EXPECT_EQ(fixed.allocation_writes, 1u);

    // Same hits, two orders of magnitude fewer allocation-writes.
    EXPECT_GT(selective.allocation_writes,
              fixed.allocation_writes * 100);
}

TEST(Belady, MinAllocatesOnEveryMiss)
{
    const auto stream = paperStream(100);
    const auto min = simulateBeladyMin(stream, 1);
    EXPECT_EQ(min.allocation_writes, min.accesses - min.hits);
}

TEST(Belady, SelectiveDominatesMinOnHitsAndAllocations)
{
    // Classic MIN is optimal only among policies that must allocate on
    // every miss; the selective extension can bypass useless blocks
    // instead of evicting useful ones, so it never loses hits and never
    // allocates more.
    Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<BlockId> stream;
        const size_t len = 200 + rng.nextBelow(800);
        for (size_t i = 0; i < len; ++i)
            stream.push_back(rng.nextBelow(30));
        const uint64_t cap = 1 + rng.nextBelow(8);
        const auto min = simulateBeladyMin(stream, cap);
        const auto sel = simulateBeladySelective(stream, cap);
        ASSERT_GE(sel.hits, min.hits) << "trial " << trial;
        ASSERT_LE(sel.allocation_writes, min.allocation_writes);
    }
}

TEST(Belady, MinIsOptimalVersusLruOnRandomStreams)
{
    Rng rng(13);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<BlockId> stream;
        const size_t len = 500;
        for (size_t i = 0; i < len; ++i)
            stream.push_back(rng.nextBelow(40));
        const uint64_t cap = 4;
        const auto min = simulateBeladyMin(stream, cap);

        // Reference LRU simulation.
        std::vector<BlockId> lru;
        uint64_t lru_hits = 0;
        for (BlockId b : stream) {
            auto it = std::find(lru.begin(), lru.end(), b);
            if (it != lru.end()) {
                ++lru_hits;
                lru.erase(it);
            } else if (lru.size() >= cap) {
                lru.erase(lru.begin());
            }
            lru.push_back(b);
        }
        ASSERT_GE(min.hits, lru_hits) << "trial " << trial;
    }
}

TEST(Belady, CapacityLargerThanWorkingSet)
{
    const std::vector<BlockId> stream = {1, 2, 3, 1, 2, 3};
    const auto min = simulateBeladyMin(stream, 10);
    EXPECT_EQ(min.hits, 3u);
    EXPECT_EQ(min.allocation_writes, 3u);
}

TEST(Belady, SingleUseStreamHasNoHits)
{
    std::vector<BlockId> stream;
    for (BlockId b = 0; b < 100; ++b)
        stream.push_back(b);
    const auto sel = simulateBeladySelective(stream, 4);
    EXPECT_EQ(sel.hits, 0u);
    // Selective never allocates a block with no future use once the
    // cache is full (first `cap` compulsory fills aside).
    EXPECT_LE(sel.allocation_writes, 4u);
}

TEST(FixedSet, CountsHitsExactly)
{
    const std::vector<BlockId> stream = {1, 2, 1, 3, 1};
    const auto r = simulateFixedSet(stream, {1, 3});
    EXPECT_EQ(r.hits, 4u);
    EXPECT_EQ(r.allocation_writes, 2u);
    EXPECT_EQ(r.accesses, 5u);
}

TEST(Belady, EmptyStream)
{
    const auto r = simulateBeladyMin({}, 4);
    EXPECT_EQ(r.accesses, 0u);
    EXPECT_EQ(r.hits, 0u);
    EXPECT_DOUBLE_EQ(r.hitRatio(), 0.0);
}

} // namespace
