/**
 * @file
 * End-to-end test on a *custom* ensemble: the library must not be
 * hardwired to the paper's 13-server deployment. Builds a 3-server
 * ensemble with hand-written workload personalities, runs the full
 * pipeline, and checks the sieving story still holds.
 */

#include <gtest/gtest.h>

#include "analysis/popularity.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::trace;

class CustomEnsembleTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ensemble = new EnsembleConfig();
        ensemble->addServer("Db", "Database", 2, 8, 400);
        ensemble->addServer("App", "App server", 1, 4, 100);
        ensemble->addServer("Bkp", "Backup target", 3, 12, 900);

        std::vector<ServerProfile> profiles(3);
        // Db: hot, skewed, read-mostly.
        profiles[0].footprint_weight = 1.0;
        profiles[0].hot_block_frac = 0.02;
        profiles[0].hot_median_count = 60;
        profiles[0].read_frac = 0.85;
        // App: small and bursty.
        profiles[1].footprint_weight = 0.3;
        profiles[1].hot_day_sigma = 0.8;
        // Bkp: scan-dominated, nearly no reuse.
        profiles[2].footprint_weight = 2.0;
        profiles[2].hot_block_frac = 0.002;
        profiles[2].hot_median_count = 15;
        profiles[2].singleton_frac = 0.7;
        profiles[2].low_reuse_frac = 0.29;
        profiles[2].read_frac = 0.45;

        SyntheticConfig cfg;
        cfg.scale = 1.0 / 32768.0;
        gen = new SyntheticEnsembleGenerator(*ensemble,
                                             std::move(profiles), cfg);
    }

    static void
    TearDownTestSuite()
    {
        delete gen;
        delete ensemble;
        gen = nullptr;
        ensemble = nullptr;
    }

    static EnsembleConfig *ensemble;
    static SyntheticEnsembleGenerator *gen;
};

EnsembleConfig *CustomEnsembleTest::ensemble = nullptr;
SyntheticEnsembleGenerator *CustomEnsembleTest::gen = nullptr;

TEST_F(CustomEnsembleTest, GeneratesTrafficForAllServers)
{
    const auto reqs = gen->generateDay(3);
    std::vector<uint64_t> per_server(3, 0);
    for (const auto &r : reqs) {
        ASSERT_LT(r.server, 3);
        per_server[r.server] += r.length_blocks;
    }
    for (uint64_t a : per_server)
        EXPECT_GT(a, 0u);
    // The backup target dominates volume; the app server is smallest.
    EXPECT_GT(per_server[2], per_server[1]);
}

TEST_F(CustomEnsembleTest, PersonalitiesShowInSkew)
{
    const auto db = analysis::countBlockAccesses(
        gen->generateServerDay(0, 3));
    const auto bkp = analysis::countBlockAccesses(
        gen->generateServerDay(2, 3));
    analysis::PopularityProfile pdb(db), pbkp(bkp);
    EXPECT_GT(pdb.topShare(0.02), pbkp.topShare(0.02));
}

TEST_F(CustomEnsembleTest, SievingStoryHoldsOffThePaperEnsemble)
{
    auto run = [&](sim::PolicyKind kind) {
        sim::PolicyConfig pc;
        pc.kind = kind;
        pc.sieve_c.imct_slots = 1 << 14;
        core::ApplianceConfig ac;
        ac.cache_blocks = 2048;
        ac.track_occupancy = false;
        gen->reset();
        auto app = sim::makeAppliance(pc, ac);
        sim::runTrace(*gen, *app);
        gen->reset();
        return app->totals();
    };
    const auto sieve = run(sim::PolicyKind::SieveStoreC);
    const auto aod = run(sim::PolicyKind::AOD);
    EXPECT_GT(sieve.hits, 0u);
    // Sieving still slashes allocation-writes on a foreign workload.
    EXPECT_GT(aod.allocation_write_blocks,
              20 * (sieve.allocation_write_blocks + 1));
}

TEST_F(CustomEnsembleTest, VolumesRespectServerBoundaries)
{
    for (const auto &r : gen->generateDay(2)) {
        const auto &vol = ensemble->volume(r.volume);
        ASSERT_EQ(vol.server, r.server);
    }
}

} // namespace
