/**
 * @file
 * Policy-fabric tests: the three ghost-era eviction kinds (SIEVE,
 * ARC, W-TinyLFU) run through the same differential gauntlet that
 * proved the original flat engines — op-for-op equality against the
 * node-based reference policies, batchReplace parity, appliance-level
 * report equality across the sieve-policy matrix, batched-kernel
 * bit-identity, and sharded parallel replay at batch=64 against the
 * serial batch=1 golden. Plus the fabric-specific properties: ARC's
 * adaptation target stays inside [0, c] and its ghost directories
 * inside their budgets under adversarial streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/block_cache.hpp"
#include "cache/replacement.hpp"
#include "core/appliance.hpp"
#include "core/sieve_spec.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/sharded.hpp"
#include "trace/synthetic.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::cache;
using core::DailyReport;
using sievestore::trace::BlockId;
using sievestore::util::Rng;

const EvictionKind kFabricKinds[] = {
    EvictionKind::Sieve, EvictionKind::Arc, EvictionKind::TinyLfu};

// ---- cache-level op stream ----------------------------------------

/**
 * Drive both engines with an identical random stream of access /
 * insert / erase and require identical observable behavior after
 * every single operation (same contract as the original flat-engine
 * differential, now covering the fabric kinds).
 */
void
differentialOpStream(EvictionKind kind, uint64_t capacity,
                     uint64_t key_space, uint64_t seed, int ops)
{
    const EvictionSpec spec{kind, 11};
    BlockCache flat(capacity, spec);
    BlockCache reference(capacity, makeReferencePolicy(spec, capacity));
    Rng rng(seed);
    const std::string label = evictionKindName(kind);

    for (int op = 0; op < ops; ++op) {
        const BlockId b = rng.nextBelow(key_space);
        switch (rng.nextBelow(8)) {
          case 0: { // erase
            const bool f = flat.erase(b);
            const bool r = reference.erase(b);
            ASSERT_EQ(f, r) << label << " erase(" << b << ") op " << op;
            break;
          }
          default: { // access, insert on miss (the appliance hot path)
            const bool f_hit = flat.access(b);
            const bool r_hit = reference.access(b);
            ASSERT_EQ(f_hit, r_hit)
                << label << " access(" << b << ") op " << op;
            if (!f_hit) {
                const auto f_victim = flat.insert(b);
                const auto r_victim = reference.insert(b);
                ASSERT_EQ(f_victim, r_victim)
                    << label << " victim for insert(" << b << ") op "
                    << op;
            }
            break;
          }
        }
        ASSERT_EQ(flat.size(), reference.size()) << label;
    }
    flat.checkInvariants();
    reference.checkInvariants();

    auto f_contents = flat.contents();
    auto r_contents = reference.contents();
    std::sort(f_contents.begin(), f_contents.end());
    std::sort(r_contents.begin(), r_contents.end());
    EXPECT_EQ(f_contents, r_contents) << label;
}

TEST(PolicyFabric, OpStreamMatchesReferenceEveryKind)
{
    for (const EvictionKind kind : kFabricKinds) {
        // Tight key space: constant eviction pressure and ghost hits.
        differentialOpStream(kind, 64, 256, 42, 60000);
        // Wide key space: mostly-miss streaming (SIEVE/TinyLFU's
        // scan-resistance case).
        differentialOpStream(kind, 64, 1 << 16, 43, 60000);
        // Capacity 1 and 2: degenerate windows / single-node queues.
        differentialOpStream(kind, 1, 16, 44, 5000);
        differentialOpStream(kind, 2, 16, 45, 5000);
        // Looping pattern slightly over capacity: ARC's ghost-hit
        // steady state and SIEVE's hand wrap-around.
        differentialOpStream(kind, 64, 80, 46, 30000);
    }
}

TEST(PolicyFabric, BatchReplaceMatchesReferenceEveryKind)
{
    for (const EvictionKind kind : kFabricKinds) {
        const EvictionSpec spec{kind, 5};
        const uint64_t capacity = 128;
        BlockCache flat(capacity, spec);
        BlockCache reference(capacity,
                             makeReferencePolicy(spec, capacity));
        Rng rng(7 + static_cast<uint64_t>(kind));
        const std::string label = evictionKindName(kind);

        for (int epoch = 0; epoch < 30; ++epoch) {
            for (int op = 0; op < 500; ++op) {
                const BlockId b = rng.nextBelow(600);
                const bool f_hit = flat.access(b);
                ASSERT_EQ(f_hit, reference.access(b)) << label;
                if (!f_hit) {
                    ASSERT_EQ(flat.insert(b), reference.insert(b))
                        << label;
                }
            }
            std::vector<BlockId> incoming;
            const uint64_t n = rng.nextBelow(200);
            for (uint64_t i = 0; i < n; ++i)
                incoming.push_back(rng.nextBelow(600));
            const BatchReplaceResult f = flat.batchReplace(incoming);
            const BatchReplaceResult r =
                reference.batchReplace(incoming);
            EXPECT_EQ(f.retained, r.retained)
                << label << " epoch " << epoch;
            EXPECT_EQ(f.evicted, r.evicted)
                << label << " epoch " << epoch;
            EXPECT_EQ(f.allocated, r.allocated)
                << label << " epoch " << epoch;
            ASSERT_EQ(flat.size(), reference.size()) << label;
            flat.checkInvariants();
            reference.checkInvariants();

            auto f_contents = flat.contents();
            auto r_contents = reference.contents();
            std::sort(f_contents.begin(), f_contents.end());
            std::sort(r_contents.begin(), r_contents.end());
            ASSERT_EQ(f_contents, r_contents) << label;
        }
    }
}

// ---- fabric-specific properties -----------------------------------

TEST(PolicyFabric, ArcAdaptationStaysWithinBounds)
{
    // Adversarial alternation between a recency-friendly loop and a
    // frequency-friendly hot set pushes p in both directions; it must
    // never leave [0, capacity] and the ghost directories must never
    // exceed their budgets (checkInvariants audits both).
    const uint64_t capacity = 32;
    ReferenceArcPolicy probe(capacity);
    BlockCache flat(capacity, EvictionSpec{EvictionKind::Arc, 1});
    BlockCache reference(
        capacity,
        makeReferencePolicy({EvictionKind::Arc, 1}, capacity));
    Rng rng(2024);
    for (int op = 0; op < 40000; ++op) {
        const bool loop_phase = (op / 2000) % 2 == 0;
        const BlockId b = loop_phase
                              ? static_cast<uint64_t>(op) % (capacity + 8)
                              : (1000 + rng.nextBelow(capacity / 2));
        for (BlockCache *c : {&flat, &reference}) {
            if (!c->access(b))
                c->insert(b);
        }
        if (!probe.contains(b)) {
            if (probe.size() >= capacity) {
                const BlockId v = probe.victimFor(b);
                probe.onErase(v);
            }
            probe.onInsert(b);
        } else {
            probe.onAccess(b);
        }
        ASSERT_LE(probe.target(), capacity) << "op " << op;
        ASSERT_LE(probe.ghostRecencySize(), capacity) << "op " << op;
        ASSERT_LE(probe.ghostFrequencySize(), capacity) << "op " << op;
        if (op % 512 == 0) {
            flat.checkInvariants();
            reference.checkInvariants();
        }
    }
    flat.checkInvariants();
    reference.checkInvariants();
}

TEST(PolicyFabric, SieveHitsNeverMoveBlocksAndScanResists)
{
    // One-hit-wonder scan over a hot working set: SIEVE must keep the
    // visited hot set resident while the scan flows through.
    const uint64_t capacity = 64;
    BlockCache cache(capacity, EvictionSpec{EvictionKind::Sieve, 1});
    for (BlockId b = 0; b < capacity; ++b)
        cache.insert(b);
    for (int round = 0; round < 3; ++round)
        for (BlockId b = 0; b < 16; ++b)
            ASSERT_TRUE(cache.access(b));
    for (BlockId scan = 1000; scan < 1000 + 200; ++scan) {
        if (!cache.access(scan))
            cache.insert(scan);
    }
    for (BlockId b = 0; b < 16; ++b)
        EXPECT_TRUE(cache.contains(b)) << "hot block " << b;
    cache.checkInvariants();
}

TEST(PolicyFabric, TinyLfuAdmissionBlocksOneHitWonders)
{
    // A frequently-hit main region must not be displaced by a
    // one-pass scan: the sketch rejects the window victims.
    const uint64_t capacity = 128;
    BlockCache cache(capacity, EvictionSpec{EvictionKind::TinyLfu, 1});
    for (BlockId b = 0; b < capacity; ++b)
        cache.insert(b);
    for (int round = 0; round < 8; ++round)
        for (BlockId b = 0; b < 64; ++b)
            cache.access(b);
    uint64_t hot_survivors_before = 0;
    for (BlockId b = 0; b < 64; ++b)
        hot_survivors_before += cache.contains(b) ? 1u : 0u;
    for (BlockId scan = 5000; scan < 5000 + 400; ++scan) {
        if (!cache.access(scan))
            cache.insert(scan);
    }
    uint64_t hot_survivors_after = 0;
    for (BlockId b = 0; b < 64; ++b)
        hot_survivors_after += cache.contains(b) ? 1u : 0u;
    EXPECT_GE(hot_survivors_after, hot_survivors_before * 3 / 4)
        << "scan displaced the frequent working set";
    cache.checkInvariants();
}

// ---- appliance-level ----------------------------------------------

/** Field-for-field equality of one day's report. */
void
expectReportEq(const DailyReport &flat, const DailyReport &reference,
               const std::string &where)
{
    EXPECT_EQ(flat.accesses, reference.accesses) << where;
    EXPECT_EQ(flat.read_accesses, reference.read_accesses) << where;
    EXPECT_EQ(flat.hits, reference.hits) << where;
    EXPECT_EQ(flat.read_hits, reference.read_hits) << where;
    EXPECT_EQ(flat.write_hits, reference.write_hits) << where;
    EXPECT_EQ(flat.allocation_write_blocks,
              reference.allocation_write_blocks)
        << where;
    EXPECT_EQ(flat.batch_moved_blocks, reference.batch_moved_blocks)
        << where;
    EXPECT_EQ(flat.ssd_read_ios, reference.ssd_read_ios) << where;
    EXPECT_EQ(flat.ssd_write_ios, reference.ssd_write_ios) << where;
    EXPECT_EQ(flat.ssd_alloc_ios, reference.ssd_alloc_ios) << where;
    EXPECT_EQ(flat.tune_t1, reference.tune_t1) << where;
    EXPECT_EQ(flat.tune_t2, reference.tune_t2) << where;
    EXPECT_EQ(flat.tune_switches, reference.tune_switches) << where;
}

/** A multi-day random trace with hot runs and a cold tail. */
std::vector<trace::Request>
randomTrace(uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<trace::Request> reqs;
    uint64_t t = 0;
    for (size_t i = 0; i < n; ++i) {
        trace::Request r;
        t += rng.nextBelow(120 * 1000000); // ~3.5 simulated days total
        r.time = t;
        r.volume = static_cast<trace::VolumeId>(rng.nextBelow(4));
        r.server = static_cast<trace::ServerId>(rng.nextBelow(3));
        r.op = rng.nextBool(0.7) ? trace::Op::Read : trace::Op::Write;
        r.offset_blocks = rng.nextBool(0.5)
                              ? rng.nextBelow(64) * 8
                              : rng.nextBelow(1 << 18);
        r.length_blocks = 1 + static_cast<uint32_t>(rng.nextBelow(32));
        r.latency_us = static_cast<uint32_t>(rng.nextBelow(5000000));
        reqs.push_back(r);
    }
    return reqs;
}

/**
 * The fabric acceptance matrix: each new eviction kind × {AOD, WMNA,
 * SieveStore-C, SieveStore-D}, flat engine vs reference engine, with
 * per-day reports compared field for field.
 */
TEST(PolicyFabric, ApplianceReportsMatchAcrossPolicyMatrix)
{
    const sim::PolicyKind policies[] = {
        sim::PolicyKind::AOD, sim::PolicyKind::WMNA,
        sim::PolicyKind::SieveStoreC, sim::PolicyKind::SieveStoreD};
    const auto reqs = randomTrace(99, 4000);

    for (const EvictionKind kind : kFabricKinds) {
        for (const sim::PolicyKind pk : policies) {
            const EvictionSpec spec{kind, 21};
            sim::PolicyConfig policy;
            policy.kind = pk;
            policy.adba_threshold = 3;
            policy.sieve_c.imct_slots = 1 << 12;

            core::ApplianceConfig flat_cfg;
            flat_cfg.cache_blocks = 512;
            flat_cfg.track_occupancy = true;
            flat_cfg.eviction = spec;
            core::ApplianceConfig ref_cfg = flat_cfg;
            ref_cfg.replacement = [spec] {
                return makeReferencePolicy(spec, 512);
            };

            auto flat_app = sim::makeAppliance(policy, flat_cfg);
            auto ref_app = sim::makeAppliance(policy, ref_cfg);

            trace::VectorTrace flat_trace(reqs);
            sim::runTrace(flat_trace, *flat_app);
            trace::VectorTrace ref_trace(reqs);
            sim::runTrace(ref_trace, *ref_app);

            const std::string label =
                std::string(evictionKindName(kind)) + " x " +
                sim::policyKindName(pk);
            const auto &fd = flat_app->daily();
            const auto &rd = ref_app->daily();
            ASSERT_EQ(fd.size(), rd.size()) << label;
            ASSERT_GE(fd.size(), 2u)
                << label << ": trace must span multiple days";
            for (size_t d = 0; d < fd.size(); ++d)
                expectReportEq(fd[d], rd[d],
                               label + " day " + std::to_string(d));
            expectReportEq(flat_app->totals(), ref_app->totals(),
                           label + " totals");
            flat_app->checkInvariants();
            ref_app->checkInvariants();
        }
    }
}

// ---- batched-kernel differential ----------------------------------

/**
 * The fabric kinds inside the batched kernel: probe-gather ->
 * sieve-prefetch -> decide must stay bit-identical to the scalar
 * per-request loop for SIEVE/ARC/TinyLFU (whose hit transitions do
 * arena surgery, not just payload writes) across AVX2 on/off and
 * decode batch sizes.
 */
TEST(PolicyFabric, ProcessBatchMatchesScalarAcrossFabricKinds)
{
    const auto reqs = randomTrace(555, 3000);
    const core::SieveKind sieves[] = {
        core::SieveKind::Aod, core::SieveKind::Wmna,
        core::SieveKind::SieveStoreC, core::SieveKind::RandSieveC};
    const bool prior_kernel = core::batchKernelEnabled();
    const bool prior_simd = util::batchSimdEnabled();

    for (const EvictionKind ek : kFabricKinds) {
        for (const core::SieveKind sk : sieves) {
            core::ApplianceConfig cfg;
            cfg.cache_blocks = 512;
            cfg.track_occupancy = false; // flat-engine configuration
            cfg.eviction = EvictionSpec{ek, 21};
            cfg.sieve.kind = sk;
            cfg.sieve.rand_probability = 0.05;
            cfg.sieve.rand_seed = 17;
            cfg.sieve.sieve_c.imct_slots = 1 << 12;

            // Baseline: the scalar per-request loop, kernel pinned off.
            core::setBatchKernel(false);
            core::Appliance scalar_app(cfg);
            trace::VectorTrace scalar_trace(reqs);
            sim::runTrace(scalar_trace, scalar_app);
            const std::vector<DailyReport> scalar_days =
                scalar_app.daily();

            for (const bool simd : {false, true}) {
                if (simd && !util::batchSimdSupported())
                    continue;
                for (const size_t batch : {size_t{1}, size_t{8},
                                           size_t{64}}) {
                    core::setBatchKernel(true);
                    util::setBatchSimd(simd);
                    core::Appliance kernel_app(cfg);
                    trace::VectorTrace kernel_trace(reqs);
                    sim::DriverOptions options;
                    options.batch = batch;
                    sim::runTrace(kernel_trace, kernel_app, options);

                    const std::string label =
                        std::string(evictionKindName(ek)) + " x " +
                        core::sieveKindName(sk) +
                        (simd ? " avx2" : " scalar-probe") +
                        " batch " + std::to_string(batch);
                    const auto &kd = kernel_app.daily();
                    ASSERT_EQ(kd.size(), scalar_days.size()) << label;
                    ASSERT_GE(kd.size(), 2u)
                        << label << ": trace must span multiple days";
                    for (size_t d = 0; d < kd.size(); ++d)
                        expectReportEq(kd[d], scalar_days[d],
                                       label + " day " +
                                           std::to_string(d));
                    expectReportEq(kernel_app.totals(),
                                   scalar_app.totals(),
                                   label + " totals");
                    kernel_app.checkInvariants();
                }
            }
        }
    }
    core::setBatchKernel(prior_kernel);
    util::setBatchSimd(prior_simd);
}

// ---- sharded parallel replay --------------------------------------

/**
 * The acceptance-bar run: SIEVE/ARC/TinyLFU end-to-end through
 * runShardedParallel at batch=64 with the batch kernel on, against
 * the serial batch=1 golden — ghost state is per-shard and must not
 * leak across the parallel hand-off.
 */
TEST(PolicyFabric, ShardedParallelBatch64MatchesSerialBatch1)
{
    const bool prior_kernel = core::batchKernelEnabled();
    core::setBatchKernel(true);

    for (const EvictionKind kind : kFabricKinds) {
        trace::SyntheticConfig scfg;
        scfg.seed = 0x9a0 + static_cast<uint64_t>(kind);
        scfg.scale = 1.0 / 131072.0;
        auto gen = trace::SyntheticEnsembleGenerator::paper(
            trace::EnsembleConfig::paperEnsemble(), scfg);

        sim::ShardedConfig cfg;
        cfg.shards = 4;
        cfg.policy.kind = sim::PolicyKind::SieveStoreC;
        cfg.policy.sieve_c.imct_slots = 1 << 12;
        cfg.node.cache_blocks = 2048 / cfg.shards + 64;
        cfg.node.track_occupancy = false;
        cfg.node.eviction = EvictionSpec{kind, 9};

        sim::ShardedConfig serial_cfg = cfg;
        serial_cfg.batch = 1;
        gen.reset();
        const sim::ShardedResult serial =
            sim::runSharded(gen, serial_cfg);

        sim::ShardedConfig parallel_cfg = cfg;
        parallel_cfg.batch = 64;
        gen.reset();
        const sim::ShardedResult parallel =
            sim::runShardedParallel(gen, parallel_cfg);

        const std::string label = evictionKindName(kind);
        ASSERT_EQ(serial.nodes.size(), parallel.nodes.size()) << label;
        for (size_t s = 0; s < serial.nodes.size(); ++s) {
            const auto &sd = serial.nodes[s]->daily();
            const auto &pd = parallel.nodes[s]->daily();
            ASSERT_EQ(sd.size(), pd.size())
                << label << " shard " << s;
            for (size_t d = 0; d < sd.size(); ++d)
                expectReportEq(sd[d], pd[d],
                               label + " shard " + std::to_string(s) +
                                   " day " + std::to_string(d));
        }
        expectReportEq(serial.totals(), parallel.totals(),
                       label + " totals");
    }
    core::setBatchKernel(prior_kernel);
}

/**
 * The adaptive sieve through the same sharded gauntlet: each shard
 * carries its own shadow candidates and ghost caches, day closes
 * switch thresholds per shard, and the parallel batch=64 replay must
 * reproduce the serial batch=1 tuning trajectory (tune_* columns
 * included) bit for bit.
 */
TEST(PolicyFabric, AdaptiveSieveShardedParallelMatchesSerial)
{
    const bool prior_kernel = core::batchKernelEnabled();
    core::setBatchKernel(true);

    trace::SyntheticConfig scfg;
    scfg.seed = 0xada;
    scfg.scale = 1.0 / 131072.0;
    auto gen = trace::SyntheticEnsembleGenerator::paper(
        trace::EnsembleConfig::paperEnsemble(), scfg);

    sim::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.policy.kind = sim::PolicyKind::Adaptive;
    cfg.policy.sieve_c.imct_slots = 1 << 12;
    cfg.policy.sieve_c.t1 = 4;
    cfg.policy.sieve_c.t2 = 2;
    cfg.policy.adaptive.imct_slots = 1 << 10;
    cfg.policy.adaptive.ghost_budget = 512;
    cfg.node.cache_blocks = 2048 / cfg.shards + 64;
    cfg.node.track_occupancy = false;

    sim::ShardedConfig serial_cfg = cfg;
    serial_cfg.batch = 1;
    gen.reset();
    const sim::ShardedResult serial = sim::runSharded(gen, serial_cfg);

    sim::ShardedConfig parallel_cfg = cfg;
    parallel_cfg.batch = 64;
    gen.reset();
    const sim::ShardedResult parallel =
        sim::runShardedParallel(gen, parallel_cfg);

    ASSERT_EQ(serial.nodes.size(), parallel.nodes.size());
    bool any_tuning = false;
    for (size_t s = 0; s < serial.nodes.size(); ++s) {
        const auto &sd = serial.nodes[s]->daily();
        const auto &pd = parallel.nodes[s]->daily();
        ASSERT_EQ(sd.size(), pd.size()) << "shard " << s;
        for (size_t d = 0; d < sd.size(); ++d) {
            expectReportEq(sd[d], pd[d],
                           "adaptive shard " + std::to_string(s) +
                               " day " + std::to_string(d));
            any_tuning = any_tuning || sd[d].tune_t1 != 0;
        }
        serial.nodes[s]->checkInvariants();
        parallel.nodes[s]->checkInvariants();
    }
    EXPECT_TRUE(any_tuning)
        << "no shard ever reported its tuned thresholds";
    expectReportEq(serial.totals(), parallel.totals(),
                   "adaptive totals");
    core::setBatchKernel(prior_kernel);
}

} // namespace
