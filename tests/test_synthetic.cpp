/**
 * @file
 * Validation of the synthetic ensemble generator against everything the
 * paper reports about the traces (observations O1 and O2, Section 2).
 * These tests run at a small scale; the Figure 2/3 benches print the
 * same statistics at the default scale.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/popularity.hpp"
#include "analysis/skew.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::trace;
using analysis::BlockCounts;
using analysis::PopularityProfile;

/** Shared small-scale generator (built once; generation is deterministic). */
class SyntheticTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ensemble = new EnsembleConfig(EnsembleConfig::paperEnsemble());
        SyntheticConfig cfg;
        cfg.scale = 1.0 / 16384.0;
        gen = new SyntheticEnsembleGenerator(
            SyntheticEnsembleGenerator::paper(*ensemble, cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete gen;
        delete ensemble;
        gen = nullptr;
        ensemble = nullptr;
    }

    static BlockCounts
    countsOfDay(int day)
    {
        return analysis::countBlockAccesses(gen->generateDay(day));
    }

    static EnsembleConfig *ensemble;
    static SyntheticEnsembleGenerator *gen;
};

EnsembleConfig *SyntheticTest::ensemble = nullptr;
SyntheticEnsembleGenerator *SyntheticTest::gen = nullptr;

TEST_F(SyntheticTest, SpansEightCalendarDays)
{
    // 5 pm start + 7x24 h = 8 calendar days, day 0 partial (7 h).
    EXPECT_EQ(gen->days(), 8);
}

TEST_F(SyntheticTest, DayZeroIsTheEveningPartial)
{
    const auto reqs = gen->generateDay(0);
    ASSERT_FALSE(reqs.empty());
    for (const auto &r : reqs) {
        EXPECT_GE(r.time, util::makeTime(0, 17));
        EXPECT_LT(r.time, util::makeTime(1));
    }
}

TEST_F(SyntheticTest, RequestsAreTimeSortedWithinDay)
{
    for (int d : {0, 3, 7}) {
        const auto reqs = gen->generateDay(d);
        for (size_t i = 1; i < reqs.size(); ++i)
            ASSERT_GE(reqs[i].time, reqs[i - 1].time);
    }
}

TEST_F(SyntheticTest, DeterministicAcrossCalls)
{
    const auto a = gen->generateDay(2);
    const auto b = gen->generateDay(2);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].time, b[i].time);
        ASSERT_EQ(a[i].offset_blocks, b[i].offset_blocks);
        ASSERT_EQ(a[i].op, b[i].op);
    }
}

TEST_F(SyntheticTest, StreamingMatchesPerDayGeneration)
{
    gen->reset();
    Request r;
    size_t total_streamed = 0;
    uint64_t prev = 0;
    while (gen->next(r)) {
        ASSERT_GE(r.time, prev);
        prev = r.time;
        ++total_streamed;
    }
    size_t total_days = 0;
    for (int d = 0; d < gen->days(); ++d)
        total_days += gen->generateDay(d).size();
    EXPECT_EQ(total_streamed, total_days);
    gen->reset();
}

TEST_F(SyntheticTest, O1_TopOnePercentShare)
{
    // "A very small fraction (~1%) of popular blocks accessed each day
    // account for ... between 14%-53%" of accesses.
    for (int d = 1; d <= 6; ++d) {
        PopularityProfile profile(countsOfDay(d));
        const double share = profile.topShare(0.01);
        EXPECT_GT(share, 0.12) << "day " << d;
        EXPECT_LT(share, 0.60) << "day " << d;
    }
}

TEST_F(SyntheticTest, O1_CountDropsFastBeyondTopPercent)
{
    // "99% of all blocks accessed in a day see 10 or fewer accesses.
    //  The least popular 97% ... see 4 or fewer." (small-scale noise
    //  allowed for.)
    for (int d : {2, 4}) {
        PopularityProfile profile(countsOfDay(d));
        EXPECT_GT(profile.fractionWithCountAtMost(10), 0.96)
            << "day " << d;
        EXPECT_GT(profile.fractionWithCountAtMost(4), 0.94)
            << "day " << d;
        // ~half of blocks are singletons ("never reused below the 50th
        // percentile").
        EXPECT_NEAR(profile.fractionWithCountAtMost(1), 0.52, 0.08)
            << "day " << d;
    }
}

TEST_F(SyntheticTest, O1_TopBinDwarfsBoundaryBin)
{
    // Fig. 2(a): the 0.01st-percentile bin averages 1000+ accesses
    // while the bin at the 1st percentile averages ~10.
    PopularityProfile profile(countsOfDay(3), 10000);
    const double top_bin = profile.binAverage(0);
    const uint64_t at_boundary = profile.countAtPercentile(0.01);
    // At the tiny test scale giants are few; the benches verify the
    // full 100x ratio at the default scale.
    EXPECT_GT(top_bin, 20.0 * static_cast<double>(at_boundary));
    EXPECT_LE(at_boundary, 40u);
}

TEST_F(SyntheticTest, ReadWriteMixIsRoughlyThreeToOne)
{
    gen->reset();
    const TraceStats stats = summarizeTrace(*gen);
    gen->reset();
    uint64_t reads = 0, total = 0;
    for (const auto &day : stats.days) {
        reads += day.read_accesses;
        total += day.block_accesses;
    }
    EXPECT_NEAR(static_cast<double>(reads) / static_cast<double>(total), 0.75, 0.05);
}

TEST_F(SyntheticTest, RoughlySixPercentUnaligned)
{
    gen->reset();
    const TraceStats stats = summarizeTrace(*gen);
    gen->reset();
    uint64_t aligned = 0, requests = 0;
    for (const auto &day : stats.days) {
        aligned += day.aligned_requests;
        requests += day.requests;
    }
    const double unaligned =
        1.0 - static_cast<double>(aligned) / static_cast<double>(requests);
    EXPECT_NEAR(unaligned, 0.06, 0.03);
}

TEST_F(SyntheticTest, O2_PrxySkewedSrc1Flat)
{
    // Fig. 3(a): Prxy's accesses concentrate on few blocks; Src1's
    // cumulative distribution is near-linear.
    const auto prxy_reqs = gen->generateServerDay(
        ensemble->serverByKey("Prxy").id, 3);
    const auto src1_reqs = gen->generateServerDay(
        ensemble->serverByKey("Src1").id, 3);
    PopularityProfile prxy(analysis::countBlockAccesses(prxy_reqs));
    PopularityProfile src1(analysis::countBlockAccesses(src1_reqs));
    EXPECT_GT(analysis::giniOfCounts(prxy),
              analysis::giniOfCounts(src1) + 0.1);
    EXPECT_GT(prxy.topShare(0.01), 2.0 * src1.topShare(0.01));
}

TEST_F(SyntheticTest, O2_WebVolumeZeroHoldsTheHotSet)
{
    // Fig. 3(b): Web's volume 0 is far more skewed than volume 1.
    const ServerInfo &web = ensemble->serverByKey("Web");
    const auto reqs = gen->generateServerDay(web.id, 3);
    BlockCounts v0, v1;
    for (const auto &r : reqs) {
        for (uint32_t i = 0; i < r.length_blocks; ++i) {
            if (r.volume == web.volume_ids[0])
                ++v0[r.blockAt(i)];
            else if (r.volume == web.volume_ids[1])
                ++v1[r.blockAt(i)];
        }
    }
    PopularityProfile p0(v0), p1(v1);
    EXPECT_GT(p0.topShare(0.01), p1.topShare(0.01));
}

TEST_F(SyntheticTest, O2_TopPercentCompositionChurnsAcrossDays)
{
    // Fig. 3(d): per-server contribution to the ensemble top 1 % varies
    // day to day; no static partition fits every day.
    std::vector<std::vector<double>> comps;
    for (int d = 1; d <= 6; ++d) {
        PopularityProfile profile(countsOfDay(d));
        comps.push_back(
            analysis::serverCompositionOfTop(profile, *ensemble, 0.01));
    }
    double max_change = 0.0;
    for (size_t d = 1; d < comps.size(); ++d)
        for (size_t s = 0; s < comps[d].size(); ++s)
            max_change = std::max(
                max_change, std::abs(comps[d][s] - comps[d - 1][s]));
    EXPECT_GT(max_change, 0.02);
}

TEST_F(SyntheticTest, HotSetOverlapsAcrossSuccessiveDays)
{
    // "There is significant overlap in successive days" — SieveStore-D
    // depends on it.
    PopularityProfile d3(countsOfDay(3)), d4(countsOfDay(4));
    const double overlap =
        analysis::jaccard(d3.topBlocks(0.01), d4.topBlocks(0.01));
    EXPECT_GT(overlap, 0.3);
    EXPECT_LT(overlap, 0.98); // but the set does drift
}

TEST_F(SyntheticTest, BlocksStayWithinVolumeCapacity)
{
    for (const auto &r : gen->generateDay(1)) {
        const auto &vol = ensemble->volume(r.volume);
        EXPECT_LT(r.offset_blocks + r.length_blocks,
                  vol.capacity_blocks + 64);
        EXPECT_EQ(vol.server, r.server);
    }
}

TEST(SyntheticConfigTest, ScaledBytes)
{
    SyntheticConfig cfg;
    cfg.scale = 1.0 / 1024.0;
    EXPECT_EQ(cfg.scaledBytes(16ULL << 30), 16ULL << 20);
    EXPECT_EQ(cfg.calendarDays(), 8);
}

TEST(SyntheticConfigTest, RejectsBadScale)
{
    const EnsembleConfig ensemble = EnsembleConfig::paperEnsemble();
    SyntheticConfig cfg;
    cfg.scale = 0.0;
    EXPECT_THROW(SyntheticEnsembleGenerator::paper(ensemble, cfg),
                 sievestore::util::FatalError);
    cfg.scale = 2.0;
    EXPECT_THROW(SyntheticEnsembleGenerator::paper(ensemble, cfg),
                 sievestore::util::FatalError);
}

TEST(SyntheticConfigTest, ProfileCountMustMatchEnsemble)
{
    const EnsembleConfig ensemble = EnsembleConfig::paperEnsemble();
    std::vector<ServerProfile> too_few(3);
    EXPECT_THROW(SyntheticEnsembleGenerator(ensemble, too_few,
                                            SyntheticConfig{}),
                 sievestore::util::FatalError);
}

} // namespace
