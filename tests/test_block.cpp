/**
 * @file
 * Unit and property tests for block addressing.
 */

#include <gtest/gtest.h>

#include "trace/block.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::trace;
using sievestore::util::Rng;

TEST(Block, Constants)
{
    EXPECT_EQ(kBlockBytes, 512u);
    EXPECT_EQ(kPageBytes, 4096u);
    EXPECT_EQ(kBlocksPerPage, 8u);
}

TEST(Block, PackUnpackBasics)
{
    const BlockId id = makeBlockId(5, 123456789);
    EXPECT_EQ(volumeOf(id), 5u);
    EXPECT_EQ(blockNrOf(id), 123456789u);
}

TEST(Block, VolumeZeroAndMax)
{
    EXPECT_EQ(volumeOf(makeBlockId(0, 7)), 0u);
    EXPECT_EQ(volumeOf(makeBlockId(65535, 7)), 65535u);
    EXPECT_EQ(blockNrOf(makeBlockId(65535, 7)), 7u);
}

TEST(Block, MaxBlockNumber)
{
    const uint64_t max_nr = (1ULL << 48) - 1;
    const BlockId id = makeBlockId(3, max_nr);
    EXPECT_EQ(blockNrOf(id), max_nr);
    EXPECT_EQ(volumeOf(id), 3u);
}

TEST(Block, PageMapping)
{
    EXPECT_EQ(pageOf(makeBlockId(1, 0)), 0u);
    EXPECT_EQ(pageOf(makeBlockId(1, 7)), 0u);
    EXPECT_EQ(pageOf(makeBlockId(1, 8)), 1u);
    EXPECT_EQ(pageOf(makeBlockId(1, 17)), 2u);
}

TEST(Block, PageStartPreservesVolume)
{
    const BlockId id = makeBlockId(9, 21);
    const BlockId start = pageStart(id);
    EXPECT_EQ(volumeOf(start), 9u);
    EXPECT_EQ(blockNrOf(start), 16u);
}

/** Property: pack/unpack round-trips for random (volume, block) pairs. */
class RoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RoundTrip, RandomPairs)
{
    Rng rng(GetParam());
    for (int i = 0; i < 10000; ++i) {
        const VolumeId vol =
            static_cast<VolumeId>(rng.nextBelow(65536));
        const uint64_t nr = rng.nextBelow(1ULL << 48);
        const BlockId id = makeBlockId(vol, nr);
        ASSERT_EQ(volumeOf(id), vol);
        ASSERT_EQ(blockNrOf(id), nr);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Block, DistinctVolumesNeverCollide)
{
    // The same block number on different volumes must differ.
    EXPECT_NE(makeBlockId(1, 100), makeBlockId(2, 100));
}

} // namespace
