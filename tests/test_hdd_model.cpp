/**
 * @file
 * Unit tests for the HDD model and the service-time speedup estimate.
 */

#include <gtest/gtest.h>

#include "ssd/hdd_model.hpp"
#include "util/logging.hpp"

namespace {

using namespace sievestore::ssd;
using sievestore::util::FatalError;

TEST(HddModel, Enterprise15kParameters)
{
    const HddModel m = HddModel::enterprise15k();
    EXPECT_DOUBLE_EQ(m.iops, 300.0);
    EXPECT_DOUBLE_EQ(m.service(), 1.0 / 300.0);
}

TEST(HddModel, SsdIopsAdvantageMatchesPaperClaim)
{
    // Section 5.2: SSD IOPS are "two orders of magnitude higher for
    // reads and one order of magnitude higher for writes" than HDDs.
    const HddModel hdd = HddModel::enterprise15k();
    const SsdModel ssd = SsdModel::intelX25E();
    EXPECT_GT(ssd.read_iops / hdd.iops, 100.0);
    EXPECT_GT(ssd.write_iops / hdd.iops, 10.0);
}

TEST(Speedup, ZeroHitRatioIsUnity)
{
    EXPECT_DOUBLE_EQ(serviceTimeSpeedup(HddModel::enterprise15k(),
                                        SsdModel::intelX25E(), 0.0),
                     1.0);
}

TEST(Speedup, FullHitRatioApproachesDeviceRatio)
{
    const HddModel hdd = HddModel::enterprise15k();
    const SsdModel ssd = SsdModel::intelX25E();
    const double s = serviceTimeSpeedup(hdd, ssd, 1.0, 1.0);
    EXPECT_NEAR(s, ssd.read_iops / hdd.iops, 1.0);
}

TEST(Speedup, MonotoneInHitRatio)
{
    const HddModel hdd = HddModel::enterprise15k();
    const SsdModel ssd = SsdModel::intelX25E();
    double prev = 0.0;
    for (double h : {0.0, 0.1, 0.25, 0.35, 0.5, 0.9}) {
        const double s = serviceTimeSpeedup(hdd, ssd, h);
        EXPECT_GT(s, prev - 1e-12);
        prev = s;
    }
}

TEST(Speedup, PaperOperatingPoint)
{
    // At the paper's ~35 % capture, the mean service time improves by
    // roughly 1.5x: 65 % of accesses still pay the full HDD cost.
    const double s = serviceTimeSpeedup(HddModel::enterprise15k(),
                                        SsdModel::intelX25E(), 0.35);
    EXPECT_GT(s, 1.4);
    EXPECT_LT(s, 1.6);
}

TEST(Speedup, RejectsBadInputs)
{
    const HddModel hdd = HddModel::enterprise15k();
    const SsdModel ssd = SsdModel::intelX25E();
    EXPECT_THROW(serviceTimeSpeedup(hdd, ssd, -0.1), FatalError);
    EXPECT_THROW(serviceTimeSpeedup(hdd, ssd, 1.1), FatalError);
    EXPECT_THROW(serviceTimeSpeedup(hdd, ssd, 0.5, 2.0), FatalError);
}

} // namespace
