/**
 * @file
 * Randomized differential fuzz of util::FlatIndex against a
 * std::unordered_map oracle. Every mutation runs on both structures
 * and every query is cross-checked; the run moves through phases that
 * stress distinct mechanisms — growth (rehashes), hot-key churn
 * (backward-shift deletion over clustered probe chains), drain
 * (erase-heavy shrink), and an eraseIf sweep — with periodic
 * checkInvariants() audits and full-content forEach cross-checks.
 *
 * The op budget scales with SIEVE_FUZZ_ITERS (default 60k per seed;
 * the nightly deep-verify job runs 2M under ASan+UBSan).
 */

#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "util/flat_index.hpp"
#include "util/random.hpp"

using sievestore::util::FlatIndex;
using sievestore::util::Rng;

namespace {

uint64_t
fuzzIters()
{
    const char *env = std::getenv("SIEVE_FUZZ_ITERS");
    if (env == nullptr || *env == '\0')
        return 60000;
    return std::strtoull(env, nullptr, 10);
}

/** Key-space shaping per phase: small spaces force collisions and
 * probe-chain clustering; large ones force growth. */
struct Phase
{
    const char *name;
    uint64_t key_space;
    double erase_bias; // probability an op is an erase
};

class Differ
{
  public:
    explicit Differ(uint64_t seed) : rng(seed) {}

    void
    run(uint64_t ops, const Phase &phase)
    {
        for (uint64_t i = 0; i < ops; ++i) {
            step(phase);
            if ((i & 0xff) == 0)
                batchProbe(phase, /*simd=*/(i & 0x100) != 0);
            if ((i & 0xfff) == 0)
                audit();
        }
        audit();
    }

    /** Drop ~half the population via eraseIf, cross-checking the
     * removed count and survivors against the oracle. */
    void
    sweep()
    {
        const auto pred = [](uint64_t key, const uint64_t &) {
            return (key & 1) == 0;
        };
        size_t oracle_removed = 0;
        for (auto it = oracle.begin(); it != oracle.end();) {
            if (pred(it->first, it->second)) {
                it = oracle.erase(it);
                ++oracle_removed;
            } else {
                ++it;
            }
        }
        const size_t removed = index.eraseIf(pred);
        ASSERT_EQ(removed, oracle_removed);
        audit();
    }

    void
    audit()
    {
        ASSERT_EQ(index.size(), oracle.size());
        index.checkInvariants();
        // Full-content cross-check: every FlatIndex entry must match
        // the oracle exactly; equal sizes then imply set equality.
        size_t visited = 0;
        index.forEach([&](uint64_t key, const uint64_t &payload) {
            ++visited;
            const auto it = oracle.find(key);
            ASSERT_NE(it, oracle.end()) << "phantom key " << key;
            ASSERT_EQ(it->second, payload) << "key " << key;
        });
        ASSERT_EQ(visited, oracle.size());
    }

  private:
    /**
     * Batched-probe cross-check: findBatch over a random key sample
     * (present, absent, and duplicated keys mixed) must agree with the
     * oracle and with scalar find(), under whichever probe-loop
     * dispatch `simd` selects. Interleaved with mutations by run(), so
     * the kernel sees every table shape the fuzz produces — mid-growth
     * layouts, post-erase backward-shifted chains, wrapped tails.
     */
    void
    batchProbe(const Phase &phase, bool simd)
    {
        using sievestore::util::setBatchSimd;
        const bool prior = sievestore::util::batchSimdEnabled();
        setBatchSimd(simd);
        constexpr size_t kMaxBatch = 96; // spans a chunk boundary
        uint64_t keys[kMaxBatch];
        uint64_t *out[kMaxBatch];
        const size_t n = 1 + rng.nextBelow(kMaxBatch);
        for (size_t i = 0; i < n; ++i)
            keys[i] = i > 0 && rng.nextBool(0.125)
                          ? keys[rng.nextBelow(i)] // in-batch duplicate
                          : rng.nextBelow(phase.key_space);
        const size_t found = index.findBatch(
            std::span<const uint64_t>(keys, n),
            std::span<uint64_t *>(out, n));
        size_t expect_found = 0;
        for (size_t i = 0; i < n; ++i) {
            const auto it = oracle.find(keys[i]);
            ASSERT_EQ(out[i] != nullptr, it != oracle.end())
                << "findBatch(" << keys[i] << ") disagrees with oracle";
            ASSERT_EQ(out[i], index.find(keys[i]))
                << "findBatch(" << keys[i] << ") disagrees with find()";
            if (out[i] != nullptr) {
                ASSERT_EQ(*out[i], it->second) << "key " << keys[i];
                ++expect_found;
            }
        }
        ASSERT_EQ(found, expect_found);
        setBatchSimd(prior);
    }

    void
    step(const Phase &phase)
    {
        const uint64_t key = rng.nextBelow(phase.key_space);
        if (rng.nextBool(phase.erase_bias)) {
            ASSERT_EQ(index.erase(key), oracle.erase(key) == 1)
                << "erase(" << key << ") disagrees";
            return;
        }
        switch (rng.nextBelow(4)) {
          case 0: { // insert-or-increment
            const auto [payload, inserted] = index.findOrInsert(key);
            const auto [it, oracle_inserted] = oracle.try_emplace(key, 0);
            ASSERT_EQ(inserted, oracle_inserted)
                << "findOrInsert(" << key << ") disagrees";
            *payload += 1;
            it->second += 1;
            break;
          }
          case 1: { // point lookup
            const uint64_t *payload = index.find(key);
            const auto it = oracle.find(key);
            ASSERT_EQ(payload != nullptr, it != oracle.end())
                << "find(" << key << ") disagrees";
            if (payload != nullptr) {
                ASSERT_EQ(*payload, it->second) << "key " << key;
            }
            break;
          }
          case 2: // membership
            ASSERT_EQ(index.contains(key), oracle.count(key) == 1)
                << "contains(" << key << ") disagrees";
            break;
          default: { // erase observing the doomed payload
            uint64_t seen = 0;
            const bool erased = index.eraseWith(
                key, [&](const uint64_t &payload) { seen = payload; });
            const auto it = oracle.find(key);
            ASSERT_EQ(erased, it != oracle.end())
                << "eraseWith(" << key << ") disagrees";
            if (erased) {
                ASSERT_EQ(seen, it->second) << "key " << key;
                oracle.erase(it);
            }
            break;
          }
        }
    }

    Rng rng;
    FlatIndex<uint64_t> index;
    std::unordered_map<uint64_t, uint64_t> oracle;
};

} // namespace

TEST(FlatIndexFuzz, DifferentialAgainstUnorderedMap)
{
    const uint64_t iters = fuzzIters();
    // Phase shares sum to 1: growth rehashes from empty; churn hammers
    // backward-shift deletion in a dense key space; drain shrinks the
    // population back down without ever rehashing smaller.
    const Phase phases[] = {
        {"growth", 1u << 20, 0.10},
        {"churn", 1u << 10, 0.45},
        {"drain", 1u << 10, 0.80},
    };
    for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Differ differ(seed);
        for (const Phase &phase : phases) {
            SCOPED_TRACE(phase.name);
            differ.run(iters / 3, phase);
        }
        differ.sweep();
    }
}

TEST(FlatIndexFuzz, SweepDuringGrowth)
{
    // eraseIf's backward-shift rescan interacts worst with long
    // wrapped probe chains; run sweeps repeatedly mid-growth instead
    // of once at the end.
    const uint64_t iters = fuzzIters();
    const Phase phase{"growth", 1u << 16, 0.15};
    for (const uint64_t seed : {7u, 8u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Differ differ(seed);
        for (int round = 0; round < 6; ++round) {
            differ.run(iters / 12, phase);
            differ.sweep();
        }
    }
}
