/**
 * @file
 * Unit tests for ensemble metadata, including the Table 1 totals.
 */

#include <gtest/gtest.h>

#include "trace/ensemble.hpp"
#include "util/logging.hpp"

namespace {

using namespace sievestore::trace;
using sievestore::util::FatalError;

TEST(PaperEnsemble, MatchesTable1Totals)
{
    const EnsembleConfig e = EnsembleConfig::paperEnsemble();
    EXPECT_EQ(e.serverCount(), 13u);
    EXPECT_EQ(e.volumeCount(), 36u);
    EXPECT_EQ(e.totalSpindles(), 179u);
    EXPECT_EQ(e.totalSizeGb(), 6449u);
}

TEST(PaperEnsemble, PerServerRows)
{
    const EnsembleConfig e = EnsembleConfig::paperEnsemble();
    const ServerInfo &usr = e.serverByKey("Usr");
    EXPECT_EQ(usr.volumes, 3u);
    EXPECT_EQ(usr.spindles, 16u);
    EXPECT_EQ(usr.size_gb, 1367u);
    const ServerInfo &ts = e.serverByKey("Ts");
    EXPECT_EQ(ts.volumes, 1u);
    EXPECT_EQ(ts.size_gb, 22u);
}

TEST(PaperEnsemble, VolumesPartitionCapacity)
{
    const EnsembleConfig e = EnsembleConfig::paperEnsemble();
    for (const auto &srv : e.servers()) {
        uint64_t blocks = 0;
        for (VolumeId v : srv.volume_ids) {
            EXPECT_EQ(e.volume(v).server, srv.id);
            blocks += e.volume(v).capacity_blocks;
        }
        const uint64_t expect = srv.size_gb * 1000000000ULL / 512;
        // Even partitioning may round down by < volumes blocks.
        EXPECT_LE(expect - blocks, srv.volume_ids.size());
    }
}

TEST(PaperEnsemble, GlobalVolumeNumbering)
{
    const EnsembleConfig e = EnsembleConfig::paperEnsemble();
    for (size_t i = 0; i < e.volumeCount(); ++i)
        EXPECT_EQ(e.volume(static_cast<VolumeId>(i)).id, i);
}

TEST(EnsembleConfig, AddServerValidates)
{
    EnsembleConfig e;
    EXPECT_THROW(e.addServer("bad", "no volumes", 0, 1, 10), FatalError);
}

TEST(EnsembleConfig, LookupErrors)
{
    const EnsembleConfig e = EnsembleConfig::paperEnsemble();
    EXPECT_THROW(e.serverByKey("NoSuch"), FatalError);
    EXPECT_THROW(e.server(200), FatalError);
    EXPECT_THROW(e.volume(999), FatalError);
}

TEST(EnsembleConfig, CustomEnsemble)
{
    EnsembleConfig e;
    const ServerId a = e.addServer("A", "first", 2, 4, 100);
    const ServerId b = e.addServer("B", "second", 1, 2, 50);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(e.volumeCount(), 3u);
    EXPECT_EQ(e.volume(2).server, b);
}

} // namespace
