/**
 * @file
 * Unit tests for the k-way time-ordered trace merge.
 */

#include <gtest/gtest.h>

#include <memory>

#include "trace/merge.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::trace;
using sievestore::util::Rng;

std::unique_ptr<VectorTrace>
traceOf(std::vector<uint64_t> times, ServerId server)
{
    std::vector<Request> reqs;
    for (uint64_t t : times) {
        Request r;
        r.time = t;
        r.server = server;
        r.length_blocks = 1;
        reqs.push_back(r);
    }
    return std::make_unique<VectorTrace>(std::move(reqs));
}

TEST(MergedTrace, InterleavesByTime)
{
    std::vector<std::unique_ptr<TraceReader>> sources;
    sources.push_back(traceOf({1, 4, 7}, 0));
    sources.push_back(traceOf({2, 5, 8}, 1));
    sources.push_back(traceOf({3, 6, 9}, 2));
    MergedTrace merged(std::move(sources));
    Request r;
    uint64_t expect = 1;
    while (merged.next(r))
        EXPECT_EQ(r.time, expect++);
    EXPECT_EQ(expect, 10u);
}

TEST(MergedTrace, TieBreaksBySourceIndex)
{
    std::vector<std::unique_ptr<TraceReader>> sources;
    sources.push_back(traceOf({5}, 7));
    sources.push_back(traceOf({5}, 8));
    MergedTrace merged(std::move(sources));
    Request r;
    ASSERT_TRUE(merged.next(r));
    EXPECT_EQ(r.server, 7);
    ASSERT_TRUE(merged.next(r));
    EXPECT_EQ(r.server, 8);
}

TEST(MergedTrace, HandlesEmptySources)
{
    std::vector<std::unique_ptr<TraceReader>> sources;
    sources.push_back(traceOf({}, 0));
    sources.push_back(traceOf({1, 2}, 1));
    sources.push_back(traceOf({}, 2));
    MergedTrace merged(std::move(sources));
    Request r;
    int count = 0;
    while (merged.next(r))
        ++count;
    EXPECT_EQ(count, 2);
}

TEST(MergedTrace, NoSources)
{
    MergedTrace merged({});
    Request r;
    EXPECT_FALSE(merged.next(r));
}

TEST(MergedTrace, ResetReplaysIdentically)
{
    std::vector<std::unique_ptr<TraceReader>> sources;
    sources.push_back(traceOf({1, 3, 5}, 0));
    sources.push_back(traceOf({2, 4, 6}, 1));
    MergedTrace merged(std::move(sources));
    std::vector<uint64_t> first, second;
    Request r;
    while (merged.next(r))
        first.push_back(r.time);
    merged.reset();
    while (merged.next(r))
        second.push_back(r.time);
    EXPECT_EQ(first, second);
}

TEST(MergedTrace, LargeRandomMergeIsSorted)
{
    Rng rng(99);
    std::vector<std::unique_ptr<TraceReader>> sources;
    size_t total = 0;
    for (int s = 0; s < 13; ++s) {
        std::vector<uint64_t> times;
        uint64_t t = 0;
        const size_t n = rng.nextBelow(500);
        for (size_t i = 0; i < n; ++i) {
            t += rng.nextBelow(10000);
            times.push_back(t);
        }
        total += n;
        sources.push_back(traceOf(times, static_cast<ServerId>(s)));
    }
    MergedTrace merged(std::move(sources));
    Request r;
    uint64_t prev = 0;
    size_t count = 0;
    while (merged.next(r)) {
        ASSERT_GE(r.time, prev);
        prev = r.time;
        ++count;
    }
    EXPECT_EQ(count, total);
}

} // namespace
