/**
 * @file
 * Unit tests for the analytical SSD device model.
 */

#include <gtest/gtest.h>

#include "ssd/ssd_model.hpp"

namespace {

using namespace sievestore::ssd;

TEST(SsdModel, X25EDataSheet)
{
    const SsdModel m = SsdModel::intelX25E();
    EXPECT_DOUBLE_EQ(m.read_iops, 35000.0);
    EXPECT_DOUBLE_EQ(m.write_iops, 3300.0);
    EXPECT_DOUBLE_EQ(m.seq_read_bw, 250.0e6);
    EXPECT_DOUBLE_EQ(m.seq_write_bw, 170.0e6);
    EXPECT_DOUBLE_EQ(m.endurance_bytes, 1.0e15);
    EXPECT_EQ(m.capacity_bytes, 32ULL << 30);
}

TEST(SsdModel, ServiceTimesArePaperConstants)
{
    const SsdModel m = SsdModel::intelX25E();
    EXPECT_DOUBLE_EQ(m.readService(), 1.0 / 35000.0);
    EXPECT_DOUBLE_EQ(m.writeService(), 1.0 / 3300.0);
}

TEST(SsdModel, RandomBandwidthTighterThanSequential)
{
    // Section 4: "The random bandwidth ... is 140MB/s and 13.2 MB/s
    // which is a tighter constraint than sequential bandwidth."
    const SsdModel m = SsdModel::intelX25E();
    EXPECT_NEAR(m.randomReadBw(), 143.4e6, 1e6);
    EXPECT_NEAR(m.randomWriteBw(), 13.5e6, 0.5e6);
    EXPECT_LT(m.randomReadBw(), m.seq_read_bw);
    EXPECT_LT(m.randomWriteBw(), m.seq_write_bw);
}

TEST(SsdModel, ScaledPreservesRatios)
{
    const SsdModel full = SsdModel::intelX25E();
    const SsdModel half = full.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.read_iops, 17500.0);
    EXPECT_DOUBLE_EQ(half.write_iops, 1650.0);
    EXPECT_DOUBLE_EQ(half.read_iops / half.write_iops,
                     full.read_iops / full.write_iops);
    EXPECT_EQ(half.capacity_bytes, 16ULL << 30);
    EXPECT_DOUBLE_EQ(half.endurance_bytes, 0.5e15);
}

TEST(SsdModel, CustomCapacity)
{
    const SsdModel m = SsdModel::intelX25E(16ULL << 30);
    EXPECT_EQ(m.capacity_bytes, 16ULL << 30);
}

} // namespace
