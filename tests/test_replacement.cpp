/**
 * @file
 * Unit tests for replacement policies, run against BOTH cache engines:
 * the flat block-index engine (EvictionSpec) and the node-based
 * Reference* policies it must match.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/block_cache.hpp"
#include "cache/replacement.hpp"

namespace {

using namespace sievestore::cache;
using sievestore::trace::BlockId;

/** Both engines for one built-in policy kind. */
std::vector<BlockCache>
bothEngines(uint64_t capacity, EvictionKind kind, uint64_t seed = 1)
{
    std::vector<BlockCache> caches;
    caches.emplace_back(capacity, EvictionSpec{kind, seed});
    caches.emplace_back(
        capacity, makeReferencePolicy(EvictionSpec{kind, seed}, capacity));
    return caches;
}

TEST(Fifo, HitsDoNotPromote)
{
    for (BlockCache &cache : bothEngines(3, EvictionKind::Fifo)) {
        cache.insert(1);
        cache.insert(2);
        cache.insert(3);
        cache.access(1); // must not rescue 1 under FIFO
        const auto evicted = cache.insert(4);
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(*evicted, 1u);
        cache.checkInvariants();
    }
}

TEST(Lru, HitsPromote)
{
    for (BlockCache &cache : bothEngines(3, EvictionKind::Lru)) {
        cache.insert(1);
        cache.insert(2);
        cache.insert(3);
        cache.access(1);
        const auto evicted = cache.insert(4);
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(*evicted, 2u);
        cache.checkInvariants();
    }
}

TEST(Random, EvictsOnlyResidentBlocks)
{
    for (BlockCache &cache : bothEngines(8, EvictionKind::Random, 3)) {
        for (BlockId b = 0; b < 8; ++b)
            cache.insert(b);
        for (BlockId b = 100; b < 200; ++b) {
            const auto evicted = cache.insert(b);
            ASSERT_TRUE(evicted.has_value());
            ASSERT_LT(cache.size(), 9u);
            ASSERT_FALSE(cache.contains(*evicted));
        }
        cache.checkInvariants();
    }
}

TEST(Random, EventuallyEvictsEveryone)
{
    // With 2 slots and many inserts, both original blocks should go.
    for (BlockCache &cache : bothEngines(2, EvictionKind::Random, 7)) {
        cache.insert(1);
        cache.insert(2);
        for (BlockId b = 10; b < 60; ++b)
            if (!cache.contains(b))
                cache.insert(b);
        EXPECT_FALSE(cache.contains(1));
        EXPECT_FALSE(cache.contains(2));
        cache.checkInvariants();
    }
}

TEST(Lfu, EvictsLeastFrequentlyUsed)
{
    for (BlockCache &cache : bothEngines(3, EvictionKind::Lfu)) {
        cache.insert(1);
        cache.insert(2);
        cache.insert(3);
        cache.access(1);
        cache.access(1);
        cache.access(3);
        // Counts: 1->3, 2->1, 3->2.
        const auto evicted = cache.insert(4);
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(*evicted, 2u);
        cache.checkInvariants();
    }
}

TEST(Lfu, TieBreaksByInsertionOrder)
{
    for (BlockCache &cache : bothEngines(2, EvictionKind::Lfu)) {
        cache.insert(1);
        cache.insert(2);
        const auto evicted = cache.insert(3);
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(*evicted, 1u);
        cache.checkInvariants();
    }
}

TEST(OracleRetain, ProtectedBlocksSurvive)
{
    auto policy = std::make_unique<OracleRetainPolicy>();
    OracleRetainPolicy *oracle = policy.get();
    BlockCache cache(3, std::move(policy));
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    oracle->setProtected({1, 2});
    // Insertions evict only the unprotected 3, then... everything is
    // protected, so plain LRU applies.
    auto evicted = cache.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 3u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    // 4 is unprotected: it is the next victim even though it is MRU.
    evicted = cache.insert(5);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 4u);
}

TEST(OracleRetain, FallsBackToLruWhenAllProtected)
{
    auto policy = std::make_unique<OracleRetainPolicy>();
    OracleRetainPolicy *oracle = policy.get();
    BlockCache cache(2, std::move(policy));
    cache.insert(1);
    cache.insert(2);
    oracle->setProtected({1, 2, 3});
    const auto evicted = cache.insert(3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1u); // LRU of the protected set
}

TEST(Policies, NamesAreStable)
{
    EXPECT_STREQ(ReferenceLruPolicy().name(), "LRU");
    EXPECT_STREQ(ReferenceFifoPolicy().name(), "FIFO");
    EXPECT_STREQ(ReferenceRandomPolicy().name(), "Random");
    EXPECT_STREQ(ReferenceLfuPolicy().name(), "LFU");
    EXPECT_STREQ(OracleRetainPolicy().name(), "OracleRetain");
    EXPECT_STREQ(evictionKindName(EvictionKind::Lru), "LRU");
    EXPECT_STREQ(evictionKindName(EvictionKind::Fifo), "FIFO");
    EXPECT_STREQ(evictionKindName(EvictionKind::Clock), "CLOCK");
    EXPECT_STREQ(evictionKindName(EvictionKind::Lfu), "LFU");
    EXPECT_STREQ(evictionKindName(EvictionKind::Random), "Random");
    // The flat engine reports the same names through the cache.
    EXPECT_STREQ(
        BlockCache(2, EvictionSpec{EvictionKind::Clock}).policyName(),
        "CLOCK");
    EXPECT_STREQ(
        BlockCache(2, makeReferencePolicy({EvictionKind::Lfu}, 2))
            .policyName(),
        "LFU");
}

TEST(Policies, ReferenceNamesMatchKindNames)
{
    for (const EvictionKind kind :
         {EvictionKind::Lru, EvictionKind::Fifo, EvictionKind::Clock,
          EvictionKind::Lfu, EvictionKind::Random}) {
        EXPECT_STREQ(makeReferencePolicy({kind, 1}, 8)->name(),
                     evictionKindName(kind));
    }
}

TEST(Policies, MisuseIsPanic)
{
    ReferenceLruPolicy lru;
    EXPECT_DEATH(lru.victim(), "empty");
    EXPECT_DEATH(lru.onAccess(42), "non-resident");
    lru.onInsert(1);
    EXPECT_DEATH(lru.onErase(2), "non-resident");
}

TEST(Policies, FlatMemoryNeverAboveReference)
{
    // The acceptance bar for the refactor: total per-block metadata of
    // the flat engine at or below the node-based reference, per
    // policy, at a realistic fill.
    for (const EvictionKind kind :
         {EvictionKind::Lru, EvictionKind::Fifo, EvictionKind::Clock,
          EvictionKind::Lfu, EvictionKind::Random}) {
        auto caches = bothEngines(4096, kind);
        for (BlockCache &cache : caches)
            for (BlockId b = 0; b < 4096; ++b)
                cache.insert(b);
        EXPECT_LE(caches[0].memoryBytes(), caches[1].memoryBytes())
            << "flat engine out-sizes reference for "
            << evictionKindName(kind);
    }
}

} // namespace

namespace clock_tests {

using namespace sievestore::cache;
using sievestore::trace::BlockId;

/** Both engines for CLOCK. */
std::vector<BlockCache>
bothClocks(uint64_t capacity)
{
    std::vector<BlockCache> caches;
    caches.emplace_back(capacity, EvictionSpec{EvictionKind::Clock});
    caches.emplace_back(
        capacity,
        makeReferencePolicy(EvictionSpec{EvictionKind::Clock}, capacity));
    return caches;
}

TEST(Clock, SecondChancePprotectsReferencedBlocks)
{
    for (BlockCache &cache : bothClocks(3)) {
        cache.insert(1);
        cache.insert(2);
        cache.insert(3);
        // All reference bits are set on insert; the hand clears 1, 2, 3
        // then evicts the first unreferenced block it re-reaches: 1.
        auto evicted = cache.insert(4);
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(*evicted, 1u);
        cache.checkInvariants();
    }
}

TEST(Clock, AccessGrantsSecondChance)
{
    for (BlockCache &cache : bothClocks(3)) {
        cache.insert(1);
        cache.insert(2);
        cache.insert(3);
        cache.insert(4); // evicts 1, clears bits of 2, 3
        cache.access(2); // re-reference 2
        auto evicted = cache.insert(5);
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(*evicted, 3u); // 2 was saved by its reference bit
        EXPECT_TRUE(cache.contains(2));
        cache.checkInvariants();
    }
}

TEST(Clock, ApproximatesLruOnLoopingScan)
{
    // A cyclic scan over N+1 blocks with an N-block cache: CLOCK, like
    // LRU, misses every access after warmup.
    for (BlockCache &cache : bothClocks(4)) {
        uint64_t hits = 0;
        for (int round = 0; round < 50; ++round)
            for (BlockId b = 0; b < 5; ++b) {
                if (cache.access(b))
                    ++hits;
                else
                    cache.insert(b);
            }
        EXPECT_LT(hits, 25u); // far below the 200 a hot-loop would give
    }
}

TEST(Clock, EraseUnderTheHandIsSafe)
{
    for (BlockCache &cache : bothClocks(3)) {
        cache.insert(1);
        cache.insert(2);
        cache.insert(3);
        cache.insert(4); // hand is now parked inside the ring
        EXPECT_TRUE(cache.erase(2) || cache.erase(3) || cache.erase(4));
        // Ring stays consistent: we can keep inserting/evicting.
        for (BlockId b = 10; b < 30; ++b)
            if (!cache.contains(b))
                cache.insert(b);
        EXPECT_LE(cache.size(), 3u);
        cache.checkInvariants();
    }
}

TEST(Clock, Name)
{
    EXPECT_STREQ(ReferenceClockPolicy().name(), "CLOCK");
}

} // namespace clock_tests
