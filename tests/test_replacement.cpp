/**
 * @file
 * Unit tests for replacement policies.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/block_cache.hpp"
#include "cache/replacement.hpp"

namespace {

using namespace sievestore::cache;
using sievestore::trace::BlockId;

TEST(Fifo, HitsDoNotPromote)
{
    BlockCache cache(3, std::make_unique<FifoPolicy>());
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    cache.access(1); // must not rescue 1 under FIFO
    const auto evicted = cache.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1u);
}

TEST(Lru, HitsPromote)
{
    BlockCache cache(3, std::make_unique<LruPolicy>());
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    cache.access(1);
    const auto evicted = cache.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2u);
}

TEST(Random, EvictsOnlyResidentBlocks)
{
    BlockCache cache(8, std::make_unique<RandomPolicy>(3));
    for (BlockId b = 0; b < 8; ++b)
        cache.insert(b);
    for (BlockId b = 100; b < 200; ++b) {
        const auto evicted = cache.insert(b);
        ASSERT_TRUE(evicted.has_value());
        ASSERT_LT(cache.size(), 9u);
        ASSERT_FALSE(cache.contains(*evicted));
    }
}

TEST(Random, EventuallyEvictsEveryone)
{
    // With 2 slots and many inserts, both original blocks should go.
    BlockCache cache(2, std::make_unique<RandomPolicy>(7));
    cache.insert(1);
    cache.insert(2);
    for (BlockId b = 10; b < 60; ++b)
        if (!cache.contains(b))
            cache.insert(b);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
}

TEST(Lfu, EvictsLeastFrequentlyUsed)
{
    BlockCache cache(3, std::make_unique<LfuPolicy>());
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    cache.access(1);
    cache.access(1);
    cache.access(3);
    // Counts: 1->3, 2->1, 3->2.
    const auto evicted = cache.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2u);
}

TEST(Lfu, TieBreaksByInsertionOrder)
{
    BlockCache cache(2, std::make_unique<LfuPolicy>());
    cache.insert(1);
    cache.insert(2);
    const auto evicted = cache.insert(3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1u);
}

TEST(OracleRetain, ProtectedBlocksSurvive)
{
    auto policy = std::make_unique<OracleRetainPolicy>();
    OracleRetainPolicy *oracle = policy.get();
    BlockCache cache(3, std::move(policy));
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    oracle->setProtected({1, 2});
    // Insertions evict only the unprotected 3, then... everything is
    // protected, so plain LRU applies.
    auto evicted = cache.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 3u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    // 4 is unprotected: it is the next victim even though it is MRU.
    evicted = cache.insert(5);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 4u);
}

TEST(OracleRetain, FallsBackToLruWhenAllProtected)
{
    auto policy = std::make_unique<OracleRetainPolicy>();
    OracleRetainPolicy *oracle = policy.get();
    BlockCache cache(2, std::move(policy));
    cache.insert(1);
    cache.insert(2);
    oracle->setProtected({1, 2, 3});
    const auto evicted = cache.insert(3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1u); // LRU of the protected set
}

TEST(Policies, NamesAreStable)
{
    EXPECT_STREQ(LruPolicy().name(), "LRU");
    EXPECT_STREQ(FifoPolicy().name(), "FIFO");
    EXPECT_STREQ(RandomPolicy().name(), "Random");
    EXPECT_STREQ(LfuPolicy().name(), "LFU");
    EXPECT_STREQ(OracleRetainPolicy().name(), "OracleRetain");
}

TEST(Policies, MisuseIsPanic)
{
    LruPolicy lru;
    EXPECT_DEATH(lru.victim(), "empty");
    EXPECT_DEATH(lru.onAccess(42), "non-resident");
    lru.onInsert(1);
    EXPECT_DEATH(lru.onErase(2), "non-resident");
}

} // namespace

namespace clock_tests {

using namespace sievestore::cache;
using sievestore::trace::BlockId;

TEST(Clock, SecondChancePprotectsReferencedBlocks)
{
    BlockCache cache(3, std::make_unique<ClockPolicy>());
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    // All reference bits are set on insert; the hand clears 1, 2, 3
    // then evicts the first unreferenced block it re-reaches: 1.
    auto evicted = cache.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1u);
}

TEST(Clock, AccessGrantsSecondChance)
{
    BlockCache cache(3, std::make_unique<ClockPolicy>());
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    cache.insert(4); // evicts 1, clears bits of 2, 3
    cache.access(2); // re-reference 2
    auto evicted = cache.insert(5);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 3u); // 2 was saved by its reference bit
    EXPECT_TRUE(cache.contains(2));
}

TEST(Clock, ApproximatesLruOnLoopingScan)
{
    // A cyclic scan over N+1 blocks with an N-block cache: CLOCK, like
    // LRU, misses every access after warmup.
    BlockCache cache(4, std::make_unique<ClockPolicy>());
    uint64_t hits = 0;
    for (int round = 0; round < 50; ++round)
        for (BlockId b = 0; b < 5; ++b) {
            if (cache.access(b))
                ++hits;
            else
                cache.insert(b);
        }
    EXPECT_LT(hits, 25u); // far below the 200 a hot-loop would give
}

TEST(Clock, EraseUnderTheHandIsSafe)
{
    BlockCache cache(3, std::make_unique<ClockPolicy>());
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    cache.insert(4); // hand is now parked inside the ring
    EXPECT_TRUE(cache.erase(2) || cache.erase(3) || cache.erase(4));
    // Ring stays consistent: we can keep inserting/evicting.
    for (BlockId b = 10; b < 30; ++b)
        if (!cache.contains(b))
            cache.insert(b);
    EXPECT_LE(cache.size(), 3u);
}

TEST(Clock, Name)
{
    EXPECT_STREQ(ClockPolicy().name(), "CLOCK");
}

} // namespace clock_tests
