/**
 * @file
 * Unit and property tests for histograms and empirical distributions.
 */

#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::stats;
using sievestore::util::FatalError;
using sievestore::util::Rng;

TEST(LinearHistogram, BucketsAndClamping)
{
    LinearHistogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-3.0);  // clamps to first bucket
    h.add(100.0); // clamps to last bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(9), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLow(3), 3.0);
}

TEST(LinearHistogram, PercentileMonotone)
{
    LinearHistogram h(0.0, 100.0, 100);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.nextDouble() * 100.0);
    double prev = 0.0;
    for (double f : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const double p = h.percentile(f);
        EXPECT_GE(p, prev);
        EXPECT_NEAR(p, f * 100.0, 3.0);
        prev = p;
    }
}

TEST(LinearHistogram, RejectsBadConstruction)
{
    EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), FatalError);
    EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), FatalError);
}

TEST(Log2Histogram, BucketBoundaries)
{
    Log2Histogram h;
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    h.add(1024);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucketCount(0), 1u); // value 0
    EXPECT_EQ(h.bucketCount(1), 1u); // value 1
    EXPECT_EQ(h.bucketCount(2), 2u); // values 2-3
    EXPECT_EQ(h.bucketCount(3), 1u); // values 4-7
    EXPECT_EQ(h.bucketCount(11), 1u); // 1024-2047
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketLow(11), 1024u);
}

TEST(Log2Histogram, Mean)
{
    Log2Histogram h;
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(EmpiricalDistribution, MinMaxMean)
{
    EmpiricalDistribution d;
    d.add(3.0);
    d.add(1.0);
    d.add(2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(EmpiricalDistribution, NearestRankPercentile)
{
    EmpiricalDistribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.999), 100.0);
    // Figure 9's key query: drives at 99.9 % coverage.
    EXPECT_DOUBLE_EQ(d.percentile(0.01), 1.0);
}

TEST(EmpiricalDistribution, Cdf)
{
    EmpiricalDistribution d;
    for (double v : {1.0, 2.0, 2.0, 4.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
    EXPECT_DOUBLE_EQ(d.cdf(10.0), 1.0);
}

/** Property: cdf(percentile(f)) >= f for any sample set. */
class PercentileProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PercentileProperty, CdfOfPercentileCoversFraction)
{
    Rng rng(GetParam());
    EmpiricalDistribution d;
    const int n = 1 + static_cast<int>(rng.nextBelow(500));
    for (int i = 0; i < n; ++i)
        d.add(rng.nextDouble() * 1000.0 - 500.0);
    for (double f = 0.05; f <= 1.0; f += 0.05)
        EXPECT_GE(d.cdf(d.percentile(f)) + 1e-12, f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Range<uint64_t>(1, 16));

} // namespace
