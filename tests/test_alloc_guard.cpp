/**
 * @file
 * AllocGuard behavior: violations abort (death tests), disarm and
 * conditional regions pass allocations through, and — the property
 * the guard exists to enforce — the flat cache engine's steady state
 * runs entire op loops with zero allocations under every built-in
 * eviction policy.
 */

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/block_cache.hpp"
#include "cache/replacement.hpp"
#include "core/imct.hpp"
#include "core/mct.hpp"
#include "core/windowed_counter.hpp"
#include "util/alloc_guard.hpp"
#include "util/spsc_queue.hpp"

using sievestore::cache::BlockCache;
using sievestore::cache::EvictionKind;
using sievestore::cache::EvictionSpec;
using sievestore::core::Imct;
using sievestore::core::Mct;
using sievestore::core::WindowSpec;
using sievestore::util::AllocGuard;
using sievestore::util::AllocGuardDisarm;
using sievestore::util::SpscQueue;

namespace {

/** Heap-allocating call the optimizer cannot elide. */
void
allocateSomething()
{
    auto p = std::make_unique<std::vector<uint64_t>>(64);
    ASSERT_NE(p->data(), nullptr);
}

} // namespace

#ifndef SIEVE_ALLOC_GUARD_DISABLED

TEST(AllocGuardDeathTest, AllocationInsideRegionAborts)
{
    EXPECT_DEATH(
        {
            SIEVE_ASSERT_NO_ALLOC;
            allocateSomething();
        },
        "AllocGuard");
}

TEST(AllocGuardDeathTest, EngagedConditionalRegionAborts)
{
    EXPECT_DEATH(
        {
            SIEVE_ASSERT_NO_ALLOC_WHEN(1 + 1 == 2);
            allocateSomething();
        },
        "AllocGuard");
}

TEST(AllocGuardDeathTest, NestedRegionStaysArmedAfterInnerExit)
{
    EXPECT_DEATH(
        {
            SIEVE_ASSERT_NO_ALLOC;
            {
                SIEVE_ASSERT_NO_ALLOC;
            }
            // The inner region closed; the outer one must still arm.
            allocateSomething();
        },
        "AllocGuard");
}

TEST(AllocGuard, ActiveTracksRegionScopes)
{
    EXPECT_FALSE(AllocGuard::active());
    {
        SIEVE_ASSERT_NO_ALLOC;
        EXPECT_TRUE(AllocGuard::active());
        {
            AllocGuardDisarm disarm;
            EXPECT_FALSE(AllocGuard::active());
        }
        EXPECT_TRUE(AllocGuard::active());
    }
    EXPECT_FALSE(AllocGuard::active());
}

TEST(AllocGuard, AllocationCountAdvancesOnNew)
{
    const uint64_t before = AllocGuard::allocationCount();
    allocateSomething();
    EXPECT_GT(AllocGuard::allocationCount(), before);
}

TEST(AllocGuard, SteadyStateCacheOpsAllocateNothing)
{
    // The quantitative form of the pass-through tests below: a
    // pre-reserved flat cache at capacity must run access, insert
    // (with eviction), and erase+reinsert without a single heap
    // allocation, under every built-in policy.
    constexpr uint64_t kCapacity = 64;
    for (const EvictionKind kind :
         {EvictionKind::Lru, EvictionKind::Fifo, EvictionKind::Clock,
          EvictionKind::Lfu, EvictionKind::Random}) {
        EvictionSpec spec;
        spec.kind = kind;
        BlockCache cache(kCapacity, spec);
        for (uint64_t b = 0; b < kCapacity; ++b)
            cache.insert(b);
        ASSERT_EQ(cache.size(), kCapacity);

        const uint64_t before = AllocGuard::allocationCount();
        for (uint64_t i = 0; i < 2000; ++i) {
            cache.access(i % kCapacity);
            cache.insert(kCapacity + i); // evicts: stays at capacity
            cache.erase(kCapacity + i);
            cache.insert(kCapacity + i);
        }
        EXPECT_EQ(AllocGuard::allocationCount(), before)
            << "policy " << static_cast<int>(kind)
            << " allocated in steady state";
    }
}

#endif // SIEVE_ALLOC_GUARD_DISABLED

TEST(AllocGuard, DisarmPermitsAllocationInsideRegion)
{
    SIEVE_ASSERT_NO_ALLOC;
    AllocGuardDisarm disarm;
    allocateSomething();
}

TEST(AllocGuard, DisengagedConditionalRegionPermitsAllocation)
{
    SIEVE_ASSERT_NO_ALLOC_WHEN(2 + 2 == 5);
    allocateSomething();
}

TEST(AllocGuard, ReferencePolicyCacheOpsPassThrough)
{
    // The node-based reference engine allocates per insert by design;
    // BlockCache's internal regions are conditioned on the flat
    // engine, so custom-policy caches must run unguarded.
    BlockCache cache(
        32, sievestore::cache::makeReferencePolicy(EvictionSpec{}, 32));
    for (uint64_t b = 0; b < 200; ++b)
        cache.insert(b);
    EXPECT_EQ(cache.size(), 32u);
}

TEST(AllocGuard, GuardedSieveAndQueueOpsRunCleanly)
{
    // The internally-guarded Mct/Imct hot paths and a guarded POD
    // queue hand-off must complete with the guard armed — these are
    // the ISSUE's "active in the hot path, zero violations" sites.
    const WindowSpec spec = WindowSpec::paperDefault();
    Mct mct(spec);
    Imct imct(256, spec, 42);
    for (uint64_t b = 0; b < 512; ++b) {
        mct.admit(b, b * 1000);
        mct.recordMiss(b, b * 1000);
        imct.recordMiss(b, b * 1000);
        EXPECT_GE(mct.count(b, b * 1000), 1u);
        EXPECT_GE(imct.count(b, b * 1000), 1u);
    }
    mct.prune(1);

    SpscQueue<uint64_t> queue(16);
    // Single-threaded here, so this test plays both SPSC endpoints.
    queue.assertProducerRole();
    queue.assertConsumerRole();
    for (uint64_t i = 0; i < 64; ++i) {
        {
            SIEVE_ASSERT_NO_ALLOC;
            queue.push(i);
        }
        uint64_t out = 0;
        SIEVE_ASSERT_NO_ALLOC;
        EXPECT_TRUE(queue.tryPop(out));
        EXPECT_EQ(out, i);
    }
}
