/**
 * @file
 * Unit tests for the PRNG and samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::util;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(4);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = rng.nextInRange(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(6);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(7);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMean)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextPoisson(2.5));
    EXPECT_NEAR(sum / n, 2.5, 0.05);
    EXPECT_EQ(rng.nextPoisson(0.0), 0u);
}

TEST(Rng, PoissonLargeLambdaNormalApprox)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextPoisson(100.0));
    EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(10);
    std::vector<double> v;
    for (int i = 0; i < 20001; ++i)
        v.push_back(rng.nextLogNormal(std::log(50.0), 0.5));
    std::sort(v.begin(), v.end());
    EXPECT_NEAR(v[v.size() / 2], 50.0, 2.0);
}

TEST(Rng, SplitDecorrelates)
{
    Rng parent(11);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (parent.next() == child.next())
            ++equal;
    EXPECT_EQ(equal, 0);
}

// --- ZipfSampler ---------------------------------------------------------

class ZipfExponents : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfExponents, SamplesInBoundsAndRankOneMostFrequent)
{
    const double s = GetParam();
    const uint64_t n = 100;
    ZipfSampler zipf(n, s);
    Rng rng(12);
    std::vector<uint64_t> counts(n + 1, 0);
    for (int i = 0; i < 100000; ++i) {
        const uint64_t r = zipf.sample(rng);
        ASSERT_GE(r, 1u);
        ASSERT_LE(r, n);
        ++counts[r];
    }
    if (s > 0.2) {
        // Rank 1 must dominate rank n clearly for skewed exponents.
        EXPECT_GT(counts[1], counts[n] * 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZipfExponents,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2, 2.0));

TEST(ZipfSampler, UniformWhenExponentZero)
{
    ZipfSampler zipf(10, 0.0);
    Rng rng(13);
    std::vector<uint64_t> counts(11, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (uint64_t r = 1; r <= 10; ++r) {
        EXPECT_GT(counts[r], n / 10 - n / 50);
        EXPECT_LT(counts[r], n / 10 + n / 50);
    }
}

TEST(ZipfSampler, ClassicZipfFrequencyRatio)
{
    // For s = 1, P(rank 1) / P(rank 2) ~ 2.
    ZipfSampler zipf(1000, 1.0);
    Rng rng(14);
    uint64_t c1 = 0, c2 = 0;
    for (int i = 0; i < 400000; ++i) {
        const uint64_t r = zipf.sample(rng);
        if (r == 1)
            ++c1;
        else if (r == 2)
            ++c2;
    }
    EXPECT_NEAR(static_cast<double>(c1) / static_cast<double>(c2), 2.0,
                0.2);
}

TEST(ZipfSampler, SingleRank)
{
    ZipfSampler zipf(1, 1.0);
    Rng rng(15);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(ZipfSampler, RejectsBadParameters)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), FatalError);
    EXPECT_THROW(ZipfSampler(10, -1.0), FatalError);
}

// --- AliasTable ----------------------------------------------------------

TEST(AliasTable, MatchesWeights)
{
    const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
    AliasTable table(weights);
    Rng rng(16);
    std::vector<uint64_t> counts(4, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[table.sample(rng)];
    for (size_t i = 0; i < weights.size(); ++i) {
        const double expect = weights[i] / 10.0;
        EXPECT_NEAR(static_cast<double>(counts[i]) / n, expect, 0.01);
    }
}

TEST(AliasTable, ZeroWeightNeverSampled)
{
    AliasTable table({1.0, 0.0, 1.0});
    Rng rng(17);
    for (int i = 0; i < 50000; ++i)
        EXPECT_NE(table.sample(rng), 1u);
}

TEST(AliasTable, SingleEntry)
{
    AliasTable table({5.0});
    Rng rng(18);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, RejectsBadWeights)
{
    EXPECT_THROW(AliasTable({}), FatalError);
    EXPECT_THROW(AliasTable({-1.0, 1.0}), FatalError);
    EXPECT_THROW(AliasTable({0.0, 0.0}), FatalError);
}

} // namespace
