/**
 * @file
 * Unit tests for the discrete (epoch-batched) sieve selectors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <unistd.h>
#include <unordered_set>

#include "core/discrete.hpp"
#include "util/logging.hpp"

namespace {

using namespace sievestore::core;
using sievestore::trace::BlockAccess;
using sievestore::trace::BlockId;
using sievestore::util::FatalError;

BlockAccess
accessTo(BlockId block)
{
    BlockAccess a;
    a.block = block;
    return a;
}

void
observeTimes(DiscreteSelector &sel, BlockId block, int times)
{
    for (int i = 0; i < times; ++i)
        sel.observe(accessTo(block));
}

TEST(Adba, SelectsBlocksMeetingThreshold)
{
    AdbaSelector sel(10);
    observeTimes(sel, 1, 12);
    observeTimes(sel, 2, 10);
    observeTimes(sel, 3, 9);
    const auto chosen = sel.endOfEpoch();
    ASSERT_EQ(chosen.size(), 2u);
    // Descending count order: 1 (12) before 2 (10).
    EXPECT_EQ(chosen[0], 1u);
    EXPECT_EQ(chosen[1], 2u);
}

TEST(Adba, EpochBoundaryResetsCounts)
{
    AdbaSelector sel(5);
    observeTimes(sel, 1, 4);
    EXPECT_TRUE(sel.endOfEpoch().empty());
    // The 4 old observations must not carry into the new epoch.
    observeTimes(sel, 1, 4);
    EXPECT_TRUE(sel.endOfEpoch().empty());
    observeTimes(sel, 1, 5);
    EXPECT_EQ(sel.endOfEpoch().size(), 1u);
}

TEST(Adba, DiskBackendMatchesMemoryBackend)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("adba_" + std::to_string(::getpid()));
    {
        AdbaSelector mem(10);
        AdbaSelector disk(10, dir.string());
        for (BlockId b = 0; b < 50; ++b) {
            const int times = static_cast<int>(b % 20);
            observeTimes(mem, b, times);
            observeTimes(disk, b, times);
        }
        EXPECT_EQ(mem.endOfEpoch(), disk.endOfEpoch());
    }
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST(Adba, RejectsZeroThreshold)
{
    EXPECT_THROW(AdbaSelector(0), FatalError);
}

TEST(RandomBlock, SelectsRequestedFractionOfSeenBlocks)
{
    RandomBlockSelector sel(0.01, 42);
    for (BlockId b = 0; b < 10000; ++b)
        sel.observe(accessTo(b));
    const auto chosen = sel.endOfEpoch();
    EXPECT_EQ(chosen.size(), 100u);
    for (BlockId b : chosen)
        EXPECT_LT(b, 10000u);
    // No duplicates.
    std::unordered_set<BlockId> uniq(chosen.begin(), chosen.end());
    EXPECT_EQ(uniq.size(), chosen.size());
}

TEST(RandomBlock, IgnoresAccessFrequency)
{
    // A block observed a million times is no likelier than a singleton:
    // the selector samples *blocks*, not accesses.
    RandomBlockSelector sel(0.5, 7);
    observeTimes(sel, 1, 1000);
    sel.observe(accessTo(2));
    const auto chosen = sel.endOfEpoch();
    EXPECT_EQ(chosen.size(), 1u);
}

TEST(RandomBlock, DeterministicForSeed)
{
    auto run = [](uint64_t seed) {
        RandomBlockSelector sel(0.1, seed);
        for (BlockId b = 0; b < 1000; ++b)
            sel.observe(accessTo(b));
        return sel.endOfEpoch();
    };
    auto a = run(5), b = run(5), c = run(6);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(RandomBlock, AtLeastOneWhenAnySeen)
{
    RandomBlockSelector sel(0.001, 3);
    sel.observe(accessTo(9));
    EXPECT_EQ(sel.endOfEpoch().size(), 1u);
}

TEST(TopPercent, SelectsMostAccessed)
{
    TopPercentSelector sel(0.01);
    for (BlockId b = 0; b < 200; ++b)
        observeTimes(sel, b, b < 2 ? 100 : 1);
    const auto chosen = sel.endOfEpoch();
    ASSERT_EQ(chosen.size(), 2u);
    EXPECT_TRUE((chosen[0] == 0 && chosen[1] == 1) ||
                (chosen[0] == 1 && chosen[1] == 0));
}

TEST(TopPercent, EpochReset)
{
    TopPercentSelector sel(0.5);
    observeTimes(sel, 1, 5);
    observeTimes(sel, 2, 1);
    EXPECT_EQ(sel.endOfEpoch().size(), 1u);
    EXPECT_TRUE(sel.endOfEpoch().empty());
}

TEST(OracleDay, ServesDaySetsInSequence)
{
    std::vector<std::vector<BlockId>> sets = {{1}, {2, 3}, {4}};
    OracleDaySelector sel(sets, 0);
    // The constructor is told the first day with traffic is day 0; the
    // first endOfEpoch closes day 0 and serves day 1.
    EXPECT_EQ(sel.endOfEpoch(), (std::vector<BlockId>{2, 3}));
    EXPECT_EQ(sel.endOfEpoch(), (std::vector<BlockId>{4}));
    // Past the last day: empty sets, no crash.
    EXPECT_TRUE(sel.endOfEpoch().empty());
    EXPECT_TRUE(sel.endOfEpoch().empty());
}

TEST(OracleDay, ObserveIsANoOp)
{
    OracleDaySelector sel({{1}, {2}}, 0);
    sel.observe(accessTo(999));
    EXPECT_EQ(sel.endOfEpoch(), (std::vector<BlockId>{2}));
}

TEST(Selectors, Names)
{
    EXPECT_STREQ(AdbaSelector(10).name(), "SieveStore-D");
    EXPECT_STREQ(RandomBlockSelector().name(), "RandSieve-BlkD");
    EXPECT_STREQ(TopPercentSelector().name(), "TopPercent-D");
    EXPECT_STREQ(OracleDaySelector({}, 0).name(), "Ideal");
}

} // namespace
