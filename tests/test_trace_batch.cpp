/**
 * @file
 * Property tests for TraceReader::nextBatch(): for every reader in
 * the tree, the concatenation of nextBatch() results must equal the
 * stream produced by repeated next() — for any batch size, across
 * day boundaries, mixed with scalar next() calls, and after reset().
 * The batched drivers (sim/batch.hpp) rely on exactly this property.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "trace/binary_trace.hpp"
#include "trace/ensemble.hpp"
#include "trace/merge.hpp"
#include "trace/msr_csv.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_reader.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::trace;
using sievestore::util::Rng;

bool
sameRequest(const Request &a, const Request &b)
{
    return a.time == b.time && a.offset_blocks == b.offset_blocks &&
           a.length_blocks == b.length_blocks &&
           a.latency_us == b.latency_us && a.volume == b.volume &&
           a.server == b.server && a.op == b.op;
}

/** Drain a reader with scalar next() calls. */
std::vector<Request>
drainScalar(TraceReader &reader)
{
    std::vector<Request> out;
    Request req;
    while (reader.next(req))
        out.push_back(req);
    return out;
}

/** Drain a reader with nextBatch() calls of the given size. */
std::vector<Request>
drainBatched(TraceReader &reader, size_t batch)
{
    std::vector<Request> out;
    std::vector<Request> buf(batch);
    for (;;) {
        const size_t n = reader.nextBatch(
            std::span<Request>(buf.data(), batch));
        EXPECT_LE(n, batch);
        if (n == 0)
            break;
        out.insert(out.end(), buf.begin(),
                   buf.begin() + static_cast<ptrdiff_t>(n));
    }
    return out;
}

void
expectSameStream(const std::vector<Request> &a,
                 const std::vector<Request> &b, const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(sameRequest(a[i], b[i]))
            << label << ": divergence at request " << i;
}

/**
 * The core property, applied to a freshly reset reader: scalar and
 * batched drains agree for batch sizes spanning "degenerate" (1),
 * "smaller than the stream", "the default", and "bigger than the
 * whole trace" (1000); then a mixed scalar/batched drain agrees too.
 */
void
checkBatchProperty(TraceReader &reader, const std::string &label)
{
    reader.reset();
    const std::vector<Request> golden = drainScalar(reader);
    ASSERT_FALSE(golden.empty()) << label;

    for (const size_t batch : {size_t(1), size_t(3),
                               kDefaultBatchRequests, size_t(1000)}) {
        reader.reset();
        expectSameStream(golden, drainBatched(reader, batch),
                         label + " batch=" + std::to_string(batch));
    }

    // Mixed consumption: alternate scalar and batched reads. The
    // contract is per-call, so interleaving must also reproduce the
    // stream exactly.
    reader.reset();
    std::vector<Request> mixed;
    std::vector<Request> buf(5);
    Request req;
    for (;;) {
        if (mixed.size() % 3 == 0) {
            if (!reader.next(req))
                break;
            mixed.push_back(req);
        } else {
            const size_t n =
                reader.nextBatch(std::span<Request>(buf.data(), 5));
            if (n == 0)
                break;
            mixed.insert(mixed.end(), buf.begin(),
                         buf.begin() + static_cast<ptrdiff_t>(n));
        }
    }
    expectSameStream(golden, mixed, label + " mixed next/nextBatch");

    reader.reset();
}

/** A multi-day random request vector (batches will straddle days). */
std::vector<Request>
multiDayRequests(uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<Request> reqs;
    uint64_t t = 0;
    for (size_t i = 0; i < n; ++i) {
        Request r;
        t += rng.nextBelow(90 * 1000000);
        r.time = t;
        r.volume = static_cast<VolumeId>(rng.nextBelow(4));
        r.server = static_cast<ServerId>(rng.nextBelow(3));
        r.op = rng.nextBool(0.6) ? Op::Read : Op::Write;
        r.offset_blocks = rng.nextBelow(1 << 16) * 8;
        r.length_blocks = 8 * (1 + static_cast<uint32_t>(rng.nextBelow(4)));
        r.latency_us = static_cast<uint32_t>(rng.nextBelow(100000));
        reqs.push_back(r);
    }
    return reqs;
}

TEST(TraceBatch, VectorTraceMatchesScalar)
{
    VectorTrace reader(multiDayRequests(1, 777));
    checkBatchProperty(reader, "VectorTrace");
}

TEST(TraceBatch, BinaryTraceMatchesScalar)
{
    const auto path = std::filesystem::temp_directory_path() /
                      ("batch_bin_" + std::to_string(::getpid()) +
                       ".sstrace");
    {
        BinaryTraceWriter writer(path.string());
        for (const Request &r : multiDayRequests(2, 501))
            writer.write(r);
        writer.close();
    }
    {
        BinaryTraceReader reader(path.string());
        checkBatchProperty(reader, "BinaryTraceReader");
    }
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

TEST(TraceBatch, MsrCsvMatchesScalar)
{
    const auto ensemble = EnsembleConfig::paperEnsemble();
    const auto path = std::filesystem::temp_directory_path() /
                      ("batch_msr_" + std::to_string(::getpid()) +
                       ".csv");
    {
        // Writer requires in-ensemble server/volume pairs; reuse the
        // generator's stream, which targets the paper ensemble.
        SyntheticConfig cfg;
        cfg.scale = 1.0 / 65536.0;
        cfg.duration_hours = 30.0; // straddle a day boundary
        auto gen = SyntheticEnsembleGenerator::paper(ensemble, cfg);
        MsrCsvWriter writer(path.string(), ensemble, kTicksPerDay);
        Request req;
        while (gen.next(req))
            writer.write(req);
        writer.close();
        ASSERT_GT(writer.written(), 100u);
    }
    {
        MsrCsvReader reader(path.string(), ensemble);
        checkBatchProperty(reader, "MsrCsvReader");
    }
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

TEST(TraceBatch, MergedTraceMatchesScalar)
{
    // Three vector sources with interleaved timestamps, so the merge
    // heap is exercised (including ties broken by source index).
    std::vector<std::unique_ptr<TraceReader>> sources;
    for (uint64_t s = 0; s < 3; ++s)
        sources.push_back(std::make_unique<VectorTrace>(
            multiDayRequests(10 + s, 257)));
    MergedTrace reader(std::move(sources));
    checkBatchProperty(reader, "MergedTrace");
}

TEST(TraceBatch, SyntheticGeneratorMatchesScalar)
{
    SyntheticConfig cfg;
    cfg.scale = 1.0 / 65536.0;
    cfg.duration_hours = 36.0;
    auto reader = SyntheticEnsembleGenerator::paper(
        EnsembleConfig::paperEnsemble(), cfg);
    checkBatchProperty(reader, "SyntheticEnsembleGenerator");
}

TEST(TraceBatch, BatchesStraddleDayBoundariesFreely)
{
    // nextBatch() is day-agnostic: a single call may span several
    // calendar days. (Day slicing is the driver facade's job.)
    std::vector<Request> reqs;
    for (int day = 0; day < 4; ++day) {
        Request r;
        r.time = static_cast<uint64_t>(day) * util::kUsPerDay + 5;
        r.offset_blocks = static_cast<uint64_t>(day) * 8;
        r.length_blocks = 8;
        reqs.push_back(r);
    }
    VectorTrace reader(reqs);
    std::vector<Request> buf(16);
    const size_t n = reader.nextBatch(std::span<Request>(buf.data(), 16));
    ASSERT_EQ(n, 4u);
    EXPECT_EQ(util::dayOf(buf[0].time), 0u);
    EXPECT_EQ(util::dayOf(buf[3].time), 3u);
}

TEST(TraceBatch, EmptySpanAndExhaustedReaderReturnZero)
{
    VectorTrace reader(multiDayRequests(5, 10));
    std::vector<Request> buf(16);
    EXPECT_EQ(reader.nextBatch(std::span<Request>(buf.data(), 0)), 0u);
    drainScalar(reader);
    EXPECT_EQ(reader.nextBatch(std::span<Request>(buf.data(), 16)), 0u);
    reader.reset();
    EXPECT_EQ(reader.nextBatch(std::span<Request>(buf.data(), 16)), 10u);
}

} // namespace
