/**
 * @file
 * Differential proof that the flat block-index cache engine is
 * behavior-identical to the node-based Reference* policies it
 * replaced.
 *
 * The refactor's claim is not "roughly the same policy" but
 * *bit-identical decisions*: the same victim on every insert, the
 * same BatchReplaceResult on every epoch swap, and therefore the same
 * DailyReport on every node of every experiment. These tests drive
 * both engines op-for-op over randomized streams for every built-in
 * eviction kind, then replay full appliances (continuous and
 * discrete) and compare every field of every day's report.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/block_cache.hpp"
#include "cache/replacement.hpp"
#include "core/appliance.hpp"
#include "core/sieve_spec.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::cache;
using core::DailyReport;
using sievestore::trace::BlockId;
using sievestore::util::Rng;

const EvictionKind kAllKinds[] = {EvictionKind::Lru, EvictionKind::Fifo,
                                  EvictionKind::Clock, EvictionKind::Lfu,
                                  EvictionKind::Random};

// ---- cache-level op stream ----------------------------------------

/**
 * Drive both engines with an identical random stream of access /
 * insert / erase and require identical observable behavior after
 * every single operation: hit results, eviction victims, residency,
 * and size.
 */
void
differentialOpStream(EvictionKind kind, uint64_t capacity,
                     uint64_t key_space, uint64_t seed, int ops)
{
    const EvictionSpec spec{kind, 11};
    BlockCache flat(capacity, spec);
    BlockCache reference(capacity, makeReferencePolicy(spec, capacity));
    Rng rng(seed);
    const std::string label = evictionKindName(kind);

    for (int op = 0; op < ops; ++op) {
        const BlockId b = rng.nextBelow(key_space);
        switch (rng.nextBelow(8)) {
          case 0: { // erase
            const bool f = flat.erase(b);
            const bool r = reference.erase(b);
            ASSERT_EQ(f, r) << label << " erase(" << b << ") op " << op;
            break;
          }
          default: { // access, insert on miss (the appliance hot path)
            const bool f_hit = flat.access(b);
            const bool r_hit = reference.access(b);
            ASSERT_EQ(f_hit, r_hit)
                << label << " access(" << b << ") op " << op;
            if (!f_hit) {
                const auto f_victim = flat.insert(b);
                const auto r_victim = reference.insert(b);
                ASSERT_EQ(f_victim, r_victim)
                    << label << " victim for insert(" << b << ") op "
                    << op;
            }
            break;
          }
        }
        ASSERT_EQ(flat.size(), reference.size()) << label;
    }
    flat.checkInvariants();
    reference.checkInvariants();

    auto f_contents = flat.contents();
    auto r_contents = reference.contents();
    std::sort(f_contents.begin(), f_contents.end());
    std::sort(r_contents.begin(), r_contents.end());
    EXPECT_EQ(f_contents, r_contents) << label;
}

TEST(FlatCacheDifferential, OpStreamMatchesReferenceEveryKind)
{
    for (const EvictionKind kind : kAllKinds) {
        // Tight key space: constant eviction pressure.
        differentialOpStream(kind, 64, 256, 42, 60000);
        // Wide key space: mostly-miss streaming.
        differentialOpStream(kind, 64, 1 << 16, 43, 60000);
        // Capacity 1 and 2: the degenerate rings/lists.
        differentialOpStream(kind, 1, 16, 44, 5000);
        differentialOpStream(kind, 2, 16, 45, 5000);
    }
}

// ---- batchReplace -------------------------------------------------

/**
 * Interleave continuous ops with epoch-style batch replacements and
 * require identical BatchReplaceResults and identical residency —
 * this is exactly the discrete appliance's usage pattern.
 */
void
differentialBatch(EvictionKind kind, uint64_t seed)
{
    const EvictionSpec spec{kind, 5};
    const uint64_t capacity = 128;
    BlockCache flat(capacity, spec);
    BlockCache reference(capacity, makeReferencePolicy(spec, capacity));
    Rng rng(seed);
    const std::string label = evictionKindName(kind);

    for (int epoch = 0; epoch < 30; ++epoch) {
        // A continuous phase...
        for (int op = 0; op < 500; ++op) {
            const BlockId b = rng.nextBelow(600);
            const bool f_hit = flat.access(b);
            ASSERT_EQ(f_hit, reference.access(b)) << label;
            if (!f_hit) {
                ASSERT_EQ(flat.insert(b), reference.insert(b))
                    << label;
            }
        }
        // ...then an epoch batch, sometimes oversized, sometimes
        // overlapping the resident set, sometimes with duplicates.
        std::vector<BlockId> incoming;
        const uint64_t n = rng.nextBelow(200);
        for (uint64_t i = 0; i < n; ++i)
            incoming.push_back(rng.nextBelow(600));
        const BatchReplaceResult f = flat.batchReplace(incoming);
        const BatchReplaceResult r = reference.batchReplace(incoming);
        EXPECT_EQ(f.retained, r.retained) << label << " epoch " << epoch;
        EXPECT_EQ(f.evicted, r.evicted) << label << " epoch " << epoch;
        EXPECT_EQ(f.allocated, r.allocated)
            << label << " epoch " << epoch;
        ASSERT_EQ(flat.size(), reference.size()) << label;
        flat.checkInvariants();
        reference.checkInvariants();

        auto f_contents = flat.contents();
        auto r_contents = reference.contents();
        std::sort(f_contents.begin(), f_contents.end());
        std::sort(r_contents.begin(), r_contents.end());
        ASSERT_EQ(f_contents, r_contents) << label;
    }
}

TEST(FlatCacheDifferential, BatchReplaceMatchesReferenceEveryKind)
{
    for (const EvictionKind kind : kAllKinds)
        differentialBatch(kind, 7 + static_cast<uint64_t>(kind));
}

// ---- appliance-level ----------------------------------------------

/** Field-for-field equality of one day's report. */
void
expectReportEq(const DailyReport &flat, const DailyReport &reference,
               const std::string &where)
{
    EXPECT_EQ(flat.accesses, reference.accesses) << where;
    EXPECT_EQ(flat.read_accesses, reference.read_accesses) << where;
    EXPECT_EQ(flat.hits, reference.hits) << where;
    EXPECT_EQ(flat.read_hits, reference.read_hits) << where;
    EXPECT_EQ(flat.write_hits, reference.write_hits) << where;
    EXPECT_EQ(flat.allocation_write_blocks,
              reference.allocation_write_blocks)
        << where;
    EXPECT_EQ(flat.batch_moved_blocks, reference.batch_moved_blocks)
        << where;
    EXPECT_EQ(flat.ssd_read_ios, reference.ssd_read_ios) << where;
    EXPECT_EQ(flat.ssd_write_ios, reference.ssd_write_ios) << where;
    EXPECT_EQ(flat.ssd_alloc_ios, reference.ssd_alloc_ios) << where;
}

/** A multi-day random trace with hot runs and a cold tail. */
std::vector<trace::Request>
randomTrace(uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<trace::Request> reqs;
    uint64_t t = 0;
    for (size_t i = 0; i < n; ++i) {
        trace::Request r;
        t += rng.nextBelow(120 * 1000000); // ~3.5 simulated days total
        r.time = t;
        r.volume = static_cast<trace::VolumeId>(rng.nextBelow(4));
        r.server = static_cast<trace::ServerId>(rng.nextBelow(3));
        r.op = rng.nextBool(0.7) ? trace::Op::Read : trace::Op::Write;
        r.offset_blocks = rng.nextBool(0.5)
                              ? rng.nextBelow(64) * 8
                              : rng.nextBelow(1 << 18);
        r.length_blocks = 1 + static_cast<uint32_t>(rng.nextBelow(32));
        r.latency_us = static_cast<uint32_t>(rng.nextBelow(5000000));
        reqs.push_back(r);
    }
    return reqs;
}

/**
 * The acceptance matrix: every built-in eviction kind × {AOD, WMNA,
 * SieveStore-C, SieveStore-D}, flat engine vs reference engine, with
 * per-day reports compared field for field.
 */
TEST(FlatCacheDifferential, ApplianceReportsMatchAcrossPolicyMatrix)
{
    const sim::PolicyKind policies[] = {
        sim::PolicyKind::AOD, sim::PolicyKind::WMNA,
        sim::PolicyKind::SieveStoreC, sim::PolicyKind::SieveStoreD};
    const auto reqs = randomTrace(99, 4000);

    for (const EvictionKind kind : kAllKinds) {
        for (const sim::PolicyKind pk : policies) {
            const EvictionSpec spec{kind, 21};
            sim::PolicyConfig policy;
            policy.kind = pk;
            policy.adba_threshold = 3;
            policy.sieve_c.imct_slots = 1 << 12;

            core::ApplianceConfig flat_cfg;
            flat_cfg.cache_blocks = 512;
            flat_cfg.track_occupancy = true;
            flat_cfg.eviction = spec;
            core::ApplianceConfig ref_cfg = flat_cfg;
            ref_cfg.replacement = [spec] {
                return makeReferencePolicy(spec, 512);
            };

            auto flat_app = sim::makeAppliance(policy, flat_cfg);
            auto ref_app = sim::makeAppliance(policy, ref_cfg);

            trace::VectorTrace flat_trace(reqs);
            sim::runTrace(flat_trace, *flat_app);
            trace::VectorTrace ref_trace(reqs);
            sim::runTrace(ref_trace, *ref_app);

            const std::string label =
                std::string(evictionKindName(kind)) + " x " +
                sim::policyKindName(pk);
            const auto &fd = flat_app->daily();
            const auto &rd = ref_app->daily();
            ASSERT_EQ(fd.size(), rd.size()) << label;
            ASSERT_GE(fd.size(), 2u)
                << label << ": trace must span multiple days";
            for (size_t d = 0; d < fd.size(); ++d)
                expectReportEq(fd[d], rd[d],
                               label + " day " + std::to_string(d));
            expectReportEq(flat_app->totals(), ref_app->totals(),
                           label + " totals");
            flat_app->checkInvariants();
            ref_app->checkInvariants();
        }
    }
}

// ---- sieve-engine differential ------------------------------------

/**
 * Same claim, one layer up: the switch-dispatch FlatSieve engine must
 * make bit-identical allocation decisions to the virtual
 * AllocationPolicy hierarchy it devirtualized. The reference engine
 * is requested exactly the way SIEVE_FLAT_SIEVE=OFF builds do — via a
 * factory returning makeReferenceSievePolicy(spec) — so the test
 * exercises both dispatch paths in a single binary.
 */
TEST(FlatSieveDifferential, ApplianceReportsMatchReferenceSieve)
{
    const auto reqs = randomTrace(123, 4000);
    const core::SieveKind kinds[] = {
        core::SieveKind::Aod, core::SieveKind::Wmna,
        core::SieveKind::SieveStoreC, core::SieveKind::RandSieveC};

    for (const core::SieveKind k : kinds) {
        core::SievePolicySpec spec;
        spec.kind = k;
        spec.rand_probability = 0.05;
        spec.rand_seed = 17;
        spec.sieve_c.imct_slots = 1 << 12;

        core::ApplianceConfig flat_cfg;
        flat_cfg.cache_blocks = 512;
        flat_cfg.track_occupancy = false;
        flat_cfg.sieve = spec;
        core::ApplianceConfig ref_cfg = flat_cfg;
        ref_cfg.allocation = [spec] {
            return core::makeReferenceSievePolicy(spec);
        };

        core::Appliance flat_app(flat_cfg);
        core::Appliance ref_app(ref_cfg);
        const std::string label = core::sieveKindName(k);
        EXPECT_STREQ(flat_app.policyName(), ref_app.policyName())
            << label;
        EXPECT_EQ(flat_app.metastateBytes(), ref_app.metastateBytes())
            << label;

        trace::VectorTrace flat_trace(reqs);
        sim::runTrace(flat_trace, flat_app);
        trace::VectorTrace ref_trace(reqs);
        sim::runTrace(ref_trace, ref_app);

        const auto &fd = flat_app.daily();
        const auto &rd = ref_app.daily();
        ASSERT_EQ(fd.size(), rd.size()) << label;
        ASSERT_GE(fd.size(), 2u)
            << label << ": trace must span multiple days";
        for (size_t d = 0; d < fd.size(); ++d)
            expectReportEq(fd[d], rd[d],
                           label + " day " + std::to_string(d));
        flat_app.checkInvariants();
        ref_app.checkInvariants();
    }
}

/**
 * SieveStore-C ablations flow through the spec into the embedded
 * engine: decisions and the ablation-suffixed policy name must match
 * the reference construction.
 */
TEST(FlatSieveDifferential, SieveCAblationsMatchReferenceSieve)
{
    const auto reqs = randomTrace(321, 2500);
    core::SieveStoreCConfig ablations[3];
    for (auto &c : ablations)
        c.imct_slots = 1 << 12;
    ablations[0].imct_slots = 1 << 8; // tiny IMCT: heavy aliasing
    ablations[1].mct_only = true;
    ablations[2].imct_only = true;

    for (size_t a = 0; a < 3; ++a) {
        core::ApplianceConfig flat_cfg;
        flat_cfg.cache_blocks = 256;
        flat_cfg.sieve.kind = core::SieveKind::SieveStoreC;
        flat_cfg.sieve.sieve_c = ablations[a];
        core::ApplianceConfig ref_cfg = flat_cfg;
        const core::SievePolicySpec spec = flat_cfg.sieve;
        ref_cfg.allocation = [spec] {
            return core::makeReferenceSievePolicy(spec);
        };

        core::Appliance flat_app(flat_cfg);
        core::Appliance ref_app(ref_cfg);
        const std::string label =
            "ablation " + std::to_string(a) + " (" +
            flat_app.policyName() + ")";
        EXPECT_STREQ(flat_app.policyName(), ref_app.policyName())
            << label;

        trace::VectorTrace flat_trace(reqs);
        sim::runTrace(flat_trace, flat_app);
        trace::VectorTrace ref_trace(reqs);
        sim::runTrace(ref_trace, ref_app);

        const auto &fd = flat_app.daily();
        const auto &rd = ref_app.daily();
        ASSERT_EQ(fd.size(), rd.size()) << label;
        for (size_t d = 0; d < fd.size(); ++d)
            expectReportEq(fd[d], rd[d],
                           label + " day " + std::to_string(d));
    }
}

// ---- batched-kernel differential ----------------------------------

/**
 * The processBatch phase-restructure claim: the batched FlatIndex
 * lookup kernel (probe-gather -> sieve-prefetch -> decide inside
 * processRequestProbed) produces per-day DailyReports bit-identical
 * to the scalar per-request loop, for every probe-loop dispatch
 * (AVX2 on/off), every decode batch size, and every flat engine
 * combination (eviction kind × sieve kind).
 */
TEST(BatchKernelDifferential, ProcessBatchMatchesScalarAcrossMatrix)
{
    const auto reqs = randomTrace(555, 3000);
    const core::SieveKind sieves[] = {
        core::SieveKind::Aod, core::SieveKind::Wmna,
        core::SieveKind::SieveStoreC, core::SieveKind::RandSieveC};
    const bool prior_kernel = core::batchKernelEnabled();
    const bool prior_simd = util::batchSimdEnabled();

    for (const EvictionKind ek : kAllKinds) {
        for (const core::SieveKind sk : sieves) {
            core::ApplianceConfig cfg;
            cfg.cache_blocks = 512;
            cfg.track_occupancy = false; // flat-engine configuration
            cfg.eviction = EvictionSpec{ek, 21};
            cfg.sieve.kind = sk;
            cfg.sieve.rand_probability = 0.05;
            cfg.sieve.rand_seed = 17;
            cfg.sieve.sieve_c.imct_slots = 1 << 12;

            // Baseline: the scalar per-request loop, kernel pinned off.
            core::setBatchKernel(false);
            core::Appliance scalar_app(cfg);
            trace::VectorTrace scalar_trace(reqs);
            sim::runTrace(scalar_trace, scalar_app);
            const std::vector<DailyReport> scalar_days =
                scalar_app.daily();

            for (const bool simd : {false, true}) {
                if (simd && !util::batchSimdSupported())
                    continue;
                for (const size_t batch : {size_t{1}, size_t{8},
                                           size_t{64}}) {
                    core::setBatchKernel(true);
                    util::setBatchSimd(simd);
                    core::Appliance kernel_app(cfg);
                    trace::VectorTrace kernel_trace(reqs);
                    sim::DriverOptions options;
                    options.batch = batch;
                    sim::runTrace(kernel_trace, kernel_app, options);

                    const std::string label =
                        std::string(evictionKindName(ek)) + " x " +
                        core::sieveKindName(sk) +
                        (simd ? " avx2" : " scalar-probe") +
                        " batch " + std::to_string(batch);
                    const auto &kd = kernel_app.daily();
                    ASSERT_EQ(kd.size(), scalar_days.size()) << label;
                    ASSERT_GE(kd.size(), 2u)
                        << label << ": trace must span multiple days";
                    for (size_t d = 0; d < kd.size(); ++d)
                        expectReportEq(kd[d], scalar_days[d],
                                       label + " day " +
                                           std::to_string(d));
                    expectReportEq(kernel_app.totals(),
                                   scalar_app.totals(),
                                   label + " totals");
                    kernel_app.checkInvariants();
                }
            }
        }
    }
    core::setBatchKernel(prior_kernel);
    util::setBatchSimd(prior_simd);
}

} // namespace
