/**
 * @file
 * Unit tests for the logging and error-handling primitives.
 */

#include <gtest/gtest.h>

#include <cstdarg>

#include "util/logging.hpp"

namespace {

using namespace sievestore::util;

TEST(Fatal, ThrowsFatalErrorWithFormattedMessage)
{
    try {
        fatal("bad value %d in %s", 42, "config");
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value 42 in config");
    }
}

TEST(LogLevel, SetAndGet)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(original);
}

TEST(InformWarn, DoNotThrowAtAnyLevel)
{
    const LogLevel original = logLevel();
    for (LogLevel lvl :
         {LogLevel::Quiet, LogLevel::Warn, LogLevel::Inform}) {
        setLogLevel(lvl);
        EXPECT_NO_THROW(inform("status %d", 1));
        EXPECT_NO_THROW(warn("caution %d", 2));
    }
    setLogLevel(original);
}

std::string
formatHelper(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

TEST(Vformat, HandlesLongStrings)
{
    const std::string big(5000, 'x');
    const std::string out = formatHelper("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(Vformat, EmptyFormat)
{
    EXPECT_EQ(formatHelper("%s", ""), "");
}

TEST(Panic, Aborts)
{
    EXPECT_DEATH(panic("invariant %d broken", 9), "invariant 9 broken");
}

} // namespace
