/**
 * @file
 * Unit tests for the compact binary trace format.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "trace/binary_trace.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::trace;
using sievestore::util::FatalError;
using sievestore::util::Rng;

class BinaryTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = std::filesystem::temp_directory_path() /
               ("bin_trace_" + std::to_string(::getpid()) + ".sstr");
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }

    std::filesystem::path path;
};

std::vector<Request>
randomRequests(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Request> reqs;
    uint64_t t = 0;
    for (size_t i = 0; i < n; ++i) {
        Request r;
        t += rng.nextBelow(1000000);
        r.time = t;
        r.volume = static_cast<VolumeId>(rng.nextBelow(36));
        r.server = static_cast<ServerId>(rng.nextBelow(13));
        r.op = rng.nextBool(0.75) ? Op::Read : Op::Write;
        r.offset_blocks = rng.nextBelow(1ULL << 40);
        r.length_blocks = 1 + static_cast<uint32_t>(rng.nextBelow(2048));
        r.latency_us = static_cast<uint32_t>(rng.nextBelow(100000));
        reqs.push_back(r);
    }
    return reqs;
}

TEST_F(BinaryTraceTest, RoundTripPreservesEveryField)
{
    const auto reqs = randomRequests(5000, 42);
    {
        BinaryTraceWriter writer(path.string());
        for (const auto &r : reqs)
            writer.write(r);
        writer.close();
        EXPECT_EQ(writer.written(), reqs.size());
    }
    BinaryTraceReader reader(path.string());
    EXPECT_EQ(reader.size(), reqs.size());
    Request r;
    for (const auto &expect : reqs) {
        ASSERT_TRUE(reader.next(r));
        ASSERT_EQ(r.time, expect.time);
        ASSERT_EQ(r.volume, expect.volume);
        ASSERT_EQ(r.server, expect.server);
        ASSERT_EQ(r.op, expect.op);
        ASSERT_EQ(r.offset_blocks, expect.offset_blocks);
        ASSERT_EQ(r.length_blocks, expect.length_blocks);
        ASSERT_EQ(r.latency_us, expect.latency_us);
    }
    EXPECT_FALSE(reader.next(r));
}

TEST_F(BinaryTraceTest, ResetRestarts)
{
    const auto reqs = randomRequests(10, 1);
    {
        BinaryTraceWriter writer(path.string());
        for (const auto &r : reqs)
            writer.write(r);
    } // destructor finalizes
    BinaryTraceReader reader(path.string());
    Request r;
    while (reader.next(r)) {
    }
    reader.reset();
    size_t count = 0;
    while (reader.next(r))
        ++count;
    EXPECT_EQ(count, reqs.size());
}

TEST_F(BinaryTraceTest, RejectsOutOfOrderWrites)
{
    BinaryTraceWriter writer(path.string());
    Request r;
    r.time = 100;
    r.length_blocks = 1;
    writer.write(r);
    r.time = 50;
    EXPECT_THROW(writer.write(r), FatalError);
}

TEST_F(BinaryTraceTest, RejectsBadMagic)
{
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all";
    }
    EXPECT_THROW(BinaryTraceReader(path.string()), FatalError);
}

TEST_F(BinaryTraceTest, DetectsTruncation)
{
    {
        BinaryTraceWriter writer(path.string());
        for (const auto &r : randomRequests(100, 2))
            writer.write(r);
    }
    // Chop off the last record's tail.
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 10);
    BinaryTraceReader reader(path.string());
    Request r;
    bool threw = false;
    try {
        while (reader.next(r)) {
        }
    } catch (const FatalError &) {
        threw = true;
    }
    EXPECT_TRUE(threw);
}

TEST_F(BinaryTraceTest, MissingFileIsFatal)
{
    EXPECT_THROW(BinaryTraceReader("/no/such/trace.sstr"), FatalError);
}

TEST_F(BinaryTraceTest, EmptyTraceIsValid)
{
    {
        BinaryTraceWriter writer(path.string());
        writer.close();
    }
    BinaryTraceReader reader(path.string());
    EXPECT_EQ(reader.size(), 0u);
    Request r;
    EXPECT_FALSE(reader.next(r));
}

} // namespace
