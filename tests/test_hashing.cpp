/**
 * @file
 * Unit tests for the 64-bit mixing hash functions.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/hashing.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::util;

TEST(Mix64, DistinctInputsGiveDistinctOutputs)
{
    // mix64 is bijective; consecutive integers must not collide.
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < 10000; ++i)
        ASSERT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
}

TEST(Mix64, AvalancheFlipsRoughlyHalfTheBits)
{
    // Flipping one input bit should flip ~32 of 64 output bits.
    Rng rng(123);
    double total_flips = 0.0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        const uint64_t x = rng.next();
        const int bit = static_cast<int>(rng.nextBelow(64));
        const uint64_t flipped =
            mix64(x) ^ mix64(x ^ (1ULL << bit));
        total_flips += __builtin_popcountll(flipped);
    }
    const double avg = total_flips / trials;
    EXPECT_GT(avg, 28.0);
    EXPECT_LT(avg, 36.0);
}

TEST(Fmix64, DistinctFromMix64)
{
    // The two families must not be trivially related.
    int equal = 0;
    for (uint64_t i = 1; i <= 1000; ++i)
        if (mix64(i) == fmix64(i))
            ++equal;
    EXPECT_EQ(equal, 0);
}

TEST(SeededHash, SeedsDecorrelate)
{
    // The same key under different seeds should look independent.
    int same_slot = 0;
    const uint64_t slots = 1024;
    for (uint64_t key = 0; key < 4096; ++key) {
        const uint64_t a = reduceRange(seededHash(key, 1), slots);
        const uint64_t b = reduceRange(seededHash(key, 2), slots);
        if (a == b)
            ++same_slot;
    }
    // Expected collisions ~ 4096/1024 = 4 per slot pairing chance:
    // 4096 * (1/1024) = 4; allow generous slack.
    EXPECT_LT(same_slot, 20);
}

TEST(ReduceRange, StaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const uint64_t n = 1 + rng.nextBelow(1000);
        EXPECT_LT(reduceRange(rng.next(), n), n);
    }
}

TEST(ReduceRange, UniformOverSmallRange)
{
    // Hash-reduced values over [0, 8) should be near-uniform.
    std::vector<int> counts(8, 0);
    for (uint64_t i = 0; i < 80000; ++i)
        ++counts[reduceRange(mix64(i), 8)];
    for (int c : counts) {
        EXPECT_GT(c, 9000);
        EXPECT_LT(c, 11000);
    }
}

} // namespace
