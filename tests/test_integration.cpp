/**
 * @file
 * End-to-end integration tests: the full pipeline (synthetic ensemble
 * trace -> appliance -> reports) at a tiny scale, checking the paper's
 * qualitative orderings hold and that runs are reproducible.
 */

#include <gtest/gtest.h>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/per_server.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::sim;
using namespace sievestore::trace;

class IntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cfg.scale = 1.0 / 16384.0;
        ensemble = new EnsembleConfig(EnsembleConfig::paperEnsemble());
        gen = new SyntheticEnsembleGenerator(
            SyntheticEnsembleGenerator::paper(*ensemble, cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete gen;
        delete ensemble;
        gen = nullptr;
        ensemble = nullptr;
    }

    static core::ApplianceConfig
    appConfig(uint64_t cache_bytes_full_scale = 16ULL << 30)
    {
        core::ApplianceConfig ac;
        ac.cache_blocks =
            std::max<uint64_t>(64, cfg.scaledBytes(cache_bytes_full_scale) /
                                       kBlockBytes);
        ac.ssd = ssd::SsdModel::intelX25E().scaled(cfg.scale);
        return ac;
    }

    static core::DailyReport
    run(PolicyKind kind, uint64_t cache_bytes = 16ULL << 30)
    {
        PolicyConfig pc;
        pc.kind = kind;
        pc.sieve_c.imct_slots =
            static_cast<size_t>(4.5e8 * cfg.scale) + 1024;
        std::unique_ptr<core::Appliance> app;
        if (kind == PolicyKind::Ideal) {
            app = makeIdealAppliance(*gen, pc, appConfig(cache_bytes));
        } else {
            app = makeAppliance(pc, appConfig(cache_bytes));
            gen->reset();
        }
        runTrace(*gen, *app);
        gen->reset();
        return app->totals();
    }

    static SyntheticConfig cfg;
    static EnsembleConfig *ensemble;
    static SyntheticEnsembleGenerator *gen;
};

SyntheticConfig IntegrationTest::cfg;
EnsembleConfig *IntegrationTest::ensemble = nullptr;
SyntheticEnsembleGenerator *IntegrationTest::gen = nullptr;

TEST_F(IntegrationTest, AccountingInvariantsHold)
{
    for (PolicyKind kind :
         {PolicyKind::SieveStoreC, PolicyKind::SieveStoreD,
          PolicyKind::AOD, PolicyKind::WMNA}) {
        const auto t = run(kind);
        ASSERT_GT(t.accesses, 0u);
        ASSERT_LE(t.hits, t.accesses);
        ASSERT_EQ(t.hits, t.read_hits + t.write_hits);
        ASSERT_LE(t.read_hits, t.read_accesses);
        ASSERT_LE(t.ssd_read_ios, t.read_hits);
        ASSERT_LE(t.ssd_alloc_ios, t.allocation_write_blocks + 1);
    }
}

TEST_F(IntegrationTest, SievingReducesAllocationWritesByOrdersOfMagnitude)
{
    const auto sieve_c = run(PolicyKind::SieveStoreC);
    const auto aod = run(PolicyKind::AOD);
    const auto wmna = run(PolicyKind::WMNA);
    // "more than two orders of magnitude smaller" — at tiny scale we
    // demand at least 50x to keep the test robust.
    EXPECT_GT(aod.allocation_write_blocks,
              50 * (sieve_c.allocation_write_blocks + 1));
    EXPECT_GT(wmna.allocation_write_blocks,
              30 * (sieve_c.allocation_write_blocks + 1));
    // WMNA allocates only on read misses: strictly fewer than AOD.
    EXPECT_LT(wmna.allocation_write_blocks,
              aod.allocation_write_blocks);
}

TEST_F(IntegrationTest, DiscreteVariantsDoNoOnlineAllocation)
{
    const auto sieve_d = run(PolicyKind::SieveStoreD);
    EXPECT_EQ(sieve_d.allocation_write_blocks, 0u);
    EXPECT_GT(sieve_d.batch_moved_blocks, 0u);
}

TEST_F(IntegrationTest, QualitativeOrderingOfPolicies)
{
    const auto ideal = run(PolicyKind::Ideal);
    const auto sieve_c = run(PolicyKind::SieveStoreC);
    const auto sieve_d = run(PolicyKind::SieveStoreD);
    const auto rand_blk = run(PolicyKind::RandSieveBlkD);

    // SieveStore-C tracks the ideal closely (Section 5.1).
    EXPECT_GT(static_cast<double>(sieve_c.hits),
              0.85 * static_cast<double>(ideal.hits));
    // SieveStore-D trails -C (it cannot adapt within a day) but is well
    // above random block selection, which is hopeless.
    EXPECT_GT(sieve_d.hits, 20 * (rand_blk.hits + 1));
    EXPECT_GT(sieve_c.hits, sieve_d.hits);
}

TEST_F(IntegrationTest, RunsAreReproducible)
{
    const auto a = run(PolicyKind::SieveStoreC);
    const auto b = run(PolicyKind::SieveStoreC);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.allocation_write_blocks, b.allocation_write_blocks);
    EXPECT_EQ(a.ssd_read_ios, b.ssd_read_ios);
}

TEST_F(IntegrationTest, LargerCacheHelpsUnsieved)
{
    const auto small = run(PolicyKind::WMNA, 16ULL << 30);
    const auto large = run(PolicyKind::WMNA, 32ULL << 30);
    EXPECT_GE(large.hits, small.hits);
}

TEST_F(IntegrationTest, EnsembleBeatsEqualCapacityPerServerSplit)
{
    // Section 5.3's direction: a shared cache beats the same capacity
    // statically split across servers (iso-capacity comparison).
    const uint64_t total_blocks = appConfig().cache_blocks;

    PolicyConfig pc;
    pc.kind = PolicyKind::SieveStoreC;
    pc.sieve_c.imct_slots = 1 << 16;

    PerServerConfig psc;
    psc.policy = pc;
    psc.base = appConfig();
    psc.base.track_occupancy = false;
    const uint64_t per_server =
        std::max<uint64_t>(8, total_blocks / ensemble->serverCount());
    psc.capacities_blocks.assign(ensemble->serverCount(), per_server);
    gen->reset();
    const auto split = runPerServer(*gen, psc);
    gen->reset();

    const auto shared = run(PolicyKind::SieveStoreC);
    EXPECT_GE(shared.hits, core::sumReports(split.combined).hits);
}

TEST_F(IntegrationTest, DiskBackedSieveStoreDMatchesInMemory)
{
    PolicyConfig mem;
    mem.kind = PolicyKind::SieveStoreD;
    PolicyConfig disk = mem;
    disk.adba_disk_log = true;
    disk.adba_log_dir =
        "/tmp/sievestore-test-adba-" + std::to_string(::getpid());

    auto app_mem = makeAppliance(mem, appConfig());
    gen->reset();
    runTrace(*gen, *app_mem);

    auto app_disk = makeAppliance(disk, appConfig());
    gen->reset();
    runTrace(*gen, *app_disk);
    gen->reset();

    EXPECT_EQ(app_mem->totals().hits, app_disk->totals().hits);
    EXPECT_EQ(app_mem->totals().batch_moved_blocks,
              app_disk->totals().batch_moved_blocks);
}

} // namespace
