/**
 * @file
 * Unit and property tests for the sliding-window miss counter
 * (Section 3.3's k-subwindow scheme).
 */

#include <gtest/gtest.h>

#include "core/windowed_counter.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::core;
using sievestore::util::kUsPerHour;
using sievestore::util::Rng;

TEST(WindowSpec, PaperDefault)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    EXPECT_EQ(spec.k, 4u);
    EXPECT_EQ(spec.subwindow_us, 2 * kUsPerHour); // W = 8 h
    EXPECT_EQ(spec.subwindowOf(0), 0u);
    EXPECT_EQ(spec.subwindowOf(2 * kUsPerHour), 1u);
}

TEST(WindowSpec, OfWindowSplitsEvenly)
{
    const WindowSpec spec = WindowSpec::ofWindow(8 * kUsPerHour, 4);
    EXPECT_EQ(spec.subwindow_us, 2 * kUsPerHour);
    EXPECT_THROW(WindowSpec::ofWindow(kUsPerHour, 0),
                 sievestore::util::FatalError);
    EXPECT_THROW(WindowSpec::ofWindow(kUsPerHour, 100),
                 sievestore::util::FatalError);
}

TEST(WindowedCounter, AccumulatesWithinWindow)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    WindowedCounter c;
    EXPECT_EQ(c.record(0, spec), 1u);
    EXPECT_EQ(c.record(0, spec), 2u);
    EXPECT_EQ(c.record(1, spec), 3u);
    EXPECT_EQ(c.record(3, spec), 4u);
    EXPECT_EQ(c.total(3, spec), 4u);
}

TEST(WindowedCounter, OldSubwindowsExpire)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    WindowedCounter c;
    c.record(0, spec); // 2 misses in subwindow 0
    c.record(0, spec);
    c.record(1, spec); // 1 miss in subwindow 1
    // At subwindow 4, subwindow 0 has aged out (window covers 1..4).
    EXPECT_EQ(c.total(4, spec), 1u);
    // At subwindow 5, everything has aged out.
    EXPECT_EQ(c.total(5, spec), 0u);
}

TEST(WindowedCounter, GapOfKOrMoreZeroesEverything)
{
    // "If during a miss, the current time window is larger than the
    // last-updated counter by k or more, then all counters are inferred
    // to be stale and zeroed out."
    const WindowSpec spec = WindowSpec::paperDefault();
    WindowedCounter c;
    for (int i = 0; i < 10; ++i)
        c.record(0, spec);
    EXPECT_EQ(c.record(4, spec), 1u); // fresh start
}

TEST(WindowedCounter, PartialExpiryOnAdvance)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    WindowedCounter c;
    c.record(0, spec);
    c.record(1, spec);
    c.record(2, spec);
    c.record(3, spec);
    // Advancing to 4 must clear only subwindow 0's slot (reused).
    EXPECT_EQ(c.record(4, spec), 4u); // subwindows 1,2,3,4
    EXPECT_EQ(c.record(6, spec), 3u); // subwindows 3,4(1),6(1) -> 1+1+1
}

TEST(WindowedCounter, StaleDetection)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    WindowedCounter c;
    c.record(10, spec);
    EXPECT_FALSE(c.stale(12, spec));
    EXPECT_FALSE(c.stale(13, spec));
    EXPECT_TRUE(c.stale(14, spec));
}

TEST(WindowedCounter, SaturatesAtUint16Max)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    WindowedCounter c;
    for (int i = 0; i < 70000; ++i)
        c.record(0, spec);
    EXPECT_EQ(c.total(0, spec), 65535u);
}

TEST(WindowedCounter, OutOfOrderTimestampsDoNotRegress)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    WindowedCounter c;
    c.record(5, spec);
    // A slightly-late miss must not clear newer state.
    c.record(4, spec);
    EXPECT_GE(c.total(5, spec), 2u);
}

TEST(WindowedCounter, ClearResets)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    WindowedCounter c;
    c.record(3, spec);
    c.clear();
    EXPECT_EQ(c.total(3, spec), 0u);
}

/**
 * Property: against a brute-force reference that remembers every miss
 * timestamp, the windowed counter is exact at subwindow granularity
 * whenever misses arrive in order.
 */
class WindowedCounterProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(WindowedCounterProperty, MatchesBruteForceReference)
{
    const uint32_t k = GetParam();
    WindowSpec spec;
    spec.k = k;
    spec.subwindow_us = 1000;
    WindowedCounter c;
    std::vector<uint64_t> subwindows; // of each recorded miss
    Rng rng(k * 1000 + 7);
    uint64_t sub = 0;
    for (int i = 0; i < 2000; ++i) {
        sub += rng.nextBelow(3); // sometimes same, sometimes advance
        const uint32_t got = c.record(sub, spec);
        subwindows.push_back(sub);
        uint32_t expect = 0;
        for (uint64_t s : subwindows)
            if (s + k > sub)
                ++expect;
        ASSERT_EQ(got, expect) << "at step " << i << " sub " << sub;
    }
}

INSTANTIATE_TEST_SUITE_P(KSweep, WindowedCounterProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

} // namespace
