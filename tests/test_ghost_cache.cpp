/**
 * @file
 * GhostCache property tests: the budget is a hard ceiling under any
 * insert pressure, refresh keeps recency order exact, and the
 * FlatIndex substrate's backward-shift deletion survives the ghost's
 * interleaved insert/erase/popOldest churn (audited against a naive
 * model and by checkInvariants).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

#include "cache/ghost_cache.hpp"
#include "util/random.hpp"

namespace {

using sievestore::cache::GhostCache;
using sievestore::trace::BlockId;
using sievestore::util::Rng;

TEST(GhostCache, InsertEvictsOldestAtBudget)
{
    GhostCache ghost(3);
    EXPECT_TRUE(ghost.insert(1));
    EXPECT_TRUE(ghost.insert(2));
    EXPECT_TRUE(ghost.insert(3));
    EXPECT_EQ(ghost.size(), 3u);
    EXPECT_EQ(ghost.oldest(), 1u);

    EXPECT_TRUE(ghost.insert(4)); // evicts 1
    EXPECT_EQ(ghost.size(), 3u);
    EXPECT_FALSE(ghost.contains(1));
    EXPECT_EQ(ghost.oldest(), 2u);
    ghost.checkInvariants();
}

TEST(GhostCache, RefreshMovesToFrontWithoutGrowth)
{
    GhostCache ghost(3);
    ghost.insert(1);
    ghost.insert(2);
    ghost.insert(3);
    EXPECT_FALSE(ghost.insert(1)); // refresh, not a new key
    EXPECT_EQ(ghost.size(), 3u);
    EXPECT_EQ(ghost.oldest(), 2u);
    ghost.insert(4); // now 2 is the oldest and goes
    EXPECT_FALSE(ghost.contains(2));
    EXPECT_TRUE(ghost.contains(1));
    ghost.checkInvariants();
}

TEST(GhostCache, PopOldestDrainsInRecencyOrder)
{
    GhostCache ghost(4);
    for (BlockId b = 10; b < 14; ++b)
        ghost.insert(b);
    for (BlockId b = 10; b < 14; ++b) {
        const auto popped = ghost.popOldest();
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(*popped, b);
    }
    EXPECT_TRUE(ghost.empty());
    EXPECT_FALSE(ghost.popOldest().has_value());
    ghost.checkInvariants();
}

TEST(GhostCache, BudgetNeverExceededUnderPressure)
{
    // The ARC/batchReplace abuse case: far more inserts than budget,
    // interleaved with erases and pops. Size must never pass the
    // budget and the structures must stay mirror images throughout.
    GhostCache ghost(17);
    Rng rng(77);
    for (int op = 0; op < 100000; ++op) {
        const BlockId b = rng.nextBelow(64);
        switch (rng.nextBelow(8)) {
          case 0:
            ghost.erase(b);
            break;
          case 1:
            ghost.popOldest();
            break;
          default:
            ghost.insert(b);
            break;
        }
        ASSERT_LE(ghost.size(), ghost.budget()) << "op " << op;
        if (op % 1024 == 0)
            ghost.checkInvariants();
    }
    ghost.checkInvariants();
}

TEST(GhostCache, MatchesNaiveModelExactly)
{
    // Differential against a deque+set model: contains/oldest/size
    // must agree after every operation, proving the FlatIndex
    // backward-shift deletion preserves exactly the tracked set.
    const uint64_t budget = 9;
    GhostCache ghost(budget);
    std::deque<BlockId> model; // front = most recent
    Rng rng(4242);

    const auto modelFind = [&](BlockId b) {
        return std::find(model.begin(), model.end(), b);
    };
    for (int op = 0; op < 50000; ++op) {
        const BlockId b = rng.nextBelow(32);
        switch (rng.nextBelow(8)) {
          case 0: {
            const bool erased = ghost.erase(b);
            const auto it = modelFind(b);
            ASSERT_EQ(erased, it != model.end()) << "op " << op;
            if (it != model.end())
                model.erase(it);
            break;
          }
          case 1: {
            const auto popped = ghost.popOldest();
            ASSERT_EQ(popped.has_value(), !model.empty());
            if (popped.has_value()) {
                ASSERT_EQ(*popped, model.back()) << "op " << op;
                model.pop_back();
            }
            break;
          }
          default: {
            const auto it = modelFind(b);
            const bool inserted = ghost.insert(b);
            ASSERT_EQ(inserted, it == model.end()) << "op " << op;
            if (it != model.end())
                model.erase(modelFind(b));
            else if (model.size() >= budget)
                model.pop_back();
            model.push_front(b);
            break;
          }
        }
        ASSERT_EQ(ghost.size(), model.size()) << "op " << op;
        if (!model.empty()) {
            ASSERT_EQ(ghost.oldest(), model.back()) << "op " << op;
        }
    }
    for (const BlockId b : model)
        EXPECT_TRUE(ghost.contains(b));
    ghost.checkInvariants();
}

TEST(GhostCache, ClearKeepsBudgetAndReservation)
{
    GhostCache ghost(5);
    for (BlockId b = 0; b < 5; ++b)
        ghost.insert(b);
    const uint64_t bytes = ghost.memoryBytes();
    ghost.clear();
    EXPECT_TRUE(ghost.empty());
    EXPECT_EQ(ghost.budget(), 5u);
    EXPECT_EQ(ghost.memoryBytes(), bytes)
        << "clear must not release the reservation";
    ghost.insert(42);
    EXPECT_TRUE(ghost.contains(42));
    ghost.checkInvariants();
}

TEST(GhostCache, FootprintIsConstantAfterConstruction)
{
    GhostCache ghost(100);
    const uint64_t at_birth = ghost.memoryBytes();
    EXPECT_GT(at_birth, 0u);
    Rng rng(5);
    for (int op = 0; op < 20000; ++op)
        ghost.insert(rng.nextBelow(1000));
    EXPECT_EQ(ghost.memoryBytes(), at_birth)
        << "steady-state ghost churn must never grow the footprint";
}

} // namespace
