/**
 * @file
 * Unit tests for per-server caching simulation (Section 5.3).
 */

#include <gtest/gtest.h>

#include "sim/per_server.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::trace;
using sievestore::util::FatalError;
using sievestore::util::makeTime;

Request
makeRequest(uint64_t time, ServerId server, uint64_t offset, uint32_t len)
{
    Request r;
    r.time = time;
    r.volume = server; // one volume per server in these tests
    r.server = server;
    r.op = Op::Read;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = 100;
    return r;
}

sim::PerServerConfig
config(std::vector<uint64_t> capacities)
{
    sim::PerServerConfig cfg;
    cfg.capacities_blocks = std::move(capacities);
    cfg.policy.kind = sim::PolicyKind::AOD;
    cfg.base.track_occupancy = false;
    return cfg;
}

TEST(PerServer, IsolatesCaches)
{
    // Server 0 has room; server 1's cache is a single block and cannot
    // hold its 8-block working set.
    std::vector<Request> reqs = {
        makeRequest(1000, 0, 0, 8),
        makeRequest(2000, 1, 0, 8),
        makeRequest(10000000, 0, 0, 8),
        makeRequest(10001000, 1, 0, 8),
    };
    VectorTrace trace(std::move(reqs));
    const auto result = runPerServer(trace, config({1024, 1}));
    ASSERT_EQ(result.per_server.size(), 2u);
    const auto totals0 = core::sumReports(result.per_server[0]);
    const auto totals1 = core::sumReports(result.per_server[1]);
    EXPECT_EQ(totals0.hits, 8u);
    // With one frame, at most the last-allocated block can hit.
    EXPECT_LE(totals1.hits, 1u);
}

TEST(PerServer, CombinedSumsAcrossServers)
{
    std::vector<Request> reqs = {
        makeRequest(makeTime(0, 1), 0, 0, 4),
        makeRequest(makeTime(0, 2), 1, 0, 4),
        makeRequest(makeTime(1, 1), 0, 0, 4),
    };
    VectorTrace trace(std::move(reqs));
    const auto result = runPerServer(trace, config({64, 64}));
    ASSERT_EQ(result.combined.size(), 2u);
    EXPECT_EQ(result.combined[0].accesses, 8u);
    EXPECT_EQ(result.combined[1].accesses, 4u);
    EXPECT_EQ(result.total_capacity_blocks, 128u);
}

TEST(PerServer, StrandedCapacityCannotBeShared)
{
    // The O2 argument: server 1's big cache cannot help server 0's
    // large hot set. Ensemble-equivalent capacity split 50/50 loses.
    std::vector<Request> reqs;
    // Server 0 cycles over 64 blocks; server 1 touches 4.
    for (uint64_t round = 0; round < 3; ++round)
        for (uint64_t i = 0; i < 8; ++i)
            reqs.push_back(makeRequest(
                makeTime(0, 1 + round * 2, i), 0, i * 8, 8));
    for (uint64_t round = 0; round < 3; ++round)
        reqs.push_back(
            makeRequest(makeTime(0, 2 + round * 2), 1, 0, 4));
    std::sort(reqs.begin(), reqs.end(), requestTimeLess);
    VectorTrace trace(std::move(reqs));

    // Per-server: 34 blocks each (server 0 thrashes).
    auto split = runPerServer(trace, config({34, 34}));
    const auto split_hits = core::sumReports(split.combined).hits;

    // The same 68 blocks as one shared cache. Reuse the per-server
    // plumbing with every request mapped to one "server".
    trace.reset();
    std::vector<Request> remapped;
    Request r;
    while (trace.next(r)) {
        r.server = 0;
        remapped.push_back(r);
    }
    VectorTrace shared_trace(std::move(remapped));
    auto shared = runPerServer(shared_trace, config({68}));
    const auto shared_hits = core::sumReports(shared.combined).hits;

    EXPECT_GT(shared_hits, split_hits);
}

TEST(PerServer, RejectsOutOfRangeServer)
{
    std::vector<Request> reqs = {makeRequest(1000, 3, 0, 1)};
    VectorTrace trace(std::move(reqs));
    auto cfg = config({64, 64});
    EXPECT_THROW(runPerServer(trace, cfg), FatalError);
    EXPECT_THROW(runPerServer(trace, config({})), FatalError);
}

TEST(ElasticCapacities, TopPercentOfDailyUnique)
{
    std::vector<Request> reqs;
    // Server 0: 800 unique blocks on day 0, 160 on day 1.
    for (uint64_t i = 0; i < 100; ++i)
        reqs.push_back(makeRequest(makeTime(0, 1, i), 0, i * 8, 8));
    for (uint64_t i = 0; i < 20; ++i)
        reqs.push_back(makeRequest(makeTime(1, 1, i), 0, i * 8, 8));
    // Server 1: 80 unique blocks on day 0 only.
    for (uint64_t i = 0; i < 10; ++i)
        reqs.push_back(makeRequest(makeTime(0, 2, i), 1, i * 8, 8));
    std::sort(reqs.begin(), reqs.end(), requestTimeLess);
    VectorTrace trace(std::move(reqs));

    const auto caps = sim::elasticTopPercentCapacities(trace, 2, 0.01);
    ASSERT_EQ(caps.size(), 2u);
    EXPECT_EQ(caps[0], 8u); // ceil(0.01 * 800)
    EXPECT_EQ(caps[1], 1u); // ceil(0.01 * 80)
}

TEST(PerServer, CombinedSumsMeasuredStorageColumns)
{
    // Two servers, two days: combined[d] is DailyReport::add over the
    // per-server day-d reports, and the measured storage columns must
    // sum exactly — no loss or double-count across servers or days.
    std::vector<Request> reqs = {
        makeRequest(makeTime(0, 1), 0, 0, 8),
        makeRequest(makeTime(0, 2), 1, 0, 8),
        makeRequest(makeTime(1, 1), 0, 64, 8),
        makeRequest(makeTime(1, 2), 1, 64, 8),
    };
    VectorTrace trace(std::move(reqs));
    const auto result = runPerServer(trace, config({64, 64}));
    ASSERT_EQ(result.per_server.size(), 2u);
    ASSERT_GE(result.combined.size(), 2u);
    uint64_t seen_ios = 0;
    for (size_t d = 0; d < result.combined.size(); ++d) {
        uint64_t read_ios = 0, write_ios = 0, read_errs = 0,
                 write_errs = 0, read_ns = 0, write_ns = 0;
        for (const auto &days : result.per_server) {
            if (d >= days.size())
                continue;
            read_ios += days[d].storage_read_ios;
            write_ios += days[d].storage_write_ios;
            read_errs += days[d].storage_read_errors;
            write_errs += days[d].storage_write_errors;
            read_ns += days[d].storage_read_ns;
            write_ns += days[d].storage_write_ns;
        }
        EXPECT_EQ(result.combined[d].storage_read_ios, read_ios);
        EXPECT_EQ(result.combined[d].storage_write_ios, write_ios);
        EXPECT_EQ(result.combined[d].storage_read_errors, read_errs);
        EXPECT_EQ(result.combined[d].storage_write_errors,
                  write_errs);
        EXPECT_EQ(result.combined[d].storage_read_ns, read_ns);
        EXPECT_EQ(result.combined[d].storage_write_ns, write_ns);
        seen_ios += read_ios + write_ios;
    }
    // The default AnalyticBackend was live on every server.
    EXPECT_GT(seen_ios, 0u);
}

} // namespace
