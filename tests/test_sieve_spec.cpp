/**
 * @file
 * Unit tests for the spec-driven sieve engine (core/sieve_spec.hpp):
 * the FlatSieve switch-dispatch engine must agree decision-for-
 * decision with the virtual AllocationPolicy reference it
 * devirtualized, for every continuous kind, on long randomized access
 * streams. Appliance-level report equality is covered separately by
 * test_flat_cache_differential.cpp; these tests pin the engine itself.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <string>

#include "core/sieve_spec.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using core::AllocDecision;
using core::FlatSieve;
using core::SieveKind;
using core::SievePolicySpec;
using util::Rng;

const SieveKind kAllSieveKinds[] = {SieveKind::Aod, SieveKind::Wmna,
                                    SieveKind::SieveStoreC,
                                    SieveKind::RandSieveC,
                                    SieveKind::Adaptive};
// The matrix below must widen whenever the enum does — the same
// tripwire as the dispatch-switch guard in core/sieve_spec.hpp.
static_assert(std::size(kAllSieveKinds) == core::kSieveKindCount,
              "add the new SieveKind to kAllSieveKinds");

SievePolicySpec
specFor(SieveKind kind)
{
    SievePolicySpec spec;
    spec.kind = kind;
    spec.rand_probability = 0.03;
    spec.rand_seed = 11;
    spec.sieve_c.imct_slots = 1 << 12;
    spec.adaptive.base = spec.sieve_c;
    spec.adaptive.imct_slots = 1 << 10;
    spec.adaptive.ghost_budget = 512;
    return spec;
}

trace::BlockAccess
randomAccess(Rng &rng, uint64_t t)
{
    trace::BlockAccess a;
    a.time = t;
    a.completion = t;
    a.block = rng.nextBelow(1 << 14);
    a.server = static_cast<trace::ServerId>(rng.nextBelow(4));
    a.op = rng.nextBool(0.7) ? trace::Op::Read : trace::Op::Write;
    return a;
}

// ---- decision parity ----------------------------------------------

/**
 * Drive FlatSieve and the reference policy with an identical stream
 * of onMiss/onHit calls spanning several simulated days and require
 * the same AllocDecision on every miss.
 */
TEST(SieveSpec, FlatSieveMatchesReferenceDecisionForDecision)
{
    for (const SieveKind kind : kAllSieveKinds) {
        const SievePolicySpec spec = specFor(kind);
        FlatSieve flat(spec);
        auto reference = core::makeReferenceSievePolicy(spec);
        const std::string label = core::sieveKindName(kind);

        Rng rng(7 + static_cast<uint64_t>(kind));
        uint64_t t = 0;
        for (int op = 0; op < 200000; ++op) {
            t += rng.nextBelow(4000000); // ~3 simulated days total
            const trace::BlockAccess a = randomAccess(rng, t);
            if (rng.nextBool(0.25)) {
                flat.onHit(a);
                reference->onHit(a);
            } else {
                const AllocDecision f = flat.onMiss(a);
                const AllocDecision r = reference->onMiss(a);
                ASSERT_EQ(f, r) << label << " op " << op << " block "
                                << a.block;
            }
        }
        flat.checkInvariants();
    }
}

// ---- identity plumbing --------------------------------------------

TEST(SieveSpec, NamesMatchReferenceEngine)
{
    for (const SieveKind kind : kAllSieveKinds) {
        const SievePolicySpec spec = specFor(kind);
        FlatSieve flat(spec);
        auto reference = core::makeReferenceSievePolicy(spec);
        EXPECT_STREQ(flat.name(), reference->name());
        EXPECT_EQ(flat.kind(), kind);
    }
}

TEST(SieveSpec, SieveCAblationNamesFlowThroughSpec)
{
    SievePolicySpec spec = specFor(SieveKind::SieveStoreC);
    spec.sieve_c.mct_only = true;
    FlatSieve mct_only(spec);
    auto mct_ref = core::makeReferenceSievePolicy(spec);
    EXPECT_STREQ(mct_only.name(), mct_ref->name());

    spec.sieve_c.mct_only = false;
    spec.sieve_c.imct_only = true;
    FlatSieve imct_only(spec);
    auto imct_ref = core::makeReferenceSievePolicy(spec);
    EXPECT_STREQ(imct_only.name(), imct_ref->name());
}

TEST(SieveSpec, MetastateMatchesReferenceEngine)
{
    for (const SieveKind kind : kAllSieveKinds) {
        const SievePolicySpec spec = specFor(kind);
        FlatSieve flat(spec);
        auto reference = core::makeReferenceSievePolicy(spec);
        EXPECT_EQ(flat.metastateBytes(), reference->metastateBytes())
            << core::sieveKindName(kind);
    }
}

TEST(SieveSpec, KindNamesAreStable)
{
    EXPECT_STREQ(core::sieveKindName(SieveKind::Aod), "AOD");
    EXPECT_STREQ(core::sieveKindName(SieveKind::Wmna), "WMNA");
    EXPECT_STREQ(core::sieveKindName(SieveKind::SieveStoreC),
                 "SieveStore-C");
    EXPECT_STREQ(core::sieveKindName(SieveKind::RandSieveC),
                 "RandSieve-C");
    EXPECT_STREQ(core::sieveKindName(SieveKind::Adaptive),
                 "SieveStore-C/adaptive");
}

// ---- stateless-kind semantics -------------------------------------

TEST(SieveSpec, AodAllocatesEveryMissWmnaOnlyReads)
{
    FlatSieve aod(specFor(SieveKind::Aod));
    FlatSieve wmna(specFor(SieveKind::Wmna));
    Rng rng(3);
    uint64_t t = 0;
    for (int op = 0; op < 1000; ++op) {
        t += rng.nextBelow(1000000);
        const trace::BlockAccess a = randomAccess(rng, t);
        EXPECT_EQ(aod.onMiss(a), AllocDecision::Allocate);
        EXPECT_EQ(wmna.onMiss(a), a.op == trace::Op::Read
                                      ? AllocDecision::Allocate
                                      : AllocDecision::Bypass);
    }
}

} // namespace
