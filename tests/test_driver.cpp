/**
 * @file
 * Unit tests for the trace-to-appliance driver.
 */

#include <gtest/gtest.h>

#include "core/unsieved.hpp"
#include "sim/driver.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::trace;
using sievestore::util::FatalError;
using sievestore::util::makeTime;

Request
makeRequest(uint64_t time, uint64_t offset, uint32_t len,
            Op op = Op::Read)
{
    Request r;
    r.time = time;
    r.volume = 0;
    r.server = 0;
    r.op = op;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = 100;
    return r;
}

core::ApplianceConfig
config()
{
    core::ApplianceConfig cfg;
    cfg.cache_blocks = 1024;
    cfg.track_occupancy = false;
    return cfg;
}

TEST(Driver, RunsDayBoundariesForDiscretePolicies)
{
    core::Appliance app(config(),
                        std::make_unique<core::AdbaSelector>(2));
    std::vector<Request> reqs;
    for (uint64_t i = 0; i < 3; ++i)
        reqs.push_back(makeRequest(makeTime(0, 1 + i), 0, 8));
    reqs.push_back(makeRequest(makeTime(1, 1), 0, 8));
    VectorTrace trace(std::move(reqs));
    sim::runTrace(trace, app);
    ASSERT_GE(app.daily().size(), 2u);
    // The epoch boundary between day 0 and 1 installed block 0.
    EXPECT_EQ(app.daily()[1].hits, 8u);
}

TEST(Driver, HandlesMultiDayGaps)
{
    core::Appliance app(config(),
                        std::make_unique<core::AdbaSelector>(1));
    std::vector<Request> reqs = {
        makeRequest(makeTime(0, 1), 0, 8),
        makeRequest(makeTime(3, 1), 0, 8), // days 1-2 silent
    };
    VectorTrace trace(std::move(reqs));
    sim::runTrace(trace, app);
    // Block 0 was installed at end of day 0 but a full-epoch silence
    // (days 1 and 2 with no qualifying accesses) evicts it.
    ASSERT_GE(app.daily().size(), 4u);
    EXPECT_EQ(app.daily()[3].hits, 0u);
}

TEST(Driver, TraceNotStartingAtDayZero)
{
    core::Appliance app(config(), std::make_unique<core::AodPolicy>());
    std::vector<Request> reqs = {makeRequest(makeTime(5, 1), 0, 8)};
    VectorTrace trace(std::move(reqs));
    sim::runTrace(trace, app);
    ASSERT_EQ(app.daily().size(), 6u);
    EXPECT_EQ(app.daily()[5].accesses, 8u);
}

TEST(Driver, RejectsTimeTravel)
{
    core::Appliance app(config(), std::make_unique<core::AodPolicy>());
    // Hand-roll an unsorted reader (VectorTrace would reject it).
    class Unsorted : public TraceReader
    {
      public:
        bool
        next(Request &out) override
        {
            if (i >= 2)
                return false;
            out = makeRequest(i == 0 ? makeTime(2) : makeTime(1), 0, 8);
            ++i;
            return true;
        }
        void reset() override { i = 0; }

      private:
        int i = 0;
    };
    Unsorted trace;
    EXPECT_THROW(sim::runTrace(trace, app), FatalError);
}

TEST(Driver, EmptyTrace)
{
    core::Appliance app(config(), std::make_unique<core::AodPolicy>());
    VectorTrace trace(std::vector<Request>{});
    sim::runTrace(trace, app);
    EXPECT_TRUE(app.daily().empty());
}

} // namespace
