/**
 * @file
 * Unit tests for the SieveStore appliance: hit/miss accounting,
 * completion-time allocation, 4 KB I/O coalescing, and discrete epochs.
 */

#include <gtest/gtest.h>

#include "core/appliance.hpp"
#include "core/unsieved.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore::core;
using namespace sievestore::trace;
using sievestore::util::makeTime;

Request
makeRequest(uint64_t time, uint64_t offset, uint32_t len, Op op,
            uint32_t latency = 1000)
{
    Request r;
    r.time = time;
    r.volume = 1;
    r.server = 0;
    r.op = op;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = latency;
    return r;
}

ApplianceConfig
smallConfig(uint64_t blocks = 1024)
{
    ApplianceConfig cfg;
    cfg.cache_blocks = blocks;
    cfg.track_occupancy = true;
    return cfg;
}

TEST(Appliance, AodMissThenHit)
{
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    app.processRequest(makeRequest(1000, 0, 8, Op::Read));
    // Same blocks well after the first request's completion.
    app.processRequest(makeRequest(10000000, 0, 8, Op::Read));
    app.finishTrace();
    const DailyReport t = app.totals();
    EXPECT_EQ(t.accesses, 16u);
    EXPECT_EQ(t.hits, 8u);
    EXPECT_EQ(t.read_hits, 8u);
    EXPECT_EQ(t.allocation_write_blocks, 8u);
    EXPECT_DOUBLE_EQ(t.hitRatio(), 0.5);
}

TEST(Appliance, AllocationWaitsForCompletion)
{
    // Second access arrives before the first request completes: the
    // data is still being fetched, so it must count as a miss.
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    app.processRequest(makeRequest(1000, 0, 8, Op::Read, 50000));
    app.processRequest(makeRequest(2000, 0, 8, Op::Read, 50000));
    // And a third access after completion hits.
    app.processRequest(makeRequest(200000, 0, 8, Op::Read));
    app.finishTrace();
    const DailyReport t = app.totals();
    EXPECT_EQ(t.hits, 8u);
    EXPECT_EQ(t.accesses, 24u);
    // The in-flight duplicate was not allocated twice.
    EXPECT_EQ(t.allocation_write_blocks, 8u);
}

TEST(Appliance, InterpolatedPartialCompletion)
{
    // A 100-block request over 100 ms completes block i at ~(i+1) ms.
    // A touch of its first page at +50 ms hits; its last page misses.
    Appliance app(smallConfig(4096), std::make_unique<AodPolicy>());
    app.processRequest(makeRequest(0, 0, 100, Op::Read, 100000));
    app.processRequest(makeRequest(50000, 0, 8, Op::Read, 1000));
    app.processRequest(makeRequest(50001, 92, 8, Op::Read, 1000));
    app.finishTrace();
    const DailyReport t = app.totals();
    EXPECT_EQ(t.hits, 8u); // only the early blocks are resident
}

TEST(Appliance, WmnaBypassesWriteMisses)
{
    Appliance app(smallConfig(), std::make_unique<WmnaPolicy>());
    app.processRequest(makeRequest(1000, 0, 8, Op::Write));
    app.processRequest(makeRequest(10000000, 0, 8, Op::Write));
    app.finishTrace();
    const DailyReport t = app.totals();
    EXPECT_EQ(t.hits, 0u); // never allocated
    EXPECT_EQ(t.allocation_write_blocks, 0u);
    // A read miss does allocate, and a later write to it hits.
    app.processRequest(makeRequest(20000000, 100, 8, Op::Read));
    app.processRequest(makeRequest(30000000, 100, 8, Op::Write));
    app.finishTrace();
    const DailyReport t2 = app.totals();
    EXPECT_EQ(t2.write_hits, 8u);
    EXPECT_EQ(t2.allocation_write_blocks, 8u);
}

TEST(Appliance, SsdIoCoalescingPerPage)
{
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    // Allocate 4 aligned pages (32 blocks) and re-read them: the hit
    // service must be 4 read I/Os, not 32.
    app.processRequest(makeRequest(1000, 0, 32, Op::Read));
    app.processRequest(makeRequest(10000000, 0, 32, Op::Read));
    app.finishTrace();
    const DailyReport t = app.totals();
    EXPECT_EQ(t.hits, 32u);
    EXPECT_EQ(t.ssd_read_ios, 4u);
    // The allocation of 32 contiguous blocks is 4 write I/Os.
    EXPECT_EQ(t.ssd_alloc_ios, 4u);
}

TEST(Appliance, UnalignedHitChargedConservatively)
{
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    // Blocks 4..11 span two 4 KB pages: conservative 2-I/O charge.
    app.processRequest(makeRequest(1000, 4, 8, Op::Read));
    app.processRequest(makeRequest(10000000, 4, 8, Op::Read));
    app.finishTrace();
    EXPECT_EQ(app.totals().ssd_read_ios, 2u);
}

TEST(Appliance, WriteHitsAreSsdWrites)
{
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    app.processRequest(makeRequest(1000, 0, 8, Op::Read));
    app.processRequest(makeRequest(10000000, 0, 8, Op::Write));
    app.finishTrace();
    const DailyReport t = app.totals();
    EXPECT_EQ(t.write_hits, 8u);
    EXPECT_EQ(t.ssd_write_ios, 1u);
    EXPECT_EQ(t.ssd_read_ios, 0u);
}

TEST(Appliance, DailyAttributionByAccessTime)
{
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    app.processRequest(makeRequest(makeTime(0, 12), 0, 8, Op::Read));
    app.finishDay(0);
    app.processRequest(makeRequest(makeTime(1, 12), 0, 8, Op::Read));
    app.finishTrace();
    ASSERT_GE(app.daily().size(), 2u);
    EXPECT_EQ(app.daily()[0].accesses, 8u);
    EXPECT_EQ(app.daily()[0].hits, 0u);
    EXPECT_EQ(app.daily()[1].accesses, 8u);
    EXPECT_EQ(app.daily()[1].hits, 8u);
}

TEST(Appliance, AllocationAttributedToCompletionDay)
{
    // A request straddling midnight: linear interpolation completes
    // blocks 0-2 before midnight (day 0) and blocks 3-7 at or after it
    // (day 1); each allocation-write lands on its completion day.
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    const uint64_t t = makeTime(1) - 500; // 500 us before midnight
    app.processRequest(makeRequest(t, 0, 8, Op::Read, 1000));
    app.finishDay(0);
    app.finishTrace();
    ASSERT_GE(app.daily().size(), 2u);
    EXPECT_EQ(app.daily()[0].allocation_write_blocks, 3u);
    EXPECT_EQ(app.daily()[1].allocation_write_blocks, 5u);
}

TEST(Appliance, DiscreteEpochInstallsForNextDay)
{
    ApplianceConfig cfg = smallConfig();
    Appliance app(cfg, std::make_unique<AdbaSelector>(3));
    // Day 0: block 0 accessed 4 times (qualifies), block 100 once.
    for (uint64_t i = 0; i < 4; ++i)
        app.processRequest(
            makeRequest(makeTime(0, 1 + i), 0, 8, Op::Read));
    app.processRequest(makeRequest(makeTime(0, 6), 100, 8, Op::Read));
    EXPECT_EQ(app.totals().hits, 0u); // no online allocation
    app.finishDay(0);
    // Day 1: the qualified blocks hit; the singleton does not.
    app.processRequest(makeRequest(makeTime(1, 1), 0, 8, Op::Read));
    app.processRequest(makeRequest(makeTime(1, 2), 100, 8, Op::Read));
    app.finishTrace();
    ASSERT_GE(app.daily().size(), 2u);
    EXPECT_EQ(app.daily()[1].hits, 8u);
    EXPECT_EQ(app.daily()[1].batch_moved_blocks, 8u);
    EXPECT_EQ(app.daily()[0].batch_moved_blocks, 0u);
}

TEST(Appliance, EpochCancellationAvoidsRemoves)
{
    Appliance app(smallConfig(), std::make_unique<AdbaSelector>(2));
    // Block 0 is hot on both days: the second epoch must not re-move it.
    for (uint64_t d = 0; d < 2; ++d)
        for (uint64_t i = 0; i < 3; ++i)
            app.processRequest(
                makeRequest(makeTime(d, 1 + i), 0, 8, Op::Read));
    app.finishDay(0);
    const uint64_t after_first =
        app.totals().batch_moved_blocks;
    EXPECT_EQ(after_first, 8u);
    app.finishDay(1);
    app.finishTrace();
    EXPECT_EQ(app.totals().batch_moved_blocks, 8u); // retained, not moved
}

TEST(Appliance, PreloadInstallsBlocksAndCounts)
{
    Appliance app(smallConfig(), std::make_unique<AdbaSelector>(10));
    app.preload({makeBlockId(1, 0), makeBlockId(1, 1)}, 0);
    app.processRequest(makeRequest(1000, 0, 2, Op::Read));
    app.finishTrace();
    EXPECT_EQ(app.totals().hits, 2u);
    EXPECT_EQ(app.daily()[0].batch_moved_blocks, 2u);
}

TEST(Appliance, OccupancyRecordsHitAndAllocIos)
{
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    app.processRequest(makeRequest(1000, 0, 8, Op::Read));
    app.processRequest(makeRequest(10000000, 0, 8, Op::Read));
    app.finishTrace();
    const auto *occ = app.occupancy();
    ASSERT_NE(occ, nullptr);
    EXPECT_EQ(occ->totalReadIos(), 1u);  // the hit
    EXPECT_EQ(occ->totalWriteIos(), 1u); // the allocation
}

TEST(Appliance, OccupancyDisabled)
{
    ApplianceConfig cfg = smallConfig();
    cfg.track_occupancy = false;
    Appliance app(cfg, std::make_unique<AodPolicy>());
    EXPECT_EQ(app.occupancy(), nullptr);
}

TEST(Appliance, PolicyNamePassthrough)
{
    Appliance cont(smallConfig(), std::make_unique<WmnaPolicy>());
    EXPECT_STREQ(cont.policyName(), "WMNA");
    Appliance disc(smallConfig(), std::make_unique<AdbaSelector>(10));
    EXPECT_STREQ(disc.policyName(), "SieveStore-D");
}

TEST(Appliance, LruEvictionUnderPressure)
{
    // Cache of 16 blocks, AOD: newer allocations evict older ones.
    Appliance app(smallConfig(16), std::make_unique<AodPolicy>());
    app.processRequest(makeRequest(1000, 0, 8, Op::Read));
    app.processRequest(makeRequest(10000000, 100, 8, Op::Read));
    app.processRequest(makeRequest(20000000, 200, 8, Op::Read));
    // Blocks 0..7 have been evicted by the third allocation.
    app.processRequest(makeRequest(30000000, 0, 8, Op::Read));
    app.finishTrace();
    EXPECT_EQ(app.totals().hits, 0u);
}

TEST(DailyReport, AddSumsMeasuredStorageColumns)
{
    // The six measured storage_* columns accumulate exactly like the
    // model columns — distinct primes so a swapped or dropped field
    // cannot cancel out.
    DailyReport a;
    a.storage_read_ios = 2;
    a.storage_write_ios = 3;
    a.storage_read_errors = 5;
    a.storage_write_errors = 7;
    a.storage_read_ns = 11;
    a.storage_write_ns = 13;
    DailyReport b;
    b.storage_read_ios = 17;
    b.storage_write_ios = 19;
    b.storage_read_errors = 23;
    b.storage_write_errors = 29;
    b.storage_read_ns = 31;
    b.storage_write_ns = 37;
    a.add(b);
    EXPECT_EQ(a.storage_read_ios, 19u);
    EXPECT_EQ(a.storage_write_ios, 22u);
    EXPECT_EQ(a.storage_read_errors, 28u);
    EXPECT_EQ(a.storage_write_errors, 36u);
    EXPECT_EQ(a.storage_read_ns, 42u);
    EXPECT_EQ(a.storage_write_ns, 50u);
}

TEST(Appliance, StorageColumnsSumAcrossDayBarriers)
{
    // A trace spanning two days: totals() (a DailyReport::add fold)
    // must equal the field-wise sum of the per-day reports — every
    // measured I/O attributed to exactly one day, none lost or
    // double-counted at the barrier.
    Appliance app(smallConfig(), std::make_unique<AodPolicy>());
    app.processRequest(makeRequest(makeTime(0, 1), 0, 8, Op::Read));
    app.processRequest(makeRequest(makeTime(0, 2), 64, 8, Op::Write));
    app.processRequest(makeRequest(makeTime(1, 1), 0, 8, Op::Read));
    app.processRequest(makeRequest(makeTime(1, 2), 128, 8, Op::Read));
    app.finishTrace();
    ASSERT_GE(app.daily().size(), 2u);
    DailyReport sum;
    size_t active_days = 0;
    for (const auto &day : app.daily()) {
        if (day.storage_read_ios + day.storage_write_ios > 0)
            ++active_days;
        sum.add(day);
    }
    EXPECT_GE(active_days, 2u);
    const DailyReport t = app.totals();
    EXPECT_EQ(sum.storage_read_ios, t.storage_read_ios);
    EXPECT_EQ(sum.storage_write_ios, t.storage_write_ios);
    EXPECT_EQ(sum.storage_read_errors, t.storage_read_errors);
    EXPECT_EQ(sum.storage_write_errors, t.storage_write_errors);
    EXPECT_EQ(sum.storage_read_ns, t.storage_read_ns);
    EXPECT_EQ(sum.storage_write_ns, t.storage_write_ns);
    // The default AnalyticBackend really drained the charged I/Os.
    EXPECT_EQ(t.storage_read_ios, t.ssd_read_ios);
    EXPECT_GT(t.storage_write_ios, 0u);
}

} // namespace
