/**
 * @file
 * Storage differential tests: the same golden trace replayed through
 * the AnalyticBackend and the FileBackend must produce bit-identical
 * model-side DailyReports — storage changes observation, never policy
 * — while the measured-vs-predicted latency divergence is reported
 * per day and can be gated by a tolerance.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/storage_diff.hpp"
#include "trace/request.hpp"
#include "trace/trace_reader.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using sim::runStorageDifferential;
using sim::StorageDiffConfig;
using sim::StorageDiffResult;

trace::Request
makeRequest(uint64_t time, uint64_t offset, uint32_t len, trace::Op op)
{
    trace::Request r;
    r.time = time;
    r.volume = 1;
    r.server = 0;
    r.op = op;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = 1000;
    return r;
}

/**
 * Two-day golden workload with enough re-reference for every policy
 * under test to allocate and then hit: each day hammers a small hot
 * set (8 pages) and touches a cold stream once.
 */
trace::VectorTrace
goldenTrace()
{
    std::vector<trace::Request> reqs;
    for (uint64_t day = 0; day < 2; ++day) {
        const uint64_t base = day * util::kUsPerDay;
        for (uint64_t round = 0; round < 12; ++round) {
            const uint64_t t = base + 1000 + round * 2000000;
            reqs.push_back(makeRequest(t, 0, 64, trace::Op::Read));
            reqs.push_back(makeRequest(
                t + 500000, 1000 + round * 64, 16, trace::Op::Read));
            if (round % 3 == 0)
                reqs.push_back(makeRequest(t + 900000, 0, 16,
                                           trace::Op::Write));
        }
    }
    return trace::VectorTrace(std::move(reqs));
}

StorageDiffConfig
baseConfig()
{
    StorageDiffConfig config;
    config.appliance.cache_blocks = 4096;
    config.appliance.track_occupancy = false;
    config.file.workers = 0;
    config.file.engine = storage::FileBackendConfig::Engine::Sync;
    config.driver.check_invariants = true;
    return config;
}

void
expectModelIdentical(const StorageDiffResult &result)
{
    EXPECT_TRUE(result.model_identical);
    EXPECT_TRUE(result.within_tolerance);
    EXPECT_TRUE(result.ok());
    ASSERT_EQ(result.analytic_days.size(), result.file_days.size());
    ASSERT_EQ(result.days.size(), result.analytic_days.size());

    // The differential is only meaningful if the workload actually
    // produced device traffic.
    uint64_t predicted = 0, measured = 0, ops = 0;
    for (const sim::StorageDiffDay &row : result.days) {
        predicted += row.predicted_ns;
        measured += row.measured_ns;
    }
    for (const core::DailyReport &d : result.file_days)
        ops += d.storage_read_ios + d.storage_write_ios;
    EXPECT_GT(ops, 0u);
    EXPECT_GT(predicted, 0u);
    EXPECT_GT(measured, 0u);
}

TEST(StorageDifferential, ContinuousPolicyModelIdentical)
{
    trace::VectorTrace reader = goldenTrace();
    StorageDiffConfig config = baseConfig();
    config.policy.kind = sim::PolicyKind::SieveStoreC;
    expectModelIdentical(runStorageDifferential(reader, config));
}

TEST(StorageDifferential, UnsievedAodModelIdentical)
{
    trace::VectorTrace reader = goldenTrace();
    StorageDiffConfig config = baseConfig();
    config.policy.kind = sim::PolicyKind::AOD;
    expectModelIdentical(runStorageDifferential(reader, config));
}

TEST(StorageDifferential, DiscretePolicyModelIdentical)
{
    // SieveStore-D exercises the epoch batchReplace staging path
    // (page-coalesced batch writes + eviction trims).
    trace::VectorTrace reader = goldenTrace();
    StorageDiffConfig config = baseConfig();
    config.policy.kind = sim::PolicyKind::SieveStoreD;
    config.policy.adba_threshold = 2;
    const StorageDiffResult result =
        runStorageDifferential(reader, config);
    expectModelIdentical(result);
    uint64_t batch_moved = 0;
    for (const core::DailyReport &d : result.file_days)
        batch_moved += d.batch_moved_blocks;
    EXPECT_GT(batch_moved, 0u);
}

TEST(StorageDifferential, ToleranceGate)
{
    trace::VectorTrace reader = goldenTrace();
    StorageDiffConfig config = baseConfig();
    config.policy.kind = sim::PolicyKind::AOD;

    // Report-only (tolerance 0) never gates.
    config.ns_tolerance = 0;
    const StorageDiffResult report_only =
        runStorageDifferential(reader, config);
    EXPECT_TRUE(report_only.within_tolerance);

    // An unbounded tolerance always passes.
    config.ns_tolerance = UINT64_MAX;
    EXPECT_TRUE(
        runStorageDifferential(reader, config).within_tolerance);

    // A 1 ns tolerance trips as soon as any day diverges at all —
    // which a real device does against the X25-E datasheet numbers.
    uint64_t divergence = 0;
    for (const sim::StorageDiffDay &row : report_only.days)
        divergence += row.measured_ns > row.predicted_ns
                          ? row.measured_ns - row.predicted_ns
                          : row.predicted_ns - row.measured_ns;
    if (divergence > 1) {
        config.ns_tolerance = 1;
        EXPECT_FALSE(
            runStorageDifferential(reader, config).within_tolerance);
    }
}

TEST(StorageDifferential, RatioRowsAreWellFormed)
{
    trace::VectorTrace reader = goldenTrace();
    StorageDiffConfig config = baseConfig();
    config.policy.kind = sim::PolicyKind::SieveStoreC;
    const StorageDiffResult result =
        runStorageDifferential(reader, config);
    for (const sim::StorageDiffDay &row : result.days) {
        EXPECT_GE(row.day, 0);
        if (row.predicted_ns > 0)
            EXPECT_DOUBLE_EQ(
                row.ratio,
                static_cast<double>(row.measured_ns) /
                    static_cast<double>(row.predicted_ns));
        else
            EXPECT_EQ(row.ratio, 0.0);
    }
}

} // namespace
