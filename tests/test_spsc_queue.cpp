/**
 * @file
 * Unit and stress tests for the bounded SPSC ring buffer behind the
 * parallel replay engine. The single-threaded cases pin the edge
 * semantics (wraparound, full/empty, close); the two-thread cases are
 * the memory-ordering witnesses the tsan preset runs with race
 * detection enabled.
 */

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/spsc_queue.hpp"

namespace {

using sievestore::util::SpscQueue;

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscQueue<int>(4).capacity(), 4u);
    EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueue, EmptyPopFails)
{
    // Single-threaded tests legitimately play both SPSC endpoints, so
    // they claim both role capabilities (see assertProducerRole in
    // util/spsc_queue.hpp); the two-thread tests below claim exactly
    // one role per thread, which is what -Wthread-safety checks.
    SpscQueue<int> q(4);
    q.assertConsumerRole();
    int v = -1;
    EXPECT_FALSE(q.tryPop(v));
    EXPECT_EQ(v, -1);
    EXPECT_EQ(q.sizeApprox(), 0u);
}

TEST(SpscQueue, FullPushFailsAndLeavesValueIntact)
{
    SpscQueue<std::unique_ptr<int>> q(2);
    q.assertProducerRole();
    ASSERT_TRUE(q.tryPush(std::make_unique<int>(1)));
    ASSERT_TRUE(q.tryPush(std::make_unique<int>(2)));
    auto third = std::make_unique<int>(3);
    EXPECT_FALSE(q.tryPush(std::move(third)));
    // A failed move-push must not consume the value.
    ASSERT_NE(third, nullptr);
    EXPECT_EQ(*third, 3);
    EXPECT_EQ(q.sizeApprox(), 2u);
}

TEST(SpscQueue, FifoOrderAcrossWraparound)
{
    SpscQueue<uint64_t> q(4); // capacity 4; cycle it many times
    q.assertProducerRole();
    q.assertConsumerRole();
    uint64_t next_push = 0, next_pop = 0;
    for (int round = 0; round < 1000; ++round) {
        while (q.tryPush(uint64_t(next_push)))
            ++next_push;
        uint64_t v = 0;
        while (q.tryPop(v)) {
            EXPECT_EQ(v, next_pop);
            ++next_pop;
        }
    }
    EXPECT_EQ(next_push, next_pop);
    EXPECT_GE(next_push, 4000u);
}

TEST(SpscQueue, PartialDrainInterleavesCorrectly)
{
    // Push two, pop one: occupancy grows while FIFO order holds.
    SpscQueue<int> q(64);
    q.assertProducerRole();
    q.assertConsumerRole();
    int out = 0;
    for (int step = 0; step < 30; ++step) {
        ASSERT_TRUE(q.tryPush(2 * step));
        ASSERT_TRUE(q.tryPush(2 * step + 1));
        ASSERT_TRUE(q.tryPop(out));
        EXPECT_EQ(out, step);
    }
    EXPECT_EQ(q.sizeApprox(), 30u);
}

TEST(SpscQueue, CloseDrainsRemainingThenReportsEnd)
{
    SpscQueue<int> q(8);
    q.assertProducerRole();
    q.assertConsumerRole();
    q.push(1);
    q.push(2);
    q.close();
    EXPECT_TRUE(q.closed());
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v)); // closed and drained
}

TEST(SpscQueue, CloseOnEmptyQueueUnblocksConsumer)
{
    SpscQueue<int> q(4);
    std::thread consumer([&q] {
        q.assertConsumerRole();
        int v = 0;
        EXPECT_FALSE(q.pop(v));
    });
    q.assertProducerRole();
    q.close();
    consumer.join();
}

TEST(SpscQueue, MoveOnlyPayload)
{
    SpscQueue<std::unique_ptr<int>> q(4);
    q.assertProducerRole();
    q.assertConsumerRole();
    q.push(std::make_unique<int>(42));
    std::unique_ptr<int> out;
    ASSERT_TRUE(q.pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(SpscQueue, InPlaceProduceConsumeRoundTrips)
{
    // pushWith stages into the slot directly; tryConsumeWith hands
    // the slot back by const reference. Slots are recycled, so a
    // producer callback must overwrite what the previous occupant
    // left behind — exercised by wrapping around a tiny ring.
    SpscQueue<std::pair<int, int>> q(2);
    q.assertProducerRole();
    q.assertConsumerRole();
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(q.tryPushWith([i](std::pair<int, int> &slot) {
            slot = {i, i * i};
        }));
        bool seen = false;
        EXPECT_TRUE(
            q.tryConsumeWith([&](const std::pair<int, int> &slot) {
                EXPECT_EQ(slot.first, i);
                EXPECT_EQ(slot.second, i * i);
                seen = true;
            }));
        EXPECT_TRUE(seen);
    }
    EXPECT_FALSE(q.tryConsumeWith([](const std::pair<int, int> &) {
        FAIL() << "empty queue must not invoke the consumer";
    }));
}

TEST(SpscQueue, InPlacePushFailsOnFullRingWithoutCallback)
{
    SpscQueue<int> q(2);
    q.assertProducerRole();
    q.assertConsumerRole();
    EXPECT_TRUE(q.tryPushWith([](int &slot) { slot = 1; }));
    EXPECT_TRUE(q.tryPushWith([](int &slot) { slot = 2; }));
    EXPECT_FALSE(q.tryPushWith(
        [](int &) { FAIL() << "full ring must not invoke the filler"; }));
    int v = 0;
    ASSERT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 1);
    q.pushWith([](int &slot) { slot = 3; }); // blocking variant
    ASSERT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 2);
    ASSERT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 3);
}

/**
 * Two-thread sequence check: the consumer must observe exactly
 * 0,1,2,...,n-1. `producer_batch` / `consumer_batch` skew which side
 * runs ahead: a large producer batch keeps the ring full (consumer is
 * the bottleneck), a large consumer batch keeps it empty (producer is
 * the bottleneck), exercising both cached-index refresh paths.
 */
void
streamThrough(size_t capacity, uint64_t n, int producer_batch,
              int consumer_batch)
{
    SpscQueue<uint64_t> q(capacity);
    std::thread producer([&] {
        q.assertProducerRole();
        for (uint64_t i = 0; i < n; ++i) {
            q.push(uint64_t(i));
            if (producer_batch && (i + 1) % uint64_t(producer_batch) == 0)
                std::this_thread::yield();
        }
        q.close();
    });
    q.assertConsumerRole();
    uint64_t expected = 0;
    uint64_t v = 0;
    while (q.pop(v)) {
        ASSERT_EQ(v, expected);
        ++expected;
        if (consumer_batch &&
            expected % uint64_t(consumer_batch) == 0)
            std::this_thread::yield();
    }
    producer.join();
    EXPECT_EQ(expected, n);
}

TEST(SpscQueueStress, BalancedProducerConsumer)
{
    streamThrough(64, 50000, 0, 0);
}

TEST(SpscQueueStress, ProducerFasterThanConsumer)
{
    // Tiny ring + consumer yielding every element: the producer lives
    // on the full-queue path.
    streamThrough(2, 20000, 0, 1);
}

TEST(SpscQueueStress, ConsumerFasterThanProducer)
{
    // Producer yields constantly: the consumer lives on the
    // empty-queue path.
    streamThrough(1024, 20000, 1, 0);
}

TEST(SpscQueueStress, ManySmallClosedStreams)
{
    // Close/reopen pattern as the replay engine uses it: one queue
    // per stream, short bursts, consumer must never lose the tail.
    for (int stream = 0; stream < 200; ++stream) {
        SpscQueue<int> q(4);
        std::thread producer([&q, stream] {
            q.assertProducerRole();
            for (int i = 0; i < stream % 7; ++i)
                q.push(int(i));
            q.close();
        });
        q.assertConsumerRole();
        int count = 0, v = 0;
        while (q.pop(v)) {
            EXPECT_EQ(v, count);
            ++count;
        }
        producer.join();
        EXPECT_EQ(count, stream % 7);
    }
}

} // namespace
