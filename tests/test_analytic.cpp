/**
 * @file
 * Unit tests for the Table 2 analytical model — exact paper numbers.
 */

#include <gtest/gtest.h>

#include "sim/analytic.hpp"
#include "util/logging.hpp"

namespace {

using namespace sievestore::sim;
using sievestore::util::FatalError;

TEST(Table2, AodRowMatchesPaper)
{
    // "Allocate-on-demand (AOD): 35% | 65% | 65% | 26.25% |
    //  73.75% (=8.75% + 65%)"
    const Table2Row row = table2Row(Table2Policy::AOD);
    EXPECT_DOUBLE_EQ(row.hits, 0.35);
    EXPECT_DOUBLE_EQ(row.misses, 0.65);
    EXPECT_DOUBLE_EQ(row.alloc_writes, 0.65);
    EXPECT_DOUBLE_EQ(row.read_hits, 0.2625);
    EXPECT_DOUBLE_EQ(row.write_ops, 0.7375);
    EXPECT_DOUBLE_EQ(row.ssd_ops, 1.0); // all accesses touch the SSD
}

TEST(Table2, WmnaRowMatchesPaper)
{
    // "Write-no-allocate (WMNA): ... 48.75% | 26.25% |
    //  57.5% (=8.75%+48.75%)"
    const Table2Row row = table2Row(Table2Policy::WMNA);
    EXPECT_DOUBLE_EQ(row.alloc_writes, 0.4875);
    EXPECT_DOUBLE_EQ(row.write_ops, 0.575);
    EXPECT_DOUBLE_EQ(row.read_hits, 0.2625);
    // "more than doubling the number of SSD operations (~2.4X)"
    EXPECT_NEAR(row.ssd_ops / 0.35, 2.39, 0.01);
}

TEST(Table2, IsaRowMatchesPaper)
{
    // "Ideal-selective-allocate (ISA): ... eps% | 26.25% |
    //  <9.75% (=8.75%+eps%)"
    const Table2Row row = table2Row(Table2Policy::ISA);
    EXPECT_DOUBLE_EQ(row.alloc_writes, 0.01);
    EXPECT_LT(row.write_ops, 0.0975 + 1e-12);
    EXPECT_DOUBLE_EQ(row.read_hits, 0.2625);
}

TEST(Table2, WmnaWriteIncreaseFactor)
{
    // "...increasing the number of SSD writes by a factor of 5.6X"
    // relative to write hits alone (8.75%).
    const Table2Row wmna = table2Row(Table2Policy::WMNA);
    EXPECT_NEAR(wmna.write_ops / 0.0875, 6.57, 0.01);
    // The paper's 5.6X compares WMNA's writes against... AOD? No: the
    // increase over the hits-only baseline counts alloc-writes added on
    // top of write hits: 48.75/8.75 = 5.57X additional writes.
    EXPECT_NEAR(wmna.alloc_writes / 0.0875, 5.57, 0.01);
}

TEST(Table2, ParameterSensitivity)
{
    // Higher hit rates shrink every policy's allocation-writes.
    const Table2Row low = table2Row(Table2Policy::AOD, 0.2);
    const Table2Row high = table2Row(Table2Policy::AOD, 0.6);
    EXPECT_GT(low.alloc_writes, high.alloc_writes);
    // Read-only workload: WMNA degenerates to AOD.
    const Table2Row aod = table2Row(Table2Policy::AOD, 0.35, 1.0);
    const Table2Row wmna = table2Row(Table2Policy::WMNA, 0.35, 1.0);
    EXPECT_DOUBLE_EQ(aod.alloc_writes, wmna.alloc_writes);
}

TEST(Table2, RejectsBadInputs)
{
    EXPECT_THROW(table2Row(Table2Policy::AOD, -0.1), FatalError);
    EXPECT_THROW(table2Row(Table2Policy::AOD, 1.1), FatalError);
    EXPECT_THROW(table2Row(Table2Policy::AOD, 0.5, 2.0), FatalError);
}

} // namespace
