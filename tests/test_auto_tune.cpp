/**
 * @file
 * Unit tests for the self-tuning sieves (Section 7 "tuning"): the
 * churn-budget controller (AutoTunedSievePolicy) and the online
 * adaptive sieve (AdaptiveSievePolicy, shadow-candidate epochs).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/appliance.hpp"
#include "core/auto_tune.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "trace/trace_reader.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore::core;
using sievestore::trace::BlockAccess;
using sievestore::trace::BlockId;
using sievestore::trace::Op;
using sievestore::util::FatalError;
using sievestore::util::makeTime;
using sievestore::util::Rng;

BlockAccess
missAt(BlockId block, uint64_t t)
{
    BlockAccess a;
    a.block = block;
    a.time = t;
    a.completion = t + 1000;
    a.op = Op::Read;
    return a;
}

SieveStoreCConfig
looseSieve()
{
    SieveStoreCConfig cfg;
    cfg.imct_slots = 1 << 14;
    cfg.t1 = 1;
    cfg.t2 = 1;
    return cfg;
}

TEST(AutoTune, TightensWhenChurnExceedsBudget)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 100;   // budget: 100 allocations/day
    tune.churn_budget = 1.0;
    AutoTunedSievePolicy policy(looseSieve(), tune);
    ASSERT_EQ(policy.currentT2(), 1u);

    // Day 0: 2000 distinct blocks each miss twice -> ~2000 allocations
    // with t1 = t2 = 1: way over budget.
    for (BlockId b = 0; b < 2000; ++b) {
        policy.onMiss(missAt(b, makeTime(0, 1)));
        policy.onMiss(missAt(b, makeTime(0, 2)));
    }
    EXPECT_GT(policy.allocationsToday(), 100u);
    // First access of day 1 closes day 0 and raises t2.
    policy.onMiss(missAt(999999, makeTime(1, 1)));
    EXPECT_EQ(policy.currentT2(), 2u);
    ASSERT_EQ(policy.t2History().size(), 1u);
    EXPECT_EQ(policy.t2History()[0], 2u);
}

TEST(AutoTune, LoosensWhenFarUnderBudget)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 1000000; // effectively unlimited budget
    SieveStoreCConfig sieve = looseSieve();
    sieve.t2 = 8;
    AutoTunedSievePolicy policy(sieve, tune);
    // A quiet day 0 (no allocations), then day 1 arrives.
    policy.onMiss(missAt(1, makeTime(0, 1)));
    policy.onMiss(missAt(2, makeTime(1, 1)));
    EXPECT_EQ(policy.currentT2(), 7u);
}

TEST(AutoTune, HoldsInsideHysteresisBand)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 100;
    tune.churn_budget = 1.0;
    tune.slack = 0.5; // accept 50-150 allocations/day
    SieveStoreCConfig sieve = looseSieve();
    sieve.t2 = 4;
    AutoTunedSievePolicy policy(sieve, tune);
    // Day 0: exactly 100 allocations (each block misses t1+t2 times).
    for (BlockId b = 0; b < 100; ++b)
        for (uint64_t m = 0; m < 5; ++m)
            policy.onMiss(missAt(b, makeTime(0, 1, m)));
    policy.onMiss(missAt(424242, makeTime(1, 1)));
    EXPECT_EQ(policy.currentT2(), 4u); // unchanged
}

TEST(AutoTune, RespectsBounds)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 1;
    tune.min_t2 = 2;
    tune.max_t2 = 3;
    SieveStoreCConfig sieve = looseSieve();
    sieve.t2 = 10; // clamped down to max at construction
    AutoTunedSievePolicy policy(sieve, tune);
    EXPECT_EQ(policy.currentT2(), 3u);
    // Massive churn across several days cannot push above max_t2.
    for (uint64_t d = 0; d < 3; ++d)
        for (BlockId b = 0; b < 500; ++b)
            for (uint64_t m = 0; m < 6; ++m)
                policy.onMiss(missAt(b, makeTime(d, 1, m)));
    policy.onMiss(missAt(9, makeTime(5, 1)));
    EXPECT_LE(policy.currentT2(), 3u);
    EXPECT_GE(policy.currentT2(), 2u);
}

TEST(AutoTune, OneStepPerDay)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 1; // any allocation exceeds budget
    AutoTunedSievePolicy policy(looseSieve(), tune);
    for (uint64_t d = 0; d < 4; ++d)
        for (BlockId b = 0; b < 50; ++b)
            for (uint64_t m = 0; m < 3; ++m)
                policy.onMiss(missAt(b, makeTime(d, 1, m)));
    // Three day boundaries crossed -> at most +3 steps from t2 = 1.
    EXPECT_LE(policy.currentT2(), 4u);
    EXPECT_EQ(policy.t2History().size(), 3u);
}

TEST(AutoTune, RejectsBadConfig)
{
    AutoTuneConfig bad;
    bad.min_t2 = 5;
    bad.max_t2 = 2;
    EXPECT_THROW(AutoTunedSievePolicy(looseSieve(), bad), FatalError);
    AutoTuneConfig zero;
    zero.churn_budget = 0.0;
    EXPECT_THROW(AutoTunedSievePolicy(looseSieve(), zero), FatalError);
}

TEST(AutoTune, Name)
{
    AutoTunedSievePolicy policy(looseSieve(), AutoTuneConfig{});
    EXPECT_STREQ(policy.name(), "SieveStore-C/auto");
    EXPECT_GT(policy.metastateBytes(), 0u);
}

// ---- online adaptive sieve ----------------------------------------

AdaptiveSieveConfig
smallAdaptive(uint32_t t1, uint32_t t2)
{
    AdaptiveSieveConfig cfg;
    cfg.base.imct_slots = 1 << 12;
    cfg.base.t1 = t1;
    cfg.base.t2 = t2;
    cfg.imct_slots = 1 << 10;
    cfg.ghost_budget = 512;
    return cfg;
}

/**
 * A graded-popularity day: block b misses (b % 12) + 1 times, so
 * every loosening of (t1, t2) captures strictly more accesses. The
 * hill has a monotone gradient toward looser thresholds.
 */
void
gradedDay(AdaptiveSievePolicy &policy, uint64_t day, uint64_t blocks)
{
    for (BlockId b = 0; b < blocks; ++b)
        for (uint64_t m = 0; m < b % 12 + 1; ++m)
            policy.onMiss(missAt(b, makeTime(day, 1, m)));
    policy.onDayClose(static_cast<int>(day));
}

TEST(AdaptiveSieve, WalksTowardTheCapturingSetting)
{
    // Start too tight for the workload: t1 = 6, t2 = 4 admits only
    // blocks with >= 10 misses/day. Every one-step loosening captures
    // more, so the day-close hill climb must move and keep moving.
    AdaptiveSievePolicy policy(smallAdaptive(6, 4));
    ASSERT_EQ(policy.currentT1(), 6u);
    ASSERT_EQ(policy.currentT2(), 4u);

    for (uint64_t day = 0; day < 6; ++day)
        gradedDay(policy, day, 200);

    EXPECT_GE(policy.switches(), 2u);
    EXPECT_LT(policy.currentT1() + policy.currentT2(), 10u);
    EXPECT_EQ(policy.history().size(), 6u);
    policy.checkInvariants();
}

TEST(AdaptiveSieve, IncumbentCapturesAfterConvergence)
{
    // Once the sieve has walked loose enough, the incumbent's shadow
    // must itself be capturing accesses — the signal the day-close
    // comparison and the bench's accesses-captured column rest on.
    AdaptiveSievePolicy policy(smallAdaptive(4, 2));
    for (uint64_t day = 0; day < 4; ++day)
        gradedDay(policy, day, 200);
    // Play one more day without closing it and read the epoch counter.
    for (BlockId b = 0; b < 200; ++b)
        for (uint64_t m = 0; m < b % 12 + 1; ++m)
            policy.onMiss(missAt(b, makeTime(4, 1, m)));
    EXPECT_GT(policy.candidateCaptured(0), 0u);
    policy.checkInvariants();
}

TEST(AdaptiveSieve, StaysWithinBoundsUnderAdversarialStreams)
{
    AdaptiveSieveConfig cfg = smallAdaptive(9, 9);
    cfg.min_t1 = 3;
    cfg.max_t1 = 5;
    cfg.min_t2 = 2;
    cfg.max_t2 = 4;
    AdaptiveSievePolicy policy(cfg);
    // Construction clamps the base setting into the bounds.
    EXPECT_EQ(policy.currentT1(), 5u);
    EXPECT_EQ(policy.currentT2(), 4u);

    Rng rng(31);
    for (uint64_t day = 0; day < 8; ++day) {
        // Alternate hot loops and cold sprays to push the hill climb
        // in both directions.
        for (uint64_t op = 0; op < 4000; ++op) {
            const BlockId b = day % 2 == 0 ? rng.nextBelow(32)
                                           : rng.nextBelow(100000);
            policy.onMiss(missAt(b, makeTime(day, 1, op % 50)));
        }
        policy.onDayClose(static_cast<int>(day));
        EXPECT_GE(policy.currentT1(), cfg.min_t1);
        EXPECT_LE(policy.currentT1(), cfg.max_t1);
        EXPECT_GE(policy.currentT2(), cfg.min_t2);
        EXPECT_LE(policy.currentT2(), cfg.max_t2);
        for (size_t i = 0; i < policy.candidateCount(); ++i) {
            const auto [t1, t2] = policy.candidateSetting(i);
            EXPECT_GE(t1, cfg.min_t1);
            EXPECT_LE(t1, cfg.max_t1);
            EXPECT_GE(t2, cfg.min_t2);
            EXPECT_LE(t2, cfg.max_t2);
        }
        policy.checkInvariants();
    }
}

TEST(AdaptiveSieve, IdleEpochsKeepTheIncumbent)
{
    AdaptiveSievePolicy policy(smallAdaptive(9, 4));
    for (int day = 0; day < 3; ++day)
        policy.onDayClose(day);
    EXPECT_EQ(policy.switches(), 0u);
    EXPECT_EQ(policy.currentT1(), 9u);
    EXPECT_EQ(policy.currentT2(), 4u);
    ASSERT_EQ(policy.history().size(), 3u);
    for (const auto &[t1, t2] : policy.history()) {
        EXPECT_EQ(t1, 9u);
        EXPECT_EQ(t2, 4u);
    }
}

TEST(AdaptiveSieve, ChargesShadowStructures)
{
    // The adaptive sieve's metastate must include every shadow sieve
    // and ghost, not just the production tables.
    AdaptiveSieveConfig cfg = smallAdaptive(9, 4);
    const SieveStoreCPolicy production(cfg.base);
    AdaptiveSievePolicy policy(cfg);
    EXPECT_STREQ(policy.name(), "SieveStore-C/adaptive");
    EXPECT_GT(policy.metastateBytes(), production.metastateBytes());
    const auto tun = policy.tuning();
    ASSERT_TRUE(tun.has_value());
    EXPECT_EQ(tun->t1, 9u);
    EXPECT_EQ(tun->t2, 4u);
    EXPECT_EQ(tun->switches, 0u);
}

TEST(AdaptiveSieve, RejectsBadConfig)
{
    AdaptiveSieveConfig bad = smallAdaptive(4, 2);
    bad.min_t1 = 5;
    bad.max_t1 = 2;
    EXPECT_THROW(AdaptiveSievePolicy{bad}, FatalError);
    AdaptiveSieveConfig zero = smallAdaptive(4, 2);
    zero.ghost_budget = 0;
    EXPECT_THROW(AdaptiveSievePolicy{zero}, FatalError);
}

/** A multi-day trace with per-day popularity drift. */
std::vector<sievestore::trace::Request>
driftingTrace(uint64_t seed, size_t n)
{
    namespace trace = sievestore::trace;
    sievestore::util::Rng rng(seed);
    std::vector<trace::Request> reqs;
    uint64_t t = 0;
    for (size_t i = 0; i < n; ++i) {
        trace::Request r;
        t += rng.nextBelow(90 * 1000000);
        r.time = t;
        r.volume = static_cast<trace::VolumeId>(rng.nextBelow(4));
        r.server = static_cast<trace::ServerId>(rng.nextBelow(3));
        r.op = rng.nextBool(0.7) ? trace::Op::Read : trace::Op::Write;
        // Hot set drifts with the day so the tuner has work to do.
        const uint64_t day = t / sievestore::util::kUsPerDay;
        r.offset_blocks = rng.nextBool(0.6)
                              ? (day * 97 + rng.nextBelow(48)) * 8
                              : rng.nextBelow(1 << 18);
        r.length_blocks = 1 + static_cast<uint32_t>(rng.nextBelow(16));
        r.latency_us = static_cast<uint32_t>(rng.nextBelow(4000000));
        reqs.push_back(r);
    }
    return reqs;
}

TEST(AdaptiveSieve, ApplianceFillsTuningColumnsIdenticallyAcrossEngines)
{
    namespace sim = sievestore::sim;
    namespace trace = sievestore::trace;
    const auto reqs = driftingTrace(2027, 5000);

    sim::PolicyConfig policy;
    policy.kind = sim::PolicyKind::Adaptive;
    policy.sieve_c.imct_slots = 1 << 12;
    policy.sieve_c.t1 = 4;
    policy.sieve_c.t2 = 2;
    policy.adaptive.imct_slots = 1 << 10;
    policy.adaptive.ghost_budget = 512;

    ApplianceConfig flat_cfg;
    flat_cfg.cache_blocks = 512;
    flat_cfg.track_occupancy = false;
    auto flat_app = sim::makeAppliance(policy, flat_cfg);

    // Reference engine: the same AdaptiveSievePolicy behind the
    // virtual AllocationPolicy interface, exactly as the
    // SIEVE_FLAT_SIEVE=OFF build would run it.
    AdaptiveSieveConfig ref_adaptive = policy.adaptive;
    ref_adaptive.base = policy.sieve_c;
    ApplianceConfig ref_cfg = flat_cfg;
    ref_cfg.allocation = [ref_adaptive] {
        return std::make_unique<AdaptiveSievePolicy>(ref_adaptive);
    };
    auto ref_app = sim::makeAppliance(policy, ref_cfg);

    trace::VectorTrace flat_trace(reqs);
    sim::runTrace(flat_trace, *flat_app);
    trace::VectorTrace ref_trace(reqs);
    sim::runTrace(ref_trace, *ref_app);

    EXPECT_STREQ(flat_app->policyName(), "SieveStore-C/adaptive");
    const auto &fd = flat_app->daily();
    const auto &rd = ref_app->daily();
    ASSERT_EQ(fd.size(), rd.size());
    ASSERT_GE(fd.size(), 3u) << "trace must span several days";
    bool any_tuning = false;
    uint64_t switch_sum = 0;
    for (size_t d = 0; d < fd.size(); ++d) {
        EXPECT_EQ(fd[d].hits, rd[d].hits) << "day " << d;
        EXPECT_EQ(fd[d].allocation_write_blocks,
                  rd[d].allocation_write_blocks)
            << "day " << d;
        EXPECT_EQ(fd[d].tune_t1, rd[d].tune_t1) << "day " << d;
        EXPECT_EQ(fd[d].tune_t2, rd[d].tune_t2) << "day " << d;
        EXPECT_EQ(fd[d].tune_switches, rd[d].tune_switches)
            << "day " << d;
        EXPECT_LE(fd[d].tune_switches, 1u)
            << "at most one switch per day close";
        any_tuning = any_tuning || fd[d].tune_t1 != 0;
        switch_sum += fd[d].tune_switches;
    }
    EXPECT_TRUE(any_tuning) << "tuning columns never populated";
    EXPECT_EQ(flat_app->totals().tune_switches, switch_sum);
    flat_app->checkInvariants();
    ref_app->checkInvariants();
}

} // namespace
