/**
 * @file
 * Unit tests for the self-tuning sieve (Section 7 "tuning").
 */

#include <gtest/gtest.h>

#include "core/auto_tune.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore::core;
using sievestore::trace::BlockAccess;
using sievestore::trace::BlockId;
using sievestore::trace::Op;
using sievestore::util::FatalError;
using sievestore::util::makeTime;

BlockAccess
missAt(BlockId block, uint64_t t)
{
    BlockAccess a;
    a.block = block;
    a.time = t;
    a.completion = t + 1000;
    a.op = Op::Read;
    return a;
}

SieveStoreCConfig
looseSieve()
{
    SieveStoreCConfig cfg;
    cfg.imct_slots = 1 << 14;
    cfg.t1 = 1;
    cfg.t2 = 1;
    return cfg;
}

TEST(AutoTune, TightensWhenChurnExceedsBudget)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 100;   // budget: 100 allocations/day
    tune.churn_budget = 1.0;
    AutoTunedSievePolicy policy(looseSieve(), tune);
    ASSERT_EQ(policy.currentT2(), 1u);

    // Day 0: 2000 distinct blocks each miss twice -> ~2000 allocations
    // with t1 = t2 = 1: way over budget.
    for (BlockId b = 0; b < 2000; ++b) {
        policy.onMiss(missAt(b, makeTime(0, 1)));
        policy.onMiss(missAt(b, makeTime(0, 2)));
    }
    EXPECT_GT(policy.allocationsToday(), 100u);
    // First access of day 1 closes day 0 and raises t2.
    policy.onMiss(missAt(999999, makeTime(1, 1)));
    EXPECT_EQ(policy.currentT2(), 2u);
    ASSERT_EQ(policy.t2History().size(), 1u);
    EXPECT_EQ(policy.t2History()[0], 2u);
}

TEST(AutoTune, LoosensWhenFarUnderBudget)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 1000000; // effectively unlimited budget
    SieveStoreCConfig sieve = looseSieve();
    sieve.t2 = 8;
    AutoTunedSievePolicy policy(sieve, tune);
    // A quiet day 0 (no allocations), then day 1 arrives.
    policy.onMiss(missAt(1, makeTime(0, 1)));
    policy.onMiss(missAt(2, makeTime(1, 1)));
    EXPECT_EQ(policy.currentT2(), 7u);
}

TEST(AutoTune, HoldsInsideHysteresisBand)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 100;
    tune.churn_budget = 1.0;
    tune.slack = 0.5; // accept 50-150 allocations/day
    SieveStoreCConfig sieve = looseSieve();
    sieve.t2 = 4;
    AutoTunedSievePolicy policy(sieve, tune);
    // Day 0: exactly 100 allocations (each block misses t1+t2 times).
    for (BlockId b = 0; b < 100; ++b)
        for (uint64_t m = 0; m < 5; ++m)
            policy.onMiss(missAt(b, makeTime(0, 1, m)));
    policy.onMiss(missAt(424242, makeTime(1, 1)));
    EXPECT_EQ(policy.currentT2(), 4u); // unchanged
}

TEST(AutoTune, RespectsBounds)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 1;
    tune.min_t2 = 2;
    tune.max_t2 = 3;
    SieveStoreCConfig sieve = looseSieve();
    sieve.t2 = 10; // clamped down to max at construction
    AutoTunedSievePolicy policy(sieve, tune);
    EXPECT_EQ(policy.currentT2(), 3u);
    // Massive churn across several days cannot push above max_t2.
    for (uint64_t d = 0; d < 3; ++d)
        for (BlockId b = 0; b < 500; ++b)
            for (uint64_t m = 0; m < 6; ++m)
                policy.onMiss(missAt(b, makeTime(d, 1, m)));
    policy.onMiss(missAt(9, makeTime(5, 1)));
    EXPECT_LE(policy.currentT2(), 3u);
    EXPECT_GE(policy.currentT2(), 2u);
}

TEST(AutoTune, OneStepPerDay)
{
    AutoTuneConfig tune;
    tune.cache_blocks = 1; // any allocation exceeds budget
    AutoTunedSievePolicy policy(looseSieve(), tune);
    for (uint64_t d = 0; d < 4; ++d)
        for (BlockId b = 0; b < 50; ++b)
            for (uint64_t m = 0; m < 3; ++m)
                policy.onMiss(missAt(b, makeTime(d, 1, m)));
    // Three day boundaries crossed -> at most +3 steps from t2 = 1.
    EXPECT_LE(policy.currentT2(), 4u);
    EXPECT_EQ(policy.t2History().size(), 3u);
}

TEST(AutoTune, RejectsBadConfig)
{
    AutoTuneConfig bad;
    bad.min_t2 = 5;
    bad.max_t2 = 2;
    EXPECT_THROW(AutoTunedSievePolicy(looseSieve(), bad), FatalError);
    AutoTuneConfig zero;
    zero.churn_budget = 0.0;
    EXPECT_THROW(AutoTunedSievePolicy(looseSieve(), zero), FatalError);
}

TEST(AutoTune, Name)
{
    AutoTunedSievePolicy policy(looseSieve(), AutoTuneConfig{});
    EXPECT_STREQ(policy.name(), "SieveStore-C/auto");
    EXPECT_GT(policy.metastateBytes(), 0u);
}

} // namespace
