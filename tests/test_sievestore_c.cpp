/**
 * @file
 * Unit tests for the SieveStore-C two-tier continuous sieve.
 */

#include <gtest/gtest.h>

#include "core/sievestore_c.hpp"
#include "util/logging.hpp"

namespace {

using namespace sievestore::core;
using sievestore::trace::BlockAccess;
using sievestore::trace::BlockId;
using sievestore::trace::Op;
using sievestore::util::FatalError;
using sievestore::util::TimeUs;

BlockAccess
missAt(BlockId block, TimeUs t)
{
    BlockAccess a;
    a.block = block;
    a.time = t;
    a.completion = t + 1000;
    a.op = Op::Read;
    return a;
}

SieveStoreCConfig
smallConfig()
{
    SieveStoreCConfig cfg;
    cfg.imct_slots = 1 << 16; // plenty of slots: no aliasing in tests
    cfg.t1 = 9;
    cfg.t2 = 4;
    return cfg;
}

TEST(SieveStoreC, AllocatesOnExactlyT1PlusT2Misses)
{
    SieveStoreCPolicy sieve(smallConfig());
    const BlockId b = 12345;
    // t1 = 9 misses to qualify past the IMCT, then t2 = 4 additional
    // misses in the MCT; the allocation fires on miss 13.
    for (uint64_t i = 1; i <= 12; ++i) {
        EXPECT_EQ(sieve.onMiss(missAt(b, 1000 * i)),
                  AllocDecision::Bypass)
            << "miss " << i;
    }
    EXPECT_EQ(sieve.onMiss(missAt(b, 13000)), AllocDecision::Allocate);
    EXPECT_EQ(sieve.allocations(), 1u);
    EXPECT_EQ(sieve.imctQualified(), 1u);
    // After allocation the MCT entry is retired.
    EXPECT_EQ(sieve.mct().size(), 0u);
}

TEST(SieveStoreC, SingletonsNeverAllocate)
{
    SieveStoreCPolicy sieve(smallConfig());
    for (BlockId b = 0; b < 10000; ++b)
        EXPECT_EQ(sieve.onMiss(missAt(b, b)), AllocDecision::Bypass);
    EXPECT_EQ(sieve.allocations(), 0u);
}

TEST(SieveStoreC, WindowExpiryDemandsRecency)
{
    // 8 misses, then a long silence: the IMCT progress evaporates and
    // the block must start over — the "recent window" requirement.
    SieveStoreCConfig cfg = smallConfig();
    SieveStoreCPolicy sieve(cfg);
    const BlockId b = 99;
    const TimeUs sub = cfg.window.subwindow_us;
    for (uint64_t i = 0; i < 8; ++i)
        sieve.onMiss(missAt(b, i));
    // Jump 5 subwindows ahead: everything stale.
    EXPECT_EQ(sieve.onMiss(missAt(b, 5 * sub)), AllocDecision::Bypass);
    EXPECT_EQ(sieve.imct().count(b, 5 * sub), 1u);
}

TEST(SieveStoreC, MctProgressAlsoExpires)
{
    SieveStoreCConfig cfg = smallConfig();
    cfg.prune_on_subwindow = true;
    SieveStoreCPolicy sieve(cfg);
    const BlockId b = 7;
    for (uint64_t i = 0; i < 11; ++i) // 9 to qualify + 2 in MCT
        sieve.onMiss(missAt(b, i));
    EXPECT_TRUE(sieve.mct().contains(b));
    const TimeUs far = 10 * cfg.window.subwindow_us;
    // A miss far in the future prunes the stale MCT entry and the
    // block re-enters through the IMCT.
    sieve.onMiss(missAt(b, far));
    EXPECT_FALSE(sieve.mct().contains(b));
    EXPECT_EQ(sieve.imct().count(b, far), 1u);
}

TEST(SieveStoreC, TwoBlocksProgressIndependentlyInMct)
{
    SieveStoreCPolicy sieve(smallConfig());
    // Qualify both past the IMCT.
    for (uint64_t i = 0; i < 9; ++i) {
        sieve.onMiss(missAt(1, i));
        sieve.onMiss(missAt(2, i));
    }
    ASSERT_TRUE(sieve.mct().contains(1));
    ASSERT_TRUE(sieve.mct().contains(2));
    // Only block 1 accumulates the additional t2 misses.
    sieve.onMiss(missAt(1, 100));
    sieve.onMiss(missAt(1, 101));
    sieve.onMiss(missAt(1, 102));
    EXPECT_EQ(sieve.onMiss(missAt(1, 103)), AllocDecision::Allocate);
    EXPECT_EQ(sieve.onMiss(missAt(2, 104)), AllocDecision::Bypass);
}

TEST(SieveStoreC, ImctOnlyAblationAllocatesAtCombinedThreshold)
{
    SieveStoreCConfig cfg = smallConfig();
    cfg.imct_only = true;
    SieveStoreCPolicy sieve(cfg);
    const BlockId b = 5;
    for (uint64_t i = 1; i <= 12; ++i)
        EXPECT_EQ(sieve.onMiss(missAt(b, i)), AllocDecision::Bypass);
    EXPECT_EQ(sieve.onMiss(missAt(b, 13)), AllocDecision::Allocate);
    EXPECT_STREQ(sieve.name(), "SieveStore-C/imct-only");
}

TEST(SieveStoreC, MctOnlyAblationIsExactButUnbounded)
{
    SieveStoreCConfig cfg = smallConfig();
    cfg.mct_only = true;
    SieveStoreCPolicy sieve(cfg);
    for (BlockId b = 0; b < 1000; ++b)
        sieve.onMiss(missAt(b, b));
    // Exact tracking of every missed block: the state explosion the
    // IMCT exists to avoid.
    EXPECT_EQ(sieve.mct().size(), 1000u);
    EXPECT_STREQ(sieve.name(), "SieveStore-C/mct-only");
}

TEST(SieveStoreC, T2ZeroAllocatesStraightFromImct)
{
    SieveStoreCConfig cfg = smallConfig();
    cfg.t2 = 0;
    SieveStoreCPolicy sieve(cfg);
    const BlockId b = 3;
    for (uint64_t i = 1; i <= 8; ++i)
        EXPECT_EQ(sieve.onMiss(missAt(b, i)), AllocDecision::Bypass);
    EXPECT_EQ(sieve.onMiss(missAt(b, 9)), AllocDecision::Allocate);
    EXPECT_EQ(sieve.mct().size(), 0u);
}

TEST(SieveStoreC, MetastateAccounting)
{
    SieveStoreCPolicy sieve(smallConfig());
    const uint64_t base = sieve.metastateBytes();
    EXPECT_GT(base, 0u);
    // Qualifying blocks grow the MCT share.
    for (uint64_t i = 0; i < 10; ++i)
        sieve.onMiss(missAt(1, i));
    EXPECT_GT(sieve.metastateBytes(), base);
}

TEST(SieveStoreC, RejectsContradictoryConfig)
{
    SieveStoreCConfig cfg = smallConfig();
    cfg.imct_only = true;
    cfg.mct_only = true;
    EXPECT_THROW(SieveStoreCPolicy{cfg}, FatalError);
    SieveStoreCConfig zeros = smallConfig();
    zeros.t1 = 0;
    zeros.t2 = 0;
    EXPECT_THROW(SieveStoreCPolicy{zeros}, FatalError);
}

TEST(SieveStoreC, PaperDefaults)
{
    SieveStoreCConfig cfg;
    EXPECT_EQ(cfg.t1, 9u);
    EXPECT_EQ(cfg.t2, 4u);
    EXPECT_EQ(cfg.window.k, 4u);
    EXPECT_EQ(cfg.window.subwindow_us,
              2 * sievestore::util::kUsPerHour);
}

} // namespace
