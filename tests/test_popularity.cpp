/**
 * @file
 * Unit tests for popularity binning (the Figure 2 machinery).
 */

#include <gtest/gtest.h>

#include "analysis/popularity.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::analysis;
using sievestore::trace::BlockId;
using sievestore::trace::makeBlockId;
using sievestore::util::Rng;

BlockCounts
skewedCounts(size_t n, uint64_t seed)
{
    // Zipf-like synthetic counts: block i gets ~n/i accesses.
    BlockCounts counts;
    Rng rng(seed);
    for (size_t i = 1; i <= n; ++i)
        counts[makeBlockId(0, i)] = std::max<uint64_t>(1, n / i);
    return counts;
}

TEST(Popularity, TotalsMatch)
{
    const BlockCounts counts = skewedCounts(1000, 1);
    PopularityProfile profile(counts);
    EXPECT_EQ(profile.uniqueBlocks(), 1000u);
    EXPECT_EQ(profile.totalAccesses(), totalAccesses(counts));
}

TEST(Popularity, BinsPartitionBlocks)
{
    const BlockCounts counts = skewedCounts(500, 2);
    PopularityProfile profile(counts, 100);
    EXPECT_EQ(profile.binCount(), 100u);
    double weighted = 0.0;
    for (size_t b = 0; b < profile.binCount(); ++b)
        weighted += profile.binAverage(b) * 5.0; // 5 blocks per bin
    EXPECT_NEAR(weighted, static_cast<double>(profile.totalAccesses()),
                1.0);
}

TEST(Popularity, FewerBlocksThanBins)
{
    const BlockCounts counts = skewedCounts(7, 3);
    PopularityProfile profile(counts, 10000);
    EXPECT_EQ(profile.binCount(), 7u);
    // Bins are in descending popularity.
    for (size_t b = 1; b < profile.binCount(); ++b)
        EXPECT_LE(profile.binAverage(b), profile.binAverage(b - 1));
}

TEST(Popularity, TopShareMonotone)
{
    const BlockCounts counts = skewedCounts(2000, 4);
    PopularityProfile profile(counts);
    double prev = 0.0;
    for (double f : {0.001, 0.01, 0.1, 0.5, 1.0}) {
        const double s = profile.topShare(f);
        EXPECT_GE(s, prev);
        EXPECT_LE(s, 1.0);
        prev = s;
    }
    EXPECT_DOUBLE_EQ(profile.topShare(1.0), 1.0);
    EXPECT_DOUBLE_EQ(profile.topShare(0.0), 0.0);
}

TEST(Popularity, TopShareOfSkewedBeatsUniform)
{
    const BlockCounts skewed = skewedCounts(1000, 5);
    BlockCounts uniform;
    for (size_t i = 0; i < 1000; ++i)
        uniform[makeBlockId(0, i)] = 5;
    PopularityProfile ps(skewed), pu(uniform);
    EXPECT_GT(ps.topShare(0.01), pu.topShare(0.01) * 2);
    EXPECT_NEAR(pu.topShare(0.1), 0.1, 1e-9);
}

TEST(Popularity, CountAtPercentile)
{
    BlockCounts counts;
    for (size_t i = 1; i <= 100; ++i)
        counts[makeBlockId(0, i)] = 101 - i; // counts 100..1
    PopularityProfile profile(counts);
    EXPECT_EQ(profile.countAtPercentile(0.01), 100u);
    EXPECT_EQ(profile.countAtPercentile(0.50), 51u);
    EXPECT_EQ(profile.countAtPercentile(1.0), 1u);
}

TEST(Popularity, FractionWithCountAtMost)
{
    BlockCounts counts;
    for (size_t i = 0; i < 50; ++i)
        counts[makeBlockId(0, i)] = 1;
    for (size_t i = 50; i < 100; ++i)
        counts[makeBlockId(0, i)] = 10;
    PopularityProfile profile(counts);
    EXPECT_DOUBLE_EQ(profile.fractionWithCountAtMost(1), 0.5);
    EXPECT_DOUBLE_EQ(profile.fractionWithCountAtMost(9), 0.5);
    EXPECT_DOUBLE_EQ(profile.fractionWithCountAtMost(10), 1.0);
    EXPECT_DOUBLE_EQ(profile.fractionWithCountAtMost(0), 0.0);
}

TEST(Popularity, TopBlocksSelectsHighestCounts)
{
    const BlockCounts counts = skewedCounts(1000, 6);
    PopularityProfile profile(counts);
    const auto top = profile.topBlocks(0.01);
    ASSERT_EQ(top.size(), 10u);
    // Every selected block must outrank every unselected one.
    uint64_t min_top = UINT64_MAX;
    for (BlockId b : top)
        min_top = std::min(min_top, counts.at(b));
    EXPECT_GE(min_top, 100u); // n/i for i=10 => 100
}

TEST(Popularity, BlocksWithCountAtLeast)
{
    const BlockCounts counts = skewedCounts(100, 7);
    PopularityProfile profile(counts);
    const auto selected = profile.blocksWithCountAtLeast(10);
    for (BlockId b : selected)
        EXPECT_GE(counts.at(b), 10u);
    size_t expect = 0;
    for (const auto &kv : counts)
        if (kv.second >= 10)
            ++expect;
    EXPECT_EQ(selected.size(), expect);
}

TEST(Popularity, EmptyCounts)
{
    PopularityProfile profile(BlockCounts{});
    EXPECT_EQ(profile.uniqueBlocks(), 0u);
    EXPECT_EQ(profile.binCount(), 0u);
    EXPECT_DOUBLE_EQ(profile.topShare(0.01), 0.0);
    EXPECT_TRUE(profile.topBlocks(0.01).empty());
}

TEST(Popularity, TopBlocksMinimumOne)
{
    BlockCounts counts;
    counts[makeBlockId(0, 1)] = 5;
    counts[makeBlockId(0, 2)] = 3;
    PopularityProfile profile(counts);
    // 1 % of 2 blocks rounds to 0 but at least one block is returned.
    const auto top = profile.topBlocks(0.01);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0], makeBlockId(0, 1));
}

} // namespace
