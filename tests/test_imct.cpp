/**
 * @file
 * Unit tests for the Imprecise Miss Count Table (first sieve tier).
 */

#include <gtest/gtest.h>

#include "core/imct.hpp"
#include "util/logging.hpp"

namespace {

using namespace sievestore::core;
using sievestore::trace::BlockId;
using sievestore::util::FatalError;

TEST(Imct, CountsMissesPerSlot)
{
    Imct imct(1024, WindowSpec::paperDefault());
    EXPECT_EQ(imct.count(42, 0), 0u);
    EXPECT_EQ(imct.recordMiss(42, 0), 1u);
    EXPECT_EQ(imct.recordMiss(42, 0), 2u);
    EXPECT_EQ(imct.count(42, 0), 2u);
}

TEST(Imct, SlotMappingIsStable)
{
    Imct imct(128, WindowSpec::paperDefault(), 5);
    const size_t slot = imct.slotOf(777);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(imct.slotOf(777), slot);
    EXPECT_LT(slot, imct.slots());
}

TEST(Imct, AliasedBlocksShareCounts)
{
    // With a tiny table, find two blocks in the same slot and verify
    // they pool their misses — the aliasing the MCT must clean up.
    Imct imct(4, WindowSpec::paperDefault());
    BlockId a = 1;
    BlockId b = 2;
    bool found = false;
    for (BlockId candidate = 2; candidate < 100 && !found; ++candidate) {
        if (imct.slotOf(candidate) == imct.slotOf(a)) {
            b = candidate;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    imct.recordMiss(a, 0);
    imct.recordMiss(a, 0);
    EXPECT_EQ(imct.count(b, 0), 2u); // b inherits a's misses
    EXPECT_EQ(imct.recordMiss(b, 0), 3u);
}

TEST(Imct, DifferentSeedsRemapBlocks)
{
    Imct a(4096, WindowSpec::paperDefault(), 1);
    Imct b(4096, WindowSpec::paperDefault(), 2);
    int same = 0;
    for (BlockId blk = 0; blk < 1000; ++blk)
        if (a.slotOf(blk) == b.slotOf(blk))
            ++same;
    EXPECT_LT(same, 10);
}

TEST(Imct, WindowExpiry)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    Imct imct(1024, spec);
    const auto sub = [&](uint64_t s) { return s * spec.subwindow_us; };
    imct.recordMiss(9, sub(0));
    imct.recordMiss(9, sub(1));
    EXPECT_EQ(imct.count(9, sub(3)), 2u);
    EXPECT_EQ(imct.count(9, sub(4)), 1u);
    EXPECT_EQ(imct.count(9, sub(5)), 0u);
}

TEST(Imct, MemoryIsFixedBySlotCount)
{
    Imct imct(1000, WindowSpec::paperDefault());
    const uint64_t before = imct.memoryBytes();
    for (BlockId b = 0; b < 100000; ++b)
        imct.recordMiss(b, 0);
    EXPECT_EQ(imct.memoryBytes(), before);
}

TEST(Imct, ClearZeroesAllSlots)
{
    Imct imct(64, WindowSpec::paperDefault());
    for (BlockId b = 0; b < 1000; ++b)
        imct.recordMiss(b, 0);
    imct.clear();
    for (BlockId b = 0; b < 1000; ++b)
        EXPECT_EQ(imct.count(b, 0), 0u);
}

TEST(Imct, RejectsZeroSlots)
{
    EXPECT_THROW(Imct(0, WindowSpec::paperDefault()), FatalError);
}

TEST(Imct, SpreadsBlocksAcrossSlots)
{
    Imct imct(256, WindowSpec::paperDefault());
    std::vector<int> hits(256, 0);
    for (BlockId b = 0; b < 25600; ++b)
        ++hits[imct.slotOf(b)];
    // Every slot should receive something near the mean of 100.
    for (int h : hits) {
        EXPECT_GT(h, 50);
        EXPECT_LT(h, 160);
    }
}

} // namespace
