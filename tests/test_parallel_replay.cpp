/**
 * @file
 * Differential tests for the parallel sharded replay engine.
 *
 * The whole value of runShardedParallel rests on one claim: for every
 * configuration, every node's per-day accounting is *bit-identical*
 * to what the serial runSharded produces — a silent counter
 * divergence in a parallel driver would be a wrong paper claim, not
 * a crash. These tests sweep the policy roster × shard counts ×
 * generator seeds and compare every field of every DailyReport, plus
 * the summed totals, between the two drivers. Threading knobs
 * (fewer workers than shards, tiny queues forcing backpressure,
 * free-running mode) must not change a single bit either.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/driver.hpp"
#include "sim/sharded.hpp"
#include "trace/synthetic.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::sim;
using namespace sievestore::trace;
using core::DailyReport;
using sievestore::util::FatalError;
using sievestore::util::makeTime;

/** Field-for-field equality of one day's report. */
void
expectReportEq(const DailyReport &serial, const DailyReport &parallel,
               const std::string &where)
{
    EXPECT_EQ(serial.accesses, parallel.accesses) << where;
    EXPECT_EQ(serial.read_accesses, parallel.read_accesses) << where;
    EXPECT_EQ(serial.hits, parallel.hits) << where;
    EXPECT_EQ(serial.read_hits, parallel.read_hits) << where;
    EXPECT_EQ(serial.write_hits, parallel.write_hits) << where;
    EXPECT_EQ(serial.allocation_write_blocks,
              parallel.allocation_write_blocks)
        << where;
    EXPECT_EQ(serial.batch_moved_blocks, parallel.batch_moved_blocks)
        << where;
    EXPECT_EQ(serial.ssd_read_ios, parallel.ssd_read_ios) << where;
    EXPECT_EQ(serial.ssd_write_ios, parallel.ssd_write_ios) << where;
    EXPECT_EQ(serial.ssd_alloc_ios, parallel.ssd_alloc_ios) << where;
}

/**
 * Run both drivers over the same trace and require bit-identical
 * per-node day-by-day reports and summed totals.
 */
void
expectBitIdentical(TraceReader &reader, const ShardedConfig &config,
                   const std::string &label)
{
    reader.reset();
    const ShardedResult serial = runSharded(reader, config);
    reader.reset();
    const ShardedResult parallel = runShardedParallel(reader, config);
    reader.reset();

    ASSERT_EQ(serial.nodes.size(), parallel.nodes.size()) << label;
    for (size_t s = 0; s < serial.nodes.size(); ++s) {
        const auto &sd = serial.nodes[s]->daily();
        const auto &pd = parallel.nodes[s]->daily();
        ASSERT_EQ(sd.size(), pd.size())
            << label << " shard " << s << " day count";
        for (size_t d = 0; d < sd.size(); ++d)
            expectReportEq(sd[d], pd[d],
                           label + " shard " + std::to_string(s) +
                               " day " + std::to_string(d));
    }
    expectReportEq(serial.totals(), parallel.totals(),
                   label + " totals");
}

SyntheticEnsembleGenerator
makeGenerator(uint64_t seed, double inv_scale)
{
    SyntheticConfig scfg;
    scfg.seed = seed;
    scfg.scale = 1.0 / inv_scale;
    return SyntheticEnsembleGenerator::paper(
        EnsembleConfig::paperEnsemble(), scfg);
}

ShardedConfig
makeConfig(PolicyKind kind, size_t shards)
{
    ShardedConfig cfg;
    cfg.shards = shards;
    cfg.policy.kind = kind;
    cfg.policy.sieve_c.imct_slots = 1 << 12;
    cfg.node.cache_blocks = 2048 / shards + 64;
    cfg.node.track_occupancy = false;
    return cfg;
}

/**
 * The headline sweep: every continuous/discrete policy of the paper's
 * roster × {1, 2, 4, 7} shards × 3 generator seeds.
 */
TEST(ParallelReplay, DifferentialSweepMatchesSerialBitForBit)
{
    const PolicyKind kinds[] = {
        PolicyKind::AOD, PolicyKind::WMNA, PolicyKind::SieveStoreC,
        PolicyKind::SieveStoreD, PolicyKind::RandSieveC};
    const size_t shard_counts[] = {1, 2, 4, 7};
    const uint64_t seeds[] = {0x51e5e5704eULL, 1234567ULL,
                              0xdecafULL};

    for (const uint64_t seed : seeds) {
        auto gen = makeGenerator(seed, 131072.0);
        for (const PolicyKind kind : kinds) {
            for (const size_t shards : shard_counts) {
                const std::string label =
                    std::string(policyKindName(kind)) + " x " +
                    std::to_string(shards) + " shards, seed " +
                    std::to_string(seed);
                expectBitIdentical(gen, makeConfig(kind, shards),
                                   label);
            }
        }
    }
}

TEST(ParallelReplay, FewerThreadsThanShardsIsStillIdentical)
{
    auto gen = makeGenerator(99, 65536.0);
    ShardedConfig cfg = makeConfig(PolicyKind::SieveStoreC, 7);
    cfg.parallel.threads = 2; // each worker multiplexes 3-4 queues
    expectBitIdentical(gen, cfg, "7 shards on 2 workers");
    cfg.parallel.threads = 3;
    expectBitIdentical(gen, cfg, "7 shards on 3 workers");
}

TEST(ParallelReplay, TinyQueuesForceBackpressureNotDivergence)
{
    auto gen = makeGenerator(7, 65536.0);
    ShardedConfig cfg = makeConfig(PolicyKind::SieveStoreD, 4);
    cfg.parallel.queue_depth = 2; // constant full-queue stalls
    expectBitIdentical(gen, cfg, "queue_depth=2");
}

TEST(ParallelReplay, FreeRunningModeIsAlsoIdentical)
{
    // Counters cannot depend on the day barrier: shards share no
    // block state, so lockstep is an observability feature only.
    auto gen = makeGenerator(11, 65536.0);
    ShardedConfig cfg = makeConfig(PolicyKind::SieveStoreC, 4);
    cfg.parallel.deterministic = false;
    expectBitIdentical(gen, cfg, "free-running");
}

TEST(ParallelReplay, OversubscribedThreadCountIsClamped)
{
    auto gen = makeGenerator(23, 131072.0);
    ShardedConfig cfg = makeConfig(PolicyKind::AOD, 2);
    cfg.parallel.threads = 64; // clamped to the shard count
    expectBitIdentical(gen, cfg, "threads=64, shards=2");
}

TEST(ParallelReplay, EmptyTraceFinishesCleanly)
{
    VectorTrace empty{std::vector<Request>{}};
    const auto result =
        runShardedParallel(empty, makeConfig(PolicyKind::AOD, 4));
    ASSERT_EQ(result.nodes.size(), 4u);
    EXPECT_EQ(result.totals().accesses, 0u);
    for (const auto &node : result.nodes)
        EXPECT_EQ(node->lastFinishedDay(), INT_MIN);
}

TEST(ParallelReplay, MultiDayGapFiresEveryBoundaryOnEveryShard)
{
    // One request on day 0, one on day 3: days 0-2 must be closed on
    // every shard (idle shards still run their epoch boundaries).
    std::vector<Request> reqs;
    Request r;
    r.volume = 0;
    r.server = 0;
    r.op = Op::Read;
    r.latency_us = 1000;
    r.time = makeTime(0, 12);
    r.offset_blocks = 0;
    r.length_blocks = 8;
    reqs.push_back(r);
    r.time = makeTime(3, 12);
    r.offset_blocks = 64;
    reqs.push_back(r);
    VectorTrace tracev(reqs);

    ShardedConfig cfg = makeConfig(PolicyKind::SieveStoreD, 3);
    expectBitIdentical(tracev, cfg, "3-day gap");

    tracev.reset();
    const auto result = runShardedParallel(tracev, cfg);
    for (const auto &node : result.nodes)
        EXPECT_EQ(node->lastFinishedDay(), 2);
}

TEST(ParallelReplay, BatchSizeSweepIsBitIdentical)
{
    // The decode/hand-off batch size is a pure performance knob: the
    // serial golden at batch=1 pins every other batch size, including
    // sizes above the per-item cap (spanning several queue items) and
    // sizes that leave most of each item unused.
    auto gen = makeGenerator(47, 65536.0);
    ShardedConfig golden_cfg = makeConfig(PolicyKind::SieveStoreC, 4);
    golden_cfg.batch = 1;
    gen.reset();
    const ShardedResult golden = runSharded(gen, golden_cfg);

    for (const size_t batch :
         {size_t(1), size_t(8), kQueueBatchRequests,
          4 * kQueueBatchRequests}) {
        ShardedConfig cfg = golden_cfg;
        cfg.batch = batch;
        gen.reset();
        const ShardedResult parallel = runShardedParallel(gen, cfg);
        const std::string label = "batch=" + std::to_string(batch);
        ASSERT_EQ(golden.nodes.size(), parallel.nodes.size()) << label;
        for (size_t s = 0; s < golden.nodes.size(); ++s) {
            const auto &gd = golden.nodes[s]->daily();
            const auto &pd = parallel.nodes[s]->daily();
            ASSERT_EQ(gd.size(), pd.size()) << label << " shard " << s;
            for (size_t d = 0; d < gd.size(); ++d)
                expectReportEq(gd[d], pd[d],
                               label + " shard " + std::to_string(s) +
                                   " day " + std::to_string(d));
        }
        expectReportEq(golden.totals(), parallel.totals(),
                       label + " totals");
    }
}

TEST(ParallelReplay, RejectsBadConfig)
{
    VectorTrace empty{std::vector<Request>{}};
    ShardedConfig zero = makeConfig(PolicyKind::AOD, 1);
    zero.shards = 0;
    EXPECT_THROW(runShardedParallel(empty, zero), FatalError);
    ShardedConfig oracle = makeConfig(PolicyKind::AOD, 2);
    oracle.policy.kind = PolicyKind::Ideal;
    EXPECT_THROW(runShardedParallel(empty, oracle), FatalError);
    ShardedConfig no_queue = makeConfig(PolicyKind::AOD, 2);
    no_queue.parallel.queue_depth = 0;
    EXPECT_THROW(runShardedParallel(empty, no_queue), FatalError);
}

} // namespace
