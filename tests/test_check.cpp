/**
 * @file
 * Death tests for the runtime contract-checking framework
 * (util/check.hpp): SIEVE_CHECK aborts with a formatted report,
 * SIEVE_DCHECK follows the build configuration, SIEVE_UNREACHABLE is
 * always fatal.
 */

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace {

TEST(SieveCheck, PassingCheckIsSilent)
{
    SIEVE_CHECK(1 + 1 == 2);
    SIEVE_CHECK(true, "never printed %d", 42);
    SUCCEED();
}

TEST(SieveCheckDeathTest, FailingCheckAborts)
{
    EXPECT_DEATH(SIEVE_CHECK(2 + 2 == 5), "SIEVE_CHECK failed");
}

TEST(SieveCheckDeathTest, ReportNamesTheExpression)
{
    const int zero = 0;
    EXPECT_DEATH(SIEVE_CHECK(zero == 1), "zero == 1");
}

TEST(SieveCheckDeathTest, ReportIncludesFormattedMessage)
{
    const uint64_t size = 7, cap = 4;
    EXPECT_DEATH(SIEVE_CHECK(size <= cap,
                             "size %llu exceeds capacity %llu",
                             static_cast<unsigned long long>(size),
                             static_cast<unsigned long long>(cap)),
                 "size 7 exceeds capacity 4");
}

TEST(SieveCheckDeathTest, UnreachableAlwaysAborts)
{
    EXPECT_DEATH(SIEVE_UNREACHABLE("bad enum value %d", 99),
                 "SIEVE_UNREACHABLE.*bad enum value 99");
}

TEST(SieveCheck, CheckEvaluatesConditionExactlyOnce)
{
    int evaluations = 0;
    SIEVE_CHECK(++evaluations > 0);
    EXPECT_EQ(evaluations, 1);
}

#if SIEVE_DCHECKS_ENABLED

TEST(SieveDcheckDeathTest, FailingDcheckAbortsWhenEnabled)
{
    EXPECT_DEATH(SIEVE_DCHECK(false, "debug contract"),
                 "SIEVE_CHECK failed.*debug contract");
}

TEST(SieveDcheck, PassingDcheckIsSilentWhenEnabled)
{
    int evaluations = 0;
    SIEVE_DCHECK(++evaluations == 1);
    EXPECT_EQ(evaluations, 1);
}

#else // !SIEVE_DCHECKS_ENABLED

TEST(SieveDcheck, DcheckIsFreeWhenDisabled)
{
    // Disabled DCHECKs must not evaluate their condition (they only
    // typecheck it), so side effects never run in Release.
    int evaluations = 0;
    SIEVE_DCHECK(++evaluations == 1);
    EXPECT_EQ(evaluations, 0);
    SIEVE_DCHECK(false, "never reported %d", 1);
    SUCCEED();
}

#endif // SIEVE_DCHECKS_ENABLED

} // namespace
