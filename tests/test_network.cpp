/**
 * @file
 * Unit tests for the appliance network-feasibility model.
 */

#include <gtest/gtest.h>

#include "ssd/network.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore::ssd;
using sievestore::util::FatalError;
using sievestore::util::kUsPerMinute;

TEST(NetworkModel, FourGigabitBudget)
{
    const NetworkModel nic = NetworkModel::fourGigabitLinks();
    EXPECT_DOUBLE_EQ(nic.bytesPerSecond(), 4.0e9 / 8.0); // 500 MB/s
}

TEST(NetworkFeasibility, PaperWorstCaseBound)
{
    // "Even the maximum SSD access throughput (100% sequential reads,
    // 250MB/s) accounts for approximately 50% of the network
    // bandwidth."
    DriveOccupancyTracker occ(SsdModel::intelX25E());
    const auto result = checkNetworkFeasibility(
        occ, NetworkModel::fourGigabitLinks());
    EXPECT_NEAR(result.worst_case_bound, 0.5, 1e-9);
}

TEST(NetworkFeasibility, UtilizationArithmetic)
{
    DriveOccupancyTracker occ(SsdModel::intelX25E());
    // 500 MB/s * 60 s / 4 KiB = 7,324,218.75 I/Os fill one minute.
    occ.recordReads(0, 3662109); // ~half the budget
    const auto result = checkNetworkFeasibility(
        occ, NetworkModel::fourGigabitLinks());
    EXPECT_NEAR(result.peak_utilization, 0.5, 0.001);
    EXPECT_DOUBLE_EQ(result.coverage, 1.0);
}

TEST(NetworkFeasibility, DetectsOverload)
{
    DriveOccupancyTracker occ(SsdModel::intelX25E());
    occ.recordReads(0, 8000000);               // over budget
    occ.recordWrites(kUsPerMinute, 1000);      // light minute
    const auto result = checkNetworkFeasibility(
        occ, NetworkModel::fourGigabitLinks());
    EXPECT_GT(result.peak_utilization, 1.0);
    EXPECT_DOUBLE_EQ(result.coverage, 0.5);
}

TEST(NetworkFeasibility, EmptyTracker)
{
    DriveOccupancyTracker occ(SsdModel::intelX25E());
    const auto result = checkNetworkFeasibility(
        occ, NetworkModel::fourGigabitLinks());
    EXPECT_DOUBLE_EQ(result.mean_utilization, 0.0);
    EXPECT_DOUBLE_EQ(result.coverage, 1.0);
}

TEST(NetworkFeasibility, RejectsDeadNic)
{
    DriveOccupancyTracker occ(SsdModel::intelX25E());
    NetworkModel dead;
    dead.links = 0;
    EXPECT_THROW(checkNetworkFeasibility(occ, dead), FatalError);
}

} // namespace
