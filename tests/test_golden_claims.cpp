/**
 * @file
 * Golden regression pins for the paper's headline claims.
 *
 * EXPERIMENTS.md records the Figure 5 / Figure 6 reproduction at
 * bench scale; these tests pin the same quantities at test scale
 * (1/65536 of the paper's traffic, the default generator seed) as
 * *exact* integers. Everything in the pipeline is deterministic —
 * xoshiro PRNG, integer accounting, fixed IEEE arithmetic — so any
 * silent counter drift (a lost hit, a double-counted allocation, an
 * off-by-one day attribution) fails ctest here instead of surfacing
 * as a quietly-wrong number in EXPERIMENTS.md.
 *
 * If a change *intentionally* alters simulation results, re-run this
 * test, verify the new numbers are explainable, and re-pin them in
 * kGolden below — that re-pin is the audit trail.
 */

#include <gtest/gtest.h>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::sim;
using namespace sievestore::trace;

/** Exact expected totals of one policy run at the golden scale. */
struct GoldenRow
{
    PolicyKind kind;
    uint64_t accesses;
    uint64_t hits;
    uint64_t allocation_write_blocks;
    uint64_t batch_moved_blocks;
    uint64_t ssd_alloc_ios;
};

constexpr double kInvScale = 65536.0;

/**
 * Pinned values: captured from the initial implementation (see file
 * comment for the re-pin protocol). The roster mirrors Figure 5:
 * the per-day oracle, both SieveStores, a random sieve, and the
 * unsieved AOD/WMNA baselines at iso-capacity (16 GB full scale).
 */
const GoldenRow kGolden[] = {
    {PolicyKind::Ideal, 490360, 185383, 0, 373, 0},
    {PolicyKind::SieveStoreC, 490360, 186672, 564, 0, 334},
    {PolicyKind::SieveStoreD, 490360, 167387, 0, 418, 0},
    {PolicyKind::RandSieveC, 490360, 164123, 3183, 0, 3091},
    {PolicyKind::AOD, 490360, 155086, 335238, 0, 42939},
    {PolicyKind::WMNA, 490360, 145693, 249959, 0, 32003},
};

core::DailyReport
runGolden(PolicyKind kind)
{
    SyntheticConfig workload;
    workload.scale = 1.0 / kInvScale;
    auto gen = SyntheticEnsembleGenerator::paper(
        EnsembleConfig::paperEnsemble(), workload);

    PolicyConfig pc;
    pc.kind = kind;
    pc.sieve_c.imct_slots = 4096;
    core::ApplianceConfig ac;
    ac.cache_blocks =
        workload.scaledBytes(16ULL << 30) / kBlockBytes;
    ac.track_occupancy = false;

    std::unique_ptr<core::Appliance> app =
        kind == PolicyKind::Ideal
            ? makeIdealAppliance(gen, pc, ac)
            : makeAppliance(pc, ac);
    runTrace(gen, *app);
    return app->totals();
}

TEST(GoldenClaims, Figure5And6TotalsAreBitStable)
{
    for (const GoldenRow &row : kGolden) {
        const core::DailyReport t = runGolden(row.kind);
        const char *name = policyKindName(row.kind);
        EXPECT_EQ(t.accesses, row.accesses) << name;
        EXPECT_EQ(t.hits, row.hits) << name;
        EXPECT_EQ(t.allocation_write_blocks,
                  row.allocation_write_blocks)
            << name;
        EXPECT_EQ(t.batch_moved_blocks, row.batch_moved_blocks)
            << name;
        EXPECT_EQ(t.ssd_alloc_ios, row.ssd_alloc_ios) << name;
    }
}

TEST(GoldenClaims, AllocationWriteDecadeGapHolds)
{
    // Figure 6's claim: sieving buys an order of magnitude (a
    // "decade") in allocation-writes against allocate-on-demand.
    const uint64_t aod =
        runGolden(PolicyKind::AOD).allocation_write_blocks;
    const uint64_t sieve_c =
        runGolden(PolicyKind::SieveStoreC).allocation_write_blocks;
    const core::DailyReport d = runGolden(PolicyKind::SieveStoreD);
    ASSERT_GT(sieve_c, 0u);
    EXPECT_GE(aod, 10 * sieve_c);
    EXPECT_GE(aod, 10 * d.totalAllocationBlocks());
}

TEST(GoldenClaims, CaptureOrderingMatchesFigure5)
{
    // SieveStore-C tracks the oracle closely and beats the unsieved
    // baselines; every sieve beats RandSieve-C.
    const uint64_t ideal = runGolden(PolicyKind::Ideal).hits;
    const uint64_t ssc = runGolden(PolicyKind::SieveStoreC).hits;
    const uint64_t ssd = runGolden(PolicyKind::SieveStoreD).hits;
    const uint64_t rand_c = runGolden(PolicyKind::RandSieveC).hits;
    const uint64_t aod = runGolden(PolicyKind::AOD).hits;
    EXPECT_GE(ssc * 100, ideal * 90); // within 10 % of the oracle
    EXPECT_GT(ssc, aod);
    EXPECT_GT(ssd, rand_c);
    EXPECT_GT(ssc, rand_c);
}

} // namespace
