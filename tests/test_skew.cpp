/**
 * @file
 * Unit tests for skew metrics (Gini, Jaccard, server composition).
 */

#include <gtest/gtest.h>

#include "analysis/skew.hpp"

namespace {

using namespace sievestore::analysis;
using namespace sievestore::trace;

TEST(Gini, ZeroForUniformCounts)
{
    BlockCounts counts;
    for (size_t i = 0; i < 100; ++i)
        counts[makeBlockId(0, i)] = 7;
    PopularityProfile profile(counts);
    EXPECT_NEAR(giniOfCounts(profile), 0.0, 1e-9);
}

TEST(Gini, HighForExtremeSkew)
{
    BlockCounts counts;
    counts[makeBlockId(0, 0)] = 100000;
    for (size_t i = 1; i < 1000; ++i)
        counts[makeBlockId(0, i)] = 1;
    PopularityProfile profile(counts);
    EXPECT_GT(giniOfCounts(profile), 0.9);
}

TEST(Gini, OrdersDistributionsBySkew)
{
    BlockCounts mild, strong;
    for (size_t i = 1; i <= 200; ++i) {
        mild[makeBlockId(0, i)] = 100 + i; // nearly flat
        strong[makeBlockId(0, i)] = 40000 / (i * i); // steep
    }
    PopularityProfile pm(mild), ps(strong);
    EXPECT_LT(giniOfCounts(pm), giniOfCounts(ps));
}

TEST(Gini, EmptyProfileIsZero)
{
    PopularityProfile profile(BlockCounts{});
    EXPECT_DOUBLE_EQ(giniOfCounts(profile), 0.0);
}

TEST(Jaccard, IdenticalSetsAreOne)
{
    std::vector<BlockId> a = {1, 2, 3};
    EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
}

TEST(Jaccard, DisjointSetsAreZero)
{
    EXPECT_DOUBLE_EQ(jaccard({1, 2}, {3, 4}), 0.0);
}

TEST(Jaccard, PartialOverlap)
{
    // {1,2,3} vs {2,3,4}: 2 common of 4 total.
    EXPECT_DOUBLE_EQ(jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(Jaccard, HandlesDuplicatesInInput)
{
    EXPECT_DOUBLE_EQ(jaccard({1, 1, 2}, {2, 2}), 0.5);
}

TEST(Jaccard, EmptySets)
{
    EXPECT_DOUBLE_EQ(jaccard({}, {}), 1.0);
    EXPECT_DOUBLE_EQ(jaccard({1}, {}), 0.0);
}

TEST(ServerComposition, SumsToOneAndAttributesCorrectly)
{
    const EnsembleConfig ensemble = EnsembleConfig::paperEnsemble();
    const VolumeId usr_vol = ensemble.serverByKey("Usr").volume_ids[0];
    const VolumeId prxy_vol = ensemble.serverByKey("Prxy").volume_ids[0];

    BlockCounts counts;
    // 3 hot Usr blocks, 1 hot Prxy block, 396 cold blocks elsewhere.
    for (size_t i = 0; i < 3; ++i)
        counts[makeBlockId(usr_vol, i)] = 1000;
    counts[makeBlockId(prxy_vol, 0)] = 1000;
    const VolumeId src_vol = ensemble.serverByKey("Src1").volume_ids[0];
    for (size_t i = 0; i < 396; ++i)
        counts[makeBlockId(src_vol, 1000 + i)] = 1;

    PopularityProfile profile(counts);
    const auto shares = serverCompositionOfTop(profile, ensemble, 0.01);
    ASSERT_EQ(shares.size(), ensemble.serverCount());
    double total = 0.0;
    for (double s : shares)
        total += s;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Top 1 % of 400 blocks = the 4 hot ones: 3 Usr + 1 Prxy.
    EXPECT_NEAR(shares[ensemble.serverByKey("Usr").id], 0.75, 1e-9);
    EXPECT_NEAR(shares[ensemble.serverByKey("Prxy").id], 0.25, 1e-9);
}

TEST(ServerComposition, EmptyProfile)
{
    const EnsembleConfig ensemble = EnsembleConfig::paperEnsemble();
    PopularityProfile profile(BlockCounts{});
    const auto shares = serverCompositionOfTop(profile, ensemble);
    for (double s : shares)
        EXPECT_DOUBLE_EQ(s, 0.0);
}

} // namespace
