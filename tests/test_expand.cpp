/**
 * @file
 * Unit tests for request expansion and completion-time interpolation.
 */

#include <gtest/gtest.h>

#include "trace/expand.hpp"

namespace {

using namespace sievestore::trace;

Request
makeRequest(uint64_t time, uint32_t len, uint32_t latency,
            uint64_t offset = 0)
{
    Request r;
    r.time = time;
    r.volume = 2;
    r.server = 1;
    r.op = Op::Read;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = latency;
    return r;
}

TEST(Interpolation, LastBlockCompletesAtRequestCompletion)
{
    const Request r = makeRequest(1000, 7, 700);
    EXPECT_EQ(interpolatedCompletion(r, 6), r.completion());
}

TEST(Interpolation, MonotoneNonDecreasing)
{
    const Request r = makeRequest(0, 100, 1234);
    uint64_t prev = 0;
    for (uint32_t i = 0; i < 100; ++i) {
        const uint64_t c = interpolatedCompletion(r, i);
        EXPECT_GE(c, prev);
        EXPECT_GE(c, r.time);
        EXPECT_LE(c, r.completion());
        prev = c;
    }
}

TEST(Interpolation, SingleBlockGetsFullLatency)
{
    const Request r = makeRequest(500, 1, 80);
    EXPECT_EQ(interpolatedCompletion(r, 0), 580u);
}

TEST(Interpolation, EvenSplitAcrossBlocks)
{
    // 4 blocks, 400 us: completions at 100/200/300/400 after issue.
    const Request r = makeRequest(0, 4, 400);
    EXPECT_EQ(interpolatedCompletion(r, 0), 100u);
    EXPECT_EQ(interpolatedCompletion(r, 1), 200u);
    EXPECT_EQ(interpolatedCompletion(r, 2), 300u);
    EXPECT_EQ(interpolatedCompletion(r, 3), 400u);
}

TEST(Expand, OneAccessPerBlock)
{
    const Request r = makeRequest(10, 5, 50, 100);
    std::vector<BlockAccess> out;
    expandRequest(r, out);
    ASSERT_EQ(out.size(), 5u);
    for (uint32_t i = 0; i < 5; ++i) {
        EXPECT_EQ(out[i].block, makeBlockId(2, 100 + i));
        EXPECT_EQ(out[i].time, 10u);
        EXPECT_EQ(out[i].server, 1);
        EXPECT_EQ(out[i].op, Op::Read);
        EXPECT_EQ(out[i].completion, interpolatedCompletion(r, i));
    }
}

TEST(BlockAccessStream, MatchesBatchExpansion)
{
    std::vector<Request> reqs = {makeRequest(1, 3, 30, 0),
                                 makeRequest(2, 2, 20, 50)};
    std::vector<BlockAccess> batch;
    for (const auto &r : reqs)
        expandRequest(r, batch);

    VectorTrace trace(reqs);
    BlockAccessStream stream(trace);
    BlockAccess a;
    size_t i = 0;
    while (stream.next(a)) {
        ASSERT_LT(i, batch.size());
        EXPECT_EQ(a.block, batch[i].block);
        EXPECT_EQ(a.time, batch[i].time);
        EXPECT_EQ(a.completion, batch[i].completion);
        ++i;
    }
    EXPECT_EQ(i, batch.size());
    EXPECT_EQ(stream.requests(), 2u);
    EXPECT_EQ(stream.accesses(), 5u);
}

TEST(BlockAccessStream, SkipsZeroLengthRequests)
{
    std::vector<Request> reqs = {makeRequest(1, 0, 10),
                                 makeRequest(2, 1, 10)};
    VectorTrace trace(reqs);
    BlockAccessStream stream(trace);
    BlockAccess a;
    ASSERT_TRUE(stream.next(a));
    EXPECT_EQ(a.time, 2u);
    EXPECT_FALSE(stream.next(a));
}

TEST(BlockAccessStream, ResetRestarts)
{
    std::vector<Request> reqs = {makeRequest(1, 2, 10)};
    VectorTrace trace(reqs);
    BlockAccessStream stream(trace);
    BlockAccess a;
    while (stream.next(a)) {
    }
    stream.reset();
    size_t count = 0;
    while (stream.next(a))
        ++count;
    EXPECT_EQ(count, 2u);
}

} // namespace
