/**
 * @file
 * Unit tests for the experiment plumbing (policy factory, ideal
 * appliance construction, cost summaries).
 */

#include <gtest/gtest.h>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::sim;
using namespace sievestore::trace;
using sievestore::util::FatalError;
using sievestore::util::makeTime;

Request
makeRequest(uint64_t time, uint64_t offset, uint32_t len,
            Op op = Op::Read)
{
    Request r;
    r.time = time;
    r.volume = 0;
    r.server = 0;
    r.op = op;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = 100;
    return r;
}

core::ApplianceConfig
config()
{
    core::ApplianceConfig cfg;
    cfg.cache_blocks = 1024;
    return cfg;
}

TEST(PolicyFactory, NamesMatchPaper)
{
    EXPECT_STREQ(policyKindName(PolicyKind::Ideal), "Ideal");
    EXPECT_STREQ(policyKindName(PolicyKind::SieveStoreD),
                 "SieveStore-D");
    EXPECT_STREQ(policyKindName(PolicyKind::SieveStoreC),
                 "SieveStore-C");
    EXPECT_STREQ(policyKindName(PolicyKind::RandSieveBlkD),
                 "RandSieve-BlkD");
    EXPECT_STREQ(policyKindName(PolicyKind::RandSieveC), "RandSieve-C");
    EXPECT_STREQ(policyKindName(PolicyKind::AOD), "AOD");
    EXPECT_STREQ(policyKindName(PolicyKind::WMNA), "WMNA");
}

TEST(PolicyFactory, BuildsEveryContinuousAndDiscreteKind)
{
    for (PolicyKind kind :
         {PolicyKind::SieveStoreD, PolicyKind::SieveStoreC,
          PolicyKind::RandSieveBlkD, PolicyKind::RandSieveC,
          PolicyKind::AOD, PolicyKind::WMNA}) {
        PolicyConfig pc;
        pc.kind = kind;
        pc.sieve_c.imct_slots = 1024;
        auto app = makeAppliance(pc, config());
        ASSERT_NE(app, nullptr);
        EXPECT_STREQ(app->policyName(), policyKindName(kind));
    }
}

TEST(PolicyFactory, IdealRequiresProfilingPass)
{
    PolicyConfig pc;
    pc.kind = PolicyKind::Ideal;
    EXPECT_THROW(makeAppliance(pc, config()), FatalError);
}

TEST(PerDayTopBlocks, FindsDailyHotSet)
{
    std::vector<Request> reqs;
    // Day 0: block 0 dominates. Day 1: block 800 dominates.
    for (uint64_t i = 0; i < 10; ++i)
        reqs.push_back(makeRequest(makeTime(0, 1, i), 0, 1));
    for (uint64_t i = 0; i < 99; ++i)
        reqs.push_back(makeRequest(makeTime(0, 2, i), 100 + i, 1));
    for (uint64_t i = 0; i < 10; ++i)
        reqs.push_back(makeRequest(makeTime(1, 1, i), 800, 1));
    for (uint64_t i = 0; i < 99; ++i)
        reqs.push_back(makeRequest(makeTime(1, 2, i), 900 + i, 1));
    std::sort(reqs.begin(), reqs.end(), requestTimeLess);
    VectorTrace trace(std::move(reqs));

    const auto sets = perDayTopBlocks(trace, 0.01);
    ASSERT_EQ(sets.size(), 2u);
    ASSERT_EQ(sets[0].size(), 1u);
    EXPECT_EQ(sets[0][0], makeBlockId(0, 0));
    ASSERT_EQ(sets[1].size(), 1u);
    EXPECT_EQ(sets[1][0], makeBlockId(0, 800));
}

TEST(IdealAppliance, CapturesEachDaysTopBlocks)
{
    std::vector<Request> reqs;
    // Day 0: block 0 accessed 20 times among 99 singletons.
    for (uint64_t i = 0; i < 20; ++i)
        reqs.push_back(makeRequest(makeTime(0, 1, i), 0, 1));
    for (uint64_t i = 0; i < 99; ++i)
        reqs.push_back(makeRequest(makeTime(0, 2, i), 100 + i, 1));
    // Day 1: block 800 takes over.
    for (uint64_t i = 0; i < 20; ++i)
        reqs.push_back(makeRequest(makeTime(1, 1, i), 800, 1));
    for (uint64_t i = 0; i < 99; ++i)
        reqs.push_back(makeRequest(makeTime(1, 2, i), 900 + i, 1));
    std::sort(reqs.begin(), reqs.end(), requestTimeLess);
    VectorTrace trace(std::move(reqs));

    PolicyConfig pc;
    pc.kind = PolicyKind::Ideal;
    auto app = makeIdealAppliance(trace, pc, config());
    runTrace(trace, *app);
    ASSERT_GE(app->daily().size(), 2u);
    // All 20 accesses to each day's hot block hit — including day 0
    // (the preload) and day 1 (the oracle swap).
    EXPECT_EQ(app->daily()[0].hits, 20u);
    EXPECT_EQ(app->daily()[1].hits, 20u);
}

TEST(CostSummary, ReflectsOccupancy)
{
    PolicyConfig pc;
    pc.kind = PolicyKind::AOD;
    auto app = makeAppliance(pc, config());
    // One allocation-write worth of occupancy.
    app->processRequest(makeRequest(1000, 0, 8, Op::Read));
    app->finishTrace();
    const CostSummary cost = summarizeCost(*app, 7.0);
    EXPECT_EQ(cost.max_drives, 1u);
    EXPECT_DOUBLE_EQ(cost.coverage_one_drive, 1.0);
    EXPECT_GT(cost.endurance_years, 0.0);
}

TEST(CostSummary, NoOccupancyTracker)
{
    PolicyConfig pc;
    pc.kind = PolicyKind::AOD;
    core::ApplianceConfig ac = config();
    ac.track_occupancy = false;
    auto app = makeAppliance(pc, ac);
    const CostSummary cost = summarizeCost(*app, 7.0);
    EXPECT_EQ(cost.max_drives, 0u);
}

} // namespace
