/**
 * @file
 * Model-checker campaign for the SPSC queue (see spsc_model.hpp).
 *
 * The correct mirror and the real queue must survive every explored
 * schedule; every seeded bug variant must be caught. Budgets scale
 * with SIEVE_MODELCHECK_BUDGET (an integer multiplier, default 1) so
 * the nightly deep-verify job explores far more randomized schedules
 * than the per-PR smoke run without touching the code.
 */

#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "modelcheck/sched.hpp"
#include "modelcheck/spsc_model.hpp"

namespace mc = sievestore::modelcheck;

namespace {

uint64_t
budgetMultiplier()
{
    const char *env = std::getenv("SIEVE_MODELCHECK_BUDGET");
    if (!env || !*env)
        return 1;
    const long value = std::atol(env);
    return value >= 1 ? static_cast<uint64_t>(value) : 1;
}

/** Generous step bound: the models take well under this per run. */
constexpr size_t kMaxDepth = 4096;

/** Exhaustive tree budget; the small instances complete well inside. */
constexpr uint64_t kMaxSchedules = 4u * 1000 * 1000;

mc::SystemFactory
mirrorFactory(size_t capacity, uint32_t items, mc::SpscBug bug)
{
    return [=] {
        return std::make_unique<mc::ModelSpscSystem>(capacity, items,
                                                     bug);
    };
}

mc::SystemFactory
realFactory(size_t capacity, uint32_t items)
{
    return [=] {
        return std::make_unique<mc::RealSpscSystem>(capacity, items);
    };
}

void
expectClean(const mc::ExploreResult &res)
{
    EXPECT_EQ(res.violation, "")
        << "violating schedule (thread ids): " << res.traceString();
    EXPECT_FALSE(res.depth_exceeded);
}

void
expectCaught(const mc::ExploreResult &res, const char *needle)
{
    ASSERT_NE(res.violation, "")
        << "explored " << res.schedules
        << " schedules without finding the seeded bug";
    EXPECT_NE(res.violation.find(needle), std::string::npos)
        << "caught the wrong violation: " << res.violation;
}

} // namespace

TEST(SpscModel, ExhaustiveMirrorIsClean)
{
    const auto res = mc::exploreExhaustive(
        mirrorFactory(2, 3, mc::SpscBug::None), kMaxSchedules,
        kMaxDepth);
    expectClean(res);
    EXPECT_TRUE(res.complete) << "schedule budget too small: "
                              << res.schedules;
    // The instance is small but genuinely concurrent: the tree must
    // branch into a nontrivial number of distinct interleavings.
    EXPECT_GT(res.schedules, 1000u);
}

TEST(SpscModel, ExhaustiveMirrorCleanAcrossCapacities)
{
    for (const size_t capacity : {size_t(2), size_t(4)}) {
        const auto res = mc::exploreExhaustive(
            mirrorFactory(capacity, 4, mc::SpscBug::None),
            kMaxSchedules, kMaxDepth);
        expectClean(res);
        EXPECT_TRUE(res.complete) << "capacity " << capacity;
    }
}

TEST(SpscModel, CatchesCapacityOffByOne)
{
    const auto res = mc::exploreExhaustive(
        mirrorFactory(2, 3, mc::SpscBug::CapacityOffByOne),
        kMaxSchedules, kMaxDepth);
    expectCaught(res, "unconsumed slot");
}

TEST(SpscModel, CatchesPublishBeforeWrite)
{
    const auto res = mc::exploreExhaustive(
        mirrorFactory(2, 3, mc::SpscBug::PublishBeforeWrite),
        kMaxSchedules, kMaxDepth);
    expectCaught(res, "never written");
}

TEST(SpscModel, CatchesMissingCloseRecheck)
{
    const auto res = mc::exploreExhaustive(
        mirrorFactory(2, 3, mc::SpscBug::NoCloseRecheck),
        kMaxSchedules, kMaxDepth);
    expectCaught(res, "lost items");
}

TEST(SpscModel, CatchesStaleHeadCacheDeadlock)
{
    const auto res = mc::exploreExhaustive(
        mirrorFactory(2, 3, mc::SpscBug::NeverRefreshHeadCache),
        kMaxSchedules, kMaxDepth);
    expectCaught(res, "deadlock");
}

TEST(SpscModel, RandomizedMirrorLargeInstanceIsClean)
{
    // Too big for the exhaustive tree; sample seeded schedules
    // instead. Distinct seeds give decorrelated walks.
    const uint64_t rounds = 400 * budgetMultiplier();
    for (const uint64_t seed : {1u, 2u, 3u}) {
        const auto res = mc::exploreRandom(
            mirrorFactory(4, 16, mc::SpscBug::None), rounds, seed,
            kMaxDepth);
        expectClean(res);
        EXPECT_EQ(res.schedules, rounds);
    }
}

TEST(SpscModel, RandomizedFindsEverySeededBug)
{
    // Random walks must also land on each bug quickly — a regression
    // here means the sampler lost schedule diversity.
    const mc::SpscBug bugs[] = {
        mc::SpscBug::CapacityOffByOne,
        mc::SpscBug::PublishBeforeWrite,
        mc::SpscBug::NoCloseRecheck,
        mc::SpscBug::NeverRefreshHeadCache,
    };
    for (const mc::SpscBug bug : bugs) {
        const auto res = mc::exploreRandom(
            mirrorFactory(2, 4, bug), 20000, 0x5eed, kMaxDepth);
        EXPECT_NE(res.violation, "")
            << "bug " << static_cast<int>(bug) << " not found in "
            << res.schedules << " random schedules";
    }
}

TEST(SpscModel, ExhaustiveRealQueueOps)
{
    // The real ring, every interleaving of whole operations,
    // including wraparound (items > capacity) and the close/drain
    // race.
    const auto res =
        mc::exploreExhaustive(realFactory(2, 5), kMaxSchedules,
                              kMaxDepth);
    expectClean(res);
    EXPECT_TRUE(res.complete);
    EXPECT_GT(res.schedules, 100u);
}

TEST(SpscModel, RandomizedRealQueueOps)
{
    const uint64_t rounds = 400 * budgetMultiplier();
    for (const uint64_t seed : {11u, 22u, 33u}) {
        const auto res = mc::exploreRandom(realFactory(4, 32), rounds,
                                           seed, kMaxDepth);
        expectClean(res);
    }
}
