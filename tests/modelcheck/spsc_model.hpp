/**
 * @file
 * Model-checked mirror of util/spsc_queue.hpp.
 *
 * ModelSpscSystem re-implements the SPSC ring's algorithm as an
 * instrumented state machine whose micro-steps — fullness check with
 * cached-index refresh, slot write, index publish, consumer poll,
 * close-flag load — are schedulable by the explorer in sched.hpp. The
 * instrumentation tracks ground truth the real queue cannot afford
 * to: a per-slot occupied bit (so reading a published-but-unwritten
 * or overwritten slot is caught at the exact step it happens) and the
 * exact FIFO sequence (values are pushed as 1..N and must pop in
 * order, so loss, duplication, and reordering all surface as a
 * mismatch or a short final count).
 *
 * SpscBug selects a deliberately broken variant; the checker must
 * find a violating schedule for every one of them and none for
 * SpscBug::None. Each bug is a realistic implementation slip:
 *
 *  - CapacityOffByOne: the fullness test admits capacity+1 items, so
 *    the ring wraps onto an unconsumed slot.
 *  - PublishBeforeWrite: the producer index is released before the
 *    payload store — the real queue's release/acquire pairing exists
 *    precisely to forbid this order.
 *  - NoCloseRecheck: the consumer trusts one failed tryPop + closed
 *    flag and skips the final re-poll, losing items pushed between
 *    the two loads (the race the comment in sharded_parallel.cpp's
 *    pollShard documents).
 *  - NeverRefreshHeadCache: the producer never refreshes its cached
 *    consumer position, so a once-full ring looks full forever and
 *    the system deadlocks.
 *
 * RealSpscSystem drives the actual util::SpscQueue at operation
 * granularity (each step is one complete tryPush/tryPop/close call),
 * checking the same FIFO/no-loss invariants across every operation
 * interleaving the explorer can produce.
 */

#ifndef SIEVESTORE_TESTS_MODELCHECK_SPSC_MODEL_HPP
#define SIEVESTORE_TESTS_MODELCHECK_SPSC_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "modelcheck/sched.hpp"
#include "util/check.hpp"
#include "util/spsc_queue.hpp"

namespace sievestore {
namespace modelcheck {

/** Which implementation slip to inject into the mirror. */
enum class SpscBug
{
    None,
    CapacityOffByOne,
    PublishBeforeWrite,
    NoCloseRecheck,
    NeverRefreshHeadCache,
};

/**
 * Micro-step mirror of the SPSC ring. Thread 0 is the producer
 * (pushes values 1..items, then closes), thread 1 the consumer
 * (pops until end-of-stream).
 */
class ModelSpscSystem : public SystemBase
{
  public:
    ModelSpscSystem(size_t capacity, uint32_t items, SpscBug bug)
        : slots_(capacity, 0), occupied_(capacity, 0),
          mask_(capacity - 1), items_(items), bug_(bug)
    {
        SIEVE_CHECK(capacity >= 2 && (capacity & mask_) == 0,
                    "model capacity must be a power of two >= 2");
    }

    size_t numThreads() const override { return 2; }

    bool
    done(size_t tid) const override
    {
        return tid == 0 ? pstate_ == PState::Done
                        : cstate_ == CState::Done;
    }

    bool
    runnable(size_t tid) const override
    {
        if (tid == 0)
            return producerRunnable();
        return consumerRunnable();
    }

    void
    step(size_t tid) override
    {
        if (tid == 0)
            stepProducer();
        else
            stepConsumer();
    }

    void
    checkFinal() override
    {
        if (popped_ != items_)
            fail("lost items: consumer saw " +
                 std::to_string(popped_) + " of " +
                 std::to_string(items_));
    }

  private:
    size_t capacity() const { return slots_.size(); }

    /** Occupancy limit the (possibly buggy) fullness test enforces. */
    uint64_t
    fullAt() const
    {
        return capacity() +
               (bug_ == SpscBug::CapacityOffByOne ? 1 : 0);
    }

    bool
    fullByCache() const
    {
        return tail_ - head_cache_ == fullAt();
    }

    // --- producer: Check -> Write/Publish -> ... -> Close

    enum class PState : uint8_t
    {
        Check,   ///< fullness test, refreshing the cached head if so
        Write,   ///< store the payload into its slot
        Publish, ///< release the new tail index
        Close,   ///< set the closed flag
        Done,
    };

    bool
    producerRunnable() const
    {
        if (pstate_ != PState::Check || !fullByCache())
            return true;
        // Blocked on a full ring: schedulable only once a refresh
        // would reveal room (omniscient read of the true head). The
        // stale-cache bug never refreshes, so it never wakes.
        if (bug_ == SpscBug::NeverRefreshHeadCache)
            return false;
        return tail_ - head_ != fullAt();
    }

    void
    stepProducer()
    {
        switch (pstate_) {
          case PState::Check:
            if (fullByCache()) {
                if (bug_ != SpscBug::NeverRefreshHeadCache)
                    head_cache_ = head_;
                if (fullByCache())
                    return; // still full; parked via runnable()
            }
            p_idx_ = tail_;
            pstate_ = bug_ == SpscBug::PublishBeforeWrite
                          ? PState::Publish
                          : PState::Write;
            return;
          case PState::Write: {
            const size_t slot = static_cast<size_t>(p_idx_ & mask_);
            if (occupied_[slot])
                fail("overwrote an unconsumed slot: the fullness "
                     "test admitted too many items");
            slots_[slot] = pushed_ + 1;
            occupied_[slot] = 1;
            if (bug_ == SpscBug::PublishBeforeWrite) {
                producerAdvance();
                return;
            }
            pstate_ = PState::Publish;
            return;
          }
          case PState::Publish:
            tail_ = p_idx_ + 1;
            if (tail_ - head_ > capacity())
                fail("published occupancy exceeds capacity");
            if (bug_ == SpscBug::PublishBeforeWrite) {
                pstate_ = PState::Write;
                return;
            }
            producerAdvance();
            return;
          case PState::Close:
            closed_ = true;
            pstate_ = PState::Done;
            return;
          case PState::Done:
            fail("scheduled a finished producer");
            return;
        }
    }

    /** After a completed push: next item or close. */
    void
    producerAdvance()
    {
        ++pushed_;
        pstate_ = pushed_ == items_ ? PState::Close : PState::Check;
    }

    // --- consumer: Pop -> [ClosedCheck -> FinalPop] -> Done

    enum class CState : uint8_t
    {
        Pop,         ///< one tryPop: consume, or find the ring empty
        ClosedCheck, ///< load the closed flag after a failed poll
        FinalPop,    ///< post-close re-poll pop() performs
        Done,
    };

    bool
    consumerRunnable() const
    {
        if (cstate_ != CState::Pop || !waiting_)
            return true;
        // Parked on an empty, open queue: wake when an item is truly
        // available or the producer closed.
        return tail_ != head_ || closed_;
    }

    /**
     * Mirror of tryPop as one schedulable step (one complete call of
     * the real queue): empty test with inline cache refresh, then
     * the slot read and head publish. The races this model hunts all
     * sit *between* calls (versus the producer's decomposed steps and
     * the closed flag), so coarser consumer granularity loses none
     * of them while keeping the exhaustive tree tractable.
     */
    bool
    tryPopStep()
    {
        if (head_ == tail_cache_) {
            tail_cache_ = tail_;
            if (head_ == tail_cache_)
                return false;
        }
        consume();
        return true;
    }

    void
    stepConsumer()
    {
        switch (cstate_) {
          case CState::Pop:
            waiting_ = false;
            if (!tryPopStep())
                cstate_ = CState::ClosedCheck;
            return;
          case CState::ClosedCheck:
            if (!closed_) {
                waiting_ = true;
                cstate_ = CState::Pop;
                return;
            }
            if (bug_ == SpscBug::NoCloseRecheck) {
                // Trust the single failed poll: end of stream.
                cstate_ = CState::Done;
                return;
            }
            cstate_ = CState::FinalPop;
            return;
          case CState::FinalPop:
            cstate_ = tryPopStep() ? CState::Pop : CState::Done;
            return;
          case CState::Done:
            fail("scheduled a finished consumer");
            return;
        }
    }

    void
    consume()
    {
        const size_t slot = static_cast<size_t>(head_ & mask_);
        if (!occupied_[slot])
            fail("popped a slot that was never written: the index "
                 "was published ahead of the payload");
        else if (slots_[slot] != popped_ + 1)
            fail("FIFO broken: expected " +
                 std::to_string(popped_ + 1) + ", popped " +
                 std::to_string(slots_[slot]));
        occupied_[slot] = 0;
        ++head_;
        ++popped_;
    }

    // Ground-truth ring.
    std::vector<uint32_t> slots_;
    std::vector<uint8_t> occupied_;
    const uint64_t mask_;
    uint64_t head_ = 0;
    uint64_t tail_ = 0;
    uint64_t head_cache_ = 0; ///< producer-private
    uint64_t tail_cache_ = 0; ///< consumer-private
    bool closed_ = false;

    const uint32_t items_;
    const SpscBug bug_;

    PState pstate_ = PState::Check;
    uint64_t p_idx_ = 0;
    uint32_t pushed_ = 0;

    CState cstate_ = CState::Pop;
    bool waiting_ = false;
    uint32_t popped_ = 0;
};

/**
 * The real util::SpscQueue under operation-granularity exploration:
 * each step is one complete public call, so the explorer covers every
 * interleaving of the two threads' operation sequences, including the
 * close/drain race pollShard handles.
 */
class RealSpscSystem : public SystemBase
{
  public:
    RealSpscSystem(size_t capacity, uint32_t items)
        : queue_(capacity), items_(items)
    {
    }

    size_t numThreads() const override { return 2; }

    bool
    done(size_t tid) const override
    {
        return tid == 0 ? producer_done_ : cstate_ == CState::Done;
    }

    bool
    runnable(size_t tid) const override
    {
        if (tid == 0) {
            if (producer_done_)
                return false;
            // Pushing blocks on a full ring; close never blocks.
            return pushed_ == items_ ||
                   queue_.sizeApprox() < queue_.capacity();
        }
        if (cstate_ != CState::Try || !waiting_)
            return true;
        return queue_.sizeApprox() > 0 || queue_.closed();
    }

    void
    step(size_t tid) override
    {
        if (tid == 0)
            stepProducer();
        else
            stepConsumer();
    }

    void
    checkFinal() override
    {
        if (popped_ != items_)
            fail("real queue lost items: popped " +
                 std::to_string(popped_) + " of " +
                 std::to_string(items_));
    }

  private:
    void
    stepProducer()
    {
        // The explorer interleaves the two logical threads on one OS
        // thread; claim the role each step for the queue's
        // thread-safety annotations.
        queue_.assertProducerRole();
        if (pushed_ < items_) {
            if (!queue_.tryPush(pushed_ + 1))
                fail("tryPush failed with space available");
            else
                ++pushed_;
            return;
        }
        queue_.close();
        producer_done_ = true;
    }

    enum class CState : uint8_t
    {
        Try,    ///< one tryPop; empty -> check the closed flag next
        Closed, ///< closed yet? final re-poll : park and retry
        Final,  ///< the post-close re-poll pop() performs
        Done,
    };

    void
    stepConsumer()
    {
        queue_.assertConsumerRole();
        uint32_t value = 0;
        switch (cstate_) {
          case CState::Try:
            waiting_ = false;
            if (queue_.tryPop(value))
                take(value);
            else
                cstate_ = CState::Closed;
            return;
          case CState::Closed:
            if (queue_.closed()) {
                cstate_ = CState::Final;
            } else {
                waiting_ = true;
                cstate_ = CState::Try;
            }
            return;
          case CState::Final:
            if (queue_.tryPop(value)) {
                take(value);
                cstate_ = CState::Try;
            } else {
                cstate_ = CState::Done;
            }
            return;
          case CState::Done:
            fail("scheduled a finished consumer");
            return;
        }
    }

    void
    take(uint32_t value)
    {
        if (value != popped_ + 1)
            fail("real queue FIFO broken: expected " +
                 std::to_string(popped_ + 1) + ", popped " +
                 std::to_string(value));
        ++popped_;
    }

    util::SpscQueue<uint32_t> queue_;
    const uint32_t items_;
    uint32_t pushed_ = 0;
    bool producer_done_ = false;

    CState cstate_ = CState::Try;
    bool waiting_ = false;
    uint32_t popped_ = 0;
};

} // namespace modelcheck
} // namespace sievestore

#endif // SIEVESTORE_TESTS_MODELCHECK_SPSC_MODEL_HPP
