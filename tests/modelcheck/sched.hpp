/**
 * @file
 * Deterministic schedule explorer for concurrent model checking.
 *
 * A System models a small concurrent program as N virtual threads,
 * each advanced one atomic micro-step at a time by step(tid). The
 * explorer owns the interleaving: it enumerates (exhaustively, via
 * stateless replay DFS) or samples (randomly, from a seeded Rng)
 * schedules, rebuilding the system from a factory for every schedule
 * so each run starts from the identical initial state.
 *
 * Blocking is modeled omnisciently: runnable(tid) may consult ground
 * truth a real thread could not see, and a thread whose progress
 * condition is false is simply never scheduled. That prunes the
 * unbounded spin-retry schedules a busy-waiting loop would otherwise
 * generate, while preserving every distinguishable interleaving of
 * the steps that do change state. A state where no thread is done()
 * yet none is runnable() is a deadlock and reported as a violation.
 *
 * The exploration is sequentially consistent: one step executes at a
 * time, fully, in program order. That is exactly the right tool for
 * the logic bugs this harness hunts (off-by-one occupancy tests,
 * publish/write reordering at the algorithm level, missed post-close
 * re-checks, stale-cache livelocks); weak-memory bugs are out of
 * scope here and covered by the tsan preset instead.
 */

#ifndef SIEVESTORE_TESTS_MODELCHECK_SCHED_HPP
#define SIEVESTORE_TESTS_MODELCHECK_SCHED_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"

namespace sievestore {
namespace modelcheck {

/**
 * A concurrent program under test. Implementations must be
 * deterministic: the same sequence of step(tid) calls from a fresh
 * instance must reproduce the same states, or DFS replay diverges.
 */
class System
{
  public:
    virtual ~System() = default;

    /** Number of virtual threads; at most 64. */
    virtual size_t numThreads() const = 0;

    /** True once thread `tid` has no further steps. */
    virtual bool done(size_t tid) const = 0;

    /**
     * True when thread `tid` could make progress if scheduled. May
     * consult omniscient ground truth (see file comment).
     */
    virtual bool runnable(size_t tid) const = 0;

    /** Execute one atomic micro-step of thread `tid`. */
    virtual void step(size_t tid) = 0;

    /** End-of-schedule invariants (e.g. nothing was lost). */
    virtual void checkFinal() = 0;

    /** First recorded violation, empty if the run is clean so far. */
    virtual const std::string &violation() const = 0;
};

/** Convenience base: violation recording shared by all models. */
class SystemBase : public System
{
  public:
    const std::string &violation() const override { return violation_; }

  protected:
    /** Record the first violation; later ones are dropped. */
    void
    fail(const std::string &message)
    {
        if (violation_.empty())
            violation_ = message;
    }

  private:
    std::string violation_;
};

using SystemFactory = std::function<std::unique_ptr<System>()>;

/** Outcome of one exploration campaign. */
struct ExploreResult
{
    /** Schedules fully executed (including the violating one). */
    uint64_t schedules = 0;
    /** Exhaustive only: the whole schedule tree was covered. */
    bool complete = false;
    /** Exhaustive only: stopped early on the schedule budget. */
    bool budget_exhausted = false;
    /** Some schedule exceeded the step bound (model likely livelocks). */
    bool depth_exceeded = false;
    /** First violation message; empty means none found. */
    std::string violation;
    /** Thread-choice sequence reproducing the violation. */
    std::vector<uint32_t> trace;

    /** Render the violating schedule for a failure message. */
    std::string
    traceString() const
    {
        std::string out;
        for (uint32_t tid : trace) {
            if (!out.empty())
                out += ',';
            out += std::to_string(tid);
        }
        return out;
    }
};

namespace detail {

inline uint64_t
enabledMask(const System &sys)
{
    uint64_t mask = 0;
    for (size_t t = 0; t < sys.numThreads(); ++t)
        if (!sys.done(t) && sys.runnable(t))
            mask |= uint64_t(1) << t;
    return mask;
}

inline bool
allDone(const System &sys)
{
    for (size_t t = 0; t < sys.numThreads(); ++t)
        if (!sys.done(t))
            return false;
    return true;
}

inline uint32_t
lowestBit(uint64_t mask)
{
    SIEVE_DCHECK(mask != 0, "no enabled thread to pick");
    uint32_t i = 0;
    while (!(mask & (uint64_t(1) << i)))
        ++i;
    return i;
}

inline uint32_t
randomBit(uint64_t mask, util::Rng &rng)
{
    uint32_t count = 0;
    for (uint64_t m = mask; m; m &= m - 1)
        ++count;
    uint64_t pick = rng.nextBelow(count);
    for (uint32_t i = 0;; ++i) {
        if (!(mask & (uint64_t(1) << i)))
            continue;
        if (pick-- == 0)
            return i;
    }
}

/**
 * Run one schedule to completion. `choose` maps (step index, enabled
 * mask) to the thread to run. Returns true if a violation or deadlock
 * was found (recorded into `res`); the executed choice sequence is
 * left in `res.trace` either way.
 */
template <typename ChooseFn>
bool
runSchedule(System &sys, size_t max_depth, ChooseFn &&choose,
            ExploreResult &res)
{
    res.trace.clear();
    for (;;) {
        if (!sys.violation().empty()) {
            res.violation = sys.violation();
            return true;
        }
        if (allDone(sys)) {
            sys.checkFinal();
            res.violation = sys.violation();
            return !res.violation.empty();
        }
        const uint64_t enabled = enabledMask(sys);
        if (enabled == 0) {
            res.violation =
                "deadlock: no runnable thread before completion";
            return true;
        }
        if (res.trace.size() >= max_depth) {
            res.depth_exceeded = true;
            res.violation = "step bound exceeded: model does not "
                            "terminate under this schedule";
            return true;
        }
        const uint32_t tid = choose(res.trace.size(), enabled);
        sys.step(tid);
        res.trace.push_back(tid);
    }
}

} // namespace detail

/**
 * Stateless-replay depth-first search over every schedule, bounded by
 * `max_schedules` runs and `max_depth` steps per run. Each iteration
 * rebuilds the system and replays the current choice prefix, then
 * extends it first-enabled-thread-first; backtracking resumes at the
 * deepest choice point with an untried alternative.
 */
inline ExploreResult
exploreExhaustive(const SystemFactory &make, uint64_t max_schedules,
                  size_t max_depth)
{
    struct ChoiceRec
    {
        uint64_t enabled;
        uint64_t tried;
        uint32_t chosen;
    };
    std::vector<ChoiceRec> stack;
    ExploreResult res;
    for (;;) {
        auto sys = make();
        const bool bad = detail::runSchedule(
            *sys, max_depth,
            [&stack](size_t pos, uint64_t enabled) {
                if (pos < stack.size()) {
                    // Replay the prefix under exploration.
                    const ChoiceRec &rec = stack[pos];
                    SIEVE_CHECK(enabled ==
                                    rec.enabled,
                                "model is nondeterministic: enabled "
                                "mask changed on replay");
                    return rec.chosen;
                }
                const uint32_t tid = detail::lowestBit(enabled);
                stack.push_back(
                    ChoiceRec{enabled, uint64_t(1) << tid, tid});
                return tid;
            },
            res);
        ++res.schedules;
        if (bad)
            return res;
        // Backtrack to the deepest untried alternative.
        while (!stack.empty()) {
            ChoiceRec &rec = stack.back();
            const uint64_t untried = rec.enabled & ~rec.tried;
            if (untried) {
                rec.chosen = detail::lowestBit(untried);
                rec.tried |= uint64_t(1) << rec.chosen;
                break;
            }
            stack.pop_back();
        }
        if (stack.empty()) {
            res.complete = true;
            return res;
        }
        if (res.schedules >= max_schedules) {
            res.budget_exhausted = true;
            return res;
        }
    }
}

/**
 * Sample `schedules` random interleavings from a seeded Rng. Far
 * shallower than DFS per schedule-count, but scales to instances the
 * exhaustive tree cannot reach.
 */
inline ExploreResult
exploreRandom(const SystemFactory &make, uint64_t schedules,
              uint64_t seed, size_t max_depth)
{
    util::Rng rng(seed);
    ExploreResult res;
    for (uint64_t s = 0; s < schedules; ++s) {
        auto sys = make();
        const bool bad = detail::runSchedule(
            *sys, max_depth,
            [&rng](size_t, uint64_t enabled) {
                return detail::randomBit(enabled, rng);
            },
            res);
        ++res.schedules;
        if (bad)
            return res;
    }
    return res;
}

} // namespace modelcheck
} // namespace sievestore

#endif // SIEVESTORE_TESTS_MODELCHECK_SCHED_HPP
