/**
 * @file
 * Unit tests for the formatted table emitter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/table.hpp"
#include "util/logging.hpp"

namespace {

using namespace sievestore::stats;
using sievestore::util::FatalError;

TEST(Table, FormatsCellsByType)
{
    Table t({"name", "count", "ratio", "pct"});
    t.row()
        .cell("row1")
        .cell(uint64_t(1234567))
        .cell(0.12345, 2)
        .cellPercent(0.4567);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("1,234,567"), std::string::npos);
    EXPECT_NE(out.find("0.12"), std::string::npos);
    EXPECT_NE(out.find("45.7%"), std::string::npos);
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "b"});
    t.row().cell("x").cell(uint64_t(1));
    t.row().cell("longer").cell(uint64_t(100));
    std::ostringstream os;
    t.print(os);
    std::istringstream is(os.str());
    std::string line;
    std::vector<size_t> lengths;
    while (std::getline(is, line))
        lengths.push_back(line.size());
    // Header, rule, two body rows: all the same width.
    ASSERT_EQ(lengths.size(), 4u);
    EXPECT_EQ(lengths[0], lengths[2]);
    EXPECT_EQ(lengths[2], lengths[3]);
}

TEST(Table, CsvQuoting)
{
    Table t({"k", "v"});
    t.row().cell("a,b").cell("say \"hi\"");
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"a,b\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainValuesUnquoted)
{
    Table t({"k"});
    t.row().cell("plain");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "k\nplain\n");
}

TEST(Table, NegativeIntegers)
{
    Table t({"v"});
    t.row().cell(int64_t(-1234));
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("-1,234"), std::string::npos);
}

TEST(Table, RejectsZeroColumns)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(Table, CellOverflowPanics)
{
    Table t({"only"});
    t.row().cell("x");
    EXPECT_DEATH(t.cell("too many"), "overflow");
}

TEST(Table, CellBeforeRowPanics)
{
    Table t({"c"});
    EXPECT_DEATH(t.cell("x"), "before");
}

} // namespace
