/**
 * @file
 * Property test: SieveStore-C against a brute-force reference sieve.
 *
 * The reference keeps, for every block, the full list of its miss
 * subwindows, and implements the paper's admission rule directly:
 * misses accumulate in an (unaliased) first tier until t1 within the
 * window, then the block needs t2 further in-window misses to be
 * allocated, with all state expiring when a window passes untouched.
 * With an IMCT large enough to make aliasing practically impossible,
 * SieveStoreCPolicy must agree with the reference decision-for-decision
 * on arbitrary miss streams.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "core/sievestore_c.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::core;
using sievestore::trace::BlockAccess;
using sievestore::trace::BlockId;
using sievestore::trace::Op;
using sievestore::util::Rng;

/** Brute-force per-block reimplementation of the two-tier rule. */
class ReferenceSieve
{
  public:
    ReferenceSieve(uint32_t t1_, uint32_t t2_, const WindowSpec &spec_)
        : t1(t1_), t2(t2_), spec(spec_)
    {
    }

    bool
    onMiss(BlockId block, uint64_t t)
    {
        const uint64_t sub = spec.subwindowOf(t);
        State &s = states[block];

        // Stale state dies exactly as the windowed counters do.
        if (s.touched && sub >= s.last_sub + spec.k) {
            s.tier1.clear();
            s.in_mct = false;
            s.tier2.clear();
        }
        // Expired subwindow slots are dropped (same slot-reuse rule).
        auto expire = [&](std::vector<uint64_t> &subs) {
            std::vector<uint64_t> live;
            for (uint64_t x : subs)
                if (x + spec.k > sub)
                    live.push_back(x);
            subs = std::move(live);
        };
        expire(s.tier1);
        expire(s.tier2);
        s.last_sub = sub;
        s.touched = true;

        // On allocation only the MCT entry is retired; the IMCT slot
        // (tier1) keeps its windowed count — an aliased table cannot be
        // selectively cleared. In the appliance this is moot (resident
        // blocks do not miss), but the raw policy semantics are that a
        // re-missed block re-qualifies from its still-live slot count.
        if (s.in_mct) {
            s.tier2.push_back(sub);
            if (s.tier2.size() >= t2) {
                s.in_mct = false;
                s.tier2.clear();
                return true;
            }
            return false;
        }
        s.tier1.push_back(sub);
        if (s.tier1.size() >= t1) {
            s.in_mct = true;
            if (t2 == 0) {
                s.in_mct = false;
                return true;
            }
        }
        return false;
    }

  private:
    struct State
    {
        std::vector<uint64_t> tier1, tier2;
        bool in_mct = false;
        bool touched = false;
        uint64_t last_sub = 0;
    };
    uint32_t t1, t2;
    WindowSpec spec;
    std::unordered_map<BlockId, State> states;
};

struct Params
{
    uint32_t t1, t2, k;
    uint64_t seed;
};

class SieveReference : public ::testing::TestWithParam<Params>
{
};

TEST_P(SieveReference, AgreesOnRandomMissStreams)
{
    const Params p = GetParam();
    SieveStoreCConfig cfg;
    cfg.t1 = p.t1;
    cfg.t2 = p.t2;
    cfg.window.k = p.k;
    cfg.window.subwindow_us = 10000000; // 10 s subwindows
    // Enormous relative to the key space: aliasing probability ~ 0.
    cfg.imct_slots = 1 << 22;
    SieveStoreCPolicy sieve(cfg);
    ReferenceSieve reference(p.t1, p.t2, cfg.window);

    Rng rng(p.seed);
    uint64_t t = 0;
    BlockAccess a;
    a.op = Op::Read;
    int allocations = 0;
    for (int i = 0; i < 30000; ++i) {
        // Skewed key space so some blocks cross the thresholds, with
        // occasional long pauses to exercise expiry.
        a.block = rng.nextBool(0.4) ? rng.nextBelow(8)
                                    : rng.nextBelow(4096);
        t += rng.nextBool(0.01)
                 ? cfg.window.subwindow_us * rng.nextInRange(1, 8)
                 : rng.nextBelow(300000);
        a.time = t;
        a.completion = t + 1000;
        const bool got =
            sieve.onMiss(a) == AllocDecision::Allocate;
        const bool expect = reference.onMiss(a.block, t);
        ASSERT_EQ(got, expect)
            << "step " << i << " block " << a.block << " t " << t;
        allocations += got;
    }
    // The stream must actually exercise allocation for the test to
    // mean anything.
    EXPECT_GT(allocations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SieveReference,
    ::testing::Values(Params{9, 4, 4, 1}, Params{9, 4, 4, 2},
                      Params{1, 1, 4, 3}, Params{3, 0, 4, 4},
                      Params{9, 4, 2, 5}, Params{5, 2, 8, 6},
                      Params{2, 7, 4, 7}, Params{4, 2, 1, 8}));

} // namespace
