/**
 * @file
 * Unit tests for the request record and its ordering.
 */

#include <gtest/gtest.h>

#include "trace/request.hpp"

namespace {

using namespace sievestore::trace;

Request
makeRequest(uint64_t time, uint16_t volume, uint64_t offset, uint32_t len,
            Op op = Op::Read, uint32_t latency = 1000)
{
    Request r;
    r.time = time;
    r.volume = volume;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.op = op;
    r.latency_us = latency;
    return r;
}

TEST(Request, BlockAtCoversRange)
{
    const Request r = makeRequest(0, 3, 100, 4);
    EXPECT_EQ(r.blockAt(0), makeBlockId(3, 100));
    EXPECT_EQ(r.blockAt(3), makeBlockId(3, 103));
}

TEST(Request, CompletionAndBytes)
{
    const Request r = makeRequest(5000, 1, 0, 16, Op::Write, 2500);
    EXPECT_EQ(r.completion(), 7500u);
    EXPECT_EQ(r.bytes(), 16u * 512u);
}

TEST(Request, TimeOrderingPrimary)
{
    const Request a = makeRequest(1, 0, 0, 1);
    const Request b = makeRequest(2, 0, 0, 1);
    EXPECT_TRUE(requestTimeLess(a, b));
    EXPECT_FALSE(requestTimeLess(b, a));
}

TEST(Request, TieBreaksAreDeterministicAndIrreflexive)
{
    const Request a = makeRequest(1, 0, 0, 1, Op::Read);
    const Request b = makeRequest(1, 0, 0, 1, Op::Write);
    const Request c = makeRequest(1, 1, 0, 1, Op::Read);
    EXPECT_TRUE(requestTimeLess(a, b));  // read < write
    EXPECT_FALSE(requestTimeLess(b, a));
    EXPECT_TRUE(requestTimeLess(a, c));  // volume 0 < 1
    EXPECT_FALSE(requestTimeLess(a, a)); // irreflexive
}

} // namespace
