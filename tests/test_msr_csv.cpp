/**
 * @file
 * Unit tests for the MSR-Cambridge CSV trace reader/writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/msr_csv.hpp"
#include "util/logging.hpp"

namespace {

using namespace sievestore::trace;
using sievestore::util::FatalError;

class MsrCsvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ensemble = EnsembleConfig::paperEnsemble();
        path = std::filesystem::temp_directory_path() /
               ("msr_test_" + std::to_string(::getpid()) + ".csv");
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }

    void
    writeLines(const std::string &content)
    {
        std::ofstream out(path);
        out << content;
    }

    EnsembleConfig ensemble;
    std::filesystem::path path;
};

TEST_F(MsrCsvTest, ParsesBasicRecord)
{
    // 128166372003061629 ticks is a realistic MSR timestamp.
    writeLines("128166372003061629,usr,0,Read,4096,8192,120000\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.server, ensemble.serverByKey("Usr").id);
    EXPECT_EQ(r.volume, ensemble.serverByKey("Usr").volume_ids[0]);
    EXPECT_EQ(r.op, Op::Read);
    EXPECT_EQ(r.offset_blocks, 8u);   // 4096 / 512
    EXPECT_EQ(r.length_blocks, 16u);  // 8192 / 512
    EXPECT_EQ(r.latency_us, 12000u);  // 120000 ticks / 10
    EXPECT_FALSE(reader.next(r));
}

TEST_F(MsrCsvTest, OriginIsPrecedingCalendarMidnight)
{
    writeLines("128166372003061629,web,1,Write,0,512,10\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(reader.originTicks() % kTicksPerDay, 0u);
    EXPECT_LE(reader.originTicks(), 128166372003061629ULL);
    EXPECT_LT(128166372003061629ULL - reader.originTicks(), kTicksPerDay);
    EXPECT_EQ(r.time,
              (128166372003061629ULL - reader.originTicks()) / 10);
}

TEST_F(MsrCsvTest, UnalignedByteExtentRoundsOutward)
{
    // Bytes [700, 1500) touch blocks 1 and 2.
    writeLines("864000000000,prxy,0,Read,700,800,10\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.offset_blocks, 1u);
    EXPECT_EQ(r.length_blocks, 2u);
}

TEST_F(MsrCsvTest, ZeroSizeTouchesOneBlock)
{
    writeLines("864000000000,prxy,0,Read,1024,0,10\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.length_blocks, 1u);
}

TEST_F(MsrCsvTest, SkipsUnknownHosts)
{
    writeLines("864000000000,mystery,0,Read,0,512,10\n"
               "864000000001,usr,0,Read,0,512,10\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.server, ensemble.serverByKey("Usr").id);
    EXPECT_EQ(reader.skipped(), 1u);
}

TEST_F(MsrCsvTest, SkipsOutOfRangeDisk)
{
    // Ts has a single volume; disk 5 does not exist.
    writeLines("864000000000,ts,5,Read,0,512,10\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    EXPECT_FALSE(reader.next(r));
    EXPECT_EQ(reader.skipped(), 1u);
}

TEST_F(MsrCsvTest, MalformedLineIsFatal)
{
    writeLines("not,enough,fields\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    EXPECT_THROW(reader.next(r), FatalError);
}

TEST_F(MsrCsvTest, CommentsAndBlankLinesIgnored)
{
    writeLines("# header comment\n"
               "\n"
               "864000000000,usr,0,Write,512,512,10\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.op, Op::Write);
}

TEST_F(MsrCsvTest, MissingFileIsFatal)
{
    EXPECT_THROW(MsrCsvReader("/no/such/file.csv", ensemble), FatalError);
}

TEST_F(MsrCsvTest, WriterReaderRoundTrip)
{
    const uint64_t origin = 1000 * kTicksPerDay;
    {
        MsrCsvWriter writer(path.string(), ensemble, origin);
        Request r;
        r.time = 12345678;
        r.server = ensemble.serverByKey("Src1").id;
        r.volume = ensemble.serverByKey("Src1").volume_ids[2];
        r.op = Op::Write;
        r.offset_blocks = 999;
        r.length_blocks = 7;
        r.latency_us = 4321;
        writer.write(r);
        writer.close();
        EXPECT_EQ(writer.written(), 1u);
    }
    MsrCsvReader reader(path.string(), ensemble, origin);
    Request r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.time, 12345678u);
    EXPECT_EQ(r.server, ensemble.serverByKey("Src1").id);
    EXPECT_EQ(r.volume, ensemble.serverByKey("Src1").volume_ids[2]);
    EXPECT_EQ(r.op, Op::Write);
    EXPECT_EQ(r.offset_blocks, 999u);
    EXPECT_EQ(r.length_blocks, 7u);
    EXPECT_EQ(r.latency_us, 4321u);
}

TEST_F(MsrCsvTest, ResetRestartsStream)
{
    writeLines("864000000000,usr,0,Read,0,512,10\n"
               "864000000001,usr,0,Read,512,512,10\n");
    MsrCsvReader reader(path.string(), ensemble);
    Request r;
    int count = 0;
    while (reader.next(r))
        ++count;
    EXPECT_EQ(count, 2);
    reader.reset();
    count = 0;
    while (reader.next(r))
        ++count;
    EXPECT_EQ(count, 2);
}

} // namespace
