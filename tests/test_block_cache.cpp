/**
 * @file
 * Unit tests for the fully-associative block cache.
 */

#include <gtest/gtest.h>

#include "cache/block_cache.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::cache;
using sievestore::trace::BlockId;
using sievestore::util::FatalError;
using sievestore::util::Rng;

TEST(BlockCache, InsertAndLookup)
{
    BlockCache cache(4);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_FALSE(cache.access(1));
    cache.insert(1);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.access(1));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCache, LruEvictionOrder)
{
    BlockCache cache(3);
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    // Touch 1 so 2 becomes LRU.
    cache.access(1);
    const auto evicted = cache.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
}

TEST(BlockCache, NoEvictionBelowCapacity)
{
    BlockCache cache(10);
    for (BlockId b = 0; b < 10; ++b)
        EXPECT_FALSE(cache.insert(b).has_value());
    EXPECT_TRUE(cache.full());
}

TEST(BlockCache, Erase)
{
    BlockCache cache(2);
    cache.insert(5);
    EXPECT_TRUE(cache.erase(5));
    EXPECT_FALSE(cache.erase(5));
    EXPECT_EQ(cache.size(), 0u);
    // Slot is reusable.
    cache.insert(6);
    cache.insert(7);
    EXPECT_FALSE(cache.insert(5).has_value() == false &&
                 cache.size() != 2);
}

TEST(BlockCache, DuplicateInsertPanics)
{
    BlockCache cache(2);
    cache.insert(1);
    EXPECT_DEATH(cache.insert(1), "resident");
}

TEST(BlockCache, ZeroCapacityRejected)
{
    EXPECT_THROW(BlockCache(0), FatalError);
}

TEST(BlockCache, BatchReplaceCancellation)
{
    // Section 3.2: blocks in both the outgoing and incoming sets are
    // not moved.
    BlockCache cache(10);
    for (BlockId b = 1; b <= 5; ++b)
        cache.insert(b);
    const BatchReplaceResult r = cache.batchReplace({4, 5, 6, 7});
    EXPECT_EQ(r.retained, 2u);  // 4, 5
    EXPECT_EQ(r.evicted, 3u);   // 1, 2, 3
    EXPECT_EQ(r.allocated, 2u); // 6, 7
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_TRUE(cache.contains(6));
    EXPECT_FALSE(cache.contains(1));
}

TEST(BlockCache, BatchReplaceTruncatesToCapacity)
{
    BlockCache cache(3);
    std::vector<BlockId> incoming;
    for (BlockId b = 0; b < 10; ++b)
        incoming.push_back(b);
    const BatchReplaceResult r = cache.batchReplace(incoming);
    EXPECT_EQ(r.allocated, 3u);
    EXPECT_EQ(cache.size(), 3u);
    // Priority order: the first capacity entries win.
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(2));
    EXPECT_FALSE(cache.contains(3));
}

TEST(BlockCache, BatchReplaceEmptySetEvictsAll)
{
    BlockCache cache(4);
    cache.insert(1);
    cache.insert(2);
    const BatchReplaceResult r = cache.batchReplace({});
    EXPECT_EQ(r.evicted, 2u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCache, BatchThenContinuousInteroperate)
{
    BlockCache cache(3);
    cache.batchReplace({1, 2, 3});
    cache.access(1);
    cache.access(2);
    // 3 is LRU now.
    const auto evicted = cache.insert(9);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 3u);
}

TEST(BlockCache, ContentsSnapshot)
{
    BlockCache cache(4);
    cache.insert(10);
    cache.insert(20);
    auto contents = cache.contents();
    std::sort(contents.begin(), contents.end());
    EXPECT_EQ(contents, (std::vector<BlockId>{10, 20}));
}

TEST(BlockCache, SizeNeverExceedsCapacityUnderRandomOps)
{
    BlockCache cache(16);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const BlockId b = rng.nextBelow(100);
        if (!cache.access(b))
            cache.insert(b);
        ASSERT_LE(cache.size(), 16u);
    }
    EXPECT_EQ(cache.size(), 16u);
}

} // namespace
