/**
 * @file
 * Unit tests for the fully-associative block cache.
 */

#include <gtest/gtest.h>

#include "cache/block_cache.hpp"
#include "cache/replacement.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::cache;
using sievestore::trace::BlockId;
using sievestore::util::FatalError;
using sievestore::util::Rng;

TEST(BlockCache, InsertAndLookup)
{
    BlockCache cache(4);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_FALSE(cache.access(1));
    cache.insert(1);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.access(1));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(BlockCache, LruEvictionOrder)
{
    BlockCache cache(3);
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    // Touch 1 so 2 becomes LRU.
    cache.access(1);
    const auto evicted = cache.insert(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
}

TEST(BlockCache, NoEvictionBelowCapacity)
{
    BlockCache cache(10);
    for (BlockId b = 0; b < 10; ++b)
        EXPECT_FALSE(cache.insert(b).has_value());
    EXPECT_TRUE(cache.full());
}

TEST(BlockCache, Erase)
{
    BlockCache cache(2);
    cache.insert(5);
    EXPECT_TRUE(cache.erase(5));
    EXPECT_FALSE(cache.erase(5));
    EXPECT_EQ(cache.size(), 0u);
    // Slot is reusable.
    cache.insert(6);
    cache.insert(7);
    EXPECT_FALSE(cache.insert(5).has_value() == false &&
                 cache.size() != 2);
}

TEST(BlockCache, DuplicateInsertPanics)
{
    BlockCache cache(2);
    cache.insert(1);
    EXPECT_DEATH(cache.insert(1), "resident");
}

TEST(BlockCache, ZeroCapacityRejected)
{
    EXPECT_THROW(BlockCache(0), FatalError);
}

TEST(BlockCache, BatchReplaceCancellation)
{
    // Section 3.2: blocks in both the outgoing and incoming sets are
    // not moved.
    BlockCache cache(10);
    for (BlockId b = 1; b <= 5; ++b)
        cache.insert(b);
    const BatchReplaceResult r = cache.batchReplace({4, 5, 6, 7});
    EXPECT_EQ(r.retained, 2u);  // 4, 5
    EXPECT_EQ(r.evicted, 3u);   // 1, 2, 3
    EXPECT_EQ(r.allocated, 2u); // 6, 7
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_TRUE(cache.contains(6));
    EXPECT_FALSE(cache.contains(1));
}

TEST(BlockCache, BatchReplaceTruncatesToCapacity)
{
    BlockCache cache(3);
    std::vector<BlockId> incoming;
    for (BlockId b = 0; b < 10; ++b)
        incoming.push_back(b);
    const BatchReplaceResult r = cache.batchReplace(incoming);
    EXPECT_EQ(r.allocated, 3u);
    EXPECT_EQ(cache.size(), 3u);
    // Priority order: the first capacity entries win.
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(2));
    EXPECT_FALSE(cache.contains(3));
}

TEST(BlockCache, BatchReplaceEmptySetEvictsAll)
{
    BlockCache cache(4);
    cache.insert(1);
    cache.insert(2);
    const BatchReplaceResult r = cache.batchReplace({});
    EXPECT_EQ(r.evicted, 2u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCache, BatchThenContinuousInteroperate)
{
    BlockCache cache(3);
    cache.batchReplace({1, 2, 3});
    cache.access(1);
    cache.access(2);
    // 3 is LRU now.
    const auto evicted = cache.insert(9);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 3u);
}

TEST(BlockCache, ContentsSnapshot)
{
    BlockCache cache(4);
    cache.insert(10);
    cache.insert(20);
    auto contents = cache.contents();
    std::sort(contents.begin(), contents.end());
    EXPECT_EQ(contents, (std::vector<BlockId>{10, 20}));
}

/** All built-in kinds, across both cache engines. */
std::vector<BlockCache>
everyEngine(uint64_t capacity, EvictionKind kind)
{
    std::vector<BlockCache> caches;
    caches.emplace_back(capacity, EvictionSpec{kind, 3});
    caches.emplace_back(
        capacity, makeReferencePolicy(EvictionSpec{kind, 3}, capacity));
    return caches;
}

const EvictionKind kEveryKind[] = {EvictionKind::Lru,
                                   EvictionKind::Fifo,
                                   EvictionKind::Clock,
                                   EvictionKind::Lfu,
                                   EvictionKind::Random};

TEST(BlockCache, BatchReplaceAccountingHoldsForEveryPolicy)
{
    // The Section 3.2 cancellation semantics are policy-independent:
    // retained + evicted equals the outgoing size, retained +
    // allocated the installed size, for FIFO/CLOCK/Random/LFU just as
    // for LRU.
    for (const EvictionKind kind : kEveryKind) {
        for (BlockCache &cache : everyEngine(10, kind)) {
            for (BlockId b = 1; b <= 5; ++b)
                cache.insert(b);
            const BatchReplaceResult r = cache.batchReplace({4, 5, 6, 7});
            EXPECT_EQ(r.retained, 2u) << evictionKindName(kind);
            EXPECT_EQ(r.evicted, 3u) << evictionKindName(kind);
            EXPECT_EQ(r.allocated, 2u) << evictionKindName(kind);
            EXPECT_EQ(cache.size(), 4u) << evictionKindName(kind);
            EXPECT_TRUE(cache.contains(6));
            EXPECT_FALSE(cache.contains(1));
            cache.checkInvariants();
        }
    }
}

TEST(BlockCache, BatchReplaceTruncationHoldsForEveryPolicy)
{
    for (const EvictionKind kind : kEveryKind) {
        for (BlockCache &cache : everyEngine(3, kind)) {
            std::vector<BlockId> incoming;
            for (BlockId b = 0; b < 10; ++b)
                incoming.push_back(b);
            const BatchReplaceResult r = cache.batchReplace(incoming);
            EXPECT_EQ(r.allocated, 3u) << evictionKindName(kind);
            EXPECT_EQ(cache.size(), 3u) << evictionKindName(kind);
            EXPECT_TRUE(cache.contains(0));
            EXPECT_TRUE(cache.contains(2));
            EXPECT_FALSE(cache.contains(3));
            cache.checkInvariants();
        }
    }
}

TEST(BlockCache, BatchThenContinuousInteroperateForEveryPolicy)
{
    // After an epoch batch, the policy's continuous machinery must be
    // fully primed: inserts evict exactly one victim and hits behave
    // per the policy, with invariants intact throughout.
    for (const EvictionKind kind : kEveryKind) {
        for (BlockCache &cache : everyEngine(4, kind)) {
            cache.batchReplace({1, 2, 3, 4});
            for (BlockId b = 10; b < 40; ++b) {
                if (!cache.access(b)) {
                    const auto victim = cache.insert(b);
                    ASSERT_TRUE(victim.has_value())
                        << evictionKindName(kind);
                    EXPECT_FALSE(cache.contains(*victim));
                }
                ASSERT_EQ(cache.size(), 4u) << evictionKindName(kind);
            }
            cache.checkInvariants();
            // A second batch over a post-batch-churned cache.
            const BatchReplaceResult r =
                cache.batchReplace({100, 101, 102});
            EXPECT_EQ(r.retained + r.evicted, 4u)
                << evictionKindName(kind);
            EXPECT_EQ(r.retained + r.allocated, 3u)
                << evictionKindName(kind);
            cache.checkInvariants();
        }
    }
}

TEST(BlockCache, SizeNeverExceedsCapacityUnderRandomOps)
{
    BlockCache cache(16);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const BlockId b = rng.nextBelow(100);
        if (!cache.access(b))
            cache.insert(b);
        ASSERT_LE(cache.size(), 16u);
    }
    EXPECT_EQ(cache.size(), 16u);
}

} // namespace
