/**
 * @file
 * Property sweep: accounting invariants of the appliance under random
 * request streams, every continuous policy, and every replacement
 * policy — the "no configuration can corrupt the books" test.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/replacement.hpp"
#include "core/appliance.hpp"
#include "core/auto_tune.hpp"
#include "core/rand_sieve.hpp"
#include "core/unsieved.hpp"
#include "sim/driver.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::core;
using namespace sievestore::trace;
using sievestore::util::Rng;

std::vector<Request>
randomTrace(uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<Request> reqs;
    uint64_t t = 0;
    for (size_t i = 0; i < n; ++i) {
        Request r;
        t += rng.nextBelow(60 * 1000000);
        r.time = t;
        r.volume = static_cast<VolumeId>(rng.nextBelow(4));
        r.server = static_cast<ServerId>(rng.nextBelow(3));
        r.op = rng.nextBool(0.7) ? Op::Read : Op::Write;
        // Mix of tight hot keys and a wide cold space; variable sizes.
        r.offset_blocks = rng.nextBool(0.5)
                              ? rng.nextBelow(64) * 8
                              : rng.nextBelow(1 << 20);
        r.length_blocks =
            1 + static_cast<uint32_t>(rng.nextBelow(64));
        r.latency_us =
            static_cast<uint32_t>(rng.nextBelow(5000000));
        reqs.push_back(r);
    }
    return reqs;
}

struct Combo
{
    int policy;      // 0 AOD, 1 WMNA, 2 RandC, 3 SieveC, 4 AutoTune
    int replacement; // 0 LRU, 1 FIFO, 2 Random, 3 LFU, 4 CLOCK
    uint64_t seed;
};

std::unique_ptr<AllocationPolicy>
makePolicy(int kind)
{
    switch (kind) {
      case 0:
        return std::make_unique<AodPolicy>();
      case 1:
        return std::make_unique<WmnaPolicy>();
      case 2:
        return std::make_unique<RandSieveCPolicy>(0.05, 3);
      case 3: {
        SieveStoreCConfig cfg;
        cfg.imct_slots = 1 << 12;
        cfg.t1 = 2;
        cfg.t2 = 1;
        return std::make_unique<SieveStoreCPolicy>(cfg);
      }
      default: {
        SieveStoreCConfig cfg;
        cfg.imct_slots = 1 << 12;
        cfg.t1 = 2;
        cfg.t2 = 1;
        AutoTuneConfig tune;
        tune.cache_blocks = 512;
        return std::make_unique<AutoTunedSievePolicy>(cfg, tune);
      }
    }
}

cache::EvictionSpec
makeEviction(int kind)
{
    switch (kind) {
      case 0:
        return {cache::EvictionKind::Lru, 7};
      case 1:
        return {cache::EvictionKind::Fifo, 7};
      case 2:
        return {cache::EvictionKind::Random, 7};
      case 3:
        return {cache::EvictionKind::Lfu, 7};
      default:
        return {cache::EvictionKind::Clock, 7};
    }
}

class ApplianceProperties : public ::testing::TestWithParam<Combo>
{
};

TEST_P(ApplianceProperties, AccountingInvariantsHold)
{
    const Combo combo = GetParam();
    ApplianceConfig cfg;
    cfg.cache_blocks = 512;
    cfg.track_occupancy = true;
    cfg.eviction = makeEviction(combo.replacement);
    Appliance app(cfg, makePolicy(combo.policy));

    auto reqs = randomTrace(combo.seed, 3000);
    uint64_t expected_accesses = 0, expected_reads = 0;
    for (const auto &r : reqs) {
        expected_accesses += r.length_blocks;
        if (r.op == Op::Read)
            expected_reads += r.length_blocks;
    }
    VectorTrace trace(std::move(reqs));
    sim::runTrace(trace, app);

    const DailyReport t = app.totals();
    // Conservation.
    EXPECT_EQ(t.accesses, expected_accesses);
    EXPECT_EQ(t.read_accesses, expected_reads);
    EXPECT_EQ(t.hits, t.read_hits + t.write_hits);
    EXPECT_LE(t.hits, t.accesses);
    EXPECT_LE(t.read_hits, t.read_accesses);
    EXPECT_LE(t.write_hits, t.accesses - t.read_accesses);
    // 4 KB I/O counts never exceed their block counts.
    EXPECT_LE(t.ssd_read_ios, t.read_hits);
    EXPECT_LE(t.ssd_write_ios, t.write_hits);
    EXPECT_LE(t.ssd_alloc_ios, t.allocation_write_blocks);
    // Capacity is never violated.
    EXPECT_LE(app.blockCache().size(), cfg.cache_blocks);
    // Occupancy saw exactly the I/Os the reports claim.
    const auto *occ = app.occupancy();
    ASSERT_NE(occ, nullptr);
    EXPECT_EQ(occ->totalReadIos(), t.ssd_read_ios);
    EXPECT_EQ(occ->totalWriteIos(),
              t.ssd_write_ios + t.ssd_alloc_ios);
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (int p = 0; p < 5; ++p)
        for (int r = 0; r < 5; ++r)
            combos.push_back(
                Combo{p, r, static_cast<uint64_t>(p * 100 + r)});
    return combos;
}

INSTANTIATE_TEST_SUITE_P(AllPolicyReplacementPairs, ApplianceProperties,
                         ::testing::ValuesIn(allCombos()));

} // namespace
