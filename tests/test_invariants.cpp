/**
 * @file
 * Adversarial exercises for the checkInvariants() audit hooks: each
 * test drives a structure into the corner its audit was written for —
 * aliased IMCT slots, MCT pruning at the exact window boundary, a
 * cache at exact capacity, a sieve promoted under aliasing, and a
 * sharded run audited end to end. The audits abort on violation, so
 * "the test ran to completion" is the assertion; the EXPECT_* calls
 * pin the behavior that makes each scenario adversarial.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "cache/block_cache.hpp"
#include "core/discrete.hpp"
#include "core/imct.hpp"
#include "core/mct.hpp"
#include "core/sievestore_c.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/sharded.hpp"
#include "trace/trace_reader.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using core::Imct;
using core::Mct;
using core::WindowSpec;
using trace::BlockId;
using util::TimeUs;

trace::BlockAccess
missAt(BlockId block, TimeUs t)
{
    trace::BlockAccess a;
    a.block = block;
    a.time = t;
    a.completion = t + 500;
    a.op = trace::Op::Read;
    return a;
}

// ---- WindowedCounter ----------------------------------------------

TEST(InvariantAudit, WindowedCounterAcrossBoundariesAndGaps)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    core::WindowedCounter c;
    c.checkInvariants(spec); // freshly-constructed counter audits

    // Fill every live subwindow, auditing as each one rolls over.
    for (uint64_t sub = 0; sub < 2 * spec.k; ++sub) {
        c.record(sub, spec);
        c.checkInvariants(spec);
    }
    // A gap of exactly k expires everything.
    const uint64_t last = 2 * spec.k - 1;
    EXPECT_TRUE(c.stale(last + spec.k, spec));
    EXPECT_EQ(c.total(last + spec.k, spec), 0u);
    // Out-of-order record (issue/completion interleaving) clamps to
    // the newest subwindow; the audit must still hold.
    c.record(last, spec);
    c.record(last - 2, spec);
    c.checkInvariants(spec);
}

// ---- IMCT under forced aliasing -----------------------------------

TEST(InvariantAudit, AliasedImctSlotsShareCounts)
{
    // 4 slots, 256 blocks: heavy aliasing by pigeonhole.
    const WindowSpec spec = WindowSpec::paperDefault();
    Imct imct(4, spec);
    imct.checkInvariants();

    const TimeUs t = util::makeTime(0, 1);
    for (BlockId b = 0; b < 256; ++b) {
        imct.recordMiss(b, t + b);
        imct.checkInvariants();
    }
    // Find an aliased pair and show the sieve's deliberate imprecision:
    // a block it never saw reports its slot-mates' misses.
    BlockId a = 0, b = 1;
    bool found = false;
    for (BlockId i = 0; i < 256 && !found; ++i)
        for (BlockId j = i + 1; j < 256 && !found; ++j)
            if (imct.slotOf(i) == imct.slotOf(j)) {
                a = i;
                b = j;
                found = true;
            }
    ASSERT_TRUE(found);
    EXPECT_EQ(imct.count(a, t + 256), imct.count(b, t + 256));
    EXPECT_GE(imct.count(a, t + 256), 2u);

    // Blocks far outside the table's index range still map in-bounds
    // (the audit probes this too, with fixed keys).
    imct.recordMiss(UINT64_MAX - 1, t);
    imct.recordMiss(UINT64_MAX / 3, t);
    imct.checkInvariants();
}

// ---- MCT pruning at the exact window boundary ---------------------

TEST(InvariantAudit, MctPruneAtWindowBoundary)
{
    const WindowSpec spec = WindowSpec::paperDefault();
    Mct mct(spec);
    mct.checkInvariants();

    const BlockId victim = 100, survivor = 200;
    const TimeUs t0 = util::makeTime(0, 1);
    mct.admit(victim, t0);
    mct.recordMiss(victim, t0);
    mct.checkInvariants();

    // The entry's window fully expires k subwindows after its last
    // touch. One microsecond before the boundary it must survive...
    const uint64_t last_sub = spec.subwindowOf(t0);
    const TimeUs boundary = (last_sub + spec.k) * spec.subwindow_us;
    EXPECT_EQ(mct.staleEntries(boundary - 1), 0u);
    mct.prune(boundary - 1);
    EXPECT_TRUE(mct.contains(victim));

    // ...and at exactly the boundary it must be reaped.
    mct.admit(survivor, boundary - 1); // freshly admitted: stays live
    EXPECT_EQ(mct.staleEntries(boundary), 1u);
    mct.prune(boundary);
    EXPECT_EQ(mct.staleEntries(boundary), 0u);
    EXPECT_FALSE(mct.contains(victim));
    EXPECT_TRUE(mct.contains(survivor));
    mct.checkInvariants();

    // Re-admission after reaping starts the count from zero — the
    // recency requirement the prune exists to enforce.
    mct.admit(victim, boundary);
    EXPECT_EQ(mct.count(victim, boundary), 0u);
    mct.checkInvariants();
}

// ---- cache at exact capacity --------------------------------------

TEST(InvariantAudit, CacheAtExactCapacity)
{
    cache::BlockCache cache(4);
    cache.checkInvariants();

    for (BlockId b = 0; b < 4; ++b) {
        EXPECT_FALSE(cache.insert(b).has_value());
        cache.checkInvariants();
    }
    EXPECT_TRUE(cache.full());
    EXPECT_EQ(cache.size(), 4u);

    // One past capacity: an eviction must keep size pinned.
    const auto evicted = cache.insert(99);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(cache.size(), 4u);
    cache.checkInvariants();

    // Erase + reinsert cycles the policy's mirror of the resident set.
    EXPECT_TRUE(cache.erase(99));
    EXPECT_FALSE(cache.erase(99));
    cache.checkInvariants();
    EXPECT_FALSE(cache.insert(7).has_value());
    cache.checkInvariants();

    // Batch replacement with overlap: the retained blocks cancel, and
    // an oversized new set is truncated to capacity.
    const auto res = cache.batchReplace({7, 50, 51, 52, 53, 54});
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(res.retained, 1u);
    EXPECT_EQ(res.allocated, 3u);
    cache.checkInvariants();
}

// ---- two-tier sieve promoted under aliasing -----------------------

TEST(InvariantAudit, SieveTwoTierAccountingUnderAliasing)
{
    core::SieveStoreCConfig cfg;
    cfg.imct_slots = 2; // maximal aliasing: every block shares 2 slots
    core::SieveStoreCPolicy sieve(cfg);
    sieve.checkInvariants();

    // Interleave 8 blocks; aliasing promotes them far sooner than
    // t1 + t2 individual misses — the pollution the MCT tier exists
    // to bound. The accounting audit must hold after every step.
    TimeUs t = util::makeTime(0, 2);
    uint64_t allocations = 0;
    for (int round = 0; round < 40; ++round)
        for (BlockId b = 0; b < 8; ++b) {
            if (sieve.onMiss(missAt(b, t)) ==
                core::AllocDecision::Allocate)
                ++allocations;
            t += 1000;
            sieve.checkInvariants();
        }
    EXPECT_GT(allocations, 0u);
    EXPECT_EQ(sieve.allocations(), allocations);

    // Jump a full day: the subwindow-boundary prune fires and the
    // prune-correctness invariant (no stale entries survive) is
    // audited.
    (void)sieve.onMiss(missAt(777, t + util::makeTime(1)));
    sieve.checkInvariants();
}

// ---- discrete selector --------------------------------------------

TEST(InvariantAudit, AdbaSelectorEpochCycle)
{
    core::AdbaSelector sel(3);
    sel.checkInvariants();
    TimeUs t = util::makeTime(0, 1);
    for (int i = 0; i < 5; ++i)
        sel.observe(missAt(42, t + uint64_t(i)));
    for (int i = 0; i < 2; ++i)
        sel.observe(missAt(43, t + uint64_t(i)));
    sel.checkInvariants();
    const uint64_t before = sel.metastateBytes();
    const auto chosen = sel.endOfEpoch();
    ASSERT_EQ(chosen.size(), 1u);
    EXPECT_EQ(chosen[0], 42u);
    sel.checkInvariants(); // counts reset for the next epoch
    // The flat counting table keeps its slot arena across the epoch
    // boundary (so replay never rehashes mid-trace); footprint is
    // capacity-bound and must not grow from merely clearing.
    EXPECT_LE(sel.metastateBytes(), before);
    // But the entries themselves are gone: a fresh epoch starts empty.
    EXPECT_TRUE(sel.endOfEpoch().empty());
}

// ---- appliance + sharded deployment, audited end to end -----------

std::vector<trace::Request>
smallTrace()
{
    std::vector<trace::Request> reqs;
    // Two days, two servers, a hot run and a cold scatter; enough to
    // cross day boundaries, promote blocks, and trigger flushes.
    for (uint64_t d = 0; d < 2; ++d)
        for (uint64_t i = 0; i < 40; ++i) {
            trace::Request r;
            r.time = util::makeTime(d, 1, i);
            r.offset_blocks = (i % 4) * 8;
            r.length_blocks = 8;
            r.latency_us = 800;
            r.volume = 0;
            r.server = 0;
            r.op = i % 3 == 0 ? trace::Op::Write : trace::Op::Read;
            reqs.push_back(r);

            r.time = util::makeTime(d, 2, i);
            r.offset_blocks = 1000 + i * 8; // cold: never promoted
            r.volume = 1;
            r.server = 1;
            r.op = trace::Op::Read;
            reqs.push_back(r);
        }
    std::sort(reqs.begin(), reqs.end(), trace::requestTimeLess);
    return reqs;
}

TEST(InvariantAudit, ApplianceAuditedThroughDriver)
{
    trace::VectorTrace view(smallTrace());
    sim::PolicyConfig pc;
    pc.kind = sim::PolicyKind::SieveStoreC;
    pc.sieve_c.imct_slots = 64;
    pc.sieve_c.t1 = 2;
    pc.sieve_c.t2 = 1;
    core::ApplianceConfig ac;
    ac.cache_blocks = 16; // small enough to evict
    auto app = sim::makeAppliance(pc, ac);

    sim::DriverOptions opts;
    opts.check_invariants = true; // audit at every day boundary
    sim::runTrace(view, *app, opts);
    app->checkInvariants();
    EXPECT_GT(app->totals().accesses, 0u);
    EXPECT_GT(app->totals().hits, 0u);
}

TEST(InvariantAudit, ShardedRunAuditedEndToEnd)
{
    // Force the sharded driver's internal audits on regardless of
    // build type.
    ::setenv("SIEVE_CHECK_INVARIANTS", "1", 1);

    trace::VectorTrace view(smallTrace());
    sim::ShardedConfig sc;
    sc.shards = 3;
    sc.policy.kind = sim::PolicyKind::SieveStoreC;
    sc.policy.sieve_c.imct_slots = 64;
    sc.policy.sieve_c.t1 = 2;
    sc.policy.sieve_c.t2 = 1;
    sc.node.cache_blocks = 16;
    auto result = sim::runSharded(view, sc);
    ::unsetenv("SIEVE_CHECK_INVARIANTS");

    result.checkInvariants();
    ASSERT_EQ(result.nodes.size(), 3u);
    const auto totals = result.totals();
    EXPECT_GT(totals.accesses, 0u);
    EXPECT_LE(totals.hits, totals.accesses);
    // Every access landed on exactly one shard.
    uint64_t per_node_sum = 0;
    for (const auto &node : result.nodes)
        per_node_sum += node->totals().accesses;
    EXPECT_EQ(per_node_sum, totals.accesses);
}

// ---- the audit itself must be able to fail ------------------------

TEST(InvariantAuditDeathTest, ViolatedContractAborts)
{
    // A WindowSpec with k beyond the counter's capacity is precisely
    // what checkInvariants() exists to reject.
    core::WindowedCounter c;
    WindowSpec bad;
    bad.k = core::kMaxSubwindows + 1;
    EXPECT_DEATH(c.checkInvariants(bad), "out of range");
}

} // namespace
