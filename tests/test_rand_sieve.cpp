/**
 * @file
 * Unit tests for the randomized continuous sieve and the unsieved
 * baseline policies.
 */

#include <gtest/gtest.h>

#include "core/rand_sieve.hpp"
#include "core/unsieved.hpp"

namespace {

using namespace sievestore::core;
using sievestore::trace::BlockAccess;
using sievestore::trace::Op;

BlockAccess
access(Op op)
{
    BlockAccess a;
    a.block = 42;
    a.op = op;
    return a;
}

TEST(Aod, AllocatesEveryMiss)
{
    AodPolicy aod;
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(aod.onMiss(access(Op::Read)),
                  AllocDecision::Allocate);
        EXPECT_EQ(aod.onMiss(access(Op::Write)),
                  AllocDecision::Allocate);
    }
    EXPECT_STREQ(aod.name(), "AOD");
    EXPECT_EQ(aod.metastateBytes(), 0u);
}

TEST(Wmna, AllocatesOnlyReadMisses)
{
    WmnaPolicy wmna;
    EXPECT_EQ(wmna.onMiss(access(Op::Read)), AllocDecision::Allocate);
    EXPECT_EQ(wmna.onMiss(access(Op::Write)), AllocDecision::Bypass);
    EXPECT_STREQ(wmna.name(), "WMNA");
}

TEST(RandSieveC, AllocatesApproximatelyTheConfiguredFraction)
{
    RandSieveCPolicy sieve(0.01, 5);
    int allocated = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (sieve.onMiss(access(Op::Read)) == AllocDecision::Allocate)
            ++allocated;
    EXPECT_NEAR(static_cast<double>(allocated) / n, 0.01, 0.002);
}

TEST(RandSieveC, IndependentOfOpAndBlock)
{
    // The lottery ignores everything about the access: equal rates for
    // reads and writes.
    RandSieveCPolicy sieve(0.2, 6);
    int reads = 0, writes = 0;
    for (int i = 0; i < 20000; ++i) {
        if (sieve.onMiss(access(Op::Read)) == AllocDecision::Allocate)
            ++reads;
        if (sieve.onMiss(access(Op::Write)) == AllocDecision::Allocate)
            ++writes;
    }
    EXPECT_NEAR(static_cast<double>(reads) / 20000, 0.2, 0.02);
    EXPECT_NEAR(static_cast<double>(writes) / 20000, 0.2, 0.02);
}

TEST(RandSieveC, DeterministicPerSeed)
{
    RandSieveCPolicy a(0.5, 9), b(0.5, 9);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.onMiss(access(Op::Read)),
                  b.onMiss(access(Op::Read)));
}

TEST(RandSieveC, ExtremeProbabilities)
{
    RandSieveCPolicy never(0.0, 1);
    RandSieveCPolicy always(1.0, 1);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(never.onMiss(access(Op::Read)),
                  AllocDecision::Bypass);
        EXPECT_EQ(always.onMiss(access(Op::Read)),
                  AllocDecision::Allocate);
    }
}

} // namespace
