/**
 * @file
 * Unit and property tests for the on-disk map-reduce access log
 * (SieveStore-D's counting substrate, Section 3.2).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>
#include <unordered_map>

#include "analysis/access_log.hpp"
#include "util/random.hpp"

namespace {

using namespace sievestore::analysis;
using sievestore::trace::BlockId;
using sievestore::util::Rng;

class AccessLogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("accesslog_" + std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name());
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    std::filesystem::path dir;
};

TEST_F(AccessLogTest, CountsMatchInMemoryReference)
{
    AccessLogConfig cfg;
    cfg.partitions = 4;
    cfg.flush_threshold = 64; // force frequent disk activity
    cfg.compact_threshold_bytes = 1024;
    AccessLog log(dir.string(), cfg);

    Rng rng(1);
    std::unordered_map<BlockId, uint64_t> reference;
    for (int i = 0; i < 20000; ++i) {
        const BlockId b = rng.nextBelow(500);
        log.log(b);
        ++reference[b];
    }
    EXPECT_EQ(log.logged(), 20000u);

    const auto reduced = log.reduce(1);
    std::unordered_map<BlockId, uint64_t> got;
    for (const auto &bc : reduced)
        got[bc.block] = bc.count;
    EXPECT_EQ(got.size(), reference.size());
    for (const auto &kv : reference)
        EXPECT_EQ(got[kv.first], kv.second) << "block " << kv.first;
}

TEST_F(AccessLogTest, ThresholdFiltersAndSortsDescending)
{
    AccessLog log(dir.string());
    for (int rep = 0; rep < 12; ++rep)
        log.log(100);
    for (int rep = 0; rep < 5; ++rep)
        log.log(200);
    log.log(300);

    const auto selected = log.reduce(5);
    ASSERT_EQ(selected.size(), 2u);
    EXPECT_EQ(selected[0].block, 100u);
    EXPECT_EQ(selected[0].count, 12u);
    EXPECT_EQ(selected[1].block, 200u);
    EXPECT_EQ(selected[1].count, 5u);
}

TEST_F(AccessLogTest, IncrementalCompactionPreservesCounts)
{
    AccessLogConfig cfg;
    cfg.partitions = 2;
    cfg.flush_threshold = 16;
    cfg.compact_threshold_bytes = 256; // compacts every ~32 records
    AccessLog log(dir.string(), cfg);
    for (int round = 0; round < 50; ++round) {
        for (BlockId b = 0; b < 10; ++b)
            log.log(b);
        log.compactIfNeeded();
    }
    log.compactAll();
    const auto reduced = log.reduce(1);
    ASSERT_EQ(reduced.size(), 10u);
    for (const auto &bc : reduced)
        EXPECT_EQ(bc.count, 50u);
}

TEST_F(AccessLogTest, BeginEpochResets)
{
    AccessLog log(dir.string());
    for (int i = 0; i < 100; ++i)
        log.log(7);
    log.beginEpoch();
    EXPECT_EQ(log.logged(), 0u);
    EXPECT_TRUE(log.reduce(1).empty());
    // And the log is reusable for the next epoch.
    log.log(9);
    const auto reduced = log.reduce(1);
    ASSERT_EQ(reduced.size(), 1u);
    EXPECT_EQ(reduced[0].block, 9u);
}

TEST_F(AccessLogTest, SinglePartitionWorks)
{
    AccessLogConfig cfg;
    cfg.partitions = 1;
    AccessLog log(dir.string(), cfg);
    for (uint64_t i = 0; i < 1000; ++i)
        log.log(i % 3);
    const auto reduced = log.reduce(300);
    ASSERT_EQ(reduced.size(), 3u);
}

TEST_F(AccessLogTest, DiskBytesReflectSpill)
{
    AccessLogConfig cfg;
    cfg.partitions = 2;
    cfg.flush_threshold = 8;
    AccessLog log(dir.string(), cfg);
    for (uint64_t i = 0; i < 1000; ++i)
        log.log(i);
    log.compactAll();
    EXPECT_GE(log.diskBytes(), 1000u * 8u);
}

TEST_F(AccessLogTest, EmptyEpochReducesEmpty)
{
    AccessLog log(dir.string());
    EXPECT_TRUE(log.reduce(1).empty());
}

/** Property: disk-backed counts equal in-memory counts for any stream. */
class AccessLogProperty : public AccessLogTest,
                          public ::testing::WithParamInterface<uint64_t>
{
};

TEST_P(AccessLogProperty, RandomStreamsMatchReference)
{
    AccessLogConfig cfg;
    cfg.partitions = 1 + GetParam() % 7;
    cfg.flush_threshold = 32;
    cfg.compact_threshold_bytes = 512;
    AccessLog log(dir.string(), cfg);

    Rng rng(GetParam());
    std::unordered_map<BlockId, uint64_t> reference;
    const int n = 2000 + static_cast<int>(rng.nextBelow(3000));
    for (int i = 0; i < n; ++i) {
        // Heavy-tailed stream: some blocks repeat a lot.
        const BlockId b = rng.nextBool(0.3) ? rng.nextBelow(5)
                                            : rng.nextBelow(2000);
        log.log(b);
        ++reference[b];
    }
    for (uint64_t threshold : {1ULL, 3ULL, 10ULL}) {
        const auto reduced = log.reduce(threshold);
        size_t expect = 0;
        for (const auto &kv : reference)
            if (kv.second >= threshold)
                ++expect;
        ASSERT_EQ(reduced.size(), expect) << "threshold " << threshold;
        for (const auto &bc : reduced)
            ASSERT_EQ(bc.count, reference[bc.block]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccessLogProperty,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
