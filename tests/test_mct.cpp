/**
 * @file
 * Unit tests for the perfect Miss Count Table (second sieve tier).
 */

#include <gtest/gtest.h>

#include "core/mct.hpp"

namespace {

using namespace sievestore::core;
using sievestore::util::TimeUs;

const WindowSpec kSpec = WindowSpec::paperDefault();

TimeUs
sub(uint64_t s)
{
    return s * kSpec.subwindow_us;
}

TEST(Mct, TracksOnlyAdmittedBlocks)
{
    Mct mct(kSpec);
    EXPECT_FALSE(mct.contains(1));
    EXPECT_EQ(mct.count(1, 0), 0u);
    mct.admit(1, 0);
    EXPECT_TRUE(mct.contains(1));
    // Admission starts at zero: "an additional minimum number of
    // misses" is required at this tier.
    EXPECT_EQ(mct.count(1, 0), 0u);
}

TEST(Mct, CountsAreExactPerBlock)
{
    Mct mct(kSpec);
    mct.admit(1, 0);
    mct.admit(2, 0);
    EXPECT_EQ(mct.recordMiss(1, 0), 1u);
    EXPECT_EQ(mct.recordMiss(1, 0), 2u);
    EXPECT_EQ(mct.recordMiss(2, 0), 1u); // no aliasing, ever
    EXPECT_EQ(mct.count(1, 0), 2u);
}

TEST(Mct, AdmitIsIdempotent)
{
    Mct mct(kSpec);
    mct.admit(7, 0);
    mct.recordMiss(7, 0);
    mct.admit(7, 0); // must not reset the count
    EXPECT_EQ(mct.count(7, 0), 1u);
}

TEST(Mct, RemoveStopsTracking)
{
    Mct mct(kSpec);
    mct.admit(3, 0);
    mct.recordMiss(3, 0);
    mct.remove(3);
    EXPECT_FALSE(mct.contains(3));
    EXPECT_EQ(mct.size(), 0u);
}

TEST(Mct, RecordOnUntrackedPanics)
{
    Mct mct(kSpec);
    EXPECT_DEATH(mct.recordMiss(9, 0), "untracked");
}

TEST(Mct, WindowExpiry)
{
    Mct mct(kSpec);
    mct.admit(5, sub(0));
    mct.recordMiss(5, sub(0));
    mct.recordMiss(5, sub(1));
    EXPECT_EQ(mct.count(5, sub(3)), 2u);
    EXPECT_EQ(mct.count(5, sub(4)), 1u);
    EXPECT_EQ(mct.count(5, sub(6)), 0u);
}

TEST(Mct, PruneDropsStaleKeepsFresh)
{
    Mct mct(kSpec);
    mct.admit(1, sub(0));
    mct.admit(2, sub(0));
    mct.recordMiss(1, sub(0));
    mct.recordMiss(2, sub(9));
    mct.prune(sub(10));
    // Block 1's last update (sub 0) is >= k behind: stale.
    EXPECT_FALSE(mct.contains(1));
    EXPECT_TRUE(mct.contains(2));
    EXPECT_EQ(mct.size(), 1u);
}

TEST(Mct, MemoryGrowsWithEntries)
{
    Mct mct(kSpec);
    const uint64_t empty = mct.memoryBytes();
    for (uint64_t b = 0; b < 100; ++b)
        mct.admit(b, 0);
    EXPECT_GT(mct.memoryBytes(), empty);
    EXPECT_EQ(mct.size(), 100u);
    mct.clear();
    EXPECT_EQ(mct.size(), 0u);
}

} // namespace
