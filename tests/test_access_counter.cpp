/**
 * @file
 * Unit tests for in-memory access counting.
 */

#include <gtest/gtest.h>

#include "analysis/access_counter.hpp"

namespace {

using namespace sievestore::analysis;
using namespace sievestore::trace;

Request
makeRequest(uint64_t offset, uint32_t len)
{
    Request r;
    r.volume = 1;
    r.offset_blocks = offset;
    r.length_blocks = len;
    return r;
}

TEST(AccessCounter, CountsPerBlock)
{
    std::vector<Request> reqs = {makeRequest(0, 4), makeRequest(2, 4)};
    const BlockCounts counts = countBlockAccesses(reqs);
    EXPECT_EQ(counts.size(), 6u);
    EXPECT_EQ(counts.at(makeBlockId(1, 0)), 1u);
    EXPECT_EQ(counts.at(makeBlockId(1, 2)), 2u);
    EXPECT_EQ(counts.at(makeBlockId(1, 3)), 2u);
    EXPECT_EQ(counts.at(makeBlockId(1, 5)), 1u);
    EXPECT_EQ(totalAccesses(counts), 8u);
}

TEST(AccessCounter, SortedByCountDescendingWithTieBreak)
{
    BlockCounts counts;
    counts[makeBlockId(0, 5)] = 3;
    counts[makeBlockId(0, 1)] = 7;
    counts[makeBlockId(0, 9)] = 3;
    const auto ranked = sortedByCount(counts);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].block, makeBlockId(0, 1));
    EXPECT_EQ(ranked[0].count, 7u);
    // Equal counts break ties by ascending BlockId for determinism.
    EXPECT_EQ(ranked[1].block, makeBlockId(0, 5));
    EXPECT_EQ(ranked[2].block, makeBlockId(0, 9));
}

TEST(AccessCounter, EmptyInput)
{
    const BlockCounts counts = countBlockAccesses({});
    EXPECT_TRUE(counts.empty());
    EXPECT_EQ(totalAccesses(counts), 0u);
    EXPECT_TRUE(sortedByCount(counts).empty());
}

} // namespace
