/**
 * @file
 * Unit tests for simulated-time helpers.
 */

#include <gtest/gtest.h>

#include "util/sim_time.hpp"

namespace {

using namespace sievestore::util;

TEST(SimTime, Constants)
{
    EXPECT_EQ(kUsPerSecond, 1000000u);
    EXPECT_EQ(kUsPerMinute, 60u * 1000000u);
    EXPECT_EQ(kUsPerHour, 3600u * 1000000u);
    EXPECT_EQ(kUsPerDay, 86400ULL * 1000000u);
}

TEST(SimTime, MakeTimeComposes)
{
    EXPECT_EQ(makeTime(0), 0u);
    EXPECT_EQ(makeTime(1), kUsPerDay);
    EXPECT_EQ(makeTime(1, 2, 3, 4, 5),
              kUsPerDay + 2 * kUsPerHour + 3 * kUsPerMinute +
                  4 * kUsPerSecond + 5);
}

TEST(SimTime, DayBoundaries)
{
    EXPECT_EQ(dayOf(0), 0u);
    EXPECT_EQ(dayOf(kUsPerDay - 1), 0u);
    EXPECT_EQ(dayOf(kUsPerDay), 1u);
    EXPECT_EQ(dayOf(makeTime(7, 23, 59, 59)), 7u);
}

TEST(SimTime, MinuteAndHourIndices)
{
    EXPECT_EQ(minuteOf(makeTime(0, 0, 59, 59)), 59u);
    EXPECT_EQ(minuteOf(makeTime(0, 1)), 60u);
    EXPECT_EQ(hourOf(makeTime(2, 5)), 2u * 24 + 5);
    // Minute index across the full week used by Figures 8/9.
    EXPECT_EQ(minuteOf(makeTime(7)), 7u * 24 * 60);
}

TEST(SimTime, ToSeconds)
{
    EXPECT_DOUBLE_EQ(toSeconds(kUsPerSecond), 1.0);
    EXPECT_DOUBLE_EQ(toSeconds(kUsPerMinute), 60.0);
    EXPECT_DOUBLE_EQ(toSeconds(500000), 0.5);
}

} // namespace
