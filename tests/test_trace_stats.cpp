/**
 * @file
 * Unit tests for whole-trace summary statistics.
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore::trace;
using sievestore::util::makeTime;

Request
makeRequest(uint64_t time, uint64_t offset, uint32_t len, Op op)
{
    Request r;
    r.time = time;
    r.volume = 0;
    r.server = 0;
    r.op = op;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = 100;
    return r;
}

TEST(TraceStats, CountsAndUniquePerDay)
{
    std::vector<Request> reqs = {
        makeRequest(makeTime(0, 1), 0, 8, Op::Read),
        makeRequest(makeTime(0, 2), 0, 8, Op::Write), // same blocks
        makeRequest(makeTime(0, 3), 8, 4, Op::Read),
        makeRequest(makeTime(1, 1), 0, 8, Op::Read), // next day
    };
    VectorTrace trace(std::move(reqs));
    const TraceStats stats = summarizeTrace(trace);

    ASSERT_EQ(stats.days.size(), 2u);
    EXPECT_EQ(stats.days[0].requests, 3u);
    EXPECT_EQ(stats.days[0].block_accesses, 20u);
    EXPECT_EQ(stats.days[0].read_accesses, 12u);
    EXPECT_EQ(stats.days[0].unique_blocks, 12u);
    EXPECT_EQ(stats.days[1].requests, 1u);
    // Unique counting resets each calendar day.
    EXPECT_EQ(stats.days[1].unique_blocks, 8u);
    EXPECT_EQ(stats.total_requests, 4u);
    EXPECT_EQ(stats.total_block_accesses, 28u);
    EXPECT_EQ(stats.total_bytes, 28u * 512u);
}

TEST(TraceStats, ReadFraction)
{
    std::vector<Request> reqs = {
        makeRequest(1, 0, 3, Op::Read),
        makeRequest(2, 10, 1, Op::Write),
    };
    VectorTrace trace(std::move(reqs));
    const TraceStats stats = summarizeTrace(trace);
    EXPECT_DOUBLE_EQ(stats.days[0].readFraction(), 0.75);
}

TEST(TraceStats, AlignmentDetection)
{
    std::vector<Request> reqs = {
        makeRequest(1, 0, 8, Op::Read),   // aligned 4 KB
        makeRequest(2, 16, 16, Op::Read), // aligned 8 KB
        makeRequest(3, 3, 8, Op::Read),   // misaligned offset
        makeRequest(4, 8, 5, Op::Read),   // misaligned length
    };
    VectorTrace trace(std::move(reqs));
    const TraceStats stats = summarizeTrace(trace);
    EXPECT_EQ(stats.days[0].aligned_requests, 2u);
}

TEST(TraceStats, AvgDailyUniqueBytesSkipsEmptyDays)
{
    std::vector<Request> reqs = {
        makeRequest(makeTime(0, 1), 0, 8, Op::Read),
        makeRequest(makeTime(2, 1), 0, 16, Op::Read), // day 1 empty
    };
    VectorTrace trace(std::move(reqs));
    const TraceStats stats = summarizeTrace(trace);
    ASSERT_EQ(stats.days.size(), 3u);
    EXPECT_EQ(stats.days[1].block_accesses, 0u);
    EXPECT_DOUBLE_EQ(stats.avgDailyUniqueBytes(),
                     (8.0 * 512 + 16.0 * 512) / 2.0);
}

TEST(TraceStats, EmptyTrace)
{
    VectorTrace trace(std::vector<Request>{});
    const TraceStats stats = summarizeTrace(trace);
    EXPECT_TRUE(stats.days.empty());
    EXPECT_EQ(stats.total_requests, 0u);
    EXPECT_DOUBLE_EQ(stats.avgDailyUniqueBytes(), 0.0);
}

} // namespace
