/**
 * @file
 * Unit tests for the sharded multi-node deployment (Section 7
 * "scaling").
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/driver.hpp"
#include "sim/sharded.hpp"
#include "storage/analytic_backend.hpp"
#include "trace/synthetic.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using namespace sievestore::sim;
using namespace sievestore::trace;
using sievestore::util::FatalError;
using sievestore::util::makeTime;

Request
makeRequest(uint64_t time, uint64_t offset, uint32_t len,
            Op op = Op::Read)
{
    Request r;
    r.time = time;
    r.volume = 0;
    r.server = 0;
    r.op = op;
    r.offset_blocks = offset;
    r.length_blocks = len;
    r.latency_us = 1000;
    return r;
}

ShardedConfig
config(size_t shards)
{
    ShardedConfig cfg;
    cfg.shards = shards;
    cfg.policy.kind = PolicyKind::AOD;
    cfg.node.cache_blocks = 1024;
    cfg.node.track_occupancy = false;
    return cfg;
}

TEST(ShardOf, StableAndPageGranular)
{
    // Blocks of one 4 KB page always land on the same shard.
    for (uint64_t page = 0; page < 100; ++page) {
        const size_t shard =
            shardOf(makeBlockId(3, page * 8), 4, 0);
        for (uint64_t b = 1; b < 8; ++b)
            EXPECT_EQ(shardOf(makeBlockId(3, page * 8 + b), 4, 0),
                      shard);
    }
}

TEST(ShardOf, PropertyPageNeverStraddlesNodes)
{
    // For random volumes, block numbers, shard counts and hash seeds:
    // all 8 blocks of a 4 KB page map to one shard (the property the
    // sharded SSD I/O accounting depends on).
    util::Rng rng(0x9a6eULL);
    for (int trial = 0; trial < 20000; ++trial) {
        const VolumeId vol =
            static_cast<VolumeId>(rng.nextBelow(1 << 16));
        const uint64_t page = rng.nextBelow(1ULL << 40);
        const size_t shards = 1 + rng.nextBelow(64);
        const uint64_t seed = rng.next();
        const size_t shard =
            shardOf(makeBlockId(vol, page * 8), shards, seed);
        ASSERT_LT(shard, shards);
        for (uint64_t b = 1; b < 8; ++b)
            ASSERT_EQ(shardOf(makeBlockId(vol, page * 8 + b),
                              shards, seed),
                      shard)
                << "vol " << vol << " page " << page << " shards "
                << shards << " seed " << seed;
    }
}

TEST(ShardOf, PropertyLoadImbalanceBoundedOnUniformSample)
{
    // Documented bound: hashing a uniform 100k-page sample across
    // 2..16 shards keeps max/mean page load under 1.05 for every
    // seed tried. (The bench-scale request imbalance in
    // bench_sec7_scaling_tuning stays within a few percent of 1.0;
    // this pins the hash-quality half of that claim.)
    for (const uint64_t seed : {0ULL, 1ULL, 0xfeedULL}) {
        for (const size_t shards : {size_t(2), size_t(4), size_t(7),
                                    size_t(16)}) {
            std::vector<uint64_t> counts(shards, 0);
            const uint64_t pages = 100000;
            for (uint64_t page = 0; page < pages; ++page)
                ++counts[shardOf(makeBlockId(2, page * 8), shards,
                                 seed)];
            uint64_t worst = 0;
            for (const uint64_t c : counts)
                worst = std::max(worst, c);
            const double mean = static_cast<double>(pages) /
                                static_cast<double>(shards);
            EXPECT_LT(static_cast<double>(worst) / mean, 1.05)
                << shards << " shards, seed " << seed;
        }
    }
}

TEST(ShardOf, SpreadsPagesEvenly)
{
    std::vector<int> counts(4, 0);
    for (uint64_t page = 0; page < 40000; ++page)
        ++counts[shardOf(makeBlockId(1, page * 8), 4, 0)];
    for (int c : counts) {
        EXPECT_GT(c, 9000);
        EXPECT_LT(c, 11000);
    }
}

TEST(Sharded, AccessesArePartitionedExactly)
{
    std::vector<Request> reqs = {
        makeRequest(1000, 0, 64),  // 8 pages
        makeRequest(2000, 64, 32), // 4 pages
    };
    VectorTrace trace(std::move(reqs));
    const auto result = runSharded(trace, config(3));
    ASSERT_EQ(result.nodes.size(), 3u);
    EXPECT_EQ(result.totals().accesses, 96u);
}

TEST(Sharded, SingleShardMatchesUnshardedAppliance)
{
    SyntheticConfig scfg;
    scfg.scale = 1.0 / 65536.0;
    const auto ensemble = EnsembleConfig::paperEnsemble();
    auto gen = SyntheticEnsembleGenerator::paper(ensemble, scfg);

    ShardedConfig cfg = config(1);
    cfg.node.cache_blocks = 4096;
    const auto sharded = runSharded(gen, cfg);
    gen.reset();

    PolicyConfig pc;
    pc.kind = PolicyKind::AOD;
    core::ApplianceConfig ac;
    ac.cache_blocks = 4096;
    ac.track_occupancy = false;
    auto plain = makeAppliance(pc, ac);
    runTrace(gen, *plain);
    gen.reset();

    // Identical accesses; hits may differ microscopically because
    // request splitting (even into one shard the request stays whole)
    // preserves everything — so demand exact equality.
    EXPECT_EQ(sharded.totals().accesses, plain->totals().accesses);
    EXPECT_EQ(sharded.totals().hits, plain->totals().hits);
}

TEST(Sharded, HitRatioStableAcrossShardCounts)
{
    // The ensemble-sharing property: hash-partitioning the block space
    // splits the hot set evenly, so N shards of capacity C/N capture
    // roughly what one node of capacity C captures.
    SyntheticConfig scfg;
    scfg.scale = 1.0 / 32768.0;
    const auto ensemble = EnsembleConfig::paperEnsemble();
    auto gen = SyntheticEnsembleGenerator::paper(ensemble, scfg);

    const uint64_t total_blocks = 2048;
    double base_ratio = 0.0;
    for (size_t shards : {size_t(1), size_t(2), size_t(4)}) {
        ShardedConfig cfg = config(shards);
        cfg.policy.kind = PolicyKind::SieveStoreC;
        cfg.policy.sieve_c.imct_slots = 1 << 14;
        cfg.node.cache_blocks = total_blocks / shards;
        gen.reset();
        const auto result = runSharded(gen, cfg);
        const double ratio = result.totals().hitRatio();
        if (shards == 1)
            base_ratio = ratio;
        else
            EXPECT_NEAR(ratio, base_ratio, 0.05)
                << shards << " shards";
    }
    gen.reset();
}

TEST(Sharded, LoadSpreadsAcrossNodes)
{
    SyntheticConfig scfg;
    scfg.scale = 1.0 / 65536.0;
    const auto ensemble = EnsembleConfig::paperEnsemble();
    auto gen = SyntheticEnsembleGenerator::paper(ensemble, scfg);
    const auto result = runSharded(gen, config(4));
    // At this tiny scale the hot set is a few dozen pages, so a single
    // giant page skews its shard; just require that no node is idle
    // and the worst node stays within 2x of the mean (at bench scales
    // the imbalance is a few percent).
    EXPECT_LT(result.loadImbalance(), 2.0);
    for (const auto &node : result.nodes)
        EXPECT_GT(node->totals().accesses, 0u);
}

TEST(Sharded, RejectsBadConfig)
{
    VectorTrace trace(std::vector<Request>{});
    auto zero = config(0);
    EXPECT_THROW(runSharded(trace, zero), FatalError);
    auto oracle = config(2);
    oracle.policy.kind = PolicyKind::Ideal;
    EXPECT_THROW(runSharded(trace, oracle), FatalError);
}

TEST(Sharded, MeasuredStorageColumnsSumExactly)
{
    // Two-day trace across 3 nodes: the ensemble totals() fold must
    // equal the field-wise sum of per-node totals for every measured
    // storage column, and under the default AnalyticBackend each
    // node's measured latency is exactly ios * model service time.
    std::vector<Request> reqs = {
        makeRequest(makeTime(0, 1), 0, 64),
        makeRequest(makeTime(0, 2), 64, 32, Op::Write),
        makeRequest(makeTime(1, 1), 0, 64),
        makeRequest(makeTime(1, 2), 128, 32),
    };
    VectorTrace trace(std::move(reqs));
    const auto cfg = config(3);
    const auto result = runSharded(trace, cfg);
    const auto total = result.totals();
    EXPECT_GT(total.storage_read_ios + total.storage_write_ios, 0u);
    uint64_t read_ios = 0, write_ios = 0, read_errs = 0,
             write_errs = 0, read_ns = 0, write_ns = 0;
    const uint32_t model_read_ns =
        storage::modelServiceNs(cfg.node.ssd.readService());
    const uint32_t model_write_ns =
        storage::modelServiceNs(cfg.node.ssd.writeService());
    for (const auto &node : result.nodes) {
        const auto t = node->totals();
        read_ios += t.storage_read_ios;
        write_ios += t.storage_write_ios;
        read_errs += t.storage_read_errors;
        write_errs += t.storage_write_errors;
        read_ns += t.storage_read_ns;
        write_ns += t.storage_write_ns;
        EXPECT_EQ(t.storage_read_ns,
                  t.storage_read_ios * model_read_ns);
        EXPECT_EQ(t.storage_write_ns,
                  t.storage_write_ios * model_write_ns);
        // Per-node day barriers do not double-count either.
        core::DailyReport sum;
        for (const auto &day : node->daily())
            sum.add(day);
        EXPECT_EQ(sum.storage_read_ios, t.storage_read_ios);
        EXPECT_EQ(sum.storage_write_ns, t.storage_write_ns);
    }
    EXPECT_EQ(total.storage_read_ios, read_ios);
    EXPECT_EQ(total.storage_write_ios, write_ios);
    EXPECT_EQ(total.storage_read_errors, read_errs);
    EXPECT_EQ(total.storage_write_errors, write_errs);
    EXPECT_EQ(total.storage_read_ns, read_ns);
    EXPECT_EQ(total.storage_write_ns, write_ns);
}

} // namespace
