/**
 * @file
 * Batched request-path pipeline tests (sim/batch.hpp and the four
 * drivers routed through it). The pipeline's contract is that the
 * batch size is a pure performance knob: for ANY batch size, every
 * driver must produce reports bit-identical to the per-request
 * (batch=1) replay, across policies, shard counts, day gaps, and
 * day-boundary-straddling decode batches.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/appliance.hpp"
#include "sim/batch.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/per_server.hpp"
#include "sim/sharded.hpp"
#include "trace/trace_reader.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace sievestore;
using core::DailyReport;
using sievestore::util::FatalError;
using sievestore::util::Rng;

void
expectReportEq(const DailyReport &a, const DailyReport &b,
               const std::string &where)
{
    EXPECT_EQ(a.accesses, b.accesses) << where;
    EXPECT_EQ(a.read_accesses, b.read_accesses) << where;
    EXPECT_EQ(a.hits, b.hits) << where;
    EXPECT_EQ(a.read_hits, b.read_hits) << where;
    EXPECT_EQ(a.write_hits, b.write_hits) << where;
    EXPECT_EQ(a.allocation_write_blocks, b.allocation_write_blocks)
        << where;
    EXPECT_EQ(a.batch_moved_blocks, b.batch_moved_blocks) << where;
    EXPECT_EQ(a.ssd_read_ios, b.ssd_read_ios) << where;
    EXPECT_EQ(a.ssd_write_ios, b.ssd_write_ios) << where;
    EXPECT_EQ(a.ssd_alloc_ios, b.ssd_alloc_ios) << where;
}

void
expectDailyEq(const std::vector<DailyReport> &a,
              const std::vector<DailyReport> &b, const std::string &where)
{
    ASSERT_EQ(a.size(), b.size()) << where;
    for (size_t d = 0; d < a.size(); ++d)
        expectReportEq(a[d], b[d], where + " day " + std::to_string(d));
}

std::vector<trace::Request>
randomTrace(uint64_t seed, size_t n, uint64_t max_gap_us = 90 * 1000000)
{
    Rng rng(seed);
    std::vector<trace::Request> reqs;
    uint64_t t = 0;
    for (size_t i = 0; i < n; ++i) {
        trace::Request r;
        t += rng.nextBelow(max_gap_us);
        r.time = t;
        r.volume = static_cast<trace::VolumeId>(rng.nextBelow(4));
        r.server = static_cast<trace::ServerId>(rng.nextBelow(3));
        r.op = rng.nextBool(0.7) ? trace::Op::Read : trace::Op::Write;
        r.offset_blocks = rng.nextBool(0.5)
                              ? rng.nextBelow(64) * 8
                              : rng.nextBelow(1 << 18);
        r.length_blocks = 1 + static_cast<uint32_t>(rng.nextBelow(24));
        r.latency_us = static_cast<uint32_t>(rng.nextBelow(3000000));
        reqs.push_back(r);
    }
    return reqs;
}

sim::PolicyConfig
policyFor(sim::PolicyKind kind)
{
    sim::PolicyConfig policy;
    policy.kind = kind;
    policy.adba_threshold = 3;
    policy.sieve_c.imct_slots = 1 << 12;
    policy.rand_fraction = 0.05;
    return policy;
}

// ---- runTrace -----------------------------------------------------

TEST(BatchPipeline, RunTraceInvariantAcrossBatchSizesAndPolicies)
{
    const auto reqs = randomTrace(11, 3000);
    const sim::PolicyKind policies[] = {
        sim::PolicyKind::AOD, sim::PolicyKind::WMNA,
        sim::PolicyKind::SieveStoreC, sim::PolicyKind::SieveStoreD,
        sim::PolicyKind::RandSieveC};

    for (const sim::PolicyKind pk : policies) {
        core::ApplianceConfig ac;
        ac.cache_blocks = 512;
        const sim::PolicyConfig policy = policyFor(pk);

        sim::DriverOptions golden_opts;
        golden_opts.batch = 1; // the historical per-request path
        auto golden = sim::makeAppliance(policy, ac);
        trace::VectorTrace golden_trace(reqs);
        sim::runTrace(golden_trace, *golden, golden_opts);

        for (const size_t batch : {size_t(8), size_t(64), size_t(256)}) {
            sim::DriverOptions opts;
            opts.batch = batch;
            auto app = sim::makeAppliance(policy, ac);
            trace::VectorTrace reader(reqs);
            sim::runTrace(reader, *app, opts);
            expectDailyEq(golden->daily(), app->daily(),
                          std::string(sim::policyKindName(pk)) +
                              " batch=" + std::to_string(batch));
        }
    }
}

TEST(BatchPipeline, RunTraceHandlesMultiDayGaps)
{
    // A server idle across day boundaries still advances its epochs:
    // requests on days 0 and 3 only, so the pipeline must fire
    // finishDay for the empty days 1 and 2 exactly like batch=1.
    std::vector<trace::Request> reqs;
    for (const uint64_t day : {uint64_t(0), uint64_t(3)}) {
        for (int i = 0; i < 50; ++i) {
            trace::Request r;
            r.time = day * util::kUsPerDay + uint64_t(i) * 1000;
            r.offset_blocks = uint64_t(i % 16) * 8;
            r.length_blocks = 8;
            reqs.push_back(r);
        }
    }

    core::ApplianceConfig ac;
    ac.cache_blocks = 64;
    const auto policy = policyFor(sim::PolicyKind::SieveStoreD);

    sim::DriverOptions golden_opts;
    golden_opts.batch = 1;
    auto golden = sim::makeAppliance(policy, ac);
    trace::VectorTrace golden_trace(reqs);
    sim::runTrace(golden_trace, *golden, golden_opts);

    sim::DriverOptions opts;
    opts.batch = 64;
    auto app = sim::makeAppliance(policy, ac);
    trace::VectorTrace reader(reqs);
    sim::runTrace(reader, *app, opts);

    ASSERT_EQ(golden->daily().size(), 4u);
    expectDailyEq(golden->daily(), app->daily(), "multi-day gap");
}

TEST(BatchPipeline, EmptyTraceIsANoOp)
{
    core::ApplianceConfig ac;
    ac.cache_blocks = 64;
    auto app = sim::makeAppliance(policyFor(sim::PolicyKind::AOD), ac);
    trace::VectorTrace reader(std::vector<trace::Request>{});
    sim::runTrace(reader, *app);
    EXPECT_TRUE(app->daily().empty());
}

TEST(BatchPipeline, ZeroBatchIsFatal)
{
    core::ApplianceConfig ac;
    ac.cache_blocks = 64;
    auto app = sim::makeAppliance(policyFor(sim::PolicyKind::AOD), ac);
    trace::VectorTrace reader(randomTrace(1, 10));
    sim::DriverOptions opts;
    opts.batch = 0;
    EXPECT_THROW(sim::runTrace(reader, *app, opts), FatalError);

    sim::ShardedConfig sc;
    sc.shards = 2;
    sc.policy = policyFor(sim::PolicyKind::AOD);
    sc.node.cache_blocks = 64;
    sc.batch = 0;
    trace::VectorTrace sharded_reader(randomTrace(2, 10));
    EXPECT_THROW(sim::runSharded(sharded_reader, sc), FatalError);
    trace::VectorTrace parallel_reader(randomTrace(3, 10));
    EXPECT_THROW(sim::runShardedParallel(parallel_reader, sc),
                 FatalError);
}

/** A reader that emits a day regression (VectorTrace rejects those at
 * construction, so the facade's own check needs a raw reader). */
class DisorderedReader : public trace::TraceReader
{
  public:
    bool
    next(trace::Request &out) override
    {
        if (pos_ >= 2)
            return false;
        out = trace::Request{};
        out.time = pos_ == 0 ? 2 * util::kUsPerDay : 0;
        out.length_blocks = 8;
        ++pos_;
        return true;
    }
    void reset() override { pos_ = 0; }

  private:
    size_t pos_ = 0;
};

TEST(BatchPipeline, TimeDisorderAcrossDaysIsFatal)
{
    // pumpBatches rejects day regressions uniformly for every driver.
    core::ApplianceConfig ac;
    ac.cache_blocks = 64;
    auto app = sim::makeAppliance(policyFor(sim::PolicyKind::AOD), ac);
    DisorderedReader reader;
    EXPECT_THROW(sim::runTrace(reader, *app), FatalError);
}

// ---- sharded drivers ----------------------------------------------

TEST(BatchPipeline, ShardedDriversInvariantAcrossBatchAndShards)
{
    const auto reqs = randomTrace(21, 2000);

    for (const size_t shards : {size_t(1), size_t(2), size_t(4),
                                size_t(7)}) {
        sim::ShardedConfig golden_cfg;
        golden_cfg.shards = shards;
        golden_cfg.policy = policyFor(sim::PolicyKind::SieveStoreC);
        golden_cfg.node.cache_blocks = 256;
        golden_cfg.batch = 1;
        trace::VectorTrace golden_trace(reqs);
        const auto golden = sim::runSharded(golden_trace, golden_cfg);

        for (const size_t batch : {size_t(5), size_t(64)}) {
            sim::ShardedConfig cfg = golden_cfg;
            cfg.batch = batch;
            const std::string label = "shards=" + std::to_string(shards) +
                                      " batch=" + std::to_string(batch);

            trace::VectorTrace serial_trace(reqs);
            const auto serial = sim::runSharded(serial_trace, cfg);
            ASSERT_EQ(serial.nodes.size(), golden.nodes.size()) << label;
            for (size_t s = 0; s < shards; ++s)
                expectDailyEq(golden.nodes[s]->daily(),
                              serial.nodes[s]->daily(),
                              label + " serial shard " +
                                  std::to_string(s));

            trace::VectorTrace parallel_trace(reqs);
            const auto parallel =
                sim::runShardedParallel(parallel_trace, cfg);
            for (size_t s = 0; s < shards; ++s)
                expectDailyEq(golden.nodes[s]->daily(),
                              parallel.nodes[s]->daily(),
                              label + " parallel shard " +
                                  std::to_string(s));
        }
    }
}

TEST(BatchPipeline, ParallelBatchLargerThanQueueItemCap)
{
    // Decode batches above kQueueBatchRequests span several queue
    // items; results must not change.
    const auto reqs = randomTrace(31, 1500);
    sim::ShardedConfig cfg;
    cfg.shards = 3;
    cfg.policy = policyFor(sim::PolicyKind::AOD);
    cfg.node.cache_blocks = 128;
    cfg.batch = 1;
    trace::VectorTrace golden_trace(reqs);
    const auto golden = sim::runSharded(golden_trace, cfg);

    cfg.batch = 4 * sim::kQueueBatchRequests;
    trace::VectorTrace parallel_trace(reqs);
    const auto parallel = sim::runShardedParallel(parallel_trace, cfg);
    for (size_t s = 0; s < cfg.shards; ++s)
        expectDailyEq(golden.nodes[s]->daily(),
                      parallel.nodes[s]->daily(),
                      "oversized batch shard " + std::to_string(s));
}

// ---- per-server driver --------------------------------------------

TEST(BatchPipeline, PerServerInvariantAcrossBatchSizes)
{
    const auto reqs = randomTrace(41, 1500);
    sim::PerServerConfig golden_cfg;
    golden_cfg.capacities_blocks = {128, 64, 256};
    golden_cfg.policy = policyFor(sim::PolicyKind::SieveStoreC);
    golden_cfg.base.cache_blocks = 128;
    golden_cfg.batch = 1;
    trace::VectorTrace golden_trace(reqs);
    const auto golden = sim::runPerServer(golden_trace, golden_cfg);

    for (const size_t batch : {size_t(7), size_t(64), size_t(512)}) {
        sim::PerServerConfig cfg = golden_cfg;
        cfg.batch = batch;
        trace::VectorTrace reader(reqs);
        const auto result = sim::runPerServer(reader, cfg);
        const std::string label = "batch=" + std::to_string(batch);
        ASSERT_EQ(result.per_server.size(), golden.per_server.size())
            << label;
        for (size_t s = 0; s < result.per_server.size(); ++s)
            expectDailyEq(golden.per_server[s], result.per_server[s],
                          label + " server " + std::to_string(s));
        expectDailyEq(golden.combined, result.combined,
                      label + " combined");
    }
}

// ---- facade primitives --------------------------------------------

TEST(BatchPipeline, PumpBatchesSlicesAtDayBoundaries)
{
    // One decode batch spanning three days must arrive as three
    // slices with the two day-end callbacks interleaved in order.
    std::vector<trace::Request> reqs;
    for (const uint64_t day : {uint64_t(0), uint64_t(0), uint64_t(1),
                               uint64_t(2), uint64_t(2)}) {
        trace::Request r;
        r.time = day * util::kUsPerDay +
                 uint64_t(reqs.size()) * 1000 + 1;
        r.length_blocks = 8;
        reqs.push_back(r);
    }
    trace::VectorTrace reader(reqs);

    std::vector<std::string> events;
    sim::pumpBatches(
        reader, 64,
        [&](std::span<const trace::Request> slice) {
            events.push_back("slice:" + std::to_string(slice.size()));
        },
        [&](int day) {
            events.push_back("day-end:" + std::to_string(day));
        });

    const std::vector<std::string> expected = {
        "slice:2", "day-end:0", "slice:1", "day-end:1", "slice:2"};
    EXPECT_EQ(events, expected);
}

TEST(BatchPipeline, RequestBatcherFlushesFullBinsAndRemainder)
{
    std::vector<std::pair<size_t, size_t>> flushes; // (bin, count)
    auto flush = [&](size_t bin, std::span<const trace::Request> reqs) {
        flushes.emplace_back(bin, reqs.size());
    };
    sim::RequestBatcher<decltype(flush)> batcher(2, 3, flush);

    trace::Request r;
    r.length_blocks = 8;
    for (int i = 0; i < 7; ++i)
        batcher.add(0, r); // two full flushes of 3, remainder 1
    batcher.add(1, r);     // remainder 1 in the other bin
    batcher.flushAll();
    batcher.flushAll();    // idempotent on empty bins

    const std::vector<std::pair<size_t, size_t>> expected = {
        {0, 3}, {0, 3}, {0, 1}, {1, 1}};
    EXPECT_EQ(flushes, expected);
}

// ---- appliance batch entry point ----------------------------------

TEST(BatchPipeline, ProcessBatchMatchesPerRequestLoop)
{
    const auto reqs = randomTrace(51, 800, 30 * 1000000);
    core::ApplianceConfig cfg;
    cfg.cache_blocks = 256;
    cfg.sieve.kind = core::SieveKind::SieveStoreC;
    cfg.sieve.sieve_c.imct_slots = 1 << 12;

    core::Appliance scalar(cfg);
    for (const trace::Request &r : reqs)
        scalar.processRequest(r);
    scalar.finishTrace();

    core::Appliance batched(cfg);
    size_t i = 0;
    while (i < reqs.size()) {
        size_t j = i + 1;
        while (j < reqs.size() && j - i < 32 &&
               util::dayOf(reqs[j].time) == util::dayOf(reqs[i].time))
            ++j;
        batched.processBatch(std::span<const trace::Request>(
            reqs.data() + i, j - i));
        i = j;
    }
    batched.finishTrace();

    expectDailyEq(scalar.daily(), batched.daily(), "processBatch");
    scalar.checkInvariants();
    batched.checkInvariants();
}

} // namespace
