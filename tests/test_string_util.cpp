/**
 * @file
 * Unit tests for string utilities (CSV parsing helpers, formatting).
 */

#include <gtest/gtest.h>

#include "util/string_util.hpp"

namespace {

using namespace sievestore::util;

TEST(SplitView, BasicFields)
{
    const auto f = splitView("a,b,c", ',');
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[0], "a");
    EXPECT_EQ(f[1], "b");
    EXPECT_EQ(f[2], "c");
}

TEST(SplitView, KeepsEmptyFields)
{
    const auto f = splitView(",x,,", ',');
    ASSERT_EQ(f.size(), 4u);
    EXPECT_EQ(f[0], "");
    EXPECT_EQ(f[1], "x");
    EXPECT_EQ(f[2], "");
    EXPECT_EQ(f[3], "");
}

TEST(SplitView, NoDelimiter)
{
    const auto f = splitView("whole", ',');
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0], "whole");
}

TEST(TrimView, StripsWhitespace)
{
    EXPECT_EQ(trimView("  x y \t\n"), "x y");
    EXPECT_EQ(trimView(""), "");
    EXPECT_EQ(trimView("   "), "");
    EXPECT_EQ(trimView("z"), "z");
}

TEST(ParseU64, Valid)
{
    uint64_t v = 0;
    EXPECT_TRUE(parseU64("12345", v));
    EXPECT_EQ(v, 12345u);
    EXPECT_TRUE(parseU64("  42 ", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parseU64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseU64, Invalid)
{
    uint64_t v = 0;
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("abc", v));
    EXPECT_FALSE(parseU64("12x", v));
    EXPECT_FALSE(parseU64("-5", v));
    // Overflow: 2^64.
    EXPECT_FALSE(parseU64("18446744073709551616", v));
}

TEST(ParseDouble, ValidAndInvalid)
{
    double d = 0.0;
    EXPECT_TRUE(parseDouble("3.25", d));
    EXPECT_DOUBLE_EQ(d, 3.25);
    EXPECT_TRUE(parseDouble("-1e3", d));
    EXPECT_DOUBLE_EQ(d, -1000.0);
    EXPECT_FALSE(parseDouble("", d));
    EXPECT_FALSE(parseDouble("nope", d));
}

TEST(ToLower, AsciiOnly)
{
    EXPECT_EQ(toLower("PrXy"), "prxy");
    EXPECT_EQ(toLower("abc123"), "abc123");
}

TEST(FormatBytes, Units)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(16ULL << 30), "16.0 GiB");
    EXPECT_EQ(formatBytes(1536), "1.5 KiB");
}

TEST(FormatCount, ThousandsSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(434226711), "434,226,711");
}

} // namespace
