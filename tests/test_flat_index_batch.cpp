/**
 * @file
 * Property tests for the batched FlatIndex lookup kernel: findBatch
 * must equal N scalar find() calls for every batch size 1..64, for
 * duplicate keys within a batch, for missing keys, and for batches
 * resolving wrapped probe chains near the table's end — under both
 * probe-loop dispatches (AVX2 dib scan and scalar), on both the
 * mutable and const overloads.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "util/flat_index.hpp"
#include "util/hashing.hpp"
#include "util/random.hpp"

namespace {

using sievestore::util::batchSimdEnabled;
using sievestore::util::batchSimdSupported;
using sievestore::util::FlatIndex;
using sievestore::util::mix64;
using sievestore::util::Rng;
using sievestore::util::setBatchSimd;

/**
 * Run `body` under every reachable probe-loop dispatch (scalar always;
 * AVX2 when the host supports it), restoring the prior dispatch after.
 */
template <typename Body>
void
forEachDispatch(Body &&body)
{
    const bool prior = batchSimdEnabled();
    ASSERT_FALSE(setBatchSimd(false));
    body("scalar");
    if (batchSimdSupported()) {
        ASSERT_TRUE(setBatchSimd(true));
        body("avx2");
    }
    setBatchSimd(prior);
}

/** findBatch over both overloads must equal N scalar find() calls. */
void
expectBatchMatchesScalar(FlatIndex<uint64_t> &idx,
                         const std::vector<uint64_t> &keys,
                         const char *where)
{
    std::vector<uint64_t *> out(keys.size(), nullptr);
    std::vector<const uint64_t *> cout(keys.size(), nullptr);
    size_t expect_found = 0;

    const size_t found = idx.findBatch(keys, std::span(out));
    const FlatIndex<uint64_t> &cidx = idx;
    const size_t cfound = cidx.findBatch(keys, std::span(cout));

    for (size_t i = 0; i < keys.size(); ++i) {
        uint64_t *scalar = idx.find(keys[i]);
        EXPECT_EQ(out[i], scalar)
            << where << ": key " << keys[i] << " at batch index " << i;
        EXPECT_EQ(cout[i], scalar)
            << where << " (const): key " << keys[i] << " at " << i;
        if (scalar != nullptr)
            ++expect_found;
    }
    EXPECT_EQ(found, expect_found) << where;
    EXPECT_EQ(cfound, expect_found) << where << " (const)";
}

TEST(FlatIndexBatch, EmptyTableYieldsAllNull)
{
    forEachDispatch([](const char *where) {
        FlatIndex<uint64_t> idx;
        const std::vector<uint64_t> keys = {1, 2, 3, 0, UINT64_MAX};
        std::vector<uint64_t *> out(keys.size(),
                                    reinterpret_cast<uint64_t *>(1));
        EXPECT_EQ(idx.findBatch(keys, std::span(out)), 0u) << where;
        for (uint64_t *p : out)
            EXPECT_EQ(p, nullptr) << where;
    });
}

TEST(FlatIndexBatch, EveryBatchSizeMatchesScalarFind)
{
    forEachDispatch([](const char *where) {
        Rng rng(99);
        FlatIndex<uint64_t> idx;
        std::vector<uint64_t> present;
        for (uint64_t i = 0; i < 4096; ++i) {
            const uint64_t key = rng.next();
            *idx.findOrInsert(key).first = key * 3;
            present.push_back(key);
        }
        // Batch sizes 1..64: mixed present/absent keys, resolved
        // against scalar find() pointer-for-pointer.
        for (size_t n = 1; n <= 64; ++n) {
            std::vector<uint64_t> keys;
            for (size_t i = 0; i < n; ++i)
                keys.push_back(i % 3 == 0
                                   ? rng.next() // almost surely absent
                                   : present[rng.nextBelow(
                                         present.size())]);
            expectBatchMatchesScalar(idx, keys, where);
        }
    });
}

TEST(FlatIndexBatch, DuplicateKeysResolveToTheSameSlot)
{
    forEachDispatch([](const char *where) {
        FlatIndex<uint64_t> idx;
        for (uint64_t k = 0; k < 512; ++k)
            *idx.findOrInsert(k).first = k;
        std::vector<uint64_t> keys;
        for (size_t i = 0; i < 64; ++i)
            keys.push_back(i % 4); // 16 copies of each of 4 keys
        std::vector<uint64_t *> out(keys.size(), nullptr);
        EXPECT_EQ(idx.findBatch(keys, std::span(out)), keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
            ASSERT_NE(out[i], nullptr) << where;
            EXPECT_EQ(out[i], idx.find(keys[i])) << where;
            EXPECT_EQ(out[i], out[i % 4]) << where
                << ": duplicates of key " << keys[i]
                << " must alias one slot";
        }
        expectBatchMatchesScalar(idx, keys, where);
    });
}

/**
 * Find keys whose home is one of the last `tail` slots of a
 * `slot_count`-slot table, by brute force over candidate ids.
 */
std::vector<uint64_t>
keysHomedNearEnd(size_t slot_count, size_t tail, size_t want)
{
    std::vector<uint64_t> keys;
    const size_t mask = slot_count - 1;
    for (uint64_t candidate = 0; keys.size() < want; ++candidate) {
        const size_t home = mix64(candidate) & mask;
        if (home + tail >= slot_count)
            keys.push_back(candidate);
    }
    return keys;
}

TEST(FlatIndexBatch, WrappedProbeChainsNearTheTableEnd)
{
    forEachDispatch([](const char *where) {
        // A minimal 16-slot table loaded with keys that all home into
        // the last 3 slots: the probe chains wrap past the table's
        // end, exercising probeSimd's hand-over to the masked scalar
        // walk (a full 8-byte vector never fits there).
        FlatIndex<uint64_t> idx;
        idx.reserve(8); // 16 slots
        ASSERT_EQ(idx.slotCount(), 16u);
        const std::vector<uint64_t> homed = keysHomedNearEnd(16, 3, 8);
        std::vector<uint64_t> keys;
        for (const uint64_t k : homed) {
            if (!idx.hasCapacityFor(1))
                break;
            *idx.findOrInsert(k).first = k + 1;
            keys.push_back(k);
        }
        ASSERT_EQ(idx.slotCount(), 16u) << "test assumes no growth";
        ASSERT_GE(keys.size(), 4u);
        idx.checkInvariants();

        // Probe every loaded key plus absent keys that also home near
        // the end (their chains wrap and terminate past the wrap).
        std::vector<uint64_t> probes = keys;
        for (const uint64_t k : keysHomedNearEnd(16, 3, 24))
            probes.push_back(k);
        expectBatchMatchesScalar(idx, probes, where);
    });
}

TEST(FlatIndexBatch, LongChainsAcrossTheSimdStride)
{
    forEachDispatch([](const char *where) {
        // Load factor near 7/8 in a larger table: chains regularly
        // exceed the 8-slot SIMD stride, so the vector loop iterates
        // and the displacement arithmetic (expect lanes d..d+7) is
        // exercised across stride boundaries.
        Rng rng(1234);
        FlatIndex<uint64_t> idx;
        idx.reserve(1000);
        while (idx.hasCapacityFor(1))
            *idx.findOrInsert(rng.next()).first = 7;
        idx.checkInvariants();

        std::vector<uint64_t> probes;
        idx.forEach([&](uint64_t key, uint64_t &) {
            if (probes.size() < 256)
                probes.push_back(key);
        });
        for (size_t i = 0; i < 64; ++i)
            probes.push_back(rng.next()); // absent, long termination
        expectBatchMatchesScalar(idx, probes, where);
    });
}

TEST(FlatIndexBatch, BatchesLargerThanOneChunk)
{
    forEachDispatch([](const char *where) {
        Rng rng(5);
        FlatIndex<uint64_t> idx;
        std::vector<uint64_t> keys;
        for (uint64_t i = 0; i < 1000; ++i) {
            const uint64_t key = rng.next();
            *idx.findOrInsert(key).first = i;
            keys.push_back(key);
        }
        // 1000 keys spans 16 chunks of kBatchChunk=64: the chunk loop
        // and its tail (1000 % 64 != 0) both run.
        static_assert(FlatIndex<uint64_t>::kBatchChunk == 64);
        expectBatchMatchesScalar(idx, keys, where);
    });
}

TEST(FlatIndexBatch, SimdDispatchIsClampedToCpuSupport)
{
    const bool prior = batchSimdEnabled();
    EXPECT_FALSE(setBatchSimd(false));
    EXPECT_FALSE(batchSimdEnabled());
    EXPECT_EQ(setBatchSimd(true), batchSimdSupported());
    EXPECT_EQ(batchSimdEnabled(), batchSimdSupported());
    setBatchSimd(prior);
}

} // namespace
