#include "cache/block_cache.hpp"

#include <algorithm>

#include "util/alloc_guard.hpp"
#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace cache {

using trace::BlockId;
using util::IndexList;

namespace {

void
checkCapacity(uint64_t capacity_blocks)
{
    if (capacity_blocks == 0)
        util::fatal("cache capacity must be at least one block");
    // The order-book arena links nodes by 32-bit index; at 512-byte
    // blocks the cap is a 2 TB cache, far past the paper's 32 GB.
    SIEVE_CHECK(capacity_blocks < IndexList::kNull,
                "cache capacity %llu exceeds the 2^32-1 block arena",
                static_cast<unsigned long long>(capacity_blocks));
}

} // namespace

BlockCache::BlockCache(uint64_t capacity, EvictionSpec espec)
    : capacity_blocks(capacity), spec(espec), rng(espec.seed)
{
    checkCapacity(capacity_blocks);
#ifdef SIEVE_REFERENCE_CACHE
    // Reference build: route the built-in kinds to the seed policies.
    custom = makeReferencePolicy(spec);
#endif
    index.reserve(capacity_blocks);
}

BlockCache::BlockCache(uint64_t capacity,
                       std::unique_ptr<ReplacementPolicy> policy)
    : capacity_blocks(capacity), custom(std::move(policy)),
      rng(spec.seed)
{
    checkCapacity(capacity_blocks);
#ifdef SIEVE_REFERENCE_CACHE
    if (!custom)
        custom = makeReferencePolicy(spec);
#endif
    index.reserve(capacity_blocks);
}

bool
BlockCache::contains(BlockId block) const
{
    return index.contains(block);
}

bool
BlockCache::access(BlockId block)
{
    // Flat engine: a resident hit is one probe plus inline policy
    // state; arena splices never allocate. Custom policies own their
    // state and make no such promise.
    SIEVE_ASSERT_NO_ALLOC_WHEN(!custom);
    PolicyState *st = index.find(block);
    if (!st)
        return false;
    if (custom)
        custom->onAccess(block);
    else
        policyAccess(*st);
    return true;
}

void
BlockCache::containsBatch(std::span<const BlockId> blocks,
                          std::span<bool> hit) const
{
    SIEVE_DCHECK(hit.size() >= blocks.size());
    // A pure batched probe: the kernel reads the index and writes the
    // caller's spans, nothing else.
    SIEVE_ASSERT_NO_ALLOC;
    const PolicyState *st[kProbeBatch];
    for (size_t base = 0; base < blocks.size(); base += kProbeBatch) {
        const size_t n = std::min(kProbeBatch, blocks.size() - base);
        index.findBatch(blocks.subspan(base, n),
                        std::span<const PolicyState *>(st, n));
        for (size_t i = 0; i < n; ++i)
            hit[base + i] = st[i] != nullptr;
    }
}

void
BlockCache::touchBatch(std::span<const BlockId> blocks,
                       std::span<bool> hit)
{
    SIEVE_DCHECK(hit.size() >= blocks.size());
    if (custom) {
        // Custom policies own their state; the batched kernel cannot
        // gather into it, so they keep the scalar loop.
        for (size_t i = 0; i < blocks.size(); ++i)
            hit[i] = access(blocks[i]);
        return;
    }
    // Probe-gather then mutate: all probes in a chunk resolve through
    // the kernel before any policy transition runs. Transitions touch
    // payloads and the order book, never the index structure, so the
    // gathered pointers stay valid across the whole chunk — duplicate
    // blocks simply retouch the same slot in batch order, exactly as
    // the scalar loop would.
    SIEVE_ASSERT_NO_ALLOC;
    PolicyState *st[kProbeBatch];
    for (size_t base = 0; base < blocks.size(); base += kProbeBatch) {
        const size_t n = std::min(kProbeBatch, blocks.size() - base);
        index.findBatch(blocks.subspan(base, n),
                        std::span<PolicyState *>(st, n));
        for (size_t i = 0; i < n; ++i) {
            hit[base + i] = st[i] != nullptr;
            if (st[i] != nullptr)
                policyAccess(*st[i]);
        }
    }
}

void
BlockCache::probeBatch(std::span<const BlockId> blocks,
                       std::span<PolicyState *> st)
{
    SIEVE_CHECK(!custom,
                "probeBatch gathers raw policy state and would bypass "
                "a custom policy; flat engine only");
    SIEVE_DCHECK(st.size() >= blocks.size());
    SIEVE_ASSERT_NO_ALLOC;
    index.findBatch(blocks, st);
}

void
BlockCache::touchProbed(PolicyState &st)
{
    SIEVE_ASSERT_NO_ALLOC;
    policyAccess(st);
}

std::optional<BlockId>
BlockCache::insert(BlockId block)
{
    // Steady state (cache full) recycles: the victim's index slot and
    // order-book node are released before the insert reuses them, and
    // the pre-reserved table never rehashes. Warmup below capacity
    // may still grow the order arena, so the region engages only once
    // the cache is full.
    const bool steady = index.size() >= capacity_blocks;
    SIEVE_ASSERT_NO_ALLOC_WHEN(!custom && steady);
    // Warmup growth is amortized and legitimate even when a caller
    // (Appliance::processBatch) holds a batch-wide no-alloc region.
    std::optional<util::AllocGuardDisarm> warmup_growth;
    if (!steady)
        warmup_growth.emplace(); // sieve-analyze: allow(no-alloc)
    std::optional<BlockId> evicted;
    if (steady) {
        // Pre-check the contract here: below capacity findOrInsert
        // detects duplicates for free, but at capacity the victim
        // could be the duplicate itself and mask the misuse.
        if (index.contains(block))
            util::panic("BlockCache: insert of resident block %llx",
                        static_cast<unsigned long long>(block));
        const BlockId victim = custom ? custom->victim() : policyVictim();
        eraseResident(victim);
        evicted = victim;
    }
    const auto [st, inserted] = index.findOrInsert(block);
    if (!inserted)
        util::panic("BlockCache: insert of resident block %llx",
                    static_cast<unsigned long long>(block));
    if (custom)
        custom->onInsert(block);
    else
        policyInsert(block, *st);
    return evicted;
}

bool
BlockCache::erase(BlockId block)
{
    // Backward-shift deletion and freelist recycling: never allocates
    // in the flat engine.
    SIEVE_ASSERT_NO_ALLOC_WHEN(!custom);
    if (!index.contains(block))
        return false;
    eraseResident(block);
    return true;
}

BatchReplaceResult
BlockCache::batchReplace(const std::vector<BlockId> &new_set,
                         std::vector<BlockId> *allocated_out,
                         std::vector<BlockId> *evicted_out)
{
    BatchReplaceResult result;
    if (allocated_out)
        allocated_out->clear();
    if (evicted_out)
        evicted_out->clear();

    // Deduplicate and truncate to capacity in first-come priority
    // order (the selector emits its set hottest-first).
    util::FlatIndex<uint8_t> incoming(
            std::min<size_t>(new_set.size(), capacity_blocks));
    std::vector<BlockId> install;
    install.reserve(std::min<size_t>(new_set.size(), capacity_blocks));
    for (BlockId b : new_set) {
        if (install.size() >= capacity_blocks)
            break;
        if (incoming.findOrInsert(b).second)
            install.push_back(b);
    }

    // Evict residents that are not retained; retained blocks cancel
    // their replacement+allocation pair.
    std::vector<BlockId> to_evict;
    to_evict.reserve(index.size());
    index.forEach([&](uint64_t key, const PolicyState &) {
        if (incoming.contains(key))
            ++result.retained;
        else
            to_evict.push_back(key);
    });
    for (BlockId b : to_evict)
        eraseResident(b);
    result.evicted = to_evict.size();
    if (evicted_out)
        *evicted_out = std::move(to_evict);

    for (BlockId b : install) {
        const auto [st, inserted] = index.findOrInsert(b);
        if (!inserted)
            continue; // retained
        if (custom)
            custom->onInsert(b);
        else
            policyInsert(b, *st);
        ++result.allocated;
        if (allocated_out)
            allocated_out->push_back(b);
    }
    return result;
}

std::vector<BlockId>
BlockCache::contents() const
{
    std::vector<BlockId> blocks;
    blocks.reserve(index.size());
    index.forEach([&](uint64_t key, const PolicyState &) {
        blocks.push_back(key);
    });
    return blocks;
}

const char *
BlockCache::policyName() const
{
    return custom ? custom->name() : evictionKindName(spec.kind);
}

uint64_t
BlockCache::memoryBytes() const
{
    uint64_t total = index.memoryBytes();
    if (custom)
        return total + custom->memoryBytes();
    return total + order.memoryBytes() + util::vectorFootprintBytes(pool);
}

void
BlockCache::policyInsert(BlockId block, PolicyState &st)
{
    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
        st.primary = order.pushFront(block);
        break;
      case EvictionKind::Clock:
        // Insert behind the hand so the new entry is inspected last
        // (kNull appends at the tail, matching insert-before-end).
        st.primary = order.insertBefore(clock_hand, block);
        st.secondary = 1;
        break;
      case EvictionKind::Lfu:
        st.primary = 1;
        st.secondary = lfu_sequence++;
        break;
      case EvictionKind::Random:
        st.primary = pool.size();
        // Slots recycled by policyErase's swap-remove keep the vector
        // at capacity in steady state; growth happens only during
        // warmup, under insert()'s disarm.
        pool.push_back(block); // sieve-analyze: allow(no-alloc)
        break;
    }
}

void
BlockCache::policyAccess(PolicyState &st)
{
    switch (spec.kind) {
      case EvictionKind::Lru:
        order.moveToFront(static_cast<uint32_t>(st.primary));
        break;
      case EvictionKind::Fifo:
        break; // insertion order is preserved: hits do not promote
      case EvictionKind::Clock:
        st.secondary = 1;
        break;
      case EvictionKind::Lfu:
        ++st.primary;
        break;
      case EvictionKind::Random:
        break;
    }
}

void
BlockCache::policyErase(BlockId block, const PolicyState &st)
{
    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
        order.erase(static_cast<uint32_t>(st.primary));
        break;
      case EvictionKind::Clock: {
        const auto node = static_cast<uint32_t>(st.primary);
        if (clock_hand == node)
            clock_hand = order.next(node);
        order.erase(node);
        break;
      }
      case EvictionKind::Lfu:
        break;
      case EvictionKind::Random: {
        // Swap-with-last keeps the pool dense.
        const auto pos = static_cast<size_t>(st.primary);
        const BlockId last = pool.back();
        pool[pos] = last;
        if (last != block) {
            PolicyState *last_st = index.find(last);
            SIEVE_DCHECK(last_st != nullptr);
            last_st->primary = pos;
        }
        pool.pop_back();
        break;
      }
    }
}

BlockId
BlockCache::policyVictim()
{
    SIEVE_CHECK(!index.empty(), "victim() on empty cache");
    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
        return order.value(order.tail());
      case EvictionKind::Clock:
        // Sweep the ring clearing reference bits until one is clear.
        while (true) {
            if (clock_hand == IndexList::kNull)
                clock_hand = order.head();
            const BlockId block = order.value(clock_hand);
            PolicyState *st = index.find(block);
            SIEVE_DCHECK(st != nullptr);
            if (st->secondary != 0) {
                st->secondary = 0;
                clock_hand = order.next(clock_hand);
            } else {
                return block;
            }
        }
      case EvictionKind::Lfu: {
        // Linear scan for the unique (count, sequence) minimum.
        bool found = false;
        BlockId best_block = 0;
        uint64_t best_count = 0;
        uint64_t best_seq = 0;
        index.forEach([&](uint64_t key, const PolicyState &st) {
            if (!found || st.primary < best_count ||
                (st.primary == best_count && st.secondary < best_seq)) {
                found = true;
                best_block = key;
                best_count = st.primary;
                best_seq = st.secondary;
            }
        });
        return best_block;
      }
      case EvictionKind::Random:
        return pool[rng.nextBelow(pool.size())];
    }
    SIEVE_UNREACHABLE("unknown EvictionKind");
}

void
BlockCache::eraseResident(BlockId block)
{
    if (custom) {
        custom->onErase(block);
        const bool erased = index.erase(block);
        SIEVE_CHECK(erased, "evicted block %llx was not resident",
                    static_cast<unsigned long long>(block));
        return;
    }
    const bool erased = index.eraseWith(block, [&](const PolicyState &st) {
        policyErase(block, st);
    });
    SIEVE_CHECK(erased, "evicted block %llx was not resident",
                static_cast<unsigned long long>(block));
}

void
BlockCache::checkInvariants() const
{
    SIEVE_CHECK(capacity_blocks >= 1);
    SIEVE_CHECK(index.size() <= capacity_blocks,
                "resident set %zu exceeds capacity %llu", index.size(),
                static_cast<unsigned long long>(capacity_blocks));
    index.checkInvariants();

    if (custom) {
        SIEVE_CHECK(custom->size() == index.size(),
                    "policy tracks %zu blocks, cache holds %zu",
                    custom->size(), index.size());
        index.forEach([&](uint64_t key, const PolicyState &) {
            SIEVE_CHECK(custom->contains(key),
                        "resident block %llx unknown to the %s policy",
                        static_cast<unsigned long long>(key),
                        custom->name());
        });
        return;
    }

    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
      case EvictionKind::Clock: {
        order.checkInvariants();
        SIEVE_CHECK(order.size() == index.size(),
                    "order book tracks %zu blocks, cache holds %zu",
                    order.size(), index.size());
        bool hand_seen = clock_hand == IndexList::kNull;
        for (uint32_t n = order.head(); n != IndexList::kNull;
             n = order.next(n)) {
            const PolicyState *st = index.find(order.value(n));
            SIEVE_CHECK(st != nullptr,
                        "order-book block %llx is not resident",
                        static_cast<unsigned long long>(order.value(n)));
            SIEVE_CHECK(static_cast<uint32_t>(st->primary) == n,
                        "block %llx links node %llu, found at node %u",
                        static_cast<unsigned long long>(order.value(n)),
                        static_cast<unsigned long long>(st->primary), n);
            if (spec.kind == EvictionKind::Clock)
                SIEVE_CHECK(st->secondary <= 1,
                            "CLOCK reference bit out of range");
            hand_seen = hand_seen || n == clock_hand;
        }
        SIEVE_CHECK(hand_seen, "CLOCK hand points outside the ring");
        break;
      }
      case EvictionKind::Lfu:
        index.forEach([&](uint64_t key, const PolicyState &st) {
            SIEVE_CHECK(st.primary >= 1,
                        "LFU count for %llx below one",
                        static_cast<unsigned long long>(key));
            SIEVE_CHECK(st.secondary < lfu_sequence,
                        "LFU sequence for %llx from the future",
                        static_cast<unsigned long long>(key));
        });
        break;
      case EvictionKind::Random:
        SIEVE_CHECK(pool.size() == index.size(),
                    "victim pool tracks %zu blocks, cache holds %zu",
                    pool.size(), index.size());
        for (size_t i = 0; i < pool.size(); ++i) {
            const PolicyState *st = index.find(pool[i]);
            SIEVE_CHECK(st != nullptr,
                        "pooled block %llx is not resident",
                        static_cast<unsigned long long>(pool[i]));
            SIEVE_CHECK(st->primary == i,
                        "block %llx records pool slot %llu, is at %zu",
                        static_cast<unsigned long long>(pool[i]),
                        static_cast<unsigned long long>(st->primary), i);
        }
        break;
    }
}

} // namespace cache
} // namespace sievestore
