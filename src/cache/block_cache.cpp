#include "cache/block_cache.hpp"

#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace cache {

using trace::BlockId;

BlockCache::BlockCache(uint64_t capacity,
                       std::unique_ptr<ReplacementPolicy> policy)
    : capacity_blocks(capacity), repl(std::move(policy))
{
    if (capacity_blocks == 0)
        util::fatal("cache capacity must be at least one block");
    if (!repl)
        repl = std::make_unique<LruPolicy>();
}

bool
BlockCache::contains(BlockId block) const
{
    return resident.count(block) != 0;
}

bool
BlockCache::access(BlockId block)
{
    if (!resident.count(block))
        return false;
    repl->onAccess(block);
    return true;
}

std::optional<BlockId>
BlockCache::insert(BlockId block)
{
    if (resident.count(block))
        util::panic("BlockCache: insert of resident block %llx",
                    static_cast<unsigned long long>(block));
    std::optional<BlockId> evicted;
    if (resident.size() >= capacity_blocks) {
        const BlockId victim = repl->victim();
        repl->onErase(victim);
        resident.erase(victim);
        evicted = victim;
    }
    resident.insert(block);
    repl->onInsert(block);
    return evicted;
}

bool
BlockCache::erase(BlockId block)
{
    if (!resident.erase(block))
        return false;
    repl->onErase(block);
    return true;
}

BatchReplaceResult
BlockCache::batchReplace(const std::vector<BlockId> &new_set)
{
    BatchReplaceResult result;

    std::unordered_set<BlockId> incoming;
    incoming.reserve(new_set.size());
    for (BlockId b : new_set) {
        if (incoming.size() >= capacity_blocks)
            break;
        incoming.insert(b);
    }

    // Evict residents that are not retained; retained blocks cancel
    // their replacement+allocation pair.
    std::vector<BlockId> to_evict;
    to_evict.reserve(resident.size());
    for (BlockId b : resident) {
        if (incoming.count(b))
            ++result.retained;
        else
            to_evict.push_back(b);
    }
    for (BlockId b : to_evict) {
        resident.erase(b);
        repl->onErase(b);
    }
    result.evicted = to_evict.size();

    for (BlockId b : incoming) {
        if (resident.count(b))
            continue;
        resident.insert(b);
        repl->onInsert(b);
        ++result.allocated;
    }
    return result;
}

std::vector<BlockId>
BlockCache::contents() const
{
    return std::vector<BlockId>(resident.begin(), resident.end());
}

uint64_t
BlockCache::memoryBytes() const
{
    return util::unorderedFootprintBytes(resident);
}

void
BlockCache::checkInvariants() const
{
    SIEVE_CHECK(capacity_blocks >= 1);
    SIEVE_CHECK(resident.size() <= capacity_blocks,
                "resident set %zu exceeds capacity %llu",
                resident.size(),
                static_cast<unsigned long long>(capacity_blocks));
    SIEVE_CHECK(repl != nullptr);
    SIEVE_CHECK(repl->size() == resident.size(),
                "replacement policy tracks %zu blocks, cache holds %zu",
                repl->size(), resident.size());
    for (BlockId b : resident)
        SIEVE_CHECK(repl->contains(b),
                    "resident block %llx unknown to the %s policy",
                    static_cast<unsigned long long>(b), repl->name());
}

} // namespace cache
} // namespace sievestore
