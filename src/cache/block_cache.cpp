#include "cache/block_cache.hpp"

#include <algorithm>

#include "util/alloc_guard.hpp"
#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace cache {

using trace::BlockId;
using util::IndexList;

namespace {

void
checkCapacity(uint64_t capacity_blocks)
{
    if (capacity_blocks == 0)
        util::fatal("cache capacity must be at least one block");
    // The order-book arena links nodes by 32-bit index; at 512-byte
    // blocks the cap is a 2 TB cache, far past the paper's 32 GB.
    SIEVE_CHECK(capacity_blocks < IndexList::kNull,
                "cache capacity %llu exceeds the 2^32-1 block arena",
                static_cast<unsigned long long>(capacity_blocks));
}

} // namespace

BlockCache::BlockCache(uint64_t capacity, EvictionSpec espec)
    : capacity_blocks(capacity), spec(espec), rng(espec.seed)
{
    checkCapacity(capacity_blocks);
#ifdef SIEVE_REFERENCE_CACHE
    // Reference build: route the built-in kinds to the seed policies.
    custom = makeReferencePolicy(spec, capacity_blocks);
#endif
    initFlatEngine();
}

BlockCache::BlockCache(uint64_t capacity,
                       std::unique_ptr<ReplacementPolicy> policy)
    : capacity_blocks(capacity), custom(std::move(policy)),
      rng(spec.seed)
{
    checkCapacity(capacity_blocks);
#ifdef SIEVE_REFERENCE_CACHE
    if (!custom)
        custom = makeReferencePolicy(spec, capacity_blocks);
#endif
    initFlatEngine();
}

void
BlockCache::initFlatEngine()
{
    index.reserve(capacity_blocks);
    if (custom)
        return;
    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
      case EvictionKind::Clock:
      case EvictionKind::Sieve:
      case EvictionKind::Lfu:
      case EvictionKind::Random:
        // Single-arena kinds recycle the victim's node before each
        // steady-state insert; warmup growth runs under insert()'s
        // disarm, so no up-front arena reservation is needed.
        break;
      case EvictionKind::Arc:
        // Steady-state inserts can land in the other arena than the
        // victim came from (T1 eviction, T2 landing), so both arenas
        // are reserved for the worst case up front to keep the
        // no-alloc contract.
        order.reserve(capacity_blocks);
        order2.reserve(capacity_blocks);
        ghost_recent.emplace(capacity_blocks);
        ghost_frequent.emplace(capacity_blocks);
        break;
      case EvictionKind::TinyLfu:
        order.reserve(capacity_blocks);
        order2.reserve(capacity_blocks);
        order3.reserve(capacity_blocks);
        ghost_recent.emplace(capacity_blocks);
        sketch.emplace(capacity_blocks, spec.seed);
        tlfu = tinyLfuShape(capacity_blocks);
        break;
    }
}

bool
BlockCache::contains(BlockId block) const
{
    return index.contains(block);
}

bool
BlockCache::access(BlockId block)
{
    // Flat engine: a resident hit is one probe plus inline policy
    // state; arena splices never allocate. Custom policies own their
    // state and make no such promise.
    SIEVE_ASSERT_NO_ALLOC_WHEN(!custom);
    PolicyState *st = index.find(block);
    if (!st)
        return false;
    if (custom)
        custom->onAccess(block);
    else
        policyAccess(block, *st);
    return true;
}

void
BlockCache::containsBatch(std::span<const BlockId> blocks,
                          std::span<bool> hit) const
{
    SIEVE_DCHECK(hit.size() >= blocks.size());
    // A pure batched probe: the kernel reads the index and writes the
    // caller's spans, nothing else.
    SIEVE_ASSERT_NO_ALLOC;
    const PolicyState *st[kProbeBatch];
    for (size_t base = 0; base < blocks.size(); base += kProbeBatch) {
        const size_t n = std::min(kProbeBatch, blocks.size() - base);
        index.findBatch(blocks.subspan(base, n),
                        std::span<const PolicyState *>(st, n));
        for (size_t i = 0; i < n; ++i)
            hit[base + i] = st[i] != nullptr;
    }
}

void
BlockCache::touchBatch(std::span<const BlockId> blocks,
                       std::span<bool> hit)
{
    SIEVE_DCHECK(hit.size() >= blocks.size());
    if (custom) {
        // Custom policies own their state; the batched kernel cannot
        // gather into it, so they keep the scalar loop.
        for (size_t i = 0; i < blocks.size(); ++i)
            hit[i] = access(blocks[i]);
        return;
    }
    // Probe-gather then mutate: all probes in a chunk resolve through
    // the kernel before any policy transition runs. Transitions touch
    // payloads and the order book, never the index structure, so the
    // gathered pointers stay valid across the whole chunk — duplicate
    // blocks simply retouch the same slot in batch order, exactly as
    // the scalar loop would.
    SIEVE_ASSERT_NO_ALLOC;
    PolicyState *st[kProbeBatch];
    for (size_t base = 0; base < blocks.size(); base += kProbeBatch) {
        const size_t n = std::min(kProbeBatch, blocks.size() - base);
        index.findBatch(blocks.subspan(base, n),
                        std::span<PolicyState *>(st, n));
        for (size_t i = 0; i < n; ++i) {
            hit[base + i] = st[i] != nullptr;
            if (st[i] != nullptr)
                policyAccess(blocks[base + i], *st[i]);
        }
    }
}

void
BlockCache::probeBatch(std::span<const BlockId> blocks,
                       std::span<PolicyState *> st)
{
    SIEVE_CHECK(!custom,
                "probeBatch gathers raw policy state and would bypass "
                "a custom policy; flat engine only");
    SIEVE_DCHECK(st.size() >= blocks.size());
    SIEVE_ASSERT_NO_ALLOC;
    index.findBatch(blocks, st);
}

void
BlockCache::touchProbed(BlockId block, PolicyState &st)
{
    SIEVE_ASSERT_NO_ALLOC;
    policyAccess(block, st);
}

std::optional<BlockId>
BlockCache::insert(BlockId block)
{
    // Steady state (cache full) recycles: the victim's index slot and
    // order-book node are released before the insert reuses them, and
    // the pre-reserved table never rehashes. Warmup below capacity
    // may still grow the order arena, so the region engages only once
    // the cache is full.
    const bool steady = index.size() >= capacity_blocks;
    SIEVE_ASSERT_NO_ALLOC_WHEN(!custom && steady);
    // Warmup growth is amortized and legitimate even when a caller
    // (Appliance::processBatch) holds a batch-wide no-alloc region.
    std::optional<util::AllocGuardDisarm> warmup_growth;
    if (!steady)
        warmup_growth.emplace(); // sieve-analyze: allow(no-alloc)
    std::optional<BlockId> evicted;
    if (steady) {
        // Pre-check the contract here: below capacity findOrInsert
        // detects duplicates for free, but at capacity the victim
        // could be the duplicate itself and mask the misuse.
        if (index.contains(block))
            util::panic("BlockCache: insert of resident block %llx",
                        static_cast<unsigned long long>(block));
        const BlockId victim =
            custom ? custom->victimFor(block) : policyVictim(block);
        eraseResident(victim);
        evicted = victim;
    }
    const auto [st, inserted] = index.findOrInsert(block);
    if (!inserted)
        util::panic("BlockCache: insert of resident block %llx",
                    static_cast<unsigned long long>(block));
    if (custom)
        custom->onInsert(block);
    else
        policyInsert(block, *st);
    return evicted;
}

bool
BlockCache::erase(BlockId block)
{
    // Backward-shift deletion and freelist recycling: never allocates
    // in the flat engine.
    SIEVE_ASSERT_NO_ALLOC_WHEN(!custom);
    if (!index.contains(block))
        return false;
    eraseResident(block);
    return true;
}

BatchReplaceResult
BlockCache::batchReplace(const std::vector<BlockId> &new_set,
                         std::vector<BlockId> *allocated_out,
                         std::vector<BlockId> *evicted_out)
{
    BatchReplaceResult result;
    if (allocated_out)
        allocated_out->clear();
    if (evicted_out)
        evicted_out->clear();

    // Deduplicate and truncate to capacity in first-come priority
    // order (the selector emits its set hottest-first).
    util::FlatIndex<uint8_t> incoming(
            std::min<size_t>(new_set.size(), capacity_blocks));
    std::vector<BlockId> install;
    install.reserve(std::min<size_t>(new_set.size(), capacity_blocks));
    for (BlockId b : new_set) {
        if (install.size() >= capacity_blocks)
            break;
        if (incoming.findOrInsert(b).second)
            install.push_back(b);
    }

    // Evict residents that are not retained; retained blocks cancel
    // their replacement+allocation pair.
    std::vector<BlockId> to_evict;
    to_evict.reserve(index.size());
    index.forEach([&](uint64_t key, const PolicyState &) {
        if (incoming.contains(key))
            ++result.retained;
        else
            to_evict.push_back(key);
    });
    for (BlockId b : to_evict)
        eraseResident(b);
    result.evicted = to_evict.size();
    if (evicted_out)
        *evicted_out = std::move(to_evict);

    for (BlockId b : install) {
        const auto [st, inserted] = index.findOrInsert(b);
        if (!inserted)
            continue; // retained
        if (custom)
            custom->onInsert(b);
        else
            policyInsert(b, *st);
        ++result.allocated;
        if (allocated_out)
            allocated_out->push_back(b);
    }
    return result;
}

std::vector<BlockId>
BlockCache::contents() const
{
    std::vector<BlockId> blocks;
    blocks.reserve(index.size());
    index.forEach([&](uint64_t key, const PolicyState &) {
        blocks.push_back(key);
    });
    return blocks;
}

const char *
BlockCache::policyName() const
{
    return custom ? custom->name() : evictionKindName(spec.kind);
}

uint64_t
BlockCache::memoryBytes() const
{
    uint64_t total = index.memoryBytes();
    if (custom)
        return total + custom->memoryBytes();
    total += order.memoryBytes() + order2.memoryBytes() +
             order3.memoryBytes() + util::vectorFootprintBytes(pool);
    // Ghost directories and the admission sketch are policy metadata
    // like the order books and are charged the same way.
    if (ghost_recent)
        total += ghost_recent->memoryBytes();
    if (ghost_frequent)
        total += ghost_frequent->memoryBytes();
    if (sketch)
        total += sketch->memoryBytes();
    return total;
}

void
BlockCache::arcAdapt(BlockId incoming)
{
    const bool in_b1 = ghost_recent->contains(incoming);
    const bool in_b2 = !in_b1 && ghost_frequent->contains(incoming);
    arc_last_in_b2 = in_b2;
    if (in_b1) {
        const uint64_t delta = std::max<uint64_t>(
                1, ghost_frequent->size() / ghost_recent->size());
        arc_p = std::min(capacity_blocks, arc_p + delta);
        ghost_recent->erase(incoming);
        arc_to_t2 = true;
    } else if (in_b2) {
        const uint64_t delta = std::max<uint64_t>(
                1, ghost_recent->size() / ghost_frequent->size());
        arc_p = arc_p > delta ? arc_p - delta : 0;
        ghost_frequent->erase(incoming);
        arc_to_t2 = true;
    } else {
        arc_to_t2 = false;
    }
    arc_prepared = true;
}

void
BlockCache::policyInsert(BlockId block, PolicyState &st)
{
    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
        st.primary = order.pushFront(block);
        break;
      case EvictionKind::Clock:
        // Insert behind the hand so the new entry is inspected last
        // (kNull appends at the tail, matching insert-before-end).
        st.primary = order.insertBefore(hand, block);
        st.secondary = 1;
        break;
      case EvictionKind::Lfu:
        st.primary = 1;
        st.secondary = lfu_sequence++;
        break;
      case EvictionKind::Random:
        st.primary = pool.size();
        // Slots recycled by policyErase's swap-remove keep the vector
        // at capacity in steady state; growth happens only during
        // warmup, under insert()'s disarm.
        pool.push_back(block); // sieve-analyze: allow(no-alloc)
        break;
      case EvictionKind::Sieve:
        st.primary = order.pushFront(block);
        st.secondary = 0;
        break;
      case EvictionKind::Arc:
        // batchReplace installs (and below-capacity warmup) arrive
        // without a policyVictim call; adapt on the ghost hit now.
        if (!arc_prepared)
            arcAdapt(block);
        arc_prepared = false;
        if (arc_to_t2) {
            st.primary = order2.pushFront(block);
            st.secondary = 2;
        } else {
            st.primary = order.pushFront(block);
            st.secondary = 1;
        }
        break;
      case EvictionKind::TinyLfu: {
        sketch->add(block);
        // A recently rejected key earns a second sketch vote so a
        // prompt re-reference can win the next admission contest.
        if (ghost_recent->erase(block))
            sketch->add(block);
        st.primary = order.pushFront(block);
        st.secondary = 0;
        if (order.size() > tlfu.window_cap) {
            // Below-capacity growth: window overflow drains into
            // probation (at capacity policyVictim already made room).
            const BlockId demoted = order.value(order.tail());
            order.erase(order.tail());
            PolicyState *dst = index.find(demoted);
            SIEVE_DCHECK(dst != nullptr);
            dst->primary = order2.pushFront(demoted);
            dst->secondary = 1;
        }
        break;
      }
    }
}

void
BlockCache::policyAccess(BlockId block, PolicyState &st)
{
    switch (spec.kind) {
      case EvictionKind::Lru:
        order.moveToFront(static_cast<uint32_t>(st.primary));
        break;
      case EvictionKind::Fifo:
        break; // insertion order is preserved: hits do not promote
      case EvictionKind::Clock:
        st.secondary = 1;
        break;
      case EvictionKind::Lfu:
        ++st.primary;
        break;
      case EvictionKind::Random:
        break;
      case EvictionKind::Sieve:
        st.secondary = 1; // visited; the queue is never touched
        break;
      case EvictionKind::Arc:
        if (st.secondary == 1) {
            // First re-reference: promote T1 -> T2 MRU.
            order.erase(static_cast<uint32_t>(st.primary));
            st.primary = order2.pushFront(block);
            st.secondary = 2;
        } else {
            order2.moveToFront(static_cast<uint32_t>(st.primary));
        }
        break;
      case EvictionKind::TinyLfu:
        sketch->add(block);
        if (st.secondary == 0) {
            order.moveToFront(static_cast<uint32_t>(st.primary));
        } else if (st.secondary == 1) {
            // Promote probation -> protected; over-cap demotes the
            // protected LRU back to probation MRU (at protected_cap
            // == 0 the promoted block demotes itself, netting a
            // probation move-to-front).
            order2.erase(static_cast<uint32_t>(st.primary));
            st.primary = order3.pushFront(block);
            st.secondary = 2;
            if (order3.size() > tlfu.protected_cap) {
                const BlockId demoted = order3.value(order3.tail());
                order3.erase(order3.tail());
                PolicyState *dst = index.find(demoted);
                SIEVE_DCHECK(dst != nullptr);
                dst->primary = order2.pushFront(demoted);
                dst->secondary = 1;
            }
        } else {
            order3.moveToFront(static_cast<uint32_t>(st.primary));
        }
        break;
    }
}

void
BlockCache::policyErase(BlockId block, const PolicyState &st)
{
    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
        order.erase(static_cast<uint32_t>(st.primary));
        break;
      case EvictionKind::Clock: {
        const auto node = static_cast<uint32_t>(st.primary);
        if (hand == node)
            hand = order.next(node);
        order.erase(node);
        break;
      }
      case EvictionKind::Lfu:
        break;
      case EvictionKind::Random: {
        // Swap-with-last keeps the pool dense.
        const auto pos = static_cast<size_t>(st.primary);
        const BlockId last = pool.back();
        pool[pos] = last;
        if (last != block) {
            PolicyState *last_st = index.find(last);
            SIEVE_DCHECK(last_st != nullptr);
            last_st->primary = pos;
        }
        pool.pop_back();
        break;
      }
      case EvictionKind::Sieve: {
        const auto node = static_cast<uint32_t>(st.primary);
        // Step the hand toward the head past the erased node (prev of
        // the head is kNull, i.e. restart from the tail).
        if (hand == node)
            hand = order.prev(node);
        order.erase(node);
        break;
      }
      case EvictionKind::Arc: {
        const bool was_t1 = st.secondary == 1;
        (was_t1 ? order : order2)
                .erase(static_cast<uint32_t>(st.primary));
        if (arc_suppress_ghost) {
            arc_suppress_ghost = false;
            break;
        }
        // Evicted keys fall into the matching ghost directory.
        (was_t1 ? *ghost_recent : *ghost_frequent).insert(block);
        break;
      }
      case EvictionKind::TinyLfu:
        (st.secondary == 0   ? order
         : st.secondary == 1 ? order2
                             : order3)
                .erase(static_cast<uint32_t>(st.primary));
        break;
    }
}

BlockId
BlockCache::policyVictim(BlockId incoming)
{
    SIEVE_CHECK(!index.empty(), "victim() on empty cache");
    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
        return order.value(order.tail());
      case EvictionKind::Clock:
        // Sweep the ring clearing reference bits until one is clear.
        while (true) {
            if (hand == IndexList::kNull)
                hand = order.head();
            const BlockId block = order.value(hand);
            PolicyState *st = index.find(block);
            SIEVE_DCHECK(st != nullptr);
            if (st->secondary != 0) {
                st->secondary = 0;
                hand = order.next(hand);
            } else {
                return block;
            }
        }
      case EvictionKind::Lfu: {
        // Linear scan for the unique (count, sequence) minimum.
        bool found = false;
        BlockId best_block = 0;
        uint64_t best_count = 0;
        uint64_t best_seq = 0;
        index.forEach([&](uint64_t key, const PolicyState &st) {
            if (!found || st.primary < best_count ||
                (st.primary == best_count && st.secondary < best_seq)) {
                found = true;
                best_block = key;
                best_count = st.primary;
                best_seq = st.secondary;
            }
        });
        return best_block;
      }
      case EvictionKind::Random:
        return pool[rng.nextBelow(pool.size())];
      case EvictionKind::Sieve: {
        // Sweep from the hand (or the tail) toward the head, clearing
        // visited bits; the first unvisited block is the victim and
        // the hand parks just past it.
        uint32_t node = hand != IndexList::kNull ? hand : order.tail();
        while (true) {
            if (node == IndexList::kNull)
                node = order.tail(); // wrapped past the head
            const BlockId block = order.value(node);
            PolicyState *st = index.find(block);
            SIEVE_DCHECK(st != nullptr);
            if (st->secondary != 0) {
                st->secondary = 0;
                node = order.prev(node);
            } else {
                hand = order.prev(node);
                return block;
            }
        }
      }
      case EvictionKind::Arc: {
        arcAdapt(incoming);
        if (!arc_to_t2) {
            // Case IV: the incoming key is in neither ghost
            // directory, so make directory room per the paper (>=
            // instead of == guards the transient L1 overshoot a
            // batchReplace refill creates).
            const uint64_t l1 = order.size() + ghost_recent->size();
            if (l1 >= capacity_blocks) {
                if (order.size() < capacity_blocks) {
                    ghost_recent->popOldest();
                } else {
                    // T1 alone fills the cache: evict its LRU with no
                    // ghost record (the canonical IV(a) inner arm).
                    arc_suppress_ghost = true;
                    return order.value(order.tail());
                }
            } else if (order.size() + order2.size() +
                               ghost_recent->size() +
                               ghost_frequent->size() >=
                       2 * capacity_blocks) {
                ghost_frequent->popOldest();
            }
        }
        // REPLACE(x, p): the side whose share exceeds its target.
        if (!order.empty() &&
            (order2.empty() || order.size() > arc_p ||
             (arc_last_in_b2 && order.size() == arc_p)))
            return order.value(order.tail());
        return order2.value(order2.tail());
      }
      case EvictionKind::TinyLfu: {
        if (order.empty()) {
            // Degenerate shape (external erases drained the window):
            // evict from the main region directly.
            return order2.empty() ? order3.value(order3.tail())
                                  : order2.value(order2.tail());
        }
        const BlockId candidate = order.value(order.tail());
        if (order2.empty() && order3.empty())
            return candidate;
        const BlockId main_victim = order2.empty()
                                        ? order3.value(order3.tail())
                                        : order2.value(order2.tail());
        if (sketch->estimate(candidate) >
            sketch->estimate(main_victim)) {
            // Candidate admitted: it takes the main region's place
            // and the main victim is evicted.
            order.erase(order.tail());
            PolicyState *cst = index.find(candidate);
            SIEVE_DCHECK(cst != nullptr);
            cst->primary = order2.pushFront(candidate);
            cst->secondary = 1;
            return main_victim;
        }
        ghost_recent->insert(candidate);
        return candidate;
      }
    }
    SIEVE_UNREACHABLE("unknown EvictionKind");
}

void
BlockCache::eraseResident(BlockId block)
{
    if (custom) {
        custom->onErase(block);
        const bool erased = index.erase(block);
        SIEVE_CHECK(erased, "evicted block %llx was not resident",
                    static_cast<unsigned long long>(block));
        return;
    }
    const bool erased = index.eraseWith(block, [&](const PolicyState &st) {
        policyErase(block, st);
    });
    SIEVE_CHECK(erased, "evicted block %llx was not resident",
                static_cast<unsigned long long>(block));
}

void
BlockCache::checkInvariants() const
{
    SIEVE_CHECK(capacity_blocks >= 1);
    SIEVE_CHECK(index.size() <= capacity_blocks,
                "resident set %zu exceeds capacity %llu", index.size(),
                static_cast<unsigned long long>(capacity_blocks));
    index.checkInvariants();

    if (custom) {
        SIEVE_CHECK(custom->size() == index.size(),
                    "policy tracks %zu blocks, cache holds %zu",
                    custom->size(), index.size());
        index.forEach([&](uint64_t key, const PolicyState &) {
            SIEVE_CHECK(custom->contains(key),
                        "resident block %llx unknown to the %s policy",
                        static_cast<unsigned long long>(key),
                        custom->name());
        });
        return;
    }

    // Arena mirror: every node in `list` is resident, links back to
    // its node, and carries the expected segment tag (uint64_t(-1)
    // skips the tag check).
    const auto checkArena = [&](const util::IndexList &list,
                                uint64_t segment) {
        list.checkInvariants();
        for (uint32_t n = list.head(); n != IndexList::kNull;
             n = list.next(n)) {
            const PolicyState *st = index.find(list.value(n));
            SIEVE_CHECK(st != nullptr,
                        "order-book block %llx is not resident",
                        static_cast<unsigned long long>(list.value(n)));
            SIEVE_CHECK(static_cast<uint32_t>(st->primary) == n,
                        "block %llx links node %llu, found at node %u",
                        static_cast<unsigned long long>(list.value(n)),
                        static_cast<unsigned long long>(st->primary), n);
            if (segment != static_cast<uint64_t>(-1))
                SIEVE_CHECK(st->secondary == segment,
                            "block %llx carries segment %llu, its "
                            "arena expects %llu",
                            static_cast<unsigned long long>(
                                    list.value(n)),
                            static_cast<unsigned long long>(
                                    st->secondary),
                            static_cast<unsigned long long>(segment));
        }
    };

    switch (spec.kind) {
      case EvictionKind::Lru:
      case EvictionKind::Fifo:
      case EvictionKind::Clock:
      case EvictionKind::Sieve: {
        order.checkInvariants();
        SIEVE_CHECK(order.size() == index.size(),
                    "order book tracks %zu blocks, cache holds %zu",
                    order.size(), index.size());
        bool hand_seen = hand == IndexList::kNull;
        for (uint32_t n = order.head(); n != IndexList::kNull;
             n = order.next(n)) {
            const PolicyState *st = index.find(order.value(n));
            SIEVE_CHECK(st != nullptr,
                        "order-book block %llx is not resident",
                        static_cast<unsigned long long>(order.value(n)));
            SIEVE_CHECK(static_cast<uint32_t>(st->primary) == n,
                        "block %llx links node %llu, found at node %u",
                        static_cast<unsigned long long>(order.value(n)),
                        static_cast<unsigned long long>(st->primary), n);
            if (spec.kind == EvictionKind::Clock ||
                spec.kind == EvictionKind::Sieve)
                SIEVE_CHECK(st->secondary <= 1,
                            "reference/visited bit out of range");
            hand_seen = hand_seen || n == hand;
        }
        SIEVE_CHECK(hand_seen, "hand points outside the order book");
        break;
      }
      case EvictionKind::Lfu:
        index.forEach([&](uint64_t key, const PolicyState &st) {
            SIEVE_CHECK(st.primary >= 1,
                        "LFU count for %llx below one",
                        static_cast<unsigned long long>(key));
            SIEVE_CHECK(st.secondary < lfu_sequence,
                        "LFU sequence for %llx from the future",
                        static_cast<unsigned long long>(key));
        });
        break;
      case EvictionKind::Random:
        SIEVE_CHECK(pool.size() == index.size(),
                    "victim pool tracks %zu blocks, cache holds %zu",
                    pool.size(), index.size());
        for (size_t i = 0; i < pool.size(); ++i) {
            const PolicyState *st = index.find(pool[i]);
            SIEVE_CHECK(st != nullptr,
                        "pooled block %llx is not resident",
                        static_cast<unsigned long long>(pool[i]));
            SIEVE_CHECK(st->primary == i,
                        "block %llx records pool slot %llu, is at %zu",
                        static_cast<unsigned long long>(pool[i]),
                        static_cast<unsigned long long>(st->primary), i);
        }
        break;
      case EvictionKind::Arc:
        SIEVE_CHECK(order.size() + order2.size() == index.size(),
                    "ARC lists track %zu + %zu blocks, cache holds %zu",
                    order.size(), order2.size(), index.size());
        checkArena(order, 1);
        checkArena(order2, 2);
        SIEVE_CHECK(arc_p <= capacity_blocks,
                    "ARC target %llu exceeds capacity %llu",
                    static_cast<unsigned long long>(arc_p),
                    static_cast<unsigned long long>(capacity_blocks));
        ghost_recent->checkInvariants();
        ghost_frequent->checkInvariants();
        // A resident key must never appear in a ghost directory:
        // every path into residency erases its ghost entry first.
        index.forEach([&](uint64_t key, const PolicyState &) {
            SIEVE_CHECK(!ghost_recent->contains(key) &&
                                !ghost_frequent->contains(key),
                        "resident block %llx in a ghost directory",
                        static_cast<unsigned long long>(key));
        });
        break;
      case EvictionKind::TinyLfu:
        SIEVE_CHECK(order.size() + order2.size() + order3.size() ==
                            index.size(),
                    "TinyLFU segments track %zu + %zu + %zu blocks, "
                    "cache holds %zu",
                    order.size(), order2.size(), order3.size(),
                    index.size());
        SIEVE_CHECK(order.size() <= tlfu.window_cap,
                    "window holds %zu blocks, cap is %llu",
                    order.size(),
                    static_cast<unsigned long long>(tlfu.window_cap));
        SIEVE_CHECK(order3.size() <= tlfu.protected_cap,
                    "protected segment holds %zu blocks, cap is %llu",
                    order3.size(),
                    static_cast<unsigned long long>(
                            tlfu.protected_cap));
        checkArena(order, 0);
        checkArena(order2, 1);
        checkArena(order3, 2);
        sketch->checkInvariants();
        ghost_recent->checkInvariants();
        break;
    }
}

} // namespace cache
} // namespace sievestore
