#include "cache/replacement.hpp"

#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace cache {

using trace::BlockId;

const char *
evictionKindName(EvictionKind kind)
{
    switch (kind) {
      case EvictionKind::Lru:
        return "LRU";
      case EvictionKind::Fifo:
        return "FIFO";
      case EvictionKind::Clock:
        return "CLOCK";
      case EvictionKind::Lfu:
        return "LFU";
      case EvictionKind::Random:
        return "Random";
    }
    SIEVE_UNREACHABLE("unknown EvictionKind");
}

// SIEVE_MAY_ALLOC (here and on the other Reference* insert hooks):
// the node-based reference engine allocates per insert by design.
// BlockCache's internal no-alloc regions are conditioned on the flat
// engine with no custom policy, so these paths only run unguarded;
// the flat counterparts (IndexList/FlatIndex) carry the real claims.
void SIEVE_MAY_ALLOC
ReferenceLruPolicy::onInsert(BlockId block)
{
    order.push_front(block);
    if (!where.emplace(block, order.begin()).second)
        util::panic("LRU: duplicate insert of block %llx",
                    static_cast<unsigned long long>(block));
}

void
ReferenceLruPolicy::onAccess(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("LRU: access to non-resident block");
    order.splice(order.begin(), order, it->second);
}

void
ReferenceLruPolicy::onErase(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("LRU: erase of non-resident block");
    order.erase(it->second);
    where.erase(it);
}

BlockId
ReferenceLruPolicy::victim()
{
    if (order.empty())
        util::panic("LRU: victim() on empty cache");
    return order.back();
}

uint64_t
ReferenceLruPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(where) +
           util::listFootprintBytes(order);
}

void
ReferenceFifoPolicy::onAccess(BlockId block)
{
    if (!where.count(block))
        util::panic("FIFO: access to non-resident block");
    // Insertion order is preserved: hits do not promote.
}

ReferenceRandomPolicy::ReferenceRandomPolicy(uint64_t seed)
    : rng(seed)
{
}

void SIEVE_MAY_ALLOC
ReferenceRandomPolicy::onInsert(BlockId block)
{
    if (!index.emplace(block, pool.size()).second)
        util::panic("Random: duplicate insert");
    pool.push_back(block);
}

void
ReferenceRandomPolicy::onAccess(BlockId block)
{
    if (!index.count(block))
        util::panic("Random: access to non-resident block");
}

void
ReferenceRandomPolicy::onErase(BlockId block)
{
    const auto it = index.find(block);
    if (it == index.end())
        util::panic("Random: erase of non-resident block");
    const size_t pos = it->second;
    const BlockId last = pool.back();
    pool[pos] = last;
    index[last] = pos;
    pool.pop_back();
    index.erase(it);
}

BlockId
ReferenceRandomPolicy::victim()
{
    if (pool.empty())
        util::panic("Random: victim() on empty cache");
    return pool[rng.nextBelow(pool.size())];
}

uint64_t
ReferenceRandomPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(index) +
           util::vectorFootprintBytes(pool);
}

void SIEVE_MAY_ALLOC
ReferenceLfuPolicy::onInsert(BlockId block)
{
    if (!entries.emplace(block, Entry{1, next_sequence++}).second)
        util::panic("LFU: duplicate insert");
}

void
ReferenceLfuPolicy::onAccess(BlockId block)
{
    const auto it = entries.find(block);
    if (it == entries.end())
        util::panic("LFU: access to non-resident block");
    ++it->second.count;
}

void
ReferenceLfuPolicy::onErase(BlockId block)
{
    if (!entries.erase(block))
        util::panic("LFU: erase of non-resident block");
}

BlockId
ReferenceLfuPolicy::victim()
{
    if (entries.empty())
        util::panic("LFU: victim() on empty cache");
    // Linear scan; LFU is a reference policy, not a hot path.
    const std::pair<const BlockId, Entry> *best = nullptr;
    for (const auto &kv : entries) {
        if (!best || kv.second.count < best->second.count ||
            (kv.second.count == best->second.count &&
             kv.second.sequence < best->second.sequence)) {
            best = &kv;
        }
    }
    return best->first;
}

uint64_t
ReferenceLfuPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(entries);
}

void SIEVE_MAY_ALLOC
ReferenceClockPolicy::onInsert(BlockId block)
{
    // Insert behind the hand so the new entry is inspected last.
    const auto pos = hand == ring.end() ? ring.end() : hand;
    const auto it = ring.insert(pos, Entry{block, true});
    if (!where.emplace(block, it).second)
        util::panic("CLOCK: duplicate insert");
}

void
ReferenceClockPolicy::onAccess(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("CLOCK: access to non-resident block");
    it->second->referenced = true;
}

void
ReferenceClockPolicy::onErase(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("CLOCK: erase of non-resident block");
    if (hand == it->second)
        ++hand;
    ring.erase(it->second);
    where.erase(it);
}

BlockId
ReferenceClockPolicy::victim()
{
    if (ring.empty())
        util::panic("CLOCK: victim() on empty cache");
    while (true) {
        if (hand == ring.end())
            hand = ring.begin();
        if (hand->referenced) {
            hand->referenced = false;
            ++hand;
        } else {
            return hand->block;
        }
    }
}

uint64_t
ReferenceClockPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(where) +
           util::listFootprintBytes(ring);
}

void
OracleRetainPolicy::setProtected(
        std::unordered_set<BlockId> protected_set)
{
    protected_blocks = std::move(protected_set);
}

BlockId
OracleRetainPolicy::victim()
{
    if (order.empty())
        util::panic("OracleRetain: victim() on empty cache");
    // Scan from the cold end; protected blocks encountered there are
    // rotated to the hot end so repeated evictions do not rescan them
    // (amortized O(1) per eviction). They are protected anyway, so the
    // promotion cannot change which blocks survive.
    size_t scanned = 0;
    const size_t limit = order.size();
    while (scanned++ < limit) {
        const auto cold = std::prev(order.end());
        if (!protected_blocks.count(*cold))
            return *cold;
        order.splice(order.begin(), order, cold);
    }
    // Everything is protected: fall back to plain LRU.
    return order.back();
}

uint64_t
OracleRetainPolicy::memoryBytes() const
{
    return ReferenceLruPolicy::memoryBytes() +
           util::unorderedFootprintBytes(protected_blocks);
}

std::unique_ptr<ReplacementPolicy>
makeReferencePolicy(EvictionSpec spec)
{
    switch (spec.kind) {
      case EvictionKind::Lru:
        return std::make_unique<ReferenceLruPolicy>();
      case EvictionKind::Fifo:
        return std::make_unique<ReferenceFifoPolicy>();
      case EvictionKind::Clock:
        return std::make_unique<ReferenceClockPolicy>();
      case EvictionKind::Lfu:
        return std::make_unique<ReferenceLfuPolicy>();
      case EvictionKind::Random:
        return std::make_unique<ReferenceRandomPolicy>(spec.seed);
    }
    SIEVE_UNREACHABLE("unknown EvictionKind");
}

} // namespace cache
} // namespace sievestore
