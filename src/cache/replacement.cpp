#include "cache/replacement.hpp"

#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace cache {

using trace::BlockId;

const char *
evictionKindName(EvictionKind kind)
{
    switch (kind) {
      case EvictionKind::Lru:
        return "LRU";
      case EvictionKind::Fifo:
        return "FIFO";
      case EvictionKind::Clock:
        return "CLOCK";
      case EvictionKind::Lfu:
        return "LFU";
      case EvictionKind::Random:
        return "Random";
      case EvictionKind::Sieve:
        return "SIEVE";
      case EvictionKind::Arc:
        return "ARC";
      case EvictionKind::TinyLfu:
        return "W-TinyLFU";
    }
    SIEVE_UNREACHABLE("unknown EvictionKind");
}

// SIEVE_MAY_ALLOC (here and on the other Reference* insert hooks):
// the node-based reference engine allocates per insert by design.
// BlockCache's internal no-alloc regions are conditioned on the flat
// engine with no custom policy, so these paths only run unguarded;
// the flat counterparts (IndexList/FlatIndex) carry the real claims.
void SIEVE_MAY_ALLOC
ReferenceLruPolicy::onInsert(BlockId block)
{
    order.push_front(block);
    if (!where.emplace(block, order.begin()).second)
        util::panic("LRU: duplicate insert of block %llx",
                    static_cast<unsigned long long>(block));
}

void
ReferenceLruPolicy::onAccess(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("LRU: access to non-resident block");
    order.splice(order.begin(), order, it->second);
}

void
ReferenceLruPolicy::onErase(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("LRU: erase of non-resident block");
    order.erase(it->second);
    where.erase(it);
}

BlockId
ReferenceLruPolicy::victim()
{
    if (order.empty())
        util::panic("LRU: victim() on empty cache");
    return order.back();
}

uint64_t
ReferenceLruPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(where) +
           util::listFootprintBytes(order);
}

void
ReferenceFifoPolicy::onAccess(BlockId block)
{
    if (!where.count(block))
        util::panic("FIFO: access to non-resident block");
    // Insertion order is preserved: hits do not promote.
}

ReferenceRandomPolicy::ReferenceRandomPolicy(uint64_t seed)
    : rng(seed)
{
}

void SIEVE_MAY_ALLOC
ReferenceRandomPolicy::onInsert(BlockId block)
{
    if (!index.emplace(block, pool.size()).second)
        util::panic("Random: duplicate insert");
    pool.push_back(block);
}

void
ReferenceRandomPolicy::onAccess(BlockId block)
{
    if (!index.count(block))
        util::panic("Random: access to non-resident block");
}

void
ReferenceRandomPolicy::onErase(BlockId block)
{
    const auto it = index.find(block);
    if (it == index.end())
        util::panic("Random: erase of non-resident block");
    const size_t pos = it->second;
    const BlockId last = pool.back();
    pool[pos] = last;
    index[last] = pos;
    pool.pop_back();
    index.erase(it);
}

BlockId
ReferenceRandomPolicy::victim()
{
    if (pool.empty())
        util::panic("Random: victim() on empty cache");
    return pool[rng.nextBelow(pool.size())];
}

uint64_t
ReferenceRandomPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(index) +
           util::vectorFootprintBytes(pool);
}

void SIEVE_MAY_ALLOC
ReferenceLfuPolicy::onInsert(BlockId block)
{
    if (!entries.emplace(block, Entry{1, next_sequence++}).second)
        util::panic("LFU: duplicate insert");
}

void
ReferenceLfuPolicy::onAccess(BlockId block)
{
    const auto it = entries.find(block);
    if (it == entries.end())
        util::panic("LFU: access to non-resident block");
    ++it->second.count;
}

void
ReferenceLfuPolicy::onErase(BlockId block)
{
    if (!entries.erase(block))
        util::panic("LFU: erase of non-resident block");
}

BlockId
ReferenceLfuPolicy::victim()
{
    if (entries.empty())
        util::panic("LFU: victim() on empty cache");
    // Linear scan; LFU is a reference policy, not a hot path.
    const std::pair<const BlockId, Entry> *best = nullptr;
    for (const auto &kv : entries) {
        if (!best || kv.second.count < best->second.count ||
            (kv.second.count == best->second.count &&
             kv.second.sequence < best->second.sequence)) {
            best = &kv;
        }
    }
    return best->first;
}

uint64_t
ReferenceLfuPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(entries);
}

void SIEVE_MAY_ALLOC
ReferenceClockPolicy::onInsert(BlockId block)
{
    // Insert behind the hand so the new entry is inspected last.
    const auto pos = hand == ring.end() ? ring.end() : hand;
    const auto it = ring.insert(pos, Entry{block, true});
    if (!where.emplace(block, it).second)
        util::panic("CLOCK: duplicate insert");
}

void
ReferenceClockPolicy::onAccess(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("CLOCK: access to non-resident block");
    it->second->referenced = true;
}

void
ReferenceClockPolicy::onErase(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("CLOCK: erase of non-resident block");
    if (hand == it->second)
        ++hand;
    ring.erase(it->second);
    where.erase(it);
}

BlockId
ReferenceClockPolicy::victim()
{
    if (ring.empty())
        util::panic("CLOCK: victim() on empty cache");
    while (true) {
        if (hand == ring.end())
            hand = ring.begin();
        if (hand->referenced) {
            hand->referenced = false;
            ++hand;
        } else {
            return hand->block;
        }
    }
}

uint64_t
ReferenceClockPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(where) +
           util::listFootprintBytes(ring);
}

void SIEVE_MAY_ALLOC
ReferenceSievePolicy::onInsert(BlockId block)
{
    queue.push_front(block);
    if (!where.emplace(block, Entry{queue.begin(), false}).second)
        util::panic("SIEVE: duplicate insert of block %llx",
                    static_cast<unsigned long long>(block));
}

void
ReferenceSievePolicy::onAccess(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("SIEVE: access to non-resident block");
    it->second.visited = true;
}

void
ReferenceSievePolicy::onErase(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("SIEVE: erase of non-resident block");
    if (hand == it->second.it)
        hand = stepTowardHead(hand);
    queue.erase(it->second.it);
    where.erase(it);
}

BlockId
ReferenceSievePolicy::victim()
{
    if (queue.empty())
        util::panic("SIEVE: victim() on empty cache");
    auto it = hand;
    while (true) {
        if (it == queue.end())
            it = std::prev(queue.end()); // (re)start from the tail
        Entry &entry = where.find(*it)->second;
        if (entry.visited) {
            entry.visited = false;
            it = stepTowardHead(it);
        } else {
            hand = stepTowardHead(it);
            return *it;
        }
    }
}

uint64_t
ReferenceSievePolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(where) +
           util::listFootprintBytes(queue);
}

ReferenceArcPolicy::ReferenceArcPolicy(uint64_t capacity_blocks)
    : capacity(capacity_blocks), b1(capacity_blocks),
      b2(capacity_blocks)
{
}

void
ReferenceArcPolicy::adapt(BlockId incoming)
{
    const bool in_b1 = b1.contains(incoming);
    const bool in_b2 = !in_b1 && b2.contains(incoming);
    last_in_b2 = in_b2;
    if (in_b1) {
        const uint64_t delta =
            std::max<uint64_t>(1, b2.size() / b1.size());
        p = std::min(capacity, p + delta);
        b1.erase(incoming);
        to_t2 = true;
    } else if (in_b2) {
        const uint64_t delta =
            std::max<uint64_t>(1, b1.size() / b2.size());
        p = p > delta ? p - delta : 0;
        b2.erase(incoming);
        to_t2 = true;
    } else {
        to_t2 = false;
    }
    prepared = true;
}

void SIEVE_MAY_ALLOC
ReferenceArcPolicy::onInsert(BlockId block)
{
    // batchReplace installs (and below-capacity warmup) reach here
    // without a victimFor call; run the ghost-hit adaptation now.
    if (!prepared)
        adapt(block);
    prepared = false;
    auto &list = to_t2 ? t2 : t1;
    list.push_front(block);
    if (!where
             .emplace(block,
                      Entry{static_cast<uint8_t>(to_t2 ? 2 : 1),
                            list.begin()})
             .second)
        util::panic("ARC: duplicate insert of block %llx",
                    static_cast<unsigned long long>(block));
}

void
ReferenceArcPolicy::onAccess(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("ARC: access to non-resident block");
    if (it->second.list_id == 1) {
        // First re-reference: promote T1 -> T2 MRU.
        t2.splice(t2.begin(), t1, it->second.it);
        it->second.list_id = 2;
    } else {
        t2.splice(t2.begin(), t2, it->second.it);
    }
}

void
ReferenceArcPolicy::onErase(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("ARC: erase of non-resident block");
    const bool was_t1 = it->second.list_id == 1;
    (was_t1 ? t1 : t2).erase(it->second.it);
    where.erase(it);
    if (suppress_ghost) {
        suppress_ghost = false;
        return;
    }
    (was_t1 ? b1 : b2).insert(block);
}

BlockId
ReferenceArcPolicy::victim()
{
    // Adaptation-free REPLACE peek; real evictions flow through
    // victimFor so ghost hits can steer p first.
    if (where.empty())
        util::panic("ARC: victim() on empty cache");
    if (!t1.empty() && (t2.empty() || t1.size() > p))
        return t1.back();
    return t2.back();
}

BlockId
ReferenceArcPolicy::victimFor(BlockId incoming)
{
    if (where.empty())
        util::panic("ARC: victimFor() on empty cache");
    adapt(incoming);
    if (!to_t2) {
        // Case IV: the incoming key is in neither ghost directory, so
        // make directory room per the paper (>= instead of == guards
        // the transient L1 overshoot a batchReplace refill creates).
        const uint64_t l1 = t1.size() + b1.size();
        if (l1 >= capacity) {
            if (t1.size() < capacity) {
                b1.popOldest();
            } else {
                // T1 alone fills the cache: evict its LRU with no
                // ghost record (the canonical IV(a) inner arm).
                suppress_ghost = true;
                return t1.back();
            }
        } else if (t1.size() + t2.size() + b1.size() + b2.size() >=
                   2 * capacity) {
            b2.popOldest();
        }
    }
    // REPLACE(x, p): pick the side whose share exceeds its target.
    if (!t1.empty() &&
        (t2.empty() || t1.size() > p ||
         (last_in_b2 && t1.size() == p)))
        return t1.back();
    return t2.back();
}

uint64_t
ReferenceArcPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(where) +
           util::listFootprintBytes(t1) + util::listFootprintBytes(t2) +
           b1.memoryBytes() + b2.memoryBytes();
}

ReferenceTinyLfuPolicy::ReferenceTinyLfuPolicy(uint64_t capacity_blocks,
                                               uint64_t seed)
    : window_cap(0), protected_cap(0), sketch(capacity_blocks, seed),
      rejected(std::max<uint64_t>(1, capacity_blocks))
{
    const TinyLfuShape shape = tinyLfuShape(capacity_blocks);
    window_cap = shape.window_cap;
    protected_cap = shape.protected_cap;
}

std::list<BlockId> &
ReferenceTinyLfuPolicy::segmentList(Segment segment)
{
    switch (segment) {
      case kWindow:
        return window;
      case kProbation:
        return probation;
      case kProtected:
        return protected_seg;
    }
    SIEVE_UNREACHABLE("unknown TinyLFU segment");
}

void SIEVE_MAY_ALLOC
ReferenceTinyLfuPolicy::onInsert(BlockId block)
{
    sketch.add(block);
    // A key we rejected recently gets a second sketch vote, so a
    // prompt re-reference can win the next admission contest.
    if (rejected.erase(block))
        sketch.add(block);
    window.push_front(block);
    if (!where.emplace(block, Entry{kWindow, window.begin()}).second)
        util::panic("W-TinyLFU: duplicate insert of block %llx",
                    static_cast<unsigned long long>(block));
    if (window.size() > window_cap) {
        // Below-capacity growth: window overflow drains into
        // probation (at capacity victimFor already made room, so the
        // window lands exactly on its cap).
        const BlockId demoted = window.back();
        probation.splice(probation.begin(), window,
                         std::prev(window.end()));
        where[demoted].segment = kProbation;
    }
}

void
ReferenceTinyLfuPolicy::onAccess(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("W-TinyLFU: access to non-resident block");
    sketch.add(block);
    switch (it->second.segment) {
      case kWindow:
        window.splice(window.begin(), window, it->second.it);
        break;
      case kProbation:
        // Promote into protected; over-cap demotes the protected LRU
        // back to probation MRU (at protected_cap == 0 the promoted
        // block demotes itself, netting a probation move-to-front).
        protected_seg.splice(protected_seg.begin(), probation,
                             it->second.it);
        it->second.segment = kProtected;
        if (protected_seg.size() > protected_cap) {
            const BlockId demoted = protected_seg.back();
            probation.splice(probation.begin(), protected_seg,
                             std::prev(protected_seg.end()));
            where[demoted].segment = kProbation;
        }
        break;
      case kProtected:
        protected_seg.splice(protected_seg.begin(), protected_seg,
                             it->second.it);
        break;
    }
}

void
ReferenceTinyLfuPolicy::onErase(BlockId block)
{
    const auto it = where.find(block);
    if (it == where.end())
        util::panic("W-TinyLFU: erase of non-resident block");
    segmentList(it->second.segment).erase(it->second.it);
    where.erase(it);
}

BlockId
ReferenceTinyLfuPolicy::victim()
{
    if (where.empty())
        util::panic("W-TinyLFU: victim() on empty cache");
    if (window.empty()) {
        // Degenerate shape (external erases drained the window):
        // evict from the main region directly.
        return probation.empty() ? protected_seg.back()
                                 : probation.back();
    }
    const BlockId candidate = window.back();
    if (probation.empty() && protected_seg.empty())
        return candidate;
    const BlockId main_victim =
        probation.empty() ? protected_seg.back() : probation.back();
    if (sketch.estimate(candidate) > sketch.estimate(main_victim)) {
        // Candidate admitted: it takes the main region's place and
        // the main victim is evicted.
        probation.splice(probation.begin(), window,
                         std::prev(window.end()));
        where[candidate].segment = kProbation;
        return main_victim;
    }
    rejected.insert(candidate);
    return candidate;
}

uint64_t
ReferenceTinyLfuPolicy::memoryBytes() const
{
    return util::unorderedFootprintBytes(where) +
           util::listFootprintBytes(window) +
           util::listFootprintBytes(probation) +
           util::listFootprintBytes(protected_seg) +
           sketch.memoryBytes() + rejected.memoryBytes();
}

void
OracleRetainPolicy::setProtected(
        std::unordered_set<BlockId> protected_set)
{
    protected_blocks = std::move(protected_set);
}

BlockId
OracleRetainPolicy::victim()
{
    if (order.empty())
        util::panic("OracleRetain: victim() on empty cache");
    // Scan from the cold end; protected blocks encountered there are
    // rotated to the hot end so repeated evictions do not rescan them
    // (amortized O(1) per eviction). They are protected anyway, so the
    // promotion cannot change which blocks survive.
    size_t scanned = 0;
    const size_t limit = order.size();
    while (scanned++ < limit) {
        const auto cold = std::prev(order.end());
        if (!protected_blocks.count(*cold))
            return *cold;
        order.splice(order.begin(), order, cold);
    }
    // Everything is protected: fall back to plain LRU.
    return order.back();
}

uint64_t
OracleRetainPolicy::memoryBytes() const
{
    return ReferenceLruPolicy::memoryBytes() +
           util::unorderedFootprintBytes(protected_blocks);
}

std::unique_ptr<ReplacementPolicy>
makeReferencePolicy(EvictionSpec spec, uint64_t capacity_blocks)
{
    switch (spec.kind) {
      case EvictionKind::Lru:
        return std::make_unique<ReferenceLruPolicy>();
      case EvictionKind::Fifo:
        return std::make_unique<ReferenceFifoPolicy>();
      case EvictionKind::Clock:
        return std::make_unique<ReferenceClockPolicy>();
      case EvictionKind::Lfu:
        return std::make_unique<ReferenceLfuPolicy>();
      case EvictionKind::Random:
        return std::make_unique<ReferenceRandomPolicy>(spec.seed);
      case EvictionKind::Sieve:
        return std::make_unique<ReferenceSievePolicy>();
      case EvictionKind::Arc:
        return std::make_unique<ReferenceArcPolicy>(capacity_blocks);
      case EvictionKind::TinyLfu:
        return std::make_unique<ReferenceTinyLfuPolicy>(
            capacity_blocks, spec.seed);
    }
    SIEVE_UNREACHABLE("unknown EvictionKind");
}

} // namespace cache
} // namespace sievestore
