#include "cache/belady.hpp"

#include <algorithm>
#include <queue>

#include "util/logging.hpp"

namespace sievestore {
namespace cache {

using trace::BlockId;

FutureIndex::FutureIndex(const std::vector<BlockId> &stream)
{
    for (size_t i = 0; i < stream.size(); ++i)
        positions[stream[i]].push_back(i);
}

size_t
FutureIndex::nextUse(BlockId block, size_t after) const
{
    const auto it = positions.find(block);
    if (it == positions.end())
        return kNever;
    const auto &vec = it->second;
    const auto pos = std::upper_bound(vec.begin(), vec.end(), after);
    return pos == vec.end() ? kNever : *pos;
}

namespace {

/**
 * Shared engine for the two Belady variants. Maintains, for each cached
 * block, its next-use position (exact, refreshed on every touch) and a
 * lazily-validated max-heap for victim selection.
 */
class BeladyEngine
{
  public:
    BeladyEngine(const std::vector<BlockId> &stream_, uint64_t capacity_)
        : stream(stream_), future(stream_), capacity(capacity_)
    {
        if (capacity == 0)
            util::fatal("Belady simulation requires capacity >= 1");
    }

    OfflineSimResult
    run(bool selective)
    {
        OfflineSimResult result;
        result.accesses = stream.size();
        for (size_t i = 0; i < stream.size(); ++i) {
            const BlockId b = stream[i];
            const auto it = next_use.find(b);
            if (it != next_use.end()) {
                ++result.hits;
                touch(b, i);
                continue;
            }
            const size_t nb = future.nextUse(b, i);
            if (next_use.size() < capacity) {
                allocate(b, nb, result);
                continue;
            }
            const BlockId v = victim();
            if (!selective) {
                evict(v);
                allocate(b, nb, result);
                continue;
            }
            // Selective allocation: allocate only if b's next use is
            // earlier than the next use of some cached block.
            if (nb < next_use[v]) {
                evict(v);
                allocate(b, nb, result);
            }
            // Otherwise bypass: serve from backing store, no allocation.
        }
        return result;
    }

  private:
    void
    touch(BlockId b, size_t i)
    {
        const size_t n = future.nextUse(b, i);
        next_use[b] = n;
        heap.push({n, b});
    }

    void
    allocate(BlockId b, size_t nb, OfflineSimResult &result)
    {
        next_use.emplace(b, nb);
        heap.push({nb, b});
        ++result.allocation_writes;
    }

    void
    evict(BlockId v)
    {
        next_use.erase(v);
    }

    BlockId
    victim()
    {
        while (!heap.empty()) {
            const auto [n, b] = heap.top();
            const auto it = next_use.find(b);
            if (it == next_use.end() || it->second != n) {
                heap.pop(); // stale entry
                continue;
            }
            return b;
        }
        util::panic("Belady: victim() with empty heap");
    }

    const std::vector<BlockId> &stream;
    FutureIndex future;
    uint64_t capacity;
    std::unordered_map<BlockId, size_t> next_use;
    /** (next_use, block); farthest next use on top. */
    std::priority_queue<std::pair<size_t, BlockId>> heap;
};

} // namespace

OfflineSimResult
simulateBeladyMin(const std::vector<BlockId> &stream, uint64_t capacity)
{
    return BeladyEngine(stream, capacity).run(false);
}

OfflineSimResult
simulateBeladySelective(const std::vector<BlockId> &stream,
                        uint64_t capacity)
{
    return BeladyEngine(stream, capacity).run(true);
}

OfflineSimResult
simulateFixedSet(const std::vector<BlockId> &stream,
                 const std::unordered_set<BlockId> &pinned)
{
    OfflineSimResult result;
    result.accesses = stream.size();
    result.allocation_writes = pinned.size();
    for (BlockId b : stream)
        if (pinned.count(b))
            ++result.hits;
    return result;
}

} // namespace cache
} // namespace sievestore
