/**
 * @file
 * Ghost cache: a fixed-budget set of recently-evicted (or
 * recently-rejected) block keys, the shared substrate of the policy
 * fabric's history-driven kinds.
 *
 * ARC's B1/B2 directories, W-TinyLFU's rejected-candidate boost, and
 * the adaptive sieve's shadow residency sets are all "was this key
 * here recently?" questions over a bounded key population. GhostCache
 * answers them with the repo's flat-memory idiom: a robin-hood
 * FlatIndex maps key -> recency node, an IndexList arena keeps the
 * recency order (front = most recent), and both structures are
 * reserved to the budget at construction, so steady-state insert /
 * refresh / evict-oldest never allocates and never rehashes —
 * ghost maintenance can run inside the appliance's batch-level
 * no-alloc regions.
 *
 * Inserting at budget evicts the oldest entry first, so size() can
 * never exceed budget() no matter how many evictions a batchReplace
 * pours in. The footprint is charged through memoryBytes() like every
 * other policy structure (the sieve-lint ghost-charge rule enforces
 * that every embedding class audits it).
 */

#ifndef SIEVESTORE_CACHE_GHOST_CACHE_HPP
#define SIEVESTORE_CACHE_GHOST_CACHE_HPP

#include <optional>

#include "trace/block.hpp"
#include "util/flat_index.hpp"
#include "util/flow_annotations.hpp"

namespace sievestore {
namespace cache {

/** Bounded recency set of block keys (no payload blocks cached). */
class GhostCache
{
  public:
    /** @param budget maximum tracked keys (>= 1); both the index and
     *  the recency arena are reserved for it up front. */
    explicit GhostCache(uint64_t budget);

    /** Membership test with no side effects. */
    bool contains(trace::BlockId block) const;

    /**
     * Record `block` as the most recent key: a present key is
     * refreshed to the front, a new key is inserted (evicting the
     * oldest entry first when at budget).
     * @retval true if the key was newly inserted
     * Taint sink: ghost state steers eviction/adaptation decisions,
     * so measured data must never reach it.
     */
    SIEVE_TAINT_SINK bool insert(trace::BlockId block);

    /** Drop a key. @retval true if it was present. */
    SIEVE_TAINT_SINK bool erase(trace::BlockId block);

    /**
     * Drop the oldest key (ARC's directory-trimming deletes).
     * @retval the dropped key, or no value if empty
     */
    SIEVE_TAINT_SINK std::optional<trace::BlockId> popOldest();

    /** Oldest tracked key. @pre not empty. */
    trace::BlockId oldest() const;

    uint64_t size() const { return index_.size(); }
    uint64_t budget() const { return budget_; }
    bool empty() const { return index_.empty(); }

    /** Forget everything (budget and reservations are kept). */
    void clear();

    /** Index + recency-arena footprint (util/footprint.hpp
     * convention); constant after construction by design. */
    uint64_t memoryBytes() const;

    /**
     * Audit the ghost: size never exceeds budget, the index and the
     * recency list track exactly the same keys, and every slot's node
     * link points back at its key. O(size); aborts on violation.
     */
    void checkInvariants() const;

  private:
    /** key -> recency node index in order_. */
    util::FlatIndex<uint32_t> index_;
    /** Recency order, front = most recent. */
    util::IndexList order_;
    uint64_t budget_;
};

} // namespace cache
} // namespace sievestore

#endif // SIEVESTORE_CACHE_GHOST_CACHE_HPP
