/**
 * @file
 * Replacement policies for the block cache.
 *
 * The paper's continuous configurations (SieveStore-C, AOD, WMNA) all
 * use a fully-associative LRU cache (Section 4); SieveStore-D performs
 * no within-epoch replacement. The hot path no longer lives here: the
 * built-in policies (LRU, FIFO, CLOCK, LFU, Random) are implemented
 * flat inside BlockCache, selected by EvictionSpec, with per-block
 * state inline in the shared block index (util/flat_index.hpp).
 *
 * This header keeps two kinds of virtual policies:
 *
 *  - Reference* classes: the original node-based (std::list +
 *    unordered_map) implementations, retained verbatim as the ground
 *    truth for the differential suite (test_flat_cache_differential)
 *    and selected cache-wide by the SIEVE_FLAT_CACHE=OFF build flag.
 *  - OracleRetainPolicy: the Section 3.1 oracle, which needs per-day
 *    protected-set state that does not fit a POD slot payload.
 *
 * The extra policies support the Section 3.1 analysis: OracleRetain
 * models the "ideal (oracle) replacement policy [that] evicts only
 * those blocks that are not in the top 1% frequently accessed blocks"
 * (the LTR-like policy of [15]), and Belady MIN lives in belady.hpp.
 */

#ifndef SIEVESTORE_CACHE_REPLACEMENT_HPP
#define SIEVESTORE_CACHE_REPLACEMENT_HPP

#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/block.hpp"
#include "util/flow_annotations.hpp"
#include "util/random.hpp"

namespace sievestore {
namespace cache {

/** Built-in eviction policy, implemented flat inside BlockCache. */
enum class EvictionKind
{
    Lru,
    Fifo,
    Clock,
    Lfu,
    Random,
};

/** Human-readable name ("LRU", "FIFO", ...). */
const char *evictionKindName(EvictionKind kind);

/** Selects and parameterizes a built-in eviction policy. */
struct EvictionSpec
{
    EvictionKind kind = EvictionKind::Lru;
    /** Rng seed; consumed by Random only. */
    uint64_t seed = 1;
};

/**
 * Victim-selection strategy. The policy tracks exactly the set of
 * resident blocks, mirrored by BlockCache: onInsert/onErase bracket
 * residency and onAccess observes hits.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    // Taint sinks: victim selection state must never see measured
    // data (the observe-never-decide storage contract).
    /** A block became resident. */
    virtual SIEVE_TAINT_SINK void onInsert(trace::BlockId block) = 0;
    /** A resident block was accessed (hit). */
    virtual SIEVE_TAINT_SINK void onAccess(trace::BlockId block) = 0;
    /** A resident block was removed (eviction or batch replace). */
    virtual SIEVE_TAINT_SINK void onErase(trace::BlockId block) = 0;
    /** Choose the next victim. @pre at least one resident block. */
    virtual trace::BlockId victim() = 0;
    /** Human-readable policy name. */
    virtual const char *name() const = 0;

    /** Number of blocks the policy currently tracks (audit hook). */
    virtual size_t size() const = 0;
    /** True if the policy tracks `block` (audit hook). */
    virtual bool contains(trace::BlockId block) const = 0;

    /**
     * Policy bookkeeping footprint (util/footprint.hpp convention).
     * BlockCache adds this to its residency-index cost so flat and
     * reference builds report comparable totals.
     */
    virtual uint64_t memoryBytes() const = 0;
};

/**
 * Least-recently-used, node-based reference implementation (the
 * paper's common policy; the flat engine in BlockCache is the
 * production path).
 */
class ReferenceLruPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "LRU"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  protected:
    /** Recency list, most-recent at front. */
    std::list<trace::BlockId> order;
    std::unordered_map<trace::BlockId, std::list<trace::BlockId>::iterator>
        where;
};

/** First-in-first-out: insertion order, hits do not promote. */
class ReferenceFifoPolicy : public ReferenceLruPolicy
{
  public:
    void onAccess(trace::BlockId block) override;
    const char *name() const override { return "FIFO"; }
};

/** Uniform-random victim (reference implementation). */
class ReferenceRandomPolicy : public ReplacementPolicy
{
  public:
    explicit ReferenceRandomPolicy(uint64_t seed = 1);

    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "Random"; }
    size_t size() const override { return pool.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return index.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  private:
    std::vector<trace::BlockId> pool;
    std::unordered_map<trace::BlockId, size_t> index;
    util::Rng rng;
};

/**
 * Least-frequently-used with FIFO tie-break (reference counting),
 * reference implementation.
 */
class ReferenceLfuPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "LFU"; }
    size_t size() const override { return entries.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return entries.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  private:
    struct Entry
    {
        uint64_t count;
        uint64_t sequence;
    };
    std::unordered_map<trace::BlockId, Entry> entries;
    uint64_t next_sequence = 0;
};

/**
 * CLOCK (second-chance): the classic approximation of LRU used by
 * production buffer caches. Blocks sit on a circular list with a
 * reference bit; the hand clears bits until it finds an unreferenced
 * victim. Included as a realistic deployment alternative to the
 * simulator's exact LRU. Reference implementation.
 */
class ReferenceClockPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "CLOCK"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  private:
    struct Entry
    {
        trace::BlockId block;
        bool referenced;
    };
    /** Circular buffer of entries; erased slots are tombstoned. */
    std::list<Entry> ring;
    std::unordered_map<trace::BlockId, std::list<Entry>::iterator>
        where;
    std::list<Entry>::iterator hand = ring.end();
};

/**
 * Oracle retain-set policy (Section 3.1): never evicts a block in the
 * protected set while an unprotected block exists; falls back to LRU
 * among unprotected blocks, then among protected ones. The protected
 * set (e.g. the day's top-1 % blocks) is installed by the experiment
 * before replaying the day.
 */
class OracleRetainPolicy : public ReferenceLruPolicy
{
  public:
    /** Replace the protected set. */
    void setProtected(std::unordered_set<trace::BlockId> protected_set);

    trace::BlockId victim() override;
    const char *name() const override { return "OracleRetain"; }
    uint64_t memoryBytes() const override;

  private:
    std::unordered_set<trace::BlockId> protected_blocks;
};

/**
 * Reference (seed) implementation of a built-in policy, for the
 * differential suite and the SIEVE_FLAT_CACHE=OFF build.
 */
std::unique_ptr<ReplacementPolicy> makeReferencePolicy(EvictionSpec spec);

} // namespace cache
} // namespace sievestore

#endif // SIEVESTORE_CACHE_REPLACEMENT_HPP
