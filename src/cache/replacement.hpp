/**
 * @file
 * Replacement policies for the block cache.
 *
 * The paper's continuous configurations (SieveStore-C, AOD, WMNA) all
 * use a fully-associative LRU cache (Section 4); SieveStore-D performs
 * no within-epoch replacement. The hot path no longer lives here: the
 * built-in policies (LRU, FIFO, CLOCK, LFU, Random) are implemented
 * flat inside BlockCache, selected by EvictionSpec, with per-block
 * state inline in the shared block index (util/flat_index.hpp).
 *
 * This header keeps two kinds of virtual policies:
 *
 *  - Reference* classes: the original node-based (std::list +
 *    unordered_map) implementations, retained verbatim as the ground
 *    truth for the differential suite (test_flat_cache_differential)
 *    and selected cache-wide by the SIEVE_FLAT_CACHE=OFF build flag.
 *  - OracleRetainPolicy: the Section 3.1 oracle, which needs per-day
 *    protected-set state that does not fit a POD slot payload.
 *
 * The extra policies support the Section 3.1 analysis: OracleRetain
 * models the "ideal (oracle) replacement policy [that] evicts only
 * those blocks that are not in the top 1% frequently accessed blocks"
 * (the LTR-like policy of [15]), and Belady MIN lives in belady.hpp.
 */

#ifndef SIEVESTORE_CACHE_REPLACEMENT_HPP
#define SIEVESTORE_CACHE_REPLACEMENT_HPP

#include <algorithm>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/ghost_cache.hpp"
#include "trace/block.hpp"
#include "util/count_min.hpp"
#include "util/flow_annotations.hpp"
#include "util/random.hpp"

namespace sievestore {
namespace cache {

/** Built-in eviction policy, implemented flat inside BlockCache. */
enum class EvictionKind
{
    Lru,
    Fifo,
    Clock,
    Lfu,
    Random,
    /** SIEVE (NSDI'24): FIFO queue, visited bit, lazy hand sweeping
     * tail-to-head; hits never move blocks. */
    Sieve,
    /** ARC: T1/T2 resident lists with B1/B2 ghost directories driving
     * online recency/frequency adaptation. */
    Arc,
    /** W-TinyLFU: small admission window in front of an SLRU main
     * region, gated by a count-min frequency sketch. */
    TinyLfu,
};

/**
 * Number of built-in eviction kinds — the compile-time half of the
 * policy fabric's exhaustiveness guard. Every dispatch switch over
 * EvictionKind (BlockCache's policy transitions, the reference
 * factory, the name table) carries no default case, so -Werror's
 * -Wswitch turns an enumerator added without full wiring
 * (batchReplace, footprint, invariants) into a build break; this
 * count plus the assert below pin the enum's tail so the kind count
 * and the switches cannot drift apart silently.
 */
inline constexpr size_t kEvictionKindCount = 8;
static_assert(static_cast<size_t>(EvictionKind::TinyLfu) + 1 ==
                  kEvictionKindCount,
              "EvictionKind grew: bump kEvictionKindCount and wire the "
              "new kind through every dispatch switch (policy "
              "transitions, victim selection, batchReplace coverage, "
              "memoryBytes, checkInvariants, name table)");

/** Human-readable name ("LRU", "FIFO", ...). */
const char *evictionKindName(EvictionKind kind);

/** Selects and parameterizes a built-in eviction policy. */
struct EvictionSpec
{
    EvictionKind kind = EvictionKind::Lru;
    /** Rng seed; consumed by Random (victim draws) and TinyLfu
     * (sketch row seeds). */
    uint64_t seed = 1;
};

/**
 * Victim-selection strategy. The policy tracks exactly the set of
 * resident blocks, mirrored by BlockCache: onInsert/onErase bracket
 * residency and onAccess observes hits.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    // Taint sinks: victim selection state must never see measured
    // data (the observe-never-decide storage contract).
    /** A block became resident. */
    virtual SIEVE_TAINT_SINK void onInsert(trace::BlockId block) = 0;
    /** A resident block was accessed (hit). */
    virtual SIEVE_TAINT_SINK void onAccess(trace::BlockId block) = 0;
    /** A resident block was removed (eviction or batch replace). */
    virtual SIEVE_TAINT_SINK void onErase(trace::BlockId block) = 0;
    /** Choose the next victim. @pre at least one resident block. */
    virtual trace::BlockId victim() = 0;

    /**
     * Choose the victim that makes room for `incoming` (a key that is
     * about to become resident). History-driven policies (ARC) adapt
     * on the incoming key's ghost hits before picking a side; every
     * other policy ignores the hint and falls back to victim().
     */
    virtual trace::BlockId
    victimFor(trace::BlockId incoming)
    {
        (void)incoming;
        return victim();
    }

    /** Human-readable policy name. */
    virtual const char *name() const = 0;

    /** Number of blocks the policy currently tracks (audit hook). */
    virtual size_t size() const = 0;
    /** True if the policy tracks `block` (audit hook). */
    virtual bool contains(trace::BlockId block) const = 0;

    /**
     * Policy bookkeeping footprint (util/footprint.hpp convention).
     * BlockCache adds this to its residency-index cost so flat and
     * reference builds report comparable totals.
     */
    virtual uint64_t memoryBytes() const = 0;
};

/**
 * Least-recently-used, node-based reference implementation (the
 * paper's common policy; the flat engine in BlockCache is the
 * production path).
 */
class ReferenceLruPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "LRU"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  protected:
    /** Recency list, most-recent at front. */
    std::list<trace::BlockId> order;
    std::unordered_map<trace::BlockId, std::list<trace::BlockId>::iterator>
        where;
};

/** First-in-first-out: insertion order, hits do not promote. */
class ReferenceFifoPolicy : public ReferenceLruPolicy
{
  public:
    void onAccess(trace::BlockId block) override;
    const char *name() const override { return "FIFO"; }
};

/** Uniform-random victim (reference implementation). */
class ReferenceRandomPolicy : public ReplacementPolicy
{
  public:
    explicit ReferenceRandomPolicy(uint64_t seed = 1);

    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "Random"; }
    size_t size() const override { return pool.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return index.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  private:
    std::vector<trace::BlockId> pool;
    std::unordered_map<trace::BlockId, size_t> index;
    util::Rng rng;
};

/**
 * Least-frequently-used with FIFO tie-break (reference counting),
 * reference implementation.
 */
class ReferenceLfuPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "LFU"; }
    size_t size() const override { return entries.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return entries.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  private:
    struct Entry
    {
        uint64_t count;
        uint64_t sequence;
    };
    std::unordered_map<trace::BlockId, Entry> entries;
    uint64_t next_sequence = 0;
};

/**
 * CLOCK (second-chance): the classic approximation of LRU used by
 * production buffer caches. Blocks sit on a circular list with a
 * reference bit; the hand clears bits until it finds an unreferenced
 * victim. Included as a realistic deployment alternative to the
 * simulator's exact LRU. Reference implementation.
 */
class ReferenceClockPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "CLOCK"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  private:
    struct Entry
    {
        trace::BlockId block;
        bool referenced;
    };
    /** Circular buffer of entries; erased slots are tombstoned. */
    std::list<Entry> ring;
    std::unordered_map<trace::BlockId, std::list<Entry>::iterator>
        where;
    std::list<Entry>::iterator hand = ring.end();
};

/**
 * SIEVE (NSDI'24), node-based reference implementation. A FIFO queue
 * with one visited bit per block and a hand that sweeps from the tail
 * (oldest) toward the head: a visited block gets its bit cleared and
 * survives, the first unvisited block is the victim, and the hand
 * parks just past it for the next eviction. Hits only set the bit —
 * no list surgery — which is what makes the flat engine's batch path
 * payload-only.
 */
class ReferenceSievePolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "SIEVE"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  private:
    struct Entry
    {
        std::list<trace::BlockId>::iterator it;
        bool visited;
    };
    /** FIFO queue, newest at front. */
    std::list<trace::BlockId> queue;
    std::unordered_map<trace::BlockId, Entry> where;
    /** Sweep position; end() means "unset / wrapped past the head",
     * i.e. the next sweep starts from the tail. */
    std::list<trace::BlockId>::iterator hand = queue.end();

    /** One step toward the head; wraps to end() past the head. */
    std::list<trace::BlockId>::iterator
    stepTowardHead(std::list<trace::BlockId>::iterator it)
    {
        return it == queue.begin() ? queue.end() : std::prev(it);
    }
};

/**
 * ARC (FAST'03), node-based reference implementation. Residents split
 * into T1 (seen once) and T2 (seen twice+); evicted keys fall into the
 * B1/B2 ghost directories, and ghost hits move the adaptation target
 * p that REPLACE uses to pick which side gives up its LRU block. Uses
 * the same GhostCache class as the flat engine so directory trimming
 * is bit-identical across builds. Since the surrounding BlockCache
 * drives evictions (victimFor -> onErase) and insertions (onInsert)
 * as separate calls, the protocol is split across them: victimFor
 * adapts p and performs the Case IV ghost trims, onErase files the
 * victim into its ghost list, and onInsert lands the incoming key in
 * T1 or T2 according to the adaptation decision.
 */
class ReferenceArcPolicy : public ReplacementPolicy
{
  public:
    explicit ReferenceArcPolicy(uint64_t capacity_blocks);

    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    trace::BlockId victimFor(trace::BlockId incoming) override;
    const char *name() const override { return "ARC"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

    /** Adaptation target (audit/test hook); always in [0, c]. */
    uint64_t target() const { return p; }
    /** Ghost directory sizes (audit/test hook). */
    uint64_t ghostRecencySize() const { return b1.size(); }
    uint64_t ghostFrequencySize() const { return b2.size(); }

  private:
    struct Entry
    {
        /** 1 = T1, 2 = T2. */
        uint8_t list_id;
        std::list<trace::BlockId>::iterator it;
    };

    /** Ghost-hit adaptation + landing-side decision for `incoming`. */
    void adapt(trace::BlockId incoming);

    uint64_t capacity;
    /** Resident lists, MRU at front. */
    std::list<trace::BlockId> t1;
    std::list<trace::BlockId> t2;
    std::unordered_map<trace::BlockId, Entry> where;
    /** Ghost directories (recently evicted from T1 / from T2). */
    GhostCache b1;
    GhostCache b2;
    /** Adaptation target for |T1|, in [0, capacity]. */
    uint64_t p = 0;
    /** Landing side decided by adapt(): true -> T2 (ghost hit). */
    bool to_t2 = false;
    /** adapt() already ran for the upcoming insert (set by
     * victimFor, consumed by onInsert). */
    bool prepared = false;
    /** Last adapt() hit B2 (REPLACE tie-break). */
    bool last_in_b2 = false;
    /** Next onErase is a directory-replacement eviction that must not
     * be recorded in a ghost list (Case IV with T1 full). */
    bool suppress_ghost = false;
};

/**
 * W-TinyLFU region split, computed once so the flat engine and the
 * reference engine can never disagree on the geometry: the admission
 * window is ~1 % of capacity (at least one block), and the protected
 * segment gets 80 % of what remains.
 */
struct TinyLfuShape
{
    uint64_t window_cap;
    uint64_t main_cap;
    uint64_t protected_cap;
};

inline TinyLfuShape
tinyLfuShape(uint64_t capacity_blocks)
{
    TinyLfuShape shape;
    shape.window_cap = std::max<uint64_t>(1, capacity_blocks / 100);
    shape.main_cap = capacity_blocks > shape.window_cap
                         ? capacity_blocks - shape.window_cap
                         : 0;
    shape.protected_cap = shape.main_cap * 4 / 5;
    return shape;
}

/**
 * W-TinyLFU (Caffeine), node-based reference implementation. A small
 * admission window (~1 % of capacity, plain LRU) absorbs new keys; to
 * enter the main SLRU region (probation/protected, 20/80) the window
 * victim must beat the main region's eviction candidate on count-min
 * sketch frequency. Rejected candidates are remembered in a ghost so
 * an immediate re-reference earns a second sketch vote (the
 * "doorkeeper boost" mechanism). Shares util::CountMinSketch and
 * cache::GhostCache with the flat engine for bit-identity.
 */
class ReferenceTinyLfuPolicy : public ReplacementPolicy
{
  public:
    ReferenceTinyLfuPolicy(uint64_t capacity_blocks, uint64_t seed);

    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "W-TinyLFU"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }
    uint64_t memoryBytes() const override;

  private:
    /** Segment ids match the flat engine's PolicyState encoding. */
    enum Segment : uint8_t
    {
        kWindow = 0,
        kProbation = 1,
        kProtected = 2,
    };
    struct Entry
    {
        Segment segment;
        std::list<trace::BlockId>::iterator it;
    };

    std::list<trace::BlockId> &segmentList(Segment segment);

    uint64_t window_cap;
    uint64_t protected_cap;
    /** Segment lists, MRU at front. */
    std::list<trace::BlockId> window;
    std::list<trace::BlockId> probation;
    std::list<trace::BlockId> protected_seg;
    std::unordered_map<trace::BlockId, Entry> where;
    util::CountMinSketch sketch;
    /** Recently rejected admission candidates (second-chance boost). */
    GhostCache rejected;
};

/**
 * Oracle retain-set policy (Section 3.1): never evicts a block in the
 * protected set while an unprotected block exists; falls back to LRU
 * among unprotected blocks, then among protected ones. The protected
 * set (e.g. the day's top-1 % blocks) is installed by the experiment
 * before replaying the day.
 */
class OracleRetainPolicy : public ReferenceLruPolicy
{
  public:
    /** Replace the protected set. */
    void setProtected(std::unordered_set<trace::BlockId> protected_set);

    trace::BlockId victim() override;
    const char *name() const override { return "OracleRetain"; }
    uint64_t memoryBytes() const override;

  private:
    std::unordered_set<trace::BlockId> protected_blocks;
};

/**
 * Reference (seed) implementation of a built-in policy, for the
 * differential suite and the SIEVE_FLAT_CACHE=OFF build. The capacity
 * sizes the history-driven kinds (ARC's ghost directories, TinyLFU's
 * window/protected split and sketch width); the classic kinds ignore
 * it.
 */
std::unique_ptr<ReplacementPolicy> makeReferencePolicy(
    EvictionSpec spec, uint64_t capacity_blocks);

} // namespace cache
} // namespace sievestore

#endif // SIEVESTORE_CACHE_REPLACEMENT_HPP
