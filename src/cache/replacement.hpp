/**
 * @file
 * Replacement policies for the block cache.
 *
 * The paper's continuous configurations (SieveStore-C, AOD, WMNA) all
 * use a fully-associative LRU cache (Section 4); SieveStore-D performs
 * no within-epoch replacement. The extra policies here support the
 * Section 3.1 analysis: OracleRetain models the "ideal (oracle)
 * replacement policy [that] evicts only those blocks that are not in the
 * top 1% frequently accessed blocks" (the LTR-like policy of [15]), and
 * Belady MIN lives in belady.hpp.
 */

#ifndef SIEVESTORE_CACHE_REPLACEMENT_HPP
#define SIEVESTORE_CACHE_REPLACEMENT_HPP

#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/block.hpp"
#include "util/random.hpp"

namespace sievestore {
namespace cache {

/**
 * Victim-selection strategy. The policy tracks exactly the set of
 * resident blocks, mirrored by BlockCache: onInsert/onErase bracket
 * residency and onAccess observes hits.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A block became resident. */
    virtual void onInsert(trace::BlockId block) = 0;
    /** A resident block was accessed (hit). */
    virtual void onAccess(trace::BlockId block) = 0;
    /** A resident block was removed (eviction or batch replace). */
    virtual void onErase(trace::BlockId block) = 0;
    /** Choose the next victim. @pre at least one resident block. */
    virtual trace::BlockId victim() = 0;
    /** Human-readable policy name. */
    virtual const char *name() const = 0;

    /** Number of blocks the policy currently tracks (audit hook). */
    virtual size_t size() const = 0;
    /** True if the policy tracks `block` (audit hook). */
    virtual bool contains(trace::BlockId block) const = 0;
};

/** Least-recently-used (the paper's common policy). */
class LruPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "LRU"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }

  protected:
    /** Recency list, most-recent at front. */
    std::list<trace::BlockId> order;
    std::unordered_map<trace::BlockId, std::list<trace::BlockId>::iterator>
        where;
};

/** First-in-first-out: insertion order, hits do not promote. */
class FifoPolicy : public LruPolicy
{
  public:
    void onAccess(trace::BlockId block) override;
    const char *name() const override { return "FIFO"; }
};

/** Uniform-random victim. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(uint64_t seed = 1);

    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "Random"; }
    size_t size() const override { return pool.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return index.count(block) != 0;
    }

  private:
    std::vector<trace::BlockId> pool;
    std::unordered_map<trace::BlockId, size_t> index;
    util::Rng rng;
};

/** Least-frequently-used with FIFO tie-break (reference counting). */
class LfuPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "LFU"; }
    size_t size() const override { return entries.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return entries.count(block) != 0;
    }

  private:
    struct Entry
    {
        uint64_t count;
        uint64_t sequence;
    };
    std::unordered_map<trace::BlockId, Entry> entries;
    uint64_t next_sequence = 0;
};

/**
 * CLOCK (second-chance): the classic approximation of LRU used by
 * production buffer caches. Blocks sit on a circular list with a
 * reference bit; the hand clears bits until it finds an unreferenced
 * victim. Included as a realistic deployment alternative to the
 * simulator's exact LRU.
 */
class ClockPolicy : public ReplacementPolicy
{
  public:
    void onInsert(trace::BlockId block) override;
    void onAccess(trace::BlockId block) override;
    void onErase(trace::BlockId block) override;
    trace::BlockId victim() override;
    const char *name() const override { return "CLOCK"; }
    size_t size() const override { return where.size(); }
    bool
    contains(trace::BlockId block) const override
    {
        return where.count(block) != 0;
    }

  private:
    struct Entry
    {
        trace::BlockId block;
        bool referenced;
    };
    /** Circular buffer of entries; erased slots are tombstoned. */
    std::list<Entry> ring;
    std::unordered_map<trace::BlockId, std::list<Entry>::iterator>
        where;
    std::list<Entry>::iterator hand = ring.end();
};

/**
 * Oracle retain-set policy (Section 3.1): never evicts a block in the
 * protected set while an unprotected block exists; falls back to LRU
 * among unprotected blocks, then among protected ones. The protected
 * set (e.g. the day's top-1 % blocks) is installed by the experiment
 * before replaying the day.
 */
class OracleRetainPolicy : public LruPolicy
{
  public:
    /** Replace the protected set. */
    void setProtected(std::unordered_set<trace::BlockId> protected_set);

    trace::BlockId victim() override;
    const char *name() const override { return "OracleRetain"; }

  private:
    std::unordered_set<trace::BlockId> protected_blocks;
};

} // namespace cache
} // namespace sievestore

#endif // SIEVESTORE_CACHE_REPLACEMENT_HPP
