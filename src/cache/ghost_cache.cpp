#include "cache/ghost_cache.hpp"

#include "util/alloc_guard.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace cache {

using trace::BlockId;
using util::IndexList;

GhostCache::GhostCache(uint64_t budget) : budget_(budget)
{
    if (budget_ == 0)
        util::fatal("ghost cache budget must be at least one key");
    SIEVE_CHECK(budget_ < IndexList::kNull,
                "ghost budget %llu exceeds the 2^32-1 node arena",
                static_cast<unsigned long long>(budget_));
    // Reserved once: evict-before-insert keeps the population at or
    // below the budget, so neither structure ever grows again.
    index_.reserve(budget_);
    order_.reserve(budget_);
}

bool
GhostCache::contains(BlockId block) const
{
    return index_.contains(block);
}

bool
GhostCache::insert(BlockId block)
{
    // Reservation contract: the table never rehashes (population is
    // capped at the reserved budget) and the arena vector never grows
    // past its reserved capacity, so even warmup inserts are
    // allocation-free.
    SIEVE_ASSERT_NO_ALLOC;
    uint32_t *node = index_.find(block);
    if (node != nullptr) {
        order_.moveToFront(*node);
        return false;
    }
    if (index_.size() >= budget_) {
        const BlockId victim = order_.value(order_.tail());
        order_.erase(order_.tail());
        const bool erased = index_.erase(victim);
        SIEVE_CHECK(erased, "ghost key %llx in order but not indexed",
                    static_cast<unsigned long long>(victim));
    }
    const auto [slot, inserted] = index_.findOrInsert(block);
    SIEVE_DCHECK(inserted);
    *slot = order_.pushFront(block);
    return true;
}

bool
GhostCache::erase(BlockId block)
{
    SIEVE_ASSERT_NO_ALLOC;
    return index_.eraseWith(block, [&](const uint32_t &node) {
        order_.erase(node);
    });
}

std::optional<BlockId>
GhostCache::popOldest()
{
    SIEVE_ASSERT_NO_ALLOC;
    if (order_.empty())
        return std::nullopt;
    const BlockId victim = order_.value(order_.tail());
    order_.erase(order_.tail());
    const bool erased = index_.erase(victim);
    SIEVE_CHECK(erased, "ghost key %llx in order but not indexed",
                static_cast<unsigned long long>(victim));
    return victim;
}

BlockId
GhostCache::oldest() const
{
    SIEVE_CHECK(!order_.empty(), "oldest() on an empty ghost cache");
    return order_.value(order_.tail());
}

void
GhostCache::clear()
{
    index_.clear();
    order_.clear();
}

uint64_t
GhostCache::memoryBytes() const
{
    return index_.memoryBytes() + order_.memoryBytes();
}

void
GhostCache::checkInvariants() const
{
    SIEVE_CHECK(index_.size() <= budget_,
                "ghost tracks %zu keys, budget is %llu", index_.size(),
                static_cast<unsigned long long>(budget_));
    index_.checkInvariants();
    order_.checkInvariants();
    SIEVE_CHECK(order_.size() == index_.size(),
                "ghost order tracks %zu keys, index holds %zu",
                order_.size(), index_.size());
    for (uint32_t n = order_.head(); n != IndexList::kNull;
         n = order_.next(n)) {
        const uint32_t *node = index_.find(order_.value(n));
        SIEVE_CHECK(node != nullptr,
                    "ghost order key %llx is not indexed",
                    static_cast<unsigned long long>(order_.value(n)));
        SIEVE_CHECK(*node == n,
                    "ghost key %llx links node %u, found at node %u",
                    static_cast<unsigned long long>(order_.value(n)),
                    *node, n);
    }
}

} // namespace cache
} // namespace sievestore
