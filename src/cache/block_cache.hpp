/**
 * @file
 * Fully-associative block cache (Section 4).
 *
 * Tracks residency at 512-byte block granularity with a pluggable
 * replacement policy. Capacity is expressed in blocks (a 16 GB SSD cache
 * holds 31.25 M blocks). Supports both the continuous model (insert with
 * eviction) and SieveStore-D's discrete model (batchReplace with
 * allocation/replacement cancellation at epoch boundaries).
 */

#ifndef SIEVESTORE_CACHE_BLOCK_CACHE_HPP
#define SIEVESTORE_CACHE_BLOCK_CACHE_HPP

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "cache/replacement.hpp"
#include "trace/block.hpp"

namespace sievestore {
namespace cache {

/** Result of a discrete batch replacement (epoch boundary). */
struct BatchReplaceResult
{
    /** Blocks newly written into the cache (allocation-writes). */
    uint64_t allocated = 0;
    /**
     * Blocks present in both the outgoing and incoming sets; their
     * "replacement and allocation cancel each other to eliminate
     * unnecessary block moves" (Section 3.2).
     */
    uint64_t retained = 0;
    /** Blocks dropped from the cache. */
    uint64_t evicted = 0;
};

/** Fully-associative set of resident blocks with bounded capacity. */
class BlockCache
{
  public:
    /**
     * @param capacity_blocks capacity in 512-byte blocks (>= 1)
     * @param policy          replacement policy (defaults to LRU)
     */
    explicit BlockCache(uint64_t capacity_blocks,
                        std::unique_ptr<ReplacementPolicy> policy = nullptr);

    /** Residency test with no side effects. */
    bool contains(trace::BlockId block) const;

    /**
     * Access a block: if resident, notifies the replacement policy (LRU
     * promotion) and returns true; otherwise returns false.
     */
    bool access(trace::BlockId block);

    /**
     * Make a block resident, evicting a victim if at capacity.
     * @return the evicted block, if any
     * @pre the block is not already resident
     */
    std::optional<trace::BlockId> insert(trace::BlockId block);

    /** Remove a block. @retval true if it was resident. */
    bool erase(trace::BlockId block);

    /**
     * Discrete-epoch replacement: make the cache hold exactly
     * `new_set` (truncated to capacity if larger). Returns the move
     * accounting used by SieveStore-D's allocation-write counts.
     */
    BatchReplaceResult
    batchReplace(const std::vector<trace::BlockId> &new_set);

    uint64_t size() const { return resident.size(); }
    uint64_t capacity() const { return capacity_blocks; }
    bool full() const { return resident.size() >= capacity_blocks; }

    ReplacementPolicy &policy() { return *repl; }

    /** Snapshot of resident blocks (unordered). */
    std::vector<trace::BlockId> contents() const;

    /**
     * Footprint of the residency set (util/footprint.hpp convention).
     * Replacement-policy bookkeeping is excluded — cost reporting
     * compares sieve metastate, and a deployed cache keeps residency
     * metadata regardless of policy.
     */
    uint64_t memoryBytes() const;

    /**
     * Audit occupancy accounting: the resident set never exceeds
     * capacity and the replacement policy mirrors it exactly (same
     * size, same members). O(size); aborts on violation.
     */
    void checkInvariants() const;

  private:
    uint64_t capacity_blocks;
    std::unique_ptr<ReplacementPolicy> repl;
    std::unordered_set<trace::BlockId> resident;
};

} // namespace cache
} // namespace sievestore

#endif // SIEVESTORE_CACHE_BLOCK_CACHE_HPP
