/**
 * @file
 * Fully-associative block cache (Section 4) over one flat block index.
 *
 * Tracks residency at 512-byte block granularity. Capacity is
 * expressed in blocks (a 16 GB SSD cache holds 31.25 M blocks).
 * Supports both the continuous model (insert with eviction) and
 * SieveStore-D's discrete model (batchReplace with allocation/
 * replacement cancellation at epoch boundaries).
 *
 * Hot-path layout: residency and replacement-policy state live in a
 * single open-addressing FlatIndex slot per block (PolicyState
 * payload), so a resident hit is one hash probe that both answers the
 * residency test and reaches the policy's per-block state. The
 * built-in policies (EvictionKind) keep their order books in an
 * index-linked arena (LRU/FIFO/CLOCK) or a dense vector (Random)
 * instead of pointer-linked std::lists. The table is pre-sized for
 * `capacity_blocks` at construction, so steady-state replay never
 * rehashes.
 *
 * Two engines share the index:
 *  - flat (default): EvictionSpec selects a built-in policy whose
 *    transitions are inlined switch dispatch — no virtual calls;
 *  - custom: a virtual ReplacementPolicy (OracleRetain, or the
 *    Reference* seed implementations used by the differential suite
 *    and the SIEVE_FLAT_CACHE=OFF build) runs beside the index.
 */

#ifndef SIEVESTORE_CACHE_BLOCK_CACHE_HPP
#define SIEVESTORE_CACHE_BLOCK_CACHE_HPP

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/replacement.hpp"
#include "trace/block.hpp"
#include "util/flat_index.hpp"
#include "util/flow_annotations.hpp"
#include "util/random.hpp"

namespace sievestore {
namespace cache {

/** Result of a discrete batch replacement (epoch boundary). */
struct BatchReplaceResult
{
    /** Blocks newly written into the cache (allocation-writes). */
    uint64_t allocated = 0;
    /**
     * Blocks present in both the outgoing and incoming sets; their
     * "replacement and allocation cancel each other to eliminate
     * unnecessary block moves" (Section 3.2).
     */
    uint64_t retained = 0;
    /** Blocks dropped from the cache. */
    uint64_t evicted = 0;
};

/**
 * Per-resident-block policy state, stored inline in the block index
 * slot (16 bytes). The policy fabric gives every EvictionKind the
 * same two typed words; the kind fixes their interpretation:
 *
 *  kind     | primary                  | secondary
 *  ---------+--------------------------+---------------------------
 *  LRU/FIFO | IndexList node index     | unused
 *  CLOCK    | IndexList node index     | reference bit (0/1)
 *  LFU      | access count (init 1)    | insertion sequence number
 *  Random   | position in victim pool  | unused
 *  SIEVE    | IndexList node index     | visited bit (0/1)
 *  ARC      | IndexList node index     | resident list (1=T1, 2=T2)
 *  TinyLfu  | IndexList node index     | segment (0=window,
 *           |                          |   1=probation, 2=protected)
 *
 * Node indices point into the arena that owns the block's segment
 * (`order` for LRU/FIFO/CLOCK/SIEVE/ARC-T1/window, `order2` for
 * ARC-T2/probation, `order3` for protected). Unused in custom-policy
 * mode (the policy keeps its own state).
 */
struct PolicyState
{
    uint64_t primary;
    uint64_t secondary;
};

/** Fully-associative set of resident blocks with bounded capacity. */
class BlockCache
{
  public:
    /**
     * Flat-engine cache with a built-in policy.
     * @param capacity_blocks capacity in 512-byte blocks (>= 1)
     * @param spec            built-in policy selection (default LRU)
     */
    explicit BlockCache(uint64_t capacity_blocks, EvictionSpec spec = {});

    /**
     * Custom-engine cache driving a virtual policy (OracleRetain or a
     * Reference* seed implementation). A null policy falls back to
     * the flat default (LRU), preserving the seed signature.
     */
    BlockCache(uint64_t capacity_blocks,
               std::unique_ptr<ReplacementPolicy> policy);

    /** Chunk width of the batched probe paths (== FlatIndex's). */
    static constexpr size_t kProbeBatch = util::FlatIndex<PolicyState>::kBatchChunk;

    /** Residency test with no side effects. */
    bool contains(trace::BlockId block) const;

    /**
     * Batched residency test: `hit[i]` = contains(blocks[i]). Runs
     * the FlatIndex hash-ahead/prefetch kernel; no side effects.
     */
    void containsBatch(std::span<const trace::BlockId> blocks,
                       std::span<bool> hit) const;

    /**
     * Access a block: if resident, notifies the replacement policy (LRU
     * promotion) and returns true; otherwise returns false. One hash
     * probe in flat mode. Taint sink: cache mutation entry point —
     * residency state must never depend on measured data (this and
     * every mutator below).
     */
    SIEVE_TAINT_SINK bool access(trace::BlockId block);

    /**
     * Batched access: `hit[i]` = access(blocks[i]), with all probes
     * resolved through the batched kernel before the policy
     * transitions run in batch order (transitions touch payloads and
     * the order book, never the index structure, so the gathered
     * pointers stay valid — duplicates included). Custom engines fall
     * back to the scalar loop.
     */
    SIEVE_TAINT_SINK void touchBatch(std::span<const trace::BlockId> blocks,
                                     std::span<bool> hit);

    /**
     * Probe-gather for the appliance's batched kernel: `st[i]` points
     * at blocks[i]'s policy state, or nullptr if absent. Flat engines
     * only (the gathered pointers bypass the custom policy). Pointers
     * follow the FlatIndex invalidation rule: consume them before any
     * insert/erase on this cache.
     */
    SIEVE_TAINT_SINK void probeBatch(std::span<const trace::BlockId> blocks,
                                     std::span<PolicyState *> st);

    /** Apply the resident-hit policy transition to a gathered state
     *  (the mutate phase of a probe-gathered hit). The block key is
     *  needed by the sketch/segment kinds (TinyLfu, ARC). */
    SIEVE_TAINT_SINK void touchProbed(trace::BlockId block,
                                      PolicyState &st);

    /**
     * Make a block resident, evicting a victim if at capacity.
     * @return the evicted block, if any
     * @pre the block is not already resident
     */
    SIEVE_TAINT_SINK std::optional<trace::BlockId>
    insert(trace::BlockId block);

    /** Remove a block. @retval true if it was resident. */
    bool erase(trace::BlockId block);

    /**
     * Discrete-epoch replacement: make the cache hold exactly
     * `new_set` (first-come priority, deduplicated, truncated to
     * capacity if larger). Returns the move accounting used by
     * SieveStore-D's allocation-write counts.
     *
     * The optional out-vectors are cleared and filled with the blocks
     * actually installed (in install order — the storage layer
     * page-coalesces them into device writes) and the blocks dropped
     * (in eviction order — they become trims). Passing null skips the
     * capture; the accounting result is identical either way.
     */
    SIEVE_TAINT_SINK BatchReplaceResult
    batchReplace(const std::vector<trace::BlockId> &new_set,
                 std::vector<trace::BlockId> *allocated_out = nullptr,
                 std::vector<trace::BlockId> *evicted_out = nullptr);

    uint64_t size() const { return index.size(); }
    uint64_t capacity() const { return capacity_blocks; }
    bool full() const { return index.size() >= capacity_blocks; }

    /** Active policy name ("LRU", "CLOCK", "OracleRetain", ...). */
    const char *policyName() const;

    /** The custom policy, or nullptr when the flat engine is active. */
    ReplacementPolicy *customPolicy() { return custom.get(); }
    const ReplacementPolicy *customPolicy() const { return custom.get(); }

    /** Snapshot of resident blocks (unordered). */
    std::vector<trace::BlockId> contents() const;

    /**
     * Footprint of all per-block cache metadata — the shared
     * residency+policy index plus the policy's order book
     * (util/footprint.hpp convention). Replacement state is included:
     * the flat engine stores it inline in the index slots, so it is
     * not separable from residency.
     */
    uint64_t memoryBytes() const;

    /**
     * Audit occupancy accounting: the block index is structurally
     * sound, never exceeds capacity, and the policy state mirrors it
     * exactly (order book / pool / custom policy track the same
     * blocks). O(size); aborts on violation.
     */
    void checkInvariants() const;

  private:
    using BlockIndex = util::FlatIndex<PolicyState>;

    /** Flat-policy transition helpers (no-ops in custom mode). */
    void policyInsert(trace::BlockId block, PolicyState &st);
    void policyAccess(trace::BlockId block, PolicyState &st);
    void policyErase(trace::BlockId block, const PolicyState &st);
    trace::BlockId policyVictim(trace::BlockId incoming);

    /** ARC ghost-hit adaptation + landing-side decision (the flat
     * twin of ReferenceArcPolicy::adapt). */
    void arcAdapt(trace::BlockId incoming);

    /** Reserve the index and engage the active kind's fabric state
     * (extra arenas, ghost directories, sketch). */
    void initFlatEngine();

    /** Evict `block`: policy bookkeeping plus index removal. */
    void eraseResident(trace::BlockId block);

    uint64_t capacity_blocks;
    EvictionSpec spec;
    /** Non-null selects the custom engine. */
    std::unique_ptr<ReplacementPolicy> custom;

    /** Residency + per-block policy state, one slot per block. */
    BlockIndex index;
    /** Primary order book: LRU/FIFO recency order (front = hottest),
     * CLOCK ring, SIEVE queue (front = newest), ARC T1, or the
     * TinyLfu admission window. */
    util::IndexList order;
    /** Secondary order book: ARC T2 or TinyLfu probation. */
    util::IndexList order2;
    /** Tertiary order book: TinyLfu protected segment. */
    util::IndexList order3;
    /** CLOCK/SIEVE hand: node index into `order`, kNull = wrapped. */
    uint32_t hand = util::IndexList::kNull;
    /** Random: dense victim pool (swap-with-last on erase). */
    std::vector<trace::BlockId> pool;
    /** LFU insertion-sequence source. */
    uint64_t lfu_sequence = 0;
    util::Rng rng;

    /** Recency-side ghost: ARC B1 (evicted from T1) or the TinyLfu
     * rejected-candidate set. Engaged only for those kinds. */
    std::optional<GhostCache> ghost_recent;
    /** Frequency-side ghost: ARC B2 (evicted from T2). */
    std::optional<GhostCache> ghost_frequent;
    /** TinyLfu admission-frequency sketch. */
    std::optional<util::CountMinSketch> sketch;

    /** ARC adaptation target for |T1|, in [0, capacity]. */
    uint64_t arc_p = 0;
    /** ARC landing side decided by arcAdapt(): true -> T2. */
    bool arc_to_t2 = false;
    /** arcAdapt() already ran for the upcoming insert (set by
     * policyVictim, consumed by policyInsert). */
    bool arc_prepared = false;
    /** Last arcAdapt() hit B2 (REPLACE tie-break). */
    bool arc_last_in_b2 = false;
    /** Next policyErase is a directory replacement that must not be
     * ghost-recorded (ARC Case IV(a) with T1 full). */
    bool arc_suppress_ghost = false;

    /** TinyLfu region split (all zero for other kinds). */
    TinyLfuShape tlfu{};
};

} // namespace cache
} // namespace sievestore

#endif // SIEVESTORE_CACHE_BLOCK_CACHE_HPP
