/**
 * @file
 * Belady MIN/OPT machinery for the Section 3.1 analysis.
 *
 * The paper argues that (1) even ideal replacement cannot fix the
 * allocation-write problem, and (2) extending Belady's algorithm to do
 * selective allocation maximizes hits but does NOT minimize
 * allocation-writes — demonstrated with the stream
 * a,a,b,b,a,a,c,c,a,a,d,d,... where Belady-selective converges to a 50 %
 * hit ratio with an allocation-write on every other pair, while simply
 * pinning `a` gets nearly the same hits with exactly one allocation.
 * These simulators reproduce that argument exactly and generalize it for
 * property tests.
 */

#ifndef SIEVESTORE_CACHE_BELADY_HPP
#define SIEVESTORE_CACHE_BELADY_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/block.hpp"

namespace sievestore {
namespace cache {

/** Position index of the next reference to each block in a fixed stream. */
class FutureIndex
{
  public:
    /** Sentinel: the block is never referenced again. */
    static constexpr size_t kNever = std::numeric_limits<size_t>::max();

    /** Build the index over a complete access stream. */
    explicit FutureIndex(const std::vector<trace::BlockId> &stream);

    /**
     * Position of the first reference to `block` strictly after
     * position `after`; kNever if none.
     */
    size_t nextUse(trace::BlockId block, size_t after) const;

  private:
    std::unordered_map<trace::BlockId, std::vector<size_t>> positions;
};

/** Outcome of an offline cache simulation. */
struct OfflineSimResult
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    /** Blocks written into the cache on allocation. */
    uint64_t allocation_writes = 0;

    double
    hitRatio() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * Belady MIN with allocate-on-demand: every miss allocates; the victim
 * is the cached block referenced farthest in the future. Maximizes the
 * hit ratio among demand-allocation policies.
 */
OfflineSimResult
simulateBeladyMin(const std::vector<trace::BlockId> &stream,
                  uint64_t capacity);

/**
 * Belady's algorithm extended with selective allocation (Section 3.1):
 * a missed block is allocated only if its next use is earlier than the
 * next use of at least one cached block. Also maximizes hits — but, as
 * the paper shows, does not minimize allocation-writes.
 */
OfflineSimResult
simulateBeladySelective(const std::vector<trace::BlockId> &stream,
                        uint64_t capacity);

/**
 * Fixed allocation: the cache is preloaded with `pinned` (one
 * allocation-write each) and never changes. The paper's counterexample
 * shows this can approach Belady-selective's hits with O(capacity)
 * allocation-writes.
 */
OfflineSimResult
simulateFixedSet(const std::vector<trace::BlockId> &stream,
                 const std::unordered_set<trace::BlockId> &pinned);

} // namespace cache
} // namespace sievestore

#endif // SIEVESTORE_CACHE_BELADY_HPP
