/**
 * @file
 * The one sanctioned software-prefetch site.
 *
 * Batched lookup kernels (FlatIndex::findBatch, the MCT/IMCT miss-path
 * probes) hide DRAM latency by issuing prefetches a fixed distance
 * ahead of the resolving pass. All of them funnel through this wrapper
 * so the hint parameters stay consistent and auditable; sieve-lint's
 * raw-prefetch rule bans `__builtin_prefetch` outside util/ to keep it
 * that way.
 */

#ifndef SIEVESTORE_UTIL_PREFETCH_HPP
#define SIEVESTORE_UTIL_PREFETCH_HPP

namespace sievestore {
namespace util {

/**
 * Hint the cache hierarchy to pull `addr`'s line for a read. High
 * temporal locality (locality hint 3): the batched kernels touch the
 * line within a few dozen instructions, so it should land in L1 and
 * stay there for the resolving pass.
 */
inline void
prefetchRead(const void *addr)
{
    __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
}

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_PREFETCH_HPP
