/**
 * @file
 * Simulated-time types.
 *
 * All timestamps in the library are microseconds since the start of the
 * trace. The paper's evaluation aggregates at several granularities:
 * per-minute (drive-IOPS occupancy, Figures 8/9), per-subwindow
 * (SieveStore-C's W = 8 h window split into k = 4 subwindows), and
 * per-calendar-day epochs (SieveStore-D, Figures 2/5/6/7). These helpers
 * keep the unit conversions in one audited place.
 */

#ifndef SIEVESTORE_UTIL_SIM_TIME_HPP
#define SIEVESTORE_UTIL_SIM_TIME_HPP

#include <cstdint>

namespace sievestore {
namespace util {

/** Microseconds since trace start. */
using TimeUs = uint64_t;

constexpr TimeUs kUsPerMs = 1000ULL;
constexpr TimeUs kUsPerSecond = 1000ULL * kUsPerMs;
constexpr TimeUs kUsPerMinute = 60ULL * kUsPerSecond;
constexpr TimeUs kUsPerHour = 60ULL * kUsPerMinute;
constexpr TimeUs kUsPerDay = 24ULL * kUsPerHour;

/** Minute index (0-based) containing the timestamp. */
constexpr uint64_t
minuteOf(TimeUs t)
{
    return t / kUsPerMinute;
}

/** Hour index (0-based) containing the timestamp. */
constexpr uint64_t
hourOf(TimeUs t)
{
    return t / kUsPerHour;
}

/** Calendar-day index (0-based) containing the timestamp. */
constexpr uint64_t
dayOf(TimeUs t)
{
    return t / kUsPerDay;
}

/** Construct a timestamp from days/hours/minutes/seconds offsets. */
constexpr TimeUs
makeTime(uint64_t days, uint64_t hours = 0, uint64_t minutes = 0,
         uint64_t seconds = 0, uint64_t micros = 0)
{
    return days * kUsPerDay + hours * kUsPerHour + minutes * kUsPerMinute +
           seconds * kUsPerSecond + micros;
}

/** Seconds (as double) represented by a microsecond duration. */
constexpr double
toSeconds(TimeUs t)
{
    return static_cast<double>(t) / static_cast<double>(kUsPerSecond);
}

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_SIM_TIME_HPP
