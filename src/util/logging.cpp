#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/alloc_guard.hpp"

namespace sievestore {
namespace util {

namespace {
LogLevel globalLevel = LogLevel::Inform;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    // Failure paths may fire inside a SIEVE_ASSERT_NO_ALLOC region;
    // building and throwing the message must stay permitted.
    AllocGuardDisarm disarm;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    AllocGuardDisarm disarm;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace util
} // namespace sievestore
