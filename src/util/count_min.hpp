/**
 * @file
 * Count-min sketch with periodic aging, the frequency estimator
 * behind the W-TinyLFU eviction kind's sketch admission filter.
 *
 * A fixed grid of depth x width saturating counters; each key maps to
 * one counter per row through an independently seeded hash
 * (util/hashing.hpp seededHash), and the frequency estimate is the
 * minimum over the rows. Counters saturate at kMaxCount, and every
 * `agePeriod()` increments the whole grid is halved ("reset" aging
 * from the TinyLFU paper) so stale popularity decays instead of
 * pinning admission decisions forever.
 *
 * Everything is deterministic — no wall clock, no entropy — and the
 * steady-state paths (add / estimate) never allocate: the grid is one
 * flat vector sized at construction, so the sketch can be consulted
 * inside the appliance's batch-level no-alloc regions.
 */

#ifndef SIEVESTORE_UTIL_COUNT_MIN_HPP
#define SIEVESTORE_UTIL_COUNT_MIN_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/flow_annotations.hpp"
#include "util/hashing.hpp"

namespace sievestore {
namespace util {

/** Fixed-size frequency sketch: add() increments, estimate() reads. */
class CountMinSketch
{
  public:
    /** Counter saturation value (4-bit counters in spirit; one byte
     * in storage so row updates stay single-store). */
    static constexpr uint8_t kMaxCount = 15;
    /** Independent hash rows. */
    static constexpr size_t kDepth = 4;

    /**
     * @param entries sketch capacity hint: the width becomes the
     *                next power of two >= max(entries, 16), so
     *                per-row collisions stay rare up to ~entries
     *                distinct hot keys
     * @param seed    decorrelates the rows (and separate sketches)
     */
    explicit CountMinSketch(uint64_t entries, uint64_t seed = 0)
        : seed_(seed)
    {
        uint64_t width = 16;
        while (width < entries)
            width <<= 1;
        width_mask_ = width - 1;
        grid_.assign(static_cast<size_t>(width) * kDepth, 0);
        // Aging cadence from the TinyLFU paper: a sample of ~10x the
        // tracked population keeps estimates fresh across phase
        // changes without thrashing the counters.
        age_period_ = width * 10;
    }

    /**
     * Record one occurrence of `key`: saturating increment in every
     * row, then halve the whole grid once per agePeriod() adds.
     * Taint sink: sketch state steers eviction/admission decisions,
     * so measured data must never reach it.
     */
    SIEVE_TAINT_SINK void
    add(uint64_t key)
    {
        for (size_t r = 0; r < kDepth; ++r) {
            uint8_t &c = grid_[slot(key, r)];
            if (c < kMaxCount)
                ++c;
        }
        if (++adds_since_age_ >= age_period_) {
            halve();
            adds_since_age_ = 0;
        }
    }

    /** Frequency estimate: the minimum counter across rows (an upper
     * bound on the aged true count; never an underestimate). */
    uint32_t
    estimate(uint64_t key) const
    {
        uint8_t best = kMaxCount;
        for (size_t r = 0; r < kDepth; ++r)
            best = std::min(best, grid_[slot(key, r)]);
        return best;
    }

    /** Halve every counter (aging; add() calls this automatically). */
    void
    halve()
    {
        for (uint8_t &c : grid_)
            c = static_cast<uint8_t>(c >> 1);
    }

    /** Row width (a power of two). */
    uint64_t width() const { return width_mask_ + 1; }
    /** Adds between automatic halvings. */
    uint64_t agePeriod() const { return age_period_; }

    /** Grid footprint per the util/footprint.hpp convention. */
    uint64_t
    memoryBytes() const
    {
        return static_cast<uint64_t>(grid_.capacity()) *
               sizeof(uint8_t);
    }

    /**
     * Audit the grid: geometry matches the constructor's promise,
     * every counter is within saturation, and the aging countdown has
     * not been missed. Aborts on violation.
     */
    void
    checkInvariants() const
    {
        SIEVE_CHECK((width_mask_ & (width_mask_ + 1)) == 0,
                    "sketch width is not a power of two");
        SIEVE_CHECK(grid_.size() == (width_mask_ + 1) * kDepth,
                    "sketch grid size %zu does not match %llu x %zu",
                    grid_.size(),
                    static_cast<unsigned long long>(width_mask_ + 1),
                    kDepth);
        SIEVE_CHECK(adds_since_age_ < age_period_,
                    "sketch aging overdue: %llu adds since last halve",
                    static_cast<unsigned long long>(adds_since_age_));
        for (const uint8_t c : grid_)
            SIEVE_CHECK(c <= kMaxCount,
                        "sketch counter %u exceeds saturation", c);
    }

  private:
    size_t
    slot(uint64_t key, size_t row) const
    {
        const uint64_t h =
            seededHash(key, seed_ * kDepth + row + 1);
        return static_cast<size_t>((h & width_mask_) +
                                   row * (width_mask_ + 1));
    }

    uint64_t seed_;
    uint64_t width_mask_;
    uint64_t age_period_;
    uint64_t adds_since_age_ = 0;
    /** depth rows of width counters, row-major. */
    std::vector<uint8_t> grid_;
};

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_COUNT_MIN_HPP
