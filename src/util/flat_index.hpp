/**
 * @file
 * Flat open-addressing block index and index-linked list arena.
 *
 * At paper scale a 16-32 GB cache tracks 31-62 M resident 512-byte
 * blocks, and every access used to pay 2-3 independent node-based hash
 * probes (residency set, replacement-policy map, MCT) plus
 * pointer-chasing through std::list recency nodes. FlatIndex replaces
 * those with one open-addressing, power-of-two, robin-hood table keyed
 * by a 64-bit block id with a POD payload stored inline in the slot:
 * one probe touches one contiguous slot that already holds all
 * per-block bookkeeping. IndexList replaces pointer-linked recency
 * lists with a 32-bit index-linked arena (16 bytes per node, no
 * per-node allocation, stable indices).
 *
 * Layout and policy (documented for DESIGN.md "Flat-memory hot path"):
 *  - slots are {uint64_t key, Payload payload}; a parallel byte array
 *    holds each slot's displacement-from-home + 1 ("dib", 0 = empty);
 *  - capacity is a power of two, probed linearly after a mix64 hash;
 *  - maximum load factor is 7/8, growth doubles and rehashes;
 *  - deletion is robin-hood backward shift: there are NO tombstones,
 *    so load factor never decays and probes never lengthen after
 *    heavy churn (the MCT prunes thousands of entries per subwindow).
 *
 * References returned by find()/findOrInsert() — and every out-pointer
 * written by findBatch() — are invalidated by any subsequent
 * insert/erase/reserve (slots move under robin-hood displacement);
 * re-probe by key instead of caching them. findBatch() callers gather
 * a batch of payload pointers and must finish consuming them before
 * the next structural mutation.
 */

#ifndef SIEVESTORE_UTIL_FLAT_INDEX_HPP
#define SIEVESTORE_UTIL_FLAT_INDEX_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/hashing.hpp"
#include "util/prefetch.hpp"

// The AVX2 dib-scan path is compiled whenever the toolchain can emit
// it (function-level target attribute, no global -mavx2) and selected
// at runtime; the scalar probe loop is always built and always the
// fallback.
#if defined(__x86_64__) && defined(__GNUC__)
#define SIEVE_FLAT_INDEX_SIMD 1
#include <immintrin.h>
#else
#define SIEVE_FLAT_INDEX_SIMD 0
#endif

namespace sievestore {
namespace util {

/** True when the host CPU can run the AVX2 dib-scan probe loop. */
bool batchSimdSupported();

/** Current runtime dispatch decision for findBatch's probe loop. */
bool batchSimdEnabled();

/**
 * Force the findBatch probe-loop dispatch (clamped to
 * batchSimdSupported()). Seeded from the SIEVE_BATCH_SIMD environment
 * variable at startup ("0" forces scalar); the differential suites
 * flip it to prove SIMD/scalar bit-identity. Not thread-safe: set it
 * before spawning replay workers.
 * @return the value actually in effect
 */
bool setBatchSimd(bool enabled);

/**
 * Open-addressing robin-hood hash table: 64-bit key, inline POD
 * payload, power-of-two capacity, backward-shift deletion.
 */
template <typename Payload>
class FlatIndex
{
    static_assert(std::is_trivially_copyable_v<Payload>,
                  "FlatIndex payloads are moved by memcpy during "
                  "robin-hood displacement; they must be POD");
    static_assert(std::is_default_constructible_v<Payload>,
                  "FlatIndex value-initializes the payload on insert");

  public:
    /** findBatch chunk width: per-chunk scratch (home-slot positions)
     *  stays a fixed-size stack array, never a heap allocation. */
    static constexpr size_t kBatchChunk = 64;

    /** Hash-ahead distance: how many probes the prefetch window runs
     *  ahead of the resolving cursor in findBatch. Eight ~100 ns DRAM
     *  fetches in flight covers the ~10-20 ns a resolved probe takes,
     *  without thrashing L1's line-fill buffers. */
    static constexpr size_t kPrefetchAhead = 8;

    FlatIndex() = default;

    /** Pre-size for `expected_entries` entries (no rehash below it). */
    explicit FlatIndex(size_t expected_entries)
    {
        reserve(expected_entries);
    }

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Allocated slot count (power of two; 0 before first use). */
    size_t slotCount() const { return slots_.size(); }

    /**
     * True when `extra` more entries fit without growing the table
     * (the exact complement of findOrInsert's rehash trigger). Lets
     * callers engage SIEVE_ASSERT_NO_ALLOC regions precisely: a
     * pre-reserved table keeps this true for its whole working set.
     */
    bool
    hasCapacityFor(size_t extra) const
    {
        return (count_ + extra) * 8 <= slots_.size() * 7;
    }

    /** Entries per slot, in [0, 7/8]. */
    double
    loadFactor() const
    {
        return slots_.empty() ? 0.0
                              : static_cast<double>(count_) /
                                    static_cast<double>(slots_.size());
    }

    /**
     * Grow so that `entries` entries fit without any further rehash
     * (never shrinks). BlockCache calls this with its block capacity
     * at construction, eliminating rehash storms mid-replay.
     */
    void
    reserve(size_t entries)
    {
        const size_t target = slotTarget(entries);
        if (target > slots_.size())
            rehash(target);
    }

    /** Drop every entry but keep the slot array (no deallocation). */
    void
    clear()
    {
        std::fill(dib_.begin(), dib_.end(), uint8_t{0});
        count_ = 0;
    }

    /** Payload of `key`, or nullptr. Invalidated by any mutation.
     *  SIEVE_NOALLOC: a find is a pure probe — the analyzer verifies
     *  nothing reachable from it can touch the heap. */
    SIEVE_NOALLOC Payload *
    find(uint64_t key)
    {
        const size_t pos = findSlot(key);
        return pos == kNoSlot ? nullptr : &slots_[pos].payload;
    }

    SIEVE_NOALLOC const Payload *
    find(uint64_t key) const
    {
        const size_t pos = findSlot(key);
        return pos == kNoSlot ? nullptr : &slots_[pos].payload;
    }

    bool contains(uint64_t key) const { return findSlot(key) != kNoSlot; }

    /**
     * Batched lookup kernel: resolve `keys` into payload pointers
     * (nullptr for absent keys), written to `out[i]` for `keys[i]`.
     *
     * The batch is processed in chunks of kBatchChunk keys. Within a
     * chunk, pass 1 hashes every key up front (no dependent loads) and
     * issues software prefetches for the first kPrefetchAhead home
     * slots; pass 2 resolves the probes in order, keeping the prefetch
     * window kPrefetchAhead probes ahead of the resolving cursor so
     * each probe's first touch is (usually) an L1 hit instead of a
     * DRAM round trip. The probe loop itself is runtime-dispatched
     * between an AVX2 dib scan (8 displacement bytes per step, see
     * probeSimd) and the scalar loop shared with find().
     *
     * Out-pointers follow the find() invalidation rule above. Probes
     * resolve in batch order, so duplicate keys yield identical
     * pointers. Purely a read: safe inside no-alloc regions
     * (SIEVE_NOALLOC root, proven by sieve_analyze.py).
     *
     * @return number of keys found
     */
    SIEVE_NOALLOC size_t
    findBatch(std::span<const uint64_t> keys, std::span<Payload *> out)
    {
        return findBatchImpl(*this, keys, out);
    }

    SIEVE_NOALLOC size_t
    findBatch(std::span<const uint64_t> keys,
              std::span<const Payload *> out) const
    {
        return findBatchImpl(*this, keys, out);
    }

    /** Start pulling `key`'s home slot toward L1 (pure hint). */
    void
    prefetch(uint64_t key) const
    {
        if (!slots_.empty())
            prefetchSlot(mix64(key) & (slots_.size() - 1));
    }

    /**
     * Find `key`, inserting a value-initialized payload if absent.
     * @return payload pointer and whether an insert happened
     */
    std::pair<Payload *, bool>
    findOrInsert(uint64_t key)
    {
        if (slots_.empty() || (count_ + 1) * 8 > slots_.size() * 7)
            rehash(slotTarget(count_ + 1));
        while (true) {
            const size_t mask = slots_.size() - 1;
            size_t pos = mix64(key) & mask;
            unsigned d = 1;
            // Search until the insertion point. No state is touched
            // yet, so hitting the displacement cap can safely grow
            // and retry the whole operation.
            while (true) {
                const unsigned slot_d = dib_[pos];
                if (slot_d == 0) {
                    slots_[pos] = Slot{key, Payload{}};
                    dib_[pos] = static_cast<uint8_t>(d);
                    ++count_;
                    return {&slots_[pos].payload, true};
                }
                if (slot_d == d && slots_[pos].key == key)
                    return {&slots_[pos].payload, false};
                if (slot_d < d)
                    break; // robin hood: key is absent, displace here
                pos = (pos + 1) & mask;
                ++d;
                if (d > kMaxDib)
                    break;
            }
            if (d > kMaxDib) {
                rehash(slots_.size() * 2);
                continue;
            }
            // Place the new entry at the insertion point and push the
            // displaced chain forward. The new entry, once written, is
            // never moved again within this operation.
            Slot carry = slots_[pos];
            auto carry_d = static_cast<unsigned>(dib_[pos]);
            slots_[pos] = Slot{key, Payload{}};
            dib_[pos] = static_cast<uint8_t>(d);
            Payload *result = &slots_[pos].payload;
            ++count_;
            while (true) {
                pos = (pos + 1) & mask;
                ++carry_d;
                // A 250-long displaced run at load factor <= 7/8 under
                // mix64 is unreachable without adversarial keys.
                SIEVE_CHECK(carry_d <= kMaxDib,
                            "FlatIndex displacement overflow");
                if (dib_[pos] == 0) {
                    slots_[pos] = carry;
                    dib_[pos] = static_cast<uint8_t>(carry_d);
                    return {result, true};
                }
                if (dib_[pos] < carry_d) {
                    std::swap(slots_[pos], carry);
                    const auto held = static_cast<unsigned>(dib_[pos]);
                    dib_[pos] = static_cast<uint8_t>(carry_d);
                    carry_d = held;
                }
            }
        }
    }

    /** Remove `key`. @retval true if it was present. */
    bool
    erase(uint64_t key)
    {
        return eraseWith(key, [](const Payload &) {});
    }

    /**
     * Remove `key`, invoking `fn(payload)` on the doomed entry first —
     * a single-probe erase for callers that need the payload's final
     * state (e.g. to unlink its IndexList node).
     */
    template <typename Fn>
    bool
    eraseWith(uint64_t key, Fn &&fn)
    {
        const size_t pos = findSlot(key);
        if (pos == kNoSlot)
            return false;
        fn(const_cast<const Payload &>(slots_[pos].payload));
        eraseAt(pos);
        return true;
    }

    /** Visit every entry as fn(key, payload&). No structural mutation
     * from inside the callback. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t i = 0; i < slots_.size(); ++i)
            if (dib_[i] != 0)
                fn(slots_[i].key, slots_[i].payload);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < slots_.size(); ++i)
            if (dib_[i] != 0)
                fn(slots_[i].key, slots_[i].payload);
    }

    /**
     * Erase every entry matching pred(key, payload). The predicate
     * must be pure: backward-shift deletion can re-present an entry
     * from a wrapped probe chain to the scan (never skip one).
     * @return entries removed
     */
    template <typename Pred>
    size_t
    eraseIf(Pred &&pred)
    {
        size_t removed = 0;
        for (size_t i = 0; i < slots_.size();) {
            if (dib_[i] != 0 &&
                pred(slots_[i].key,
                     const_cast<const Payload &>(slots_[i].payload))) {
                eraseAt(i);
                ++removed; // re-examine slot i: the shift refills it
            } else {
                ++i;
            }
        }
        return removed;
    }

    /** Footprint per the util/footprint.hpp convention. */
    uint64_t
    memoryBytes() const
    {
        return flatIndexFootprintBytes(slots_.size(), sizeof(Slot));
    }

    /**
     * Audit structural invariants: every occupied slot's dib equals
     * its distance-from-home + 1, the entry count matches, and the
     * load factor respects the 7/8 bound. Aborts on violation.
     */
    void
    checkInvariants() const
    {
        size_t occupied = 0;
        const size_t mask = slots_.empty() ? 0 : slots_.size() - 1;
        for (size_t i = 0; i < slots_.size(); ++i) {
            if (dib_[i] == 0)
                continue;
            ++occupied;
            const size_t home = mix64(slots_[i].key) & mask;
            const size_t dist = (i - home) & mask;
            SIEVE_CHECK(dist + 1 == dib_[i],
                        "slot %zu: dib %u but distance-from-home %zu",
                        i, dib_[i], dist);
        }
        SIEVE_CHECK(occupied == count_,
                    "FlatIndex counts %zu entries, slots hold %zu",
                    count_, occupied);
        SIEVE_CHECK(count_ * 8 <= slots_.size() * 7 || slots_.empty(),
                    "load factor above 7/8");
    }

  private:
    struct Slot
    {
        uint64_t key;
        Payload payload;
    };

    static constexpr size_t kMinSlots = 16;
    static constexpr unsigned kMaxDib = 250;
    static constexpr size_t kNoSlot = SIZE_MAX;

    /** Smallest power-of-two slot count keeping `entries` <= 7/8 full. */
    static size_t
    slotTarget(size_t entries)
    {
        const size_t need = entries + entries / 7 + 1;
        size_t slots = kMinSlots;
        while (slots < need)
            slots *= 2;
        return slots;
    }

    size_t
    findSlot(uint64_t key) const
    {
        if (slots_.empty())
            return kNoSlot;
        return probeScalar(key, mix64(key) & (slots_.size() - 1), 1);
    }

    /**
     * Scalar probe loop starting at `pos` with displacement `d`
     * (1 = home). Also the tail resolver for probeSimd, which hands
     * over mid-chain when a full vector no longer fits before the
     * table's end or the displacement cap.
     */
    size_t
    probeScalar(uint64_t key, size_t pos, unsigned d) const
    {
        const size_t mask = slots_.size() - 1;
        pos &= mask; // probeSimd may hand over pos == slotCount()
        while (true) {
            const unsigned slot_d = dib_[pos];
            // An empty slot ends the chain; a slot poorer than us
            // would have been displaced had our key been inserted.
            if (slot_d == 0 || slot_d < d)
                return kNoSlot;
            if (slot_d == d && slots_[pos].key == key)
                return pos;
            pos = (pos + 1) & mask;
            ++d;
        }
    }

#if SIEVE_FLAT_INDEX_SIMD
    /**
     * AVX2 probe loop: scan 8 dib bytes per step. Lane j of `expect`
     * holds the displacement our key would have at slot pos + j; a
     * lane with dib < expect (empty slot or poorer entry) terminates
     * the chain, a lane with dib == expect is a same-home candidate
     * whose key is compared. Comparisons are unsigned via
     * min_epu8 == dib (kMaxDib = 250 overflows signed bytes), and the
     * `d + 8 <= kMaxDib` guard keeps every expect lane <= 249, so no
     * lane wraps. Wrapped chains and cap-adjacent tails hand over to
     * probeScalar, whose masked walk is the behavioral reference.
     */
    __attribute__((target("avx2"))) size_t
    probeSimd(uint64_t key, size_t pos) const
    {
        const size_t nslots = slots_.size();
        const __m128i ramp =
            _mm_set_epi8(0, 0, 0, 0, 0, 0, 0, 0, 7, 6, 5, 4, 3, 2, 1, 0);
        unsigned d = 1;
        while (pos + 8 <= nslots && d + 8 <= kMaxDib) {
            const __m128i dib = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(dib_.data() + pos));
            const __m128i expect = _mm_add_epi8(
                _mm_set1_epi8(static_cast<char>(d)), ramp);
            const auto le =
                static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
                    _mm_min_epu8(dib, expect), dib))) &
                0xFFu;
            const auto eq = static_cast<unsigned>(_mm_movemask_epi8(
                                _mm_cmpeq_epi8(dib, expect))) &
                            0xFFu;
            const unsigned lt = le & ~eq;
            const unsigned stop =
                lt != 0 ? static_cast<unsigned>(__builtin_ctz(lt)) : 8u;
            // Every eq lane before the chain's end is a slot from our
            // home bucket; compare keys in order.
            for (unsigned m = eq; m != 0; m &= m - 1) {
                const auto j =
                    static_cast<unsigned>(__builtin_ctz(m));
                if (j >= stop)
                    break;
                if (slots_[pos + j].key == key)
                    return pos + j;
            }
            if (stop < 8)
                return kNoSlot;
            pos += 8;
            d += 8;
        }
        return probeScalar(key, pos, d);
    }
#endif

    /** Prefetch a slot's dib byte and key/payload lines. */
    void
    prefetchSlot(size_t pos) const
    {
        prefetchRead(dib_.data() + pos);
        prefetchRead(slots_.data() + pos);
    }

    /** Shared body of the const/non-const findBatch overloads. */
    template <typename Self, typename Ptr>
    static size_t
    findBatchImpl(Self &self, std::span<const uint64_t> keys,
                  std::span<Ptr> out)
    {
        SIEVE_DCHECK(out.size() >= keys.size());
        if (self.slots_.empty()) {
            for (size_t i = 0; i < keys.size(); ++i)
                out[i] = nullptr;
            return 0;
        }
        const size_t mask = self.slots_.size() - 1;
#if SIEVE_FLAT_INDEX_SIMD
        const bool simd = batchSimdEnabled();
#endif
        size_t found = 0;
        size_t home[kBatchChunk];
        for (size_t base = 0; base < keys.size();
             base += kBatchChunk) {
            const size_t n =
                std::min(kBatchChunk, keys.size() - base);
            // Pass 1: hash ahead. Home slots come from arithmetic
            // only, so nothing here waits on memory; the first
            // kPrefetchAhead lines start toward L1 immediately.
            for (size_t i = 0; i < n; ++i) {
                home[i] = mix64(keys[base + i]) & mask;
                if (i < kPrefetchAhead)
                    self.prefetchSlot(home[i]);
            }
            // Pass 2: resolve in order, topping the prefetch window
            // up to kPrefetchAhead probes ahead of the cursor.
            for (size_t i = 0; i < n; ++i) {
                if (i + kPrefetchAhead < n)
                    self.prefetchSlot(home[i + kPrefetchAhead]);
                const uint64_t key = keys[base + i];
#if SIEVE_FLAT_INDEX_SIMD
                const size_t pos =
                    simd ? self.probeSimd(key, home[i])
                         : self.probeScalar(key, home[i], 1);
#else
                const size_t pos =
                    self.probeScalar(key, home[i], 1);
#endif
                if (pos == kNoSlot) {
                    out[base + i] = nullptr;
                } else {
                    out[base + i] = &self.slots_[pos].payload;
                    ++found;
                }
            }
        }
        return found;
    }

    /** Backward-shift deletion starting at an occupied slot. */
    void
    eraseAt(size_t pos)
    {
        const size_t mask = slots_.size() - 1;
        while (true) {
            const size_t nxt = (pos + 1) & mask;
            const unsigned nxt_d = dib_[nxt];
            if (nxt_d <= 1)
                break; // chain ends: next slot is empty or at home
            slots_[pos] = slots_[nxt];
            dib_[pos] = static_cast<uint8_t>(nxt_d - 1);
            pos = nxt;
        }
        dib_[pos] = 0;
        --count_;
    }

    // SIEVE_MAY_ALLOC: amortized table growth. Guarded hot paths
    // either pre-reserve (reserveEpochBlocks) or condition their
    // region on hasCapacityFor(), so an armed guard never reaches a
    // growing findOrInsert.
    void SIEVE_MAY_ALLOC
    rehash(size_t new_slots)
    {
        std::vector<Slot> old_slots;
        std::vector<uint8_t> old_dib;
        old_slots.swap(slots_);
        old_dib.swap(dib_);
        slots_.resize(new_slots);
        dib_.assign(new_slots, 0);
        count_ = 0;
        for (size_t i = 0; i < old_slots.size(); ++i)
            if (old_dib[i] != 0)
                findOrInsert(old_slots[i].key)
                    .first[0] = old_slots[i].payload;
    }

    std::vector<Slot> slots_;
    // sieve-lint: charged(flatIndexFootprintBytes adds one metadata
    // byte per slot for this array)
    std::vector<uint8_t> dib_;
    size_t count_ = 0;
};

/**
 * Doubly-linked list in a contiguous arena, linked by 32-bit node
 * indices instead of pointers: 16 bytes per node, one allocation for
 * the whole list, indices stable across growth (vector reallocation
 * copies nodes; indices, unlike pointers, survive). Erased nodes go
 * on a freelist and are reused. Backs the LRU/FIFO recency order and
 * the CLOCK ring of the flat block cache.
 */
class IndexList
{
  public:
    /** Null node index (no node / end of list). */
    static constexpr uint32_t kNull = UINT32_MAX;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    uint32_t head() const { return head_; }
    uint32_t tail() const { return tail_; }
    uint32_t next(uint32_t node) const { return nodes_[node].next; }
    uint32_t prev(uint32_t node) const { return nodes_[node].prev; }
    uint64_t value(uint32_t node) const { return nodes_[node].value; }

    void reserve(size_t nodes) { nodes_.reserve(nodes); }

    void
    clear()
    {
        nodes_.clear();
        head_ = tail_ = free_ = kNull;
        size_ = 0;
    }

    /** Prepend a value. @return its node index (stable until erase). */
    uint32_t
    pushFront(uint64_t value)
    {
        return insertBefore(head_, value);
    }

    /**
     * Insert before `pos` (kNull appends at the tail, matching
     * std::list::insert(end(), v)). @return the new node's index.
     */
    uint32_t
    insertBefore(uint32_t pos, uint64_t value)
    {
        const uint32_t node = allocNode(value);
        Node &n = nodes_[node];
        if (pos == kNull) {
            n.prev = tail_;
            n.next = kNull;
            if (tail_ != kNull)
                nodes_[tail_].next = node;
            tail_ = node;
            if (head_ == kNull)
                head_ = node;
        } else {
            Node &at = nodes_[pos];
            n.prev = at.prev;
            n.next = pos;
            if (at.prev != kNull)
                nodes_[at.prev].next = node;
            else
                head_ = node;
            at.prev = node;
        }
        ++size_;
        return node;
    }

    /** Unlink a node and splice it to the front (LRU promotion). */
    void
    moveToFront(uint32_t node)
    {
        if (head_ == node)
            return;
        unlink(node);
        Node &n = nodes_[node];
        n.prev = kNull;
        n.next = head_;
        if (head_ != kNull)
            nodes_[head_].prev = node;
        head_ = node;
        if (tail_ == kNull)
            tail_ = node;
    }

    /** Unlink a node and recycle it (its index may be reused). */
    void
    erase(uint32_t node)
    {
        unlink(node);
        nodes_[node].next = free_;
        free_ = node;
        SIEVE_DCHECK(size_ > 0);
        --size_;
    }

    /** Arena footprint per the util/footprint.hpp convention. */
    uint64_t
    memoryBytes() const
    {
        return static_cast<uint64_t>(nodes_.capacity()) * sizeof(Node);
    }

    /**
     * Audit the chain: forward and backward walks agree with size(),
     * terminate at head/tail, and the freelist accounts for exactly
     * the remaining arena nodes. Aborts on violation.
     */
    void
    checkInvariants() const
    {
        size_t forward = 0;
        uint32_t last = kNull;
        for (uint32_t n = head_; n != kNull; n = nodes_[n].next) {
            SIEVE_CHECK(n < nodes_.size(), "list node %u out of arena",
                        n);
            SIEVE_CHECK(nodes_[n].prev == last,
                        "node %u prev link mismatch", n);
            last = n;
            SIEVE_CHECK(++forward <= size_,
                        "forward walk exceeds size %zu (cycle?)",
                        size_);
        }
        SIEVE_CHECK(last == tail_, "tail does not end the chain");
        SIEVE_CHECK(forward == size_,
                    "forward walk saw %zu nodes, size is %zu", forward,
                    size_);
        size_t free_nodes = 0;
        for (uint32_t n = free_; n != kNull; n = nodes_[n].next) {
            SIEVE_CHECK(n < nodes_.size());
            SIEVE_CHECK(++free_nodes <= nodes_.size() - size_,
                        "freelist longer than the erased population");
        }
        SIEVE_CHECK(free_nodes == nodes_.size() - size_,
                    "freelist holds %zu nodes, expected %zu",
                    free_nodes, nodes_.size() - size_);
    }

  private:
    struct Node
    {
        uint64_t value;
        uint32_t prev;
        uint32_t next;
    };

    // SIEVE_MAY_ALLOC: pops the free list in steady state; the arena
    // push_back only runs while the structure is still growing, and
    // BlockCache covers warmup growth with an explicit disarm.
    SIEVE_MAY_ALLOC uint32_t
    allocNode(uint64_t value)
    {
        uint32_t node;
        if (free_ != kNull) {
            node = free_;
            free_ = nodes_[node].next;
        } else {
            SIEVE_CHECK(nodes_.size() < kNull,
                        "IndexList arena exceeds 2^32 - 1 nodes");
            node = static_cast<uint32_t>(nodes_.size());
            nodes_.push_back(Node{});
        }
        nodes_[node].value = value;
        return node;
    }

    void
    unlink(uint32_t node)
    {
        Node &n = nodes_[node];
        if (n.prev != kNull)
            nodes_[n.prev].next = n.next;
        else
            head_ = n.next;
        if (n.next != kNull)
            nodes_[n.next].prev = n.prev;
        else
            tail_ = n.prev;
    }

    std::vector<Node> nodes_;
    uint32_t head_ = kNull;
    uint32_t tail_ = kNull;
    uint32_t free_ = kNull;
    size_t size_ = 0;
};

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_FLAT_INDEX_HPP
