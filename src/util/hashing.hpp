/**
 * @file
 * 64-bit mixing hash functions.
 *
 * The IMCT (imprecise miss-count table, Section 3.3 of the paper) maps a
 * huge block-address space onto a fixed number of slots; the quality of
 * that mapping controls how much aliasing pollutes the sieve. We use
 * finalizer-style mixers (splitmix64 / murmur3 fmix64) which pass
 * avalanche tests and are cheap enough for the per-miss critical path.
 */

#ifndef SIEVESTORE_UTIL_HASHING_HPP
#define SIEVESTORE_UTIL_HASHING_HPP

#include <cstdint>

namespace sievestore {
namespace util {

/** splitmix64 finalizer: bijective 64-bit mix with good avalanche. */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** murmur3 fmix64 finalizer (a second, independent mixing family). */
constexpr uint64_t
fmix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * Hash a 64-bit key with one of several independent seeds. Used where
 * two decorrelated hash functions of the same key are needed.
 */
constexpr uint64_t
seededHash(uint64_t key, uint64_t seed)
{
    return fmix64(mix64(key ^ (seed * 0x9e3779b97f4a7c15ULL)));
}

/**
 * Reduce a hash onto [0, n) without modulo bias using the
 * multiply-shift ("Lemire") reduction. @pre n > 0.
 */
constexpr uint64_t
reduceRange(uint64_t hash, uint64_t n)
{
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(hash) * static_cast<__uint128_t>(n)) >> 64);
}

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_HASHING_HPP
