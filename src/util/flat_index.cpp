/**
 * @file
 * Runtime dispatch state for FlatIndex::findBatch's probe loop.
 *
 * The AVX2 dib scan is compiled unconditionally (function-level target
 * attribute), so the choice between it and the scalar loop is a plain
 * boolean resolved once per findBatch call: CPU support, clamped by
 * the SIEVE_BATCH_SIMD environment variable and setBatchSimd(). Both
 * paths return bit-identical results (proven by the batchkernel
 * differential suites); the toggle exists for CI's forced-on/off
 * sanitizer runs and for benchmarking the scalar floor.
 */

#include "util/flat_index.hpp"

#include <cstdlib>

namespace sievestore {
namespace util {

namespace {

bool
cpuHasAvx2()
{
#if SIEVE_FLAT_INDEX_SIMD
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
initialSimd()
{
    if (!cpuHasAvx2())
        return false;
    // SIEVE_BATCH_SIMD=0 forces the scalar probe loop from process
    // start (CI's sanitizer matrix runs the batchkernel suites both
    // ways); any other value — or none — takes the AVX2 path when the
    // CPU has it.
    const char *env = std::getenv("SIEVE_BATCH_SIMD");
    return env == nullptr || env[0] != '0';
}

bool g_simd = initialSimd();

} // namespace

bool
batchSimdSupported()
{
    return cpuHasAvx2();
}

bool
batchSimdEnabled()
{
    return g_simd;
}

bool
setBatchSimd(bool enabled)
{
    g_simd = enabled && cpuHasAvx2();
    return g_simd;
}

} // namespace util
} // namespace sievestore
