/**
 * @file
 * Deterministic pseudo-random number generation and samplers.
 *
 * All stochastic components of the library (synthetic trace generation,
 * RandSieve policies, random replacement) draw from Rng so that every
 * experiment is reproducible from a single seed.
 */

#ifndef SIEVESTORE_UTIL_RANDOM_HPP
#define SIEVESTORE_UTIL_RANDOM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sievestore {
namespace util {

/**
 * xoshiro256** PRNG. Small, fast, and statistically strong enough for
 * workload synthesis; deterministic across platforms (unlike
 * std::mt19937 distributions, whose outputs are implementation-defined
 * through std::uniform_*_distribution).
 */
class Rng
{
  public:
    /** Seed the generator; distinct seeds give decorrelated streams. */
    explicit Rng(uint64_t seed = 0x5eed5107eULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    uint64_t nextInRange(uint64_t lo, uint64_t hi);

    /**
     * Exponentially distributed double with the given mean.
     * Used for inter-arrival time synthesis.
     */
    double nextExponential(double mean);

    /** Standard normal deviate (Box-Muller; one value per call). */
    double nextGaussian();

    /** Poisson deviate (Knuth's method; intended for small lambda). */
    uint64_t nextPoisson(double lambda);

    /** Lognormal deviate: exp(mu + sigma * N(0,1)). */
    double nextLogNormal(double mu, double sigma);

    /**
     * Split off an independent child generator. The child stream is
     * decorrelated from this one and from other children.
     */
    Rng split();

  private:
    uint64_t s[4];
};

/**
 * Bounded Zipf(s) sampler over ranks {1..n} using the rejection-inversion
 * method of Hormann and Derflinger, which is O(1) per sample and exact
 * (no truncated-harmonic approximation). Popularity skew in storage
 * traces is classically Zipf-like; the synthetic generator composes this
 * with explicit hot/cold classes (see trace/synthetic.hpp).
 */
class ZipfSampler
{
  public:
    /**
     * @param n        number of ranks (>= 1)
     * @param exponent skew parameter s >= 0 (0 = uniform)
     */
    ZipfSampler(uint64_t n, double exponent);

    /** Sample a rank in [1, n]; rank 1 is most popular. */
    uint64_t sample(Rng &rng) const;

    uint64_t size() const { return n; }
    double exponent() const { return s; }

  private:
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;

    uint64_t n;
    double s;
    double hX1;
    double hN;
    double c;
};

/**
 * Discrete distribution over {0..k-1} with arbitrary weights, sampled by
 * Walker's alias method: O(k) setup, O(1) per sample. Used to pick which
 * server/volume/popularity class a synthetic request lands in.
 */
class AliasTable
{
  public:
    /** @param weights non-negative weights; at least one must be > 0. */
    explicit AliasTable(const std::vector<double> &weights);

    /** Sample an index with probability proportional to its weight. */
    size_t sample(Rng &rng) const;

    size_t size() const { return prob.size(); }

  private:
    std::vector<double> prob;
    std::vector<uint32_t> alias;
};

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_RANDOM_HPP
