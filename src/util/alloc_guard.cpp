/**
 * @file
 * AllocGuard state and the replaced global allocation functions.
 *
 * This translation unit is pulled into every binary that opens a
 * guard region (the region macros reference the out-of-line
 * enter/exit functions), which is exactly what drags the replaced
 * operator new / delete definitions into the link. Binaries that
 * never open a region may link the stock allocator; their guard depth
 * would always be zero anyway.
 *
 * The wrappers cost one thread-local read per allocation. Sanitizers
 * still interpose the underlying malloc/free, so ASan/TSan coverage
 * of guarded binaries is unchanged.
 */

#include "util/alloc_guard.hpp"

#ifndef SIEVE_ALLOC_GUARD_DISABLED

#include <cstdio>
#include <cstdlib>
#include <new>

namespace sievestore {
namespace util {
namespace alloc_guard_detail {

namespace {

thread_local int no_alloc_depth = 0;
thread_local int allow_depth = 0;
thread_local uint64_t allocation_count = 0;

[[noreturn]] void
violation(std::size_t bytes) noexcept
{
    // Disarm before reporting: fprintf, stack unwinding, and abort
    // handlers may themselves allocate on this thread.
    no_alloc_depth = 0;
    std::fprintf(stderr,
                 "AllocGuard: operator new(%zu) inside a "
                 "SIEVE_ASSERT_NO_ALLOC region\n",
                 bytes);
    std::fflush(stderr);
    std::abort();
}

/** Malloc with the region check; returns nullptr on exhaustion. */
void *
guardedAlloc(std::size_t bytes) noexcept
{
    ++allocation_count;
    if (no_alloc_depth > 0 && allow_depth == 0)
        violation(bytes);
    return std::malloc(bytes != 0 ? bytes : 1);
}

/** Aligned variant (posix_memalign requires pointer-sized minimum). */
void *
guardedAlignedAlloc(std::size_t bytes, std::size_t alignment) noexcept
{
    ++allocation_count;
    if (no_alloc_depth > 0 && allow_depth == 0)
        violation(bytes);
    if (alignment < sizeof(void *))
        alignment = sizeof(void *);
    void *ptr = nullptr;
    if (posix_memalign(&ptr, alignment, bytes != 0 ? bytes : 1) != 0)
        return nullptr;
    return ptr;
}

/** Standard throwing-new protocol around a failable allocator. */
template <typename Alloc>
void *
allocOrThrow(std::size_t bytes, Alloc &&alloc)
{
    for (;;) {
        void *ptr = alloc(bytes);
        if (ptr)
            return ptr;
        std::new_handler handler = std::get_new_handler();
        if (!handler)
            throw std::bad_alloc();
        handler();
    }
}

} // namespace

void
enterNoAlloc() noexcept
{
    ++no_alloc_depth;
}

void
exitNoAlloc() noexcept
{
    --no_alloc_depth;
}

void
enterAllow() noexcept
{
    ++allow_depth;
}

void
exitAllow() noexcept
{
    --allow_depth;
}

bool
inNoAllocRegion() noexcept
{
    return no_alloc_depth > 0 && allow_depth == 0;
}

uint64_t
threadAllocationCount() noexcept
{
    return allocation_count;
}

} // namespace alloc_guard_detail
} // namespace util
} // namespace sievestore

namespace ssag = sievestore::util::alloc_guard_detail;

// ---- replaced global allocation functions -------------------------
// The full replaceable set (plain, array, nothrow, aligned) so every
// allocation in a guarded binary funnels through the region check and
// new/delete stay a matched malloc/free pair.

void *
operator new(std::size_t bytes)
{
    return ssag::allocOrThrow(bytes, [](std::size_t b) {
        return ssag::guardedAlloc(b);
    });
}

void *
operator new[](std::size_t bytes)
{
    return ssag::allocOrThrow(bytes, [](std::size_t b) {
        return ssag::guardedAlloc(b);
    });
}

void *
operator new(std::size_t bytes, const std::nothrow_t &) noexcept
{
    return ssag::guardedAlloc(bytes);
}

void *
operator new[](std::size_t bytes, const std::nothrow_t &) noexcept
{
    return ssag::guardedAlloc(bytes);
}

void *
operator new(std::size_t bytes, std::align_val_t alignment)
{
    return ssag::allocOrThrow(bytes, [alignment](std::size_t b) {
        return ssag::guardedAlignedAlloc(
            b, static_cast<std::size_t>(alignment));
    });
}

void *
operator new[](std::size_t bytes, std::align_val_t alignment)
{
    return ssag::allocOrThrow(bytes, [alignment](std::size_t b) {
        return ssag::guardedAlignedAlloc(
            b, static_cast<std::size_t>(alignment));
    });
}

void *
operator new(std::size_t bytes, std::align_val_t alignment,
             const std::nothrow_t &) noexcept
{
    return ssag::guardedAlignedAlloc(
        bytes, static_cast<std::size_t>(alignment));
}

void *
operator new[](std::size_t bytes, std::align_val_t alignment,
               const std::nothrow_t &) noexcept
{
    return ssag::guardedAlignedAlloc(
        bytes, static_cast<std::size_t>(alignment));
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t,
                const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t,
                  const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

#endif // SIEVE_ALLOC_GUARD_DISABLED
