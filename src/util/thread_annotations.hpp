/**
 * @file
 * Clang thread-safety annotations and an annotated mutex.
 *
 * The concurrency substrate (util/spsc_queue.hpp, the parallel replay
 * engine) documents its locking and role discipline in prose and
 * proves it dynamically (TSan on sampled inputs, the SPSC model
 * checker). These macros turn the discipline into compiler-checked
 * facts: `-Wthread-safety -Wthread-safety-beta` (enabled for Clang
 * builds by the top-level CMakeLists, hence under -Werror in the CI
 * presets) rejects any access to a GUARDED_BY field without its
 * capability and any call to a REQUIRES function without the required
 * role. scripts/sieve_analyze.py re-checks the same annotations at
 * function granularity with no toolchain dependency, so the discipline
 * is enforced even where only GCC is available.
 *
 * Vocabulary (the standard Clang pattern, kept under the canonical
 * names so the analysis documentation applies verbatim):
 *
 *  - CAPABILITY(name) / SCOPED_CAPABILITY on the lock types;
 *  - GUARDED_BY(cap) on data members — reads and writes require the
 *    capability (use it for genuinely shared state *and* for
 *    role-private fields like the SPSC cached indices, where the
 *    "capability" is a thread role rather than a mutex);
 *  - REQUIRES(cap...) on functions that must be entered with the
 *    capability held;
 *  - ACQUIRE / RELEASE / TRY_ACQUIRE on lock primitives;
 *  - ACQUIRED_BEFORE / ACQUIRED_AFTER declare lock ordering between
 *    members, turning deadlock freedom into a checked property;
 *  - TS_ASSERT(cap) on assertion functions: calling one tells the
 *    analysis the capability is held from that point on. This is how
 *    thread *roles* (SPSC producer/consumer) are claimed — the role is
 *    conferred by construction (exactly one thread runs the producer
 *    loop), not by a lock, so the claiming function asserts rather
 *    than acquires.
 *  - NO_THREAD_SAFETY_ANALYSIS as the last-resort opt-out.
 *
 * All macros expand to nothing on compilers without the attributes, so
 * GCC builds are unaffected.
 */

#ifndef SIEVESTORE_UTIL_THREAD_ANNOTATIONS_HPP
#define SIEVESTORE_UTIL_THREAD_ANNOTATIONS_HPP

#include <mutex>

#if defined(__clang__)
#define SIEVE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SIEVE_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) SIEVE_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY SIEVE_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) SIEVE_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) SIEVE_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...)                                              \
    SIEVE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...)                                               \
    SIEVE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...)                                                     \
    SIEVE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...)                                                      \
    SIEVE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...)                                                      \
    SIEVE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...)                                                  \
    SIEVE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SIEVE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TS_ASSERT(x) SIEVE_THREAD_ANNOTATION(assert_capability(x))
#define NO_THREAD_SAFETY_ANALYSIS                                         \
    SIEVE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sievestore {
namespace util {

/**
 * A capability: an annotated std::mutex. libstdc++'s std::mutex
 * carries no thread-safety attributes, so GUARDED_BY(a std::mutex)
 * is rejected by the analysis; this thin wrapper is the annotated
 * stand-in. Use with MutexLock (below); for condition-variable waits
 * pair it with std::condition_variable_any, which accepts any
 * lockable (see sim/sharded_parallel.cpp DayBarrier).
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/**
 * Scoped lock over a Mutex (RAII, like std::lock_guard) that the
 * analysis understands. Exposes lock()/unlock() so it satisfies
 * BasicLockable — std::condition_variable_any::wait() releases and
 * reacquires through these during a wait; the capability is held again
 * before wait() returns, so functions annotated as holding it remain
 * correct across the wait.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** BasicLockable, for std::condition_variable_any. */
    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }

  private:
    Mutex &mu_;
};

/**
 * A thread role, used as a capability: SPSC producer / consumer
 * endpoints are capabilities conferred by construction (the contract
 * says exactly one thread plays each role), so the role object carries
 * no runtime state — it exists only for GUARDED_BY / REQUIRES
 * annotations, claimed via TS_ASSERT assertion functions.
 */
class CAPABILITY("role") ThreadRole
{
};

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_THREAD_ANNOTATIONS_HPP
