/**
 * @file
 * The repository-wide memoryBytes() accounting convention.
 *
 * Every structure that reports a metastate footprint (IMCT, MCT,
 * BlockCache, the discrete selectors) derives it from these helpers so
 * the numbers are comparable across structures and auditable in one
 * place. The convention models libstdc++ on LP64:
 *
 *  - a contiguous vector costs capacity() * sizeof(T);
 *  - an unordered container node costs its value_type plus one forward
 *    pointer, and the bucket array costs one pointer per bucket.
 *
 *  - a doubly-linked list node costs its value_type plus two pointers;
 *  - a flat open-addressing table (util/flat_index.hpp) costs its
 *    allocated slot count times (slot bytes + one metadata byte) —
 *    unlike the node-based formulas this charges *allocated* slots,
 *    not live entries, because the slot array is the whole footprint.
 *
 * Per-malloc allocator overhead and the (type-dependent) cached hash
 * code are deliberately excluded: the goal is a stable, conservative
 * convention for cost *comparisons*, not a byte-exact heap profile.
 *
 * Scope note (updated with the flat-index refactor): a structure's
 * memoryBytes() reports *all* per-entry bookkeeping it owns. In
 * particular BlockCache::memoryBytes() now covers residency AND
 * replacement-policy state — the flat cache stores both in one slot,
 * so they are no longer separable, and the reference build adds the
 * policy's node-based containers to stay comparable.
 */

#ifndef SIEVESTORE_UTIL_FOOTPRINT_HPP
#define SIEVESTORE_UTIL_FOOTPRINT_HPP

#include <cstdint>
#include <vector>

namespace sievestore {
namespace util {

/** Per-node overhead of an unordered container: the forward pointer. */
constexpr uint64_t kUnorderedNodeOverheadBytes = sizeof(void *);

/** Per-node overhead of a std::list: the prev/next pointers. */
constexpr uint64_t kListNodeOverheadBytes = 2 * sizeof(void *);

/** Footprint of an unordered_map / unordered_set per the convention. */
template <typename UnorderedContainer>
uint64_t
unorderedFootprintBytes(const UnorderedContainer &c)
{
    return static_cast<uint64_t>(c.size()) *
               (sizeof(typename UnorderedContainer::value_type) +
                kUnorderedNodeOverheadBytes) +
           static_cast<uint64_t>(c.bucket_count()) * sizeof(void *);
}

/** Footprint of a vector per the convention. */
template <typename T>
uint64_t
vectorFootprintBytes(const std::vector<T> &v)
{
    return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

/** Footprint of a std::list per the convention. */
template <typename List>
uint64_t
listFootprintBytes(const List &l)
{
    return static_cast<uint64_t>(l.size()) *
           (sizeof(typename List::value_type) + kListNodeOverheadBytes);
}

/**
 * Footprint of a flat open-addressing table: `slot_count` allocated
 * slots of `slot_bytes` each plus one displacement-metadata byte per
 * slot. Charged on allocation, not occupancy (see the header comment).
 */
constexpr uint64_t
flatIndexFootprintBytes(uint64_t slot_count, uint64_t slot_bytes)
{
    return slot_count * (slot_bytes + 1);
}

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_FOOTPRINT_HPP
