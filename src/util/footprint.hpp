/**
 * @file
 * The repository-wide memoryBytes() accounting convention.
 *
 * Every structure that reports a metastate footprint (IMCT, MCT,
 * BlockCache, the discrete selectors) derives it from these helpers so
 * the numbers are comparable across structures and auditable in one
 * place. The convention models libstdc++ on LP64:
 *
 *  - a contiguous vector costs capacity() * sizeof(T);
 *  - an unordered container node costs its value_type plus one forward
 *    pointer, and the bucket array costs one pointer per bucket.
 *
 * Per-malloc allocator overhead and the (type-dependent) cached hash
 * code are deliberately excluded: the goal is a stable, conservative
 * convention for cost *comparisons*, not a byte-exact heap profile.
 */

#ifndef SIEVESTORE_UTIL_FOOTPRINT_HPP
#define SIEVESTORE_UTIL_FOOTPRINT_HPP

#include <cstdint>
#include <vector>

namespace sievestore {
namespace util {

/** Per-node overhead of an unordered container: the forward pointer. */
constexpr uint64_t kUnorderedNodeOverheadBytes = sizeof(void *);

/** Footprint of an unordered_map / unordered_set per the convention. */
template <typename UnorderedContainer>
uint64_t
unorderedFootprintBytes(const UnorderedContainer &c)
{
    return static_cast<uint64_t>(c.size()) *
               (sizeof(typename UnorderedContainer::value_type) +
                kUnorderedNodeOverheadBytes) +
           static_cast<uint64_t>(c.bucket_count()) * sizeof(void *);
}

/** Footprint of a vector per the convention. */
template <typename T>
uint64_t
vectorFootprintBytes(const std::vector<T> &v)
{
    return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_FOOTPRINT_HPP
