#include "util/check.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/alloc_guard.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace util {

void
checkFailed(const char *file, int line, const char *macro_name,
            const char *expr, const char *msg_fmt, ...)
{
    // A contract can fail inside a SIEVE_ASSERT_NO_ALLOC region; the
    // report (vformat, std::string) must still be allowed to allocate.
    AllocGuardDisarm disarm;
    std::string message;
    if (msg_fmt) {
        va_list ap;
        va_start(ap, msg_fmt);
        message = vformat(msg_fmt, ap);
        va_end(ap);
    }
    if (message.empty()) {
        std::fprintf(stderr, "%s:%d: %s failed: %s\n", file, line,
                     macro_name, expr);
    } else {
        std::fprintf(stderr, "%s:%d: %s failed: %s — %s\n", file, line,
                     macro_name, expr, message.c_str());
    }
    std::fflush(stderr);
    std::abort();
}

} // namespace util
} // namespace sievestore
