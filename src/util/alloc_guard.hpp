/**
 * @file
 * Allocation guards: mechanically enforce the "zero-allocation hot
 * path" claim.
 *
 * The flat-index refactor (DESIGN.md section 7) made the cache,
 * sieve, and replay hot paths allocation-free *by construction*:
 * capacity-reserved tables, index-linked arenas with freelists, POD
 * hand-off slots. Nothing enforced it — a future std::string in a
 * policy transition or an accidental rehash would silently regress
 * the measured numbers. AllocGuard turns the claim into a checked
 * property:
 *
 *  - alloc_guard.cpp replaces the global allocation functions
 *    (operator new / delete, array, nothrow, and aligned forms) with
 *    thin wrappers that consult a thread-local region depth;
 *  - SIEVE_ASSERT_NO_ALLOC opens a scoped region on the current
 *    thread; any allocation before scope exit reports the size and
 *    aborts (usable from gtest death tests, like SIEVE_CHECK);
 *  - SIEVE_ASSERT_NO_ALLOC_WHEN(cond) engages only when `cond` holds,
 *    for paths that are allocation-free conditionally (e.g. the flat
 *    cache engine but not the node-based reference policies);
 *  - AllocGuardDisarm re-permits allocation inside a region; the
 *    failure-reporting paths (checkFailed, fatal, panic) use it so a
 *    contract violation inside a region still prints its message.
 *
 * The guard is thread-local throughout: regions on one thread never
 * constrain allocation on another (the parallel replay reader guards
 * its push loop while workers construct reports freely). Deallocation
 * is deliberately *not* policed — the hot structures recycle via
 * freelists, and a stray free indicates churn, not a footprint
 * regression.
 *
 * Configure with -DSIEVE_ALLOC_GUARD=OFF to compile the regions out
 * and leave the global allocation functions untouched.
 */

#ifndef SIEVESTORE_UTIL_ALLOC_GUARD_HPP
#define SIEVESTORE_UTIL_ALLOC_GUARD_HPP

#include <cstdint>

namespace sievestore {
namespace util {

#ifndef SIEVE_ALLOC_GUARD_DISABLED

namespace alloc_guard_detail {

/** Raise / lower the calling thread's no-alloc region depth. */
void enterNoAlloc() noexcept;
void exitNoAlloc() noexcept;

/** Raise / lower the calling thread's disarm depth. */
void enterAllow() noexcept;
void exitAllow() noexcept;

/** True when an armed no-alloc region covers the calling thread. */
bool inNoAllocRegion() noexcept;

/** Allocations observed on the calling thread since it started. */
uint64_t threadAllocationCount() noexcept;

} // namespace alloc_guard_detail

/**
 * Scoped no-alloc region. Prefer the SIEVE_ASSERT_NO_ALLOC /
 * SIEVE_ASSERT_NO_ALLOC_WHEN macros, which compile out with
 * SIEVE_ALLOC_GUARD=OFF.
 */
class AllocGuard
{
  public:
    explicit AllocGuard(bool engage = true) noexcept : engaged(engage)
    {
        if (engaged)
            alloc_guard_detail::enterNoAlloc();
    }

    ~AllocGuard()
    {
        if (engaged)
            alloc_guard_detail::exitNoAlloc();
    }

    AllocGuard(const AllocGuard &) = delete;
    AllocGuard &operator=(const AllocGuard &) = delete;

    /** True when an armed region covers the calling thread. */
    static bool
    active() noexcept
    {
        return alloc_guard_detail::inNoAllocRegion();
    }

    /** Allocations observed on the calling thread so far. */
    static uint64_t
    allocationCount() noexcept
    {
        return alloc_guard_detail::threadAllocationCount();
    }

  private:
    const bool engaged;
};

/**
 * Scoped exemption: allocation inside an enclosing no-alloc region is
 * permitted again until scope exit. For failure reporting and other
 * cold paths that legitimately allocate while a region is open.
 */
class AllocGuardDisarm
{
  public:
    AllocGuardDisarm() noexcept { alloc_guard_detail::enterAllow(); }
    ~AllocGuardDisarm() { alloc_guard_detail::exitAllow(); }

    AllocGuardDisarm(const AllocGuardDisarm &) = delete;
    AllocGuardDisarm &operator=(const AllocGuardDisarm &) = delete;
};

#else // SIEVE_ALLOC_GUARD_DISABLED

/** Guard disabled: keep the API shape, enforce nothing. */
class AllocGuard
{
  public:
    explicit AllocGuard(bool = true) noexcept {}
    AllocGuard(const AllocGuard &) = delete;
    AllocGuard &operator=(const AllocGuard &) = delete;
    static bool active() noexcept { return false; }
    static uint64_t allocationCount() noexcept { return 0; }
};

class AllocGuardDisarm
{
  public:
    // User-provided (not defaulted) so disabled-build locals do not
    // trip -Wunused-variable.
    AllocGuardDisarm() noexcept {}
    ~AllocGuardDisarm() {}
    AllocGuardDisarm(const AllocGuardDisarm &) = delete;
    AllocGuardDisarm &operator=(const AllocGuardDisarm &) = delete;
};

#endif // SIEVE_ALLOC_GUARD_DISABLED

} // namespace util
} // namespace sievestore

#define SIEVE_ALLOC_GUARD_CONCAT2(a, b) a##b
#define SIEVE_ALLOC_GUARD_CONCAT(a, b) SIEVE_ALLOC_GUARD_CONCAT2(a, b)

#ifndef SIEVE_ALLOC_GUARD_DISABLED

/**
 * Open a no-alloc region on the calling thread until the end of the
 * enclosing scope; any allocation inside reports and aborts.
 */
#define SIEVE_ASSERT_NO_ALLOC                                             \
    ::sievestore::util::AllocGuard SIEVE_ALLOC_GUARD_CONCAT(              \
        sieve_no_alloc_region_, __LINE__)

/** As SIEVE_ASSERT_NO_ALLOC, but engaged only when `cond` holds. */
#define SIEVE_ASSERT_NO_ALLOC_WHEN(cond)                                  \
    ::sievestore::util::AllocGuard SIEVE_ALLOC_GUARD_CONCAT(              \
        sieve_no_alloc_region_, __LINE__)((cond))

#else

#define SIEVE_ASSERT_NO_ALLOC static_cast<void>(0)
#define SIEVE_ASSERT_NO_ALLOC_WHEN(cond)                                  \
    static_cast<void>(sizeof(!(cond)))

#endif // SIEVE_ALLOC_GUARD_DISABLED

#endif // SIEVESTORE_UTIL_ALLOC_GUARD_HPP
