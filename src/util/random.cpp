#include "util/random.hpp"

#include <cmath>
#include <numeric>

#include "util/hashing.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace util {

namespace {

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    // Expand the single seed through splitmix64, the recommended
    // initialization for the xoshiro family (avoids low-entropy states).
    uint64_t x = seed;
    for (auto &word : s) {
        x += 0x9e3779b97f4a7c15ULL;
        word = mix64(x);
    }
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    return reduceRange(next(), bound);
}

double
Rng::nextDouble()
{
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

uint64_t
Rng::nextInRange(uint64_t lo, uint64_t hi)
{
    if (lo > hi)
        panic("Rng::nextInRange: lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextExponential(double mean)
{
    // Inverse-CDF; 1 - u avoids log(0).
    return -mean * std::log(1.0 - nextDouble());
}

double
Rng::nextGaussian()
{
    // Box-Muller; discard the second value for statelessness.
    const double u1 = 1.0 - nextDouble();
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

double
Rng::nextLogNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * nextGaussian());
}

uint64_t
Rng::nextPoisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda > 30.0) {
        // Normal approximation keeps Knuth's product away from
        // underflow for large rates.
        const double v = lambda + std::sqrt(lambda) * nextGaussian();
        return v < 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-lambda);
    uint64_t k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= nextDouble();
    } while (p > limit);
    return k - 1;
}

Rng
Rng::split()
{
    return Rng(mix64(next()) ^ fmix64(next()));
}

ZipfSampler::ZipfSampler(uint64_t n_, double exponent)
    : n(n_), s(exponent)
{
    if (n == 0)
        fatal("ZipfSampler requires n >= 1");
    if (s < 0.0)
        fatal("ZipfSampler requires exponent >= 0, got %f", s);
    hX1 = hIntegral(1.5) - 1.0;
    hN = hIntegral(static_cast<double>(n) + 0.5);
    c = 2.0 - hIntegralInverse(hIntegral(2.5) - std::pow(2.0, -s));
}

double
ZipfSampler::hIntegral(double x) const
{
    // Integral of x^-s: log for s == 1, power form otherwise.
    const double log_x = std::log(x);
    if (std::abs(1.0 - s) < 1e-12)
        return log_x;
    return (std::exp((1.0 - s) * log_x) - 1.0) / (1.0 - s);
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    if (std::abs(1.0 - s) < 1e-12)
        return std::exp(x);
    double t = x * (1.0 - s) + 1.0;
    if (t < 0.0)
        t = 0.0;
    return std::exp(std::log(t) / (1.0 - s));
}

uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (n == 1)
        return 1;
    while (true) {
        const double u = hN + rng.nextDouble() * (hX1 - hN);
        const double x = hIntegralInverse(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n)
            k = n;
        const double kd = static_cast<double>(k);
        if (kd - x <= c ||
            u >= hIntegral(kd + 0.5) - std::exp(-s * std::log(kd))) {
            return k;
        }
    }
}

AliasTable::AliasTable(const std::vector<double> &weights)
{
    const size_t k = weights.size();
    if (k == 0)
        fatal("AliasTable requires at least one weight");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("AliasTable weights must be non-negative");
        total += w;
    }
    if (total <= 0.0)
        fatal("AliasTable requires at least one positive weight");

    prob.assign(k, 0.0);
    alias.assign(k, 0);

    std::vector<double> scaled(k);
    for (size_t i = 0; i < k; ++i)
        scaled[i] = weights[i] * static_cast<double>(k) / total;

    std::vector<uint32_t> small, large;
    small.reserve(k);
    large.reserve(k);
    for (size_t i = 0; i < k; ++i) {
        if (scaled[i] < 1.0)
            small.push_back(static_cast<uint32_t>(i));
        else
            large.push_back(static_cast<uint32_t>(i));
    }

    while (!small.empty() && !large.empty()) {
        const uint32_t lo = small.back();
        small.pop_back();
        const uint32_t hi = large.back();
        prob[lo] = scaled[lo];
        alias[lo] = hi;
        scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0;
        if (scaled[hi] < 1.0) {
            large.pop_back();
            small.push_back(hi);
        }
    }
    // Residuals are 1.0 up to floating-point error.
    for (uint32_t i : large)
        prob[i] = 1.0;
    for (uint32_t i : small)
        prob[i] = 1.0;
}

size_t
AliasTable::sample(Rng &rng) const
{
    const size_t i = static_cast<size_t>(rng.nextBelow(prob.size()));
    return rng.nextDouble() < prob[i] ? i : alias[i];
}

} // namespace util
} // namespace sievestore
