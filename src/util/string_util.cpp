#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace sievestore {
namespace util {

std::vector<std::string_view>
splitView(std::string_view line, char delim)
{
    std::vector<std::string_view> fields;
    size_t start = 0;
    while (true) {
        const size_t pos = line.find(delim, start);
        if (pos == std::string_view::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string_view
trimView(std::string_view sv)
{
    size_t begin = 0;
    size_t end = sv.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(sv[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(sv[end - 1]))) {
        --end;
    }
    return sv.substr(begin, end - begin);
}

bool
parseU64(std::string_view sv, uint64_t &out)
{
    sv = trimView(sv);
    if (sv.empty())
        return false;
    const auto *first = sv.data();
    const auto *last = sv.data() + sv.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

bool
parseDouble(std::string_view sv, double &out)
{
    sv = trimView(sv);
    if (sv.empty())
        return false;
    const auto *first = sv.data();
    const auto *last = sv.data() + sv.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

std::string
toLower(std::string_view sv)
{
    std::string out;
    out.reserve(sv.size());
    for (char c : sv)
        out.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    return out;
}

std::string
formatBytes(uint64_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
    double value = static_cast<double>(bytes);
    size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < sizeof(units) / sizeof(units[0])) {
        value /= 1024.0;
        ++unit;
    }
    char buf[32];
    if (unit == 0)
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
    return buf;
}

std::string
formatCount(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    const size_t n = digits.size();
    for (size_t i = 0; i < n; ++i) {
        out.push_back(digits[i]);
        const size_t rem = n - 1 - i;
        if (rem > 0 && rem % 3 == 0)
            out.push_back(',');
    }
    return out;
}

} // namespace util
} // namespace sievestore
