/**
 * @file
 * Runtime contract checking: SIEVE_CHECK / SIEVE_DCHECK /
 * SIEVE_UNREACHABLE.
 *
 * The sieve structures depend on bookkeeping invariants (windowed-
 * counter monotonicity, IMCT aliasing bounds, cache-occupancy
 * accounting) that silent corruption would turn into quietly-wrong
 * simulation results rather than crashes. These macros make the
 * contracts explicit and fail loudly:
 *
 *  - SIEVE_CHECK(cond, ...)   always compiled in; use for cheap
 *    preconditions and the checkInvariants() audit methods.
 *  - SIEVE_DCHECK(cond, ...)  compiled in debug and sanitizer builds
 *    (no NDEBUG, or SIEVE_ENABLE_DCHECKS defined); use on hot paths.
 *  - SIEVE_UNREACHABLE(...)   marks control flow that must never be
 *    reached.
 *
 * All three accept an optional printf-style message after the
 * condition. Failures print "file:line: MACRO failed: <expr> — <msg>"
 * to stderr and abort(), which keeps them usable from gtest death
 * tests. Raw assert() is banned by scripts/lint.sh in favor of these.
 */

#ifndef SIEVESTORE_UTIL_CHECK_HPP
#define SIEVESTORE_UTIL_CHECK_HPP

namespace sievestore {
namespace util {

/**
 * Report a failed contract and abort. Never returns. `msg_fmt` may be
 * null (no user message).
 */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *macro_name, const char *expr,
                              const char *msg_fmt = nullptr, ...)
    __attribute__((format(printf, 5, 6)));

} // namespace util
} // namespace sievestore

/** Always-on contract check with an optional printf-style message. */
#define SIEVE_CHECK(cond, ...)                                            \
    do {                                                                  \
        if (__builtin_expect(!(cond), 0)) {                               \
            ::sievestore::util::checkFailed(__FILE__, __LINE__,           \
                                            "SIEVE_CHECK",                \
                                            #cond __VA_OPT__(, )          \
                                                __VA_ARGS__);             \
        }                                                                 \
    } while (false)

/** Mark control flow that must never execute. */
#define SIEVE_UNREACHABLE(...)                                            \
    ::sievestore::util::checkFailed(__FILE__, __LINE__,                   \
                                    "SIEVE_UNREACHABLE",                  \
                                    "reached" __VA_OPT__(, ) __VA_ARGS__)

/**
 * Debug-only contract check: active when NDEBUG is not defined (Debug
 * builds) or when SIEVE_ENABLE_DCHECKS is defined (the sanitizer
 * presets force it on regardless of build type). Compiles to nothing —
 * the condition is not evaluated — otherwise.
 */
#if defined(SIEVE_ENABLE_DCHECKS) || !defined(NDEBUG)
#define SIEVE_DCHECKS_ENABLED 1
#define SIEVE_DCHECK(cond, ...) SIEVE_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define SIEVE_DCHECKS_ENABLED 0
#define SIEVE_DCHECK(cond, ...)                                           \
    do {                                                                  \
        (void)sizeof(!(cond));                                            \
    } while (false)
#endif

#endif // SIEVESTORE_UTIL_CHECK_HPP
