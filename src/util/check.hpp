/**
 * @file
 * Runtime contract checking: SIEVE_CHECK / SIEVE_DCHECK /
 * SIEVE_UNREACHABLE.
 *
 * The sieve structures depend on bookkeeping invariants (windowed-
 * counter monotonicity, IMCT aliasing bounds, cache-occupancy
 * accounting) that silent corruption would turn into quietly-wrong
 * simulation results rather than crashes. These macros make the
 * contracts explicit and fail loudly:
 *
 *  - SIEVE_CHECK(cond, ...)   always compiled in; use for cheap
 *    preconditions and the checkInvariants() audit methods.
 *  - SIEVE_DCHECK(cond, ...)  compiled in debug and sanitizer builds
 *    (no NDEBUG, or SIEVE_ENABLE_DCHECKS defined); use on hot paths.
 *  - SIEVE_UNREACHABLE(...)   marks control flow that must never be
 *    reached.
 *
 * All three accept an optional printf-style message after the
 * condition. Failures print "file:line: MACRO failed: <expr> — <msg>"
 * to stderr and abort(), which keeps them usable from gtest death
 * tests. Raw assert() is banned by scripts/lint.sh in favor of these.
 */

#ifndef SIEVESTORE_UTIL_CHECK_HPP
#define SIEVESTORE_UTIL_CHECK_HPP

/*
 * Static hot-path claims (read by scripts/sieve_analyze.py):
 *
 *  - SIEVE_NOALLOC marks a function as a no-alloc root: the analyzer
 *    proves that every function transitively reachable from it is
 *    allocation-free. Functions whose bodies arm SIEVE_ASSERT_NO_ALLOC
 *    (util/alloc_guard.hpp) are roots implicitly; use the annotation
 *    for hot functions that are *called from* guarded regions and must
 *    stay clean on their own (FlatIndex probes, the SPSC hand-off,
 *    the switch-dispatch policy engines).
 *  - SIEVE_MAY_ALLOC marks a deliberate escape hatch: a function that
 *    is reachable from a no-alloc root yet legitimately allocates —
 *    amortized growth that runs before the region arms (pre-reserved
 *    tables), or cold failure paths that disarm the runtime guard.
 *    The analyzer stops traversal there and lists every such boundary
 *    in its report, so each one is a reviewed, named exemption rather
 *    than a silent hole. Every use must carry a comment saying why the
 *    allocation cannot fire inside an armed region (or why the region
 *    is disarmed around it).
 *
 * Under Clang the annotations are also attached to the AST (annotate
 * attributes), so the libclang backend of sieve-analyze sees them
 * without re-lexing; under GCC they compile to nothing.
 */
#if defined(__clang__)
#define SIEVE_NOALLOC __attribute__((annotate("sieve-noalloc")))
#define SIEVE_MAY_ALLOC __attribute__((annotate("sieve-may-alloc")))
#else
#define SIEVE_NOALLOC
#define SIEVE_MAY_ALLOC
#endif

namespace sievestore {
namespace util {

/**
 * Report a failed contract and abort. Never returns. `msg_fmt` may be
 * null (no user message).
 */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *macro_name, const char *expr,
                              const char *msg_fmt = nullptr, ...)
    __attribute__((format(printf, 5, 6)));

} // namespace util
} // namespace sievestore

/** Always-on contract check with an optional printf-style message. */
#define SIEVE_CHECK(cond, ...)                                            \
    do {                                                                  \
        if (__builtin_expect(!(cond), 0)) {                               \
            ::sievestore::util::checkFailed(__FILE__, __LINE__,           \
                                            "SIEVE_CHECK",                \
                                            #cond __VA_OPT__(, )          \
                                                __VA_ARGS__);             \
        }                                                                 \
    } while (false)

/** Mark control flow that must never execute. */
#define SIEVE_UNREACHABLE(...)                                            \
    ::sievestore::util::checkFailed(__FILE__, __LINE__,                   \
                                    "SIEVE_UNREACHABLE",                  \
                                    "reached" __VA_OPT__(, ) __VA_ARGS__)

/**
 * Debug-only contract check: active when NDEBUG is not defined (Debug
 * builds) or when SIEVE_ENABLE_DCHECKS is defined (the sanitizer
 * presets force it on regardless of build type). Compiles to nothing —
 * the condition is not evaluated — otherwise.
 */
#if defined(SIEVE_ENABLE_DCHECKS) || !defined(NDEBUG)
#define SIEVE_DCHECKS_ENABLED 1
#define SIEVE_DCHECK(cond, ...) SIEVE_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define SIEVE_DCHECKS_ENABLED 0
#define SIEVE_DCHECK(cond, ...)                                           \
    do {                                                                  \
        (void)sizeof(!(cond));                                            \
    } while (false)
#endif

#endif // SIEVESTORE_UTIL_CHECK_HPP
