/**
 * @file
 * Taint-flow annotations for the observe-never-decide storage
 * contract (read by scripts/sieve_analyze.py --flow).
 *
 * PR 8's storage layer put a real block store behind every analytic
 * SSD charge under a strict contract: backends *observe*, they never
 * *decide*. The dynamic enforcement is sim::runStorageDifferential
 * (bit-identity of model-side fields across backends on a replay);
 * these annotations make the same contract provable statically, for
 * every path the analyzer can see rather than just the paths a replay
 * happens to drive.
 *
 * The sieve-flow pass runs a forward interprocedural taint analysis:
 *
 *  - SIEVE_TAINT_SOURCE marks where measured (device-observed) data
 *    enters the program. On a function it taints the return value and
 *    every argument the call can fill (out-params — the latency spans
 *    of storage::Backend::readBlocks/writeBlocks). On a data member
 *    it declares "this field holds measured data": reads of it are
 *    tainted, and writes of measured data INTO it are the explicit,
 *    lintable record of a deliberate measured->report flow (the
 *    storage_* columns of core::DailyReport). Built-in sources need no
 *    annotation: pread/pwrite/io_uring_* returns, rand/random_device,
 *    wall clocks, and getenv are taint origins in the analyzer's
 *    primitive tables.
 *  - SIEVE_TAINT_SINK marks a decision surface. On a function, a
 *    tainted argument is a contract violation (sieve admit paths,
 *    cache mutation entry points). On a data member, assigning
 *    tainted data to it is a violation (the model-side fields of
 *    core::DailyReport). Every violation is reported with the full
 *    source -> assignment -> sink path.
 *  - SIEVE_FLOW_SANITIZE marks the audited boundary, mirroring
 *    SIEVE_MAY_ALLOC: a function through which measured data may
 *    legitimately pass without tainting its result (a report-only
 *    formatter, a divergence gate that feeds no model state). The
 *    analyzer absorbs taint there, stops propagation, and lists every
 *    such boundary in its --report output so each one stays a
 *    reviewed, named exemption. Every use must carry a comment saying
 *    why the laundered value cannot influence a decision.
 *
 * The analyzer tracks explicit data flow only (assignments, call
 * arguments and returns, member fields). Control dependence — a
 * branch on measured data that steers clean values — is out of scope
 * and covered dynamically by the storage differential; see DESIGN.md
 * section 14 for the lattice and this caveat.
 *
 * Under Clang the annotations are attached to the AST (annotate
 * attributes) so the libclang backend sees them without re-lexing;
 * under GCC they compile to nothing, exactly like SIEVE_NOALLOC /
 * SIEVE_MAY_ALLOC in util/check.hpp.
 */

#ifndef SIEVESTORE_UTIL_FLOW_ANNOTATIONS_HPP
#define SIEVESTORE_UTIL_FLOW_ANNOTATIONS_HPP

#if defined(__clang__)
#define SIEVE_TAINT_SOURCE __attribute__((annotate("sieve-taint-source")))
#define SIEVE_TAINT_SINK __attribute__((annotate("sieve-taint-sink")))
#define SIEVE_FLOW_SANITIZE __attribute__((annotate("sieve-flow-sanitize")))
#else
#define SIEVE_TAINT_SOURCE
#define SIEVE_TAINT_SINK
#define SIEVE_FLOW_SANITIZE
#endif

#endif // SIEVESTORE_UTIL_FLOW_ANNOTATIONS_HPP
